# Benchmark budget
#
# The gated set below runs serial kernels only (shapes below the tensor
# package's parallel threshold) with a fixed iteration count and -cpu=1,
# so allocs/op and B/op are deterministic on any runner: any change is a
# code change, and CI's bench-budget job hard-fails on it. ns/op is
# machine-dependent and only warned about. See internal/benchdiff.
#
# After an intentional allocation change, regenerate and commit the
# baseline in the same PR:
#
#	make bench-baseline && git add BENCH_BASELINE.json

BENCH_GATED := ^(BenchmarkMatMulSerial|BenchmarkMatMulTransBSerial|BenchmarkMatMulTransASerial|BenchmarkIm2Col|BenchmarkCol2Im|BenchmarkConvForwardBackward|BenchmarkLinearForwardBackward|BenchmarkNetworkInfer|BenchmarkClampRowInto|BenchmarkQuantize)$$
BENCH_PKGS  := ./internal/tensor/ ./internal/nn/ ./internal/reram/
BENCH_FLAGS := -run '^$$' -cpu=1 -benchtime=50x -benchmem
# Extra remapd-benchdiff flags for the budget diff (CI passes -github).
BENCHDIFF_FLAGS :=

.PHONY: test lint wire-golden bench-gated bench-baseline bench-budget

test:
	go build ./...
	go test ./...

# Static-analysis gate: the determinism suite plus the invariant-analysis
# rules (hotpath-alloc, workspace-owner, wire-stability, unchecked-error)
# over the whole module, with the analysis worker pool at full width. The
# timeout enforces the <30s budget the parallel runner is sized for.
lint:
	go build -o remapd-lint.bin ./cmd/remapd-lint
	timeout 30 ./remapd-lint.bin -format github ./...

# Regenerate the wire-stability golden field-set snapshots after an
# intentional wire-format change (bump ProtoVersion/SchemaVersion first,
# then commit the updated goldens with the change).
wire-golden:
	go run ./cmd/remapd-lint -write-wire-golden ./...

bench-gated:
	go test $(BENCH_FLAGS) -bench '$(BENCH_GATED)' $(BENCH_PKGS) | tee bench-gated.out

bench-baseline: bench-gated
	go run ./cmd/remapd-benchdiff -render -in bench-gated.out > BENCH_BASELINE.json
	cat BENCH_BASELINE.json

bench-budget: bench-gated
	go run ./cmd/remapd-benchdiff -render -in bench-gated.out > BENCH_CURRENT.json
	go run ./cmd/remapd-benchdiff $(BENCHDIFF_FLAGS) -baseline BENCH_BASELINE.json -current BENCH_CURRENT.json
