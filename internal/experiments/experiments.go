// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each Fig*/Overhead* function runs the corresponding
// experiment end-to-end on the simulated RCS and returns typed rows; the
// cmd/ tools and the top-level benchmarks print them. See DESIGN.md §4 for
// the experiment↔module index and EXPERIMENTS.md for recorded results.
//
// Scaling: the original evaluation trains full-width CNNs for 50 epochs on
// a GPU cluster; this reproduction runs width-scaled models for few epochs
// on CPU. Two scaling rules keep the fault regime comparable (DESIGN.md §2):
// crossbar size shrinks with model width (so array utilisation matches),
// and the fault schedule is compressed (hot-band density and per-epoch
// wear scaled by ≈6×, matching the ~8× reduction in accumulation epochs).
package experiments

import (
	"context"
	"fmt"

	"remapd/internal/arch"
	"remapd/internal/checkpoint"
	"remapd/internal/dataset"
	"remapd/internal/fault"
	"remapd/internal/models"
	"remapd/internal/nn"
	"remapd/internal/obs"
	"remapd/internal/remap"
	"remapd/internal/reram"
	"remapd/internal/trainer"
)

// Scale bundles every size knob of a reproduction run.
type Scale struct {
	Name         string
	ImgSize      int
	TrainN       int
	TestN        int
	WidthScale   float64
	Epochs       int
	BatchSize    int
	LR           float64
	CrossbarSize int
	Geom         arch.Geometry
	Models       []string
	Seeds        []uint64

	// Workers bounds how many experiment cells the runner executes
	// concurrently (<=0 means GOMAXPROCS). Results are identical for any
	// value — see runner.go's determinism contract.
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(format string, args ...interface{})
	// Checkpoints, when non-nil, makes every cell crash-safe: the trainer
	// snapshots the full run state after each epoch, completed cells are
	// skipped on re-run, and interrupted cells resume bit-identically.
	Checkpoints *checkpoint.Store
	// Metrics, when non-nil, gives every cell its own telemetry trace and
	// persists it (metrics.json + events.jsonl per cell) when the cell
	// finishes. Like the other observation-only knobs it is excluded from
	// cellFingerprint: recording cannot change results, so a checkpoint is
	// equally valid with telemetry on or off. Note that a resumed cell's
	// trace covers only the epochs it actually replayed.
	Metrics *obs.Sink
	// Prof, when non-nil, collects harness-domain wall-time statistics
	// (per-cell durations, per-phase costs). Also fingerprint-excluded.
	Prof *obs.Profile
	// Exec, when non-nil, runs cells through an alternative executor
	// (e.g. dist.Executor ships them to worker processes). Scheduling
	// only and fingerprint-excluded: results must be byte-identical to
	// in-process execution.
	Exec CellExecutor
	// Spans, when non-nil, records a lifecycle span per cell (queue /
	// wire / run attribution — see obs.SpanRecorder). Observation-only
	// and fingerprint-excluded, like Metrics and Prof.
	Spans *obs.SpanRecorder
	// Status, when non-nil, receives live grid-progress and span
	// sections for the /status endpoint. Observation-only.
	Status *obs.Status
}

// cellFingerprint renders every configuration knob a cell's result depends
// on. It binds a checkpoint to its producing configuration: a stored
// snapshot whose fingerprint differs from the resuming run's is stale and
// ignored. Scheduling-only knobs (Workers, Progress, Checkpoints) are
// deliberately excluded — they cannot change results.
func cellFingerprint(s Scale, reg FaultRegime, key CellKey, classes int) string {
	return fmt.Sprintf("ck1|%s|img%d-tr%d-te%d-w%g-e%d-b%d-lr%g-x%d-g%dx%dx%dx%d|pre%+v|post%+v|th%g-pd%g|c%d|%s",
		s.Name, s.ImgSize, s.TrainN, s.TestN, s.WidthScale, s.Epochs, s.BatchSize, s.LR,
		s.CrossbarSize, s.Geom.TilesX, s.Geom.TilesY, s.Geom.IMAsPerTile, s.Geom.XbarsPerIMA,
		reg.Pre, reg.Post, reg.RemapThreshold, reg.PhaseDensity, classes, key)
}

// cellCheckpoint returns the checkpoint hook for one cell, or nil when
// checkpointing is disabled.
func (s Scale) cellCheckpoint(reg FaultRegime, key CellKey, classes int) trainer.CheckpointHook {
	if s.Checkpoints == nil {
		return nil
	}
	return s.Checkpoints.Cell(key.String(), cellFingerprint(s, reg, key, classes))
}

// QuickScale is the benchmark-sized configuration: two models, one seed,
// small data — every experiment finishes in CPU-minutes.
func QuickScale() Scale {
	return Scale{
		Name: "quick", ImgSize: 16, TrainN: 384, TestN: 256,
		WidthScale: 0.125, Epochs: 5, BatchSize: 32, LR: 0.05,
		CrossbarSize: 32,
		Geom:         arch.Geometry{TilesX: 8, TilesY: 8, IMAsPerTile: 2, XbarsPerIMA: 4},
		Models:       []string{"vgg11", "resnet12"},
		Seeds:        []uint64{1},
	}
}

// StandardScale is the full reproduction: all six CNNs of the paper,
// multiple seeds. Budget tens of CPU-minutes per figure.
func StandardScale() Scale {
	s := QuickScale()
	s.Name = "standard"
	s.TrainN, s.TestN = 512, 512
	s.Epochs = 6
	s.Models = []string{"vgg11", "vgg16", "vgg19", "resnet12", "resnet18", "squeezenet"}
	s.Seeds = []uint64{1, 2, 3}
	return s
}

// FaultRegime is the compressed-schedule fault configuration (see the
// package comment): the paper's 20%-hot clustered pre-deployment profile
// with the hot band at 4–10%, and concentrated per-epoch endurance wear.
type FaultRegime struct {
	Pre            fault.PreProfile
	Post           fault.PostModel
	RemapThreshold float64
	PhaseDensity   float64 // Fig. 5 targeted injection density
}

// DefaultRegime returns the calibrated reproduction regime.
func DefaultRegime() FaultRegime {
	pre := fault.DefaultPreProfile()
	pre.HighDensity = [2]float64{0.04, 0.10}
	pre.LowDensity = [2]float64{0, 0.004}
	post := fault.DefaultPostModel()
	post.CrossbarFraction = 0.01
	post.CellFraction = 0.03
	return FaultRegime{
		Pre:            pre,
		Post:           post,
		RemapThreshold: 0.02,
		PhaseDensity:   0.02, // the paper's Fig. 5 uses 2%
	}
}

// PaperRegime returns the paper's literal fault numbers (Fig. 6 setting:
// hot band 0.4–1%, post 0.5% on 1% of crossbars per epoch). At reproduction
// scale these densities are nearly harmless (see DESIGN.md); provided for
// ablation.
func PaperRegime() FaultRegime {
	return FaultRegime{
		Pre:            fault.DefaultPreProfile(),
		Post:           fault.DefaultPostModel(),
		RemapThreshold: 0.004,
		PhaseDensity:   0.02,
	}
}

// buildModel constructs a named model at the scale.
func buildModel(name string, s Scale, seed uint64) (*nn.Network, error) {
	return models.Build(name, models.Config{
		InC: 3, InH: s.ImgSize, InW: s.ImgSize, Classes: 10,
		WidthScale: s.WidthScale, BatchNorm: true, Seed: seed,
	})
}

// buildModelFor constructs a model with an explicit class count (Fig. 8
// uses CIFAR100Like).
func buildModelFor(name string, s Scale, seed uint64, classes int) (*nn.Network, error) {
	return models.Build(name, models.Config{
		InC: 3, InH: s.ImgSize, InW: s.ImgSize, Classes: classes,
		WidthScale: s.WidthScale, BatchNorm: true, Seed: seed,
	})
}

// NewChip builds a chip at the scale's technology point.
func NewChip(s Scale) *arch.Chip {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = s.CrossbarSize
	return arch.NewChip(p, s.Geom)
}

// BuildModel constructs a registered model at the scale's geometry with an
// explicit class count (exported for the cmd tools).
func BuildModel(name string, s Scale, seed uint64, classes int) (*nn.Network, error) {
	return buildModelFor(name, s, seed, classes)
}

// baseTrainConfig returns a trainer config without fault machinery.
func baseTrainConfig(s Scale, seed uint64) trainer.Config {
	cfg := trainer.DefaultConfig()
	cfg.Epochs = s.Epochs
	cfg.BatchSize = s.BatchSize
	cfg.LR = s.LR
	cfg.Seed = seed
	return cfg
}

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// PolicyByName constructs a policy for the regime (the Remap-D threshold
// comes from the regime).
func PolicyByName(name string, reg FaultRegime) (remap.Policy, bool, error) {
	switch name {
	case "none":
		return remap.None{}, false, nil
	case "static":
		return remap.Static{}, false, nil
	case "an-code":
		return remap.NewANCode(), false, nil
	case "remap-ws":
		return remap.NewRemapWS(), false, nil
	case "remap-t-5":
		return remap.NewRemapT(0.05), true, nil
	case "remap-t-10":
		return remap.NewRemapT(0.10), true, nil
	case "remap-d":
		rd := remap.NewRemapD()
		rd.Threshold = reg.RemapThreshold
		return rd, false, nil
	case "ideal":
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("experiments: unknown policy %q", name)
}

// PolicyNames lists the Fig. 6 policy columns in presentation order.
func PolicyNames() []string {
	return []string{"ideal", "none", "static", "an-code", "remap-ws", "remap-t-5", "remap-t-10", "remap-d"}
}

// train runs the trainer for one cell, attaching a streaming telemetry
// trace when the scale has a metrics sink: events flush to disk at every
// epoch boundary (bounded memory, crash-truncated rather than lost logs)
// and the remainder flushes on Close. The trace is persisted even when
// training fails — a failed cell's partial trace is evidence — but a
// flush error only surfaces when training itself succeeded.
func (s Scale) train(key CellKey, net *nn.Network, ds *dataset.Dataset, cfg trainer.Config) (*trainer.Result, error) {
	if s.Metrics == nil {
		return trainer.Train(net, ds, cfg)
	}
	st, err := s.Metrics.Stream(checkpoint.CellFileBase(key.String()), key.String())
	if err != nil {
		return nil, err
	}
	cfg.Obs = st
	res, err := trainer.Train(net, ds, cfg)
	if cerr := st.Close(); cerr != nil && err == nil {
		return nil, cerr
	}
	return res, err
}

// runOne trains one (model, policy, seed) cell and returns final accuracy
// and the result for overhead accounting. key carries the cell's grid
// coordinates for checkpoint identity; logf receives the cell's progress.
func runOne(ctx context.Context, key CellKey, s Scale, reg FaultRegime, ds *dataset.Dataset, classes int, logf Logf) (*trainer.Result, error) {
	net, err := buildModelFor(key.Model, s, key.Seed, classes)
	if err != nil {
		return nil, err
	}
	cfg := baseTrainConfig(s, key.Seed)
	cfg.Ctx = ctx
	cfg.Logf = logf
	cfg.Checkpoint = s.cellCheckpoint(reg, key, classes)
	if key.Policy != "ideal" {
		pol, trackGrads, err := PolicyByName(key.Policy, reg)
		if err != nil {
			return nil, err
		}
		cfg.Chip = NewChip(s)
		cfg.Policy = pol
		cfg.Pre = &reg.Pre
		cfg.Post = &reg.Post
		cfg.TrackGradAbs = trackGrads
	}
	return s.train(key, net, ds, cfg)
}
