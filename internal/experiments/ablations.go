package experiments

import (
	"context"
	"fmt"

	"remapd/internal/arch"
	"remapd/internal/reram"
	"remapd/internal/trainer"
)

// The ablations quantify the design decisions DESIGN.md §6 calls out.

// ThresholdRow is one point of the Remap-D trigger-threshold sweep.
type ThresholdRow struct {
	Threshold float64
	Accuracy  float64
	Swaps     int
	Unmatched int
}

// AblationThreshold sweeps the Remap-D density threshold on one model:
// too low churns tasks between marginally different crossbars, too high
// leaves hot crossbars untreated.
func AblationThreshold(ctx context.Context, s Scale, reg FaultRegime, model string, thresholds []float64) ([]ThresholdRow, error) {
	out, err := newRunner(s).Run(ctx, specCells(ablationThresholdSpecs(s, reg, model, thresholds), s))
	if err != nil {
		return nil, err
	}
	var rows []ThresholdRow
	i := 0
	for _, th := range thresholds {
		var accs []float64
		swaps, unmatched := 0, 0
		for range s.Seeds {
			res := out[i].Value.(*trainer.Result)
			i++
			accs = append(accs, res.FinalTestAcc)
			swaps += res.Swaps
			unmatched += res.Unmatched
		}
		rows = append(rows, ThresholdRow{Threshold: th, Accuracy: mean(accs), Swaps: swaps, Unmatched: unmatched})
	}
	return rows, nil
}

// ReceiverRow compares nearest-receiver selection against random-receiver
// selection: accuracy should match while NoC traffic (hop-weighted flits)
// grows for the random pick.
type ReceiverRow struct {
	Policy    string // "nearest" or "random"
	Accuracy  float64
	NoCCycles int64
	Swaps     int
}

// AblationReceiverSelection runs the receiver-choice ablation with the
// flit-level NoC enabled.
func AblationReceiverSelection(ctx context.Context, s Scale, reg FaultRegime, model string) ([]ReceiverRow, error) {
	selections := []string{"nearest", "random"}
	out, err := newRunner(s).Run(ctx, specCells(ablationReceiverSpecs(s, reg, model), s))
	if err != nil {
		return nil, err
	}
	var rows []ReceiverRow
	i := 0
	for _, sel := range selections {
		var accs []float64
		var cycles int64
		swaps := 0
		for range s.Seeds {
			res := out[i].Value.(*trainer.Result)
			i++
			accs = append(accs, res.FinalTestAcc)
			cycles += res.NoCCyclesTotal
			swaps += res.Swaps
		}
		rows = append(rows, ReceiverRow{Policy: sel, Accuracy: mean(accs), NoCCycles: cycles, Swaps: swaps})
	}
	return rows, nil
}

// CodingRow compares the PytorX-style offset coding against the
// differential-pair coding (DESIGN.md §6.5).
type CodingRow struct {
	Coding     string
	NoProtAcc  float64
	RemapDAcc  float64
	IdealAcc   float64
	NoProtDrop float64
	RemapDDrop float64
}

// AblationCoding runs the Fig. 6 headline cells under both coding schemes.
func AblationCoding(ctx context.Context, s Scale, reg FaultRegime, model string) ([]CodingRow, error) {
	codings := []reram.CodingScheme{reram.OffsetCoding, reram.DifferentialCoding}
	policies := []string{"ideal", "none", "remap-d"}
	out, err := newRunner(s).Run(ctx, specCells(ablationCodingSpecs(s, reg, model), s))
	if err != nil {
		return nil, err
	}
	var rows []CodingRow
	i := 0
	for _, coding := range codings {
		// Aggregate per policy position (ideal, none, remap-d) rather than
		// through a string-keyed map, so accumulation order is fixed by the
		// policies slice.
		accs := make([][]float64, len(policies))
		for pi := range policies {
			for range s.Seeds {
				accs[pi] = append(accs[pi], out[i].Value.(*trainer.Result).FinalTestAcc)
				i++
			}
		}
		row := CodingRow{
			Coding:    coding.String(),
			IdealAcc:  mean(accs[0]),
			NoProtAcc: mean(accs[1]),
			RemapDAcc: mean(accs[2]),
		}
		row.NoProtDrop = row.IdealAcc - row.NoProtAcc
		row.RemapDDrop = row.IdealAcc - row.RemapDAcc
		rows = append(rows, row)
	}
	return rows, nil
}

// BISTvsTruthRow compares BIST-estimated densities against ground truth as
// the remap trigger signal.
type BISTvsTruthRow struct {
	Source   string // "bist" or "truth"
	Accuracy float64
	Swaps    int
}

// AblationBISTvsTruth checks that the low-cost density estimate is good
// enough to drive remapping.
func AblationBISTvsTruth(ctx context.Context, s Scale, reg FaultRegime, model string) ([]BISTvsTruthRow, error) {
	sources := []string{"bist", "truth"}
	out, err := newRunner(s).Run(ctx, specCells(ablationBISTSpecs(s, reg, model), s))
	if err != nil {
		return nil, err
	}
	var rows []BISTvsTruthRow
	i := 0
	for _, src := range sources {
		var accs []float64
		swaps := 0
		for range s.Seeds {
			res := out[i].Value.(*trainer.Result)
			i++
			accs = append(accs, res.FinalTestAcc)
			swaps += res.Swaps
		}
		rows = append(rows, BISTvsTruthRow{Source: src, Accuracy: mean(accs), Swaps: swaps})
	}
	return rows, nil
}

// newChipWithParams builds a chip from explicit device params.
func newChipWithParams(p reram.DeviceParams, s Scale) *arch.Chip {
	return arch.NewChip(p, s.Geom)
}

// FormatThreshold renders the threshold sweep.
func FormatThreshold(rows []ThresholdRow) string {
	out := fmt.Sprintf("%10s %9s %6s %9s\n", "threshold", "accuracy", "swaps", "unmatched")
	for _, r := range rows {
		out += fmt.Sprintf("%9.2f%% %9.3f %6d %9d\n", 100*r.Threshold, r.Accuracy, r.Swaps, r.Unmatched)
	}
	return out
}

// FormatReceiver renders the receiver-selection ablation.
func FormatReceiver(rows []ReceiverRow) string {
	out := fmt.Sprintf("%-8s %9s %10s %6s\n", "policy", "accuracy", "noc-cycles", "swaps")
	for _, r := range rows {
		out += fmt.Sprintf("%-8s %9.3f %10d %6d\n", r.Policy, r.Accuracy, r.NoCCycles, r.Swaps)
	}
	return out
}

// FormatCoding renders the coding-scheme ablation.
func FormatCoding(rows []CodingRow) string {
	out := fmt.Sprintf("%-13s %7s %8s %8s %11s %9s\n", "coding", "ideal", "no-prot", "remap-d", "noprot-drop", "rd-drop")
	for _, r := range rows {
		out += fmt.Sprintf("%-13s %7.3f %8.3f %8.3f %11.3f %9.3f\n",
			r.Coding, r.IdealAcc, r.NoProtAcc, r.RemapDAcc, r.NoProtDrop, r.RemapDDrop)
	}
	return out
}

// FormatBISTvsTruth renders the sensing ablation.
func FormatBISTvsTruth(rows []BISTvsTruthRow) string {
	out := fmt.Sprintf("%-6s %9s %6s\n", "source", "accuracy", "swaps")
	for _, r := range rows {
		out += fmt.Sprintf("%-6s %9.3f %6d\n", r.Source, r.Accuracy, r.Swaps)
	}
	return out
}
