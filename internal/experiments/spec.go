package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"remapd/internal/arch"
	"remapd/internal/checkpoint"
	"remapd/internal/dataset"
	"remapd/internal/det"
	"remapd/internal/obs"
)

// This file is the serializable half of the cell API. A Cell's closure can
// only run in the process that built it; a CellSpec is the same work
// expressed as pure coordinates — scalar parameters that JSON-round-trip
// byte-identically — plus a registry that maps each spec kind back to the
// run function the closures used to capture. The dist coordinator ships
// specs to worker processes; the in-process path executes the identical
// spec through Cell's thin adapter, so the two are byte-identical by
// construction (both call the same registered function on the same
// reconstructed inputs).

// ScaleSpec is the serializable subset of Scale: every knob a cell's
// result depends on, none of the scheduling/observation machinery
// (Workers, Progress, Checkpoints, Metrics, Prof, Exec stay behind on the
// coordinator or are re-bound worker-side via Runtime). The field set
// deliberately mirrors cellFingerprint: a Scale reconstructed from a spec
// fingerprints identically to the original, so worker-written checkpoints
// resume under the coordinator and vice versa.
type ScaleSpec struct {
	Name         string        `json:"name"`
	ImgSize      int           `json:"img_size"`
	TrainN       int           `json:"train_n"`
	TestN        int           `json:"test_n"`
	WidthScale   float64       `json:"width_scale"`
	Epochs       int           `json:"epochs"`
	BatchSize    int           `json:"batch_size"`
	LR           float64       `json:"lr"`
	CrossbarSize int           `json:"crossbar_size"`
	Geom         arch.Geometry `json:"geom"`
}

// Spec extracts the serializable coordinates of a Scale.
func (s Scale) Spec() ScaleSpec {
	return ScaleSpec{
		Name: s.Name, ImgSize: s.ImgSize, TrainN: s.TrainN, TestN: s.TestN,
		WidthScale: s.WidthScale, Epochs: s.Epochs, BatchSize: s.BatchSize,
		LR: s.LR, CrossbarSize: s.CrossbarSize, Geom: s.Geom,
	}
}

// Runtime carries the process-local facilities a cell needs at execution
// time but that cannot travel in a spec: the checkpoint store and the
// telemetry sink. The coordinator and its workers point these at shared
// directories, which is how results survive worker crashes.
type Runtime struct {
	Checkpoints *checkpoint.Store
	Metrics     *obs.Sink
}

// Runtime extracts the process-local facilities of a Scale.
func (s Scale) Runtime() Runtime {
	return Runtime{Checkpoints: s.Checkpoints, Metrics: s.Metrics}
}

// Scale reconstructs an executable Scale from spec coordinates plus the
// executing process's runtime facilities.
func (ss ScaleSpec) Scale(rt Runtime) Scale {
	return Scale{
		Name: ss.Name, ImgSize: ss.ImgSize, TrainN: ss.TrainN, TestN: ss.TestN,
		WidthScale: ss.WidthScale, Epochs: ss.Epochs, BatchSize: ss.BatchSize,
		LR: ss.LR, CrossbarSize: ss.CrossbarSize, Geom: ss.Geom,
		Checkpoints: rt.Checkpoints, Metrics: rt.Metrics,
	}
}

// DatasetSpec names a deterministic in-process dataset generator plus its
// parameters. Workers rebuild datasets from the spec; generation is a pure
// function of (name, sizes, seed), so every process derives identical
// tensors.
type DatasetSpec struct {
	Name  string `json:"name"` // cifar10-like, cifar100-like, svhn-like
	Train int    `json:"train"`
	Test  int    `json:"test"`
	Img   int    `json:"img"`
	Seed  uint64 `json:"seed"`
}

// Build generates the dataset (uncached).
func (d DatasetSpec) Build() (*dataset.Dataset, error) {
	switch d.Name {
	case "cifar10-like":
		return dataset.CIFAR10Like(d.Train, d.Test, d.Img, d.Seed), nil
	case "cifar100-like":
		return dataset.CIFAR100Like(d.Train, d.Test, d.Img, d.Seed), nil
	case "svhn-like":
		return dataset.SVHNLike(d.Train, d.Test, d.Img, d.Seed), nil
	}
	return nil, fmt.Errorf("experiments: unknown dataset spec %q", d.Name)
}

// datasetCache memoizes generated datasets per process, so a grid of cells
// sharing one dataset builds it once (matching the figure constructors,
// which built one dataset for all their closures). Datasets are read-only
// after construction, so sharing across concurrent cells is safe.
var datasetCache = struct {
	sync.Mutex
	m map[DatasetSpec]*dataset.Dataset
}{m: map[DatasetSpec]*dataset.Dataset{}}

// dataset returns the (possibly cached) dataset for the spec.
func (d DatasetSpec) dataset() (*dataset.Dataset, error) {
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if ds, ok := datasetCache.m[d]; ok {
		return ds, nil
	}
	ds, err := d.Build()
	if err != nil {
		return nil, err
	}
	datasetCache.m[d] = ds
	return ds, nil
}

// CellSpec is the serializable description of one experiment cell: which
// registered run function to invoke (Kind) and every coordinate it needs.
// The zero values of the kind-specific fields (Phase…UseBIST) are valid —
// each kind reads only its own — and omitempty keeps the JSON minimal and
// exactly re-encodable.
type CellSpec struct {
	Kind    string      `json:"kind"`
	Key     CellKey     `json:"key"`
	Scale   ScaleSpec   `json:"scale"`
	Regime  FaultRegime `json:"regime"`
	Dataset DatasetSpec `json:"dataset"`
	Classes int         `json:"classes"`

	// Kind-specific coordinates.
	Phase          string  `json:"phase,omitempty"`           // phase: "", forward, backward
	Threshold      float64 `json:"threshold,omitempty"`       // threshold: Remap-D trigger
	RandomReceiver bool    `json:"random_receiver,omitempty"` // receiver
	SimulateNoC    bool    `json:"simulate_noc,omitempty"`    // receiver
	Coding         string  `json:"coding,omitempty"`          // coding: offset, differential
	UseBIST        bool    `json:"use_bist,omitempty"`        // bist-sense
}

// RunFunc executes one cell kind from its spec. s is the reconstructed
// Scale (spec coordinates + the executing process's Runtime); the returned
// value must depend only on the spec, never on which process runs it.
type RunFunc func(ctx context.Context, sp *CellSpec, s Scale, logf Logf) (interface{}, error)

// kindEntry pairs a kind's run function with its result prototype
// constructor (what the dist layer decodes a worker's result into).
type kindEntry struct {
	newResult func() interface{}
	run       RunFunc
}

var (
	kindMu    sync.RWMutex
	kindTable = map[string]kindEntry{}
)

// RegisterKind installs a cell kind. newResult returns a fresh zero value
// of the kind's result type (a pointer, for JSON decoding); run executes
// the cell. Registering a duplicate kind panics — kinds are package-level
// constants wired at init time, so a collision is a programming error.
func RegisterKind(kind string, newResult func() interface{}, run RunFunc) {
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kindTable[kind]; dup {
		panic(fmt.Sprintf("experiments: duplicate cell kind %q", kind))
	}
	kindTable[kind] = kindEntry{newResult: newResult, run: run}
}

// KindNames lists the registered cell kinds in sorted order.
func KindNames() []string {
	kindMu.RLock()
	defer kindMu.RUnlock()
	return det.SortedKeys(kindTable)
}

// NewResultFor returns a fresh result value for the kind, ready for JSON
// decoding.
func NewResultFor(kind string) (interface{}, error) {
	kindMu.RLock()
	e, ok := kindTable[kind]
	kindMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("experiments: unknown cell kind %q", kind)
	}
	return e.newResult(), nil
}

// Execute runs the spec in this process using the given runtime
// facilities. This is the single execution path for both the in-process
// adapter and the dist worker, which is what makes the two byte-identical.
func (sp *CellSpec) Execute(ctx context.Context, rt Runtime, logf Logf) (interface{}, error) {
	kindMu.RLock()
	e, ok := kindTable[sp.Kind]
	kindMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("experiments: unknown cell kind %q", sp.Kind)
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return e.run(ctx, sp, sp.Scale.Scale(rt), logf)
}

// Cell adapts the spec for in-process execution under the given Scale:
// the figure constructors build specs and wrap them so existing runner
// plumbing (and the tests over it) keep working unchanged.
func (sp *CellSpec) Cell(s Scale) Cell {
	rt := s.Runtime()
	return Cell{
		Key:  sp.Key,
		Spec: sp,
		Run: func(ctx context.Context, logf Logf) (interface{}, error) {
			return sp.Execute(ctx, rt, logf)
		},
	}
}

// MarshalJSON round-trips are part of the spec contract; EncodeSpec and
// DecodeSpec pin the canonical single-line form the dist protocol embeds.
func EncodeSpec(sp *CellSpec) ([]byte, error) {
	data, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("experiments: encode cell spec %s: %w", sp.Key, err)
	}
	return data, nil
}

// DecodeSpec parses a spec encoded by EncodeSpec.
func DecodeSpec(data []byte) (*CellSpec, error) {
	sp := &CellSpec{}
	if err := json.Unmarshal(data, sp); err != nil {
		return nil, fmt.Errorf("experiments: decode cell spec: %w", err)
	}
	return sp, nil
}

// specCells wraps each spec in its in-process adapter, preserving order.
func specCells(specs []*CellSpec, s Scale) []Cell {
	cells := make([]Cell, len(specs))
	for i, sp := range specs {
		cells[i] = sp.Cell(s)
	}
	return cells
}
