package experiments

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
)

// allSpecs enumerates every spec the figure/ablation builders can emit, so
// the round-trip and registry tests cover the full grid surface.
func allSpecs(t *testing.T) []*CellSpec {
	t.Helper()
	s := determinismScale()
	reg := DefaultRegime()
	var specs []*CellSpec
	specs = append(specs, fig5Specs(s, reg)...)
	specs = append(specs, fig6Specs(s, reg, []string{"ideal", "none", "remap-d"})...)
	specs = append(specs, fig7Specs(s, reg, []string{"cnn-s"}, []float64{0.005, 0.03}, []float64{0.01})...)
	specs = append(specs, fig8Specs(s, reg)...)
	specs = append(specs, ablationThresholdSpecs(s, reg, "cnn-s", []float64{0.004, 0.02})...)
	specs = append(specs, ablationReceiverSpecs(s, reg, "cnn-s")...)
	specs = append(specs, ablationCodingSpecs(s, reg, "cnn-s")...)
	specs = append(specs, ablationBISTSpecs(s, reg, "cnn-s")...)
	if len(specs) == 0 {
		t.Fatal("no specs built")
	}
	return specs
}

// TestCellSpecRoundTripsByteIdentically is the wire contract: encode →
// decode → re-encode must reproduce the exact bytes, and the decoded spec
// must equal the original structurally. If this breaks, dist results stop
// being byte-identical to in-process ones.
func TestCellSpecRoundTripsByteIdentically(t *testing.T) {
	for _, sp := range allSpecs(t) {
		data, err := EncodeSpec(sp)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("decode %s: %v", sp.Key, err)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("spec %s changed across the wire:\n  sent %+v\n  got  %+v", sp.Key, sp, back)
		}
		again, err := EncodeSpec(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("spec %s re-encodes differently:\n  %s\n  %s", sp.Key, data, again)
		}
	}
}

// TestSpecKindsRegistered pins the registry: every builder-emitted kind is
// registered, and every registered kind yields a fresh decodable result.
func TestSpecKindsRegistered(t *testing.T) {
	names := KindNames()
	registered := map[string]bool{}
	for _, k := range names {
		registered[k] = true
		v, err := NewResultFor(k)
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			t.Fatalf("kind %q has a nil result prototype", k)
		}
	}
	for _, sp := range allSpecs(t) {
		if !registered[sp.Kind] {
			t.Fatalf("builder emitted unregistered kind %q (registered: %v)", sp.Kind, names)
		}
	}
	if _, err := NewResultFor("no-such-kind"); err == nil {
		t.Fatal("unknown kind must error")
	}
	sp := &CellSpec{Kind: "no-such-kind", Key: CellKey{Model: "x"}}
	if _, err := sp.Execute(context.Background(), Runtime{}, nil); err == nil {
		t.Fatal("executing an unknown kind must error")
	}
}

// TestScaleSpecPreservesFingerprint: a Scale reconstructed worker-side from
// a spec must produce the same checkpoint fingerprint as the coordinator's
// original, or distributed retries would orphan every snapshot.
func TestScaleSpecPreservesFingerprint(t *testing.T) {
	s := determinismScale()
	s.Workers = 5 // scheduling-only; must not survive the round trip into results
	reg := DefaultRegime()
	key := CellKey{Model: "cnn-s", Policy: "remap-d", Seed: 1}
	rebuilt := s.Spec().Scale(Runtime{})
	if got, want := cellFingerprint(rebuilt, reg, key, 10), cellFingerprint(s, reg, key, 10); got != want {
		t.Fatalf("reconstructed scale fingerprints differently:\n  %s\n  %s", got, want)
	}
}

// TestSpecCellAdapterExecutesKind: the in-process adapter and direct
// Execute must agree — they are the same code path.
func TestSpecCellAdapterExecutesKind(t *testing.T) {
	s := determinismScale()
	s.TrainN, s.TestN, s.Epochs = 64, 32, 1
	reg := DefaultRegime()
	specs := fig6Specs(s, reg, []string{"ideal"})
	sp := specs[0]
	cell := sp.Cell(s)
	if cell.Spec != sp {
		t.Fatal("adapter cell must carry its spec for the dist executor")
	}
	if cell.Key != sp.Key {
		t.Fatal("adapter cell key must match the spec key")
	}
	direct, err := sp.Execute(context.Background(), s.Runtime(), nil)
	if err != nil {
		t.Fatal(err)
	}
	viaCell, err := cell.Run(context.Background(), func(string, ...interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", direct) != fmt.Sprintf("%+v", viaCell) {
		t.Fatalf("adapter and direct execution disagree:\n  %+v\n  %+v", direct, viaCell)
	}
}

func TestRegisterKindRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterKind must panic")
		}
	}()
	RegisterKind("policy", func() interface{} { return nil }, nil)
}
