package experiments

import (
	"context"
	"fmt"

	"remapd/internal/bist"
	"remapd/internal/reram"
	"remapd/internal/tensor"
	"remapd/internal/trainer"
)

// ---------------------------------------------------------------- Fig. 4

// Fig4Row is one point of the BIST current-vs-faults calibration curve.
type Fig4Row struct {
	Kind        string // "SA0" or "SA1"
	Faults      int
	MeanMicroA  float64
	MinMicroA   float64
	MaxMicroA   float64
	Separated   bool // variation band does not overlap the previous count's
	ArraySize   int
	ReadVoltage float64
}

// Fig4 reproduces the BIST output-current curves: column current vs the
// number of SA0/SA1 faults on a small illustration array (the paper uses
// 4×4) with device-resistance variation.
func Fig4(size, maxFaults, trials int, seed uint64) []Fig4Row {
	p := reram.DefaultDeviceParams()
	p.SA1RMax = 2e3 // Fig. 4's SA1 variation range is 1.5–2 kΩ (§IV.B)
	rng := tensor.NewRNG(seed)
	var rows []Fig4Row
	for _, kind := range []reram.CellState{reram.SA0, reram.SA1} {
		curve := bist.CurrentCurve(p, size, maxFaults, trials, kind, rng)
		for i, pt := range curve {
			row := Fig4Row{
				Kind: kind.String(), Faults: pt.Faults,
				MeanMicroA: pt.MeanMicroA, MinMicroA: pt.MinI * 1e6, MaxMicroA: pt.MaxI * 1e6,
				ArraySize: size, ReadVoltage: p.ReadVoltage,
			}
			if i > 0 {
				prev := curve[i-1]
				if kind == reram.SA1 {
					row.Separated = pt.MinI > prev.MaxI
				} else {
					row.Separated = pt.MaxI < prev.MinI
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// ---------------------------------------------------------------- Fig. 5

// Fig5Row reports phase fault tolerance for one model.
type Fig5Row struct {
	Model       string
	IdealAcc    float64
	ForwardAcc  float64 // faults only in forward-phase crossbars
	BackwardAcc float64 // faults only in backward-phase crossbars
	// BackwardWorse is the paper's headline observation.
	BackwardWorse bool
}

// Fig5 reproduces the forward-vs-backward fault-tolerance study: each
// model trains three times (no faults, faults on forward crossbars only,
// faults on backward crossbars only) at the regime's phase density. The
// 3 × models × seeds grid runs on the parallel cell runner.
func Fig5(ctx context.Context, s Scale, reg FaultRegime) ([]Fig5Row, error) {
	out, err := newRunner(s).Run(ctx, specCells(fig5Specs(s, reg), s))
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	i := 0
	for _, model := range s.Models {
		var ideal, fwd, bwd []float64
		for range s.Seeds {
			ideal = append(ideal, out[i].Value.(*trainer.Result).FinalTestAcc)
			fwd = append(fwd, out[i+1].Value.(*trainer.Result).FinalTestAcc)
			bwd = append(bwd, out[i+2].Value.(*trainer.Result).FinalTestAcc)
			i += 3
		}
		row := Fig5Row{
			Model: model, IdealAcc: mean(ideal),
			ForwardAcc: mean(fwd), BackwardAcc: mean(bwd),
		}
		row.BackwardWorse = row.BackwardAcc < row.ForwardAcc
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Row reports one (model, policy) accuracy cell.
type Fig6Row struct {
	Model    string
	Policy   string
	Accuracy float64
	// DropVsIdeal is idealAcc − accuracy for the same model.
	DropVsIdeal float64
	Swaps       int
	Unmatched   int
}

// Fig6 reproduces the policy comparison under combined pre- and
// post-deployment faults. Policies run in PolicyNames order; the "ideal"
// row is the fault-free reference.
func Fig6(ctx context.Context, s Scale, reg FaultRegime, policies []string) ([]Fig6Row, error) {
	if len(policies) == 0 {
		policies = PolicyNames()
	}
	out, err := newRunner(s).Run(ctx, specCells(fig6Specs(s, reg, policies), s))
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	i := 0
	for _, model := range s.Models {
		idealAcc := 0.0
		for _, policy := range policies {
			var accs []float64
			swaps, unmatched := 0, 0
			for range s.Seeds {
				res := out[i].Value.(*trainer.Result)
				i++
				accs = append(accs, res.FinalTestAcc)
				swaps += res.Swaps
				unmatched += res.Unmatched
			}
			acc := mean(accs)
			if policy == "ideal" {
				idealAcc = acc
			}
			rows = append(rows, Fig6Row{
				Model: model, Policy: policy, Accuracy: acc,
				DropVsIdeal: idealAcc - acc, Swaps: swaps, Unmatched: unmatched,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 7

// Fig7Row is one cell of the post-deployment (m, n) sweep.
type Fig7Row struct {
	Model    string
	M        float64 // new-fault cell fraction per victim crossbar
	N        float64 // victim crossbar fraction per epoch
	Accuracy float64
	IdealAcc float64
	Drop     float64
}

// Fig7 reproduces the post-deployment robustness sweep for the given
// models (the paper uses VGG-19 and ResNet-12) under Remap-D, varying the
// per-epoch wear parameters. ms and ns are the sweep axes; the compressed
// schedule means the paper's (0.1–1%, 0.1–2%) axes map to roughly 6× these
// values here.
func Fig7(ctx context.Context, s Scale, reg FaultRegime, sweepModels []string, ms, ns []float64) ([]Fig7Row, error) {
	out, err := newRunner(s).Run(ctx, specCells(fig7Specs(s, reg, sweepModels, ms, ns), s))
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	i := 0
	for _, model := range sweepModels {
		var idealAccs []float64
		for range s.Seeds {
			idealAccs = append(idealAccs, out[i].Value.(*trainer.Result).FinalTestAcc)
			i++
		}
		idealAcc := mean(idealAccs)
		for _, m := range ms {
			for _, n := range ns {
				var accs []float64
				for range s.Seeds {
					accs = append(accs, out[i].Value.(*trainer.Result).FinalTestAcc)
					i++
				}
				acc := mean(accs)
				rows = append(rows, Fig7Row{
					Model: model, M: m, N: n,
					Accuracy: acc, IdealAcc: idealAcc, Drop: idealAcc - acc,
				})
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Row reports scalability to harder datasets.
type Fig8Row struct {
	Dataset     string
	Model       string
	IdealAcc    float64
	NoProtAcc   float64
	RemapDAcc   float64
	NoProtDrop  float64
	RemapDDrop  float64
	RemapDBeats bool
}

// Fig8 reproduces the scalability study on the CIFAR-100-like and
// SVHN-like datasets with the same fault regime as Fig. 6.
func Fig8(ctx context.Context, s Scale, reg FaultRegime) ([]Fig8Row, error) {
	sets := []string{"cifar100-like", "svhn-like"}
	policies := []string{"ideal", "none", "remap-d"}
	out, err := newRunner(s).Run(ctx, specCells(fig8Specs(s, reg), s))
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	i := 0
	for _, set := range sets {
		for _, model := range s.Models {
			// Aggregate per policy position (ideal, none, remap-d) rather
			// than through a string-keyed map, so accumulation order is
			// fixed by the policies slice.
			accs := make([][]float64, len(policies))
			for pi := range policies {
				for range s.Seeds {
					accs[pi] = append(accs[pi], out[i].Value.(*trainer.Result).FinalTestAcc)
					i++
				}
			}
			row := Fig8Row{
				Dataset: set, Model: model,
				IdealAcc:  mean(accs[0]),
				NoProtAcc: mean(accs[1]),
				RemapDAcc: mean(accs[2]),
			}
			row.NoProtDrop = row.IdealAcc - row.NoProtAcc
			row.RemapDDrop = row.IdealAcc - row.RemapDAcc
			row.RemapDBeats = row.RemapDAcc > row.NoProtAcc
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFig4 renders Fig. 4 rows as an aligned text table.
func FormatFig4(rows []Fig4Row) string {
	out := fmt.Sprintf("%-4s %7s %12s %12s %12s %10s\n", "kind", "faults", "mean(µA)", "min(µA)", "max(µA)", "separated")
	for _, r := range rows {
		out += fmt.Sprintf("%-4s %7d %12.3f %12.3f %12.3f %10v\n",
			r.Kind, r.Faults, r.MeanMicroA, r.MinMicroA, r.MaxMicroA, r.Separated)
	}
	return out
}

// FormatFig5 renders Fig. 5 rows.
func FormatFig5(rows []Fig5Row) string {
	out := fmt.Sprintf("%-12s %8s %9s %9s %15s\n", "model", "ideal", "fwd-inj", "bwd-inj", "backward-worse")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %8.3f %9.3f %9.3f %15v\n",
			r.Model, r.IdealAcc, r.ForwardAcc, r.BackwardAcc, r.BackwardWorse)
	}
	return out
}

// FormatFig6 renders Fig. 6 rows.
func FormatFig6(rows []Fig6Row) string {
	out := fmt.Sprintf("%-12s %-11s %9s %10s %6s %9s\n", "model", "policy", "accuracy", "drop", "swaps", "unmatched")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %-11s %9.3f %10.3f %6d %9d\n",
			r.Model, r.Policy, r.Accuracy, r.DropVsIdeal, r.Swaps, r.Unmatched)
	}
	return out
}

// FormatFig7 renders Fig. 7 rows.
func FormatFig7(rows []Fig7Row) string {
	out := fmt.Sprintf("%-12s %7s %7s %9s %8s %7s\n", "model", "m", "n", "accuracy", "ideal", "drop")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %6.2f%% %6.2f%% %9.3f %8.3f %7.3f\n",
			r.Model, 100*r.M, 100*r.N, r.Accuracy, r.IdealAcc, r.Drop)
	}
	return out
}

// FormatFig8 renders Fig. 8 rows.
func FormatFig8(rows []Fig8Row) string {
	out := fmt.Sprintf("%-14s %-12s %7s %8s %8s %10s %10s\n",
		"dataset", "model", "ideal", "no-prot", "remap-d", "noprot-drop", "rd-drop")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %-12s %7.3f %8.3f %8.3f %10.3f %10.3f\n",
			r.Dataset, r.Model, r.IdealAcc, r.NoProtAcc, r.RemapDAcc, r.NoProtDrop, r.RemapDDrop)
	}
	return out
}
