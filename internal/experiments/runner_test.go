package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// arithCells builds n cells whose result is a pure function of the cell
// index, with a tiny index-dependent sleep so completion order differs
// from submission order under concurrency.
func arithCells(n int, ran *atomic.Int64) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		cells[i] = Cell{
			Key: CellKey{Model: "arith", Policy: "mul", Seed: uint64(i)},
			Run: func(ctx context.Context, _ Logf) (interface{}, error) {
				time.Sleep(time.Duration((n-i)%4) * time.Millisecond)
				if ran != nil {
					ran.Add(1)
				}
				return i * i, nil
			},
		}
	}
	return cells
}

func TestRunnerResultsInSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		r := &Runner{Workers: workers}
		out, err := r.Run(context.Background(), arithCells(20, nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 20 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v.Value.(int) != i*i {
				t.Fatalf("workers=%d: result[%d] = %v, want %d", workers, i, v.Value, i*i)
			}
			if v.Key.Seed != uint64(i) {
				t.Fatalf("workers=%d: result[%d] carries key %s, want seed %d", workers, i, v.Key, i)
			}
			if v.Attempts != 1 {
				t.Fatalf("workers=%d: local execution took %d attempts, want 1", workers, v.Attempts)
			}
		}
	}
}

func TestRunnerProgressCallback(t *testing.T) {
	var lines atomic.Int64
	r := &Runner{Workers: 4, Logf: func(format string, args ...interface{}) {
		lines.Add(1)
		msg := fmt.Sprintf(format, args...)
		if !strings.Contains(msg, "/10") {
			t.Errorf("progress line %q lacks the cell total", msg)
		}
	}}
	if _, err := r.Run(context.Background(), arithCells(10, nil)); err != nil {
		t.Fatal(err)
	}
	if lines.Load() != 10 {
		t.Fatalf("progress lines %d, want 10", lines.Load())
	}
}

func TestRunnerErrorCancelsInFlightCells(t *testing.T) {
	boom := errors.New("boom")
	// Every cell except the failing one blocks until cancelled, so Run can
	// only return if the failure cancels the shared context.
	cells := make([]Cell, 8)
	for i := range cells {
		key := CellKey{Model: "block", Seed: uint64(i)}
		run := func(ctx context.Context, _ Logf) (interface{}, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		if i == 3 {
			key.Model = "fail"
			run = func(ctx context.Context, _ Logf) (interface{}, error) {
				return nil, boom
			}
		}
		cells[i] = Cell{Key: key, Run: run}
	}
	done := make(chan struct{})
	var out []CellResult
	var err error
	go func() {
		defer close(done)
		out, err = (&Runner{Workers: 8}).Run(context.Background(), cells)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("runner did not cancel in-flight cells after a failure")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the failing cell's error", err)
	}
	if !strings.Contains(err.Error(), "fail") {
		t.Fatalf("err %q does not name the failing cell", err)
	}
	if out != nil {
		t.Fatal("results must be nil on failure")
	}
}

func TestRunnerPanicBecomesError(t *testing.T) {
	cells := arithCells(4, nil)
	cells[2].Run = func(ctx context.Context, _ Logf) (interface{}, error) {
		panic("cell exploded")
	}
	_, err := (&Runner{Workers: 2}).Run(context.Background(), cells)
	if err == nil {
		t.Fatal("panicking cell must surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("panic error %q", err)
	}
}

func TestRunnerParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	cells := make([]Cell, 6)
	for i := range cells {
		cells[i] = Cell{
			Key: CellKey{Model: "slow", Seed: uint64(i)},
			Run: func(ctx context.Context, _ Logf) (interface{}, error) {
				ran.Add(1)
				if i == 0 {
					cancel() // simulate SIGINT arriving mid-run
				}
				<-ctx.Done()
				return nil, ctx.Err()
			},
		}
	}
	_, err := (&Runner{Workers: 2}).Run(ctx, cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == int64(len(cells)) {
		t.Fatal("cancellation should have prevented some queued cells from starting")
	}
}

// stubExecutor routes every cell through a recorded executor instead of
// the in-process default, tagging results with a fake worker identity.
type stubExecutor struct {
	calls atomic.Int64
}

func (s *stubExecutor) Execute(ctx context.Context, slot int, cell Cell, logf Logf) (CellResult, error) {
	s.calls.Add(1)
	v, err := cell.Run(ctx, logf)
	return CellResult{Key: cell.Key, Value: v, Attempts: 2, Worker: fmt.Sprintf("stub%d", slot)}, err
}

func TestRunnerUsesConfiguredExecutor(t *testing.T) {
	const workers = 3
	stub := &stubExecutor{}
	var lines []string
	r := &Runner{Workers: workers, Exec: stub, Logf: func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}}
	out, err := r.Run(context.Background(), arithCells(9, nil))
	if err != nil {
		t.Fatal(err)
	}
	if stub.calls.Load() != 9 {
		t.Fatalf("executor ran %d cells, want 9", stub.calls.Load())
	}
	for i, res := range out {
		if res.Value.(int) != i*i {
			t.Fatalf("result[%d] = %v, want %d", i, res.Value, i*i)
		}
		if !strings.HasPrefix(res.Worker, "stub") {
			t.Fatalf("result[%d] worker %q did not come from the stub executor", i, res.Worker)
		}
		if res.Attempts != 2 {
			t.Fatalf("result[%d] attempts %d, want the executor's 2", i, res.Attempts)
		}
		slot := 0
		if _, err := fmt.Sscanf(res.Worker, "stub%d", &slot); err != nil || slot < 0 || slot >= workers {
			t.Fatalf("result[%d] ran on slot %q, want stub0..stub%d", i, res.Worker, workers-1)
		}
	}
	// Progress lines must surface the worker identity and attempt count so
	// distributed runs are debuggable from the transcript alone.
	if len(lines) != 9 {
		t.Fatalf("%d progress lines, want 9", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "stub") || !strings.Contains(l, "attempt 2") {
			t.Fatalf("progress line %q lacks worker identity / attempts", l)
		}
	}
}

func TestCellKeySeedDerivation(t *testing.T) {
	a := CellKey{Model: "vgg11", Policy: "remap-d", Seed: 1}
	if a.RNGSeed() != a.RNGSeed() {
		t.Fatal("RNGSeed must be deterministic")
	}
	seen := map[uint64]CellKey{}
	for _, k := range []CellKey{
		a,
		{Model: "vgg11", Policy: "remap-d", Seed: 2},
		{Model: "vgg16", Policy: "remap-d", Seed: 1},
		{Model: "vgg11", Policy: "none", Seed: 1},
		{Model: "vgg11", Policy: "remap-d", Seed: 1, Extra: "m0.03-n0.01"},
	} {
		if prev, dup := seen[k.RNGSeed()]; dup {
			t.Fatalf("seed collision between %s and %s", prev, k)
		}
		seen[k.RNGSeed()] = k
	}
}

// determinismScale is small enough that the full j1-vs-j4 comparison stays
// in unit-test budget: 3 policies × 2 seeds of the 3-layer cnn-s.
func determinismScale() Scale {
	s := QuickScale()
	s.Name = "determinism"
	s.TrainN, s.TestN = 128, 64
	s.Epochs = 2
	s.Models = []string{"cnn-s"}
	s.Seeds = []uint64{1, 2}
	return s
}

func TestFig6DeterministicAcrossWorkerCounts(t *testing.T) {
	reg := DefaultRegime()
	policies := []string{"ideal", "none", "remap-d"}
	var baseline []Fig6Row
	for _, workers := range []int{1, 4} {
		s := determinismScale()
		s.Workers = workers
		rows, err := Fig6(context.Background(), s, reg, policies)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			baseline = rows
			continue
		}
		if !reflect.DeepEqual(baseline, rows) {
			t.Fatalf("Fig6 rows differ between 1 and %d workers:\n%s\nvs\n%s",
				workers, FormatFig6(baseline), FormatFig6(rows))
		}
		if FormatFig6(baseline) != FormatFig6(rows) {
			t.Fatal("formatted Fig6 tables differ across worker counts")
		}
	}
}

// TestFig6QuickScaleParallelDeterminism is the acceptance-criterion check
// at full QuickScale (2 models × 8 policies × 5 epochs — CPU-minutes), so
// it only runs when explicitly requested.
func TestFig6QuickScaleParallelDeterminism(t *testing.T) {
	if os.Getenv("REMAPD_QUICK_DETERMINISM") == "" {
		t.Skip("set REMAPD_QUICK_DETERMINISM=1 to run the QuickScale -j1 vs -j4 comparison")
	}
	reg := DefaultRegime()
	var tables []string
	var elapsed []time.Duration
	for _, workers := range []int{1, 4} {
		s := QuickScale()
		s.Workers = workers
		start := time.Now()
		rows, err := Fig6(context.Background(), s, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		elapsed = append(elapsed, time.Since(start))
		tables = append(tables, FormatFig6(rows))
	}
	if tables[0] != tables[1] {
		t.Fatalf("QuickScale Fig6 differs between -j1 and -j4:\n%s\nvs\n%s", tables[0], tables[1])
	}
	t.Logf("QuickScale Fig6: -j1 %s, -j4 %s (GOMAXPROCS bounds the speedup)", elapsed[0], elapsed[1])
}
