package experiments

import (
	"context"
	"fmt"

	"remapd/internal/arch"
	"remapd/internal/dataset"
	"remapd/internal/remap"
	"remapd/internal/reram"
	"remapd/internal/trainer"
)

// This file registers the cell kinds behind every figure and ablation and
// provides the spec builders the constructors enumerate cells with. Each
// run function is the former closure body verbatim — the refactor moved
// captured variables into spec fields, nothing else — so spec execution
// reproduces the closures bit-for-bit.

func init() {
	result := func() interface{} { return &trainer.Result{} }
	RegisterKind("policy", result, runPolicySpec)
	RegisterKind("phase", result, runPhaseSpec)
	RegisterKind("threshold", result, runThresholdSpec)
	RegisterKind("receiver", result, runReceiverSpec)
	RegisterKind("coding", result, runCodingSpec)
	RegisterKind("bist-sense", result, runBISTSenseSpec)
}

// specDataset resolves the spec's dataset through the per-process cache.
func specDataset(sp *CellSpec) (*dataset.Dataset, error) {
	return sp.Dataset.dataset()
}

// runPolicySpec is the Fig. 6/7/8 cell: one (model, policy, seed) training
// run under the spec's regime via runOne.
func runPolicySpec(ctx context.Context, sp *CellSpec, s Scale, logf Logf) (interface{}, error) {
	ds, err := specDataset(sp)
	if err != nil {
		return nil, err
	}
	reg := sp.Regime
	return runOne(ctx, sp.Key, s, reg, ds, sp.Classes, logf)
}

// runPhaseSpec is the Fig. 5 cell: ideal, forward-injected, or
// backward-injected training at the regime's phase density.
func runPhaseSpec(ctx context.Context, sp *CellSpec, s Scale, logf Logf) (interface{}, error) {
	ds, err := specDataset(sp)
	if err != nil {
		return nil, err
	}
	reg := sp.Regime
	net, err := buildModel(sp.Key.Model, s, sp.Key.Seed)
	if err != nil {
		return nil, err
	}
	cfg := baseTrainConfig(s, sp.Key.Seed)
	cfg.Ctx = ctx
	cfg.Logf = logf
	cfg.Checkpoint = s.cellCheckpoint(reg, sp.Key, sp.Classes)
	switch sp.Phase {
	case "":
		// ideal: no chip, no injection
	case "forward", "backward":
		ph := arch.Forward
		if sp.Phase == "backward" {
			ph = arch.Backward
		}
		cfg.Chip = NewChip(s)
		cfg.PhaseInject = &trainer.PhaseInjection{Phase: ph, Density: reg.PhaseDensity}
	default:
		return nil, fmt.Errorf("experiments: bad phase %q in cell spec", sp.Phase)
	}
	return s.train(sp.Key, net, ds, cfg)
}

// runThresholdSpec is the Remap-D trigger-threshold ablation cell.
func runThresholdSpec(ctx context.Context, sp *CellSpec, s Scale, logf Logf) (interface{}, error) {
	ds, err := specDataset(sp)
	if err != nil {
		return nil, err
	}
	reg := sp.Regime
	net, err := buildModel(sp.Key.Model, s, sp.Key.Seed)
	if err != nil {
		return nil, err
	}
	rd := remap.NewRemapD()
	rd.Threshold = sp.Threshold
	cfg := baseTrainConfig(s, sp.Key.Seed)
	cfg.Ctx = ctx
	cfg.Logf = logf
	cfg.Checkpoint = s.cellCheckpoint(reg, sp.Key, sp.Classes)
	cfg.Chip = NewChip(s)
	cfg.Policy = rd
	cfg.Pre = &reg.Pre
	cfg.Post = &reg.Post
	return s.train(sp.Key, net, ds, cfg)
}

// runReceiverSpec is the receiver-selection ablation cell (flit-level NoC
// enabled).
func runReceiverSpec(ctx context.Context, sp *CellSpec, s Scale, logf Logf) (interface{}, error) {
	ds, err := specDataset(sp)
	if err != nil {
		return nil, err
	}
	reg := sp.Regime
	net, err := buildModel(sp.Key.Model, s, sp.Key.Seed)
	if err != nil {
		return nil, err
	}
	rd := remap.NewRemapD()
	rd.Threshold = reg.RemapThreshold
	rd.RandomReceiver = sp.RandomReceiver
	cfg := baseTrainConfig(s, sp.Key.Seed)
	cfg.Ctx = ctx
	cfg.Logf = logf
	cfg.Checkpoint = s.cellCheckpoint(reg, sp.Key, sp.Classes)
	cfg.Chip = NewChip(s)
	cfg.Policy = rd
	cfg.Pre = &reg.Pre
	cfg.Post = &reg.Post
	cfg.SimulateNoC = sp.SimulateNoC
	return s.train(sp.Key, net, ds, cfg)
}

// parseCoding maps the spec's coding name back to the scheme constant
// (the inverse of CodingScheme.String).
func parseCoding(name string) (reram.CodingScheme, error) {
	switch name {
	case "offset":
		return reram.OffsetCoding, nil
	case "differential":
		return reram.DifferentialCoding, nil
	}
	return 0, fmt.Errorf("experiments: unknown coding scheme %q in cell spec", name)
}

// runCodingSpec is the conductance-coding ablation cell.
func runCodingSpec(ctx context.Context, sp *CellSpec, s Scale, logf Logf) (interface{}, error) {
	ds, err := specDataset(sp)
	if err != nil {
		return nil, err
	}
	coding, err := parseCoding(sp.Coding)
	if err != nil {
		return nil, err
	}
	reg := sp.Regime
	net, err := buildModel(sp.Key.Model, s, sp.Key.Seed)
	if err != nil {
		return nil, err
	}
	cfg := baseTrainConfig(s, sp.Key.Seed)
	cfg.Ctx = ctx
	cfg.Logf = logf
	cfg.Checkpoint = s.cellCheckpoint(reg, sp.Key, sp.Classes)
	if sp.Key.Policy != "ideal" {
		pol, _, err := PolicyByName(sp.Key.Policy, reg)
		if err != nil {
			return nil, err
		}
		p := reram.DefaultDeviceParams()
		p.CrossbarSize = s.CrossbarSize
		p.Coding = coding
		cfg.Chip = newChipWithParams(p, s)
		cfg.Policy = pol
		cfg.Pre = &reg.Pre
		cfg.Post = &reg.Post
	}
	return s.train(sp.Key, net, ds, cfg)
}

// runBISTSenseSpec is the BIST-estimate-vs-ground-truth ablation cell.
func runBISTSenseSpec(ctx context.Context, sp *CellSpec, s Scale, logf Logf) (interface{}, error) {
	ds, err := specDataset(sp)
	if err != nil {
		return nil, err
	}
	reg := sp.Regime
	net, err := buildModel(sp.Key.Model, s, sp.Key.Seed)
	if err != nil {
		return nil, err
	}
	rd := remap.NewRemapD()
	rd.Threshold = reg.RemapThreshold
	rd.UseBIST = sp.UseBIST
	cfg := baseTrainConfig(s, sp.Key.Seed)
	cfg.Ctx = ctx
	cfg.Logf = logf
	cfg.Checkpoint = s.cellCheckpoint(reg, sp.Key, sp.Classes)
	cfg.Chip = NewChip(s)
	cfg.Policy = rd
	cfg.Pre = &reg.Pre
	cfg.Post = &reg.Post
	return s.train(sp.Key, net, ds, cfg)
}

// ------------------------------------------------------------ spec builders
//
// Each builder enumerates one figure/ablation's cells in the exact order
// the sequential loops (and hence the rows' aggregation indices) expect.
// The figure functions wrap these in in-process adapters; the spec tests
// round-trip them; a dist run ships them as-is.

// cifar10Spec is the shared Fig. 5/6/7 and ablation dataset at the scale.
func cifar10Spec(s Scale) DatasetSpec {
	return DatasetSpec{Name: "cifar10-like", Train: s.TrainN, Test: s.TestN, Img: s.ImgSize, Seed: 77}
}

// fig5Specs enumerates the phase fault-tolerance grid.
func fig5Specs(s Scale, reg FaultRegime) []*CellSpec {
	variants := []struct {
		name  string
		phase string
	}{
		{"ideal", ""},
		{"inject-forward", "forward"},
		{"inject-backward", "backward"},
	}
	var specs []*CellSpec
	for _, model := range s.Models {
		for _, seed := range s.Seeds {
			for _, v := range variants {
				specs = append(specs, &CellSpec{
					Kind:    "phase",
					Key:     CellKey{Model: model, Policy: v.name, Seed: seed},
					Scale:   s.Spec(),
					Regime:  reg,
					Dataset: cifar10Spec(s),
					Classes: 10,
					Phase:   v.phase,
				})
			}
		}
	}
	return specs
}

// fig6Specs enumerates the policy-comparison grid.
func fig6Specs(s Scale, reg FaultRegime, policies []string) []*CellSpec {
	var specs []*CellSpec
	for _, model := range s.Models {
		for _, policy := range policies {
			for _, seed := range s.Seeds {
				specs = append(specs, &CellSpec{
					Kind:    "policy",
					Key:     CellKey{Model: model, Policy: policy, Seed: seed},
					Scale:   s.Spec(),
					Regime:  reg,
					Dataset: cifar10Spec(s),
					Classes: 10,
				})
			}
		}
	}
	return specs
}

// fig7Specs enumerates the post-deployment (m, n) sweep: per model, the
// ideal baseline cells followed by the Remap-D cells at each sweep point
// (each carrying its modified regime, which also fingerprints its
// checkpoints).
func fig7Specs(s Scale, reg FaultRegime, sweepModels []string, ms, ns []float64) []*CellSpec {
	var specs []*CellSpec
	for _, model := range sweepModels {
		for _, seed := range s.Seeds {
			specs = append(specs, &CellSpec{
				Kind:    "policy",
				Key:     CellKey{Model: model, Policy: "ideal", Seed: seed},
				Scale:   s.Spec(),
				Regime:  reg,
				Dataset: cifar10Spec(s),
				Classes: 10,
			})
		}
		for _, m := range ms {
			for _, n := range ns {
				r := reg
				r.Post.CellFraction = m
				r.Post.CrossbarFraction = n
				for _, seed := range s.Seeds {
					specs = append(specs, &CellSpec{
						Kind: "policy",
						Key: CellKey{Model: model, Policy: "remap-d", Seed: seed,
							Extra: fmt.Sprintf("m%g-n%g", m, n)},
						Scale:   s.Spec(),
						Regime:  r,
						Dataset: cifar10Spec(s),
						Classes: 10,
					})
				}
			}
		}
	}
	return specs
}

// fig8Specs enumerates the scalability grid over the harder datasets.
func fig8Specs(s Scale, reg FaultRegime) []*CellSpec {
	sets := []struct {
		name    string
		classes int
		ds      DatasetSpec
	}{
		{"cifar100-like", 100, DatasetSpec{Name: "cifar100-like", Train: s.TrainN * 2, Test: s.TestN, Img: s.ImgSize, Seed: 88}},
		{"svhn-like", 10, DatasetSpec{Name: "svhn-like", Train: s.TrainN, Test: s.TestN, Img: s.ImgSize, Seed: 99}},
	}
	policies := []string{"ideal", "none", "remap-d"}
	var specs []*CellSpec
	for _, set := range sets {
		for _, model := range s.Models {
			for _, policy := range policies {
				for _, seed := range s.Seeds {
					specs = append(specs, &CellSpec{
						Kind:    "policy",
						Key:     CellKey{Model: model, Policy: policy, Seed: seed, Extra: set.name},
						Scale:   s.Spec(),
						Regime:  reg,
						Dataset: set.ds,
						Classes: set.classes,
					})
				}
			}
		}
	}
	return specs
}

// ablationThresholdSpecs enumerates the trigger-threshold sweep.
func ablationThresholdSpecs(s Scale, reg FaultRegime, model string, thresholds []float64) []*CellSpec {
	var specs []*CellSpec
	for _, th := range thresholds {
		for _, seed := range s.Seeds {
			specs = append(specs, &CellSpec{
				Kind: "threshold",
				Key: CellKey{Model: model, Policy: "remap-d", Seed: seed,
					Extra: fmt.Sprintf("th%g", th)},
				Scale:     s.Spec(),
				Regime:    reg,
				Dataset:   cifar10Spec(s),
				Classes:   10,
				Threshold: th,
			})
		}
	}
	return specs
}

// ablationReceiverSpecs enumerates the receiver-selection comparison.
func ablationReceiverSpecs(s Scale, reg FaultRegime, model string) []*CellSpec {
	selections := []struct {
		name   string
		random bool
	}{{"nearest", false}, {"random", true}}
	var specs []*CellSpec
	for _, sel := range selections {
		for _, seed := range s.Seeds {
			specs = append(specs, &CellSpec{
				Kind:           "receiver",
				Key:            CellKey{Model: model, Policy: "remap-d", Seed: seed, Extra: sel.name},
				Scale:          s.Spec(),
				Regime:         reg,
				Dataset:        cifar10Spec(s),
				Classes:        10,
				RandomReceiver: sel.random,
				SimulateNoC:    true,
			})
		}
	}
	return specs
}

// ablationCodingSpecs enumerates the coding-scheme comparison.
func ablationCodingSpecs(s Scale, reg FaultRegime, model string) []*CellSpec {
	codings := []reram.CodingScheme{reram.OffsetCoding, reram.DifferentialCoding}
	policies := []string{"ideal", "none", "remap-d"}
	var specs []*CellSpec
	for _, coding := range codings {
		for _, policy := range policies {
			for _, seed := range s.Seeds {
				specs = append(specs, &CellSpec{
					Kind:    "coding",
					Key:     CellKey{Model: model, Policy: policy, Seed: seed, Extra: coding.String()},
					Scale:   s.Spec(),
					Regime:  reg,
					Dataset: cifar10Spec(s),
					Classes: 10,
					Coding:  coding.String(),
				})
			}
		}
	}
	return specs
}

// ablationBISTSpecs enumerates the sensing-source comparison.
func ablationBISTSpecs(s Scale, reg FaultRegime, model string) []*CellSpec {
	sources := []struct {
		name    string
		useBIST bool
	}{{"bist", true}, {"truth", false}}
	var specs []*CellSpec
	for _, src := range sources {
		for _, seed := range s.Seeds {
			specs = append(specs, &CellSpec{
				Kind:    "bist-sense",
				Key:     CellKey{Model: model, Policy: "remap-d", Seed: seed, Extra: src.name},
				Scale:   s.Spec(),
				Regime:  reg,
				Dataset: cifar10Spec(s),
				Classes: 10,
				UseBIST: src.useBIST,
			})
		}
	}
	return specs
}
