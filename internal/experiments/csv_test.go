package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSVFig4(t *testing.T) {
	rows := Fig4(4, 2, 5, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("lines %d, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[0], "kind,faults,") {
		t.Fatalf("header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != strings.Count(lines[0], ",") {
			t.Fatalf("ragged row %q", l)
		}
	}
}

func TestWriteCSVAllRowTypes(t *testing.T) {
	cases := []interface{}{
		[]Fig5Row{{Model: "m", IdealAcc: 1}},
		[]Fig6Row{{Model: "m", Policy: "p"}},
		[]Fig7Row{{Model: "m", M: 0.1}},
		[]Fig8Row{{Dataset: "d", Model: "m"}},
		[]ThresholdRow{{Threshold: 0.02}},
		[]ReceiverRow{{Policy: "nearest"}},
		[]CodingRow{{Coding: "offset"}},
		[]BISTvsTruthRow{{Source: "bist"}},
		[]AreaRow{{Scheme: "x"}},
	}
	for _, rows := range cases {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rows); err != nil {
			t.Fatalf("%T: %v", rows, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%T produced no output", rows)
		}
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	rows := []Fig6Row{{Model: `we,ird"name`, Policy: "p"}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"we,ird""name"`) {
		t.Fatalf("escaping broken: %q", buf.String())
	}
}

func TestWriteCSVRejectsNonSlice(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 42); err == nil {
		t.Fatal("non-slice must error")
	}
	if err := WriteCSV(&buf, []int{1}); err == nil {
		t.Fatal("non-struct elements must error")
	}
}

func TestWriteCSVEmptySlice(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Fig4Row{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty slice must write nothing")
	}
}
