package experiments

import (
	"context"
	"testing"

	"remapd/internal/dataset"
	"remapd/internal/nn"
	"remapd/internal/obs"
	"remapd/internal/trainer"
)

// TestFig6TelemetryByteIdentical is the determinism proof for the telemetry
// layer: running the same Fig. 6 grid with and without a metrics sink must
// render byte-identical tables. Telemetry is pure observation — it draws no
// randomness and reads no clocks — so any divergence here is a determinism
// bug, not noise.
func TestFig6TelemetryByteIdentical(t *testing.T) {
	s := microScale()
	reg := DefaultRegime()
	policies := []string{"ideal", "none", "remap-d"}

	plain, err := Fig6(context.Background(), s, reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sink, err := obs.NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	traced := s
	traced.Metrics = sink
	rows, err := Fig6(context.Background(), traced, reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	want, got := FormatFig6(plain), FormatFig6(rows)
	if want != got {
		t.Fatalf("telemetry changed results:\nwithout metrics:\n%s\nwith metrics:\n%s", want, got)
	}

	// Audit path: the figure's swap counts must be reproducible from the
	// recorded events alone — if they aren't, the trace is incomplete.
	cells, err := obs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(s.Models)*len(policies)*len(s.Seeds) {
		t.Fatalf("loaded %d cells, want %d", len(cells), len(s.Models)*len(policies)*len(s.Seeds))
	}
	swapsFromEvents := map[string]int{}
	for _, cm := range cells {
		swapsFromEvents[cm.Model+"/"+cm.Policy] += cm.SwapTotal()
	}
	for _, row := range rows {
		if got := swapsFromEvents[row.Model+"/"+row.Policy]; got != row.Swaps {
			t.Errorf("%s/%s: %d swaps from events, figure says %d",
				row.Model, row.Policy, got, row.Swaps)
		}
	}

	// The aggregated summary must see the same totals through its own path.
	sum := obs.Summarize(cells)
	byPolicy := map[string]int{}
	for _, row := range rows {
		byPolicy[row.Policy] += row.Swaps
	}
	for _, ps := range sum.Policies {
		if ps.Swaps != byPolicy[ps.Policy] {
			t.Errorf("summary policy %s: %d swaps, figure says %d", ps.Policy, ps.Swaps, byPolicy[ps.Policy])
		}
	}
}

// TestFig6SpansByteIdentical is the same determinism proof for the
// operational-telemetry layer: lifecycle spans and the live status
// registry observe the harness, never the simulation, so wiring them in
// must leave the Fig. 6 table byte-identical — and must record exactly
// one finished span per grid cell.
func TestFig6SpansByteIdentical(t *testing.T) {
	s := microScale()
	reg := DefaultRegime()
	policies := []string{"ideal", "none", "remap-d"}

	plain, err := Fig6(context.Background(), s, reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	traced := s
	traced.Spans = obs.NewSpanRecorder()
	traced.Status = obs.NewStatus()
	rows, err := Fig6(context.Background(), traced, reg, policies)
	if err != nil {
		t.Fatal(err)
	}
	if want, got := FormatFig6(plain), FormatFig6(rows); want != got {
		t.Fatalf("span recording changed results:\nwithout spans:\n%s\nwith spans:\n%s", want, got)
	}

	cells := len(s.Models) * len(policies) * len(s.Seeds)
	spans := traced.Spans.Spans()
	if len(spans) != cells {
		t.Fatalf("recorded %d spans, want one per cell (%d)", len(spans), cells)
	}
	for _, sp := range spans {
		if sp.Outcome != "ok" || len(sp.Attempts) != 1 {
			t.Errorf("in-process span should be one clean attempt: %+v", sp)
		}
		if sp.Attempts[0].RunSeconds <= 0 {
			t.Errorf("in-process attempt missing its run segment: %+v", sp.Attempts[0])
		}
	}
	agg := traced.Spans.Aggregate()
	if agg.Cells != cells || agg.Attempts != cells || agg.Requeues != 0 {
		t.Errorf("aggregate = %+v, want %d clean cells", agg, cells)
	}

	// The status registry must have been fed: after the run, the grid
	// section reports every cell done.
	snap := traced.Status.Snapshot()
	grid, ok := snap["grid"].(obs.GridStatus)
	if !ok {
		t.Fatalf("status has no grid section: %+v", snap)
	}
	if grid.Total != cells || grid.Done != cells || grid.Failed != 0 {
		t.Errorf("grid status = %+v, want %d/%d done", grid, cells, cells)
	}
	if _, ok := snap["spans"]; !ok {
		t.Errorf("status has no spans section: %+v", snap)
	}
}

// TestTrainTelemetryFlushedOnError checks the evidence-preservation
// contract: when a cell fails mid-training, its partial trace is still
// persisted.
func TestTrainTelemetryFlushedOnError(t *testing.T) {
	s := microScale()
	reg := DefaultRegime()
	dir := t.TempDir()
	sink, err := obs.NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Metrics = sink

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the cell dies at its first cancellation check
	key := CellKey{Model: "cnn-s", Policy: "remap-d", Seed: 1}
	ds, net, cfg := microCell(t, s, reg, key)
	cfg.Ctx = ctx
	if _, err := s.train(key, net, ds, cfg); err == nil {
		t.Fatal("cancelled training must fail")
	}
	cells, err := obs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Cell != key.String() {
		t.Fatalf("failed cell's trace not persisted: %+v", cells)
	}
}

// microCell builds the pieces of one training cell at micro scale.
func microCell(t *testing.T, s Scale, reg FaultRegime, key CellKey) (*dataset.Dataset, *nn.Network, trainer.Config) {
	t.Helper()
	ds := dataset.CIFAR10Like(s.TrainN, s.TestN, s.ImgSize, 77)
	net, err := buildModel(key.Model, s, key.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseTrainConfig(s, key.Seed)
	pol, trackGrads, err := PolicyByName(key.Policy, reg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chip = NewChip(s)
	cfg.Policy = pol
	cfg.Pre = &reg.Pre
	cfg.Post = &reg.Post
	cfg.TrackGradAbs = trackGrads
	return ds, net, cfg
}
