package experiments

import (
	"context"
	"strings"
	"testing"
)

// microScale keeps the integration tests fast: one tiny model, tiny data.
func microScale() Scale {
	s := QuickScale()
	s.Name = "micro"
	s.TrainN, s.TestN = 160, 100
	s.Epochs = 2
	s.Models = []string{"cnn-s"}
	s.Seeds = []uint64{1}
	return s
}

func TestScalesAreSane(t *testing.T) {
	for _, s := range []Scale{QuickScale(), StandardScale()} {
		if s.Epochs <= 0 || s.TrainN <= 0 || len(s.Models) == 0 || len(s.Seeds) == 0 {
			t.Fatalf("scale %q incomplete: %+v", s.Name, s)
		}
		if s.Geom.Crossbars() < 256 {
			t.Fatalf("scale %q chip too small for the model zoo", s.Name)
		}
	}
	if len(StandardScale().Models) != 6 {
		t.Fatal("standard scale must cover the paper's six CNNs")
	}
}

func TestRegimes(t *testing.T) {
	d := DefaultRegime()
	if d.Pre.HighDensity[0] <= d.Pre.LowDensity[1] {
		t.Fatal("hot band must sit above the low band")
	}
	if d.RemapThreshold <= d.Pre.LowDensity[1] || d.RemapThreshold >= d.Pre.HighDensity[0] {
		t.Fatalf("threshold %v must separate the bands %v / %v",
			d.RemapThreshold, d.Pre.LowDensity, d.Pre.HighDensity)
	}
	p := PaperRegime()
	if p.Pre.HighDensity != [2]float64{0.004, 0.010} {
		t.Fatalf("paper regime hot band %v", p.Pre.HighDensity)
	}
}

func TestPolicyByName(t *testing.T) {
	reg := DefaultRegime()
	for _, name := range PolicyNames() {
		pol, _, err := PolicyByName(name, reg)
		if err != nil {
			t.Fatal(err)
		}
		if name == "ideal" {
			if pol != nil {
				t.Fatal("ideal must map to a nil policy (no chip)")
			}
			continue
		}
		if pol == nil {
			t.Fatalf("policy %q is nil", name)
		}
	}
	if _, _, err := PolicyByName("bogus", reg); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestFig4CurvesShape(t *testing.T) {
	rows := Fig4(4, 4, 10, 1)
	if len(rows) != 10 { // (4+1 points) × 2 kinds
		t.Fatalf("row count %d", len(rows))
	}
	// SA1 mean current increases with fault count; SA0 decreases.
	var sa0, sa1 []Fig4Row
	for _, r := range rows {
		if r.Kind == "SA0" {
			sa0 = append(sa0, r)
		} else {
			sa1 = append(sa1, r)
		}
	}
	for i := 1; i < len(sa1); i++ {
		if sa1[i].MeanMicroA <= sa1[i-1].MeanMicroA {
			t.Fatal("SA1 curve not increasing")
		}
		if !sa1[i].Separated {
			t.Fatalf("SA1 bands must separate at k=%d", i)
		}
	}
	for i := 1; i < len(sa0); i++ {
		if sa0[i].MeanMicroA >= sa0[i-1].MeanMicroA {
			t.Fatal("SA0 curve not decreasing")
		}
	}
	if !strings.Contains(FormatFig4(rows), "SA1") {
		t.Fatal("formatter dropped rows")
	}
}

func TestFig5PhaseStudy(t *testing.T) {
	// The phase asymmetry needs depth (gradient errors compound through
	// layers) and enough optimizer steps; shallow 2-epoch micro runs are
	// degenerate. VGG-11 shows it robustly.
	s := microScale()
	s.TrainN, s.Epochs = 320, 4
	s.Models = []string{"vgg11"}
	rows, err := Fig5(context.Background(), s, DefaultRegime())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows %d", len(rows))
	}
	r := rows[0]
	if r.IdealAcc <= 0.2 {
		t.Fatalf("ideal accuracy %.3f implausible", r.IdealAcc)
	}
	// The headline claim: the backward phase is less fault tolerant.
	if !r.BackwardWorse {
		t.Fatalf("backward phase must be less tolerant: fwd=%.3f bwd=%.3f", r.ForwardAcc, r.BackwardAcc)
	}
	if FormatFig5(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig6PolicyMatrix(t *testing.T) {
	s := microScale()
	rows, err := Fig6(context.Background(), s, DefaultRegime(), []string{"ideal", "none", "remap-d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	byPolicy := map[string]Fig6Row{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	if byPolicy["ideal"].DropVsIdeal != 0 {
		t.Fatal("ideal row must have zero drop")
	}
	if byPolicy["remap-d"].Swaps == 0 {
		t.Fatal("remap-d must swap under the default regime")
	}
	if FormatFig6(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig7Sweep(t *testing.T) {
	s := microScale()
	rows, err := Fig7(context.Background(), s, DefaultRegime(), []string{"cnn-s"}, []float64{0.01, 0.06}, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.IdealAcc <= 0 || r.Accuracy < 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if FormatFig7(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig8Scalability(t *testing.T) {
	s := microScale()
	s.TrainN = 200 // CIFAR100Like needs 2× this for class coverage
	rows, err := Fig8(context.Background(), s, DefaultRegime())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // 2 datasets × 1 model
		t.Fatalf("rows %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Dataset] = true
	}
	if !names["cifar100-like"] || !names["svhn-like"] {
		t.Fatalf("datasets %v", names)
	}
	if FormatFig8(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestBISTTimingOverheadMatchesPaper(t *testing.T) {
	// Paper's own configuration: 50k samples, VGG-19 (19 MVM layers), 8
	// crossbars per IMA ⇒ 0.13% overhead.
	r := BISTTimingOverhead(50000, 19, 8)
	if r.CyclesPerPass != 260 {
		t.Fatalf("cycles per pass %d", r.CyclesPerPass)
	}
	if r.Overhead < 0.0008 || r.Overhead > 0.002 {
		t.Fatalf("BIST overhead %.5f, paper reports 0.0013", r.Overhead)
	}
	if FormatBISTOverhead(r) == "" {
		t.Fatal("empty format")
	}
}

func TestNoCRemapOverheadMatchesPaper(t *testing.T) {
	// Reduced rounds for test speed; the cmd tool runs the paper's 50.
	r := NoCRemapOverhead(5, 2, 10, 42)
	if r.MeanOverhead <= 0 {
		t.Fatal("no overhead measured")
	}
	// The paper reports 0.22% mean / 0.36% worst; accept the band
	// 0.05%–1% (we reproduce magnitude, not the exact testbed).
	if r.MeanOverhead < 0.0005 || r.MeanOverhead > 0.01 {
		t.Fatalf("mean overhead %.5f outside plausible band", r.MeanOverhead)
	}
	if r.WorstOverhead < r.MeanOverhead {
		t.Fatal("worst < mean")
	}
	if FormatNoCOverhead(r) == "" {
		t.Fatal("empty format")
	}
}

func TestAreaOverheadTable(t *testing.T) {
	rows := AreaOverheads()
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		rel := r.Overhead / r.PaperRef
		if rel < 0.7 || rel > 1.3 {
			t.Fatalf("%s overhead %.4f too far from paper's %.4f", r.Scheme, r.Overhead, r.PaperRef)
		}
	}
	if rows[0].Overhead >= rows[1].Overhead {
		t.Fatal("Remap-D (BIST only) must be the cheapest scheme")
	}
	if FormatArea(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestAblationThresholdRuns(t *testing.T) {
	s := microScale()
	rows, err := AblationThreshold(context.Background(), s, DefaultRegime(), "cnn-s", []float64{0.004, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	if FormatThreshold(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestAblationReceiverSelection(t *testing.T) {
	s := microScale()
	rows, err := AblationReceiverSelection(context.Background(), s, DefaultRegime(), "cnn-s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy != "nearest" || rows[1].Policy != "random" {
		t.Fatalf("rows %+v", rows)
	}
	if FormatReceiver(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestAblationCoding(t *testing.T) {
	s := microScale()
	rows, err := AblationCoding(context.Background(), s, DefaultRegime(), "cnn-s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	// The offset (PytorX) coding must be the harsher model.
	if rows[0].Coding != "offset" || rows[1].Coding != "differential" {
		t.Fatalf("coding order %v/%v", rows[0].Coding, rows[1].Coding)
	}
	if rows[0].NoProtDrop < rows[1].NoProtDrop-0.15 {
		t.Fatalf("offset coding should damage at least as much: %+v", rows)
	}
	if FormatCoding(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestAblationBISTvsTruth(t *testing.T) {
	s := microScale()
	rows, err := AblationBISTvsTruth(context.Background(), s, DefaultRegime(), "cnn-s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	// BIST sensing must trigger a comparable number of swaps to the
	// ground-truth signal (the estimate is good enough to drive policy).
	b, tr := rows[0], rows[1]
	if b.Swaps == 0 && tr.Swaps > 0 {
		t.Fatalf("BIST sensing missed all senders: %+v", rows)
	}
	if FormatBISTvsTruth(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestEstimateEpochComputeCycles(t *testing.T) {
	if got := EstimateEpochComputeCycles(50000, 19); got != 1.9e6 {
		t.Fatalf("epoch cycles %v, want 1.9e6", got)
	}
}
