package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"remapd/internal/checkpoint"
)

// TestFig6GridInterruptAndResume is the grid-level acceptance check: a
// checkpointed Fig. 6 run interrupted mid-grid and then re-run must emit
// exactly the rows of an uninterrupted run, skipping completed cells and
// resuming partial ones.
func TestFig6GridInterruptAndResume(t *testing.T) {
	reg := DefaultRegime()
	policies := []string{"ideal", "none", "remap-d"}

	base := determinismScale()
	base.Workers = 2

	// Uninterrupted, checkpoint-free baseline.
	baseline, err := Fig6(context.Background(), base, reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	store, err := checkpoint.NewStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel the grid as soon as the first cell
	// completes (simulating SIGINT mid-grid); in-flight cells stop at
	// their next batch boundary, leaving their epoch-boundary snapshots.
	interrupted := base
	interrupted.Checkpoints = store
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	interrupted.Progress = func(format string, args ...interface{}) {
		if strings.HasPrefix(format, "cell ") {
			once.Do(cancel)
		}
	}
	if _, err := Fig6(ctx, interrupted, reg, policies); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted grid returned %v, want context.Canceled", err)
	}

	// Resume: same store, fresh context. Rows must be bit-identical to
	// the baseline, and at least the completed cell must train zero
	// epochs (its snapshot already holds the full result).
	resumed := base
	resumed.Checkpoints = store
	var mu sync.Mutex
	epochLines := 0
	resumed.Progress = func(format string, args ...interface{}) {
		line := fmt.Sprintf(format, args...)
		if strings.Contains(line, "] epoch ") {
			mu.Lock()
			epochLines++
			mu.Unlock()
			// Satellite check: per-cell trainer output is multiplexed
			// through the runner with the cell key as prefix.
			if !strings.HasPrefix(line, "[") || !strings.Contains(line, "] ") {
				t.Errorf("unattributed cell progress line %q", line)
			}
		}
	}
	rows, err := Fig6(context.Background(), resumed, reg, policies)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, rows) {
		t.Fatalf("resumed grid differs from uninterrupted baseline:\n%s\nvs\n%s",
			FormatFig6(baseline), FormatFig6(rows))
	}
	totalEpochs := len(policies) * len(base.Seeds) * base.Epochs
	if epochLines >= totalEpochs {
		t.Fatalf("resume retrained the whole grid (%d epoch lines, full grid is %d)", epochLines, totalEpochs)
	}

	// Third pass: everything is checkpointed as complete — zero epochs.
	mu.Lock()
	epochLines = 0
	mu.Unlock()
	rows, err = Fig6(context.Background(), resumed, reg, policies)
	if err != nil {
		t.Fatal(err)
	}
	if epochLines != 0 {
		t.Fatalf("fully-checkpointed grid retrained %d epochs, want 0", epochLines)
	}
	if !reflect.DeepEqual(baseline, rows) {
		t.Fatal("fully-checkpointed grid rows differ from baseline")
	}
}

// TestCellFingerprintDistinguishesConfigs guards the staleness detector:
// any knob that changes results must change the fingerprint, and
// scheduling knobs must not.
func TestCellFingerprintDistinguishesConfigs(t *testing.T) {
	s := determinismScale()
	reg := DefaultRegime()
	key := CellKey{Model: "cnn-s", Policy: "remap-d", Seed: 1}
	base := cellFingerprint(s, reg, key, 10)

	s2 := s
	s2.Epochs++
	if cellFingerprint(s2, reg, key, 10) == base {
		t.Fatal("epoch count not in fingerprint")
	}
	reg2 := reg
	reg2.Post.CellFraction *= 2
	if cellFingerprint(s, reg2, key, 10) == base {
		t.Fatal("post-fault regime not in fingerprint")
	}
	key2 := key
	key2.Extra = "th0.01"
	if cellFingerprint(s, reg, key2, 10) == base {
		t.Fatal("cell key Extra not in fingerprint")
	}
	if cellFingerprint(s, reg, key, 100) == base {
		t.Fatal("class count not in fingerprint")
	}

	// Scheduling-only knobs must leave the fingerprint unchanged, or
	// changing -j would orphan every checkpoint.
	s3 := s
	s3.Workers = 7
	s3.Progress = func(string, ...interface{}) {}
	s3.Exec = localExecutor{}
	if cellFingerprint(s3, reg, key, 10) != base {
		t.Fatal("scheduling knobs leaked into the fingerprint")
	}
}
