package experiments

import (
	"fmt"
	"io"
	"reflect"
	"strings"
)

// WriteCSV renders any slice of experiment row structs (Fig4Row, Fig6Row,
// ThresholdRow, …) as CSV with a header derived from the exported field
// names, so results can be plotted directly. Nested structs are not
// supported (no experiment row needs them).
func WriteCSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("experiments: WriteCSV wants a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return nil
	}
	et := v.Index(0).Type()
	if et.Kind() != reflect.Struct {
		return fmt.Errorf("experiments: WriteCSV wants a slice of structs, got %T", rows)
	}

	var cols []int
	var header []string
	for i := 0; i < et.NumField(); i++ {
		f := et.Field(i)
		if !f.IsExported() {
			continue
		}
		switch f.Type.Kind() {
		case reflect.Struct, reflect.Slice, reflect.Map, reflect.Ptr:
			return fmt.Errorf("experiments: field %s has unsupported kind %s", f.Name, f.Type.Kind())
		}
		cols = append(cols, i)
		header = append(header, strings.ToLower(f.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		row := v.Index(r)
		parts := make([]string, 0, len(cols))
		for _, ci := range cols {
			fv := row.Field(ci)
			switch fv.Kind() {
			case reflect.Float64, reflect.Float32:
				parts = append(parts, fmt.Sprintf("%g", fv.Float()))
			case reflect.String:
				parts = append(parts, csvEscape(fv.String()))
			default:
				parts = append(parts, fmt.Sprintf("%v", fv.Interface()))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
