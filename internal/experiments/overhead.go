package experiments

import (
	"fmt"

	"remapd/internal/ancode"
	"remapd/internal/arch"
	"remapd/internal/area"
	"remapd/internal/bist"
	"remapd/internal/noc"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// EstimateEpochComputeCycles returns the rough number of ReRAM cycles one
// training epoch occupies, using the PipeLayer pipelining model: the chip
// streams one sample per pipeline beat through 2·depth MVM stages (forward
// and backward), so an epoch of `samples` samples through a network with
// `mvmLayers` crossbar-mapped layers takes ≈ samples · 2 · mvmLayers
// cycles. For CIFAR-scale training (50 000 samples, VGG-19) this lands at
// ~1.9 M ReRAM cycles — the denominator that makes the paper's 260-cycle
// BIST pass a 0.13% overhead.
func EstimateEpochComputeCycles(samples, mvmLayers int) float64 {
	return float64(samples) * 2 * float64(mvmLayers)
}

// BISTOverheadRow reports the per-epoch BIST timing cost.
type BISTOverheadRow struct {
	CrossbarSize     int
	CyclesPerPass    int
	PassMicroSec     float64
	SequentialPasses int // crossbars tested by one controller (per IMA)
	EpochCycles      float64
	Overhead         float64 // fraction of epoch compute time
}

// BISTTimingOverhead reproduces the paper's 0.13% BIST timing claim at the
// paper's own technology point (128×128 arrays, CIFAR-sized epochs).
func BISTTimingOverhead(samples, mvmLayers, xbarsPerIMA int) BISTOverheadRow {
	p := reram.DefaultDeviceParams()
	epoch := EstimateEpochComputeCycles(samples, mvmLayers)
	return BISTOverheadRow{
		CrossbarSize:     p.CrossbarSize,
		CyclesPerPass:    bist.CyclesPerPass(p),
		PassMicroSec:     bist.PassTimeNS(p) / 1e3,
		SequentialPasses: xbarsPerIMA,
		EpochCycles:      epoch,
		Overhead:         bist.TimingOverhead(p, xbarsPerIMA, epoch),
	}
}

// NoCOverheadRow reports the Monte-Carlo remap-traffic study.
type NoCOverheadRow struct {
	Rounds        int
	Senders       int
	Receivers     int
	WeightFlits   int
	MeanCycles    float64
	WorstCycles   int
	EpochCycles   float64
	MeanOverhead  float64
	WorstOverhead float64
	MeanPairs     float64
}

// NoCRemapOverhead reproduces the Section IV.C Monte-Carlo experiment: 50
// rounds of random sender/receiver placements on the 64-tile c-mesh, full
// three-phase handshake at flit level, overhead relative to one epoch of
// compute. A sender tile exchanges the weights of a whole tile (its
// crossbars), hence WeightFlits = crossbars/tile × 1024 flits.
func NoCRemapOverhead(rounds, senders, receivers int, seed uint64) NoCOverheadRow {
	cfg := noc.DefaultConfig()
	g := arch.DefaultGeometry()
	pp := noc.DefaultProtocolParams()
	// One 128×128 crossbar holds 16384 16-bit weights = 8192 32-bit flits;
	// a tile swap moves all of its crossbars.
	pp.WeightFlits = g.IMAsPerTile * g.XbarsPerIMA * 8192

	// Epoch compute time in NoC (CMOS, 1.2 GHz) cycles: the epoch's ReRAM
	// cycles (100 ns each) converted to 0.833 ns NoC cycles.
	p := reram.DefaultDeviceParams()
	epochReRAM := EstimateEpochComputeCycles(50000, 19)
	epochNoC := epochReRAM * p.ReRAMCycleNS / p.CMOSCycleNS

	rng := tensor.NewRNG(seed)
	st := noc.MonteCarloOverhead(cfg, pp, rounds, senders, receivers, epochNoC, rng)
	return NoCOverheadRow{
		Rounds: rounds, Senders: senders, Receivers: receivers,
		WeightFlits: pp.WeightFlits,
		MeanCycles:  st.MeanCycles, WorstCycles: st.WorstCycles,
		EpochCycles:  epochNoC,
		MeanOverhead: st.MeanOverhead, WorstOverhead: st.WorstOverhead,
		MeanPairs: st.MeanPairs,
	}
}

// AreaRow is one line of the area-overhead table.
type AreaRow struct {
	Scheme   string
	Overhead float64
	PaperRef float64 // the value the paper reports/cites
}

// AreaOverheads reproduces the area comparison: BIST (Remap-D's only
// hardware), AN-code, and Remap-T spare fractions.
func AreaOverheads() []AreaRow {
	c := area.DefaultComponents()
	g := arch.DefaultGeometry()
	return []AreaRow{
		{Scheme: "remap-d (BIST)", Overhead: area.RemapDOverhead(c, g), PaperRef: 0.0061},
		{Scheme: "an-code", Overhead: area.ANCodeOverhead(c, g), PaperRef: ancode.AreaOverhead},
		{Scheme: "remap-t-5%", Overhead: area.RemapTOverhead(0.05), PaperRef: 0.05},
		{Scheme: "remap-t-10%", Overhead: area.RemapTOverhead(0.10), PaperRef: 0.10},
	}
}

// FormatBISTOverhead renders the BIST timing row.
func FormatBISTOverhead(r BISTOverheadRow) string {
	return fmt.Sprintf(
		"crossbar %d×%d: %d ReRAM cycles/pass (%.1f µs); %d sequential passes per IMA;\n"+
			"epoch ≈ %.3g ReRAM cycles ⇒ BIST timing overhead %.3f%% (paper: 0.13%%)\n",
		r.CrossbarSize, r.CrossbarSize, r.CyclesPerPass, r.PassMicroSec,
		r.SequentialPasses, r.EpochCycles, 100*r.Overhead)
}

// FormatNoCOverhead renders the NoC Monte-Carlo row.
func FormatNoCOverhead(r NoCOverheadRow) string {
	return fmt.Sprintf(
		"%d Monte-Carlo rounds, %d senders / %d receivers, %d-flit weight payloads:\n"+
			"mean %.0f cycles, worst %d cycles against %.3g-cycle epochs\n"+
			"⇒ overhead mean %.3f%% / worst %.3f%% (paper: 0.22%% / 0.36%%); %.1f pairs per round\n",
		r.Rounds, r.Senders, r.Receivers, r.WeightFlits,
		r.MeanCycles, r.WorstCycles, r.EpochCycles,
		100*r.MeanOverhead, 100*r.WorstOverhead, r.MeanPairs)
}

// FormatArea renders the area table.
func FormatArea(rows []AreaRow) string {
	out := fmt.Sprintf("%-16s %10s %10s\n", "scheme", "overhead", "paper")
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %9.2f%% %9.2f%%\n", r.Scheme, 100*r.Overhead, 100*r.PaperRef)
	}
	return out
}
