package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"remapd/internal/obs"
)

// This file is the parallel experiment runner. Every figure and ablation of
// the evaluation is a grid of independent (model, policy, seed, regime)
// training runs — "cells" — that the sequential loops used to execute one
// at a time. The runner fans cells across a bounded worker pool instead.
//
// Determinism contract: a cell's result depends only on its coordinates
// (CellKey), never on scheduling. Every random stream a cell consumes is
// seeded from its coordinates — the training/fault RNGs from the cell's
// seed coordinate, exactly as the sequential loops seeded them, and any
// auxiliary stream from CellKey.RNGSeed — and cells share no mutable state
// (datasets are read-only after construction; each cell builds its own
// network, chip, and RNGs). Results are reassembled by submission index,
// so figure rows are bit-identical to the sequential loops regardless of
// worker count or completion order.

// CellKey identifies one independent experiment cell by its grid
// coordinates. Extra distinguishes cells that vary something beyond the
// (model, policy, seed) axes — a regime point, a dataset, a phase.
type CellKey struct {
	Model  string `json:"model"`
	Policy string `json:"policy"`
	Seed   uint64 `json:"seed"`
	Extra  string `json:"extra,omitempty"`
}

// String renders the key for progress lines and error messages.
func (k CellKey) String() string {
	s := fmt.Sprintf("%s/%s/seed%d", k.Model, k.Policy, k.Seed)
	if k.Extra != "" {
		s += "/" + k.Extra
	}
	return s
}

// RNGSeed derives a deterministic seed from the cell's coordinates
// (FNV-1a over the rendered key). Cells that need randomness beyond the
// training seed draw from this, so streams never alias across cells and
// never depend on scheduling order.
func (k CellKey) RNGSeed() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range []byte(k.String()) {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Logf is the progress-line sink type shared across the runner layers.
type Logf = func(format string, args ...interface{})

// Cell couples a key with the work it identifies. Run must be self
// contained: it may read shared immutable inputs (a *dataset.Dataset) but
// must construct everything it mutates (network, chip, RNGs) itself, and
// should pass ctx into trainer.Config.Ctx so cancellation stops the run at
// the next batch boundary. logf (never nil) multiplexes the cell's
// progress lines into the runner's sink, prefixed with the cell key, so
// interleaved per-epoch output from concurrent cells stays attributable.
type Cell struct {
	Key CellKey
	Run func(ctx context.Context, logf Logf) (interface{}, error)
	// Spec, when non-nil, is the cell's serializable description — the
	// same work as Run, expressed as coordinates instead of a closure, so
	// a dist executor can ship the cell to another process. Cells built by
	// the figure constructors always carry one; Run stays the in-process
	// fast path and the two must compute the identical result.
	Spec *CellSpec
	// Span is the cell's lifecycle span (harness domain), opened by the
	// runner when span recording is on and nil otherwise — every method
	// on a nil span is a no-op, so executors mark lifecycle edges
	// unconditionally. Spans never feed back into results.
	Span *obs.CellSpan
}

// CellResult is one cell's outcome envelope: the figure-specific value
// plus execution provenance (how many attempts the cell took and which
// worker finished it — both empty for in-process execution beyond the
// first attempt).
type CellResult struct {
	Key      CellKey
	Value    interface{}
	Attempts int
	// Worker identifies the executor slot/process that produced the value
	// ("" for in-process execution). Provenance only — never feeds back
	// into results.
	Worker string
}

// CellExecutor abstracts where a cell's work happens. The runner calls
// Execute from its worker goroutines: slot is the stable goroutine index
// (0..Workers-1), which lets a dist executor pin one OS process per slot.
// Execute must honour ctx cancellation and must be safe for concurrent
// calls on distinct slots.
type CellExecutor interface {
	Execute(ctx context.Context, slot int, cell Cell, logf Logf) (CellResult, error)
}

// localExecutor runs cells in-process — the default when Runner.Exec is
// nil and the behaviour all dist executors must reproduce byte-for-byte.
type localExecutor struct{}

func (localExecutor) Execute(ctx context.Context, slot int, cell Cell, logf Logf) (CellResult, error) {
	// In-process cells time their own run segment, so spans mean the same
	// thing on every execution path.
	cell.Span.Dispatch("")
	//lint:allow no-wall-clock harness-domain run-segment timing measures the machine, never the simulation
	start := time.Now()
	v, err := runCell(ctx, cell, logf)
	//lint:allow no-wall-clock harness-domain run-segment timing measures the machine, never the simulation
	cell.Span.RunSegment(time.Since(start).Seconds(), err != nil)
	cell.Span.EndAttempt(err != nil)
	return CellResult{Key: cell.Key, Value: v, Attempts: 1}, err
}

// Runner executes cells on a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent cells; <=0 means GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives each cell's buffered transcript plus
	// one status line when the cell completes. A cell's lines are held
	// until it finishes (ok or error) and then flushed as one contiguous
	// block under a mutex, so concurrent cells never interleave output.
	Logf func(format string, args ...interface{})
	// Prof, when non-nil, records each cell's wall-clock duration
	// (harness domain; never feeds back into results).
	Prof *obs.Profile
	// Exec, when non-nil, runs cells somewhere other than in-process
	// (e.g. dist.Executor fans them out to worker processes). Scheduling
	// only: results must be identical to the nil (in-process) executor.
	Exec CellExecutor
	// Spans, when non-nil, records a lifecycle span per cell (harness
	// domain; never feeds back into results).
	Spans *obs.SpanRecorder
	// Status, when non-nil, gets a "grid" section with live progress
	// (total/done/failed cells) for the /status endpoint.
	Status *obs.Status

	// outMu serialises transcript flushes across workers.
	outMu sync.Mutex
}

// Run executes every cell and returns their results indexed by submission
// order. On the first cell error it cancels the remaining cells (in-flight
// cells stop at their next cancellation check) and returns that error; a
// panicking cell is converted into an error instead of killing the
// process. The results of cells that did not complete are zero-valued.
func (r *Runner) Run(ctx context.Context, cells []Cell) ([]CellResult, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	exec := r.Exec
	if exec == nil {
		exec = localExecutor{}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Span recording opens every cell's span at submission time, before
	// any scheduling decision, so queue time means the same thing for the
	// first and the last cell of the grid. cells is the caller's slice;
	// the Span field is written once here, before any worker reads it.
	if r.Spans != nil {
		for i := range cells {
			cells[i].Span = r.Spans.Begin(cells[i].Key.String())
		}
	}

	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	jobs := make(chan int)
	//lint:allow no-wall-clock operator-facing elapsed display only; never reaches cell results
	start := time.Now()
	var done, failed atomic.Int64
	r.Status.Register("grid", func() interface{} {
		return obs.GridStatus{
			Total:  len(cells),
			Done:   int(done.Load()),
			Failed: int(failed.Load()),
			//lint:allow no-wall-clock operator-facing elapsed display only; never reaches cell results
			ElapsedSeconds: time.Since(start).Seconds(),
		}
	})
	if r.Spans != nil {
		r.Status.Register("spans", func() interface{} { return r.Spans.Aggregate() })
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := range jobs {
				logf, transcript := r.cellLogf(cells[i].Key)
				var stopCell func()
				if r.Prof != nil {
					stopCell = r.Prof.StartCell(cells[i].Key.String())
				}
				cells[i].Span.Schedule()
				res, err := exec.Execute(runCtx, slot, cells[i], logf)
				if stopCell != nil {
					stopCell()
				}
				switch {
				case err == nil:
					cells[i].Span.Finish("ok")
				case errors.Is(err, context.Canceled):
					cells[i].Span.Finish("cancelled")
				default:
					cells[i].Span.Finish("failed")
				}
				res.Key = cells[i].Key
				results[i], errs[i] = res, err
				if err != nil {
					failed.Add(1)
					cancel() // first failure stops the grid
				}
				n := done.Add(1)
				if r.Logf != nil {
					status := "ok"
					if err != nil {
						status = err.Error()
					}
					if res.Worker != "" {
						status += fmt.Sprintf(" [%s, attempt %d]", res.Worker, res.Attempts)
					}
					// Flush the cell's transcript and status as one block;
					// an erroring cell's lines flush too — they are the
					// context the error message needs.
					r.outMu.Lock()
					for _, line := range *transcript {
						r.Logf("%s", line)
					}
					r.Logf("cell %d/%d %s: %s (elapsed %s)",
						n, len(cells), cells[i].Key, status,
						//lint:allow no-wall-clock operator-facing elapsed display only; never reaches cell results
						time.Since(start).Round(time.Millisecond))
					r.outMu.Unlock()
				}
			}
		}(w)
	}

feed:
	for i := range cells {
		select {
		case jobs <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Report the lowest-indexed genuine failure so the error is as
	// deterministic as the results; cancellation fallout (cells that
	// returned context.Canceled because another cell failed first) only
	// surfaces when nothing better exists.
	var firstErr error
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) {
			firstErr = e
			break
		}
	}
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = err // the caller's context (e.g. SIGINT) was cancelled
		} else {
			for _, e := range errs {
				if e != nil {
					firstErr = e
					break
				}
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// cellLogf returns the per-cell progress sink and the transcript buffer
// it fills: every line a cell emits (per-epoch training progress,
// checkpoint-resume notices) is rendered immediately — prefixed with its
// key — but held in the buffer until the cell completes, when the worker
// flushes it as one contiguous block. Only the cell's own goroutine
// touches the buffer, so no lock is needed until the flush. With no sink
// configured the cells log into a no-op.
func (r *Runner) cellLogf(key CellKey) (Logf, *[]string) {
	transcript := &[]string{}
	if r.Logf == nil {
		return func(string, ...interface{}) {}, transcript
	}
	prefix := "[" + key.String() + "] "
	return func(format string, args ...interface{}) {
		*transcript = append(*transcript, fmt.Sprintf(prefix+format, args...))
	}, transcript
}

// runCell executes one cell with panic recovery.
func runCell(ctx context.Context, c Cell, logf Logf) (res interface{}, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("cell %s panicked: %v\n%s", c.Key, p, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err = c.Run(ctx, logf)
	if err != nil && !errors.Is(err, context.Canceled) {
		err = fmt.Errorf("cell %s: %w", c.Key, err)
	}
	return res, err
}

// newRunner builds the runner a figure function uses, honouring the
// scale's worker bound, progress sink, harness profile, executor, and
// telemetry surfaces.
func newRunner(s Scale) *Runner {
	return &Runner{Workers: s.Workers, Logf: s.Progress, Prof: s.Prof, Exec: s.Exec, Spans: s.Spans, Status: s.Status}
}
