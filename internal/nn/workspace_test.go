package nn

import (
	"testing"

	"remapd/internal/tensor"
)

func TestWorkspaceTakeReuse(t *testing.T) {
	var ws Workspace
	a := ws.Take("a", 2, 3)
	if a.Len() != 6 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("fresh Take shape: %v", a.Shape)
	}
	b := ws.Take("a", 3, 2) // same volume: must reuse the backing array
	if &b.Data[0] != &a.Data[0] {
		t.Fatal("same-volume Take did not reuse backing storage")
	}
	c := ws.Take("a", 4, 4) // growth reallocates
	if c.Len() != 16 {
		t.Fatalf("grown Take length: %d", c.Len())
	}
	d := ws.Take("a", 2, 2) // shrink keeps capacity for the next growth
	if cap(d.Data) < 16 {
		t.Fatalf("shrunk Take dropped capacity: %d", cap(d.Data))
	}
	if e := ws.Take("b", 2, 2); &e.Data[0] == &d.Data[0] {
		t.Fatal("distinct keys share storage")
	}
}

// convBenchStack builds a conv+relu pair whose GEMM volumes stay below the
// tensor package's parallel threshold, so forward+backward runs serially —
// the configuration whose steady-state allocation count is deterministic.
func convBenchStack() (*Conv2D, *ReLU, *tensor.Tensor, func()) {
	rng := tensor.NewRNG(1)
	g := tensor.ConvGeom{InC: 8, InH: 8, InW: 8, OutC: 8, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("c1", g, rng)
	relu := NewReLU("r1")
	x := tensor.New(4, 8, 8, 8)
	rng.FillNormal(x, 1)
	run := func() {
		y := conv.Forward(x, true)
		y = relu.Forward(y, true)
		dy := relu.Backward(y)
		conv.Backward(dy)
	}
	return conv, relu, x, run
}

// TestConvPathAllocSteadyState pins the workspace contract: once buffers
// have grown to the batch's working-set size, a conv forward+backward pass
// performs no data allocations. Only the per-call Reshape view headers on
// the weight tensor remain (a few dozen bytes against the former
// hundreds-of-kilobytes-per-batch churn).
func TestConvPathAllocSteadyState(t *testing.T) {
	_, _, _, run := convBenchStack()
	run()
	run() // warm the workspaces
	allocs := testing.AllocsPerRun(10, run)
	if allocs > 8 {
		t.Fatalf("conv fwd+bwd allocates %v objects/op in steady state; want ≤ 8 (Reshape view headers only)", allocs)
	}
}

func BenchmarkConvForwardBackward(b *testing.B) {
	_, _, _, run := convBenchStack()
	run() // warm the workspaces
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkLinearForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(2)
	lin := NewLinear("fc", 128, 64, rng)
	x := tensor.New(16, 128)
	rng.FillNormal(x, 1)
	y := lin.Forward(x, true)
	lin.Backward(y) // warm the workspaces
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y = lin.Forward(x, true)
		lin.Backward(y)
	}
}
