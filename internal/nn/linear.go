package nn

import (
	"math"

	"remapd/internal/tensor"
)

// Linear is a fully-connected layer: y = x·Wᵀ + b with W of shape Out×In.
// The forward MVM uses the fabric's forward-effective weight; the backward
// error-propagation MVM (dx = dy·W) uses the backward-effective weight,
// which on a ReRAM substrate lives on different crossbars (the Wᵀ copy).
type Linear struct {
	name   string
	In     int
	Out    int
	W      *tensor.Tensor // Out×In
	B      *tensor.Tensor // Out
	GradW  *tensor.Tensor
	GradB  *tensor.Tensor
	fabric Fabric

	ws Workspace
	x  *tensor.Tensor // cached input N×In
}

// NewLinear builds a fully-connected layer with Kaiming-uniform weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		name:   name,
		In:     in,
		Out:    out,
		W:      tensor.New(out, in),
		B:      tensor.New(out),
		GradW:  tensor.New(out, in),
		GradB:  tensor.New(out),
		fabric: IdealFabric{},
	}
	bound := math.Sqrt(6.0 / float64(in))
	rng.FillUniform(l.W, -bound, bound)
	return l
}

// Name returns the layer's unique identifier.
func (l *Linear) Name() string { return l.name }

func (l *Linear) SetFabric(f Fabric) { l.fabric = f }

// Params exposes the weight and bias.
func (l *Linear) Params() []*Param {
	return []*Param{
		{Name: l.name + ".w", W: l.W, Grad: l.GradW},
		{Name: l.name + ".b", W: l.B, Grad: l.GradB, NoDecay: true},
	}
}

// Forward computes y = x·Wfᵀ + b for a batch x of shape N×In.
//
//lint:hotpath
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		badShape(l.name, "want N×%d input, got %v", l.In, x.Shape)
	}
	l.x = x
	wf := l.fabric.EffectiveForward(l.name, l.W)
	n := x.Dim(0)
	y := l.ws.Take("y", n, l.Out)
	tensor.MatMulTransBInto(y, x, wf)
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
	return y
}

// Backward computes dx = dy·Wb, dW = dyᵀ·x, db = Σ dy.
//
//lint:hotpath
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if dy.Rank() != 2 || dy.Dim(1) != l.Out {
		badShape(l.name, "want N×%d grad, got %v", l.Out, dy.Shape)
	}
	n := dy.Dim(0)

	// Weight gradient: dW(Out×In) = dyᵀ(Out×N)·x(N×In), computed on the
	// backward-phase crossbars, so the fabric may corrupt stuck entries.
	tensor.MatMulTransAInto(l.GradW, dy, l.x)
	l.fabric.TransformGradient(l.name, l.GradW)
	for i := 0; i < n; i++ {
		row := dy.Data[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.GradB.Data[j] += v
		}
	}

	// Error propagation through the backward (transpose) weight copy.
	wb := l.fabric.EffectiveBackward(l.name, l.W)
	dx := l.ws.Take("dx", n, l.In) // MatMulInto zeroes it
	tensor.MatMulInto(dx, dy, wb)
	return dx
}
