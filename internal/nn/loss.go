package nn

import (
	"math"

	"remapd/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (N×C) against integer labels, and the gradient w.r.t. the logits.
// The softmax is computed with the max-subtraction trick for stability.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the gradient into a
// caller-provided N×C tensor (fully overwritten), so the training loop can
// reuse one buffer across batches instead of allocating per step.
//
//lint:hotpath
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) (loss float64) {
	if logits.Rank() != 2 {
		panic("nn: SoftmaxCrossEntropy wants N×C logits")
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	if grad.Len() != n*c {
		panic("nn: SoftmaxCrossEntropyInto grad shape mismatch")
	}
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		lbl := labels[i]
		if lbl < 0 || lbl >= c {
			panic("nn: SoftmaxCrossEntropy label out of range")
		}
		loss += (logSum - float64(row[lbl]-maxv)) * invN
		grow := grad.Data[i*c : (i+1)*c]
		for j, v := range row {
			p := math.Exp(float64(v-maxv)) / sum
			grow[j] = float32(p * invN)
			if j == lbl {
				grow[j] -= float32(invN)
			}
		}
	}
	return loss
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
