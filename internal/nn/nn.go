// Package nn implements a from-scratch CNN training framework (layers,
// losses, SGD) with one deliberate twist: every matrix-vector multiply is
// routed through a Fabric, an abstraction of the compute substrate that
// executes it. The ideal fabric returns weights unchanged; the ReRAM fabric
// (internal/arch) returns weights with stuck-at-fault clamping applied per
// mapped crossbar, independently for the forward copy (W) and the backward
// transpose copy (Wᵀ), exactly as in a PipeLayer/ISAAC-style accelerator
// where the two copies live on different physical crossbars.
//
// This is the repository's equivalent of the paper's PytorX simulation layer.
package nn

import (
	"fmt"

	"remapd/internal/tensor"
)

// Param is a trainable parameter with its gradient. Layers expose their
// parameters through Params so optimizers and remapping policies (which need
// weight magnitudes and gradient magnitudes) can see them uniformly.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// NoDecay marks parameters (BN scale/shift, biases) excluded from
	// weight decay.
	NoDecay bool
}

// Layer is a differentiable network stage. Forward must cache whatever it
// needs for the subsequent Backward call; Backward consumes the gradient
// w.r.t. its output and returns the gradient w.r.t. its input.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor //lint:hotpath per-batch, zero-alloc steady state
	Backward(dy *tensor.Tensor) *tensor.Tensor           //lint:hotpath per-batch, zero-alloc steady state
	Params() []*Param
}

// Fabric abstracts the substrate that performs the MVMs of parametric
// layers. EffectiveForward/EffectiveBackward return the weights that the
// substrate actually applies (the ideal fabric returns w itself); the ReRAM
// fabric returns fault-clamped copies. TransformGradient lets the substrate
// corrupt the weight-gradient tensor in place: in a PipeLayer-style
// accelerator the backward phase computes dW on crossbars too, so stuck
// cells there hijack gradient entries — the error-accumulation mechanism
// the paper identifies as the reason the backward phase is fault-critical.
// WeightsWritten is invoked after every optimizer step so the substrate can
// account for device write endurance.
type Fabric interface {
	EffectiveForward(layer string, w *tensor.Tensor) *tensor.Tensor  //lint:hotpath runs inside every MVM layer's Forward
	EffectiveBackward(layer string, w *tensor.Tensor) *tensor.Tensor //lint:hotpath runs inside every MVM layer's Backward
	TransformGradient(layer string, grad *tensor.Tensor)             //lint:hotpath runs per weight-gradient per batch
	WeightsWritten(layer string)                                     //lint:hotpath runs after every optimizer step
}

// IdealFabric is the identity substrate: a fault-free digital accelerator.
type IdealFabric struct{}

// EffectiveForward returns w unchanged.
//
//lint:hotpath
func (IdealFabric) EffectiveForward(_ string, w *tensor.Tensor) *tensor.Tensor { return w }

// EffectiveBackward returns w unchanged.
//
//lint:hotpath
func (IdealFabric) EffectiveBackward(_ string, w *tensor.Tensor) *tensor.Tensor { return w }

// TransformGradient leaves the gradient untouched on the ideal substrate.
//
//lint:hotpath
func (IdealFabric) TransformGradient(string, *tensor.Tensor) {}

// WeightsWritten is a no-op for the ideal substrate.
//
//lint:hotpath
func (IdealFabric) WeightsWritten(string) {}

// Network is an ordered stack of layers bound to a fabric.
type Network struct {
	Layers []Layer
	Fabric Fabric
}

// NewNetwork builds a network over the given layers with an ideal fabric.
// Use SetFabric to bind it to a ReRAM substrate.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Layers: layers, Fabric: IdealFabric{}}
}

// SetFabric rebinds the compute substrate for all layers.
func (n *Network) SetFabric(f Fabric) {
	n.Fabric = f
	for _, l := range n.Layers {
		if fl, ok := l.(FabricUser); ok {
			fl.SetFabric(f)
		}
	}
}

// FabricUser is implemented by layers whose MVMs go through the fabric.
// Composite layers (Residual, model-specific blocks) implement it by
// forwarding to their inner layers.
type FabricUser interface{ SetFabric(Fabric) }

// Forward runs the full stack.
//
//lint:hotpath
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dy through the stack in reverse.
//
//lint:hotpath
func (n *Network) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of trainable scalar parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// MVMContainer is implemented by composite layers (e.g. Residual, Fire)
// that hold fabric-using layers internally, so mapping can recurse.
type MVMContainer interface {
	InnerMVMLayers() []string
	InnerWeight(name string) *tensor.Tensor
}

// MVMLayers returns the names of layers whose MVMs execute on the fabric
// (i.e. the layers that occupy crossbars), in network order, recursing into
// composite blocks.
func (n *Network) MVMLayers() []string {
	var names []string
	for _, l := range n.Layers {
		if c, ok := l.(MVMContainer); ok {
			names = append(names, c.InnerMVMLayers()...)
			continue
		}
		if _, ok := l.(FabricUser); ok {
			names = append(names, l.Name())
		}
	}
	return names
}

// LayerWeight returns the primary weight tensor of the named MVM layer,
// or nil if the layer is unknown. Used by the architecture mapper.
func (n *Network) LayerWeight(name string) *tensor.Tensor {
	for _, l := range n.Layers {
		if c, ok := l.(MVMContainer); ok {
			if w := c.InnerWeight(name); w != nil {
				return w
			}
			continue
		}
		if l.Name() != name {
			continue
		}
		for _, p := range l.Params() {
			if p.Name == name+".w" {
				return p.W
			}
		}
	}
	return nil
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// badShape panics with a descriptive layer-geometry message. Layers call it
// behind an explicit condition check (rather than passing the condition to a
// variadic assert helper) so the valid-shape hot path never builds or boxes
// an argument list — Forward/Backward run per batch and must not allocate.
//
//lint:coldpath shape-panic helper, called only behind failed guards
func badShape(layer, format string, args ...interface{}) {
	panic(fmt.Sprintf("nn: layer %s: %s", layer, fmt.Sprintf(format, args...)))
}
