package nn

import "remapd/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay. After every step it notifies the network's fabric that
// weights were rewritten, which is how the ReRAM substrate accounts for
// write endurance and re-clamps stored conductances.
type SGD struct {
	LR           float64
	Momentum     float64
	WeightDecay  float64
	GradClip     float64 // max L2 norm per parameter tensor; 0 disables
	velocity     map[string]*tensor.Tensor
	net          *Network
	stepsApplied int

	// params/mvmNames cache the network's (static) parameter and MVM-layer
	// lists so the per-step hot loop does not rebuild them.
	params   []*Param
	mvmNames []string
}

// NewSGD builds an optimizer over net's parameters.
func NewSGD(net *Network, lr, momentum, weightDecay float64) *SGD {
	return &SGD{
		LR:          lr,
		Momentum:    momentum,
		WeightDecay: weightDecay,
		GradClip:    5,
		velocity:    make(map[string]*tensor.Tensor),
		net:         net,
	}
}

// Steps returns the number of optimizer steps applied so far.
func (s *SGD) Steps() int { return s.stepsApplied }

// Step applies one update to every parameter and clears the gradients.
//
//lint:hotpath
func (s *SGD) Step() {
	//lint:allow hotpath-alloc one-time parameter-cache build on the first step
	if s.params == nil {
		s.params = s.net.Params()
		s.mvmNames = s.net.MVMLayers()
	}
	for _, p := range s.params {
		g := p.Grad
		if s.GradClip > 0 {
			if norm := g.L2Norm(); norm > s.GradClip {
				g.Scale(float32(s.GradClip / norm))
			}
		}
		if s.WeightDecay > 0 && !p.NoDecay {
			g.AXPY(float32(s.WeightDecay), p.W)
		}
		v, ok := s.velocity[p.Name]
		//lint:allow hotpath-alloc velocity-buffer miss: allocated once per parameter, steady state always hits
		if !ok {
			v = tensor.New(p.W.Shape...)
			s.velocity[p.Name] = v
		}
		lr := float32(s.LR)
		mu := float32(s.Momentum)
		for i := range v.Data {
			v.Data[i] = mu*v.Data[i] + g.Data[i]
			p.W.Data[i] -= lr * v.Data[i]
		}
		g.Zero()
	}
	s.stepsApplied++
	// Every step rewrites the stored conductances on the substrate.
	for _, name := range s.mvmNames {
		s.net.Fabric.WeightsWritten(name)
	}
}
