package nn

import (
	"math"

	"remapd/internal/tensor"
)

// BatchNorm2D normalises each channel of an N×C×H×W activation over the
// batch and spatial axes, with learned scale (gamma) and shift (beta) and
// running statistics for evaluation mode.
type BatchNorm2D struct {
	name     string
	C        int
	Eps      float64
	Momentum float64

	Gamma, Beta         *tensor.Tensor
	GradGamma, GradBeta *tensor.Tensor
	RunMean, RunVar     *tensor.Tensor

	// forward caches
	ws      Workspace
	xHat    *tensor.Tensor
	invStd  []float32
	inShape []int
}

// NewBatchNorm2D returns a batch-norm layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		name:      name,
		C:         c,
		Eps:       1e-5,
		Momentum:  0.1,
		Gamma:     tensor.New(c),
		Beta:      tensor.New(c),
		GradGamma: tensor.New(c),
		GradBeta:  tensor.New(c),
		RunMean:   tensor.New(c),
		RunVar:    tensor.New(c),
	}
	bn.Gamma.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// Name returns the layer's identifier.
func (bn *BatchNorm2D) Name() string { return bn.name }

// Params exposes gamma and beta (excluded from weight decay).
func (bn *BatchNorm2D) Params() []*Param {
	return []*Param{
		{Name: bn.name + ".gamma", W: bn.Gamma, Grad: bn.GradGamma, NoDecay: true},
		{Name: bn.name + ".beta", W: bn.Beta, Grad: bn.GradBeta, NoDecay: true},
	}
}

// Forward normalises per channel. In training mode it uses batch statistics
// and updates the running averages; in eval mode it uses the running stats.
//
//lint:hotpath
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.C {
		badShape(bn.name, "want N×%d×H×W, got %v", bn.C, x.Shape)
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	bn.inShape = append(bn.inShape[:0], x.Shape...)
	plane := h * w
	m := float64(n * plane)

	y := bn.ws.Take("y", x.Shape...)
	bn.xHat = bn.ws.Take("xhat", x.Shape...)
	if cap(bn.invStd) < c {
		bn.invStd = make([]float32, c)
	}
	bn.invStd = bn.invStd[:c]

	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			var sum float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for k := 0; k < plane; k++ {
					sum += float64(x.Data[base+k])
				}
			}
			mean = sum / m
			var sq float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for k := 0; k < plane; k++ {
					d := float64(x.Data[base+k]) - mean
					sq += d * d
				}
			}
			variance = sq / m
			bn.RunMean.Data[ch] = float32((1-bn.Momentum)*float64(bn.RunMean.Data[ch]) + bn.Momentum*mean)
			bn.RunVar.Data[ch] = float32((1-bn.Momentum)*float64(bn.RunVar.Data[ch]) + bn.Momentum*variance)
		} else {
			mean = float64(bn.RunMean.Data[ch])
			variance = float64(bn.RunVar.Data[ch])
		}
		inv := float32(1 / math.Sqrt(variance+bn.Eps))
		bn.invStd[ch] = inv
		g, b := bn.Gamma.Data[ch], bn.Beta.Data[ch]
		mf := float32(mean)
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for k := 0; k < plane; k++ {
				xh := (x.Data[base+k] - mf) * inv
				bn.xHat.Data[base+k] = xh
				y.Data[base+k] = g*xh + b
			}
		}
	}
	return y
}

// Infer normalises with the running statistics only — the same arithmetic
// as Forward's eval branch, element-for-element — without writing the
// xHat/invStd backward caches.
//
//lint:hotpath
func (bn *BatchNorm2D) Infer(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.C {
		badShape(bn.name, "want N×%d×H×W, got %v", bn.C, x.Shape)
	}
	n, c := x.Dim(0), x.Dim(1)
	plane := x.Dim(2) * x.Dim(3)
	y := bn.ws.Take("y", x.Shape...)
	for ch := 0; ch < c; ch++ {
		mean := float64(bn.RunMean.Data[ch])
		variance := float64(bn.RunVar.Data[ch])
		inv := float32(1 / math.Sqrt(variance+bn.Eps))
		g, b := bn.Gamma.Data[ch], bn.Beta.Data[ch]
		mf := float32(mean)
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for k := 0; k < plane; k++ {
				xh := (x.Data[base+k] - mf) * inv
				y.Data[base+k] = g*xh + b
			}
		}
	}
	return y
}

// Backward implements the standard batch-norm gradient (training-mode
// statistics; eval mode is only used for inference, never backprop).
//
//lint:hotpath
func (bn *BatchNorm2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c := bn.inShape[0], bn.inShape[1]
	plane := bn.inShape[2] * bn.inShape[3]
	m := float32(n * plane)
	dx := bn.ws.Take("dx", bn.inShape...)

	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for k := 0; k < plane; k++ {
				d := float64(dy.Data[base+k])
				sumDy += d
				sumDyXhat += d * float64(bn.xHat.Data[base+k])
			}
		}
		bn.GradGamma.Data[ch] += float32(sumDyXhat)
		bn.GradBeta.Data[ch] += float32(sumDy)

		g := bn.Gamma.Data[ch]
		inv := bn.invStd[ch]
		sDy := float32(sumDy)
		sDyX := float32(sumDyXhat)
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for k := 0; k < plane; k++ {
				xh := bn.xHat.Data[base+k]
				dx.Data[base+k] = g * inv / m * (m*dy.Data[base+k] - sDy - xh*sDyX)
			}
		}
	}
	return dx
}
