package nn

import (
	"math"
	"testing"

	"remapd/internal/tensor"
)

// numericalGrad estimates d loss / d t[i] by central differences, where
// loss() recomputes the full forward pass and loss.
func numericalGrad(t *tensor.Tensor, i int, loss func() float64) float64 {
	const eps = 1e-3
	orig := t.Data[i]
	t.Data[i] = orig + eps
	lp := loss()
	t.Data[i] = orig - eps
	lm := loss()
	t.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

// checkLayerGradients runs a forward+backward through layer on input x with
// a quadratic loss L = ½Σy², then verifies analytic parameter and input
// gradients against numeric ones.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, samples int) {
	t.Helper()
	lossFn := func() float64 {
		y := layer.Forward(x, true)
		var s float64
		for _, v := range y.Data {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}

	y := layer.Forward(x, true)
	dy := y.Clone() // dL/dy = y for the quadratic loss
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	dx := layer.Backward(dy)

	for _, p := range layer.Params() {
		n := p.W.Len()
		step := n / samples
		if step == 0 {
			step = 1
		}
		for i := 0; i < n; i += step {
			want := numericalGrad(p.W, i, lossFn)
			got := float64(p.Grad.Data[i])
			if math.Abs(want-got) > 2e-2*(1+math.Abs(want)) {
				t.Fatalf("param %s grad[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
	}
	n := x.Len()
	step := n / samples
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		want := numericalGrad(x, i, lossFn)
		got := float64(dx.Data[i])
		if math.Abs(want-got) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, got, want)
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", 7, 5, rng)
	x := tensor.New(3, 7)
	rng.FillNormal(x, 1)
	checkLayerGradients(t, l, x, 20)
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 3, K: 3, Stride: 1, Pad: 1}
	c := NewConv2D("conv", g, rng)
	x := tensor.New(2, 2, 6, 6)
	rng.FillNormal(x, 1)
	checkLayerGradients(t, c, x, 20)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	g := tensor.ConvGeom{InC: 2, InH: 7, InW: 7, OutC: 2, K: 3, Stride: 2, Pad: 1}
	c := NewConv2D("conv_s2", g, rng)
	x := tensor.New(2, 2, 7, 7)
	rng.FillNormal(x, 1)
	checkLayerGradients(t, c, x, 15)
}

func TestBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	bn := NewBatchNorm2D("bn", 3)
	// Non-trivial gamma/beta so gradients are informative.
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 1 + 0.2*float32(i)
		bn.Beta.Data[i] = 0.1 * float32(i)
	}
	x := tensor.New(4, 3, 3, 3)
	rng.FillNormal(x, 1)
	checkLayerGradients(t, bn, x, 15)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	p := NewMaxPool2D("mp", 2, 2)
	x := tensor.New(2, 2, 6, 6)
	rng.FillNormal(x, 1)
	checkLayerGradients(t, p, x, 20)
}

func TestAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	p := NewAvgPool2D("ap", 2, 2)
	x := tensor.New(2, 2, 4, 4)
	rng.FillNormal(x, 1)
	checkLayerGradients(t, p, x, 20)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	p := NewGlobalAvgPool("gap")
	x := tensor.New(3, 4, 3, 3)
	rng.FillNormal(x, 1)
	checkLayerGradients(t, p, x, 20)
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	r := NewReLU("relu")
	x := tensor.New(4, 9)
	rng.FillNormal(x, 1)
	// Nudge values away from 0 where the subgradient is ambiguous.
	for i, v := range x.Data {
		if v > -0.05 && v < 0.05 {
			x.Data[i] = 0.1
		}
	}
	checkLayerGradients(t, r, x, 20)
}

func TestResidualGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, OutC: 2, K: 3, Stride: 1, Pad: 1}
	body := []Layer{NewConv2D("rb.conv", g, rng), NewReLU("rb.relu")}
	blk := NewResidual("rb", body, nil)
	x := tensor.New(2, 2, 5, 5)
	rng.FillNormal(x, 1)
	y := blk.Forward(x, true)
	if !y.SameShape(x) {
		t.Fatalf("identity residual must preserve shape, got %v", y.Shape)
	}
	checkLayerGradients(t, blk, x, 15)
}

func TestResidualProjectionShortcut(t *testing.T) {
	rng := tensor.NewRNG(10)
	gBody := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 4, K: 3, Stride: 2, Pad: 1}
	gProj := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 4, K: 1, Stride: 2, Pad: 0}
	blk := NewResidual("rp",
		[]Layer{NewConv2D("rp.conv", gBody, rng)},
		[]Layer{NewConv2D("rp.proj", gProj, rng)})
	x := tensor.New(1, 2, 6, 6)
	rng.FillNormal(x, 1)
	y := blk.Forward(x, true)
	if y.Dim(1) != 4 || y.Dim(2) != 3 {
		t.Fatalf("projection residual output shape %v", y.Shape)
	}
	checkLayerGradients(t, blk, x, 15)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(11)
	logits := tensor.New(4, 6)
	rng.FillNormal(logits, 1)
	labels := []int{1, 3, 0, 5}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	for i := 0; i < logits.Len(); i += 3 {
		want := numericalGrad(logits, i, func() float64 {
			l, _ := SoftmaxCrossEntropy(logits, labels)
			return l
		})
		got := float64(grad.Data[i])
		if math.Abs(want-got) > 1e-3 {
			t.Fatalf("CE grad[%d]: %v vs %v", i, got, want)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, 999, 998}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss not finite: %v", loss)
	}
	for _, v := range grad.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("gradient contains NaN for large logits")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0.9, 0.1,
		0.2, 0.8,
		0.7, 0.3,
	}, 3, 2)
	acc := Accuracy(logits, []int{0, 1, 1})
	if math.Abs(acc-2.0/3.0) > 1e-9 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(12)
	d := NewDropout("do", 0.5, rng)
	x := tensor.New(2, 10)
	rng.FillNormal(x, 1)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutTrainMaskAndScale(t *testing.T) {
	rng := tensor.NewRNG(13)
	d := NewDropout("do", 0.5, rng)
	x := tensor.New(1, 1000)
	x.Fill(1)
	y := d.Forward(x, true)
	kept := 0
	for _, v := range y.Data {
		switch v {
		case 0:
		case 2: // 1/(1-0.5)
			kept++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if kept < 400 || kept > 600 {
		t.Fatalf("dropout kept %d of 1000, expected ≈500", kept)
	}
	// Backward must use the same mask.
	dy := tensor.New(1, 1000)
	dy.Fill(1)
	dx := d.Backward(dy)
	for i := range dx.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(14)
	f := NewFlatten("fl")
	x := tensor.New(2, 3, 4, 4)
	rng.FillNormal(x, 1)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	dx := f.Backward(y)
	if !dx.SameShape(x) {
		t.Fatalf("unflatten shape %v", dx.Shape)
	}
}

func TestBatchNormNormalisesBatch(t *testing.T) {
	rng := tensor.NewRNG(15)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 4, 4)
	rng.FillNormal(x, 3)
	for i := range x.Data {
		x.Data[i] += 5
	}
	y := bn.Forward(x, true)
	// Each channel of y should be ~N(0,1) over batch+space.
	for ch := 0; ch < 2; ch++ {
		var sum, sq float64
		cnt := 0
		for i := 0; i < 8; i++ {
			base := (i*2 + ch) * 16
			for k := 0; k < 16; k++ {
				v := float64(y.Data[base+k])
				sum += v
				sq += v * v
				cnt++
			}
		}
		mean := sum / float64(cnt)
		variance := sq/float64(cnt) - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d normalised to mean=%v var=%v", ch, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(16)
	bn := NewBatchNorm2D("bn", 1)
	x := tensor.New(16, 1, 2, 2)
	for e := 0; e < 50; e++ {
		rng.FillNormal(x, 2)
		for i := range x.Data {
			x.Data[i] += 3
		}
		bn.Forward(x, true)
	}
	// Running stats should approach mean 3, var 4.
	if math.Abs(float64(bn.RunMean.Data[0])-3) > 0.5 {
		t.Fatalf("running mean %v, want ≈3", bn.RunMean.Data[0])
	}
	if math.Abs(float64(bn.RunVar.Data[0])-4) > 1.2 {
		t.Fatalf("running var %v, want ≈4", bn.RunVar.Data[0])
	}
	// Eval mode on a fresh batch must use those stats (so a batch centred at
	// 3 maps near zero).
	rng.FillNormal(x, 0.01)
	for i := range x.Data {
		x.Data[i] += 3
	}
	y := bn.Forward(x, false)
	if m := y.Sum() / float64(y.Len()); math.Abs(m) > 0.2 {
		t.Fatalf("eval-mode output mean %v, want ≈0", m)
	}
}

// zeroBackwardFabric zeroes the backward weight copy while leaving the
// forward copy intact — the two MVM paths must be independent.
type zeroBackwardFabric struct{ IdealFabric }

func (zeroBackwardFabric) EffectiveBackward(_ string, w *tensor.Tensor) *tensor.Tensor {
	z := tensor.New(w.Shape...)
	return z
}

func TestFabricSeparatesForwardAndBackwardPaths(t *testing.T) {
	rng := tensor.NewRNG(17)
	l := NewLinear("fc", 4, 3, rng)
	net := NewNetwork(l)
	net.SetFabric(zeroBackwardFabric{})
	x := tensor.New(2, 4)
	rng.FillNormal(x, 1)
	y := net.Forward(x, true)
	if y.AbsMax() == 0 {
		t.Fatal("forward path should be unaffected by backward fabric clamp")
	}
	dy := tensor.New(2, 3)
	dy.Fill(1)
	dx := net.Backward(dy)
	if dx.AbsMax() != 0 {
		t.Fatal("backward path must use the (zeroed) backward weight copy")
	}
	if l.GradW.AbsMax() == 0 {
		t.Fatal("weight gradient should still be computed from activations")
	}
}

func TestNetworkMVMLayersRecursesResiduals(t *testing.T) {
	rng := tensor.NewRNG(18)
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, OutC: 2, K: 3, Stride: 1, Pad: 1}
	blk := NewResidual("b1", []Layer{NewConv2D("b1.conv1", g, rng)}, nil)
	net := NewNetwork(NewConv2D("stem", g, rng), blk, NewFlatten("fl"), NewLinear("fc", 32, 4, rng))
	got := net.MVMLayers()
	want := []string{"stem", "b1.conv1", "fc"}
	if len(got) != len(want) {
		t.Fatalf("MVMLayers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MVMLayers = %v, want %v", got, want)
		}
	}
	if net.LayerWeight("b1.conv1") == nil {
		t.Fatal("LayerWeight must find layers inside residual blocks")
	}
	if net.LayerWeight("nope") != nil {
		t.Fatal("LayerWeight must return nil for unknown layers")
	}
}

func TestSGDMomentumUpdate(t *testing.T) {
	rng := tensor.NewRNG(19)
	l := NewLinear("fc", 1, 1, rng)
	l.W.Data[0] = 1
	l.B.Data[0] = 0
	net := NewNetwork(l)
	opt := NewSGD(net, 0.1, 0.9, 0)
	opt.GradClip = 0

	// Constant gradient of 1 on W: v1=1, w=1−0.1; v2=1.9, w=1−0.1−0.19.
	l.GradW.Data[0] = 1
	opt.Step()
	if math.Abs(float64(l.W.Data[0])-0.9) > 1e-6 {
		t.Fatalf("after step1 w=%v", l.W.Data[0])
	}
	l.GradW.Data[0] = 1
	opt.Step()
	if math.Abs(float64(l.W.Data[0])-(0.9-0.19)) > 1e-6 {
		t.Fatalf("after step2 w=%v", l.W.Data[0])
	}
	if opt.Steps() != 2 {
		t.Fatalf("Steps=%d", opt.Steps())
	}
}

func TestSGDWeightDecaySkipsNoDecay(t *testing.T) {
	rng := tensor.NewRNG(20)
	l := NewLinear("fc", 1, 1, rng)
	l.W.Data[0] = 2
	l.B.Data[0] = 2
	net := NewNetwork(l)
	opt := NewSGD(net, 0.1, 0, 0.5)
	opt.GradClip = 0
	opt.Step() // zero grads; only decay applies
	if math.Abs(float64(l.W.Data[0])-1.9) > 1e-6 {
		t.Fatalf("decayed w=%v, want 1.9", l.W.Data[0])
	}
	if l.B.Data[0] != 2 {
		t.Fatalf("bias must not decay, got %v", l.B.Data[0])
	}
}

// Integration: a small MLP must learn a linearly-separable toy problem.
func TestTrainingConvergesOnToyProblem(t *testing.T) {
	rng := tensor.NewRNG(21)
	net := NewNetwork(
		NewLinear("fc1", 2, 16, rng),
		NewReLU("r1"),
		NewLinear("fc2", 16, 2, rng),
	)
	opt := NewSGD(net, 0.1, 0.9, 0)

	sample := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 2)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			x.Data[i*2] = float32(a)
			x.Data[i*2+1] = float32(b)
			if a+b > 0 {
				labels[i] = 1
			}
		}
		return x, labels
	}

	for it := 0; it < 200; it++ {
		x, labels := sample(32)
		logits := net.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step()
	}
	x, labels := sample(512)
	acc := Accuracy(net.Forward(x, false), labels)
	if acc < 0.95 {
		t.Fatalf("toy problem accuracy %.3f, want ≥0.95", acc)
	}
}

// Integration: a tiny CNN must learn to classify constant-vs-checker images.
func TestConvNetLearnsTexture(t *testing.T) {
	rng := tensor.NewRNG(22)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}
	net := NewNetwork(
		NewConv2D("c1", g, rng),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewFlatten("fl"),
		NewLinear("fc", 4*4*4, 2, rng),
	)
	opt := NewSGD(net, 0.05, 0.9, 0)

	sample := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 8, 8)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			for yy := 0; yy < 8; yy++ {
				for xx := 0; xx < 8; xx++ {
					v := 0.5
					if cls == 1 && (yy+xx)%2 == 0 {
						v = -0.5
					}
					x.Data[i*64+yy*8+xx] = float32(v + 0.1*rng.NormFloat64())
				}
			}
		}
		return x, labels
	}

	for it := 0; it < 120; it++ {
		x, labels := sample(16)
		logits := net.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step()
	}
	x, labels := sample(256)
	acc := Accuracy(net.Forward(x, false), labels)
	if acc < 0.9 {
		t.Fatalf("texture CNN accuracy %.3f, want ≥0.9", acc)
	}
}
