package nn

import (
	"testing"

	"remapd/internal/tensor"
)

// inferStack builds a small but representative serving stack — conv, BN,
// ReLU, pool, dropout, flatten, linear — with GEMM volumes below the tensor
// package's parallel threshold, so the steady-state allocation count is
// deterministic.
func inferStack() (*Network, *tensor.Tensor) {
	rng := tensor.NewRNG(3)
	g := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, OutC: 8, K: 3, Stride: 1, Pad: 1}
	net := NewNetwork(
		NewConv2D("c1", g, rng),
		NewBatchNorm2D("bn1", 8),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewDropout("do1", 0.5, rng),
		NewFlatten("fl"),
		NewLinear("fc", 8*4*4, 10, rng),
	)
	x := tensor.New(4, 3, 8, 8)
	rng.FillNormal(x, 1)
	// Give BN non-trivial running stats so Infer exercises a real eval path.
	net.Forward(x, true)
	return net, x
}

// TestNetworkInferMatchesForwardEval pins the Inferer contract: Infer must
// produce bit-identical floats to Forward(x, false) — the figure pipelines
// depend on eval-mode outputs, and the serving path must not drift from
// them.
func TestNetworkInferMatchesForwardEval(t *testing.T) {
	net, x := inferStack()
	want := net.Forward(x, false)
	got := make([]float32, len(want.Data))
	copy(got, net.Infer(x).Data)
	// Forward again: Infer shares workspace buffers with Forward, so the
	// comparison must be against a copy taken before any overwrite.
	want = net.Forward(x, false)
	for i, v := range got {
		if v != want.Data[i] { //lint:allow float-eq pinning bit-identity between the two paths
			t.Fatalf("Infer diverges from Forward(x, false) at %d: %v vs %v", i, v, want.Data[i])
		}
	}
}

// TestNetworkInferNoAllocSteadyState pins the serving hot path at zero
// allocations per pass once workspaces are warm — the `//lint:hotpath`
// contract remapd-serve's request loop relies on.
func TestNetworkInferNoAllocSteadyState(t *testing.T) {
	net, x := inferStack()
	net.Infer(x)
	net.Infer(x) // warm the workspaces
	allocs := testing.AllocsPerRun(10, func() { net.Infer(x) })
	if allocs != 0 {
		t.Fatalf("Network.Infer allocates %v objects/op in steady state; want 0", allocs)
	}
}

func BenchmarkNetworkInfer(b *testing.B) {
	net, x := inferStack()
	net.Infer(x) // warm the workspaces
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Infer(x)
	}
}
