package nn

import "remapd/internal/tensor"

// ReLU is the rectified-linear activation. It keeps a mask of positive
// inputs for the backward pass.
type ReLU struct {
	name string
	ws   Workspace
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name returns the layer's identifier.
func (r *ReLU) Name() string { return r.name }

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Forward applies max(0, x).
//
//lint:hotpath
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	y := r.ws.Take("y", x.Shape...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask[i] = true
		} else {
			y.Data[i] = 0
			r.mask[i] = false
		}
	}
	return y
}

// Backward zeroes gradients where the input was non-positive.
//
//lint:hotpath
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := r.ws.Take("dx", dy.Shape...)
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Flatten reshapes N×C×H×W activations into N×(C·H·W) for the classifier
// head. It remembers the input shape to unflatten gradients. Both
// directions are workspace views over the incoming storage — no
// allocation once the cached headers exist.
type Flatten struct {
	name  string
	ws    Workspace
	shape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name returns the layer's identifier.
func (f *Flatten) Name() string { return f.name }

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// Forward flattens all but the batch axis.
//
//lint:hotpath
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.shape = append(f.shape[:0], x.Shape...)
	n := x.Dim(0)
	return f.ws.View2D("y", x, n, x.Len()/n)
}

// Backward restores the cached input shape.
//
//lint:hotpath
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return f.ws.View("dx", dy, f.shape...)
}

// Dropout zeroes activations with probability P during training and scales
// survivors by 1/(1−P) (inverted dropout). At evaluation time it is the
// identity.
type Dropout struct {
	name string
	P    float64
	rng  *tensor.RNG
	ws   Workspace
	mask []bool
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(name string, p float64, rng *tensor.RNG) *Dropout {
	return &Dropout{name: name, P: p, rng: rng}
}

// Name returns the layer's identifier.
func (d *Dropout) Name() string { return d.name }

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// Forward applies inverted dropout in training mode.
//
//lint:hotpath
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.mask = d.mask[:0]
		return x
	}
	y := d.ws.Take("y", x.Shape...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]bool, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			y.Data[i] = v * scale
			d.mask[i] = true
		} else {
			y.Data[i] = 0
			d.mask[i] = false
		}
	}
	return y
}

// Backward routes gradients only through surviving units.
//
//lint:hotpath
func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if len(d.mask) == 0 {
		return dy
	}
	dx := d.ws.Take("dx", dy.Shape...)
	scale := float32(1 / (1 - d.P))
	for i, v := range dy.Data {
		if d.mask[i] {
			dx.Data[i] = v * scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}
