package nn

import (
	"math"

	"remapd/internal/tensor"
)

// Conv2D is a 2-D convolution implemented as im2col + GEMM, the same
// lowering a crossbar accelerator uses: the kernel tensor is unrolled into
// an OutC×(InC·K·K) matrix whose rows are mapped onto crossbar columns.
// Forward MVMs read the fabric's forward-effective weights; the backward
// error-propagation MVM reads the backward-effective (transpose-copy)
// weights.
type Conv2D struct {
	name   string
	Geom   tensor.ConvGeom
	W      *tensor.Tensor // OutC×InC×K×K
	B      *tensor.Tensor // OutC
	GradW  *tensor.Tensor
	GradB  *tensor.Tensor
	fabric Fabric

	ws   Workspace      // scratch reused across batches (see Workspace)
	cols *tensor.Tensor // im2col matrix (N·R)×C, cached for backward
	n    int            // cached batch size
}

// NewConv2D builds a convolution with Kaiming-normal initialisation.
func NewConv2D(name string, g tensor.ConvGeom, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		name:   name,
		Geom:   g,
		W:      tensor.New(g.OutC, g.InC, g.K, g.K),
		B:      tensor.New(g.OutC),
		GradW:  tensor.New(g.OutC, g.InC, g.K, g.K),
		GradB:  tensor.New(g.OutC),
		fabric: IdealFabric{},
	}
	fanIn := float64(g.InC * g.K * g.K)
	rng.FillNormal(c.W, math.Sqrt(2.0/fanIn))
	return c
}

// Name returns the layer's unique identifier.
func (c *Conv2D) Name() string { return c.name }

func (c *Conv2D) SetFabric(f Fabric) { c.fabric = f }

// Params exposes the kernel and bias.
func (c *Conv2D) Params() []*Param {
	return []*Param{
		{Name: c.name + ".w", W: c.W, Grad: c.GradW},
		{Name: c.name + ".b", W: c.B, Grad: c.GradB, NoDecay: true},
	}
}

// Forward lowers the batch with im2col and computes one large GEMM:
// out((N·R)×OutC) = cols((N·R)×C) · Wfᵀ(C×OutC).
//
//lint:hotpath
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	g := c.Geom
	if x.Rank() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		badShape(c.name, "want N×%d×%d×%d input, got %v", g.InC, g.InH, g.InW, x.Shape)
	}
	n := x.Dim(0)
	c.n = n
	rows, colsN := g.ColRows(), g.ColCols()
	c.cols = c.ws.Take("cols", n*rows, colsN)
	imgLen := g.InC * g.InH * g.InW
	for i := 0; i < n; i++ {
		g.Im2Col(c.cols.Data[i*rows*colsN:(i+1)*rows*colsN], x.Data[i*imgLen:(i+1)*imgLen])
	}

	wf := c.ws.View2D("wf", c.fabric.EffectiveForward(c.name, c.W), g.OutC, colsN)
	out := c.ws.Take("gemm", n*rows, g.OutC)
	tensor.MatMulTransBInto(out, c.cols, wf)
	for r := 0; r < n*rows; r++ {
		row := out.Data[r*g.OutC : (r+1)*g.OutC]
		for j := range row {
			row[j] += c.B.Data[j]
		}
	}
	// Transpose (N·R)×OutC rows into N×OutC×OH×OW layout, one contiguous
	// output plane at a time.
	oh, ow := g.OutH(), g.OutW()
	y := c.ws.Take("y", n, g.OutC, oh, ow)
	for i := 0; i < n; i++ {
		img := out.Data[i*rows*g.OutC : (i+1)*rows*g.OutC]
		for oc := 0; oc < g.OutC; oc++ {
			plane := y.Data[(i*g.OutC+oc)*rows : (i*g.OutC+oc+1)*rows]
			for r := range plane {
				plane[r] = img[r*g.OutC+oc]
			}
		}
	}
	return y
}

// Backward computes kernel/bias gradients and the input gradient. The
// propagation dcols = dy·Wb uses the backward-effective weight copy.
//
//lint:hotpath
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	if dy.Rank() != 4 || dy.Dim(1) != g.OutC || dy.Dim(2) != oh || dy.Dim(3) != ow {
		badShape(c.name, "want N×%d×%d×%d grad, got %v", g.OutC, oh, ow, dy.Shape)
	}
	n := c.n
	rows, colsN := g.ColRows(), g.ColCols()

	// Re-layout dy from N×OutC×OH×OW to (N·R)×OutC to match the GEMM view.
	dyf := c.ws.Take("dyf", n*rows, g.OutC)
	for i := 0; i < n; i++ {
		img := dyf.Data[i*rows*g.OutC : (i+1)*rows*g.OutC]
		for oc := 0; oc < g.OutC; oc++ {
			src := dy.Data[(i*g.OutC+oc)*oh*ow : (i*g.OutC+oc+1)*oh*ow]
			for r, v := range src {
				img[r*g.OutC+oc] = v
			}
		}
	}

	// dW(OutC×C) = dyfᵀ((N·R)×OutC)ᵀ · cols((N·R)×C); db = Σ dy. The dW
	// outer products run on the backward-phase crossbars, so the fabric may
	// corrupt stuck entries.
	gw := c.ws.View2D("gw", c.GradW, g.OutC, colsN)
	tensor.MatMulTransAInto(gw, dyf, c.cols)
	c.fabric.TransformGradient(c.name, c.GradW)
	for r := 0; r < n*rows; r++ {
		row := dyf.Data[r*g.OutC : (r+1)*g.OutC]
		for j, v := range row {
			c.GradB.Data[j] += v
		}
	}

	// dcols = dyf · Wb, then fold back to image space.
	wb := c.ws.View2D("wb", c.fabric.EffectiveBackward(c.name, c.W), g.OutC, colsN)
	dcols := c.ws.Take("dcols", n*rows, colsN) // MatMulInto zeroes it
	tensor.MatMulInto(dcols, dyf, wb)

	dx := c.ws.Take("dx", n, g.InC, g.InH, g.InW)
	dx.Zero() // Col2Im accumulates into its destination
	imgLen := g.InC * g.InH * g.InW
	for i := 0; i < n; i++ {
		g.Col2Im(dx.Data[i*imgLen:(i+1)*imgLen], dcols.Data[i*rows*colsN:(i+1)*rows*colsN])
	}
	return dx
}
