package nn

import "remapd/internal/tensor"

// This file is the forward-only inference surface split out of the
// train-coupled Layer.Forward(x, train) API. Serving (internal/serve)
// runs millions of forward passes and never backpropagates, so the
// inference path must not populate backward caches (ReLU masks, BN xHat)
// or consult training-mode branches (dropout sampling, batch statistics).
// Layers opt in by implementing Inferer; everything else falls back to
// Forward(x, false), which for the remaining layers (conv, linear, pool,
// flatten) is already cache-light and train-flag-free.

// Inferer is the optional forward-only counterpart of Layer. Infer must
// produce exactly the values Forward(x, false) would — element-for-element
// identical floats — while skipping backward-cache writes and every
// training-only branch. Outputs follow the Workspace contract: valid until
// the layer's next Forward/Infer call.
type Inferer interface {
	Infer(x *tensor.Tensor) *tensor.Tensor //lint:hotpath per-request serving path, zero-alloc steady state
}

// InferLayer runs one layer forward-only, preferring its Inferer
// implementation. Composite layers (Residual) recurse through it so inner
// layers also take their inference path.
//
//lint:hotpath
func InferLayer(l Layer, x *tensor.Tensor) *tensor.Tensor {
	if inf, ok := l.(Inferer); ok {
		return inf.Infer(x)
	}
	return l.Forward(x, false)
}

// Infer runs the full stack forward-only: no grad buffers, no backward
// caches, no training-mode branches. It is the serving path's entry point
// and is 0 allocs/op once workspaces are warm (pinned by
// TestNetworkInferNoAllocSteadyState and BenchmarkNetworkInfer).
//
//lint:hotpath
func (n *Network) Infer(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.Layers {
		x = InferLayer(l, x)
	}
	return x
}

// Infer applies max(0, x) without recording the backward mask.
//
//lint:hotpath
func (r *ReLU) Infer(x *tensor.Tensor) *tensor.Tensor {
	y := r.ws.Take("y", x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Infer is the identity: inverted dropout only acts in training mode. The
// layer's RNG stream is untouched, so serving never perturbs it.
//
//lint:hotpath
func (d *Dropout) Infer(x *tensor.Tensor) *tensor.Tensor { return x }

// Infer computes relu(Body(x) + Short(x)) through the branches' inference
// paths.
//
//lint:hotpath
func (r *Residual) Infer(x *tensor.Tensor) *tensor.Tensor {
	b := x
	for _, l := range r.Body {
		b = InferLayer(l, b)
	}
	s := x
	for _, l := range r.Short {
		s = InferLayer(l, s)
	}
	if !b.SameShape(s) {
		panic("nn: residual branch shape mismatch: " + b.String() + " vs " + s.String())
	}
	sum := r.ws.Take("sum", b.Shape...)
	copy(sum.Data, b.Data)
	sum.Add(s)
	return r.relu.Infer(sum)
}
