package nn

import "remapd/internal/tensor"

// Workspace owns the named scratch tensors a layer reuses across batches:
// im2col patch matrices, GEMM outputs, activation/gradient buffers. Before
// workspaces, every Forward/Backward call allocated its outputs fresh, and
// the training loop's steady state churned hundreds of megabytes per epoch
// through the garbage collector; with them, the conv path runs
// allocation-free once buffers have grown to the batch's working-set size.
//
// The contract is single-owner, latest-call-wins: a tensor returned by Take
// is valid until the *same key* is taken again, so a layer's Forward output
// is stable exactly until its next Forward call — the lifetime the training
// loop needs (forward → loss → backward → step, then the next batch may
// overwrite). Contents are unspecified at Take time: callers must fully
// overwrite the tensor or Zero() it first. The zero value is ready to use.
type Workspace struct {
	bufs map[string]*tensor.Tensor
}

// Take returns the workspace tensor registered under key, reshaped to
// shape. The backing storage (and the *Tensor header itself) is reused when
// capacity allows, so the steady state allocates nothing.
//
//lint:hotpath steady state is a map hit + header reshape
func (ws *Workspace) Take(key string, shape ...int) *tensor.Tensor {
	t := ws.bufs[key]
	//lint:allow hotpath-alloc first-take miss branch: runs once per key, steady state never enters it
	if t == nil {
		if ws.bufs == nil {
			ws.bufs = make(map[string]*tensor.Tensor)
		}
		t = tensor.New(shape...)
		ws.bufs[key] = t
		return t
	}
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	if cap(t.Data) < vol {
		t.Data = make([]float32, vol)
	} else {
		t.Data = t.Data[:vol]
	}
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// View2D returns a d0×d1 view of src's storage registered under key,
// reusing the cached *Tensor header across calls — the allocation-free
// counterpart of src.Reshape(d0, d1) for hot-path weight views. The view
// aliases src.Data directly, tracking whatever tensor src is on each call,
// and like Take it is valid only until the same key is viewed again.
//
//lint:hotpath steady state is a map hit + header rewrite
func (ws *Workspace) View2D(key string, src *tensor.Tensor, d0, d1 int) *tensor.Tensor {
	if d0*d1 != len(src.Data) {
		panic("nn: View2D volume mismatch")
	}
	v := ws.bufs[key]
	//lint:allow hotpath-alloc first-view miss branch: runs once per key, steady state never enters it
	if v == nil {
		if ws.bufs == nil {
			ws.bufs = make(map[string]*tensor.Tensor)
		}
		v = src.Reshape(d0, d1)
		ws.bufs[key] = v
		return v
	}
	v.Data = src.Data
	v.Shape = append(v.Shape[:0], d0, d1)
	return v
}

// View returns a view of src's storage with the given shape registered
// under key — the arbitrary-rank counterpart of View2D (Flatten.Backward
// needs to hand the upstream gradient back in the cached input shape).
// Same contract: the view aliases src.Data and is valid until the key is
// viewed again.
//
//lint:hotpath steady state is a map hit + header rewrite
func (ws *Workspace) View(key string, src *tensor.Tensor, shape ...int) *tensor.Tensor {
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	if vol != len(src.Data) {
		panic("nn: View volume mismatch")
	}
	v := ws.bufs[key]
	//lint:allow hotpath-alloc first-view miss branch: runs once per key, steady state never enters it
	if v == nil {
		if ws.bufs == nil {
			ws.bufs = make(map[string]*tensor.Tensor)
		}
		v = src.Reshape(shape...)
		ws.bufs[key] = v
		return v
	}
	v.Data = src.Data
	v.Shape = append(v.Shape[:0], shape...)
	return v
}
