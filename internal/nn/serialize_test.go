package nn

import (
	"bytes"
	"testing"

	"remapd/internal/tensor"
)

func serNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 3, K: 3, Stride: 1, Pad: 1}
	blk := NewResidual("b1",
		[]Layer{NewConv2D("b1.conv", tensor.ConvGeom{InC: 3, InH: 6, InW: 6, OutC: 3, K: 3, Stride: 1, Pad: 1}, rng),
			NewBatchNorm2D("b1.bn", 3)}, nil)
	return NewNetwork(
		NewConv2D("c1", g, rng),
		NewBatchNorm2D("bn1", 3),
		NewReLU("r1"),
		blk,
		NewFlatten("fl"),
		NewLinear("fc", 3*6*6, 4, rng),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := serNet(1)
	// Perturb running stats so they are non-trivial.
	rng := tensor.NewRNG(9)
	x := tensor.New(4, 2, 6, 6)
	rng.FillNormal(x, 1)
	a.Forward(x, true)

	var buf bytes.Buffer
	if err := SaveWeights(&buf, a); err != nil {
		t.Fatal(err)
	}
	b := serNet(2) // different init
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), b); err != nil {
		t.Fatal(err)
	}
	// Every tensor must match exactly, including BN running stats.
	at, bt := namedTensors(a), namedTensors(b)
	if len(at) != len(bt) {
		t.Fatalf("tensor counts differ: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i].name != bt[i].name {
			t.Fatalf("tensor order differs: %q vs %q", at[i].name, bt[i].name)
		}
		for j := range at[i].t.Data {
			if at[i].t.Data[j] != bt[i].t.Data[j] {
				t.Fatalf("tensor %q differs at %d", at[i].name, j)
			}
		}
	}
	// Behavioural check: identical outputs in eval mode.
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatal("loaded network computes differently")
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	a := serNet(1)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, a); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	other := NewNetwork(NewLinear("fc", 4, 2, rng))
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("loading into a different architecture must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	a := serNet(1)
	if err := LoadWeights(bytes.NewReader([]byte("NOPE....")), a); err == nil {
		t.Fatal("bad magic must fail")
	}
	if err := LoadWeights(bytes.NewReader(nil), a); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	a := serNet(1)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, a); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if err := LoadWeights(bytes.NewReader(cut), serNet(1)); err == nil {
		t.Fatal("truncated file must fail")
	}
}

func TestNamedTensorsIncludeBNStats(t *testing.T) {
	a := serNet(1)
	names := map[string]bool{}
	for _, nt := range namedTensors(a) {
		names[nt.name] = true
	}
	for _, want := range []string{"bn1.runmean", "bn1.runvar", "b1.bn.runmean", "c1.w", "fc.b"} {
		if !names[want] {
			t.Fatalf("missing %q in %v", want, names)
		}
	}
}
