package nn

import "remapd/internal/tensor"

// Residual wraps a body sub-stack with a skip connection:
// y = Body(x) + Short(x). An empty Short is the identity shortcut;
// ResNet down-sampling blocks use a 1×1 strided convolution shortcut.
type Residual struct {
	name  string
	Body  []Layer
	Short []Layer
	relu  *ReLU
	ws    Workspace
}

// NewResidual builds a residual block. The output ReLU is applied after the
// addition, as in the original ResNet formulation.
func NewResidual(name string, body, short []Layer) *Residual {
	return &Residual{name: name, Body: body, Short: short, relu: NewReLU(name + ".out_relu")}
}

// Name returns the block's identifier.
func (r *Residual) Name() string { return r.name }

// Params aggregates parameters of both branches.
func (r *Residual) Params() []*Param {
	var ps []*Param
	for _, l := range r.Body {
		ps = append(ps, l.Params()...)
	}
	for _, l := range r.Short {
		ps = append(ps, l.Params()...)
	}
	return ps
}

func (r *Residual) SetFabric(f Fabric) {
	for _, l := range r.Body {
		if fl, ok := l.(FabricUser); ok {
			fl.SetFabric(f)
		}
	}
	for _, l := range r.Short {
		if fl, ok := l.(FabricUser); ok {
			fl.SetFabric(f)
		}
	}
}

// InnerMVMLayers returns the names of fabric-using layers inside the block,
// so the architecture mapper can place them on crossbars.
func (r *Residual) InnerMVMLayers() []string {
	var names []string
	for _, l := range r.Body {
		if _, ok := l.(FabricUser); ok {
			names = append(names, l.Name())
		}
	}
	for _, l := range r.Short {
		if _, ok := l.(FabricUser); ok {
			names = append(names, l.Name())
		}
	}
	return names
}

// InnerWeight looks up the primary weight of a named inner layer.
func (r *Residual) InnerWeight(name string) *tensor.Tensor {
	for _, branch := range [][]Layer{r.Body, r.Short} {
		for _, l := range branch {
			if l.Name() != name {
				continue
			}
			for _, p := range l.Params() {
				if p.Name == name+".w" {
					return p.W
				}
			}
		}
	}
	return nil
}

// Forward computes relu(Body(x) + Short(x)).
//
//lint:hotpath
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b := x
	for _, l := range r.Body {
		b = l.Forward(b, train)
	}
	s := x
	for _, l := range r.Short {
		s = l.Forward(s, train)
	}
	if !b.SameShape(s) {
		panic("nn: residual branch shape mismatch: " + b.String() + " vs " + s.String())
	}
	sum := r.ws.Take("sum", b.Shape...)
	copy(sum.Data, b.Data)
	sum.Add(s)
	return r.relu.Forward(sum, train)
}

// Backward splits the gradient between the two branches and sums the input
// gradients.
//
//lint:hotpath
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	d := r.relu.Backward(dy)
	db := d
	for i := len(r.Body) - 1; i >= 0; i-- {
		db = r.Body[i].Backward(db)
	}
	ds := d
	for i := len(r.Short) - 1; i >= 0; i-- {
		ds = r.Short[i].Backward(ds)
	}
	dx := r.ws.Take("dx", db.Shape...)
	copy(dx.Data, db.Data)
	dx.Add(ds)
	return dx
}
