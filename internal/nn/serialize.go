package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"remapd/internal/det"
	"remapd/internal/tensor"
)

// Weight serialization: a small self-describing binary format so trained
// models (and their BN running statistics) survive process restarts and
// can be shared between the cmd tools and examples.
//
// Layout (little endian):
//
//	magic "RMPD" | version u32 | paramCount u32 |
//	per param: nameLen u32 | name | rank u32 | dims []u32 | data []f32
//
// Running statistics of BatchNorm layers are not Params; they are appended
// under synthesized names ("<layer>.runmean"/".runvar") so evaluation-mode
// behaviour round-trips exactly.

const weightsMagic = "RMPD"
const weightsVersion = 1

// Optimizer state shares the per-tensor layout under its own magic, so a
// checkpoint can persist SGD momentum alongside the weights:
//
//	magic "RMPO" | version u32 | lr f64 | steps u64 | tensorCount u32 |
//	per tensor: nameLen u32 | name | rank u32 | dims []u32 | data []f32
const optimizerMagic = "RMPO"
const optimizerVersion = 1

// namedTensors enumerates every tensor that must round-trip: trainable
// parameters plus BN running statistics.
func namedTensors(n *Network) []struct {
	name string
	t    *tensor.Tensor
} {
	var out []struct {
		name string
		t    *tensor.Tensor
	}
	for _, p := range n.Params() {
		out = append(out, struct {
			name string
			t    *tensor.Tensor
		}{p.Name, p.W})
	}
	var walk func(layers []Layer)
	walk = func(layers []Layer) {
		for _, l := range layers {
			switch v := l.(type) {
			case *BatchNorm2D:
				out = append(out, struct {
					name string
					t    *tensor.Tensor
				}{v.Name() + ".runmean", v.RunMean})
				out = append(out, struct {
					name string
					t    *tensor.Tensor
				}{v.Name() + ".runvar", v.RunVar})
			case *Residual:
				walk(v.Body)
				walk(v.Short)
			}
		}
	}
	walk(n.Layers)
	return out
}

// writeTensorEntry writes one named tensor in the shared layout.
func writeTensorEntry(w io.Writer, name string, t *tensor.Tensor) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(name)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(t.Rank())); err != nil {
		return err
	}
	for _, d := range t.Shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, t.Data)
}

// readTensorHeader reads one entry's name and shape, leaving r positioned
// at the entry's float32 payload (volume = product of the returned shape).
func readTensorHeader(r io.Reader) (name string, shape []int, vol int, err error) {
	var nameLen uint32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return "", nil, 0, err
	}
	if nameLen > 4096 {
		return "", nil, 0, fmt.Errorf("nn: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return "", nil, 0, err
	}
	name = string(nameBuf)
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return "", nil, 0, err
	}
	if rank > 8 {
		return "", nil, 0, fmt.Errorf("nn: implausible rank %d for %q", rank, name)
	}
	shape = make([]int, rank)
	vol = 1
	for d := range shape {
		var v uint32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return "", nil, 0, err
		}
		shape[d] = int(v)
		vol *= int(v)
	}
	return name, shape, vol, nil
}

// SaveWeights writes every parameter and BN statistic of net to w.
func SaveWeights(w io.Writer, net *Network) error {
	ts := namedTensors(net)
	if _, err := w.Write([]byte(weightsMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(weightsVersion)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ts))); err != nil {
		return err
	}
	for _, nt := range ts {
		if err := writeTensorEntry(w, nt.name, nt.t); err != nil {
			return err
		}
	}
	return nil
}

// LoadWeights reads a weight file into net. Every serialized tensor must
// match a tensor of the same name and shape in net; missing or mismatched
// entries are errors (the format is for exact architecture round-trips).
func LoadWeights(r io.Reader, net *Network) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != weightsMagic {
		return fmt.Errorf("nn: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != weightsVersion {
		return fmt.Errorf("nn: unsupported weights version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}

	byName := map[string]*tensor.Tensor{}
	for _, nt := range namedTensors(net) {
		byName[nt.name] = nt.t
	}
	for i := uint32(0); i < count; i++ {
		name, _, vol, err := readTensorHeader(r)
		if err != nil {
			return err
		}
		dst, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: file contains unknown tensor %q", name)
		}
		if dst.Len() != vol {
			return fmt.Errorf("nn: tensor %q volume %d does not match model (%d)", name, vol, dst.Len())
		}
		if err := binary.Read(r, binary.LittleEndian, dst.Data); err != nil {
			return err
		}
		for _, v := range dst.Data {
			if math.IsNaN(float64(v)) {
				return fmt.Errorf("nn: tensor %q contains NaN", name)
			}
		}
		delete(byName, name)
	}
	if len(byName) != 0 {
		// Report the lexically first missing tensor so the error message is
		// deterministic.
		return fmt.Errorf("nn: file is missing tensor %q", det.SortedKeys(byName)[0])
	}
	return nil
}

// SaveOptimizer writes opt's mutable state — the decayed learning rate, the
// step counter, and every momentum tensor — so a resumed run continues the
// exact update trajectory. Velocity tensors are written in sorted name
// order for byte-identical output.
func SaveOptimizer(w io.Writer, opt *SGD) error {
	if _, err := w.Write([]byte(optimizerMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(optimizerVersion)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, opt.LR); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(opt.stepsApplied)); err != nil {
		return err
	}
	names := det.SortedKeys(opt.velocity)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeTensorEntry(w, name, opt.velocity[name]); err != nil {
			return err
		}
	}
	return nil
}

// LoadOptimizer restores state saved by SaveOptimizer into opt. Every
// serialized velocity must name a parameter of opt's network with a
// matching volume; parameters without a serialized velocity keep the
// lazy-zero initialisation (they had not been stepped when the state was
// saved).
func LoadOptimizer(r io.Reader, opt *SGD) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: reading optimizer magic: %w", err)
	}
	if string(magic) != optimizerMagic {
		return fmt.Errorf("nn: bad optimizer magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != optimizerVersion {
		return fmt.Errorf("nn: unsupported optimizer version %d", version)
	}
	var lr float64
	if err := binary.Read(r, binary.LittleEndian, &lr); err != nil {
		return err
	}
	var steps uint64
	if err := binary.Read(r, binary.LittleEndian, &steps); err != nil {
		return err
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	paramByName := map[string]*Param{}
	for _, p := range opt.net.Params() {
		paramByName[p.Name] = p
	}
	velocity := make(map[string]*tensor.Tensor, count)
	for i := uint32(0); i < count; i++ {
		name, shape, vol, err := readTensorHeader(r)
		if err != nil {
			return err
		}
		p, ok := paramByName[name]
		if !ok {
			return fmt.Errorf("nn: optimizer state for unknown parameter %q", name)
		}
		if p.W.Len() != vol {
			return fmt.Errorf("nn: velocity %q volume %d does not match parameter (%d)", name, vol, p.W.Len())
		}
		if _, dup := velocity[name]; dup {
			return fmt.Errorf("nn: duplicate velocity %q", name)
		}
		v := tensor.New(shape...)
		if err := binary.Read(r, binary.LittleEndian, v.Data); err != nil {
			return err
		}
		velocity[name] = v
	}
	opt.LR = lr
	opt.stepsApplied = int(steps)
	opt.velocity = velocity
	return nil
}
