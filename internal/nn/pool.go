package nn

import "remapd/internal/tensor"

// MaxPool2D is a max pooling layer with square window and equal stride
// (the common K=2, stride 2 case in VGG/SqueezeNet). Windows that would
// extend past the input edge are dropped (floor semantics).
type MaxPool2D struct {
	name    string
	K       int
	Stride  int
	ws      Workspace
	argmax  []int
	inShape []int
}

// NewMaxPool2D returns a max-pooling layer with window k and stride s.
func NewMaxPool2D(name string, k, s int) *MaxPool2D {
	return &MaxPool2D{name: name, K: k, Stride: s}
}

// Name returns the layer's identifier.
func (p *MaxPool2D) Name() string { return p.name }

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward computes the window maxima and records argmax indices.
//
//lint:hotpath
func (p *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 4 {
		badShape(p.name, "want NCHW input, got %v", x.Shape)
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		badShape(p.name, "input %dx%d too small for pool %d/%d", h, w, p.K, p.Stride)
	}
	p.inShape = append(p.inShape[:0], x.Shape...)
	y := p.ws.Take("y", n, c, oh, ow)
	if cap(p.argmax) < y.Len() {
		p.argmax = make([]int, y.Len())
	}
	p.argmax = p.argmax[:y.Len()]
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bi := (oy*p.Stride)*w + ox*p.Stride
					best, bidx := plane[bi], bi
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := (oy*p.Stride+ky)*w + ox*p.Stride + kx
							if plane[idx] > best {
								best, bidx = plane[idx], idx
							}
						}
					}
					y.Data[oi] = best
					p.argmax[oi] = (i*c+ch)*h*w + bidx
					oi++
				}
			}
		}
	}
	return y
}

// Backward routes each output gradient to its argmax input position.
//
//lint:hotpath
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := p.ws.Take("dx", p.inShape...)
	dx.Zero() // gradients accumulate into argmax positions
	for oi, v := range dy.Data {
		dx.Data[p.argmax[oi]] += v
	}
	return dx
}

// GlobalAvgPool averages each channel plane to a single value, producing
// N×C output from N×C×H×W input (ResNet/SqueezeNet heads).
type GlobalAvgPool struct {
	name    string
	ws      Workspace
	inShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name returns the layer's identifier.
func (p *GlobalAvgPool) Name() string { return p.name }

// Params returns nil; pooling has no parameters.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Forward averages each H×W plane.
//
//lint:hotpath
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 4 {
		badShape(p.name, "want NCHW input, got %v", x.Shape)
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.inShape = append(p.inShape[:0], x.Shape...)
	y := p.ws.Take("y", n, c)
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			y.Data[i*c+ch] = s * inv
		}
	}
	return y
}

// Backward spreads each gradient uniformly over its plane.
//
//lint:hotpath
func (p *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	dx := p.ws.Take("dx", p.inShape...)
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := dy.Data[i*c+ch] * inv
			plane := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for k := range plane {
				plane[k] = g
			}
		}
	}
	return dx
}

// AvgPool2D is average pooling with a square window and equal stride
// (used by SqueezeNet variants).
type AvgPool2D struct {
	name    string
	K       int
	Stride  int
	ws      Workspace
	inShape []int
}

// NewAvgPool2D returns an average-pooling layer with window k and stride s.
func NewAvgPool2D(name string, k, s int) *AvgPool2D {
	return &AvgPool2D{name: name, K: k, Stride: s}
}

// Name returns the layer's identifier.
func (p *AvgPool2D) Name() string { return p.name }

// Params returns nil; pooling has no parameters.
func (p *AvgPool2D) Params() []*Param { return nil }

// Forward computes window means.
//
//lint:hotpath
func (p *AvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 4 {
		badShape(p.name, "want NCHW input, got %v", x.Shape)
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	p.inShape = append(p.inShape[:0], x.Shape...)
	y := p.ws.Take("y", n, c, oh, ow)
	inv := 1 / float32(p.K*p.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							s += plane[(oy*p.Stride+ky)*w+ox*p.Stride+kx]
						}
					}
					y.Data[oi] = s * inv
					oi++
				}
			}
		}
	}
	return y
}

// Backward spreads each gradient uniformly over its window.
//
//lint:hotpath
func (p *AvgPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	dx := p.ws.Take("dx", p.inShape...)
	dx.Zero() // overlapping windows accumulate
	inv := 1 / float32(p.K*p.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.Data[oi] * inv
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							plane[(oy*p.Stride+ky)*w+ox*p.Stride+kx] += g
						}
					}
					oi++
				}
			}
		}
	}
	return dx
}
