package checkpoint

import (
	"bytes"
	"fmt"

	"remapd/internal/det"
	"remapd/internal/nn"
	"remapd/internal/remap"
	"remapd/internal/reram"
	"remapd/internal/tensor"
	"remapd/internal/trainer"
)

// Section names inside the container. meta/net/opt/rng/result are always
// present; chip, endurance, and policy appear only when the run uses them.
const (
	secMeta      = "meta"
	secNet       = "net"
	secOpt       = "opt"
	secRNG       = "rng"
	secChip      = "chip"
	secEndurance = "endurance"
	secPolicy    = "policy"
	secResult    = "result"
)

// Snapshot is a fully parsed checkpoint: every section decoded into plain
// values, nothing applied. Decode builds it in one pass; Apply installs it
// into a TrainState only after the whole file has validated, so a corrupt
// or stale checkpoint can never leave a half-restored run.
type Snapshot struct {
	// Fingerprint identifies the producing cell configuration; a mismatch
	// means the snapshot belongs to a different experiment and is skipped.
	Fingerprint string
	// Epoch is the number of completed epochs the snapshot captures.
	Epoch int
	// PolicyName guards against resuming under a different policy.
	PolicyName string

	netBlob   []byte
	optBlob   []byte
	trainRNG  tensor.RNGState
	faultRNG  tensor.RNGState
	chip      *chipSnap
	endurance []enduranceEntry // nil ⇔ section absent
	hasEnd    bool
	policy    []byte // nil ⇔ section absent
	hasPolicy bool
	result    resultSnap
}

type chipSnap struct {
	steps   uint64
	mapping []int
	xbars   []xbarSnap
}

type xbarSnap struct {
	writes uint64
	faults []faultSnap
}

type faultSnap struct {
	idx        int
	state      reram.CellState
	g          float64
	inPositive bool
}

type enduranceEntry struct {
	id     int
	writes uint64
}

// resultSnap mirrors the serialized trainer.Result fields.
type resultSnap struct {
	policy           string
	epochs           int
	epochTestAcc     []float64
	trainLoss        []float64
	finalTestAcc     float64
	bestTestAcc      float64
	senders          int
	swaps            int
	unmatched        int
	bistCycles       int64
	nocCycles        int64
	faultsInjected   int
	finalMeanDensity float64
}

// EncodeState serializes the live training state after epochsDone epochs
// into a self-validating checkpoint container.
func EncodeState(st *trainer.TrainState, fingerprint string, epochsDone int) ([]byte, error) {
	var sections []section

	// meta
	mw := &writer{}
	mw.str(fingerprint)
	mw.u32(uint32(epochsDone))
	mw.str(st.Policy.Name())
	sections = append(sections, section{secMeta, mw.bytes()})

	// net
	var netBuf bytes.Buffer
	if err := nn.SaveWeights(&netBuf, st.Net); err != nil {
		return nil, fmt.Errorf("checkpoint: encode network: %w", err)
	}
	sections = append(sections, section{secNet, netBuf.Bytes()})

	// opt
	var optBuf bytes.Buffer
	if err := nn.SaveOptimizer(&optBuf, st.Opt); err != nil {
		return nil, fmt.Errorf("checkpoint: encode optimizer: %w", err)
	}
	sections = append(sections, section{secOpt, optBuf.Bytes()})

	// rng: both streams, xoshiro words + Box–Muller cache each.
	rw := &writer{}
	for _, s := range []tensor.RNGState{st.TrainRNG.State(), st.FaultRNG.State()} {
		for _, w := range s.S {
			rw.u64(w)
		}
		rw.boolByte(s.HaveGauss)
		rw.f64(s.Gauss)
	}
	sections = append(sections, section{secRNG, rw.bytes()})

	// chip: step counter, task mapping, per-crossbar writes + sparse faults.
	if st.Chip != nil {
		cw := &writer{}
		cw.u64(st.Chip.Steps())
		mapping := st.Chip.Mapping()
		cw.u32(uint32(len(mapping)))
		for _, xi := range mapping {
			cw.u32(uint32(xi))
		}
		cw.u32(uint32(len(st.Chip.Xbars)))
		for _, x := range st.Chip.Xbars {
			cw.u64(x.Writes())
			cells := x.FaultCells()
			cw.u32(uint32(len(cells)))
			for _, i := range cells {
				cw.u32(uint32(i))
				cw.u8(uint8(x.StateAt(i)))
				cw.f64(x.FaultG(i))
				cw.boolByte(x.FaultInPositive(i))
			}
		}
		sections = append(sections, section{secChip, cw.bytes()})
	}

	// endurance: the applied-write watermarks, sorted for determinism.
	if st.Endurance != nil {
		ew := &writer{}
		applied := st.Endurance.AppliedWrites()
		ids := det.SortedKeys(applied)
		ew.u32(uint32(len(ids)))
		for _, id := range ids {
			ew.u32(uint32(id))
			ew.u64(applied[id])
		}
		sections = append(sections, section{secEndurance, ew.bytes()})
	}

	// policy: opaque blob from policies with internal state.
	if res, ok := st.Policy.(remap.Resumable); ok {
		blob, err := res.PolicyState()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: encode policy %s: %w", st.Policy.Name(), err)
		}
		pw := &writer{}
		pw.u64(uint64(len(blob)))
		pw.buf.Write(blob)
		sections = append(sections, section{secPolicy, pw.bytes()})
	}

	// result: the partial run summary.
	sw := &writer{}
	r := st.Result
	sw.str(r.Policy)
	sw.u32(uint32(r.Epochs))
	sw.u32(uint32(len(r.EpochTestAcc)))
	for _, v := range r.EpochTestAcc {
		sw.f64(v)
	}
	sw.u32(uint32(len(r.TrainLoss)))
	for _, v := range r.TrainLoss {
		sw.f64(v)
	}
	sw.f64(r.FinalTestAcc)
	sw.f64(r.BestTestAcc)
	sw.i64(int64(r.Senders))
	sw.i64(int64(r.Swaps))
	sw.i64(int64(r.Unmatched))
	sw.i64(r.BISTCyclesTotal)
	sw.i64(r.NoCCyclesTotal)
	sw.i64(int64(r.FaultsInjected))
	sw.f64(r.FinalMeanDensity)
	sections = append(sections, section{secResult, sw.bytes()})

	return packContainer(sections), nil
}

// Decode parses a checkpoint file into a Snapshot without touching any
// live state. All structural failures wrap ErrCorrupt.
func Decode(data []byte) (*Snapshot, error) {
	secs, err := unpackContainer(data)
	if err != nil {
		return nil, err
	}
	need := func(name string) ([]byte, error) {
		p, ok := secs[name]
		if !ok {
			return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
		}
		return p, nil
	}

	snap := &Snapshot{}

	mp, err := need(secMeta)
	if err != nil {
		return nil, err
	}
	mr := newReader(secMeta, mp)
	snap.Fingerprint = mr.str()
	snap.Epoch = int(mr.u32())
	snap.PolicyName = mr.str()
	mr.done()
	if err := mr.err(); err != nil {
		return nil, err
	}

	if snap.netBlob, err = need(secNet); err != nil {
		return nil, err
	}
	if snap.optBlob, err = need(secOpt); err != nil {
		return nil, err
	}

	rp, err := need(secRNG)
	if err != nil {
		return nil, err
	}
	rr := newReader(secRNG, rp)
	for _, dst := range []*tensor.RNGState{&snap.trainRNG, &snap.faultRNG} {
		for i := range dst.S {
			dst.S[i] = rr.u64()
		}
		dst.HaveGauss = rr.boolByte()
		dst.Gauss = rr.f64()
	}
	rr.done()
	if err := rr.err(); err != nil {
		return nil, err
	}

	if cp, ok := secs[secChip]; ok {
		cr := newReader(secChip, cp)
		cs := &chipSnap{steps: cr.u64()}
		nTasks := cr.u32()
		if cr.checkCount("mapping", nTasks, 4) {
			cs.mapping = make([]int, nTasks)
			for i := range cs.mapping {
				cs.mapping[i] = int(cr.u32())
			}
		}
		nXbars := cr.u32()
		if cr.checkCount("crossbars", nXbars, 12) {
			cs.xbars = make([]xbarSnap, nXbars)
			for xi := range cs.xbars {
				cs.xbars[xi].writes = cr.u64()
				nFaults := cr.u32()
				if !cr.checkCount("faults", nFaults, 14) {
					break
				}
				cs.xbars[xi].faults = make([]faultSnap, nFaults)
				for fi := range cs.xbars[xi].faults {
					f := &cs.xbars[xi].faults[fi]
					f.idx = int(cr.u32())
					f.state = reram.CellState(cr.u8())
					f.g = cr.f64()
					f.inPositive = cr.boolByte()
				}
			}
		}
		cr.done()
		if err := cr.err(); err != nil {
			return nil, err
		}
		snap.chip = cs
	}

	if ep, ok := secs[secEndurance]; ok {
		er := newReader(secEndurance, ep)
		n := er.u32()
		if er.checkCount("entries", n, 12) {
			snap.endurance = make([]enduranceEntry, n)
			for i := range snap.endurance {
				snap.endurance[i].id = int(er.u32())
				snap.endurance[i].writes = er.u64()
			}
		}
		er.done()
		if err := er.err(); err != nil {
			return nil, err
		}
		snap.hasEnd = true
	}

	if pp, ok := secs[secPolicy]; ok {
		pr := newReader(secPolicy, pp)
		snap.policy = pr.blob()
		pr.done()
		if err := pr.err(); err != nil {
			return nil, err
		}
		snap.hasPolicy = true
	}

	sp, err := need(secResult)
	if err != nil {
		return nil, err
	}
	sr := newReader(secResult, sp)
	rs := &snap.result
	rs.policy = sr.str()
	rs.epochs = int(sr.u32())
	nAcc := sr.u32()
	if sr.checkCount("epoch accuracies", nAcc, 8) {
		rs.epochTestAcc = make([]float64, nAcc)
		for i := range rs.epochTestAcc {
			rs.epochTestAcc[i] = sr.f64()
		}
	}
	nLoss := sr.u32()
	if sr.checkCount("train losses", nLoss, 8) {
		rs.trainLoss = make([]float64, nLoss)
		for i := range rs.trainLoss {
			rs.trainLoss[i] = sr.f64()
		}
	}
	rs.finalTestAcc = sr.f64()
	rs.bestTestAcc = sr.f64()
	rs.senders = int(sr.i64())
	rs.swaps = int(sr.i64())
	rs.unmatched = int(sr.i64())
	rs.bistCycles = sr.i64()
	rs.nocCycles = sr.i64()
	rs.faultsInjected = int(sr.i64())
	rs.finalMeanDensity = sr.f64()
	sr.done()
	if err := sr.err(); err != nil {
		return nil, err
	}

	return snap, nil
}

// Apply installs the snapshot into the live training state. It validates
// the snapshot against the run's actual shape (chip geometry, policy,
// epoch bookkeeping) before mutating anything; an error here means the
// checkpoint decoded cleanly but belongs to an incompatible run — a hard
// configuration error, not corruption.
func (snap *Snapshot) Apply(st *trainer.TrainState) error {
	// Phase 1: validate everything that can be checked without mutation.
	if (snap.chip != nil) != (st.Chip != nil) {
		return fmt.Errorf("checkpoint: chip section present=%v but run has chip=%v", snap.chip != nil, st.Chip != nil)
	}
	if snap.hasEnd != (st.Endurance != nil) {
		return fmt.Errorf("checkpoint: endurance section present=%v but run has endurance=%v", snap.hasEnd, st.Endurance != nil)
	}
	resumable, wantsPolicy := st.Policy.(remap.Resumable)
	if snap.hasPolicy != wantsPolicy {
		return fmt.Errorf("checkpoint: policy section present=%v but policy %s resumable=%v", snap.hasPolicy, st.Policy.Name(), wantsPolicy)
	}
	if snap.PolicyName != st.Policy.Name() {
		return fmt.Errorf("checkpoint: saved under policy %q, resuming under %q", snap.PolicyName, st.Policy.Name())
	}
	if len(snap.result.epochTestAcc) != snap.Epoch || len(snap.result.trainLoss) != snap.Epoch {
		return fmt.Errorf("checkpoint: %d completed epochs but %d accuracies / %d losses",
			snap.Epoch, len(snap.result.epochTestAcc), len(snap.result.trainLoss))
	}
	if snap.chip != nil {
		if len(snap.chip.xbars) != len(st.Chip.Xbars) {
			return fmt.Errorf("checkpoint: %d crossbars saved, chip has %d", len(snap.chip.xbars), len(st.Chip.Xbars))
		}
		for xi, xs := range snap.chip.xbars {
			cells := st.Chip.Xbars[xi].Cells()
			for _, f := range xs.faults {
				if f.idx < 0 || f.idx >= cells {
					return fmt.Errorf("checkpoint: crossbar %d fault at cell %d outside %d cells", xi, f.idx, cells)
				}
				if f.state != reram.SA0 && f.state != reram.SA1 {
					return fmt.Errorf("checkpoint: crossbar %d cell %d has invalid state %d", xi, f.idx, f.state)
				}
			}
		}
	}

	// Phase 2: apply. RestoreMapping validates before mutating; the blob
	// loads below parse fully before assigning, so the earliest failure
	// still aborts the run before training resumes on partial state.
	if err := nn.LoadWeights(bytes.NewReader(snap.netBlob), st.Net); err != nil {
		return fmt.Errorf("checkpoint: restore network: %w", err)
	}
	if err := nn.LoadOptimizer(bytes.NewReader(snap.optBlob), st.Opt); err != nil {
		return fmt.Errorf("checkpoint: restore optimizer: %w", err)
	}
	st.TrainRNG.Restore(snap.trainRNG)
	st.FaultRNG.Restore(snap.faultRNG)
	if snap.chip != nil {
		if err := st.Chip.RestoreMapping(snap.chip.mapping); err != nil {
			return fmt.Errorf("checkpoint: restore mapping: %w", err)
		}
		st.Chip.RestoreSteps(snap.chip.steps)
		for xi, xs := range snap.chip.xbars {
			x := st.Chip.Xbars[xi]
			x.HealAll()
			for _, f := range xs.faults {
				x.RestoreFault(f.idx, f.state, f.g, f.inPositive)
			}
			x.RestoreWrites(xs.writes)
		}
		st.Chip.InvalidateAll()
	}
	if snap.hasEnd {
		applied := make(map[int]uint64, len(snap.endurance))
		for _, e := range snap.endurance {
			applied[e.id] = e.writes
		}
		st.Endurance.RestoreAppliedWrites(applied)
	}
	if snap.hasPolicy {
		if err := resumable.RestorePolicyState(snap.policy); err != nil {
			return fmt.Errorf("checkpoint: restore policy %s: %w", st.Policy.Name(), err)
		}
	}
	r := st.Result
	r.Policy = snap.result.policy
	r.Epochs = snap.result.epochs
	r.EpochTestAcc = snap.result.epochTestAcc
	r.TrainLoss = snap.result.trainLoss
	r.FinalTestAcc = snap.result.finalTestAcc
	r.BestTestAcc = snap.result.bestTestAcc
	r.Senders = snap.result.senders
	r.Swaps = snap.result.swaps
	r.Unmatched = snap.result.unmatched
	r.BISTCyclesTotal = snap.result.bistCycles
	r.NoCCyclesTotal = snap.result.nocCycles
	r.FaultsInjected = snap.result.faultsInjected
	r.FinalMeanDensity = snap.result.finalMeanDensity
	return nil
}
