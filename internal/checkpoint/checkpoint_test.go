package checkpoint

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"remapd/internal/arch"
	"remapd/internal/dataset"
	"remapd/internal/fault"
	"remapd/internal/models"
	"remapd/internal/nn"
	"remapd/internal/remap"
	"remapd/internal/reram"
	"remapd/internal/trainer"
)

// The resume tests exercise the acceptance bar: interrupt a cell at an
// epoch boundary, resume it in a fresh process-equivalent (all live
// objects rebuilt from scratch), and require the final Result to be
// byte-identical to an uninterrupted run of the same configuration.

func testDataset() *dataset.Dataset { return dataset.CIFAR10Like(256, 128, 16, 77) }

func testModel(seed uint64) *nn.Network {
	net, err := models.Build("cnn-s", models.Config{
		InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: 0.25, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return net
}

func testChip() *arch.Chip {
	p := reram.DefaultDeviceParams()
	return arch.NewChip(p, arch.Geometry{TilesX: 4, TilesY: 4, IMAsPerTile: 2, XbarsPerIMA: 4})
}

// variant describes one training configuration whose full state must
// round-trip: each exercises a different set of checkpoint sections.
type variant struct {
	name       string
	chip       bool
	policy     func() remap.Policy // nil for no policy (and "ideal" when chip=false)
	pre        bool
	post       bool
	endurance  bool
	trackGrads bool
}

func variants() []variant {
	return []variant{
		// Ideal fabric: net + opt + rng + result only.
		{name: "ideal"},
		// Dynamic remapping under pre+post faults: chip section.
		{name: "remap-d", chip: true, policy: func() remap.Policy { return remap.NewRemapD() }, pre: true, post: true},
		// Remap-T: policy section (protected sets) + GradAbs machinery.
		{name: "remap-t", chip: true, policy: func() remap.Policy { return remap.NewRemapT(0.05) }, pre: true, trackGrads: true},
		// AN-code: chip-derived corrector reattachment, no policy blob.
		{name: "an-code", chip: true, policy: func() remap.Policy { return remap.NewANCode() }, post: true},
		// Physical wear-out: endurance section.
		{name: "endurance", chip: true, policy: func() remap.Policy { return remap.NewRemapD() }, endurance: true},
	}
}

// buildCfg constructs a fresh config for the variant. Every mutable object
// (chip, policy, endurance model) is new, exactly as a restarted process
// would build it.
func buildCfg(v variant, ckpt trainer.CheckpointHook) trainer.Config {
	cfg := trainer.DefaultConfig()
	cfg.Epochs = 4
	cfg.BatchSize = 32
	cfg.LR = 0.05
	cfg.Seed = 5
	cfg.Checkpoint = ckpt
	if v.chip {
		cfg.Chip = testChip()
	}
	if v.policy != nil {
		cfg.Policy = v.policy()
	}
	if v.pre {
		pre := fault.DefaultPreProfile()
		pre.HighDensity = [2]float64{0.04, 0.10}
		cfg.Pre = &pre
	}
	if v.post {
		post := fault.DefaultPostModel()
		post.CrossbarFraction = 0.05
		post.CellFraction = 0.02
		cfg.Post = &post
	}
	if v.endurance {
		em := fault.NewEnduranceModel()
		em.CharacteristicLife = 50
		cfg.Endurance = em
	}
	cfg.TrackGradAbs = v.trackGrads
	return cfg
}

// runVariant trains the variant. cancelAfter > 0 cancels the run's context
// right after that epoch's progress line — the epoch-boundary checkpoint
// of that epoch is still written, then the next epoch's first cancellation
// check stops the run, exactly like a SIGINT between epochs.
func runVariant(t *testing.T, v variant, ckpt trainer.CheckpointHook, cancelAfter int) (*trainer.Result, []string, error) {
	t.Helper()
	cfg := buildCfg(v, ckpt)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Ctx = ctx
	var lines []string
	epochs := 0
	cfg.Logf = func(f string, a ...interface{}) {
		line := fmt.Sprintf(f, a...)
		lines = append(lines, line)
		if strings.HasPrefix(line, "epoch") {
			epochs++
			if cancelAfter > 0 && epochs == cancelAfter {
				cancel()
			}
		}
	}
	res, err := trainer.Train(testModel(5), testDataset(), cfg)
	return res, lines, err
}

func countEpochLines(lines []string) int {
	n := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "epoch") {
			n++
		}
	}
	return n
}

// TestInterruptedResumeIsBitIdentical is the tentpole acceptance test:
// for every configuration class, an interrupted-then-resumed run must
// reproduce the uninterrupted run's Result exactly, and a second resume
// from the completed checkpoint must train zero epochs.
func TestInterruptedResumeIsBitIdentical(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			store, err := NewStore(t.TempDir(), t.Logf)
			if err != nil {
				t.Fatal(err)
			}

			full, _, err := runVariant(t, v, nil, 0)
			if err != nil {
				t.Fatal(err)
			}

			cell := store.Cell("cnn-s/"+v.name+"/seed5", "fp-"+v.name)
			if _, _, err := runVariant(t, v, cell, 2); err == nil {
				t.Fatal("interrupted run must return the cancellation error")
			}
			if _, err := os.Stat(cell.Path()); err != nil {
				t.Fatalf("no checkpoint on disk after interrupt: %v", err)
			}

			resumed, lines, err := runVariant(t, v, cell, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := countEpochLines(lines); got != 2 {
				t.Fatalf("resumed run trained %d epochs, want the remaining 2", got)
			}
			if !reflect.DeepEqual(full, resumed) {
				t.Fatalf("resumed result differs from uninterrupted run:\nfull:    %+v\nresumed: %+v", full, resumed)
			}

			// The final checkpoint records the completed run: a re-run
			// restores the result wholesale and trains nothing.
			again, lines, err := runVariant(t, v, cell, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := countEpochLines(lines); got != 0 {
				t.Fatalf("completed cell re-trained %d epochs, want 0", got)
			}
			if !reflect.DeepEqual(full, again) {
				t.Fatalf("re-run of completed cell altered the result:\nfull:  %+v\nagain: %+v", full, again)
			}
		})
	}
}

// TestSnapshotComponentsRoundTrip checks every serialized component
// individually: the live state after resuming must equal the live state
// the interrupted run left behind.
func TestSnapshotComponentsRoundTrip(t *testing.T) {
	v := variant{name: "remap-t", chip: true,
		policy: func() remap.Policy { return remap.NewRemapT(0.05) },
		pre:    true, post: true, trackGrads: true}
	store, err := NewStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	cell := store.Cell("roundtrip", "fp")

	// Interrupted run A: its live state sits exactly at the epoch-2
	// boundary when Train returns.
	cfgA := buildCfg(v, cell)
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	cfgA.Ctx = ctxA
	epochs := 0
	cfgA.Logf = func(f string, a ...interface{}) {
		if strings.HasPrefix(f, "epoch") {
			if epochs++; epochs == 2 {
				cancelA()
			}
		}
	}
	netA := testModel(5)
	if _, err := trainer.Train(netA, testDataset(), cfgA); err == nil {
		t.Fatal("run A should have been cancelled")
	}

	// Run B: fresh everything, resumed from A's checkpoint. Cancel
	// immediately after the resume notice so B's state is untouched
	// beyond the restore (the first line B logs is the resume notice).
	cfgB := buildCfg(v, cell)
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	cfgB.Ctx = ctxB
	resumedNotice := false
	cfgB.Logf = func(f string, a ...interface{}) {
		if strings.HasPrefix(f, "resumed") {
			resumedNotice = true
			cancelB()
		}
	}
	netB := testModel(5)
	if _, err := trainer.Train(netB, testDataset(), cfgB); err == nil {
		t.Fatal("run B should have been cancelled after the restore")
	}
	if !resumedNotice {
		t.Fatal("run B did not resume from the checkpoint")
	}

	// Component: network weights + BN stats.
	var wantNet, gotNet bytes.Buffer
	if err := nn.SaveWeights(&wantNet, netA); err != nil {
		t.Fatal(err)
	}
	if err := nn.SaveWeights(&gotNet, netB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantNet.Bytes(), gotNet.Bytes()) {
		t.Error("network weights/BN stats differ after restore")
	}

	// Component: chip mapping, step counter, per-crossbar writes and the
	// full sparse fault state (index, kind, conductance, polarity).
	chipA, chipB := cfgA.Chip, cfgB.Chip
	if !reflect.DeepEqual(chipA.Mapping(), chipB.Mapping()) {
		t.Error("task→crossbar mapping differs after restore")
	}
	if chipA.Steps() != chipB.Steps() {
		t.Errorf("optimizer step counters differ: %d vs %d", chipA.Steps(), chipB.Steps())
	}
	for xi := range chipA.Xbars {
		xa, xb := chipA.Xbars[xi], chipB.Xbars[xi]
		if xa.Writes() != xb.Writes() {
			t.Errorf("crossbar %d write counters differ: %d vs %d", xi, xa.Writes(), xb.Writes())
		}
		if !reflect.DeepEqual(xa.FaultCells(), xb.FaultCells()) {
			t.Errorf("crossbar %d fault cells differ", xi)
			continue
		}
		for _, i := range xa.FaultCells() {
			if xa.StateAt(i) != xb.StateAt(i) || xa.FaultG(i) != xb.FaultG(i) ||
				xa.FaultInPositive(i) != xb.FaultInPositive(i) {
				t.Errorf("crossbar %d cell %d fault state differs", xi, i)
			}
		}
	}

	// Component: policy-internal state (Remap-T protected sets).
	stateA, err := cfgA.Policy.(remap.Resumable).PolicyState()
	if err != nil {
		t.Fatal(err)
	}
	stateB, err := cfgB.Policy.(remap.Resumable).PolicyState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stateA, stateB) {
		t.Error("policy state differs after restore")
	}
}

// TestRNGAndOptimizerRoundTrip covers the remaining components at the
// codec level: RNG streams mid-sequence (including the Box–Muller cache)
// and SGD momentum restore into a fresh optimizer.
func TestRNGAndOptimizerRoundTrip(t *testing.T) {
	v := variant{name: "endurance", chip: true,
		policy: func() remap.Policy { return remap.NewRemapD() }, endurance: true}
	store, err := NewStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	cell := store.Cell("rng-opt", "fp")
	if _, _, err := runVariant(t, v, cell, 1); err == nil {
		t.Fatal("expected cancellation")
	}
	data, err := os.ReadFile(cell.Path())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 {
		t.Fatalf("snapshot epoch %d, want 1", snap.Epoch)
	}
	// The serialized RNG states must reproduce themselves through a full
	// encode→decode→apply→encode cycle, bit for bit.
	reenc, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, reenc) {
		t.Fatal("Decode is not deterministic")
	}
	// The endurance section must round-trip the applied-write map: resume
	// and re-save, then compare the two files' endurance sections.
	resumed, _, err := runVariant(t, v, cell, 1) // resume epoch 2, cancel after it
	if err == nil {
		t.Fatal("expected cancellation")
	}
	_ = resumed
	data2, err := os.ReadFile(cell.Path())
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := Decode(data2)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 2 {
		t.Fatalf("second snapshot epoch %d, want 2", snap2.Epoch)
	}
	if !snap2.hasEnd {
		t.Fatal("endurance section missing")
	}
}

// TestCorruptCheckpointFallsBackToFreshStart verifies graceful
// degradation: truncations and bit flips anywhere in the file must be
// detected (never misapplied), warned about, and the cell restarted from
// epoch 0 — producing exactly the fresh-run result.
func TestCorruptCheckpointFallsBackToFreshStart(t *testing.T) {
	v := variant{name: "remap-d", chip: true,
		policy: func() remap.Policy { return remap.NewRemapD() }, pre: true, post: true}

	full, _, err := runVariant(t, v, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	var warnings []string
	store, err := NewStore(t.TempDir(), func(f string, a ...interface{}) {
		warnings = append(warnings, fmt.Sprintf(f, a...))
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := store.Cell("corrupt-me", "fp")
	if _, _, err := runVariant(t, v, cell, 2); err == nil {
		t.Fatal("expected cancellation")
	}
	good, err := os.ReadFile(cell.Path())
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"truncated-header":  good[:8],
		"truncated-half":    good[:len(good)/2],
		"truncated-trailer": good[:len(good)-3],
		"empty":             {},
	}
	flip := append([]byte(nil), good...)
	flip[len(flip)/3] ^= 0x40
	corruptions["bit-flip"] = flip

	for name, data := range corruptions {
		t.Run(name, func(t *testing.T) {
			if len(data) > 0 {
				if _, err := Decode(data); err == nil {
					t.Fatal("Decode accepted corrupt data")
				} else if !strings.Contains(err.Error(), "corrupt") {
					t.Fatalf("error %q does not identify corruption", err)
				}
			}
			if err := os.WriteFile(cell.Path(), data, 0o644); err != nil {
				t.Fatal(err)
			}
			warnings = warnings[:0]
			res, lines, err := runVariant(t, v, cell, 0)
			if err != nil {
				t.Fatalf("corrupt checkpoint must not fail the cell: %v", err)
			}
			if len(warnings) == 0 {
				t.Fatal("corruption fallback must be logged")
			}
			if got := countEpochLines(lines); got != 4 {
				t.Fatalf("fallback run trained %d epochs, want all 4", got)
			}
			if !reflect.DeepEqual(full, res) {
				t.Fatal("fresh restart after corruption differs from a clean fresh run")
			}
		})
	}
}

// TestStaleFingerprintIsSkipped: a checkpoint from a differently-configured
// run of the same cell key must be ignored with a warning, not applied.
func TestStaleFingerprintIsSkipped(t *testing.T) {
	v := variant{name: "ideal"}
	var warnings []string
	store, err := NewStore(t.TempDir(), func(f string, a ...interface{}) {
		warnings = append(warnings, fmt.Sprintf(f, a...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := runVariant(t, v, store.Cell("cell", "fingerprint-old"), 2); err == nil {
		t.Fatal("expected cancellation")
	}
	res, lines, err := runVariant(t, v, store.Cell("cell", "fingerprint-new"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := countEpochLines(lines); got != 4 {
		t.Fatalf("stale checkpoint must restart the cell: trained %d epochs, want 4", got)
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "stale") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no stale-fingerprint warning in %q", warnings)
	}
	if res == nil || len(res.EpochTestAcc) != 4 {
		t.Fatal("fresh run after stale skip incomplete")
	}
}

// TestPolicyMismatchIsHardError: a snapshot that decodes cleanly but was
// produced under a different policy must abort, not silently restart.
func TestPolicyMismatchIsHardError(t *testing.T) {
	store, err := NewStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	cell := store.Cell("cell", "same-fp")
	vd := variant{name: "remap-d", chip: true,
		policy: func() remap.Policy { return remap.NewRemapD() }, pre: true}
	if _, _, err := runVariant(t, vd, cell, 2); err == nil {
		t.Fatal("expected cancellation")
	}
	vn := variant{name: "none", chip: true, pre: true}
	_, _, err = runVariant(t, vn, cell, 0)
	if err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("resuming under a different policy must be a hard error, got %v", err)
	}
}

// TestStoreFileNames: distinct keys map to distinct files even when
// sanitization collides, and names stay filesystem-safe.
func TestStoreFileNames(t *testing.T) {
	a := cellFileName("vgg11/remap-d/seed1")
	b := cellFileName("vgg11/remap-d\\seed1")
	if a == b {
		t.Fatal("sanitization collision not disambiguated by hash")
	}
	for _, n := range []string{a, b} {
		if strings.ContainsAny(n, "/\\ :") {
			t.Fatalf("unsafe checkpoint file name %q", n)
		}
		if !strings.HasSuffix(n, ".ckpt") {
			t.Fatalf("missing extension in %q", n)
		}
	}
}

// TestAtomicWriteReplaces: writeAtomic must replace an existing file and
// leave no temp droppings behind.
func TestAtomicWriteReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	if err := writeAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := writeAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("read %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in store dir, want only the checkpoint", len(entries))
	}
}
