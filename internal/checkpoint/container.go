// Package checkpoint provides crash-safe per-epoch snapshots of training
// cells. A checkpoint file captures everything the remainder of a run
// depends on — network weights and BN statistics, SGD momentum, both RNG
// streams, per-crossbar fault masks and endurance write counters, policy
// state, and the partial result — so an interrupted experiment resumes
// bit-identically to an uninterrupted one.
//
// File container:
//
//	"RMCK" | u32 version | u32 sectionCount
//	per section: u32 nameLen | name | u64 payloadLen | payload
//	u64 crc64(ECMA) over every preceding byte
//
// Writes are atomic (temp file in the same directory, fsync, rename,
// directory fsync), so a crash — including SIGINT mid-write — leaves
// either the previous complete snapshot or the new one, never a torn
// file. Reads verify the checksum before any byte is interpreted;
// corruption surfaces as ErrCorrupt and the affected cell restarts from
// epoch 0 while the rest of the grid is unaffected.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
)

const (
	containerMagic   = "RMCK"
	containerVersion = 1
	// maxSectionName bounds name lengths so a corrupt count cannot drive
	// a huge allocation before the length check against remaining input.
	maxSectionName = 256
)

// ErrCorrupt marks a checkpoint file that is truncated, bit-flipped, or
// otherwise structurally unreadable. Callers treat it as "no checkpoint"
// rather than a fatal error.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated")

var crcTable = crc64.MakeTable(crc64.ECMA)

// section is one named payload inside the container.
type section struct {
	name    string
	payload []byte
}

// packContainer serializes sections in the given order and appends the
// checksum trailer.
func packContainer(sections []section) []byte {
	var buf bytes.Buffer
	buf.WriteString(containerMagic)
	// binary.Write to a bytes.Buffer cannot fail; discards are explicit.
	_ = binary.Write(&buf, binary.LittleEndian, uint32(containerVersion))
	_ = binary.Write(&buf, binary.LittleEndian, uint32(len(sections)))
	for _, s := range sections {
		_ = binary.Write(&buf, binary.LittleEndian, uint32(len(s.name)))
		buf.WriteString(s.name)
		_ = binary.Write(&buf, binary.LittleEndian, uint64(len(s.payload)))
		buf.Write(s.payload)
	}
	sum := crc64.Checksum(buf.Bytes(), crcTable)
	_ = binary.Write(&buf, binary.LittleEndian, sum)
	return buf.Bytes()
}

// unpackContainer verifies the checksum and splits the container into its
// sections. Every structural failure wraps ErrCorrupt.
func unpackContainer(data []byte) (map[string][]byte, error) {
	const headerLen = 4 + 4 + 4
	if len(data) < headerLen+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal container", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	want := binary.LittleEndian.Uint64(trailer)
	if got := crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %016x, want %016x)", ErrCorrupt, got, want)
	}
	if string(body[:4]) != containerMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, body[:4])
	}
	version := binary.LittleEndian.Uint32(body[4:8])
	if version != containerVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	count := binary.LittleEndian.Uint32(body[8:12])
	r := bytes.NewReader(body[12:])
	out := make(map[string][]byte, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: section %d name length: %v", ErrCorrupt, i, err)
		}
		if nameLen == 0 || nameLen > maxSectionName {
			return nil, fmt.Errorf("%w: section %d name length %d", ErrCorrupt, i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrCorrupt, i, err)
		}
		var payloadLen uint64
		if err := binary.Read(r, binary.LittleEndian, &payloadLen); err != nil {
			return nil, fmt.Errorf("%w: section %q payload length: %v", ErrCorrupt, name, err)
		}
		if payloadLen > uint64(r.Len()) {
			return nil, fmt.Errorf("%w: section %q claims %d bytes, %d remain", ErrCorrupt, name, payloadLen, r.Len())
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: section %q payload: %v", ErrCorrupt, name, err)
		}
		if _, dup := out[string(name)]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		out[string(name)] = payload
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, r.Len())
	}
	return out, nil
}

// writeAtomic writes data to path via a temp file in the same directory,
// fsyncing both the file and the directory so the rename is durable. A
// crash at any point leaves either the old file or the new one.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		// Best-effort teardown on a path that already failed.
		_ = tmp.Close()
		_ = os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync makes the rename itself durable; best-effort on
		// filesystems that do not support syncing directories.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// writer is an error-free little-endian encoder over a bytes.Buffer
// (binary.Write to a bytes.Buffer cannot fail).
type writer struct{ buf bytes.Buffer }

func (w *writer) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *writer) u32(v uint32) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) u64(v uint64) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) i64(v int64)  { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) f64(v float64) {
	_ = binary.Write(&w.buf, binary.LittleEndian, math.Float64bits(v))
}
func (w *writer) boolByte(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}
func (w *writer) bytes() []byte { return w.buf.Bytes() }

// reader is a sticky-error little-endian decoder; after the first failure
// every read returns zero values and err() reports the cause.
type reader struct {
	r   *bytes.Reader
	e   error
	sec string
}

func newReader(sec string, data []byte) *reader {
	return &reader{r: bytes.NewReader(data), sec: sec}
}

func (r *reader) fail(what string, err error) {
	if r.e == nil {
		r.e = fmt.Errorf("%w: section %q: %s: %v", ErrCorrupt, r.sec, what, err)
	}
}

func (r *reader) u8() uint8 {
	if r.e != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.fail("u8", err)
		return 0
	}
	return b
}

func (r *reader) u32() uint32 {
	if r.e != nil {
		return 0
	}
	var v uint32
	if err := binary.Read(r.r, binary.LittleEndian, &v); err != nil {
		r.fail("u32", err)
		return 0
	}
	return v
}

func (r *reader) u64() uint64 {
	if r.e != nil {
		return 0
	}
	var v uint64
	if err := binary.Read(r.r, binary.LittleEndian, &v); err != nil {
		r.fail("u64", err)
		return 0
	}
	return v
}

func (r *reader) i64() int64 {
	return int64(r.u64())
}

func (r *reader) f64() float64 {
	return math.Float64frombits(r.u64())
}

func (r *reader) boolByte() bool {
	return r.u8() != 0
}

func (r *reader) str() string {
	n := r.u32()
	if r.e != nil {
		return ""
	}
	if uint64(n) > uint64(r.r.Len()) {
		r.fail("string", fmt.Errorf("length %d exceeds %d remaining bytes", n, r.r.Len()))
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail("string", err)
		return ""
	}
	return string(b)
}

// blob reads a u64-length-prefixed byte slice.
func (r *reader) blob() []byte {
	n := r.u64()
	if r.e != nil {
		return nil
	}
	if n > uint64(r.r.Len()) {
		r.fail("blob", fmt.Errorf("length %d exceeds %d remaining bytes", n, r.r.Len()))
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail("blob", err)
		return nil
	}
	return b
}

// remaining guards count-driven loops: a claimed element count that cannot
// fit in the remaining bytes fails immediately instead of allocating.
func (r *reader) checkCount(what string, n uint32, elemSize int) bool {
	if r.e != nil {
		return false
	}
	if uint64(n)*uint64(elemSize) > uint64(r.r.Len()) {
		r.fail(what, fmt.Errorf("count %d × %dB exceeds %d remaining bytes", n, elemSize, r.r.Len()))
		return false
	}
	return true
}

// done asserts the section was fully consumed.
func (r *reader) done() {
	if r.e == nil && r.r.Len() != 0 {
		r.fail("trailer", fmt.Errorf("%d unread bytes", r.r.Len()))
	}
}

func (r *reader) err() error { return r.e }
