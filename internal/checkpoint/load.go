package checkpoint

import (
	"bytes"
	"fmt"
	"os"

	"remapd/internal/nn"
)

// This file is the serving-side load path: remapd-serve needs the trained
// weights out of a checkpoint without a trainer.TrainState to Apply into
// (no optimizer, no training RNG streams, no partial-result bookkeeping).

// LoadFile reads and decodes one checkpoint file into a Snapshot.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data)
}

// RestoreNetwork installs only the snapshot's network weights into net —
// trainable parameters plus BatchNorm running statistics, everything
// eval-mode inference depends on. net must have the producing run's
// architecture; nn.LoadWeights validates tensor names and volumes and
// fails without partial mutation on mismatch.
func (snap *Snapshot) RestoreNetwork(net *nn.Network) error {
	if err := nn.LoadWeights(bytes.NewReader(snap.netBlob), net); err != nil {
		return fmt.Errorf("checkpoint: restore network: %w", err)
	}
	return nil
}
