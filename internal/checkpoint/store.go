package checkpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"remapd/internal/trainer"
)

// Store manages the checkpoint files of one experiment run: one file per
// cell, all in a single directory.
type Store struct {
	dir string
	// logf receives warnings about corrupt or stale checkpoints (never
	// nil; defaults to a no-op).
	logf func(format string, args ...interface{})
}

// NewStore creates (if necessary) the checkpoint directory and returns a
// store over it. logf may be nil.
func NewStore(dir string, logf func(format string, args ...interface{})) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return &Store{dir: dir, logf: logf}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Cell returns the checkpointer for one experiment cell. key is the
// cell's stable identity (its CellKey string); fingerprint binds the
// snapshot to the cell's full configuration, so a checkpoint left behind
// by a differently-configured run of the same key is skipped, not
// misapplied.
func (s *Store) Cell(key, fingerprint string) *CellCheckpointer {
	return &CellCheckpointer{
		store:       s,
		key:         key,
		fingerprint: fingerprint,
		path:        filepath.Join(s.dir, cellFileName(key)),
	}
}

// CellFileBase derives a filesystem-safe, collision-resistant file stem
// for a cell key: the sanitized key keeps files human-navigable, the FNV
// hash of the exact key keeps distinct keys distinct even when
// sanitization collides. The telemetry sink uses the same stem, so a
// cell's metrics files sit next to its checkpoint.
func CellFileBase(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never fails
	return fmt.Sprintf("%s-%016x", b.String(), h.Sum64())
}

// cellFileName is the checkpoint file for a cell key.
func cellFileName(key string) string { return CellFileBase(key) + ".ckpt" }

// CellCheckpointer implements trainer.CheckpointHook for one cell.
type CellCheckpointer struct {
	store       *Store
	key         string
	fingerprint string
	path        string
}

// Path returns the cell's checkpoint file path (tests and tooling).
func (c *CellCheckpointer) Path() string { return c.path }

// Resume implements trainer.CheckpointHook. Missing files start fresh
// silently; unreadable, corrupt, or stale (fingerprint-mismatched) files
// start fresh with a logged warning — one bad checkpoint degrades exactly
// one cell to a restart, never the whole run. A snapshot that validates
// but cannot be applied to this configuration is a hard error.
func (c *CellCheckpointer) Resume(st *trainer.TrainState) (int, bool, error) {
	data, err := os.ReadFile(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		c.store.logf("checkpoint %s: read failed (%v); restarting cell from epoch 0", c.key, err)
		return 0, false, nil
	}
	snap, err := Decode(data)
	if err != nil {
		c.store.logf("checkpoint %s: %v; restarting cell from epoch 0", c.key, err)
		return 0, false, nil
	}
	if snap.Fingerprint != c.fingerprint {
		c.store.logf("checkpoint %s: stale fingerprint (have %s, want %s); restarting cell from epoch 0",
			c.key, snap.Fingerprint, c.fingerprint)
		return 0, false, nil
	}
	if err := snap.Apply(st); err != nil {
		return 0, false, err
	}
	return snap.Epoch, true, nil
}

// Save implements trainer.CheckpointHook: encode and atomically replace
// the cell's snapshot.
func (c *CellCheckpointer) Save(st *trainer.TrainState, epochsDone int) error {
	data, err := EncodeState(st, c.fingerprint, epochsDone)
	if err != nil {
		return err
	}
	return writeAtomic(c.path, data)
}
