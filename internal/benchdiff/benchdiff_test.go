package benchdiff

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: remapd/internal/tensor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMatMulSerial       	      50	     96928 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatMulTransBSerial-4 	      50	     86206 ns/op	       2 B/op	       0 allocs/op
BenchmarkMatMulParallel     	      50	   1698239 ns/op
some unrelated log line
PASS
ok  	remapd/internal/tensor	0.029s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[1]
	if r.Name != "BenchmarkMatMulTransBSerial" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", r.Name)
	}
	if r.Iterations != 50 || r.NsPerOp != 86206 || r.BytesPerOp != 2 || r.AllocsPerOp != 0 || !r.HasMem {
		t.Fatalf("bad parse: %+v", r)
	}
	if p := results[2]; p.HasMem {
		t.Fatalf("line without -benchmem columns parsed as HasMem: %+v", p)
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	if _, err := ParseBenchOutput(strings.NewReader("PASS\nok x 0.1s\n")); err == nil {
		t.Fatal("want error on output with no benchmark lines")
	}
}

func TestRenderLoadRoundTrip(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkB", Iterations: 10, NsPerOp: 2, BytesPerOp: 3, AllocsPerOp: 1, HasMem: true},
		{Name: "BenchmarkA", Iterations: 20, NsPerOp: 1.5, HasMem: false},
	}
	data, err := RenderJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := LoadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "BenchmarkA" || out[1].Name != "BenchmarkB" {
		t.Fatalf("round trip not name-sorted: %+v", out)
	}
	if out[1].BytesPerOp != 3 || out[1].AllocsPerOp != 1 || !out[1].HasMem {
		t.Fatalf("round trip lost fields: %+v", out[1])
	}
}

func mem(name string, ns float64, bytes, allocs int64) Result {
	return Result{Name: name, Iterations: 50, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs, HasMem: true}
}

// TestDiffAllocRegressionFails is the gate's reason to exist: a synthetic
// allocs/op regression (the escaping-closure failure mode this PR removed:
// +1 alloc, +96 B) must hard-fail the diff.
func TestDiffAllocRegressionFails(t *testing.T) {
	base := []Result{mem("BenchmarkMatMulSerial", 97000, 0, 0)}
	cur := []Result{mem("BenchmarkMatMulSerial", 97100, 96, 1)}
	findings := Diff(base, cur)
	if !HasFailure(findings) {
		t.Fatalf("alloc regression did not fail: %+v", findings)
	}
	fails := 0
	for _, f := range findings {
		if f.Fail {
			fails++
		}
	}
	if fails != 2 { // one for allocs/op, one for B/op
		t.Fatalf("want 2 hard failures (allocs + bytes), got %d: %+v", fails, findings)
	}
}

func TestDiffCleanRunPasses(t *testing.T) {
	base := []Result{mem("BenchmarkA", 100, 2, 0), mem("BenchmarkB", 200, 0, 0)}
	cur := []Result{mem("BenchmarkA", 110, 0, 0), mem("BenchmarkB", 190, 0, 0)}
	// BytesPerOp 2 → 0 sits inside BytesSlack: runtime noise, not a gate.
	if findings := Diff(base, cur); HasFailure(findings) {
		t.Fatalf("clean run failed: %+v", findings)
	}
}

func TestDiffImprovementRequiresRatchet(t *testing.T) {
	base := []Result{mem("BenchmarkA", 100, 512, 4)}
	cur := []Result{mem("BenchmarkA", 100, 0, 0)}
	if !HasFailure(Diff(base, cur)) {
		t.Fatal("improvement without a baseline ratchet must fail")
	}
}

func TestDiffMissingBenchmarks(t *testing.T) {
	base := []Result{mem("BenchmarkOld", 100, 0, 0)}
	cur := []Result{mem("BenchmarkNew", 100, 0, 0)}
	findings := Diff(base, cur)
	fails := 0
	for _, f := range findings {
		if f.Fail {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("want failures for both the removed and the unbaselined benchmark: %+v", findings)
	}
}

func TestDiffNsDriftWarnsOnly(t *testing.T) {
	base := []Result{mem("BenchmarkA", 100, 0, 0)}
	cur := []Result{mem("BenchmarkA", 200, 0, 0)}
	findings := Diff(base, cur)
	if HasFailure(findings) {
		t.Fatalf("ns/op drift must not hard-fail: %+v", findings)
	}
	if len(findings) != 1 || findings[0].Fail {
		t.Fatalf("want exactly one warning: %+v", findings)
	}
	// Within the ±25% band: silent.
	cur[0].NsPerOp = 120
	if findings := Diff(base, cur); len(findings) != 0 {
		t.Fatalf("in-band drift should be silent: %+v", findings)
	}
}

func TestDiffBenchmemMismatch(t *testing.T) {
	base := []Result{mem("BenchmarkA", 100, 0, 0)}
	cur := []Result{{Name: "BenchmarkA", Iterations: 50, NsPerOp: 100}}
	if !HasFailure(Diff(base, cur)) {
		t.Fatal("missing -benchmem columns on one side must fail")
	}
}
