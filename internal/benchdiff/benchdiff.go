// Package benchdiff parses `go test -bench` output and diffs it against a
// committed baseline, so CI can hard-gate allocation regressions on the
// tensor/nn hot path. The gate rests on a determinism argument: the gated
// benchmarks run serial kernels (shapes below the tensor package's parallel
// threshold) with a fixed iteration count (-benchtime=Nx) and -cpu=1, so
// their allocs/op and B/op do not depend on the runner's core count, load,
// or scheduler — any change is a code change. Wall-clock (ns/op) IS
// machine-dependent, so it is never a hard gate, only a drift warning.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"remapd/internal/det"
)

// Result is one benchmark line in canonical form. The JSON field names
// match the BENCH_<sha>.json artifacts CI has recorded per commit since
// the bench-smoke job was introduced, so old artifacts stay diffable.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// HasMem records whether the line carried -benchmem columns; without
	// them B/op and allocs/op are unknown, not zero, and must not gate.
	HasMem bool `json:"has_mem"`
}

// ParseBenchOutput extracts benchmark results from `go test -bench` output.
// The trailing GOMAXPROCS suffix (BenchmarkFoo-8) is stripped so results
// compare across runners; everything that is not a benchmark result line
// (headers, PASS/ok trailers, test log output) is ignored.
func ParseBenchOutput(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// A result line is at least "Name  N  ns/op-value ns/op".
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad iteration count in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", line, err)
		}
		res := Result{Name: name, Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				res.BytesPerOp = v
				res.HasMem = true
			case "allocs/op":
				res.AllocsPerOp = v
				res.HasMem = true
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchdiff: reading bench output: %v", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark result lines found")
	}
	return out, nil
}

// RenderJSON serialises results in deterministic (name-sorted) order for
// the committed baseline and the per-commit BENCH_<sha>.json artifacts.
func RenderJSON(results []Result) ([]byte, error) {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	b, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadJSON parses a file previously written by RenderJSON.
func LoadJSON(data []byte) ([]Result, error) {
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("benchdiff: parsing baseline JSON: %v", err)
	}
	return out, nil
}

// BytesSlack is the absolute B/op tolerance of the hard gate. The Go
// runtime can shift a benchmark's measured bytes by a few bytes per op
// (sync.Pool refills after a GC between benchmark rounds land inside the
// timed window on some runs), so an exact byte gate would flake. Any real
// regression allocates at least a slice or interface header (≥ 16 B) per
// op and still trips the gate.
const BytesSlack = 16

// NsWarnRatio is the relative ns/op drift beyond which Diff emits a
// warning. Wall-clock varies across runners, so this never hard-fails.
const NsWarnRatio = 0.25

// Finding is one comparison outcome for a benchmark present in either set.
type Finding struct {
	Name string
	// Fail is a hard-gate violation; Warn is advisory (ns/op drift).
	Fail bool
	Msg  string
}

// Diff compares current results against the committed baseline.
//
// Hard failures (Fail=true): allocs/op above baseline, B/op above baseline
// by more than BytesSlack, a gated benchmark that disappeared from the
// current run, or a current benchmark missing from the baseline (the
// baseline is stale — regenerate it with `make bench-baseline`).
// Improvements (fewer allocs/bytes than baseline) also fail, deliberately:
// the baseline must be ratcheted down in the same commit, or the next
// regression back to the old level would pass unnoticed.
// Warnings (Fail=false): ns/op drift beyond NsWarnRatio in either
// direction.
func Diff(baseline, current []Result) []Finding {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}

	names := det.SortedKeys(base)
	for _, n := range det.SortedKeys(cur) {
		if _, ok := base[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var out []Finding
	for _, n := range names {
		b, inBase := base[n]
		c, inCur := cur[n]
		switch {
		case !inCur:
			out = append(out, Finding{Name: n, Fail: true,
				Msg: "present in baseline but missing from current run (benchmark removed or renamed? regenerate with `make bench-baseline`)"})
			continue
		case !inBase:
			out = append(out, Finding{Name: n, Fail: true,
				Msg: "missing from baseline (new benchmark? regenerate with `make bench-baseline`)"})
			continue
		}
		if b.HasMem && c.HasMem {
			if c.AllocsPerOp != b.AllocsPerOp {
				out = append(out, Finding{Name: n, Fail: true,
					Msg: fmt.Sprintf("allocs/op changed: baseline %d, current %d (if intended, regenerate with `make bench-baseline`)",
						b.AllocsPerOp, c.AllocsPerOp)})
			}
			if delta := c.BytesPerOp - b.BytesPerOp; delta > BytesSlack || delta < -BytesSlack {
				out = append(out, Finding{Name: n, Fail: true,
					Msg: fmt.Sprintf("B/op changed: baseline %d, current %d (tolerance ±%d B)",
						b.BytesPerOp, c.BytesPerOp, BytesSlack)})
			}
		} else if b.HasMem != c.HasMem {
			out = append(out, Finding{Name: n, Fail: true,
				Msg: "one side lacks -benchmem columns; run both with -benchmem"})
		}
		if b.NsPerOp > 0 {
			ratio := c.NsPerOp / b.NsPerOp
			if ratio > 1+NsWarnRatio || ratio < 1-NsWarnRatio {
				out = append(out, Finding{Name: n, Fail: false,
					Msg: fmt.Sprintf("ns/op drifted %.0f%%: baseline %.0f, current %.0f (wall-clock is machine-dependent; informational only)",
						(ratio-1)*100, b.NsPerOp, c.NsPerOp)})
			}
		}
	}
	return out
}

// HasFailure reports whether any finding is a hard-gate violation.
func HasFailure(findings []Finding) bool {
	for _, f := range findings {
		if f.Fail {
			return true
		}
	}
	return false
}
