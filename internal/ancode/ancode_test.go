package ancode

import (
	"testing"
	"testing/quick"

	"remapd/internal/reram"
	"remapd/internal/tensor"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := NewCode()
	for _, x := range []int64{0, 1, -5, 1000, -12345} {
		cw := c.Encode(x)
		if !c.Check(cw) {
			t.Fatalf("codeword of %d fails check", x)
		}
		if c.Decode(cw) != x {
			t.Fatalf("decode(%d) != %d", cw, x)
		}
	}
}

// Property: arithmetic on codewords stays in the code (the defining AN
// property: A·x + A·y = A·(x+y)).
func TestCodewordArithmeticClosedProperty(t *testing.T) {
	c := NewCode()
	f := func(x, y int32) bool {
		s := c.Encode(int64(x)) + c.Encode(int64(y))
		return c.Check(s) && c.Decode(s) == int64(x)+int64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorDetection(t *testing.T) {
	c := NewCode()
	cw := c.Encode(42)
	for _, e := range []int64{1, -1, 7, 100, 250} {
		if c.Check(cw + e) {
			t.Fatalf("error %d undetected (A=%d)", e, c.A)
		}
	}
	// Errors that are multiples of A are (by design) undetectable.
	if !c.Check(cw + c.A) {
		t.Fatal("multiple-of-A error should alias to a valid codeword")
	}
}

func TestSyndromeAndCorrect(t *testing.T) {
	c := NewCode()
	cw := c.Encode(7)
	corrupted := cw + 5
	if c.Syndrome(corrupted) != 5 {
		t.Fatalf("syndrome = %d, want 5", c.Syndrome(corrupted))
	}
	fixed, ok := c.Correct(corrupted, 10)
	if !ok || fixed != cw {
		t.Fatalf("correction failed: %d, ok=%v", fixed, ok)
	}
	// Negative error.
	fixed, ok = c.Correct(cw-3, 10)
	if !ok || fixed != cw {
		t.Fatalf("negative-error correction failed")
	}
	// Error beyond the search bound is uncorrectable.
	if _, ok := c.Correct(cw+100, 10); ok {
		t.Fatal("out-of-range error should not correct")
	}
}

func newXbar(size int) *reram.Crossbar {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = size
	return reram.NewCrossbar(0, p)
}

func TestCorrectorRequiresTable(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := newXbar(16)
	x.InjectFault(2, 3, reram.SA1, rng)
	cor := NewCorrector(NewCode())
	hook := cor.CellCorrector()
	if hook(nil, x, 2, 3) {
		t.Fatal("fault must be uncorrectable before table refresh")
	}
	cor.RefreshTable([]*reram.Crossbar{x})
	if !hook(nil, x, 2, 3) {
		t.Fatal("single known column fault must correct")
	}
}

func TestCorrectorColumnCapacity(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := newXbar(16)
	// Two faults in column 4: beyond single-error capability.
	x.InjectFault(0, 4, reram.SA0, rng)
	x.InjectFault(9, 4, reram.SA1, rng)
	// One fault in column 7: correctable.
	x.InjectFault(3, 7, reram.SA0, rng)
	cor := NewCorrector(NewCode())
	cor.RefreshTable([]*reram.Crossbar{x})
	hook := cor.CellCorrector()
	if hook(nil, x, 0, 4) || hook(nil, x, 9, 4) {
		t.Fatal("two-fault column must exceed AN-code capability")
	}
	if !hook(nil, x, 3, 7) {
		t.Fatal("single-fault column must correct")
	}
}

func TestCorrectorBlindToNewFaults(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := newXbar(16)
	cor := NewCorrector(NewCode())
	cor.RefreshTable([]*reram.Crossbar{x}) // table snapshot: clean
	x.InjectFault(5, 5, reram.SA1, rng)    // post-deployment fault
	hook := cor.CellCorrector()
	if hook(nil, x, 5, 5) {
		t.Fatal("new fault must be invisible until next refresh")
	}
	cor.RefreshTable([]*reram.Crossbar{x})
	if !hook(nil, x, 5, 5) {
		t.Fatal("fault must correct after refresh")
	}
}

func TestAreaOverheadConstant(t *testing.T) {
	if AreaOverhead != 0.063 {
		t.Fatalf("AN-code area overhead %v, paper reports 6.3%%", AreaOverhead)
	}
}
