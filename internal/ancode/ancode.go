// Package ancode implements the AN arithmetic code used as the ECC baseline
// (Feinberg et al., HPCA 2018 — reference [10] of the paper). An AN code
// encodes an integer x as A·x; any arithmetic combination of codewords is
// again a multiple of A, so a non-zero residue mod A reveals an error, and
// small error magnitudes can be corrected from a precomputed syndrome table.
//
// The package provides both the genuine arithmetic code (Encode/Check/
// Correct, exercised by the unit tests) and the fabric-level behavioural
// model the training experiments use: a Corrector that repairs the
// contribution of faulty ReRAM cells when (and only when) the fault is in
// the last-refreshed correction table and its column's fault count is
// within the code's correction capability. This captures the two weaknesses
// the paper exploits: AN codes cannot correct columns with too many faults
// (clustered/high-density crossbars), and newly appeared post-deployment
// faults are invisible until the table is refreshed.
package ancode

import (
	"remapd/internal/arch"
	"remapd/internal/reram"
)

// Code is an AN arithmetic code with parameter A. A is typically chosen as
// a prime close to a power of two (e.g. 251) so encoding is cheap and the
// minimum arithmetic distance is A.
type Code struct {
	A int64
	// CorrectablePerColumn bounds how many faulty cells per crossbar
	// column the output-side correction can absorb (1 for the single-error
	// syndrome table of [10]).
	CorrectablePerColumn int
}

// NewCode returns the baseline configuration: A = 251, single-error
// correction per column.
func NewCode() Code { return Code{A: 251, CorrectablePerColumn: 1} }

// Encode returns the codeword A·x.
func (c Code) Encode(x int64) int64 { return c.A * x }

// Decode returns the data value of a codeword (which must be valid).
func (c Code) Decode(cw int64) int64 { return cw / c.A }

// Check reports whether cw is a valid codeword (residue 0 mod A).
func (c Code) Check(cw int64) bool {
	r := cw % c.A
	return r == 0
}

// Syndrome returns the error residue of a corrupted codeword.
func (c Code) Syndrome(cw int64) int64 {
	r := cw % c.A
	if r < 0 {
		r += c.A
	}
	return r
}

// Correct attempts to repair a codeword assuming a single additive error of
// magnitude at most maxErr. It searches the syndrome space e ≡ cw (mod A),
// |e| ≤ maxErr, and returns the corrected codeword and true on success.
// (Real hardware uses a precomputed table; the exhaustive search here is
// equivalent and only used at test scale.)
func (c Code) Correct(cw int64, maxErr int64) (int64, bool) {
	if c.Check(cw) {
		return cw, true
	}
	for e := int64(1); e <= maxErr; e++ {
		if c.Check(cw - e) {
			return cw - e, true
		}
		if c.Check(cw + e) {
			return cw + e, true
		}
	}
	return cw, false
}

// AreaOverhead is the fractional chip-area cost of the AN-code datapath
// (encoder, residue checker, syndrome table, correction ALU) reported by
// [10]: 6.3%.
const AreaOverhead = 0.063

// Corrector is the fabric-level model: it decides, per faulty cell, whether
// the peripheral ECC can restore that cell's contribution to the MVM.
type Corrector struct {
	Code Code
	// known[xbarID] is the fault snapshot from the last table refresh:
	// the set of flat cell indices known faulty and per-column counts.
	knownCells map[int]map[int]bool
	knownCols  map[int][]int
}

// NewCorrector returns a corrector with an empty (stale) table; call
// RefreshTable before deployment, mirroring the offline profiling step the
// AN-code method requires.
func NewCorrector(code Code) *Corrector {
	return &Corrector{
		Code:       code,
		knownCells: make(map[int]map[int]bool),
		knownCols:  make(map[int][]int),
	}
}

// RefreshTable re-profiles every crossbar and rebuilds the correction
// table. The paper notes this must happen periodically to cover
// post-deployment faults and costs extra test/update time.
func (c *Corrector) RefreshTable(xbars []*reram.Crossbar) {
	for _, x := range xbars {
		cells := make(map[int]bool)
		cols := make([]int, x.Size)
		for r := 0; r < x.Size; r++ {
			for col := 0; col < x.Size; col++ {
				if x.State(r, col) != reram.Healthy {
					cells[r*x.Size+col] = true
					cols[col]++
				}
			}
		}
		c.knownCells[x.ID] = cells
		c.knownCols[x.ID] = cols
	}
}

// CorrectableCount reports how many cells in the current correction table
// the code can actually repair: known faulty cells whose column's known
// fault count is within the correction capability. The complement —
// table entries in over-subscribed columns — is exactly the residue the
// paper's Fig. 6 blames for the AN-code accuracy gap.
func (c *Corrector) CorrectableCount() int {
	n := 0
	for id, cells := range c.knownCells {
		cols := c.knownCols[id]
		if len(cols) == 0 {
			continue
		}
		for cell := range cells {
			if cols[cell%len(cols)] <= c.Code.CorrectablePerColumn {
				n++
			}
		}
	}
	return n
}

// CellCorrector returns the hook arch.Chip consults during effective-weight
// materialisation: a faulty cell is corrected iff it is in the known table
// and its column's known fault count is within the correction capability.
func (c *Corrector) CellCorrector() func(t *arch.Task, x *reram.Crossbar, r, col int) bool {
	return func(_ *arch.Task, x *reram.Crossbar, r, col int) bool {
		cells, ok := c.knownCells[x.ID]
		if !ok || !cells[r*x.Size+col] {
			return false // unknown (new) fault: invisible to the table
		}
		return c.knownCols[x.ID][col] <= c.Code.CorrectablePerColumn
	}
}
