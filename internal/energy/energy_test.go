package energy

import (
	"strings"
	"testing"

	"remapd/internal/reram"
)

func TestEpochComputeEnergyScales(t *testing.T) {
	c := DefaultComponents()
	small := c.EpochComputeEnergy(1000, 10, 100, 10)
	large := c.EpochComputeEnergy(2000, 10, 100, 10)
	if large <= small {
		t.Fatal("energy must grow with sample count")
	}
	if c.EpochComputeEnergy(0, 10, 100, 0) != 0 {
		t.Fatal("zero work must cost zero energy")
	}
}

func TestBISTEnergyPerCrossbar(t *testing.T) {
	c := DefaultComponents()
	one := c.BISTEnergy(1)
	want := 2*c.ArrayWriteEnergy + c.BISTReadEnergy
	if one != want {
		t.Fatalf("BIST energy %v, want %v", one, want)
	}
	if c.BISTEnergy(10) != 10*one {
		t.Fatal("BIST energy must be linear in crossbar count")
	}
}

func TestTrafficAndSwapEnergy(t *testing.T) {
	c := DefaultComponents()
	if c.RemapTrafficEnergy(1000) != 1000*c.FlitHopEnergy {
		t.Fatal("traffic energy wrong")
	}
	if c.RemapWriteEnergy(3) != 6*c.ArrayWriteEnergy {
		t.Fatal("swap energy wrong")
	}
}

func TestEpochOverheadReport(t *testing.T) {
	c := DefaultComponents()
	r := c.EpochOverhead(50000, 19, 2048, 781, 2_000_000, 4)
	if r.EpochEnergy <= 0 {
		t.Fatal("no epoch energy")
	}
	if r.TotalOverhead != r.BISTOverhead+r.TrafficOverhead {
		t.Fatal("total must be the sum of parts")
	}
	if !strings.Contains(r.Format(), "overhead") {
		t.Fatal("format broken")
	}
}

// The paper's final claims: BIST and remap traffic are sub-1% energy
// effects against CIFAR-scale training epochs.
func TestPaperPointOverheadMagnitudes(t *testing.T) {
	// Traffic: a typical Monte-Carlo round moves ~2 M flit-hops and swaps a
	// handful of tile pairs.
	r := PaperPointOverhead(reram.DefaultDeviceParams(), 2_000_000, 4)
	if r.TrafficOverhead <= 0 || r.TrafficOverhead > 0.005 {
		t.Fatalf("traffic overhead %.5f, paper claims < 0.5%%", r.TrafficOverhead)
	}
	if r.BISTOverhead <= 0 || r.BISTOverhead > 0.02 {
		t.Fatalf("BIST energy overhead %.5f implausible", r.BISTOverhead)
	}
	if r.TotalOverhead > 0.02 {
		t.Fatalf("total overhead %.5f too high for a 'negligible overhead' scheme", r.TotalOverhead)
	}
}

func TestZeroEpochEnergyNoDivideByZero(t *testing.T) {
	c := DefaultComponents()
	r := c.EpochOverhead(0, 0, 0, 0, 100, 1)
	if r.TotalOverhead != 0 {
		t.Fatal("overhead with zero epoch energy must be 0")
	}
}
