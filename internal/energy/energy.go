// Package energy provides the analytical energy/power model used to check
// the paper's final overhead claim: the additional NoC traffic introduced
// by Remap-D costs "less than 0.5% power overhead", and the per-epoch BIST
// activity is negligible against the training computation. Constants are
// calibrated to published ISAAC/NeuroSim energy breakdowns at a 32 nm-class
// node; as with the area model, only ratios matter.
package energy

import (
	"fmt"

	"remapd/internal/reram"
)

// Components collects the per-event energy constants (Joules).
type Components struct {
	// MVMEnergy is one 128×128 crossbar matrix-vector multiply including
	// DAC drive, array read and ADC conversion (ISAAC-class: a few nJ).
	MVMEnergy float64
	// ArrayWriteEnergy is one full row-by-row array reprogram.
	ArrayWriteEnergy float64
	// FlitHopEnergy is one flit traversing one router+link stage
	// (128-bit flit at 32 nm: ≈3 pJ).
	FlitHopEnergy float64
	// BISTReadEnergy is the two analog read+process steps of one BIST pass.
	BISTReadEnergy float64
}

// DefaultComponents returns the calibrated constants.
func DefaultComponents() Components {
	return Components{
		MVMEnergy:        5e-9,
		ArrayWriteEnergy: 20e-9,
		FlitHopEnergy:    3e-12,
		BISTReadEnergy:   0.5e-9,
	}
}

// EpochComputeEnergy is the training energy of one epoch: every sample
// streams through 2·mvmLayers crossbar MVM stages, and every optimizer
// step rewrites the stored weights of every active crossbar.
func (c Components) EpochComputeEnergy(samples, mvmLayers, activeCrossbars, optimizerSteps int) float64 {
	mvm := float64(samples) * 2 * float64(mvmLayers) * c.MVMEnergy
	writes := float64(optimizerSteps) * float64(activeCrossbars) * c.ArrayWriteEnergy
	return mvm + writes
}

// BISTEnergy is the cost of one density pass over every crossbar:
// two background array writes plus the read/process steps.
func (c Components) BISTEnergy(crossbars int) float64 {
	return float64(crossbars) * (2*c.ArrayWriteEnergy + c.BISTReadEnergy)
}

// RemapTrafficEnergy converts a NoC flit-hop count (from the flit-level
// simulation) into Joules.
func (c Components) RemapTrafficEnergy(flitHops int) float64 {
	return float64(flitHops) * c.FlitHopEnergy
}

// RemapWriteEnergy is the cost of reprogramming both crossbars of each
// swapped pair.
func (c Components) RemapWriteEnergy(swaps int) float64 {
	return float64(swaps) * 2 * c.ArrayWriteEnergy
}

// OverheadReport quantifies Remap-D's energy overheads for one epoch.
type OverheadReport struct {
	EpochEnergy   float64
	BISTEnergy    float64
	TrafficEnergy float64
	SwapEnergy    float64
	// BISTOverhead and TrafficOverhead are fractions of EpochEnergy.
	BISTOverhead    float64
	TrafficOverhead float64
	TotalOverhead   float64
}

// EpochOverhead computes the report for one epoch of training with the
// given remap activity.
func (c Components) EpochOverhead(samples, mvmLayers, activeCrossbars, optimizerSteps, flitHops, swaps int) OverheadReport {
	r := OverheadReport{
		EpochEnergy:   c.EpochComputeEnergy(samples, mvmLayers, activeCrossbars, optimizerSteps),
		BISTEnergy:    c.BISTEnergy(activeCrossbars),
		TrafficEnergy: c.RemapTrafficEnergy(flitHops),
		SwapEnergy:    c.RemapWriteEnergy(swaps),
	}
	if r.EpochEnergy > 0 {
		r.BISTOverhead = r.BISTEnergy / r.EpochEnergy
		r.TrafficOverhead = (r.TrafficEnergy + r.SwapEnergy) / r.EpochEnergy
		r.TotalOverhead = r.BISTOverhead + r.TrafficOverhead
	}
	return r
}

// Format renders the report.
func (r OverheadReport) Format() string {
	return fmt.Sprintf(
		"epoch compute %.3g J; BIST %.3g J (%.3f%%); remap traffic %.3g J + swap writes %.3g J (%.3f%%)\n"+
			"total Remap-D energy overhead %.3f%% (paper: traffic < 0.5%% power)\n",
		r.EpochEnergy, r.BISTEnergy, 100*r.BISTOverhead,
		r.TrafficEnergy, r.SwapEnergy, 100*r.TrafficOverhead, 100*r.TotalOverhead)
}

// PaperPointOverhead evaluates the report at the paper's configuration:
// CIFAR-sized epochs on VGG-19 with the measured Monte-Carlo traffic.
func PaperPointOverhead(p reram.DeviceParams, flitHops, swaps int) OverheadReport {
	c := DefaultComponents()
	const (
		samples   = 50000
		mvmLayers = 19
		batches   = 50000 / 64
	)
	active := 2048 // arch.DefaultGeometry crossbars
	return c.EpochOverhead(samples, mvmLayers, active, batches, flitHops, swaps)
}
