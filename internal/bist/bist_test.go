package bist

import (
	"math"
	"testing"
	"testing/quick"

	"remapd/internal/fault"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

func TestCyclesPerPassMatchesPaper(t *testing.T) {
	p := reram.DefaultDeviceParams()
	if got := CyclesPerPass(p); got != 260 {
		t.Fatalf("CyclesPerPass = %d, want 260 (paper: 130 SA1 + 130 SA0)", got)
	}
	if ns := PassTimeNS(p); math.Abs(ns-26000) > 1e-9 {
		t.Fatalf("pass time %v ns, want 26 µs", ns)
	}
}

func TestControllerCycleAccounting(t *testing.T) {
	p := reram.DefaultDeviceParams()
	x := reram.NewCrossbar(0, p)
	c := NewController(p)
	res := c.Run(x)
	if c.Cycles() != 260 {
		t.Fatalf("FSM consumed %d cycles, want 260", c.Cycles())
	}
	if res.Cycles != 260 {
		t.Fatalf("Result.Cycles = %d, want 260", res.Cycles)
	}
	if !res.Finished {
		t.Fatal("finish flag not set")
	}
}

func TestControllerStateSequence(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 4
	x := reram.NewCrossbar(0, p)
	c := NewController(p)
	c.Start(x)
	var states []State
	states = append(states, c.State())
	for c.Step() {
		states = append(states, c.State())
	}
	// 4 write cycles, read, process, 4 write, read, process = 12 cycles.
	if c.Cycles() != CyclesPerPass(p) {
		t.Fatalf("cycles %d, want %d", c.Cycles(), CyclesPerPass(p))
	}
	// The walk must pass through every state in order.
	seen := map[State]bool{}
	for _, s := range states {
		seen[s] = true
	}
	for _, s := range []State{S1WriteZero, S2ReadSA1, S3ProcessSA1, S4WriteOne, S5ReadSA0, S6ProcessSA0} {
		if !seen[s] {
			t.Fatalf("state %v never visited (walk: %v)", s, states)
		}
	}
	if c.State() != S0Idle {
		t.Fatalf("controller must return to idle, in %v", c.State())
	}
}

func TestBISTChargesTwoWrites(t *testing.T) {
	p := reram.DefaultDeviceParams()
	x := reram.NewCrossbar(0, p)
	NewController(p).Run(x)
	if x.Writes() != 2 {
		t.Fatalf("BIST charged %d writes, want 2 (WR_ZERO + WR_ONE)", x.Writes())
	}
}

func TestDensityEstimateOnCleanCrossbar(t *testing.T) {
	p := reram.DefaultDeviceParams()
	x := reram.NewCrossbar(0, p)
	res := NewController(p).Run(x)
	if res.SA0Estimate != 0 || res.SA1Estimate != 0 || res.DensityEstimate != 0 {
		t.Fatalf("clean crossbar estimated %+v", res)
	}
}

func TestDensityEstimateAccuracy(t *testing.T) {
	p := reram.DefaultDeviceParams()
	rng := tensor.NewRNG(1)
	for _, density := range []float64{0.002, 0.01, 0.05} {
		x := reram.NewCrossbar(0, p)
		n := int(density * float64(x.Cells()))
		fault.InjectMixed(x, n, 0.1, 0.5, 3, rng)
		res := NewController(p).Run(x)
		truth := x.FaultDensity()
		if math.Abs(res.DensityEstimate-truth) > 0.25*truth+1e-4 {
			t.Fatalf("density %v estimated as %v (truth %v)", density, res.DensityEstimate, truth)
		}
	}
}

func TestPerColumnSA1Estimates(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(2)
	x := reram.NewCrossbar(0, p)
	// 3 SA1 faults in column 5.
	for r := 0; r < 3; r++ {
		x.InjectFault(r, 5, reram.SA1, rng)
	}
	res := NewController(p).Run(x)
	if res.SA1Columns[5] < 2 || res.SA1Columns[5] > 4 {
		t.Fatalf("column 5 SA1 estimate %d, want ≈3", res.SA1Columns[5])
	}
	for col, k := range res.SA1Columns {
		if col != 5 && k != 0 {
			t.Fatalf("phantom SA1 estimate %d in column %d", k, col)
		}
	}
}

func TestPerColumnSA0Estimates(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(3)
	x := reram.NewCrossbar(0, p)
	for r := 0; r < 5; r++ {
		x.InjectFault(r, 2, reram.SA0, rng)
	}
	res := NewController(p).Run(x)
	if res.SA0Columns[2] < 4 || res.SA0Columns[2] > 6 {
		t.Fatalf("column 2 SA0 estimate %d, want ≈5", res.SA0Columns[2])
	}
}

// Property: the estimate is monotone-ish and bounded — for any injected
// count the estimate never exceeds the column size and never goes negative.
func TestEstimateBoundsProperty(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 32
	f := func(seed uint32, nRaw uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		x := reram.NewCrossbar(0, p)
		n := int(nRaw) % x.Cells()
		fault.InjectMixed(x, n, 0.1, 0.5, 3, rng)
		res := NewController(p).Run(x)
		if res.SA0Estimate < 0 || res.SA1Estimate < 0 {
			return false
		}
		if res.DensityEstimate < 0 || res.DensityEstimate > 2 {
			return false
		}
		for _, k := range res.SA1Columns {
			if k < 0 || k > p.CrossbarSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTimingOverheadMatchesPaperBallpark(t *testing.T) {
	p := reram.DefaultDeviceParams()
	// The paper reports 0.13% full-system overhead for per-epoch BIST.
	// With one controller testing the 8 crossbars of its IMA sequentially
	// (2080 cycles) against an epoch of ~1.6M ReRAM cycles of compute, the
	// overhead lands at that magnitude.
	oh := TimingOverhead(p, 8, 1.6e6)
	if oh < 0.0005 || oh > 0.005 {
		t.Fatalf("timing overhead %v, want ≈0.13%%", oh)
	}
	if TimingOverhead(p, 8, 0) != 0 {
		t.Fatal("zero compute must give zero overhead")
	}
}

func TestCurrentCurveSA1Increasing(t *testing.T) {
	p := reram.DefaultDeviceParams()
	// Fig. 4 varies SA1 resistance over 1.5–2 kΩ (Section IV.B); the wider
	// worst-case 3 kΩ bound is used for damage modelling, not calibration.
	p.SA1RMax = 2e3
	rng := tensor.NewRNG(4)
	curve := CurrentCurve(p, 4, 4, 20, reram.SA1, rng)
	if len(curve) != 5 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].MeanI <= curve[i-1].MeanI {
			t.Fatalf("SA1 curve not increasing at %d", i)
		}
		// Even the variation band must not overlap the neighbouring count's
		// band badly: min of k must exceed max of k-1 for SA1 (the gap that
		// makes calibration reliable despite variation, per Fig. 4).
		if curve[i].MinI <= curve[i-1].MaxI {
			t.Fatalf("SA1 variation bands overlap between k=%d and k=%d", i-1, i)
		}
	}
}

func TestCurrentCurveSA0Decreasing(t *testing.T) {
	p := reram.DefaultDeviceParams()
	rng := tensor.NewRNG(5)
	curve := CurrentCurve(p, 4, 4, 20, reram.SA0, rng)
	for i := 1; i < len(curve); i++ {
		if curve[i].MeanI >= curve[i-1].MeanI {
			t.Fatalf("SA0 curve not decreasing at %d", i)
		}
		if curve[i].MaxI >= curve[i-1].MinI {
			t.Fatalf("SA0 variation bands overlap between k=%d and k=%d", i-1, i)
		}
	}
}

func TestCurrentCurveLargeArray(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.SA1RMax = 2e3
	rng := tensor.NewRNG(6)
	// The paper notes the correlation holds for larger crossbars too.
	curve := CurrentCurve(p, 128, 8, 5, reram.SA1, rng)
	if curve[8].MeanI <= curve[0].MeanI {
		t.Fatal("large-array SA1 current must still grow with fault count")
	}
}

func TestCurrentCurveKindValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Healthy kind")
		}
	}()
	CurrentCurve(reram.DefaultDeviceParams(), 4, 2, 3, reram.Healthy, tensor.NewRNG(1))
}
