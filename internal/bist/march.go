package bist

import (
	"remapd/internal/reram"
)

// March tests are the conventional memory-test alternative the paper
// contrasts its BIST against (reference [16]): they locate every faulty
// cell exactly, but at a much higher time cost, which is why they are used
// for pre-deployment screening and are too expensive to run online after
// every epoch.
//
// MarchCMinus implements the classic March C- algorithm:
//
//	⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇓(r0)
//
// adapted to a crossbar array: writes program one row per ReRAM cycle
// (row-parallel, as in the BIST background writes) but reads must resolve
// individual cells, so each read element costs one cycle per row with all
// columns sensed in parallel — and unlike the density BIST, every element
// is visited six times.

// MarchResult is the outcome of a March C- pass.
type MarchResult struct {
	// FaultMap holds the exact located faults: flat cell index → state.
	FaultMap map[int]reram.CellState
	// SA0Count / SA1Count are the located totals.
	SA0Count, SA1Count int
	// Cycles is the ReRAM-cycle cost of the pass.
	Cycles int
}

// MarchCMinus runs the March C- test on a crossbar and returns the exact
// fault map plus the cycle cost. Cell reads are modelled through the same
// analog path as the BIST (a stuck cell reads as its stuck conductance), so
// detection is by comparing the read value against the last written logic
// level.
func MarchCMinus(x *reram.Crossbar) MarchResult {
	res := MarchResult{FaultMap: make(map[int]reram.CellState)}
	size := x.Size

	// Logical image of what the healthy array would hold.
	// A cell is detected as SA1 if it reads "1" where "0" was written, and
	// SA0 if it reads "0" where "1" was written. Reads of a stuck cell
	// always reflect the stuck level regardless of writes.
	readCell := func(i int) int {
		switch x.StateAt(i) {
		case reram.SA1:
			return 1
		case reram.SA0:
			return 0
		}
		return -1 // healthy: reads whatever was last written
	}

	written := make([]int, size*size)

	// write0/write1 sweep: one row per cycle.
	writeAll := func(v int) {
		for i := range written {
			written[i] = v
		}
		x.RecordWrite()
		res.Cycles += size
	}
	// readVerify sweeps the array one row per cycle (columns in parallel)
	// and records mismatches.
	readVerify := func(expect int) {
		res.Cycles += size
		for i := range written {
			got := readCell(i)
			if got == -1 {
				got = written[i]
			}
			if got != expect {
				if got == 1 {
					res.FaultMap[i] = reram.SA1
				} else {
					res.FaultMap[i] = reram.SA0
				}
			}
		}
	}

	// ⇑(w0)
	writeAll(0)
	// ⇑(r0, w1)
	readVerify(0)
	writeAll(1)
	// ⇑(r1, w0)
	readVerify(1)
	writeAll(0)
	// ⇓(r0, w1)
	readVerify(0)
	writeAll(1)
	// ⇓(r1, w0)
	readVerify(1)
	writeAll(0)
	// ⇓(r0)
	readVerify(0)

	for _, s := range res.FaultMap {
		if s == reram.SA0 {
			res.SA0Count++
		} else {
			res.SA1Count++
		}
	}
	return res
}

// MarchCycles returns the cycle cost of March C- on a size×size array:
// the ⇑(w0);⇑(r0,w1);⇑(r1,w0);⇓(r0,w1);⇓(r1,w0);⇓(r0) sequence performs
// 5 write sweeps and 5 read sweeps of `size` cycles each.
func MarchCycles(size int) int { return 10 * size }

// MarchVsBISTSpeedup returns how many times cheaper the density-only BIST
// pass is than a full March C- pass for the technology point — the
// quantitative form of the paper's "existing BIST architectures ... can be
// expensive" argument.
func MarchVsBISTSpeedup(p reram.DeviceParams) float64 {
	return float64(MarchCycles(p.CrossbarSize)) / float64(CyclesPerPass(p))
}
