package bist

import (
	"testing"
	"testing/quick"

	"remapd/internal/fault"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

func TestMarchCleanArray(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 16
	x := reram.NewCrossbar(0, p)
	res := MarchCMinus(x)
	if len(res.FaultMap) != 0 || res.SA0Count != 0 || res.SA1Count != 0 {
		t.Fatalf("clean array reported faults: %+v", res)
	}
	if res.Cycles != MarchCycles(16) {
		t.Fatalf("cycles %d, want %d", res.Cycles, MarchCycles(16))
	}
}

func TestMarchLocatesExactFaults(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(1)
	x := reram.NewCrossbar(0, p)
	x.InjectFault(2, 3, reram.SA1, rng)
	x.InjectFault(7, 9, reram.SA0, rng)
	x.InjectFault(15, 0, reram.SA1, rng)
	res := MarchCMinus(x)
	if res.SA1Count != 2 || res.SA0Count != 1 {
		t.Fatalf("counts SA1=%d SA0=%d", res.SA1Count, res.SA0Count)
	}
	if res.FaultMap[2*16+3] != reram.SA1 {
		t.Fatal("SA1 at (2,3) not located")
	}
	if res.FaultMap[7*16+9] != reram.SA0 {
		t.Fatal("SA0 at (7,9) not located")
	}
	if res.FaultMap[15*16+0] != reram.SA1 {
		t.Fatal("SA1 at (15,0) not located")
	}
}

// Property: March C- achieves complete SAF coverage — every injected fault
// is located with the correct polarity, with zero false positives.
func TestMarchCompleteCoverageProperty(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 16
	f := func(seed uint32, nRaw uint8) bool {
		rng := tensor.NewRNG(uint64(seed))
		x := reram.NewCrossbar(0, p)
		n := int(nRaw) % 60
		fault.InjectMixed(x, n, 0.2, 0.5, 3, rng)
		res := MarchCMinus(x)
		if len(res.FaultMap) != x.FaultCount() {
			return false
		}
		for i, s := range res.FaultMap {
			if x.StateAt(i) != s {
				return false
			}
		}
		return res.SA0Count == x.CountState(reram.SA0) && res.SA1Count == x.CountState(reram.SA1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMarchWriteAccounting(t *testing.T) {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 8
	x := reram.NewCrossbar(0, p)
	MarchCMinus(x)
	if x.Writes() != 5 {
		t.Fatalf("March must charge 5 array writes, got %d", x.Writes())
	}
}

func TestMarchVsBISTSpeedup(t *testing.T) {
	p := reram.DefaultDeviceParams() // 128×128
	// March: 1280 cycles; BIST: 260 cycles ⇒ ≈4.9× cheaper, and the BIST
	// additionally writes only 2 background patterns instead of 5 (less
	// endurance wear) while producing the density signal Remap-D needs.
	speedup := MarchVsBISTSpeedup(p)
	if speedup < 4.5 || speedup > 5.5 {
		t.Fatalf("March/BIST cost ratio %.2f, want ≈4.9", speedup)
	}
}

func TestMarchFeedsANCodeTable(t *testing.T) {
	// The located fault map is exactly what an AN-code correction table
	// needs; verify the per-column counts derived from March agree with
	// ground truth.
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(3)
	x := reram.NewCrossbar(0, p)
	fault.InjectMixed(x, 20, 0.3, 0.4, 2, rng)
	res := MarchCMinus(x)
	cols := make([]int, 16)
	for i := range res.FaultMap {
		cols[i%16]++
	}
	for c := 0; c < 16; c++ {
		truth := x.ColumnFaults(c, reram.SA0) + x.ColumnFaults(c, reram.SA1)
		if cols[c] != truth {
			t.Fatalf("column %d: March %d vs truth %d", c, cols[c], truth)
		}
	}
}
