// Package bist implements the paper's built-in self-test module
// (Section III.B.3): a seven-state finite-state machine that measures the
// *fault density* of a ReRAM crossbar — not per-cell fault locations —
// by writing a background pattern and observing per-column analog read
// currents. The FSM timing matches the paper exactly: for a 128×128 array,
// SA1 detection takes 130 ReRAM cycles (128 row writes + 1 read + 1
// peripheral processing cycle), SA0 detection another 130, for 260 total
// (26 µs at the 10 MHz array clock).
package bist

import (
	"fmt"

	"remapd/internal/obs"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// State enumerates the BIST controller states of Fig. 2(b).
type State int

// The controller's states: idle, then three per fault polarity.
const (
	S0Idle State = iota
	S1WriteZero
	S2ReadSA1
	S3ProcessSA1
	S4WriteOne
	S5ReadSA0
	S6ProcessSA0
)

// String names a state like the paper's figure.
func (s State) String() string {
	switch s {
	case S0Idle:
		return "S0/IDLE"
	case S1WriteZero:
		return "S1/WR_ZERO"
	case S2ReadSA1:
		return "S2/RD_SA1"
	case S3ProcessSA1:
		return "S3/PROC_SA1"
	case S4WriteOne:
		return "S4/WR_ONE"
	case S5ReadSA0:
		return "S5/RD_SA0"
	case S6ProcessSA0:
		return "S6/PROC_SA0"
	}
	return fmt.Sprintf("S?(%d)", int(s))
}

// Result is the outcome of one BIST pass over a crossbar.
type Result struct {
	// SA1Columns and SA0Columns hold the per-column fault-count estimates
	// decoded from the read currents.
	SA1Columns []int
	SA0Columns []int
	// SA1Estimate/SA0Estimate are the totals over all columns.
	SA1Estimate, SA0Estimate int
	// DensityEstimate is (SA1+SA0 estimate)/cells — the quantity Remap-D
	// consumes.
	DensityEstimate float64
	// Cycles is the number of ReRAM cycles consumed (260 for 128×128).
	Cycles int
	// Finished mirrors the controller's finish flag.
	Finished bool
}

// Controller is the BIST finite-state machine. It is deliberately a
// cycle-stepped machine (Step advances one ReRAM cycle) rather than a
// closed-form calculation, so the timing side of the paper's claims is
// produced by the same artifact that produces the estimates.
type Controller struct {
	params reram.DeviceParams
	state  State
	// counter is the in-state cycle counter ("c" in Fig. 2(a)).
	counter int
	cycles  int
	target  *reram.Crossbar
	result  Result

	// Obs, when non-nil, receives one BISTPassEvent per completed pass,
	// stamped with SimEpoch (the simulated epoch the caller is testing
	// at). Recording never feeds back into the FSM or its estimates.
	Obs      obs.Recorder
	SimEpoch int
}

// NewController returns an idle controller for the given device technology.
func NewController(p reram.DeviceParams) *Controller {
	return &Controller{params: p, state: S0Idle}
}

// State returns the current FSM state.
func (c *Controller) State() State { return c.state }

// Cycles returns ReRAM cycles elapsed since Start.
func (c *Controller) Cycles() int { return c.cycles }

// Start arms the controller on a crossbar. The two background writes that
// the test performs are charged to the crossbar's endurance counter, as the
// paper notes (they are negligible against per-batch weight updates).
func (c *Controller) Start(x *reram.Crossbar) {
	if x.Size != c.params.CrossbarSize {
		panic(fmt.Sprintf("bist: crossbar size %d does not match controller technology %d", x.Size, c.params.CrossbarSize))
	}
	c.target = x
	c.state = S1WriteZero
	c.counter = 0
	c.cycles = 0
	c.result = Result{
		SA1Columns: make([]int, x.Size),
		SA0Columns: make([]int, x.Size),
	}
}

// Step advances the FSM by one ReRAM cycle. It returns true while the test
// is still running; once it returns false the Result is available.
func (c *Controller) Step() bool {
	if c.state == S0Idle {
		return false
	}
	c.cycles++
	size := c.target.Size
	switch c.state {
	case S1WriteZero:
		// One row programmed per cycle (write logic "0" everywhere).
		c.counter++
		if c.counter == size {
			c.target.RecordWrite()
			c.state = S2ReadSA1
			c.counter = 0
		}
	case S2ReadSA1:
		// All columns read in parallel in a single cycle.
		c.state = S3ProcessSA1
	case S3ProcessSA1:
		// Peripherals (ADC + S&A) decode currents into counts.
		for col := 0; col < size; col++ {
			i := c.target.ReadColumnCurrent(col, false)
			c.result.SA1Columns[col] = c.decodeSA1(i)
			c.result.SA1Estimate += c.result.SA1Columns[col]
		}
		c.state = S4WriteOne
	case S4WriteOne:
		c.counter++
		if c.counter == size {
			c.target.RecordWrite()
			c.state = S5ReadSA0
			c.counter = 0
		}
	case S5ReadSA0:
		c.state = S6ProcessSA0
	case S6ProcessSA0:
		for col := 0; col < size; col++ {
			i := c.target.ReadColumnCurrent(col, true)
			c.result.SA0Columns[col] = c.decodeSA0(i)
			c.result.SA0Estimate += c.result.SA0Columns[col]
		}
		cells := float64(c.target.Cells())
		c.result.DensityEstimate = float64(c.result.SA1Estimate+c.result.SA0Estimate) / cells
		c.result.Cycles = c.cycles
		c.result.Finished = true
		c.state = S0Idle
		if c.Obs != nil {
			c.Obs.Emit(&obs.BISTPassEvent{
				Epoch:    c.SimEpoch,
				Xbar:     c.target.ID,
				SA1:      c.result.SA1Estimate,
				SA0:      c.result.SA0Estimate,
				Cycles:   c.result.Cycles,
				Estimate: c.result.DensityEstimate,
			})
			c.Obs.Add("bist.passes", 1)
		}
	}
	return c.state != S0Idle
}

// Run executes a complete BIST pass and returns the result.
func (c *Controller) Run(x *reram.Crossbar) Result {
	c.Start(x)
	for c.Step() {
	}
	return c.result
}

// Result returns the result of the last completed pass.
func (c *Controller) Result() Result { return c.result }

// decodeSA1 converts an SA1-test column current into a fault-count
// estimate. With the background at G_min, a column with k SA1 cells carries
// I ≈ V·((size−k)·Gmin + k·G_SA1); the calibration uses the mean stuck
// conductance, so device variation introduces a (bounded) estimation error,
// exactly the behaviour Fig. 4 demonstrates is tolerable.
func (c *Controller) decodeSA1(current float64) int {
	p := c.params
	size := float64(p.CrossbarSize)
	v := p.ReadVoltage
	base := size * v * p.GMin()
	gSA1Mean := (1/p.SA1RMin + 1/p.SA1RMax) / 2
	delta := v * (gSA1Mean - p.GMin())
	k := int((current-base)/delta + 0.5)
	if k < 0 {
		k = 0
	}
	if k > p.CrossbarSize {
		k = p.CrossbarSize
	}
	return k
}

// decodeSA0 converts an SA0-test column current into a fault-count
// estimate: background at G_max, each SA0 cell removes ≈ V·(Gmax−G_SA0).
func (c *Controller) decodeSA0(current float64) int {
	p := c.params
	size := float64(p.CrossbarSize)
	v := p.ReadVoltage
	base := size * v * p.GMax()
	gSA0Mean := (1/p.SA0RMin + 1/p.SA0RMax) / 2
	delta := v * (p.GMax() - gSA0Mean)
	k := int((base-current)/delta + 0.5)
	if k < 0 {
		k = 0
	}
	if k > p.CrossbarSize {
		k = p.CrossbarSize
	}
	return k
}

// CyclesPerPass returns the number of ReRAM cycles one full BIST pass takes
// for the technology: 2·(size + 2).
func CyclesPerPass(p reram.DeviceParams) int { return 2 * (p.CrossbarSize + 2) }

// PassTimeNS returns the wall-clock duration of one pass in nanoseconds.
func PassTimeNS(p reram.DeviceParams) float64 {
	return float64(CyclesPerPass(p)) * p.ReRAMCycleNS
}

// TimingOverhead returns the fractional training-time overhead of running
// BIST once per epoch on every crossbar, given the compute time of one
// epoch in ReRAM cycles. BIST for all crossbars in an IMA shares the
// centralized controller but the crossbars of different IMAs are tested in
// parallel, so the per-epoch cost is passes·CyclesPerPass where passes is
// the number of crossbars tested sequentially by one controller.
func TimingOverhead(p reram.DeviceParams, sequentialPasses int, epochComputeCycles float64) float64 {
	if epochComputeCycles <= 0 {
		return 0
	}
	return float64(sequentialPasses*CyclesPerPass(p)) / epochComputeCycles
}

// CurvePoint is one point of a Fig. 4-style current-vs-faults curve.
type CurvePoint struct {
	Faults             int
	MeanI, MinI, MaxI  float64 // Amperes
	MeanMicroA         float64 // convenience: MeanI in µA
	RelativeToFaulFree float64 // MeanI normalised to the 0-fault current
}

// CurrentCurve reproduces Fig. 4: for k = 0..maxFaults stuck cells of the
// given kind in one column of a size×size crossbar, it samples `trials`
// random stuck-resistance draws and reports the column read current
// statistics. kind must be reram.SA0 or reram.SA1.
func CurrentCurve(p reram.DeviceParams, size, maxFaults, trials int, kind reram.CellState, rng *tensor.RNG) []CurvePoint {
	if kind != reram.SA0 && kind != reram.SA1 {
		panic("bist: CurrentCurve kind must be SA0 or SA1")
	}
	local := p
	local.CrossbarSize = size
	programmedOne := kind == reram.SA0 // SA0 test writes background "1"
	curve := make([]CurvePoint, 0, maxFaults+1)
	var baseline float64
	for k := 0; k <= maxFaults; k++ {
		pt := CurvePoint{Faults: k, MinI: 1e18, MaxI: -1e18}
		var sum float64
		for tr := 0; tr < trials; tr++ {
			x := reram.NewCrossbar(0, local)
			for r := 0; r < k; r++ {
				x.InjectFault(r, 0, kind, rng)
			}
			i := x.ReadColumnCurrent(0, programmedOne)
			sum += i
			if i < pt.MinI {
				pt.MinI = i
			}
			if i > pt.MaxI {
				pt.MaxI = i
			}
		}
		pt.MeanI = sum / float64(trials)
		pt.MeanMicroA = pt.MeanI * 1e6
		if k == 0 {
			baseline = pt.MeanI
		}
		if baseline != 0 { //lint:allow float-eq exact zero guard against dividing by an unset baseline
			pt.RelativeToFaulFree = pt.MeanI / baseline
		}
		curve = append(curve, pt)
	}
	return curve
}
