// Package det provides deterministic iteration helpers. Go randomizes map
// iteration order on purpose; any map walk whose body order matters (it
// appends, accumulates floats, writes output, or returns) therefore
// injects scheduling noise into results that the rest of this repository
// works hard to keep bit-identical. The remapd-lint map-order rule flags
// such walks; the fix is to iterate over SortedKeys(m) instead.
//
// This package is the one place allowed to range over a map while
// building a slice, because the sort below canonicalizes the order before
// anything observes it.
package det

import (
	"cmp"
	"slices"
)

// SortedKeys returns the keys of m in ascending order, giving map
// iteration a deterministic, platform-independent sequence.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
