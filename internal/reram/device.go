// Package reram models ReRAM (memristive) devices and crossbar arrays at
// the level of detail the paper's evaluation needs: conductance-coded weight
// storage with quantisation, stuck-at-fault (SA0/SA1) cell states with
// realistic resistance ranges, per-cell write counting for endurance
// accounting, and the analog column-current behaviour that the BIST module
// observes.
//
// Resistance/conductance conventions follow the paper (and Grossi et al.):
// SA1 is a cell stuck at LOW resistance (1.5–3 kΩ ⇒ high conductance, reads
// as a large stored value) and SA0 is stuck at HIGH resistance
// (0.8–3 MΩ ⇒ near-zero conductance, reads as the minimum stored value).
package reram

import "math"

// CellState is the health state of one ReRAM cell.
type CellState uint8

// Cell states. Healthy cells are programmable; SA0/SA1 cells ignore writes.
const (
	Healthy CellState = iota
	SA0               // stuck at high resistance (open-like)
	SA1               // stuck at low resistance (short-like)
)

// String names the state for logs and test output.
func (s CellState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case SA0:
		return "SA0"
	case SA1:
		return "SA1"
	}
	return "invalid"
}

// CodingScheme selects how a signed weight maps onto cell conductances,
// which determines what a stuck cell reads back as.
type CodingScheme int

const (
	// OffsetCoding maps w ∈ [−clip, clip] onto a single cell's conductance
	// range with an offset subtraction — the scheme PytorX (the paper's
	// simulation layer) models. Stuck-at faults read back at the extremes:
	// SA1 ≈ +clip, SA0 ≈ −clip. This is the evaluation default because the
	// paper's accuracy numbers (and [5]'s "76% drop at 0.1% faults") are
	// produced under it.
	OffsetCoding CodingScheme = iota
	// DifferentialCoding maps w onto a (G⁺, G⁻) pair; SA0 faults zero the
	// weight or do nothing, SA1 faults peg it near ±clip. Gentler and
	// closer to ISAAC-style hardware; provided as an ablation.
	DifferentialCoding
)

// String names the scheme.
func (c CodingScheme) String() string {
	if c == DifferentialCoding {
		return "differential"
	}
	return "offset"
}

// DeviceParams collects the electrical and architectural constants of the
// ReRAM technology. Values follow the references the paper cites
// (ISAAC [13], Xu et al. [18], Grossi et al. [4]).
type DeviceParams struct {
	// ROn and ROff are the programmable low/high resistance states (Ω).
	ROn, ROff float64
	// SA0RMin/SA0RMax bound the stuck-at-0 resistance (Ω): 0.8–3 MΩ.
	SA0RMin, SA0RMax float64
	// SA1RMin/SA1RMax bound the stuck-at-1 resistance (Ω): 1.5–3 kΩ.
	SA1RMin, SA1RMax float64
	// ReadVoltage is the BIST/inference read voltage (V).
	ReadVoltage float64
	// Levels is the number of programmable conductance levels per cell.
	Levels int
	// CrossbarSize is the array dimension (cells per row/column).
	CrossbarSize int
	// ReRAMCycleNS is one ReRAM array cycle in nanoseconds (10 MHz ⇒ 100 ns).
	ReRAMCycleNS float64
	// CMOSCycleNS is one peripheral CMOS cycle in nanoseconds (1.2 GHz).
	CMOSCycleNS float64
	// Coding selects the weight↔conductance mapping (see CodingScheme).
	Coding CodingScheme
	// ProgramSigma is the lognormal programming-variation σ applied to
	// healthy cells' conductances (PytorX's write non-ideality). 0 (the
	// default) disables it. The noise is resampled at every array write but
	// is deterministic between writes (it is a property of the programmed
	// state, not of reads).
	ProgramSigma float64
}

// StuckWeightAs returns the read-back value of a stuck cell under the
// configured coding scheme, given the fault state, the sampled stuck
// conductance, the pair polarity, and the weight the cell was supposed to
// hold.
//
//lint:hotpath
func (p DeviceParams) StuckWeightAs(state CellState, gFault float64, inPositive bool, w, clip float64) float64 {
	if p.Coding == DifferentialCoding {
		return p.StuckWeightPair(state, inPositive, w, clip)
	}
	return p.StuckWeight(gFault, clip)
}

// DefaultDeviceParams returns the technology point used throughout the
// paper's experiments: 128×128 arrays at 10 MHz with 1.2 GHz peripherals.
func DefaultDeviceParams() DeviceParams {
	return DeviceParams{
		ROn:          3e3,
		ROff:         1e6,
		SA0RMin:      0.8e6,
		SA0RMax:      3e6,
		SA1RMin:      1.5e3,
		SA1RMax:      3e3,
		ReadVoltage:  0.3,
		Levels:       32,
		CrossbarSize: 128,
		ReRAMCycleNS: 100,
		CMOSCycleNS:  1.0 / 1.2,
	}
}

// GMax returns the highest programmable conductance (S).
//
//lint:hotpath
func (p DeviceParams) GMax() float64 { return 1 / p.ROn }

// GMin returns the lowest programmable conductance (S).
//
//lint:hotpath
func (p DeviceParams) GMin() float64 { return 1 / p.ROff }

// GOfWeight maps a weight w ∈ [−clip, +clip] to a programmed conductance
// using offset (unipolar) coding, quantised to p.Levels levels.
//
//lint:hotpath
func (p DeviceParams) GOfWeight(w, clip float64) float64 {
	if clip <= 0 {
		return p.GMin()
	}
	x := (w + clip) / (2 * clip) // ∈ [0,1]
	if x < 0 {
		x = 0
	} else if x > 1 {
		x = 1
	}
	if p.Levels > 1 {
		x = math.Round(x*float64(p.Levels-1)) / float64(p.Levels-1)
	}
	return p.GMin() + x*(p.GMax()-p.GMin())
}

// WeightOfG inverts GOfWeight (without quantisation), clipping the result
// to ±1.25·clip to model ADC saturation on out-of-range stuck conductances.
//
//lint:hotpath
func (p DeviceParams) WeightOfG(g, clip float64) float64 {
	x := (g - p.GMin()) / (p.GMax() - p.GMin())
	w := x*2*clip - clip
	limit := 1.25 * clip
	if w > limit {
		w = limit
	} else if w < -limit {
		w = -limit
	}
	return w
}

// QuantizeWeight returns the weight value actually stored after program-
// and-read-back through the conductance coding (quantisation included).
//
//lint:hotpath
func (p DeviceParams) QuantizeWeight(w, clip float64) float64 {
	return p.WeightOfG(p.GOfWeight(w, clip), clip)
}

// Quantizer is a precomputed program-and-read-back table for one (device,
// clip) pair. QuantizeWeight walks the full conductance coding per call —
// two divisions, a round, and an inverse map — but with Levels programmable
// states there are only Levels distinct outcomes, so the weight-deploy hot
// path looks them up instead. Quantize is bit-identical to QuantizeWeight:
// the table index int(round(x·(L−1))) is exactly the rounded x·(L−1) that
// GOfWeight computes (a small integer-valued float64 converts to int and
// back without rounding), and each table entry is built by the same
// GMin + x·(GMax−GMin) → WeightOfG expression the scalar path evaluates.
type Quantizer struct {
	p    DeviceParams
	clip float64
	lut  []float64 // nil when the device point has no quantisation grid
}

// NewQuantizer builds the lookup table for clip. Degenerate device points
// (clip ≤ 0 or Levels ≤ 1, where GOfWeight does not snap to a grid) keep a
// nil table and fall back to the scalar path.
func (p DeviceParams) NewQuantizer(clip float64) *Quantizer {
	q := &Quantizer{p: p, clip: clip}
	if clip <= 0 || p.Levels <= 1 {
		return q
	}
	q.lut = make([]float64, p.Levels)
	for i := range q.lut {
		x := float64(i) / float64(p.Levels-1)
		q.lut[i] = p.WeightOfG(p.GMin()+x*(p.GMax()-p.GMin()), clip)
	}
	return q
}

// Clip returns the coding range the table was built for.
//
//lint:hotpath
func (q *Quantizer) Clip() float64 { return q.clip }

// Quantize returns the stored weight after program-and-read-back,
// bit-identical to p.QuantizeWeight(w, clip).
//
//lint:hotpath
func (q *Quantizer) Quantize(w float64) float64 {
	if q.lut == nil {
		return q.p.QuantizeWeight(w, q.clip)
	}
	x := (w + q.clip) / (2 * q.clip)
	if x < 0 {
		x = 0
	} else if x > 1 {
		x = 1
	}
	return q.lut[int(math.Round(x*float64(q.p.Levels-1)))]
}

// StuckWeight returns the weight value read from a faulty cell under plain
// offset coding: SA1 reads near +clip (low resistance, high conductance),
// SA0 near −clip. gFault is the sampled stuck conductance. The crossbar
// weight path uses the differential-pair model (StuckWeightPair) instead;
// this decode remains for the BIST calibration path and offset-coded
// buffers.
//
//lint:hotpath
func (p DeviceParams) StuckWeight(gFault, clip float64) float64 {
	return p.WeightOfG(gFault, clip)
}

// StuckWeightPair returns the weight read back when one cell of a
// differential pair (w = (G⁺ − G⁻)·s, unipolar programming: the inactive
// cell rests at G_min) is stuck. inPositive selects which cell of the pair
// the fault hit. The asymmetry this produces is the well-known SAF
// behaviour: SA0 faults either zero the weight or do nothing (the stuck
// cell was already at G_min), while SA1 faults peg the weight near ±clip.
//
//	SA0 in G⁺: w' = w for w < 0, else ≈ 0
//	SA0 in G⁻: w' = w for w ≥ 0, else ≈ 0
//	SA1 in G⁺: w' ≈ +clip + min(w, 0)
//	SA1 in G⁻: w' ≈ −clip + max(w, 0)
//
//lint:hotpath
func (p DeviceParams) StuckWeightPair(state CellState, inPositive bool, w, clip float64) float64 {
	switch state {
	case SA0:
		if inPositive {
			if w < 0 {
				return w
			}
			return 0
		}
		if w >= 0 {
			return w
		}
		return 0
	case SA1:
		if inPositive {
			if w < 0 {
				return clip + w
			}
			return clip
		}
		if w >= 0 {
			return -clip + w
		}
		return -clip
	}
	return w
}
