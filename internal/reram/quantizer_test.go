package reram

import (
	"math"
	"testing"

	"remapd/internal/tensor"
)

// TestQuantizerBitIdentical sweeps a dense weight grid (±2·clip, so both
// in-range and saturating inputs) comparing the LUT fast path against the
// scalar program-and-read-back chain bit-for-bit, across clip ranges and
// level counts.
func TestQuantizerBitIdentical(t *testing.T) {
	p := DefaultDeviceParams()
	for _, levels := range []int{2, 8, 32} {
		p.Levels = levels
		for _, clip := range []float64{0.5, 1, 2.37} {
			q := p.NewQuantizer(clip)
			for i := -2000; i <= 2000; i++ {
				w := float64(i) / 1000 * clip
				got, want := q.Quantize(w), p.QuantizeWeight(w, clip)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("levels %d clip %g w %g: lut %x (%g) scalar %x (%g)",
						levels, clip, w, math.Float64bits(got), got, math.Float64bits(want), want)
				}
			}
		}
	}
}

// TestQuantizerDegenerateFallsBack pins the nil-LUT path: clip ≤ 0 and
// Levels ≤ 1 have no quantisation grid and must defer to the scalar chain.
func TestQuantizerDegenerateFallsBack(t *testing.T) {
	p := DefaultDeviceParams()
	q := p.NewQuantizer(0)
	if got, want := q.Quantize(0.3), p.QuantizeWeight(0.3, 0); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("clip 0: lut %g scalar %g", got, want)
	}
	p.Levels = 1
	q = p.NewQuantizer(1)
	if got, want := q.Quantize(0.3), p.QuantizeWeight(0.3, 1); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("levels 1: lut %g scalar %g", got, want)
	}
}

// TestClampRowIntoStridedMatchesBlock checks the fused strided deploy path
// against the block-copy wrapper: clamping a column of a transposed matrix
// in place (stride = width) must produce exactly the values ClampWeights
// yields on the gathered contiguous block.
func TestClampRowIntoStridedMatchesBlock(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 8
	x := NewCrossbar(1, p)
	rng := tensor.NewRNG(9)
	x.InjectFault(0, 2, SA0, rng)
	x.InjectFault(1, 5, SA1, rng)
	x.InjectFault(3, 0, SA1, rng)

	const rows, cols, clip = 4, 6, 1.5
	src := make([]float32, rows*cols)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	want := make([]float32, rows*cols)
	x.ClampWeights(want, src, rows, cols, clip)

	// Strided layout: the same block stored transposed in a cols×rows
	// matrix, so block row i is a column walked with stride rows.
	trans := make([]float32, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			trans[j*rows+i] = src[i*cols+j]
		}
	}
	got := make([]float32, rows*cols)
	q := p.NewQuantizer(clip)
	for i := 0; i < rows; i++ {
		x.ClampRowInto(q, got[i:], trans[i:], rows, rows, i, cols)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			g, w := got[j*rows+i], want[i*cols+j]
			if math.Float32bits(g) != math.Float32bits(w) {
				t.Fatalf("cell (%d,%d): strided %g block %g", i, j, g, w)
			}
		}
	}
}

func BenchmarkClampRowInto(b *testing.B) {
	p := DefaultDeviceParams()
	x := NewCrossbar(0, p)
	rng := tensor.NewRNG(4)
	x.InjectFault(7, 3, SA0, rng) // one faulty row: exercises the general loop
	q := p.NewQuantizer(1)
	src := make([]float32, p.CrossbarSize)
	dst := make([]float32, p.CrossbarSize)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ClampRowInto(q, dst, src, 1, 1, i%p.CrossbarSize, p.CrossbarSize)
	}
}

func BenchmarkQuantize(b *testing.B) {
	p := DefaultDeviceParams()
	q := p.NewQuantizer(1)
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += q.Quantize(float64(i%200)/100 - 1)
	}
	_ = s
}
