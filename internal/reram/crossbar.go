package reram

import (
	"fmt"
	"math"

	"remapd/internal/tensor"
)

// Crossbar is one physical ReRAM array: a Size×Size grid of cells, each of
// which is Healthy or stuck. Faulty cells also carry a sampled stuck
// conductance so the analog read path (BIST) sees realistic device
// variation.
type Crossbar struct {
	ID     int
	Size   int
	Params DeviceParams

	state []CellState
	// gFault holds the sampled stuck conductance for faulty cells
	// (undefined for healthy cells).
	gFault []float64
	// inPositive records which cell of the weight's differential pair the
	// fault hit (sampled at injection); it selects the SAF polarity.
	inPositive []bool
	// writes counts row-write operations over the crossbar's lifetime
	// (weight updates + BIST test writes), for endurance accounting.
	writes uint64
}

// NewCrossbar returns a fault-free crossbar.
func NewCrossbar(id int, p DeviceParams) *Crossbar {
	n := p.CrossbarSize * p.CrossbarSize
	return &Crossbar{
		ID:         id,
		Size:       p.CrossbarSize,
		Params:     p,
		state:      make([]CellState, n),
		gFault:     make([]float64, n),
		inPositive: make([]bool, n),
	}
}

// Cells returns the total number of cells.
func (x *Crossbar) Cells() int { return x.Size * x.Size }

// State returns the state of cell (r, c).
//
//lint:hotpath
func (x *Crossbar) State(r, c int) CellState { return x.state[r*x.Size+c] }

// StateAt returns the state of the cell at flat index i.
//
//lint:hotpath
func (x *Crossbar) StateAt(i int) CellState { return x.state[i] }

// FaultG returns the sampled stuck conductance of the cell at flat index i.
//
//lint:hotpath
func (x *Crossbar) FaultG(i int) float64 { return x.gFault[i] }

// InjectFault marks cell (r, c) as stuck, sampling its stuck conductance
// from the device's SA0/SA1 resistance range and the differential-pair
// polarity uniformly. Injecting over an existing fault replaces it;
// injecting Healthy heals the cell (used only by tests).
func (x *Crossbar) InjectFault(r, c int, s CellState, rng *tensor.RNG) {
	x.InjectFaultPolar(r, c, s, rng.Float64() < 0.5, rng)
}

// InjectFaultPolar is InjectFault with an explicit pair polarity
// (inPositive = the fault hits the G⁺ cell). Targeted tests use it.
func (x *Crossbar) InjectFaultPolar(r, c int, s CellState, inPositive bool, rng *tensor.RNG) {
	i := r*x.Size + c
	x.state[i] = s
	x.inPositive[i] = inPositive
	switch s {
	case SA0:
		x.gFault[i] = 1 / rng.Range(x.Params.SA0RMin, x.Params.SA0RMax)
	case SA1:
		x.gFault[i] = 1 / rng.Range(x.Params.SA1RMin, x.Params.SA1RMax)
	default:
		x.gFault[i] = 0
	}
}

// FaultInPositive reports which pair cell the fault at flat index i hit.
//
//lint:hotpath
func (x *Crossbar) FaultInPositive(i int) bool { return x.inPositive[i] }

// FaultCount returns the number of stuck cells.
func (x *Crossbar) FaultCount() int {
	n := 0
	for _, s := range x.state {
		if s != Healthy {
			n++
		}
	}
	return n
}

// CountState returns the number of cells in state s.
func (x *Crossbar) CountState(s CellState) int {
	n := 0
	for _, st := range x.state {
		if st == s {
			n++
		}
	}
	return n
}

// FaultDensity returns the fraction of stuck cells in [0, 1].
func (x *Crossbar) FaultDensity() float64 {
	return float64(x.FaultCount()) / float64(x.Cells())
}

// ColumnFaults returns the number of cells of state s in column c
// (the quantity the BIST column-current read exposes).
func (x *Crossbar) ColumnFaults(c int, s CellState) int {
	n := 0
	for r := 0; r < x.Size; r++ {
		if x.state[r*x.Size+c] == s {
			n++
		}
	}
	return n
}

// RecordWrite accounts for one full-array write (one row-by-row program
// pass, e.g. a weight update or a BIST background write).
//
//lint:hotpath
func (x *Crossbar) RecordWrite() { x.writes++ }

// Writes returns the number of full-array writes performed.
func (x *Crossbar) Writes() uint64 { return x.writes }

// ReadColumnCurrent models the analog read used by BIST state S2/S5:
// every row is driven with the read voltage and the column current is
// I = Σ_r V·G_r. The cell conductances correspond to allZero (all healthy
// cells programmed to logic "0" = GMin, SA1 test) or all-one
// (GMax, SA0 test); faulty cells contribute their sampled stuck conductance.
func (x *Crossbar) ReadColumnCurrent(c int, programmedOne bool) float64 {
	p := x.Params
	gProg := p.GMin()
	if programmedOne {
		gProg = p.GMax()
	}
	var current float64
	for r := 0; r < x.Size; r++ {
		i := r*x.Size + c
		g := gProg
		if x.state[i] != Healthy {
			g = x.gFault[i]
		}
		current += p.ReadVoltage * g
	}
	return current
}

// ClampWeights materialises the weights this crossbar would actually apply
// during an MVM for a rows×cols block stored in the array's top-left corner
// (block element (i, j) lives in cell (i, j)): healthy cells return the
// quantised programmed weight; stuck cells return the weight their stuck
// conductance decodes to. src and dst are flat row-major rows×cols blocks;
// clip is the layer's weight coding range.
func (x *Crossbar) ClampWeights(dst, src []float32, rows, cols int, clip float64) {
	if len(dst) != len(src) || len(src) != rows*cols {
		panic("reram: ClampWeights block size mismatch")
	}
	q := x.Params.NewQuantizer(clip)
	for i := 0; i < rows; i++ {
		x.ClampRowInto(q, dst[i*cols:], src[i*cols:], 1, 1, i, cols)
	}
}

// ClampRowInto clamps one crossbar row directly between caller-owned
// (possibly strided) views: dst[j·dstStride] receives the effective weight
// of src[j·srcStride] as seen through cell (row, j), for j in [0, ncols).
// Stride 1 walks a contiguous forward-weight row; stride = matrix-width
// walks a column of the transposed backward copy in place. This is the
// fused deploy path: the architecture layer hands tensor sub-slices here
// instead of gathering blocks into scratch and scattering results back.
//
//lint:hotpath
func (x *Crossbar) ClampRowInto(q *Quantizer, dst, src []float32, dstStride, srcStride, row, ncols int) {
	if row < 0 || row >= x.Size || ncols > x.Size {
		panic(fmt.Sprintf("reram: row %d / %d cols exceeds crossbar size %d", row, ncols, x.Size))
	}
	if ncols <= 0 {
		return
	}
	if (ncols-1)*dstStride >= len(dst) || (ncols-1)*srcStride >= len(src) {
		panic("reram: ClampRowInto view too short for stride")
	}
	p := x.Params
	states := x.state[row*x.Size : row*x.Size+ncols]
	if p.ProgramSigma <= 0 {
		healthy := true
		for _, s := range states {
			if s != Healthy {
				healthy = false
				break
			}
		}
		if healthy {
			for j := 0; j < ncols; j++ {
				dst[j*dstStride] = float32(q.Quantize(float64(src[j*srcStride])))
			}
			return
		}
	}
	for j, s := range states {
		w := float64(src[j*srcStride])
		if s == Healthy {
			w = q.Quantize(w)
			if p.ProgramSigma > 0 {
				w *= programNoise(x.ID, x.writes, row*x.Size+j, p.ProgramSigma)
			}
		} else {
			cell := row*x.Size + j
			w = p.StuckWeightAs(s, x.gFault[cell], x.inPositive[cell], w, q.clip)
		}
		dst[j*dstStride] = float32(w)
	}
}

// programNoise returns a deterministic lognormal factor exp(σ·z) for the
// cell's current programmed state: the same (crossbar, write-generation,
// cell) triple always yields the same factor, so the noise is stable
// between writes and resampled when the array is reprogrammed.
//
//lint:hotpath
func programNoise(id int, writes uint64, cell int, sigma float64) float64 {
	// splitmix64 over the triple.
	h := uint64(id)*0x9e3779b97f4a7c15 ^ writes*0xbf58476d1ce4e5b9 ^ uint64(cell)*0x94d049bb133111eb
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	// Two 32-bit uniforms → one Box–Muller normal.
	u1 := float64(h>>40) / float64(1<<24)
	u2 := float64(h&0xffffff) / float64(1<<24)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(sigma * z)
}

// HealAll clears every fault (used by tests and what-if experiments).
func (x *Crossbar) HealAll() {
	for i := range x.state {
		x.state[i] = Healthy
		x.gFault[i] = 0
	}
}

// FaultCells returns the flat indices of all stuck cells in ascending
// order — the sparse walk a checkpoint serializes.
func (x *Crossbar) FaultCells() []int {
	var out []int
	for i, s := range x.state {
		if s != Healthy {
			out = append(out, i)
		}
	}
	return out
}

// RestoreFault reinstates a stuck cell with its previously sampled stuck
// conductance and pair polarity. Unlike InjectFault it draws nothing from
// an RNG: checkpoint resume must reproduce the exact analog state the
// snapshot captured.
func (x *Crossbar) RestoreFault(i int, s CellState, g float64, inPositive bool) {
	x.state[i] = s
	x.gFault[i] = g
	x.inPositive[i] = inPositive
}

// RestoreWrites overwrites the lifetime write counter. Checkpoint resume
// uses it so endurance accounting — and the write-generation-keyed
// programming noise — continue exactly where the snapshot left off.
func (x *Crossbar) RestoreWrites(n uint64) { x.writes = n }
