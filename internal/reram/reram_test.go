package reram

import (
	"math"
	"testing"
	"testing/quick"

	"remapd/internal/tensor"
)

func TestDefaultDeviceParamsSane(t *testing.T) {
	p := DefaultDeviceParams()
	if p.GMax() <= p.GMin() {
		t.Fatal("GMax must exceed GMin")
	}
	if p.CrossbarSize != 128 {
		t.Fatalf("crossbar size %d, want 128 (paper)", p.CrossbarSize)
	}
	if p.ReRAMCycleNS != 100 {
		t.Fatalf("ReRAM cycle %v ns, want 100 (10 MHz)", p.ReRAMCycleNS)
	}
}

func TestWeightConductanceRoundTrip(t *testing.T) {
	p := DefaultDeviceParams()
	p.Levels = 0 // disable quantisation for the round-trip check
	for _, w := range []float64{-1, -0.5, 0, 0.25, 1} {
		g := p.GOfWeight(w, 1)
		back := p.WeightOfG(g, 1)
		if math.Abs(back-w) > 1e-9 {
			t.Fatalf("round trip %v -> %v", w, back)
		}
	}
}

// Property: quantisation error is bounded by half a level step.
func TestQuantizationErrorBoundProperty(t *testing.T) {
	p := DefaultDeviceParams()
	step := 2.0 / float64(p.Levels-1)
	f := func(raw int16) bool {
		w := float64(raw) / 32768 // ∈ (−1, 1)
		q := p.QuantizeWeight(w, 1)
		return math.Abs(q-w) <= step/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeClipsOutOfRange(t *testing.T) {
	p := DefaultDeviceParams()
	if q := p.QuantizeWeight(5, 1); math.Abs(q-1) > 1e-9 {
		t.Fatalf("over-range weight quantised to %v, want 1", q)
	}
	if q := p.QuantizeWeight(-5, 1); math.Abs(q+1) > 1e-9 {
		t.Fatalf("under-range weight quantised to %v, want -1", q)
	}
}

func TestStuckWeightPolarity(t *testing.T) {
	p := DefaultDeviceParams()
	rng := tensor.NewRNG(1)
	for i := 0; i < 100; i++ {
		gSA1 := 1 / rng.Range(p.SA1RMin, p.SA1RMax)
		gSA0 := 1 / rng.Range(p.SA0RMin, p.SA0RMax)
		w1 := p.StuckWeight(gSA1, 1)
		w0 := p.StuckWeight(gSA0, 1)
		if w1 < 0.99 {
			t.Fatalf("SA1 must read near +clip, got %v", w1)
		}
		if w0 > -0.9 {
			t.Fatalf("SA0 must read near −clip, got %v", w0)
		}
	}
}

func TestStuckWeightPairSemantics(t *testing.T) {
	p := DefaultDeviceParams()
	cases := []struct {
		state      CellState
		inPositive bool
		w, want    float64
	}{
		{SA0, true, 0.4, 0},     // active G⁺ lost → zero
		{SA0, true, -0.4, -0.4}, // G⁺ already at Gmin → no effect
		{SA0, false, 0.4, 0.4},  // G⁻ already at Gmin → no effect
		{SA0, false, -0.4, 0},   // active G⁻ lost → zero
		{SA1, true, 0.4, 1},     // G⁺ shorted → +clip
		{SA1, true, -0.4, 0.6},  // G⁺ shorted against stored G⁻
		{SA1, false, 0.4, -0.6}, // G⁻ shorted against stored G⁺
		{SA1, false, -0.4, -1},  // G⁻ shorted → −clip
	}
	for _, c := range cases {
		got := p.StuckWeightPair(c.state, c.inPositive, c.w, 1)
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("StuckWeightPair(%v, pos=%v, w=%v) = %v, want %v",
				c.state, c.inPositive, c.w, got, c.want)
		}
	}
	// Healthy passes through.
	if p.StuckWeightPair(Healthy, true, 0.3, 1) != 0.3 {
		t.Fatal("healthy state must pass the weight through")
	}
}

func TestCrossbarFaultBookkeeping(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(2)
	x := NewCrossbar(0, p)
	if x.FaultCount() != 0 || x.FaultDensity() != 0 {
		t.Fatal("new crossbar must be fault-free")
	}
	x.InjectFault(0, 0, SA0, rng)
	x.InjectFault(3, 5, SA1, rng)
	x.InjectFault(3, 5, SA1, rng) // replace, not double count
	if x.FaultCount() != 2 {
		t.Fatalf("FaultCount = %d, want 2", x.FaultCount())
	}
	if x.CountState(SA0) != 1 || x.CountState(SA1) != 1 {
		t.Fatal("per-state counts wrong")
	}
	if d := x.FaultDensity(); math.Abs(d-2.0/256) > 1e-12 {
		t.Fatalf("density %v", d)
	}
	if x.State(3, 5) != SA1 {
		t.Fatal("State lookup wrong")
	}
	if x.ColumnFaults(5, SA1) != 1 || x.ColumnFaults(5, SA0) != 0 {
		t.Fatal("ColumnFaults wrong")
	}
	x.HealAll()
	if x.FaultCount() != 0 {
		t.Fatal("HealAll must clear faults")
	}
}

func TestCrossbarWriteCounter(t *testing.T) {
	p := DefaultDeviceParams()
	x := NewCrossbar(1, p)
	for i := 0; i < 5; i++ {
		x.RecordWrite()
	}
	if x.Writes() != 5 {
		t.Fatalf("Writes = %d", x.Writes())
	}
}

func TestReadColumnCurrentSA1Monotone(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(3)
	// SA1 test: background programmed to "0" (GMin); each SA1 cell adds a
	// large conductance, so current must increase monotonically in the
	// number of SA1 faults despite resistance variation.
	prev := -1.0
	for k := 0; k <= 8; k++ {
		x := NewCrossbar(0, p)
		for r := 0; r < k; r++ {
			x.InjectFault(r, 0, SA1, rng)
		}
		cur := x.ReadColumnCurrent(0, false)
		if cur <= prev {
			t.Fatalf("SA1 current not increasing at k=%d: %v <= %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestReadColumnCurrentSA0Monotone(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(4)
	// SA0 test: background programmed to "1" (GMax); each SA0 fault removes
	// a large conductance, so current must decrease.
	prev := math.Inf(1)
	for k := 0; k <= 8; k++ {
		x := NewCrossbar(0, p)
		for r := 0; r < k; r++ {
			x.InjectFault(r, 0, SA0, rng)
		}
		cur := x.ReadColumnCurrent(0, true)
		if cur >= prev {
			t.Fatalf("SA0 current not decreasing at k=%d: %v >= %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestClampWeightsHealthyQuantises(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 4
	x := NewCrossbar(0, p)
	src := []float32{0.5, -0.25, 0, 1}
	dst := make([]float32, 4)
	x.ClampWeights(dst, src, 1, 4, 1)
	for i := range src {
		if math.Abs(float64(dst[i]-src[i])) > 2.0/float64(p.Levels-1) {
			t.Fatalf("healthy clamp deviates too much: %v -> %v", src[i], dst[i])
		}
	}
}

func TestClampWeightsStuckCellsOffset(t *testing.T) {
	p := DefaultDeviceParams() // offset coding is the default
	p.CrossbarSize = 4
	rng := tensor.NewRNG(5)
	x := NewCrossbar(0, p)
	x.InjectFault(0, 0, SA1, rng)
	x.InjectFault(0, 1, SA0, rng)
	src := []float32{0.1, 0.1, 0.1}
	dst := make([]float32, 3)
	x.ClampWeights(dst, src, 1, 3, 1)
	if dst[0] < 0.9 {
		t.Fatalf("offset SA1 cell must clamp high, got %v", dst[0])
	}
	if dst[1] > -0.9 {
		t.Fatalf("offset SA0 cell must clamp low, got %v", dst[1])
	}
	if math.Abs(float64(dst[2])-0.1) > 0.05 {
		t.Fatalf("healthy cell perturbed: %v", dst[2])
	}
}

func TestClampWeightsStuckCellsDifferential(t *testing.T) {
	p := DefaultDeviceParams()
	p.Coding = DifferentialCoding
	p.CrossbarSize = 4
	rng := tensor.NewRNG(5)
	x := NewCrossbar(0, p)
	x.InjectFaultPolar(0, 0, SA1, true, rng)  // SA1 in G⁺ of a positive weight
	x.InjectFaultPolar(0, 1, SA0, true, rng)  // SA0 in G⁺ of a positive weight
	x.InjectFaultPolar(0, 2, SA1, false, rng) // SA1 in G⁻
	src := []float32{0.1, 0.1, 0.1, 0.1}
	dst := make([]float32, 4)
	x.ClampWeights(dst, src, 1, 4, 1)
	if dst[0] < 0.9 {
		t.Fatalf("SA1/G⁺ cell must clamp high, got %v", dst[0])
	}
	if dst[1] != 0 {
		t.Fatalf("SA0/G⁺ on a positive weight must zero it, got %v", dst[1])
	}
	if dst[2] > -0.85 {
		t.Fatalf("SA1/G⁻ cell must clamp low, got %v", dst[2])
	}
	if math.Abs(float64(dst[3])-0.1) > 0.05 {
		t.Fatalf("healthy cell perturbed: %v", dst[3])
	}
}

func TestClampWeightsCapacityPanic(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 2
	x := NewCrossbar(0, p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized block")
		}
	}()
	x.ClampWeights(make([]float32, 5), make([]float32, 5), 1, 5, 1)
}

func TestProgramNoiseDeterministicPerWrite(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 4
	p.ProgramSigma = 0.1
	x := NewCrossbar(0, p)
	src := []float32{0.5, -0.3, 0.2, 0.1}
	a, b := make([]float32, 4), make([]float32, 4)
	x.ClampWeights(a, src, 1, 4, 1)
	x.ClampWeights(b, src, 1, 4, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("programming noise must be stable between writes")
		}
	}
	// After a rewrite the noise is resampled.
	x.RecordWrite()
	x.ClampWeights(b, src, 1, 4, 1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("noise must resample after an array write")
	}
}

func TestProgramNoiseMagnitude(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 64
	p.ProgramSigma = 0.05
	p.Levels = 0 // isolate the noise from quantisation
	x := NewCrossbar(3, p)
	n := 64 * 64
	src := make([]float32, n)
	for i := range src {
		src[i] = 0.5
	}
	dst := make([]float32, n)
	x.ClampWeights(dst, src, 64, 64, 1)
	var sum, sq float64
	for _, v := range dst {
		r := float64(v) / 0.5
		sum += r
		sq += r * r
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sq/float64(n) - mean*mean)
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("noise mean ratio %v, want ≈1", mean)
	}
	if sd < 0.03 || sd > 0.08 {
		t.Fatalf("noise sd %v, want ≈0.05", sd)
	}
}

func TestZeroSigmaIsNoiseFree(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 4
	p.Levels = 0
	x := NewCrossbar(0, p)
	src := []float32{0.25}
	dst := make([]float32, 1)
	x.ClampWeights(dst, src, 1, 1, 1)
	if math.Abs(float64(dst[0]-0.25)) > 1e-7 {
		t.Fatalf("σ=0 must be exact: %v", dst[0])
	}
}

// Property: fault density equals injected count / cells for random
// injection patterns without duplicates.
func TestFaultDensityMatchesInjectionProperty(t *testing.T) {
	p := DefaultDeviceParams()
	p.CrossbarSize = 16
	rng := tensor.NewRNG(6)
	f := func(seed uint32, kRaw uint8) bool {
		k := int(kRaw) % 64
		x := NewCrossbar(0, p)
		local := tensor.NewRNG(uint64(seed))
		perm := local.Perm(x.Cells())
		for i := 0; i < k; i++ {
			r, c := perm[i]/16, perm[i]%16
			s := SA0
			if local.Float64() < 0.1 {
				s = SA1
			}
			x.InjectFault(r, c, s, rng)
		}
		return x.FaultCount() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
