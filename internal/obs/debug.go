package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartDebugServer is the harness domain's live-inspection endpoint: it
// serves net/http/pprof (CPU/heap/goroutine profiles) and expvar
// (cmdline + memstats) on addr and returns the bound address. It is
// opt-in via the cmd tools' -debug-addr flag and runs for the process
// lifetime; nothing it serves touches simulation state, so leaving it on
// cannot perturb results. StartStatusServer adds /status to the same
// surface.
func StartDebugServer(addr string) (string, error) {
	return serveDebugMux(addr, nil)
}

// serveDebugMux binds addr, builds the standard debug mux (pprof +
// expvar), lets extend add endpoints, and serves in the background.
func serveDebugMux(addr string, extend func(*http.ServeMux)) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if extend != nil {
		extend(mux)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		// Serve returns when the listener dies at process exit; the debug
		// server is best-effort and must never take the run down with it.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
