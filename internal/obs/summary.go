package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"remapd/internal/det"
)

// This file is the read side of the simulation domain: it loads a metrics
// directory back into typed data and aggregates it into the per-policy
// views cmd/remapd-metrics prints. The aggregation consumes recorded
// events only — reproducing figure-level numbers (e.g. Fig. 6 swap
// counts) from a metrics dir is the audit path that proves the trace is
// complete.

// CellMetrics is one cell's persisted telemetry, loaded back.
type CellMetrics struct {
	// Base is the files' shared name stem inside the metrics dir.
	Base string
	// Cell is the cell key ("model/policy/seedN[/extra]").
	Cell string
	// Model, Policy, Seed, Extra are the parsed key coordinates.
	Model  string
	Policy string
	Seed   uint64
	Extra  string

	Snapshot *MetricsSnapshot
	Events   []Event
}

// SwapTotal sums the per-epoch swap counts from the trace's epoch
// reports — the number the trainer's Result.Swaps accumulates.
func (c *CellMetrics) SwapTotal() int {
	n := 0
	for _, ev := range c.Events {
		if rep, ok := ev.(*ReportEvent); ok {
			n += rep.Swaps
		}
	}
	return n
}

// parseCellKey splits "model/policy/seedN[/extra]" into coordinates.
func parseCellKey(key string) (model, policy string, seed uint64, extra string) {
	parts := strings.Split(key, "/")
	if len(parts) < 3 {
		return key, "", 0, ""
	}
	model, policy = parts[0], parts[1]
	seed, _ = strconv.ParseUint(strings.TrimPrefix(parts[2], "seed"), 10, 64)
	if len(parts) > 3 {
		extra = strings.Join(parts[3:], "/")
	}
	return model, policy, seed, extra
}

// ReadDir loads every cell's telemetry from a metrics directory, sorted
// by file base so the result order is filesystem-independent. A
// metrics.json without its events.jsonl (or vice versa) is an error —
// half-written telemetry should be loud.
func ReadDir(dir string) ([]*CellMetrics, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("obs: read metrics dir: %w", err)
	}
	var bases []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), metricsSuffix) {
			bases = append(bases, strings.TrimSuffix(e.Name(), metricsSuffix))
		}
	}
	sort.Strings(bases)
	cells := make([]*CellMetrics, 0, len(bases))
	for _, base := range bases {
		cm, err := readCell(dir, base)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cm)
	}
	return cells, nil
}

// readCell loads one cell's metrics.json + events.jsonl pair.
func readCell(dir, base string) (*CellMetrics, error) {
	data, err := os.ReadFile(filepath.Join(dir, base+metricsSuffix))
	if err != nil {
		return nil, fmt.Errorf("obs: read %s: %w", base+metricsSuffix, err)
	}
	snap, err := decodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("obs: parse %s: %w", base+metricsSuffix, err)
	}
	f, err := os.Open(filepath.Join(dir, base+eventsSuffix))
	if err != nil {
		return nil, fmt.Errorf("obs: cell %s has metrics but no events: %w", base, err)
	}
	defer func() { _ = f.Close() }() // read-only handle
	events, err := DecodeEvents(f)
	if err != nil {
		return nil, fmt.Errorf("obs: parse %s: %w", base+eventsSuffix, err)
	}
	cell := snap.Cell
	if len(events) > 0 {
		if hdr, ok := events[0].(*CellStartEvent); ok {
			cell = hdr.Cell
			events = events[1:]
		}
	}
	cm := &CellMetrics{Base: base, Cell: cell, Snapshot: snap, Events: events}
	cm.Model, cm.Policy, cm.Seed, cm.Extra = parseCellKey(cell)
	return cm, nil
}

// PolicySummary aggregates every loaded cell of one policy.
type PolicySummary struct {
	Policy    string
	Cells     int
	Epochs    int // epoch-report events summed over cells
	Senders   int
	Swaps     int
	Unmatched int
	Protected int // final protected count summed over cells
	// SwapsPerEpoch is Swaps/Epochs (0 when no reports were recorded).
	SwapsPerEpoch float64
	// MeanFinalAcc averages the cells' final test accuracy.
	MeanFinalAcc float64
	// Hops aggregates the cells' remap hop histograms.
	Hops *Histogram
}

// DriftPoint is the per-epoch BIST fidelity aggregate: how far density
// estimates sat from ground truth across all crossbars measured at that
// epoch.
type DriftPoint struct {
	Epoch        int
	Samples      int
	MeanEstimate float64
	MeanTrue     float64
	MeanAbsErr   float64
}

// Summary is the aggregated view of a metrics directory.
type Summary struct {
	Cells    []*CellMetrics
	Policies []*PolicySummary
	Drift    []DriftPoint
}

// Summarize aggregates loaded cells into per-policy tables and the
// density-drift curve. Iteration is deterministic: cells arrive sorted
// from ReadDir and grouped results are emitted in sorted key order.
func Summarize(cells []*CellMetrics) *Summary {
	sum := &Summary{Cells: cells}
	byPolicy := map[string]*PolicySummary{}
	accSamples := map[string]int{}
	type driftAcc struct {
		samples         int
		sumEst, sumTrue float64
		sumAbsErr       float64
	}
	drift := map[int]*driftAcc{}

	for _, cm := range cells {
		ps := byPolicy[cm.Policy]
		if ps == nil {
			ps = &PolicySummary{Policy: cm.Policy, Hops: NewHistogram(HopBuckets)}
			byPolicy[cm.Policy] = ps
		}
		ps.Cells++
		lastProtected := 0
		for _, ev := range cm.Events {
			switch ev := ev.(type) {
			case *ReportEvent:
				ps.Epochs++
				ps.Senders += ev.Senders
				ps.Swaps += ev.Swaps
				ps.Unmatched += ev.Unmatched
				lastProtected = ev.Protected
			case *SwapEvent:
				ps.Hops.Observe(float64(ev.Hops))
			case *DensityEvent:
				d := drift[ev.Epoch]
				if d == nil {
					d = &driftAcc{}
					drift[ev.Epoch] = d
				}
				d.samples++
				d.sumEst += ev.Estimate
				d.sumTrue += ev.True
				err := ev.Estimate - ev.True
				if err < 0 {
					err = -err
				}
				d.sumAbsErr += err
			}
		}
		ps.Protected += lastProtected
		if acc, ok := cm.Snapshot.Gauges["train.test_acc"]; ok {
			ps.MeanFinalAcc += acc
			accSamples[cm.Policy]++
		}
	}

	for _, name := range det.SortedKeys(byPolicy) {
		ps := byPolicy[name]
		if ps.Epochs > 0 {
			ps.SwapsPerEpoch = float64(ps.Swaps) / float64(ps.Epochs)
		}
		if n := accSamples[name]; n > 0 {
			ps.MeanFinalAcc /= float64(n)
		}
		sum.Policies = append(sum.Policies, ps)
	}
	for _, epoch := range det.SortedKeys(drift) {
		d := drift[epoch]
		sum.Drift = append(sum.Drift, DriftPoint{
			Epoch:        epoch,
			Samples:      d.samples,
			MeanEstimate: d.sumEst / float64(d.samples),
			MeanTrue:     d.sumTrue / float64(d.samples),
			MeanAbsErr:   d.sumAbsErr / float64(d.samples),
		})
	}
	return sum
}

// decodeSnapshot parses a metrics.json payload strictly: unknown fields
// are schema drift, not noise to skip.
func decodeSnapshot(data []byte) (*MetricsSnapshot, error) {
	var s MetricsSnapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]*Histogram{}
	}
	return &s, nil
}
