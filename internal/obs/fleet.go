package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"remapd/internal/det"
)

// This file is the HARNESS domain: the structured fleet event trace.
// The dist fleet narrates its membership and scheduling decisions as a
// stream of typed events — one JSON object per line — instead of (not
// in place of: the free-form Logf lines remain) human-oriented log
// text. The trace is always recorded in memory, whether or not the
// embedder supplied a Logf or a file sink, so a dropped worker always
// leaves a record. The schema is strict: decoding rejects unknown event
// kinds, the same contract the per-cell event stream enforces, and the
// wire-stability lint golden pins the field set.

// Fleet event kinds. A closed set: DecodeFleetEvents rejects anything
// else, so adding a kind means bumping SchemaVersion.
const (
	// Coordinator-side membership and scheduling.
	FleetJoin    = "join"      // worker admitted to the fleet
	FleetLeave   = "leave"     // worker drained gracefully and left
	FleetDrop    = "drop"      // worker removed for cause (error, liveness)
	FleetRequeue = "requeue"   // in-flight cell moved to another attempt
	FleetStall   = "stall"     // no workers connected; grid is waiting
	FleetDone    = "cell-done" // cell completed on a worker
	// Worker-side connection lifecycle.
	FleetConnect    = "connect"    // worker established a coordinator link
	FleetDisconnect = "disconnect" // worker lost the link (will redial)
	FleetDrain      = "drain"      // worker is draining (signal received)
	FleetSever      = "sever"      // chaos injector cut the link on purpose
)

// fleetKinds is the closed set DecodeFleetEvents admits.
var fleetKinds = map[string]bool{
	FleetJoin: true, FleetLeave: true, FleetDrop: true,
	FleetRequeue: true, FleetStall: true, FleetDone: true,
	FleetConnect: true, FleetDisconnect: true, FleetDrain: true,
	FleetSever: true,
}

// FleetEvent is one line of the trace. Seq and ElapsedSeconds are
// stamped by the trace at emission; everything else is filled by the
// emitter as relevant to the kind. Zero-valued fields are omitted, so a
// line carries only what its kind means.
type FleetEvent struct {
	Seq            int     `json:"seq"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Kind           string  `json:"kind"`
	Worker         string  `json:"worker,omitempty"`
	Addr           string  `json:"addr,omitempty"`
	Proto          int     `json:"proto,omitempty"`
	Slots          int     `json:"slots,omitempty"`
	Workers        int     `json:"workers,omitempty"` // fleet size after the event
	Cell           string  `json:"cell,omitempty"`
	Attempt        int     `json:"attempt,omitempty"`
	Cause          string  `json:"cause,omitempty"`
	Seconds        float64 `json:"seconds,omitempty"`
}

// fleetTraceRing bounds the in-memory record so a long-lived fleet
// cannot grow without limit; the file sink, when present, keeps
// everything.
const fleetTraceRing = 4096

// FleetTrace records fleet events: always into a bounded in-memory
// ring, and additionally line-by-line into w when non-nil (flushed per
// event, so a crashed coordinator still leaves a readable trace). All
// methods are safe on a nil trace and safe for concurrent use.
type FleetTrace struct {
	mu     sync.Mutex
	start  time.Time
	seq    int
	events []FleetEvent
	w      *bufio.Writer
	closer io.Closer
	err    error
}

// NewFleetTrace returns a memory-only trace.
func NewFleetTrace() *FleetTrace {
	return &FleetTrace{
		//lint:allow no-wall-clock harness-domain trace timestamps measure the machine, never the simulation
		start: time.Now(),
	}
}

// NewFleetTraceFile returns a trace that also appends JSONL to path.
func NewFleetTraceFile(path string) (*FleetTrace, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open fleet trace: %w", err)
	}
	t := NewFleetTrace()
	t.w = bufio.NewWriter(f)
	t.closer = f
	return t, nil
}

// Emit records one event, stamping Seq and ElapsedSeconds. Nil-safe.
func (t *FleetTrace) Emit(ev FleetEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	//lint:allow no-wall-clock harness-domain trace timestamps measure the machine, never the simulation
	ev.ElapsedSeconds = time.Since(t.start).Seconds()
	if len(t.events) == fleetTraceRing {
		t.events = append(t.events[:0], t.events[1:]...)
	}
	t.events = append(t.events, ev)
	if t.w != nil && t.err == nil {
		data, err := json.Marshal(ev)
		if err == nil {
			_, err = t.w.Write(append(data, '\n'))
		}
		if err == nil {
			err = t.w.Flush()
		}
		t.err = err
	}
	t.mu.Unlock()
}

// Events snapshots the in-memory record (oldest first, up to the ring
// bound). Nil-safe.
func (t *FleetTrace) Events() []FleetEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]FleetEvent(nil), t.events...)
	t.mu.Unlock()
	return out
}

// Close flushes and closes the file sink, reporting the first write
// error if any line was lost. Nil-safe; memory-only traces return nil.
func (t *FleetTrace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w != nil {
		if err := t.w.Flush(); t.err == nil {
			t.err = err
		}
		t.w = nil
	}
	if t.closer != nil {
		if err := t.closer.Close(); t.err == nil {
			t.err = err
		}
		t.closer = nil
	}
	if t.err != nil {
		return fmt.Errorf("obs: fleet trace: %w", t.err)
	}
	return nil
}

// DecodeFleetEvents parses a JSONL fleet trace. Strict, like
// DecodeEvents: an unknown kind or malformed line is an error, not a
// skip — schema drift must be loud.
func DecodeFleetEvents(r io.Reader) ([]FleetEvent, error) {
	var out []FleetEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev FleetEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("obs: fleet trace line %d: %w", line, err)
		}
		if !fleetKinds[ev.Kind] {
			return nil, fmt.Errorf("obs: fleet trace line %d: unknown event kind %q", line, ev.Kind)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: fleet trace: %w", err)
	}
	return out, nil
}

// FleetWorkerSummary is one worker's row in a trace summary.
type FleetWorkerSummary struct {
	Worker      string  `json:"worker"`
	Done        int     `json:"done"`
	Requeues    int     `json:"requeues"`
	BusySeconds float64 `json:"busy_seconds"`
}

// FleetSummary is what remapd-metrics -fleet prints: how the run went,
// by worker and by failure cause.
type FleetSummary struct {
	Events        int                  `json:"events"`
	Joins         int                  `json:"joins"`
	Drops         int                  `json:"drops"`
	Leaves        int                  `json:"leaves"`
	Stalls        int                  `json:"stalls"`
	Requeues      int                  `json:"requeues"`
	CellsDone     int                  `json:"cells_done"`
	RequeueCauses map[string]int       `json:"requeue_causes,omitempty"`
	Workers       []FleetWorkerSummary `json:"workers,omitempty"`
	SlowestCells  []FleetEvent         `json:"slowest_cells,omitempty"`
}

// SummarizeFleet rolls a trace up: membership churn, requeue causes,
// per-worker utilization, and the slowest completed cells.
func SummarizeFleet(events []FleetEvent) FleetSummary {
	sum := FleetSummary{Events: len(events), RequeueCauses: map[string]int{}}
	workers := map[string]*FleetWorkerSummary{}
	worker := func(name string) *FleetWorkerSummary {
		if name == "" {
			name = "(unknown)"
		}
		w := workers[name]
		if w == nil {
			w = &FleetWorkerSummary{Worker: name}
			workers[name] = w
		}
		return w
	}
	var done []FleetEvent
	for _, ev := range events {
		switch ev.Kind {
		case FleetJoin:
			sum.Joins++
		case FleetDrop:
			sum.Drops++
		case FleetLeave:
			sum.Leaves++
		case FleetStall:
			sum.Stalls++
		case FleetRequeue:
			sum.Requeues++
			cause := ev.Cause
			if cause == "" {
				cause = "(unattributed)"
			}
			sum.RequeueCauses[cause]++
			worker(ev.Worker).Requeues++
		case FleetDone:
			sum.CellsDone++
			w := worker(ev.Worker)
			w.Done++
			w.BusySeconds += ev.Seconds
			done = append(done, ev)
		}
	}
	if len(sum.RequeueCauses) == 0 {
		sum.RequeueCauses = nil
	}
	for _, name := range det.SortedKeys(workers) {
		sum.Workers = append(sum.Workers, *workers[name])
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].Seconds != done[j].Seconds { //lint:allow float-eq tie-break ordering only; equal values fall through to the cell comparison
			return done[i].Seconds > done[j].Seconds
		}
		return done[i].Cell < done[j].Cell
	})
	if len(done) > slowestSpans {
		done = done[:slowestSpans]
	}
	sum.SlowestCells = done
	return sum
}
