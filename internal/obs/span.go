package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// This file is the HARNESS domain: cell lifecycle spans. A span covers
// one cell's trip through the experiment runner — submit → schedule →
// dispatch → run → result (or requeue and dispatch again) — and
// attributes its wall time to queueing, wire overhead, and execution,
// per attempt. The run segment is reported by the worker that executed
// the cell (over the dist protocol's telemetry frame for remote cells;
// measured directly for in-process ones); everything else is measured
// coordinator-side. Like the rest of the harness domain, spans describe
// the machine, never the simulation: recording them cannot change cell
// results, which the span byte-identity tests pin.

// SpanAttempt is one dispatch of a cell onto a worker. DispatchSeconds
// is the offset from the cell's submission; WireSeconds is the
// dispatch→outcome wall time not accounted to execution (protocol
// framing, network transit, scheduling slack). A requeued attempt is
// Failed; RunSeconds is zero when the worker died before its telemetry
// frame could arrive.
type SpanAttempt struct {
	Attempt         int     `json:"attempt"`
	Worker          string  `json:"worker,omitempty"`
	DispatchSeconds float64 `json:"dispatch_seconds"`
	RunSeconds      float64 `json:"run_seconds"`
	WireSeconds     float64 `json:"wire_seconds"`
	Failed          bool    `json:"failed,omitempty"`
}

// CellSpanData is one finished cell span: where the cell's wall time
// went, across every attempt it took.
type CellSpanData struct {
	Cell         string        `json:"cell"`
	Outcome      string        `json:"outcome"` // ok | failed | cancelled
	QueueSeconds float64       `json:"queue_seconds"`
	TotalSeconds float64       `json:"total_seconds"`
	Attempts     []SpanAttempt `json:"attempts"`
}

// CellSpan is the mutable builder executors mark segments on. Every
// method is safe on a nil receiver, so the runner hands cells a nil span
// when recording is off and no call site needs a guard. The runner opens
// the span at submission; Schedule/Dispatch/RunSegment/EndAttempt/Finish
// mark the lifecycle edges.
type CellSpan struct {
	rec *SpanRecorder

	mu        sync.Mutex
	data      CellSpanData
	submit    time.Time
	scheduled bool
	dispatch  time.Time
	open      bool // an attempt is open (Dispatch seen, EndAttempt not yet)
	run       float64
	runFailed bool
	finished  bool
}

// Schedule marks the runner dequeueing the cell onto a worker slot; the
// submit→schedule gap is the cell's queue time. First call wins.
func (s *CellSpan) Schedule() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.scheduled {
		s.scheduled = true
		//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
		s.data.QueueSeconds = time.Since(s.submit).Seconds()
	}
	s.mu.Unlock()
}

// Dispatch marks the cell being handed to a worker, opening a new
// attempt. Executors call it once per attempt, before sending the cell.
func (s *CellSpan) Dispatch(worker string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.scheduled {
		s.scheduled = true
		//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
		s.data.QueueSeconds = time.Since(s.submit).Seconds()
	}
	//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
	s.dispatch = time.Now()
	s.open = true
	s.run = 0
	s.runFailed = false
	s.data.Attempts = append(s.data.Attempts, SpanAttempt{
		Attempt:         len(s.data.Attempts) + 1,
		Worker:          worker,
		DispatchSeconds: s.dispatch.Sub(s.submit).Seconds(),
	})
	s.mu.Unlock()
}

// RunSegment records the worker-reported execution wall time for the
// open attempt (the dist telemetry frame, or the in-process executor's
// own measurement). failed mirrors the worker's view of the cell.
func (s *CellSpan) RunSegment(seconds float64, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.open {
		s.run = seconds
		s.runFailed = failed
	}
	s.mu.Unlock()
}

// EndAttempt closes the open attempt: wire time is the dispatch→now wall
// time minus the reported run segment. failed means the attempt did not
// produce the cell's result (requeue or final failure).
func (s *CellSpan) EndAttempt(failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.open {
		s.open = false
		a := &s.data.Attempts[len(s.data.Attempts)-1]
		a.RunSeconds = s.run
		//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
		wire := time.Since(s.dispatch).Seconds() - s.run
		if wire < 0 {
			wire = 0
		}
		a.WireSeconds = wire
		a.Failed = failed || s.runFailed
	}
	s.mu.Unlock()
}

// Finish seals the span with its outcome ("ok", "failed", "cancelled")
// and hands it to the recorder. Idempotent; later calls are ignored.
func (s *CellSpan) Finish(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	if s.open {
		// The executor abandoned the attempt (cancellation): close it as
		// failed so the span still accounts the time.
		s.open = false
		a := &s.data.Attempts[len(s.data.Attempts)-1]
		a.RunSeconds = s.run
		//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
		if wire := time.Since(s.dispatch).Seconds() - s.run; wire > 0 {
			a.WireSeconds = wire
		}
		a.Failed = true
	}
	s.data.Outcome = outcome
	//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
	s.data.TotalSeconds = time.Since(s.submit).Seconds()
	data := s.data
	rec := s.rec
	s.mu.Unlock()
	if rec != nil {
		rec.record(data)
	}
}

// SpanRecorder collects finished cell spans. Shared by concurrent runner
// workers; completion order is scheduling-dependent, which is fine in
// the harness domain — readers sort.
type SpanRecorder struct {
	mu    sync.Mutex
	spans []CellSpanData
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder { return &SpanRecorder{} }

// Begin opens a span for the named cell, stamped at submission. A nil
// recorder returns a nil span, on which every method is a no-op.
func (r *SpanRecorder) Begin(cell string) *CellSpan {
	if r == nil {
		return nil
	}
	return &CellSpan{
		rec: r,
		//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
		submit: time.Now(),
		data:   CellSpanData{Cell: cell},
	}
}

func (r *SpanRecorder) record(d CellSpanData) {
	r.mu.Lock()
	r.spans = append(r.spans, d)
	r.mu.Unlock()
}

// Spans snapshots the finished spans, sorted by cell key so output is
// stable across scheduling orders.
func (r *SpanRecorder) Spans() []CellSpanData {
	r.mu.Lock()
	out := append([]CellSpanData(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// SpanAggregate is the roll-up the /status endpoint and remapd-metrics
// serve: where the grid's wall time went, and which cells took longest.
type SpanAggregate struct {
	Cells            int            `json:"cells"`
	Attempts         int            `json:"attempts"`
	Requeues         int            `json:"requeues"`
	QueueSeconds     float64        `json:"queue_seconds"`
	WireSeconds      float64        `json:"wire_seconds"`
	RunSeconds       float64        `json:"run_seconds"`
	TotalSeconds     float64        `json:"total_seconds"`
	MeanQueueSeconds float64        `json:"mean_queue_seconds"`
	MeanRunSeconds   float64        `json:"mean_run_seconds"`
	Slowest          []CellSpanData `json:"slowest,omitempty"`
}

// slowestSpans caps how many full spans the aggregate carries.
const slowestSpans = 5

// Aggregate rolls the recorded spans up. Safe on a nil recorder (zero
// aggregate).
func (r *SpanRecorder) Aggregate() SpanAggregate {
	if r == nil {
		return SpanAggregate{}
	}
	return AggregateSpans(r.Spans())
}

// AggregateSpans rolls up an arbitrary span set (remapd-metrics uses it
// on spans loaded back from disk).
func AggregateSpans(spans []CellSpanData) SpanAggregate {
	agg := SpanAggregate{Cells: len(spans)}
	for _, sp := range spans {
		agg.QueueSeconds += sp.QueueSeconds
		agg.TotalSeconds += sp.TotalSeconds
		agg.Attempts += len(sp.Attempts)
		for _, a := range sp.Attempts {
			agg.WireSeconds += a.WireSeconds
			agg.RunSeconds += a.RunSeconds
			if a.Failed {
				agg.Requeues++
			}
		}
	}
	if agg.Cells > 0 {
		agg.MeanQueueSeconds = agg.QueueSeconds / float64(agg.Cells)
		agg.MeanRunSeconds = agg.RunSeconds / float64(agg.Cells)
	}
	slowest := append([]CellSpanData(nil), spans...)
	sort.Slice(slowest, func(i, j int) bool {
		if slowest[i].TotalSeconds != slowest[j].TotalSeconds { //lint:allow float-eq tie-break ordering only; equal values fall through to the name comparison
			return slowest[i].TotalSeconds > slowest[j].TotalSeconds
		}
		return slowest[i].Cell < slowest[j].Cell
	})
	if len(slowest) > slowestSpans {
		slowest = slowest[:slowestSpans]
	}
	agg.Slowest = slowest
	return agg
}

// spansFile names the span payload inside a metrics directory.
const spansFile = "spans.json"

// WriteJSON persists the spans as <dir>/spans.json.
func (r *SpanRecorder) WriteJSON(dir string) error {
	data, err := json.MarshalIndent(r.Spans(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal spans: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, spansFile), append(data, '\n'), 0o644)
}

// ReadSpans loads a previously written spans.json; a missing file
// returns (nil, nil) — span recording is optional.
func ReadSpans(dir string) ([]CellSpanData, error) {
	data, err := os.ReadFile(filepath.Join(dir, spansFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: read spans: %w", err)
	}
	var spans []CellSpanData
	if err := json.Unmarshal(data, &spans); err != nil {
		return nil, fmt.Errorf("obs: parse spans: %w", err)
	}
	return spans, nil
}
