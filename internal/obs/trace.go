package obs

import "sync"

// Trace is the per-cell Recorder: a metrics Registry plus an ordered
// event log. The parallel runner gives every experiment cell its own
// Trace, so traces never mix cells; the internal mutex only serialises
// the (single) cell's own goroutines.
type Trace struct {
	cell string
	reg  *Registry

	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace for the named cell with the canonical
// histogram layouts declared.
func NewTrace(cell string) *Trace {
	t := &Trace{cell: cell, reg: NewRegistry()}
	t.reg.DeclareHistogram("remap.hops", HopBuckets)
	t.reg.DeclareHistogram("bist.density", DensityBuckets)
	return t
}

// Cell returns the cell key the trace records.
func (t *Trace) Cell() string { return t.cell }

// Registry exposes the trace's metrics store.
func (t *Trace) Registry() *Registry { return t.reg }

// Add implements Recorder.
//
//lint:hotpath
func (t *Trace) Add(name string, delta int64) { t.reg.Add(name, delta) }

// Set implements Recorder.
func (t *Trace) Set(name string, v float64) { t.reg.Set(name, v) }

// Observe implements Recorder.
func (t *Trace) Observe(name string, v float64) { t.reg.Observe(name, v) }

// Emit implements Recorder.
func (t *Trace) Emit(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the event log in emission order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// takeEvents drains the event log, returning the events emitted since the
// last drain. StreamTrace uses this to flush incrementally while keeping
// the trace's memory bounded.
func (t *Trace) takeEvents() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := t.events
	t.events = nil
	return evs
}

var _ Recorder = (*Trace)(nil)
