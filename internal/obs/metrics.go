package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Canonical bucket layouts for the simulation metrics. Buckets are
// ascending upper bounds with Prometheus-style inclusive-≤ semantics:
// observation v lands in the first bucket whose bound is ≥ v, and values
// above the last bound land in the overflow bucket.
var (
	// HopBuckets covers Manhattan tile distances on the 8×8 grid.
	HopBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12}
	// DensityBuckets covers per-crossbar fault densities from the
	// manufacturing cold band through heavily worn arrays.
	DensityBuckets = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}
	// DefaultBuckets is the fallback for histograms observed without a
	// prior declaration.
	DefaultBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}
)

// Histogram is a fixed-bucket histogram. Buckets holds ascending upper
// bounds; Counts has len(Buckets)+1 entries, the last being the overflow
// bucket for observations above every bound.
type Histogram struct {
	Buckets []float64 `json:"buckets"`
	Counts  []uint64  `json:"counts"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// NewHistogram returns an empty histogram over the given bounds. The
// bounds slice is copied; it must be ascending.
func NewHistogram(buckets []float64) *Histogram {
	b := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(b) {
		panic("obs: histogram buckets must be ascending")
	}
	return &Histogram{Buckets: b, Counts: make([]uint64, len(b)+1)}
}

// Observe records one value: the first bucket with bound ≥ v, or the
// overflow bucket.
func (h *Histogram) Observe(v float64) {
	h.Counts[sort.SearchFloat64s(h.Buckets, v)]++
	h.Count++
	h.Sum += v
}

// Merge adds another histogram's counts into h. The bucket layouts must
// match exactly.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.Buckets) != len(o.Buckets) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.Buckets), len(o.Buckets))
	}
	for i, b := range h.Buckets {
		if b != o.Buckets[i] { //lint:allow float-eq bucket bounds are declared constants, not computed values
			return fmt.Errorf("obs: bucket %d bound mismatch (%g vs %g)", i, b, o.Buckets[i])
		}
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return nil
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation — the standard fixed-bucket estimate (an upper
// bound on the true quantile, never an underestimate). Observations in
// the overflow bucket report the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Buckets) {
				return h.Buckets[i]
			}
			break
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// clone returns a deep copy (snapshot isolation).
func (h *Histogram) clone() *Histogram {
	return &Histogram{
		Buckets: append([]float64(nil), h.Buckets...),
		Counts:  append([]uint64(nil), h.Counts...),
		Count:   h.Count,
		Sum:     h.Sum,
	}
}

// Registry is the simulation-domain metrics store: counters, gauges and
// fixed-bucket histograms, all keyed by name. It is mutex-guarded so a
// cell's trainer and policy code can share one instance; distinct cells
// never share a Registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
}

// DeclareHistogram fixes the bucket layout of a named histogram before
// the first observation. Re-declaring an existing histogram is a no-op.
func (r *Registry) DeclareHistogram(name string, buckets []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hists[name]; !ok {
		r.hists[name] = NewHistogram(buckets)
	}
}

// Add increments a counter.
//
//lint:hotpath
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	//lint:allow hotpath-alloc counter map write: the bucket exists after the first bump, steady state rewrites in place
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set writes a gauge.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records a histogram sample, auto-declaring the histogram with
// DefaultBuckets if it was never declared.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(DefaultBuckets)
		r.hists[name] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// MetricsSnapshot is the serialisable state of a Registry. Its JSON
// encoding is deterministic: encoding/json emits map keys in sorted
// order, and every value is either integral or a float that round-trips
// exactly.
type MetricsSnapshot struct {
	Cell       string                `json:"cell,omitempty"`
	Counters   map[string]int64      `json:"counters"`
	Gauges     map[string]float64    `json:"gauges"`
	Histograms map[string]*Histogram `json:"histograms"`
}

// Snapshot returns an isolated copy of the registry's current state.
func (r *Registry) Snapshot() *MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]*Histogram, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.clone()
	}
	return s
}

// MarshalIndentJSON renders the snapshot as the metrics.json payload.
func (s *MetricsSnapshot) MarshalIndentJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
