// Package obs is the deterministic telemetry layer of the simulator. It
// has two strictly separated domains:
//
// The *simulation domain* (Recorder, Registry, Trace, Event and the Sink
// that persists them) is keyed exclusively by simulated coordinates —
// cell key, epoch, optimizer step, crossbar id — and never reads the wall
// clock or draws randomness. Recording is pure observation: a run with a
// Recorder attached produces bit-identical results to a run without one,
// which the telemetry-determinism test in internal/experiments proves.
// The default Recorder is nil, and every instrumentation site nil-guards,
// so the disabled path costs nothing (zero allocations on the matmul hot
// path, see BenchmarkWeightsWrittenNilRecorder).
//
// The *harness domain* (Profile, StartDebugServer) belongs to the runner
// and the cmd tools: it measures wall time and allocations of the harness
// itself — per experiment cell and per report phase — behind explicit
// //lint:allow no-wall-clock directives, and serves net/http/pprof +
// expvar for live inspection. Nothing in the harness domain feeds back
// into simulation state.
//
// See DESIGN.md §11 for the event schema and the determinism contract.
package obs

// Recorder receives simulation-domain telemetry. Implementations must be
// safe for use from a single cell (the parallel runner gives every cell
// its own Trace; nothing is shared across cells). Callers hold a nil
// Recorder by default and must nil-guard before calling — the guard, not
// a no-op implementation, is what keeps the disabled hot path free of
// interface-call and argument-boxing costs.
type Recorder interface {
	// Add increments the named counter by delta.
	//
	//lint:hotpath counters are bumped inside the per-batch training loop
	Add(name string, delta int64)
	// Set writes the named gauge (last value wins).
	Set(name string, v float64)
	// Observe adds v to the named histogram.
	Observe(name string, v float64)
	// Emit appends a structured event to the trace.
	Emit(ev Event)
}
