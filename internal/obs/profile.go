package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"
)

// This file is the HARNESS domain: it profiles the experiment harness
// itself — wall time and allocation volume per report phase and per
// experiment cell. Wall clock here is the point, not a leak: these
// numbers describe the machine, never the simulation, and nothing in
// this file feeds back into cell results. Every clock read carries a
// verified //lint:allow so the no-wall-clock rule still guards the
// simulation domain above.

// PhaseStat is one profiled harness phase (a report section, a figure).
type PhaseStat struct {
	Name       string  `json:"name"`
	Seconds    float64 `json:"seconds"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// CellStat is one experiment cell's harness cost.
type CellStat struct {
	Cell    string  `json:"cell"`
	Seconds float64 `json:"seconds"`
}

// ProfileData is the serialisable form of a Profile (harness.json).
type ProfileData struct {
	Phases []PhaseStat `json:"phases"`
	Cells  []CellStat  `json:"cells"`
}

// Profile collects harness wall-time/alloc statistics. It is shared by
// concurrent workers, so it is mutex-guarded; completion order (and
// therefore slice order) is scheduling-dependent, which is fine in this
// domain — consumers sort.
type Profile struct {
	mu     sync.Mutex
	phases []PhaseStat
	cells  []CellStat
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

// StartPhase begins timing a named harness phase and returns the stop
// function that records it. Alloc volume is the runtime's TotalAlloc
// delta — cumulative allocation, not live heap.
func (p *Profile) StartPhase(name string) func() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startAlloc := ms.TotalAlloc
	//lint:allow no-wall-clock harness-domain phase profiling measures the machine, never the simulation
	start := time.Now()
	return func() {
		//lint:allow no-wall-clock harness-domain phase profiling measures the machine, never the simulation
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms)
		p.mu.Lock()
		p.phases = append(p.phases, PhaseStat{Name: name, Seconds: secs, AllocBytes: ms.TotalAlloc - startAlloc})
		p.mu.Unlock()
	}
}

// StartCell begins timing one experiment cell and returns the stop
// function that records it.
func (p *Profile) StartCell(cell string) func() {
	//lint:allow no-wall-clock harness-domain cell timing measures the machine, never the simulation
	start := time.Now()
	return func() {
		//lint:allow no-wall-clock harness-domain cell timing measures the machine, never the simulation
		secs := time.Since(start).Seconds()
		p.mu.Lock()
		p.cells = append(p.cells, CellStat{Cell: cell, Seconds: secs})
		p.mu.Unlock()
	}
}

// Data snapshots the profile with cells sorted slowest-first and phases
// in completion order.
func (p *Profile) Data() *ProfileData {
	p.mu.Lock()
	d := &ProfileData{
		Phases: append([]PhaseStat(nil), p.phases...),
		Cells:  append([]CellStat(nil), p.cells...),
	}
	p.mu.Unlock()
	sort.Slice(d.Cells, func(i, j int) bool {
		if d.Cells[i].Seconds != d.Cells[j].Seconds { //lint:allow float-eq tie-break ordering only; equal values fall through to the name comparison
			return d.Cells[i].Seconds > d.Cells[j].Seconds
		}
		return d.Cells[i].Cell < d.Cells[j].Cell
	})
	return d
}

// harnessFile names the profile payload inside a metrics directory.
const harnessFile = "harness.json"

// WriteJSON persists the profile as <dir>/harness.json.
func (p *Profile) WriteJSON(dir string) error {
	data, err := json.MarshalIndent(p.Data(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal harness profile: %w", err)
	}
	return os.WriteFile(harnessPath(dir), append(data, '\n'), 0o644)
}

// harnessPath returns the harness.json path for a metrics dir.
func harnessPath(dir string) string { return dir + string(os.PathSeparator) + harnessFile }

// ReadProfile loads a previously written harness.json; a missing file
// returns (nil, nil) — harness profiling is optional.
func ReadProfile(dir string) (*ProfileData, error) {
	data, err := os.ReadFile(harnessPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: read harness profile: %w", err)
	}
	var d ProfileData
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("obs: parse harness profile: %w", err)
	}
	return &d, nil
}
