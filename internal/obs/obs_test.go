package obs

import (
	"bytes"
	"strings"
	"testing"
)

// allEventKinds returns one fully populated instance of every event
// kind. Every field is non-zero so the round-trip test exercises the
// whole schema (omitempty fields included).
func allEventKinds() []Event {
	return []Event{
		&CellStartEvent{Cell: "vgg11/remap-d/seed3"},
		&EpochEvent{Epoch: 2, Steps: 40, Loss: 1.25, TestAcc: 0.5625, GradNorm: 3.5, UpdateNorm: 0.125, WeightNorm: 12.75, MeanDensity: 0.015625, FaultsInjected: 7},
		&ReportEvent{Epoch: 2, Policy: "remap-d", Senders: 4, Swaps: 3, Unmatched: 1, BISTCycles: 8192, NoCCycles: 640, Protected: 12, MeanDensity: 0.03125},
		&SwapEvent{Epoch: 2, Sender: 17, Receiver: 42, Hops: 5, SenderDensity: 0.09375, ReceiverDensity: 0.0078125},
		&DensityEvent{Epoch: 2, Xbar: 17, Estimate: 0.046875, True: 0.0625},
		&BISTPassEvent{Epoch: 2, Xbar: 17, SA1: 9, SA0: 3, Cycles: 4096, Estimate: 0.046875},
		&WearEvent{Epoch: 2, Xbar: 42, Writes: 1 << 20, NewFaults: 2},
		&NoCRemapEvent{Epoch: 2, Pairs: 3, TotalCycles: 640, FlitHops: 15, Unmatched: 1},
	}
}

// TestEventRoundTrip pins the JSONL schema: encode → decode → re-encode
// must reproduce the original bytes exactly for every event kind. This
// is what makes a persisted trace a stable artifact rather than a
// best-effort log.
func TestEventRoundTrip(t *testing.T) {
	events := allEventKinds()
	if len(events) != len(eventFactories) {
		t.Fatalf("round-trip covers %d kinds but %d are registered", len(events), len(eventFactories))
	}
	var first bytes.Buffer
	if err := EncodeEvents(&first, events); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeEvents(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	var second bytes.Buffer
	if err := EncodeEvents(&second, decoded); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encode differs from original encode:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
	for i, ev := range decoded {
		if ev.Kind() != events[i].Kind() {
			t.Errorf("event %d decoded as kind %q, want %q", i, ev.Kind(), events[i].Kind())
		}
	}
}

// TestDecodeRejectsUnknownKind checks the schema is closed: a kind this
// build does not know is an error, not a skipped line.
func TestDecodeRejectsUnknownKind(t *testing.T) {
	in := `{"kind":"mystery","data":{}}` + "\n"
	if _, err := DecodeEvents(strings.NewReader(in)); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
	if _, err := DecodeEvents(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line decoded without error")
	}
}

// TestHistogramBucketBoundaries pins the inclusive-≤ semantics: an
// observation equal to a bound lands in that bound's bucket, and values
// above the last bound land in the overflow slot.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v    float64
		slot int
	}{
		{0.5, 0},  // below first bound
		{1, 0},    // exactly on a bound → that bucket
		{1.5, 1},  // between bounds → next bound's bucket
		{2, 1},    // exactly on a bound → that bucket
		{4, 2},    // exactly the last bound is still in-range
		{4.01, 3}, // above every bound → overflow
	}
	for _, c := range cases {
		before := append([]uint64(nil), h.Counts...)
		h.Observe(c.v)
		for i := range h.Counts {
			want := before[i]
			if i == c.slot {
				want++
			}
			if h.Counts[i] != want {
				t.Errorf("Observe(%g): bucket %d count %d, want %d", c.v, i, h.Counts[i], want)
			}
		}
	}
	if h.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
}

// TestHistogramMerge covers both the happy path and layout-mismatch
// rejection.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(3)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count != 3 || a.Counts[0] != 1 || a.Counts[1] != 1 || a.Counts[2] != 1 {
		t.Errorf("merged counts = %v (total %d), want [1 1 1] (3)", a.Counts, a.Count)
	}
	if err := a.Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Error("merge accepted mismatched bucket bounds")
	}
	if err := a.Merge(NewHistogram([]float64{1})); err == nil {
		t.Error("merge accepted mismatched bucket count")
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted descending bounds")
		}
	}()
	NewHistogram([]float64{2, 1})
}

// TestRegistrySnapshot checks snapshot isolation (later writes don't
// leak into an earlier snapshot) and that two identically driven
// registries serialise to identical bytes — the determinism property
// metrics.json relies on.
func TestRegistrySnapshot(t *testing.T) {
	drive := func(r *Registry) {
		r.DeclareHistogram("hops", HopBuckets)
		r.Add("swaps", 3)
		r.Add("swaps", 2)
		r.Set("acc", 0.5625)
		r.Observe("hops", 2)
		r.Observe("undeclared", 0.25)
	}
	r1, r2 := NewRegistry(), NewRegistry()
	drive(r1)
	drive(r2)

	snap := r1.Snapshot()
	r1.Add("swaps", 100)
	r1.Observe("hops", 9)
	if snap.Counters["swaps"] != 5 {
		t.Errorf("snapshot counter mutated: swaps = %d, want 5", snap.Counters["swaps"])
	}
	if snap.Histograms["hops"].Count != 1 {
		t.Errorf("snapshot histogram mutated: count = %d, want 1", snap.Histograms["hops"].Count)
	}

	j1, err := r2.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	j2, err := r2.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("identical registry produced different snapshot JSON")
	}
	if _, err := decodeSnapshot(j1); err != nil {
		t.Errorf("snapshot JSON does not decode strictly: %v", err)
	}
}

// TestSinkReadDirRoundTrip writes two cells through a Sink and loads
// them back through the summarizer's ReadDir, checking the cell-start
// header is stripped and swap accounting survives persistence.
func TestSinkReadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSink(dir)
	if err != nil {
		t.Fatalf("NewSink: %v", err)
	}
	tr := NewTrace("vgg11/remap-d/seed3")
	tr.Add("remap.swaps", 3)
	tr.Emit(&ReportEvent{Epoch: 0, Policy: "remap-d", Swaps: 2})
	tr.Emit(&ReportEvent{Epoch: 1, Policy: "remap-d", Swaps: 1})
	if err := sink.Write("cell-a", tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	tr2 := NewTrace("vgg11/none/seed3")
	if err := sink.Write("cell-b", tr2); err != nil {
		t.Fatalf("write: %v", err)
	}

	cells, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(cells) != 2 {
		t.Fatalf("loaded %d cells, want 2", len(cells))
	}
	cm := cells[0] // sorted by base: cell-a first
	if cm.Cell != "vgg11/remap-d/seed3" || cm.Model != "vgg11" || cm.Policy != "remap-d" || cm.Seed != 3 {
		t.Errorf("parsed cell = %q (%s/%s/%d), want vgg11/remap-d/seed3", cm.Cell, cm.Model, cm.Policy, cm.Seed)
	}
	if got := cm.SwapTotal(); got != 3 {
		t.Errorf("SwapTotal = %d, want 3", got)
	}
	for _, ev := range cm.Events {
		if _, ok := ev.(*CellStartEvent); ok {
			t.Error("cell-start header leaked into loaded events")
		}
	}
	if cm.Snapshot.Counters["remap.swaps"] != 3 {
		t.Errorf("counter remap.swaps = %d, want 3", cm.Snapshot.Counters["remap.swaps"])
	}

	sum := Summarize(cells)
	if len(sum.Policies) != 2 {
		t.Fatalf("summary has %d policies, want 2", len(sum.Policies))
	}
	var remapD *PolicySummary
	for _, ps := range sum.Policies {
		if ps.Policy == "remap-d" {
			remapD = ps
		}
	}
	if remapD == nil || remapD.Swaps != 3 || remapD.Epochs != 2 {
		t.Fatalf("remap-d summary = %+v, want Swaps=3 Epochs=2", remapD)
	}
	if remapD.SwapsPerEpoch != 1.5 { //lint:allow float-eq 3/2 is exact in binary floating point
		t.Errorf("SwapsPerEpoch = %g, want 1.5", remapD.SwapsPerEpoch)
	}
}

// TestProfileRoundTrip covers the harness-domain profile: phase/cell
// recording, slowest-first cell ordering, and harness.json persistence.
func TestProfileRoundTrip(t *testing.T) {
	p := NewProfile()
	p.StartPhase("fig6")()
	p.StartCell("slow-cell")()
	p.StartCell("fast-cell")()
	d := p.Data()
	if len(d.Phases) != 1 || d.Phases[0].Name != "fig6" {
		t.Fatalf("phases = %+v, want one fig6 entry", d.Phases)
	}
	if len(d.Cells) != 2 {
		t.Fatalf("cells = %+v, want 2 entries", d.Cells)
	}

	dir := t.TempDir()
	if err := p.WriteJSON(dir); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadProfile(dir)
	if err != nil {
		t.Fatalf("ReadProfile: %v", err)
	}
	if back == nil || len(back.Phases) != 1 || len(back.Cells) != 2 {
		t.Fatalf("ReadProfile = %+v, want 1 phase and 2 cells", back)
	}
	missing, err := ReadProfile(t.TempDir())
	if err != nil || missing != nil {
		t.Errorf("ReadProfile on empty dir = (%+v, %v), want (nil, nil)", missing, err)
	}
}
