package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync"

	"remapd/internal/det"
)

// This file is the HARNESS domain: the live /status endpoint. A Status
// is a registry of named sections — "grid" from the experiment runner,
// "fleet" from the dist fleet, "spans" from the span recorder — each a
// function returning a JSON-marshalable snapshot. GET /status assembles
// them into one document, so an operator (or `remapd-metrics -watch`)
// can see a multi-machine run's progress without tailing stdout.
// Everything served is harness-side bookkeeping; serving it cannot
// perturb simulation results.

// GridStatus is the runner's "grid" section: how far through the cell
// grid the run is.
type GridStatus struct {
	Total          int     `json:"total"`
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Status is a concurrent registry of status sections. The zero value is
// unusable; call NewStatus. All methods are safe on a nil receiver so
// producers can publish unconditionally.
type Status struct {
	mu       sync.Mutex
	sections map[string]func() interface{}
}

// NewStatus returns an empty registry.
func NewStatus() *Status {
	return &Status{sections: map[string]func() interface{}{}}
}

// Register installs (or replaces) the named section. snapshot is called
// on every GET, so it must be cheap and concurrency-safe. Nil-safe.
func (s *Status) Register(name string, snapshot func() interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sections[name] = snapshot
	s.mu.Unlock()
}

// Snapshot assembles every section into one map. Nil-safe (empty map).
func (s *Status) Snapshot() map[string]interface{} {
	out := map[string]interface{}{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	names := det.SortedKeys(s.sections)
	fns := make([]func() interface{}, 0, len(names))
	for _, name := range names {
		fns = append(fns, s.sections[name])
	}
	s.mu.Unlock()
	// Section snapshots run outside the registry lock: a section is free
	// to take its own locks (the fleet does) without ordering concerns.
	for i, name := range names {
		out[name] = fns[i]()
	}
	return out
}

// ServeHTTP renders the snapshot as indented JSON.
func (s *Status) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json marshals map keys sorted, so the document is stable.
	_ = enc.Encode(snap)
}

// publishExpvar mirrors the status snapshot into expvar under "remapd",
// so generic expvar tooling sees the same document /status serves.
// expvar panics on duplicate names and has no unpublish, so the first
// Status wins for the process lifetime — fine for the cmd binaries,
// which create exactly one.
var publishExpvar sync.Once

// StartStatusServer serves /status for st plus the standard debug
// surface (pprof, expvar) on addr, returning the bound address. Like
// StartDebugServer it is best-effort and runs for the process lifetime.
func StartStatusServer(addr string, st *Status) (string, error) {
	publishExpvar.Do(func() {
		expvar.Publish("remapd", expvar.Func(func() interface{} { return st.Snapshot() }))
	})
	return serveDebugMux(addr, func(mux *http.ServeMux) {
		mux.Handle("/status", st)
	})
}
