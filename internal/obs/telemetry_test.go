package obs

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFleetTraceRoundTrip: events written through a file trace must come
// back typed, ordered, and strictly validated.
func TestFleetTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	tr, err := NewFleetTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(FleetEvent{Kind: FleetJoin, Worker: "fw1/pid9", Addr: "127.0.0.1:1", Proto: 3, Slots: 2, Workers: 1})
	tr.Emit(FleetEvent{Kind: FleetRequeue, Worker: "fw1/pid9", Cell: "cnn-s/remap-d/seed1", Attempt: 1, Cause: "fw1/pid9 died mid-cell"})
	tr.Emit(FleetEvent{Kind: FleetDone, Worker: "fw1/pid9", Cell: "cnn-s/remap-d/seed1", Attempt: 2, Seconds: 1.5})
	tr.Emit(FleetEvent{Kind: FleetDrop, Worker: "fw1/pid9", Workers: 0, Cause: "connection closed"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := DecodeFleetEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("decoded %d events, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if events[1].Kind != FleetRequeue || events[1].Attempt != 1 {
		t.Errorf("requeue event mangled: %+v", events[1])
	}
	if events[2].Seconds != 1.5 {
		t.Errorf("cell-done seconds = %v, want 1.5", events[2].Seconds)
	}

	// The in-memory ring must agree with the file.
	if mem := tr.Events(); len(mem) != 4 || mem[3].Kind != FleetDrop {
		t.Errorf("memory trace disagrees with file: %+v", mem)
	}
}

// TestFleetTraceStrictDecode: unknown kinds and unknown fields are schema
// drift and must fail loudly.
func TestFleetTraceStrictDecode(t *testing.T) {
	if _, err := DecodeFleetEvents(strings.NewReader(`{"seq":1,"elapsed_seconds":0,"kind":"teleport"}` + "\n")); err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Errorf("unknown kind err = %v, want unknown-kind error", err)
	}
	if _, err := DecodeFleetEvents(strings.NewReader(`{"seq":1,"elapsed_seconds":0,"kind":"join","surprise":true}` + "\n")); err == nil {
		t.Error("unknown field slipped through the strict decoder")
	}
	if _, err := DecodeFleetEvents(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line slipped through")
	}
}

// TestFleetTraceNilSafe: a nil trace must absorb every call.
func TestFleetTraceNilSafe(t *testing.T) {
	var tr *FleetTrace
	tr.Emit(FleetEvent{Kind: FleetJoin})
	if ev := tr.Events(); ev != nil {
		t.Errorf("nil trace returned events: %+v", ev)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil trace Close: %v", err)
	}
}

// TestSpanAccounting walks one cell through a requeued lifecycle: the
// first attempt dies without a run segment (the telemetry frame never
// arrived), the second succeeds with one — exactly the shape a
// chaos-severed fleet cell produces.
func TestSpanAccounting(t *testing.T) {
	rec := NewSpanRecorder()
	span := rec.Begin("cnn-s/remap-d/seed1")
	span.Schedule()

	span.Dispatch("fw1/pid9")
	// No RunSegment: the worker died before reporting.
	span.EndAttempt(true)

	span.Dispatch("fw2/pid10")
	span.RunSegment(0.25, false)
	span.EndAttempt(false)
	span.Finish("ok")

	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Cell != "cnn-s/remap-d/seed1" || sp.Outcome != "ok" {
		t.Fatalf("span header mangled: %+v", sp)
	}
	if len(sp.Attempts) != 2 {
		t.Fatalf("span has %d attempts, want 2", len(sp.Attempts))
	}
	first, second := sp.Attempts[0], sp.Attempts[1]
	if !first.Failed || first.RunSeconds != 0 || first.Worker != "fw1/pid9" || first.Attempt != 1 {
		t.Errorf("first attempt should be failed with no run segment: %+v", first)
	}
	if second.Failed || second.RunSeconds != 0.25 || second.Worker != "fw2/pid10" || second.Attempt != 2 {
		t.Errorf("second attempt should carry the reported run segment: %+v", second)
	}
	if second.WireSeconds < 0 {
		t.Errorf("wire time went negative: %+v", second)
	}

	agg := rec.Aggregate()
	if agg.Cells != 1 || agg.Attempts != 2 || agg.Requeues != 1 {
		t.Errorf("aggregate = %+v, want 1 cell / 2 attempts / 1 requeue", agg)
	}

	// Persistence round-trip.
	dir := t.TempDir()
	if err := rec.WriteJSON(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSpans(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || len(loaded[0].Attempts) != 2 {
		t.Fatalf("spans.json round-trip lost data: %+v", loaded)
	}
	if missing, err := ReadSpans(t.TempDir()); err != nil || missing != nil {
		t.Fatalf("missing spans.json should read as (nil, nil), got (%v, %v)", missing, err)
	}
}

// TestSpanNilSafe: a nil recorder yields nil spans whose methods all
// no-op — the guarantee that lets executors mark edges unconditionally.
func TestSpanNilSafe(t *testing.T) {
	var rec *SpanRecorder
	span := rec.Begin("x")
	if span != nil {
		t.Fatal("nil recorder returned a non-nil span")
	}
	span.Schedule()
	span.Dispatch("w")
	span.RunSegment(1, false)
	span.EndAttempt(false)
	span.Finish("ok")
	if agg := rec.Aggregate(); agg.Cells != 0 {
		t.Errorf("nil recorder aggregate = %+v", agg)
	}
}

// TestSpanConcurrentFinish: spans finishing from many goroutines must
// land without races (the -race build is the real assertion).
func TestSpanConcurrentFinish(t *testing.T) {
	rec := NewSpanRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			span := rec.Begin("cell" + string(rune('a'+i)))
			span.Dispatch("w")
			span.RunSegment(0.01, false)
			span.EndAttempt(false)
			span.Finish("ok")
		}(i)
	}
	wg.Wait()
	if got := len(rec.Spans()); got != 16 {
		t.Fatalf("recorded %d spans, want 16", got)
	}
}

// TestStatusServer: GET /status on a live server must return the
// registered sections as JSON.
func TestStatusServer(t *testing.T) {
	st := NewStatus()
	st.Register("grid", func() interface{} {
		return GridStatus{Total: 6, Done: 2, Failed: 0, ElapsedSeconds: 1.25}
	})
	addr, err := StartStatusServer("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /status: %s", resp.Status)
	}
	var doc struct {
		Grid *GridStatus `json:"grid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Grid == nil || doc.Grid.Total != 6 || doc.Grid.Done != 2 {
		t.Fatalf("status document mangled: %+v", doc.Grid)
	}

	// Re-registration replaces; nil registry absorbs.
	st.Register("grid", func() interface{} { return GridStatus{Total: 7} })
	snap := st.Snapshot()
	if g, ok := snap["grid"].(GridStatus); !ok || g.Total != 7 {
		t.Fatalf("re-registered section not visible: %+v", snap["grid"])
	}
	var nilStatus *Status
	nilStatus.Register("x", func() interface{} { return 1 })
	if got := nilStatus.Snapshot(); len(got) != 0 {
		t.Errorf("nil status snapshot = %+v", got)
	}
}

// TestSummarizeFleet rolls a synthetic trace up and checks attribution.
func TestSummarizeFleet(t *testing.T) {
	events := []FleetEvent{
		{Seq: 1, Kind: FleetJoin, Worker: "fw1", Workers: 1},
		{Seq: 2, Kind: FleetJoin, Worker: "fw2", Workers: 2},
		{Seq: 3, Kind: FleetRequeue, Worker: "fw1", Cell: "a", Attempt: 1, Cause: "fw1 died mid-cell"},
		{Seq: 4, Kind: FleetDrop, Worker: "fw1", Workers: 1, Cause: "connection closed"},
		{Seq: 5, Kind: FleetDone, Worker: "fw2", Cell: "a", Attempt: 2, Seconds: 2},
		{Seq: 6, Kind: FleetDone, Worker: "fw2", Cell: "b", Attempt: 1, Seconds: 1},
		{Seq: 7, Kind: FleetStall, Workers: 0},
	}
	sum := SummarizeFleet(events)
	if sum.Joins != 2 || sum.Drops != 1 || sum.Stalls != 1 || sum.Requeues != 1 || sum.CellsDone != 2 {
		t.Fatalf("summary counts wrong: %+v", sum)
	}
	if sum.RequeueCauses["fw1 died mid-cell"] != 1 {
		t.Errorf("requeue cause lost: %+v", sum.RequeueCauses)
	}
	if len(sum.Workers) != 2 {
		t.Fatalf("worker rows = %+v, want 2", sum.Workers)
	}
	// Sorted by name: fw1 first (1 requeue, 0 done), fw2 (2 done, 3s busy).
	if w := sum.Workers[0]; w.Worker != "fw1" || w.Requeues != 1 || w.Done != 0 {
		t.Errorf("fw1 row: %+v", w)
	}
	if w := sum.Workers[1]; w.Worker != "fw2" || w.Done != 2 || w.BusySeconds != 3 {
		t.Errorf("fw2 row: %+v", w)
	}
	if len(sum.SlowestCells) != 2 || sum.SlowestCells[0].Cell != "a" {
		t.Errorf("slowest cells: %+v", sum.SlowestCells)
	}
}
