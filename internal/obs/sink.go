package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Sink persists per-cell traces into a metrics directory: one
// <base>.metrics.json (the registry snapshot) and one <base>.events.jsonl
// (the event log, headed by a cell-start line) per cell. base is the same
// filesystem-safe name the checkpoint store derives for the cell, so a
// cell's telemetry sits next to its checkpoint.
type Sink struct {
	dir string
}

// NewSink creates (if necessary) the metrics directory.
func NewSink(dir string) (*Sink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: create metrics dir: %w", err)
	}
	return &Sink{dir: dir}, nil
}

// Dir returns the sink's directory.
func (s *Sink) Dir() string { return s.dir }

// metricsSuffix and eventsSuffix name the two per-cell files.
const (
	metricsSuffix = ".metrics.json"
	eventsSuffix  = ".events.jsonl"
)

// Write persists one cell's trace. It is called after the cell finishes
// (successfully or not — a failed cell's partial trace is still
// evidence), overwriting any previous files for the base.
func (s *Sink) Write(base string, t *Trace) error {
	snap := t.Registry().Snapshot()
	snap.Cell = t.Cell()
	data, err := snap.MarshalIndentJSON()
	if err != nil {
		return fmt.Errorf("obs: marshal metrics for %s: %w", t.Cell(), err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, base+metricsSuffix), data, 0o644); err != nil {
		return fmt.Errorf("obs: write metrics for %s: %w", t.Cell(), err)
	}
	events := append([]Event{&CellStartEvent{Cell: t.Cell()}}, t.Events()...)
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, events); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(s.dir, base+eventsSuffix), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("obs: write events for %s: %w", t.Cell(), err)
	}
	return nil
}
