package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Sink persists per-cell traces into a metrics directory: one
// <base>.metrics.json (the registry snapshot) and one <base>.events.jsonl
// (the event log, headed by a cell-start line) per cell. base is the same
// filesystem-safe name the checkpoint store derives for the cell, so a
// cell's telemetry sits next to its checkpoint.
type Sink struct {
	dir string
}

// NewSink creates (if necessary) the metrics directory.
func NewSink(dir string) (*Sink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: create metrics dir: %w", err)
	}
	return &Sink{dir: dir}, nil
}

// Dir returns the sink's directory.
func (s *Sink) Dir() string { return s.dir }

// metricsSuffix and eventsSuffix name the two per-cell files.
const (
	metricsSuffix = ".metrics.json"
	eventsSuffix  = ".events.jsonl"
)

// Write persists one cell's trace. It is called after the cell finishes
// (successfully or not — a failed cell's partial trace is still
// evidence), overwriting any previous files for the base.
func (s *Sink) Write(base string, t *Trace) error {
	if err := s.writeMetrics(base, t); err != nil {
		return err
	}
	events := append([]Event{&CellStartEvent{Cell: t.Cell()}}, t.Events()...)
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, events); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(s.dir, base+eventsSuffix), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("obs: write events for %s: %w", t.Cell(), err)
	}
	return nil
}

// writeMetrics snapshots the trace's registry into <base>.metrics.json.
func (s *Sink) writeMetrics(base string, t *Trace) error {
	snap := t.Registry().Snapshot()
	snap.Cell = t.Cell()
	data, err := snap.MarshalIndentJSON()
	if err != nil {
		return fmt.Errorf("obs: marshal metrics for %s: %w", t.Cell(), err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, base+metricsSuffix), data, 0o644); err != nil {
		return fmt.Errorf("obs: write metrics for %s: %w", t.Cell(), err)
	}
	return nil
}

// Flusher is implemented by recorders that can persist their
// accumulated state mid-run. The trainer flushes after every epoch
// boundary, so a crashed run's trace is truncated at the last epoch
// rather than lost.
type Flusher interface {
	Flush() error
}

// StreamTrace is a Trace whose events stream to disk incrementally
// instead of buffering for the cell's whole lifetime: each Flush appends
// the events emitted since the previous flush to <base>.events.jsonl and
// rewrites the <base>.metrics.json snapshot. The final on-disk bytes are
// identical to a buffered Sink.Write of the same trace — streaming only
// changes when they are written (and bounds the trace's memory, since
// flushed events are released). Not safe for concurrent Flush/Close
// calls; the trainer calls both from its single epoch loop.
type StreamTrace struct {
	*Trace
	sink   *Sink
	base   string
	f      *os.File
	closed bool
}

// Stream opens a streaming trace for the cell: the events file is created
// (truncating any previous run's) and headed with the cell-start line
// immediately, so even a cell that dies in epoch 0 leaves a valid,
// attributable event log.
func (s *Sink) Stream(base, cell string) (*StreamTrace, error) {
	f, err := os.Create(filepath.Join(s.dir, base+eventsSuffix))
	if err != nil {
		return nil, fmt.Errorf("obs: create events stream for %s: %w", cell, err)
	}
	line, err := EncodeEvent(&CellStartEvent{Cell: cell})
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Write(line); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("obs: write events for %s: %w", cell, err)
	}
	return &StreamTrace{Trace: NewTrace(cell), sink: s, base: base, f: f}, nil
}

// Flush implements Flusher: append the pending events and refresh the
// metrics snapshot. Flushed events are dropped from memory — the file is
// now the record — which is the bounded-memory point of streaming.
func (st *StreamTrace) Flush() error {
	for _, ev := range st.Trace.takeEvents() {
		line, err := EncodeEvent(ev)
		if err != nil {
			return err
		}
		if _, err := st.f.Write(line); err != nil {
			return fmt.Errorf("obs: write events for %s: %w", st.Cell(), err)
		}
	}
	return st.sink.writeMetrics(st.base, st.Trace)
}

// Close flushes whatever remains and closes the events file. Idempotent;
// callers must Close even when the cell failed — the partial trace is
// evidence.
func (st *StreamTrace) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	ferr := st.Flush()
	cerr := st.f.Close()
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("obs: close events for %s: %w", st.Cell(), cerr)
	}
	return nil
}

var _ Recorder = (*StreamTrace)(nil)
var _ Flusher = (*StreamTrace)(nil)
