package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the obs wire schema version: the JSONL event envelope
// plus the metrics snapshot field sets. Tools that parse recorded traces
// key off it; the wire-stability lint rule pins the full tagged field
// set to a golden and requires a bump here when it changes.
//
// v2 added the operational telemetry surface: cell lifecycle spans
// (spans.json), the fleet event trace (fleet JSONL), and the /status
// document types.
const SchemaVersion = 2

// Event is one structured trace record. Every event is keyed by simulated
// coordinates only (epoch, crossbar id, tile id — never wall-clock
// time), so a trace replays bit-identically with the run that produced
// it. Concrete events are plain structs; their JSON field order is the
// struct declaration order, which makes encode → decode → re-encode an
// exact identity (the schema round-trip test pins this).
type Event interface {
	// Kind returns the event's stable schema name (the JSONL envelope
	// discriminator).
	Kind() string
}

// CellStartEvent heads every events.jsonl file and names the cell the
// trace belongs to.
type CellStartEvent struct {
	Cell string `json:"cell"`
}

// Kind implements Event.
func (*CellStartEvent) Kind() string { return "cell-start" }

// EpochEvent summarises one training epoch: loss/accuracy and the
// gradient, weight-update and weight norms the paper's drift arguments
// are about. Norms are Frobenius over all parameters; GradNorm
// aggregates every optimizer step of the epoch.
type EpochEvent struct {
	Epoch          int     `json:"epoch"`
	Steps          int     `json:"steps"`
	Loss           float64 `json:"loss"`
	TestAcc        float64 `json:"test_acc"`
	GradNorm       float64 `json:"grad_norm"`
	UpdateNorm     float64 `json:"update_norm"`
	WeightNorm     float64 `json:"weight_norm"`
	MeanDensity    float64 `json:"mean_density,omitempty"`
	FaultsInjected int     `json:"faults_injected,omitempty"`
}

// Kind implements Event.
func (*EpochEvent) Kind() string { return "epoch" }

// ReportEvent records the policy's EpochReport at one epoch boundary —
// the authoritative per-epoch swap/sender/protection accounting (summing
// ReportEvent.Swaps over a trace reproduces the trainer's Result.Swaps).
type ReportEvent struct {
	Epoch       int     `json:"epoch"`
	Policy      string  `json:"policy"`
	Senders     int     `json:"senders"`
	Swaps       int     `json:"swaps"`
	Unmatched   int     `json:"unmatched"`
	BISTCycles  int     `json:"bist_cycles"`
	NoCCycles   int     `json:"noc_cycles"`
	Protected   int     `json:"protected"`
	MeanDensity float64 `json:"mean_density"`
}

// Kind implements Event.
func (*ReportEvent) Kind() string { return "epoch-report" }

// SwapEvent is one Remap-D task exchange: sender and receiver crossbar
// ids, their tile hop distance, and the densities that triggered the
// swap.
type SwapEvent struct {
	Epoch           int     `json:"epoch"`
	Sender          int     `json:"sender"`
	Receiver        int     `json:"receiver"`
	Hops            int     `json:"hops"`
	SenderDensity   float64 `json:"sender_density"`
	ReceiverDensity float64 `json:"receiver_density"`
}

// Kind implements Event.
func (*SwapEvent) Kind() string { return "swap" }

// DensityEvent pairs the remap trigger's density estimate with the
// ground truth for one crossbar at one epoch boundary — the BIST
// fidelity signal (paper Fig. 4's system-level consequence).
type DensityEvent struct {
	Epoch    int     `json:"epoch"`
	Xbar     int     `json:"xbar"`
	Estimate float64 `json:"estimate"`
	True     float64 `json:"true"`
}

// Kind implements Event.
func (*DensityEvent) Kind() string { return "density" }

// BISTPassEvent records one completed BIST FSM pass.
type BISTPassEvent struct {
	Epoch    int     `json:"epoch"`
	Xbar     int     `json:"xbar"`
	SA1      int     `json:"sa1"`
	SA0      int     `json:"sa0"`
	Cycles   int     `json:"cycles"`
	Estimate float64 `json:"estimate"`
}

// Kind implements Event.
func (*BISTPassEvent) Kind() string { return "bist-pass" }

// WearEvent records endurance-driven fault materialisation on one
// crossbar: the write watermark that triggered it and how many new
// stuck-at faults appeared.
type WearEvent struct {
	Epoch     int    `json:"epoch"`
	Xbar      int    `json:"xbar"`
	Writes    uint64 `json:"writes"`
	NewFaults int    `json:"new_faults"`
}

// Kind implements Event.
func (*WearEvent) Kind() string { return "wear" }

// NoCRemapEvent summarises one flit-level remap handshake round.
type NoCRemapEvent struct {
	Epoch       int `json:"epoch"`
	Pairs       int `json:"pairs"`
	TotalCycles int `json:"total_cycles"`
	FlitHops    int `json:"flit_hops"`
	Unmatched   int `json:"unmatched"`
}

// Kind implements Event.
func (*NoCRemapEvent) Kind() string { return "noc-remap" }

// eventFactories maps each kind to a fresh-instance constructor; Decode
// uses it to rebuild typed events from the envelope discriminator.
var eventFactories = map[string]func() Event{
	(*CellStartEvent)(nil).Kind(): func() Event { return &CellStartEvent{} },
	(*EpochEvent)(nil).Kind():     func() Event { return &EpochEvent{} },
	(*ReportEvent)(nil).Kind():    func() Event { return &ReportEvent{} },
	(*SwapEvent)(nil).Kind():      func() Event { return &SwapEvent{} },
	(*DensityEvent)(nil).Kind():   func() Event { return &DensityEvent{} },
	(*BISTPassEvent)(nil).Kind():  func() Event { return &BISTPassEvent{} },
	(*WearEvent)(nil).Kind():      func() Event { return &WearEvent{} },
	(*NoCRemapEvent)(nil).Kind():  func() Event { return &NoCRemapEvent{} },
}

// envelope is the JSONL line format: {"kind":"swap","data":{...}}.
type envelope struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// EncodeEvent renders one event as a single JSONL line (with trailing
// newline).
func EncodeEvent(ev Event) ([]byte, error) {
	data, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("obs: encode %s event: %w", ev.Kind(), err)
	}
	line, err := json.Marshal(envelope{Kind: ev.Kind(), Data: data})
	if err != nil {
		return nil, fmt.Errorf("obs: encode %s envelope: %w", ev.Kind(), err)
	}
	return append(line, '\n'), nil
}

// EncodeEvents writes events as JSONL.
func EncodeEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		line, err := EncodeEvent(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeEvents reads a JSONL event stream back into typed events. An
// unknown kind or malformed line is an error — the schema is closed, so
// silence would hide producer/consumer drift.
func DecodeEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", lineNo, err)
		}
		mk := eventFactories[env.Kind]
		if mk == nil {
			return nil, fmt.Errorf("obs: events line %d: unknown event kind %q", lineNo, env.Kind)
		}
		ev := mk()
		if err := json.Unmarshal(env.Data, ev); err != nil {
			return nil, fmt.Errorf("obs: events line %d (%s): %w", lineNo, env.Kind, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan events: %w", err)
	}
	return out, nil
}
