package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStreamTraceMatchesBufferedWrite is the streaming contract: the final
// on-disk bytes of a StreamTrace (flushed piecemeal across epochs) must be
// identical to a buffered Sink.Write of the same trace.
func TestStreamTraceMatchesBufferedWrite(t *testing.T) {
	record := func(r Recorder, from, to int) {
		for e := from; e < to; e++ {
			r.Add("batches", 4)
			r.Set("density", float64(e)*0.01)
			r.Observe("loss", 1.0/float64(e+1))
			r.Emit(&EpochEvent{Epoch: e, Steps: 4, Loss: 1.0 / float64(e+1), TestAcc: 0.5})
			r.Emit(&SwapEvent{Epoch: e, Sender: e, Receiver: e + 1, Hops: 2})
		}
	}

	bufDir, streamDir := t.TempDir(), t.TempDir()
	bufSink, err := NewSink(bufDir)
	if err != nil {
		t.Fatal(err)
	}
	trace := NewTrace("cellA")
	record(trace, 0, 3)
	if err := bufSink.Write("cellA", trace); err != nil {
		t.Fatal(err)
	}

	streamSink, err := NewSink(streamDir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := streamSink.Stream("cellA", "cellA")
	if err != nil {
		t.Fatal(err)
	}
	// Flush after each "epoch", as the trainer does.
	for e := 0; e < 3; e++ {
		record(st, e, e+1)
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		// Bounded memory: flushed events must leave the in-memory trace.
		if n := len(st.Events()); n != 0 {
			t.Fatalf("epoch %d: %d events still buffered after Flush", e, n)
		}
		// Crash visibility: the events file already holds everything
		// emitted so far (cell-start + 2 lines per epoch).
		data, err := os.ReadFile(filepath.Join(streamDir, "cellA"+eventsSuffix))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := strings.Count(string(data), "\n"), 1+2*(e+1); got != want {
			t.Fatalf("epoch %d: events file has %d lines, want %d", e, got, want)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}

	for _, suffix := range []string{metricsSuffix, eventsSuffix} {
		buffered, err := os.ReadFile(filepath.Join(bufDir, "cellA"+suffix))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := os.ReadFile(filepath.Join(streamDir, "cellA"+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if string(buffered) != string(streamed) {
			t.Errorf("%s differs between buffered and streamed writes:\n--- buffered\n%s\n--- streamed\n%s",
				suffix, buffered, streamed)
		}
	}
}

// TestStreamTraceHeadsFileImmediately: a cell that dies before its first
// flush must still leave an attributable event log.
func TestStreamTraceHeadsFileImmediately(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sink.Stream("dead", "dead-cell")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "dead"+eventsSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cell-start"`) || !strings.Contains(string(data), "dead-cell") {
		t.Fatalf("events file not headed with cell-start: %q", data)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
