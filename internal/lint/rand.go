package lint

import (
	"go/ast"
	"strings"
)

// NoGlobalRand bans math/rand (v1 and v2) module-wide. The global
// math/rand stream is process-shared — two concurrently running cells
// draw interleaved values, destroying replay — and its sequence is not
// guaranteed stable across Go releases. tensor.RNG (xoshiro256**, seeded
// per cell) is the repository's only randomness source.
var NoGlobalRand = &Analyzer{
	Name: "no-global-rand",
	Doc:  "math/rand is banned everywhere; tensor.RNG is the only randomness source",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "math/rand", "math/rand/v2":
					pass.Reportf(imp.Pos(),
						"import of %s: the global stream is shared across goroutines and unstable across Go releases; use tensor.RNG seeded from cell coordinates", imp.Path.Value)
				}
			}
		}
	},
}

// SeededRNG requires that tensor.NewRNG seeds in non-test internal/ code
// flow from data (cell coordinates, config, a parent stream) rather than
// constants. A constant seed hard-wires one stream: two call sites with
// the same literal alias their randomness, and sweeping seeds from the
// experiment grid silently has no effect.
var SeededRNG = &Analyzer{
	Name: "seeded-rng",
	Doc:  "tensor.NewRNG in internal/ must not take constant seeds; seeds flow from cell coordinates or config",
	Run: func(pass *Pass) {
		if !pass.InDirs("internal") || pathHasSuffix(pass.Path, "internal/tensor") {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				obj := calleeObj(pass, call)
				if obj == nil || obj.Name() != "NewRNG" || obj.Pkg() == nil ||
					!pathHasSuffix(obj.Pkg().Path(), "internal/tensor") {
					return true
				}
				if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
					pass.Reportf(call.Pos(),
						"tensor.NewRNG with constant seed %s: seeds must derive from cell coordinates or config so streams never alias across cells", tv.Value)
				}
				return true
			})
		}
	},
}
