package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
)

// WireStability guards the serialized formats: the dist coordinator ↔
// worker protocol (line-delimited JSON, resumable across binary
// versions), the checkpoint store, and the obs event/metrics schemas.
// Two layers of defence:
//
//  1. Tag hygiene — in internal/dist, internal/checkpoint and
//     internal/obs, any struct that participates in JSON serialization
//     (has at least one json tag) must tag every exported field, with
//     unique lowercase snake_case names; a json tag on an unexported
//     field is dead and reported too.
//
//  2. Golden field sets — a package that declares a wire version const
//     (ProtoVersion or SchemaVersion) has its full tagged field set
//     snapshotted into internal/lint/testdata/wire/<pkg>.golden. Any
//     drift between the snapshot and the golden without a version bump
//     is a finding: adding a field to a dist message silently changes
//     the bytes old workers emit, which the byte-identity contract
//     (and mixed-version fan-out) cannot tolerate. After an intentional
//     change, bump the version const and `make wire-golden`.
var WireStability = &Analyzer{
	Name: "wire-stability",
	Doc:  "serialized structs need complete lowercase json tags; versioned wire field sets must match their golden",
	Run:  runWireStability,
}

var wireDirs = []string{"internal/dist", "internal/checkpoint", "internal/obs"}

var jsonNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runWireStability(pass *Pass) {
	inScope := false
	for _, dir := range wireDirs {
		if pathHasSuffix(pass.Path, dir) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			checkWireTags(pass, ts.Name.Name, st)
			return true
		})
	}
	checkWireGolden(pass)
}

// jsonTag extracts the json struct tag of a field: name, whether a json
// key was present at all, and the raw value (name + options).
func jsonTag(field *ast.Field) (name string, present bool, raw string) {
	if field.Tag == nil {
		return "", false, ""
	}
	tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`"))
	raw, present = tag.Lookup("json")
	name = raw
	if i := strings.Index(raw, ","); i >= 0 {
		name = raw[:i]
	}
	return name, present, raw
}

// checkWireTags enforces tag hygiene on one struct declaration, but only
// when the struct opts into JSON serialization (≥ 1 json tag) — the
// checkpoint package's binary container structs stay untouched.
func checkWireTags(pass *Pass, structName string, st *ast.StructType) {
	serialized := false
	for _, f := range st.Fields.List {
		if _, present, _ := jsonTag(f); present {
			serialized = true
			break
		}
	}
	if !serialized {
		return
	}
	seen := map[string]bool{}
	for _, f := range st.Fields.List {
		name, present, _ := jsonTag(f)
		idents := f.Names
		if len(idents) == 0 {
			// Embedded field: its exported name is the type name.
			if id := embeddedIdent(f.Type); id != nil {
				idents = []*ast.Ident{id}
			} else {
				continue
			}
		}
		for _, id := range idents {
			switch {
			case !id.IsExported():
				if present && name != "-" {
					pass.Reportf(f.Pos(), "json tag on unexported field %s.%s is dead (never serialized)", structName, id.Name)
				}
			case !present:
				pass.Reportf(id.Pos(), "exported field %s.%s has no json tag (wire structs need complete tags)", structName, id.Name)
			case name == "-":
				// Explicitly excluded from the wire format.
			case !jsonNameRE.MatchString(name):
				pass.Reportf(f.Tag.Pos(), "json tag %q on %s.%s is not lowercase snake_case", name, structName, id.Name)
			case seen[name]:
				pass.Reportf(f.Tag.Pos(), "duplicate json tag %q in %s", name, structName)
			default:
				seen[name] = true
			}
		}
	}
}

// embeddedIdent returns the name identifier of an embedded field type.
func embeddedIdent(e ast.Expr) *ast.Ident {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t
	case *ast.StarExpr:
		return embeddedIdent(t.X)
	case *ast.SelectorExpr:
		return t.Sel
	}
	return nil
}

// wireVersionOf finds the package's wire version const (ProtoVersion or
// SchemaVersion) and its integer value.
func wireVersionOf(pkg *types.Package) (name, value string, pos token.Pos, ok bool) {
	for _, n := range []string{"ProtoVersion", "SchemaVersion"} {
		if c, isConst := pkg.Scope().Lookup(n).(*types.Const); isConst {
			return n, c.Val().ExactString(), c.Pos(), true
		}
	}
	return "", "", token.NoPos, false
}

// wireSnapshotLines renders the tagged field set of every serialized
// struct, in file/declaration/field order (JSON output order is field
// order, so order changes are drift too). Lines look like:
//
//	Reply.Kind json=kind,omitempty type=string
func wireSnapshotLines(files []*ast.File, info *types.Info) []string {
	var lines []string
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			serialized := false
			for _, field := range st.Fields.List {
				if _, present, _ := jsonTag(field); present {
					serialized = true
					break
				}
			}
			if !serialized {
				return true
			}
			for _, field := range st.Fields.List {
				name, present, raw := jsonTag(field)
				if !present || name == "-" {
					continue
				}
				typ := "?"
				if t := info.TypeOf(field.Type); t != nil {
					typ = t.String()
				}
				for _, id := range field.Names {
					if !id.IsExported() {
						continue
					}
					lines = append(lines, fmt.Sprintf("%s.%s json=%s type=%s", ts.Name.Name, id.Name, raw, typ))
				}
			}
			return true
		})
	}
	return lines
}

// WireSnapshot renders a package's golden wire snapshot ("version N"
// header plus one line per serialized field). ok is false when the
// package declares no wire version const and needs no golden.
func WireSnapshot(pkg *Package) (string, bool) {
	_, value, _, ok := wireVersionOf(pkg.Types)
	if !ok {
		return "", false
	}
	return renderWireSnapshot(value, wireSnapshotLines(pkg.Files, pkg.Info)), true
}

func renderWireSnapshot(version string, lines []string) string {
	return "version " + version + "\n" + strings.Join(lines, "\n") + "\n"
}

// WireGoldenPath is where a package's golden snapshot lives.
func WireGoldenPath(goldenDir, pkgPath string) string {
	return filepath.Join(goldenDir, path.Base(pkgPath)+".golden")
}

// checkWireGolden compares the package's current wire snapshot against
// its committed golden, reporting at the version const so the finding
// points at the thing to bump.
func checkWireGolden(pass *Pass) {
	vname, value, vpos, ok := wireVersionOf(pass.Pkg)
	if !ok {
		return
	}
	goldenFile := WireGoldenPath(pass.GoldenDir, pass.Path)
	data, err := os.ReadFile(goldenFile)
	if err != nil {
		pass.Reportf(vpos, "no wire golden for this package: run `make wire-golden` and commit %s", path.Base(goldenFile))
		return
	}
	golden := string(data)
	current := renderWireSnapshot(value, wireSnapshotLines(pass.Files, pass.Info))
	if current == golden {
		return
	}
	goldenVersion := ""
	if first, _, found := strings.Cut(golden, "\n"); found {
		goldenVersion = strings.TrimPrefix(first, "version ")
	}
	if goldenVersion == value {
		pass.Reportf(vpos, "wire field set changed without a %s bump: bump it and run `make wire-golden`", vname)
		return
	}
	pass.Reportf(vpos, "%s changed (%s -> %s) but the golden is stale: run `make wire-golden` and commit it", vname, goldenVersion, value)
}
