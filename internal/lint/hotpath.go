package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc enforces the PR 6 zero-allocation contract on annotated
// hot-path functions. A function marked //lint:hotpath must not contain
// allocation sites (make/new, growing append, composite literals,
// escaping closures, string building, interface boxing, goroutine
// spawns, map inserts) and may only call other hotpath functions, a
// small allocation-free allowlist, or //lint:coldpath exits (whose whole
// argument subtree — typically a panic message — is exempt). Annotating
// an interface method extends the contract to every implementing type.
var HotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "//lint:hotpath functions must be allocation-free and only call hotpath/allowlisted code",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) {
	if !pass.InDirs("internal") {
		return
	}
	for _, pos := range pass.Orphans {
		pass.Reportf(pos, "hotpath/coldpath directive attaches to no function or interface method")
	}
	checkHotContracts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			if pass.Facts.FuncFact(pass.Info.Defs[d.Name]) != FactHot {
				continue
			}
			checkHotBody(pass, d)
		}
	}
}

// checkHotContracts enforces interface annotation contracts: every
// concrete type in this package implementing an interface with
// //lint:hotpath methods must annotate the corresponding methods, which
// is how nn.Layer/nn.Fabric pull every layer, fabric and out-of-package
// module (e.g. models.Fire) into enforcement without a registry.
func checkHotContracts(pass *Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(named)
		for _, hi := range pass.Facts.ifaces {
			if !types.Implements(ptr, hi.typ) && !types.Implements(named, hi.typ) {
				continue
			}
			for _, abs := range hi.methods {
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, abs.Pkg(), abs.Name())
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() != pass.Pkg {
					// Promoted from another (already-checked) package, e.g.
					// an embedded annotated type — nothing to report here.
					continue
				}
				if pass.Facts.FuncFact(fn) != FactHot {
					pass.Reportf(fn.Pos(), "%s.%s implements %s.%s (//lint:hotpath) but is not annotated //lint:hotpath",
						name, fn.Name(), hi.name, abs.Name())
				}
			}
		}
	}
}

// checkHotBody walks one annotated function body and reports every
// allocation site and unverifiable call.
func checkHotBody(pass *Pass, d *ast.FuncDecl) {
	guards := capGuards(pass, d.Body)
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(pass, n)
			if isBuiltin(obj, "panic") || pass.Facts.FuncFact(obj) == FactCold {
				// A terminating path: its argument subtree (panic message
				// formatting, error construction) runs at most once per
				// process and is exempt by design.
				return false
			}
			checkHotCall(pass, n, obj, guards)
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "hot path allocates: composite literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path allocates: address of composite literal")
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path allocates: closure (may escape; hoist to a named function)")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path spawns a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) {
				pass.Reportf(n.Pos(), "hot path allocates: string concatenation")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := pass.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						pass.Reportf(ix.Pos(), "hot path assigns through a map index (may allocate on insert)")
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if _, isMap := pass.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					pass.Reportf(ix.Pos(), "hot path assigns through a map index (may allocate on insert)")
				}
			}
		}
		return true
	})
}

// capGuards returns the body spans of if-statements whose condition
// reads cap() or len(): a make inside such a branch is the sanctioned
// grow-once idiom (allocate only when the reused buffer is too small),
// which is amortized-free in steady state and exempt.
func capGuards(pass *Pass, body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				obj := calleeObj(pass, call)
				if isBuiltin(obj, "cap") || isBuiltin(obj, "len") {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			spans = append(spans, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return spans
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if s[0] <= pos && pos < s[1] {
			return true
		}
	}
	return false
}

// checkHotCall classifies one call inside a hot body: builtins, type
// conversions, static calls (fact / allowlist check + interface-boxing
// scan of the arguments), and dynamic calls (unverifiable).
func checkHotCall(pass *Pass, call *ast.CallExpr, obj types.Object, guards [][2]token.Pos) {
	if obj == nil {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			checkHotConversion(pass, call)
			return
		}
		pass.Reportf(call.Pos(), "hot path makes a dynamic call (cannot verify allocation-freedom; use //lint:allow with a reason)")
		return
	}
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			if !inSpans(guards, call.Pos()) {
				pass.Reportf(call.Pos(), "hot path allocates: make (cap/len-guarded grow-once is exempt)")
			}
		case "new":
			pass.Reportf(call.Pos(), "hot path allocates: new")
		case "append":
			if !isResetAppend(pass, call) {
				pass.Reportf(call.Pos(), "hot path allocates: append may grow (reusing via append(x[:0], ...) is exempt)")
			}
		}
		return
	case *types.TypeName:
		checkHotConversion(pass, call)
		return
	case *types.Func:
		checkBoxedArgs(pass, call)
		if pass.Facts.FuncFact(obj) == FactHot || isAllocFree(obj) {
			return
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hot path calls fmt.%s: formatting allocates", obj.Name())
			return
		}
		pass.Reportf(call.Pos(), "hot path calls %s which is not //lint:hotpath (annotate it, or //lint:allow with a reason)",
			funcDisplayName(obj))
		return
	default:
		// A *types.Var (func-typed field or local) or anything else.
		checkBoxedArgs(pass, call)
		pass.Reportf(call.Pos(), "hot path calls through a function value (cannot verify allocation-freedom; use //lint:allow with a reason)")
	}
}

// checkHotConversion flags the conversions that allocate: string <->
// byte/rune slices, and conversion to an interface type (boxing).
func checkHotConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := pass.TypeOf(call.Fun)
	if dst == nil {
		return
	}
	src := pass.TypeOf(call.Args[0])
	switch d := dst.Underlying().(type) {
	case *types.Slice:
		if src != nil {
			if _, ok := src.Underlying().(*types.Basic); ok && isStringType(src) {
				pass.Reportf(call.Pos(), "hot path allocates: string-to-slice conversion")
			}
		}
	case *types.Basic:
		if d.Info()&types.IsString != 0 && src != nil {
			if _, ok := src.Underlying().(*types.Slice); ok {
				pass.Reportf(call.Pos(), "hot path allocates: slice-to-string conversion")
			}
		}
	case *types.Interface:
		if boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "hot path allocates: conversion boxes value into interface")
		}
	}
}

// checkBoxedArgs flags arguments whose value must be boxed to satisfy an
// interface-typed parameter (including interface variadics). Non-interface
// variadic calls are not flagged: the argument slice is stack-allocated
// when it does not escape, which the gated benchmarks prove for the
// Workspace.Take-style call sites.
func checkBoxedArgs(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "hot path allocates: argument boxes into interface parameter")
		}
	}
}

// boxes reports whether passing e as an interface value allocates:
// constants, nil, values already of interface type, and pointer-shaped
// values (pointer/chan/map/func/unsafe.Pointer fit in the iface word) do
// not; everything else does.
func boxes(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value != nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// isResetAppend recognizes the sanctioned reuse idiom
// append(x[:0], ...): the destination keeps its backing array, so no
// growth happens once capacity is warm.
func isResetAppend(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || sl.Slice3 {
		return false
	}
	zero := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		tv, ok := pass.Info.Types[e]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	// x[:0] or x[0:0]: length 0 over the existing backing array.
	return zero(sl.High) && (sl.Low == nil || zero(sl.Low))
}

// isAllocFree is the closed allowlist of stdlib calls known not to
// allocate, callable from hot paths without annotation.
func isAllocFree(obj *types.Func) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math":
		return true // pure float kernels
	case "sort":
		switch obj.Name() {
		case "SearchFloat64s", "SearchInts", "SearchStrings":
			return true
		}
	case "runtime":
		return obj.Name() == "GOMAXPROCS"
	case "sync":
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		rt := sig.Recv().Type()
		switch {
		case namedType(rt, "sync", "Pool"):
			return obj.Name() == "Get" || obj.Name() == "Put"
		case namedType(rt, "sync", "Mutex"):
			return obj.Name() == "Lock" || obj.Name() == "Unlock"
		case namedType(rt, "sync", "RWMutex"):
			return obj.Name() == "Lock" || obj.Name() == "Unlock" ||
				obj.Name() == "RLock" || obj.Name() == "RUnlock"
		case namedType(rt, "sync", "WaitGroup"):
			return obj.Name() == "Add" || obj.Name() == "Done" || obj.Name() == "Wait"
		}
	}
	return false
}

// isStringExpr reports whether e is a non-constant string-typed
// expression (constant concatenation folds at compile time).
func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return tv.Type != nil && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// funcDisplayName renders obj as pkg.Func or pkg.Recv.Method.
func funcDisplayName(obj *types.Func) string {
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name
}
