package lint

import "go/ast"

// NoNakedPrint bans fmt.Print/Printf/Println and the print/println
// builtins in internal/ packages. Library code that writes straight to
// stdout interleaves unpredictably with the parallel runner's progress
// stream and cannot be captured per cell; results leave a function as
// return values, and progress lines go through the trainer/runner Logf
// sinks, which the caller multiplexes.
var NoNakedPrint = &Analyzer{
	Name: "no-naked-print",
	Doc:  "fmt.Print*/println are banned in internal/; use Logf sinks or return values",
	Run: func(pass *Pass) {
		if !pass.InDirs("internal") {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObj(pass, call)
				switch {
				case isPkgFunc(obj, "fmt", "Print", "Printf", "Println"):
					pass.Reportf(call.Pos(),
						"fmt.%s writes straight to stdout from library code; route output through a Logf sink or return it", obj.Name())
				case isBuiltin(obj, "print"), isBuiltin(obj, "println"):
					pass.Reportf(call.Pos(),
						"builtin %s writes to stderr with an unstable format; route output through a Logf sink or return it", obj.Name())
				}
				return true
			})
		}
	},
}
