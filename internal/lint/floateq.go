package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// FloatEq flags == and != between floating-point operands, plus switch
// statements over a float tag (the same comparison in disguise). Exact
// float equality breaks silently under any change to accumulation order
// or FMA contraction — precisely what the parallel runner and sharded
// matmul kernels are allowed to vary. Comparisons belong in tolerance
// helpers (a function whose name contains "approx"/"almost"/"within" is
// exempt); intentional exact checks (e.g. the zero-skip fast path) need
// an explicit allow.
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "==/!= on float operands outside tolerance helpers; compare within an epsilon",
	Run: func(pass *Pass) {
		if !pass.InDirs("internal", "cmd") {
			return
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && toleranceHelper(fd.Name.Name) {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.BinaryExpr:
						if n.Op != token.EQL && n.Op != token.NEQ {
							return true
						}
						xt, yt := pass.TypeOf(n.X), pass.TypeOf(n.Y)
						if xt != nil && yt != nil && (isFloat(xt) || isFloat(yt)) {
							pass.Reportf(n.OpPos,
								"%s on float operands: exact equality breaks under reordered accumulation; use a tolerance helper", n.Op)
						}
					case *ast.SwitchStmt:
						if n.Tag != nil {
							if t := pass.TypeOf(n.Tag); t != nil && isFloat(t) {
								pass.Reportf(n.Switch,
									"switch on float value: each case is an exact equality; compare with a tolerance or switch on a derived integer")
							}
						}
					}
					return true
				})
			}
		}
	},
}

// toleranceHelper reports whether a function name marks an approved
// approximate-comparison helper.
func toleranceHelper(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "approx") || strings.Contains(l, "almost") || strings.Contains(l, "within")
}
