package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedError is the errcheck-style rule: a call whose result
// includes an error must not be used as a bare statement (including via
// go/defer) — a dropped error from a checkpoint write or a worker pipe
// turns a crash-safe run into silent corruption. Discarding with
// `_ = f()` is explicit intent and stays legal, as does a verified
// //lint:allow unchecked-error suppression. Methods on bytes.Buffer and
// strings.Builder (documented to never return a non-nil error) and the
// stdout convenience printers fmt.Print/Printf/Println are exempt;
// fmt.Fprint* to a real writer is not.
var UncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "calls returning an error must not discard it silently",
	Run:  runUncheckedError,
}

func runUncheckedError(pass *Pass) {
	if !pass.InDirs("internal") {
		return
	}
	check := func(call *ast.CallExpr) {
		if !returnsError(pass, call) || errcheckExempt(pass, call) {
			return
		}
		name := "call"
		if fn, ok := calleeObj(pass, call).(*types.Func); ok {
			name = funcDisplayName(fn)
		}
		pass.Reportf(call.Pos(), "unchecked error: result of %s is discarded (handle it, or assign to _ to discard explicitly)", name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call)
				}
			case *ast.DeferStmt:
				check(n.Call)
			case *ast.GoStmt:
				check(n.Call)
			}
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// errcheckExempt lists the calls whose error is ignorable by contract.
func errcheckExempt(pass *Pass, call *ast.CallExpr) bool {
	fn, ok := calleeObj(pass, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	return namedType(rt, "bytes", "Buffer") || namedType(rt, "strings", "Builder")
}
