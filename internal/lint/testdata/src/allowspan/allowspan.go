// Package allowspan pins the allow-directive span rules: an allow placed
// above a multi-line statement covers the entire statement, not just the
// next source line. Every violation here is suppressed, so the fixture
// must produce zero findings — including zero stale-allow findings,
// which proves the allows were actually consumed.
package allowspan

import "time"

// Epoch's violations sit on the second and fourth lines of a multi-line
// if statement; one allow above the statement must cover both.
func Epoch(fast bool) int64 {
	var ts int64
	//lint:allow no-wall-clock fixture: one allow covers the whole multi-line statement below
	if fast {
		ts = time.Now().Unix()
	} else {
		ts = time.Now().UnixNano()
	}
	return ts
}

// Record's violations sit inside a multi-line argument list.
func Record() {
	//lint:allow no-wall-clock fixture: multi-line call arguments are covered too
	record(
		time.Now().Unix(),
		time.Now().UnixNano(),
	)
}

func record(a, b int64) {}
