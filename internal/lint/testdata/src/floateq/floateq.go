// Package floateq is the float-eq rule fixture.
package floateq

// BadEq compares floats exactly.
func BadEq(a, b float64) bool {
	return a == b // want "float-eq"
}

// BadNeqZero is still an exact comparison, even against zero.
func BadNeqZero(x float32) bool {
	return x != 0 // want "float-eq"
}

// BadSwitch hides exact equality in each case clause.
func BadSwitch(x float64) string {
	switch x { // want "float-eq"
	case 1.0:
		return "one"
	}
	return "other"
}

// approxEqual is an approved tolerance helper; the exact comparison
// inside only short-circuits the trivially equal case.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < tol
}

// GoodInt is integer equality.
func GoodInt(a, b int) bool {
	return a == b
}

// GoodUse keeps the helper referenced.
func GoodUse() bool {
	return approxEqual(1, 1, 1e-9)
}
