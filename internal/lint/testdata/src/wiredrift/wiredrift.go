// Package dist mimics the real coordinator↔worker protocol package: the
// test overlay mounts it at an import path ending in internal/dist, so
// the wire-stability rule treats it as wire code. Request has grown an
// Extra field that the committed drift golden predates — the field-set
// drift without a ProtoVersion bump the rule must catch — and Sloppy
// collects one of every tag-hygiene violation.
package dist

// ProtoVersion pins the message schema. It is deliberately NOT bumped
// for the Extra field below.
const ProtoVersion = 1

// Request is the protocol message whose field set drifted.
type Request struct {
	Kind  string `json:"kind"`
	Seq   int    `json:"seq"`
	Extra string `json:"extra"`
}

// Sloppy violates every tag-hygiene rule.
type Sloppy struct {
	Kind   string `json:"Kind"` // want "not lowercase snake_case"
	Dup    string `json:"kind_2"`
	Dup2   string `json:"kind_2"` // want "duplicate json tag"
	Bare   int    // want "has no json tag"
	hidden int    `json:"hidden"` // want "json tag on unexported field"
}

var _ = Sloppy{hidden: 0}
