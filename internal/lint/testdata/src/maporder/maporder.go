// Package maporder is the map-order rule fixture.
package maporder

import "fmt"

// BadAppend collects keys in randomized order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "map-order"
		out = append(out, k)
	}
	return out
}

// BadFloatSum accumulates floats in randomized order (float addition is
// not associative).
func BadFloatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "map-order"
		sum += v
	}
	return sum
}

// BadPrint emits one line per entry in randomized order.
func BadPrint(m map[int]int) {
	for k, v := range m { // want "map-order"
		fmt.Println(k, v) // want "no-naked-print"
	}
}

// BadReturn returns whichever key the runtime visits first.
func BadReturn(m map[string]bool) string {
	for k := range m { // want "map-order"
		return k
	}
	return ""
}

// GoodCount is order-insensitive.
func GoodCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// GoodIntSum is exact and commutative, so visit order cannot matter.
func GoodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
