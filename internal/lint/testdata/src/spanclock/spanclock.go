// Package spanclock mimics the obs span layer: a lifecycle-span builder
// whose whole purpose is reading the wall clock. Every sanctioned read
// carries the harness-domain allow (and must produce no finding — stale
// or otherwise), while the one builder method that forgets its allow is
// flagged, pinning that span-style timing code gets no blanket pass.
package spanclock

import "time"

// Span accumulates harness-side wall time for one unit of work.
type Span struct {
	submit   time.Time
	dispatch time.Time
	total    float64
}

// Begin stamps the submission edge — sanctioned, with the allow.
func Begin() *Span {
	return &Span{
		//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
		submit: time.Now(),
	}
}

// Dispatch stamps the dispatch edge — sanctioned, with the allow.
func (s *Span) Dispatch() {
	//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
	s.dispatch = time.Now()
}

// Finish closes the span; both reads sit in one multi-line expression
// covered by a single allow.
func (s *Span) Finish() {
	//lint:allow no-wall-clock harness-domain span timing measures the machine, never the simulation
	s.total = time.Since(s.submit).Seconds() +
		time.Since(s.dispatch).Seconds()
}

// Queue forgot its allow: span-layer code is not exempt by virtue of
// being span-layer code — every read must be individually justified.
func (s *Span) Queue() float64 {
	return time.Since(s.submit).Seconds() // want "no-wall-clock"
}

// Slowest orders spans by total time; the float comparison is ordering
// only, which the allow records.
func Slowest(a, b *Span) *Span {
	if a.total != b.total { //lint:allow float-eq tie-break ordering only; equal totals are interchangeable
		if a.total > b.total {
			return a
		}
		return b
	}
	return a
}
