// Package nakedprint is the no-naked-print rule fixture.
package nakedprint

import (
	"fmt"
	"io"
)

// Bad writes straight to stdout/stderr from library code.
func Bad() {
	fmt.Println("done")       // want "no-naked-print"
	fmt.Printf("x=%d\n", 1)   // want "no-naked-print"
	println("debug leftover") // want "no-naked-print"
}

// GoodSink routes output through an explicit writer.
func GoodSink(w io.Writer) {
	_, _ = fmt.Fprintln(w, "done")
}

// GoodLogf routes output through a caller-supplied sink.
func GoodLogf(logf func(string, ...interface{})) {
	logf("epoch %d", 1)
}
