// Package hotpathuse is the cross-package fact-propagation fixture: it
// imports the real remapd/internal/tensor and remapd/internal/nn packages
// and checks that annotations recorded while those dependencies were
// type-checked are visible here — an annotated kernel is callable, an
// unannotated one is a finding, and the nn.Layer interface contract
// reaches implementations in other packages.
package hotpathuse

import (
	"remapd/internal/nn"
	"remapd/internal/tensor"
)

//lint:hotpath
func gemm(dst, a, b *tensor.Tensor) {
	tensor.MatMulInto(dst, a, b) // silent: cross-package //lint:hotpath fact
}

//lint:hotpath
func gemmAlloc(a, b *tensor.Tensor) *tensor.Tensor {
	return tensor.MatMul(a, b) // want "hot path calls tensor.MatMul which is not //lint:hotpath"
}

// badLayer implements nn.Layer without annotating the hot methods.
type badLayer struct{}

func (badLayer) Name() string { return "bad" }

func (badLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { // want "badLayer.Forward implements nn.Layer.Forward"
	return x
}

func (badLayer) Backward(dy *tensor.Tensor) *tensor.Tensor { // want "badLayer.Backward implements nn.Layer.Backward"
	return dy
}

func (badLayer) Params() []*nn.Param { return nil }

// viewLayer satisfies the contract: annotated, allocation-free methods.
type viewLayer struct{ ws nn.Workspace }

func (l *viewLayer) Name() string { return "view" }

//lint:hotpath
func (l *viewLayer) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	return l.ws.View2D("y", x, 1, x.Len())
}

//lint:hotpath
func (l *viewLayer) Backward(dy *tensor.Tensor) *tensor.Tensor { return dy }

func (l *viewLayer) Params() []*nn.Param { return nil }

var (
	_ nn.Layer = badLayer{}
	_ nn.Layer = (*viewLayer)(nil)
	_          = gemm
	_          = gemmAlloc
)
