// Package globalrand is the no-global-rand rule fixture.
package globalrand

import (
	"math/rand" // want "no-global-rand"
)

// Draw consumes the process-global stream.
func Draw() int {
	return rand.Int()
}
