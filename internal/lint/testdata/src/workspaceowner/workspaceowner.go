// Package workspaceowner is the workspace-owner rule fixture: uses of a
// Take/View2D result after the same key has been retaken are flagged;
// distinct keys and rebinding to the newest take stay silent.
package workspaceowner

import (
	"remapd/internal/nn"
	"remapd/internal/tensor"
)

func useAfterRetake(ws *nn.Workspace) float32 {
	a := ws.Take("a", 4)
	b := ws.Take("a", 4)
	b.Data[0] = 1
	return a.Data[0] // want "use-after-retake: a holds ws.Take"
}

func viewAfterReview(ws *nn.Workspace, src *tensor.Tensor) float32 {
	v := ws.View2D("v", src, 1, src.Len())
	w := ws.View2D("v", src, src.Len(), 1)
	w.Data[0] = 1
	return v.Data[0] // want "use-after-retake: v holds ws.View2D"
}

func distinctKeys(ws *nn.Workspace) float32 {
	a := ws.Take("a", 4)
	b := ws.Take("b", 4)
	b.Data[0] = 1
	return a.Data[0] // silent: different keys own different buffers
}

func rebound(ws *nn.Workspace) float32 {
	a := ws.Take("a", 4)
	a.Data[0] = 2
	a = ws.Take("a", 4)
	return a.Data[0] // silent: a rebinds to the newest take
}
