// Package goroutine is the ctx-goroutine rule fixture (loaded under an
// internal/experiments overlay path so the rule is in scope).
package goroutine

import (
	"context"
	"sync"
)

// Bad launches a goroutine nothing ever joins.
func Bad() {
	go func() {}() // want "ctx-goroutine"
}

// BadNamed launches an uninspectable function and never waits.
func BadNamed(f func()) {
	go f() // want "ctx-goroutine"
}

// GoodWaitGroup joins through a WaitGroup.
func GoodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// GoodNamedWait may launch opaque work because the function waits.
func GoodNamedWait(f func(), wg *sync.WaitGroup) {
	wg.Add(1)
	go f()
	wg.Wait()
}

// GoodCtx exits when the context is cancelled.
func GoodCtx(ctx context.Context, work <-chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-work:
			}
		}
	}()
}
