// Package allowok is the suppression fixture: a working allow, a stale
// allow, and a malformed allow.
package allowok

import "time"

// Timing has two clock reads; the allow suppresses exactly the first.
func Timing() (time.Time, time.Time) {
	//lint:allow no-wall-clock fixture: operator-facing progress display
	a := time.Now()
	b := time.Now() // want "no-wall-clock"
	return a, b
}

//lint:allow map-order nothing on the next line ranges a map // want "stale-allow"

//lint:allow bogus-rule no such rule exists // want "stale-allow"

//lint:allow float-eq // want "stale-allow"
