// Package wallclock is the no-wall-clock rule fixture.
package wallclock

import "time"

// Progress reads the clock twice; both reads are findings.
func Progress() string {
	start := time.Now()               // want "no-wall-clock"
	return time.Since(start).String() // want "no-wall-clock"
}

// Remaining uses time.Until, the third banned reader.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "no-wall-clock"
}

// Timeout only uses duration constants and arithmetic — allowed.
func Timeout() time.Duration {
	return 5 * time.Second
}
