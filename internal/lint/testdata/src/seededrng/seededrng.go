// Package seededrng is the seeded-rng rule fixture.
package seededrng

import "remapd/internal/tensor"

const defaultSeed = 7

// BadLiteral hard-wires one stream.
func BadLiteral() *tensor.RNG {
	return tensor.NewRNG(42) // want "seeded-rng"
}

// BadNamedConst is the same hazard behind a name.
func BadNamedConst() *tensor.RNG {
	return tensor.NewRNG(defaultSeed) // want "seeded-rng"
}

// GoodFlow derives the seed from data the caller controls.
func GoodFlow(seed uint64) *tensor.RNG {
	return tensor.NewRNG(seed ^ 0x9e3779b97f4a7c15)
}

// GoodSplit derives a child stream from a parent generator.
func GoodSplit(parent *tensor.RNG) *tensor.RNG {
	return tensor.NewRNG(parent.Uint64())
}
