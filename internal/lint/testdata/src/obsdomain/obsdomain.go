// Package obsdomain mimics internal/obs, pinning the telemetry domain
// split the analyzers enforce there: simulation-domain code must stay
// clock-free and sink-routed, while harness-domain profiling may read the
// clock only under an explicit, justified allow.
package obsdomain

import (
	"fmt"
	"time"
)

// SimStamp is simulation-domain telemetry: stamping an event with wall
// clock would break replay determinism, so the bare read is a finding.
func SimStamp() int64 {
	return time.Now().UnixNano() // want "no-wall-clock"
}

// SimDump leaks telemetry to stdout from library code instead of a sink.
func SimDump(name string, v float64) {
	fmt.Printf("%s=%v\n", name, v) // want "no-naked-print"
}

// HarnessPhase is harness-domain profiling: the clock reads are the point,
// and each carries the justification the analyzer demands.
func HarnessPhase() func() float64 {
	//lint:allow no-wall-clock harness-domain profiling measures the machine, never the simulation
	start := time.Now()
	return func() float64 {
		//lint:allow no-wall-clock harness-domain profiling measures the machine, never the simulation
		return time.Since(start).Seconds()
	}
}

// SinkRouted is the sanctioned shape: telemetry flows through an explicit
// recorder callback, not a global stream.
func SinkRouted(record func(string, float64), v float64) {
	record("train.loss", v)
}
