// Package uncheckederr is the unchecked-error rule fixture: error
// results silently dropped by expression, defer and go statements are
// flagged; explicit discards and the by-contract-infallible writers
// (strings.Builder, bytes.Buffer, fmt.Print*) stay silent.
package uncheckederr

import (
	"bytes"
	"io"
	"os"
	"strings"
)

// Close drops the close error on the floor.
func Close(f *os.File) {
	f.Close() // want "unchecked error: result of os.File.Close is discarded"
}

// CloseDeferred drops it behind a defer.
func CloseDeferred(f *os.File) {
	defer f.Close() // want "unchecked error: result of os.File.Close is discarded"
}

// CloseAsync drops it on a goroutine.
func CloseAsync(f *os.File) {
	go f.Close() // want "unchecked error: result of os.File.Close is discarded"
}

// Write drops an (n, error) result tuple.
func Write(w io.Writer, p []byte) {
	w.Write(p) // want "unchecked error: result of"
}

// CloseChecked propagates the error.
func CloseChecked(f *os.File) error { return f.Close() }

// CloseDiscard discards it explicitly, which is legal.
func CloseDiscard(f *os.File) { _ = f.Close() }

// Build writes through strings.Builder, whose error is nil by contract.
func Build(sb *strings.Builder) { sb.WriteString("x") }

// Buffer writes through bytes.Buffer, also infallible by contract.
func Buffer(b *bytes.Buffer, p []byte) { b.Write(p) }
