// Package hotpathalloc is the hotpath-alloc rule fixture: one annotated
// function per allocation class the rule recognises, plus the sanctioned
// idioms (cap-guarded grow-once, reset-append, allowlisted stdlib,
// coldpath exits) that must stay silent.
package hotpathalloc

import (
	"fmt"
	"math"
	"sync"
)

// state is the reused scratch the good paths grow once.
type state struct {
	buf []float32
	m   map[string]int
	mu  sync.Mutex
}

//lint:hotpath
func allocMake(n int) []int {
	return make([]int, n) // want "hot path allocates: make"
}

//lint:hotpath
func allocNew() *int {
	return new(int) // want "hot path allocates: new"
}

//lint:hotpath
func allocAppend(xs []int, v int) []int {
	return append(xs, v) // want "hot path allocates: append may grow"
}

//lint:hotpath
func allocLiteral() []int {
	return []int{1, 2} // want "hot path allocates: composite literal"
}

//lint:hotpath
func allocAddr() *state {
	return &state{} // want "hot path allocates: address of composite literal"
}

//lint:hotpath
func allocClosure(n int) func() int {
	return func() int { return n } // want "hot path allocates: closure"
}

//lint:hotpath
func spawns() {
	go hotHelper() // want "hot path spawns a goroutine"
}

//lint:hotpath
func concat(a, b string) string {
	return a + b // want "hot path allocates: string concatenation"
}

//lint:hotpath
func strToBytes(s string) []byte {
	return []byte(s) // want "hot path allocates: string-to-slice conversion"
}

//lint:hotpath
func bytesToStr(b []byte) string {
	return string(b) // want "hot path allocates: slice-to-string conversion"
}

//lint:hotpath
func boxConvert(v int) any {
	return any(v) // want "hot path allocates: conversion boxes value into interface"
}

//lint:hotpath
func boxArg(v int) {
	hotSink(v) // want "hot path allocates: argument boxes into interface parameter"
}

//lint:hotpath
func mapInsert(s *state, k string) {
	s.m[k] = 1 // want "hot path assigns through a map index"
}

//lint:hotpath
func mapInc(s *state, k string) {
	s.m[k]++ // want "hot path assigns through a map index"
}

//lint:hotpath
func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want "hot path calls fmt.Sprintf: formatting allocates" // want "hot path allocates: argument boxes into interface parameter"
}

//lint:hotpath
func callsUnannotated() {
	helper() // want "hot path calls hotpathalloc.helper which is not //lint:hotpath"
}

//lint:hotpath
func dynamicCall(f func()) {
	f() // want "hot path calls through a function value"
}

// Kernel's hot method puts every implementing type under contract.
type Kernel interface {
	//lint:hotpath
	Run(n int)
}

type badImpl struct{}

func (badImpl) Run(n int) {} // want "badImpl.Run implements hotpathalloc.Kernel"

type goodImpl struct{}

//lint:hotpath
func (goodImpl) Run(n int) {}

//lint:hotpath orphan: attaches to a var, not a function // want "directive attaches to no function or interface method"
var orphaned = 1

// ---- sanctioned idioms: everything below must stay silent ----

//lint:hotpath
func hotHelper() {}

//lint:hotpath
func hotSink(v any) {}

func helper() {}

//lint:coldpath panic helper, runs at most once per process
func fail(msg string) {
	panic("hotpathalloc: " + msg)
}

//lint:hotpath
func growOnce(s *state, n int) []float32 {
	if cap(s.buf) < n {
		s.buf = make([]float32, n)
	}
	s.buf = s.buf[:n]
	return s.buf
}

//lint:hotpath
func resetAppend(s *state, xs []float32) {
	s.buf = append(s.buf[:0], xs...)
}

//lint:hotpath
func locked(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

//lint:hotpath
func mathCall(x float64) float64 {
	return math.Sqrt(x)
}

//lint:hotpath
func coldExit(n int) {
	if n < 0 {
		fail("negative") // coldpath call: exempt
	}
}

//lint:hotpath
func panicFmt(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic subtree: exempt
	}
}

var _ = []any{
	allocMake, allocNew, allocAppend, allocLiteral, allocAddr, allocClosure,
	spawns, concat, strToBytes, bytesToStr, boxConvert, boxArg, mapInsert,
	mapInc, format, callsUnannotated, dynamicCall, growOnce, resetAppend,
	locked, mathCall, coldExit, panicFmt, orphaned,
}
