package lint

import "go/ast"

// NoWallClock forbids reading the host clock in simulation and experiment
// code. A cell's result must depend only on its grid coordinates; a
// time.Now that leaks into control flow (timeouts, "has it been long
// enough" checks, seeds) silently couples results to machine load. The
// only legitimate uses are operator-facing progress/elapsed displays,
// which must carry an explicit //lint:allow so reviewers see each one.
var NoWallClock = &Analyzer{
	Name: "no-wall-clock",
	Doc:  "time.Now/Since/Until are forbidden in internal/ and cmd/; simulation state must not depend on the host clock",
	Run: func(pass *Pass) {
		if !pass.InDirs("internal", "cmd") {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if isPkgFunc(obj, "time", "Now", "Since", "Until") {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; cell results must depend only on their coordinates (progress timing needs an explicit allow)",
						obj.Name())
				}
				return true
			})
		}
	},
}
