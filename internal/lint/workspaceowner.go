package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// WorkspaceOwner guards the single-owner convention of nn.Workspace
// scratch buffers: Take/View2D/View return the latest buffer for a key,
// and a second call with the same key on the same workspace hands out
// the same backing memory — so a binding from an earlier call must not
// be used after a later call retakes the key (use-after-retake), the
// exact aliasing bug class the PR 6 workspace convention invites.
//
// The analysis is flow-insensitive but position-aware within one
// function body: a use of binding B is flagged when some other take of
// B's (workspace, key) pair appears textually between B's assignment and
// the use. Loops that take in one iteration and use in the next are the
// documented gap; in this codebase every Forward/Backward takes all its
// buffers up front, which this rule locks in.
var WorkspaceOwner = &Analyzer{
	Name: "workspace-owner",
	Doc:  "a Workspace.Take/View2D/View result must not be used after a later take of the same key",
	Run:  runWorkspaceOwner,
}

// wsTake is one Take/View2D/View call inside a function body.
type wsTake struct {
	method  string    // "Take", "View2D", "View"
	recv    string    // canonical receiver expression, e.g. "c.ws"
	key     string    // constant string key argument
	callPos token.Pos // call start (identity)
	callEnd token.Pos // call end
	binding string    // canonical LHS expression, "" when unbound
	bindEnd token.Pos // end of the binding assignment
}

func runWorkspaceOwner(pass *Pass) {
	if !pass.InDirs("internal") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			checkWorkspaceBody(pass, d.Body)
		}
	}
}

func checkWorkspaceBody(pass *Pass, body *ast.BlockStmt) {
	takes := collectTakes(pass, body)
	if len(takes) < 2 {
		return
	}
	bound := map[string]bool{}
	for _, t := range takes {
		if t.binding != "" {
			bound[t.binding] = true
		}
	}
	if len(bound) == 0 {
		return
	}
	// Positions that are assignment targets (the whole LHS expression):
	// writing a new value into the name is a rebind, not a buffer use.
	lhsPos := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				lhsPos[l.Pos()] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		name := exprString(e)
		if !bound[name] || lhsPos[e.Pos()] {
			return true
		}
		checkUse(pass, takes, name, e.Pos())
		// A matched SelectorExpr's children are its receiver path ("c" of
		// "c.cols"), never themselves bound names — descending is safe.
		return true
	})
}

// checkUse flags the use at pos if the latest binding of name before pos
// has been retaken by an intervening take of the same (workspace, key).
func checkUse(pass *Pass, takes []wsTake, name string, pos token.Pos) {
	var b *wsTake
	for i := range takes {
		t := &takes[i]
		if t.binding == name && t.bindEnd < pos && (b == nil || t.bindEnd > b.bindEnd) {
			b = t
		}
	}
	if b == nil {
		return
	}
	for i := range takes {
		t := &takes[i]
		if t.callPos == b.callPos || t.recv != b.recv || t.key != b.key {
			continue
		}
		if t.callEnd > b.bindEnd && t.callEnd < pos {
			pass.Reportf(pos, "use-after-retake: %s holds %s.%s(%q) but a later %s(%q) retook that buffer",
				name, b.recv, b.method, b.key, t.method, t.key)
			return
		}
	}
}

// collectTakes finds every Workspace Take/View2D/View call in the body,
// in source order, with its binding when the call is the sole RHS of an
// assignment.
func collectTakes(pass *Pass, body *ast.BlockStmt) []wsTake {
	var takes []wsTake
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Take", "View2D", "View":
		default:
			return true
		}
		if !isWorkspaceType(pass.TypeOf(sel.X)) || len(call.Args) == 0 {
			return true
		}
		tv, ok := pass.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true // dynamic key: out of scope
		}
		takes = append(takes, wsTake{
			method:  sel.Sel.Name,
			recv:    exprString(sel.X),
			key:     constant.StringVal(tv.Value),
			callPos: call.Pos(),
			callEnd: call.End(),
		})
		return true
	})
	// Attach bindings: y := ws.Take(...) style single assignments.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		for i := range takes {
			if takes[i].callPos == call.Pos() {
				takes[i].binding = exprString(as.Lhs[0])
				takes[i].bindEnd = as.End()
			}
		}
		return true
	})
	return takes
}

// isWorkspaceType reports whether t is nn.Workspace (or a pointer to it),
// matched by module-relative path so fixture overlays are covered too.
func isWorkspaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/nn") && obj.Name() == "Workspace"
}
