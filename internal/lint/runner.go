package lint

import (
	"runtime"
	"sync"
)

// Runner analyzes many packages with a bounded worker pool. Loading
// (parse + type-check) stays serial — it mutates the loader's memo
// tables and the shared fact table — but analysis is read-only over
// immutable packages (FileSet positions are safe concurrently, type
// queries are pure), so the rule passes fan out across packages. This
// is what keeps `make lint` inside its CI wall-clock budget now that
// the suite runs eleven rules, several of them whole-package walks.
type Runner struct {
	Loader *Loader
	// Jobs bounds analysis concurrency; <= 0 means GOMAXPROCS.
	Jobs int
}

// Run loads every path and returns the merged, sorted findings.
func (r *Runner) Run(paths []string) ([]Finding, error) {
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := r.Loader.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(pkgs) {
		jobs = len(pkgs)
	}
	perPkg := make([][]Finding, len(pkgs))
	if jobs <= 1 {
		for i, pkg := range pkgs {
			perPkg[i] = RunPackage(pkg)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					perPkg[i] = RunPackage(pkgs[i])
				}
			}()
		}
		for i := range pkgs {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	SortFindings(findings)
	return findings, nil
}
