package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body is order-sensitive: it
// appends to a slice, accumulates floating-point values (float addition
// is not associative, so the sum depends on visit order), writes output,
// or returns a value derived inside the loop. Go randomizes map iteration
// order per run, so each of these turns into run-to-run noise — the exact
// nondeterminism class that previously lurked in remap.RemapT.rebuild and
// nn.LoadTensors. The fix is to iterate det.SortedKeys(m); package det is
// the one sanctioned range-and-append site.
var MapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "range over a map with an order-sensitive body (append/float accumulation/output/return); iterate det.SortedKeys instead",
	Run: func(pass *Pass) {
		if !pass.InDirs("internal", "cmd") || pathHasSuffix(pass.Path, "internal/det") {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if why := orderSensitive(pass, rng.Body); why != "" {
					pass.Reportf(rng.Pos(),
						"range over map %s %s — iteration order is randomized; loop over det.SortedKeys instead",
						exprString(rng.X), why)
				}
				return true
			})
		}
	},
}

// orderSensitive scans a range body for the operations whose result
// depends on visit order, returning a description of the first one found.
func orderSensitive(pass *Pass, body *ast.BlockStmt) string {
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(pass, n)
			if isBuiltin(obj, "append") {
				why = "appends to a slice"
			} else if isBuiltin(obj, "print") || isBuiltin(obj, "println") {
				why = "writes output"
			} else if isPkgFunc(obj, "fmt", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln") {
				why = "writes output"
			} else if sel, ok := n.Fun.(*ast.SelectorExpr); ok && obj != nil &&
				strings.HasPrefix(sel.Sel.Name, "Write") && obj.Pkg() != nil {
				why = "writes output"
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && pass.TypeOf(n.Lhs[0]) != nil && isFloat(pass.TypeOf(n.Lhs[0])) {
					why = "accumulates floats (float addition is order-dependent)"
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				why = "returns a value chosen by iteration order"
			}
		}
		return why == ""
	})
	return why
}

// exprString renders a short description of the ranged expression.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expression"
	}
}
