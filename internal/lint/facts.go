package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Cross-function facts.
//
// The hot-path rules need to reason across function and package
// boundaries: a call from an annotated GEMM driver in internal/nn into a
// kernel in internal/tensor is only allocation-safe if the kernel itself
// is annotated and checked. The loader therefore extracts annotation
// facts from every package *as it is type-checked* and stores them keyed
// by types.Object in one shared Facts table. Because dependencies always
// load through the same memoized loader, a fact exported by
// internal/tensor is visible — for free — when internal/nn or
// internal/trainer is analyzed: that is the whole cross-package
// propagation mechanism, no separate export files needed.
//
// The annotation grammar is one directive comment in a declaration's doc
// (or trailing same-line comment):
//
//	//lint:hotpath [note]   — the function must not allocate, and may
//	                          only call other hotpath functions (or the
//	                          small allocation-free allowlist)
//	//lint:coldpath [note]  — the function is a sanctioned exit from a
//	                          hot path (panic helpers, error paths);
//	                          calls to it are exempt and its entire
//	                          argument subtree is skipped
//
// Both attach to function/method declarations and to interface method
// fields. Annotating an interface method creates a contract: every
// concrete type implementing the interface must annotate the
// corresponding method (checked by hotpath-alloc), which is how the
// nn.Layer/nn.Fabric annotations pull Conv2D, the ReRAM Chip and the
// SqueezeNet Fire module into enforcement without listing them anywhere.

// FuncFact is the hot/cold classification of one function object.
type FuncFact uint8

// Function classifications.
const (
	FactNone FuncFact = iota
	FactHot           // //lint:hotpath — body checked, callable from hot code
	FactCold          // //lint:coldpath — terminating path, calls exempt
)

const (
	hotDirective  = "//lint:hotpath"
	coldDirective = "//lint:coldpath"
)

// hotIface is one interface with at least one //lint:hotpath method; the
// hotpath-alloc rule enforces the annotation contract on every
// implementing type.
type hotIface struct {
	name    string // qualified display name, e.g. "nn.Layer"
	typ     *types.Interface
	methods []*types.Func // the annotated (abstract) methods
}

// Facts is the cross-package annotation table shared by every package a
// loader touches. It is written only during Loader.Load (which is
// serial) and read-only during analysis, so parallel package analysis
// needs no locking.
type Facts struct {
	funcs  map[types.Object]FuncFact
	ifaces []hotIface
}

func newFacts() *Facts {
	return &Facts{funcs: map[types.Object]FuncFact{}}
}

// FuncFact returns the classification recorded for a function or
// interface-method object (FactNone when unannotated).
func (f *Facts) FuncFact(obj types.Object) FuncFact {
	if f == nil || obj == nil {
		return FactNone
	}
	return f.funcs[obj]
}

// directiveOf classifies one comment, returning FactNone for comments
// that are not hot/cold directives. The directive must be the comment's
// first token; anything after it is a free-form note.
func directiveOf(c *ast.Comment) FuncFact {
	switch {
	case c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" "):
		return FactHot
	case c.Text == coldDirective || strings.HasPrefix(c.Text, coldDirective+" "):
		return FactCold
	}
	return FactNone
}

// groupDirective scans a comment group for a hot/cold directive.
func groupDirective(groups ...*ast.CommentGroup) (FuncFact, token.Pos) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if fact := directiveOf(c); fact != FactNone {
				return fact, c.Pos()
			}
		}
	}
	return FactNone, token.NoPos
}

// addPackage extracts the package's annotation facts into the table and
// returns the positions of orphaned directives — hot/cold comments that
// are not attached to a function declaration or interface method, which
// the hotpath-alloc rule reports (an annotation that binds to nothing
// enforces nothing).
func (f *Facts) addPackage(pkg *Package) []token.Pos {
	attached := map[token.Pos]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fact, pos := groupDirective(d.Doc)
				if fact == FactNone {
					continue
				}
				attached[pos] = true
				if obj := pkg.Info.Defs[d.Name]; obj != nil {
					f.funcs[obj] = fact
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					f.addInterface(pkg, ts, it, attached)
				}
			}
		}
	}
	var orphans []token.Pos
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if directiveOf(c) != FactNone && !attached[c.Pos()] {
					orphans = append(orphans, c.Pos())
				}
			}
		}
	}
	return orphans
}

// addInterface records hot/cold facts on an interface's method fields
// and, if any method is hot, registers the interface for the
// implementation-contract check.
func (f *Facts) addInterface(pkg *Package, ts *ast.TypeSpec, it *ast.InterfaceType, attached map[token.Pos]bool) {
	var hot []*types.Func
	for _, field := range it.Methods.List {
		if len(field.Names) != 1 {
			continue // embedded interface, no directive target
		}
		fact, pos := groupDirective(field.Doc, field.Comment)
		if fact == FactNone {
			continue
		}
		attached[pos] = true
		obj, ok := pkg.Info.Defs[field.Names[0]].(*types.Func)
		if !ok {
			continue
		}
		f.funcs[obj] = fact
		if fact == FactHot {
			hot = append(hot, obj)
		}
	}
	if len(hot) == 0 {
		return
	}
	tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	f.ifaces = append(f.ifaces, hotIface{
		name:    pkg.Types.Name() + "." + ts.Name.Name,
		typ:     iface,
		methods: hot,
	})
}
