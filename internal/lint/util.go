package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeObj resolves a call expression to the object it invokes (a
// function, method, or builtin), or nil when the callee is dynamic.
func calleeObj(pass *Pass, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fn]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the named function of the package with
// the given import path.
func isPkgFunc(obj types.Object, pkgPath string, names ...string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// isBuiltin reports whether obj is the named universe builtin.
func isBuiltin(obj types.Object, name string) bool {
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == name
}

// isFloat reports whether t's underlying type is a floating-point kind
// (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedType reports whether t is the named type pkgPath.name, looking
// through one level of pointer.
func namedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// pathHasSuffix reports whether the package import path ends with the
// given module-relative suffix (e.g. "internal/tensor"), so rules stay
// correct under overlay paths used by the fixture tests.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
