package lint

import "go/ast"

// CtxGoroutine requires that goroutines launched in internal/experiments
// and internal/trainer are joined: either the goroutine participates in a
// sync.WaitGroup, or it selects on a context's Done channel, or the
// launching function waits on a WaitGroup. A fire-and-forget goroutine in
// the experiment path outlives its cell — it can write a result after the
// runner has reassembled rows, race the next cell's state, or leak past a
// SIGINT cancellation, all of which break the "a cell's result depends
// only on its coordinates" contract.
var CtxGoroutine = &Analyzer{
	Name: "ctx-goroutine",
	Doc:  "goroutines in internal/experiments and internal/trainer must be joined via sync.WaitGroup or select on a context",
	Run: func(pass *Pass) {
		if !pass.InDirs("internal/experiments", "internal/trainer") {
			return
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				waits := funcWaits(pass, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if waits || goroutineJoined(pass, g) {
						return true
					}
					pass.Reportf(g.Pos(),
						"goroutine is never joined: wire it to a sync.WaitGroup or select on a context so it cannot outlive its cell")
					return true
				})
			}
		}
	},
}

// funcWaits reports whether the function body calls (*sync.WaitGroup).Wait.
func funcWaits(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" &&
			namedType(pass.TypeOf(sel.X), "sync", "WaitGroup") {
			found = true
		}
		return !found
	})
	return found
}

// goroutineJoined reports whether the go statement's function literal body
// references a sync.WaitGroup (Done/Add on a captured group) or receives
// from a context's Done channel. A call to a named function cannot be
// inspected, so it only passes via the launching function's Wait.
func goroutineJoined(pass *Pass, g *ast.GoStmt) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && namedType(obj.Type(), "sync", "WaitGroup") {
				joined = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" &&
				namedType(pass.TypeOf(sel.X), "context", "Context") {
				joined = true
			}
		}
		return !joined
	})
	return joined
}
