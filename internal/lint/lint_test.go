package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"remapd/internal/lint"
)

// fixturePaths maps each testdata/src fixture directory to the import
// path it is loaded under. The paths matter: rules scope themselves by
// package path, so fixtures must look like the code they stand in for
// (the ctx-goroutine fixture pretends to live in internal/experiments).
var fixturePaths = map[string]string{
	"wallclock":  "remapd/internal/lintfixture/wallclock",
	"globalrand": "remapd/internal/lintfixture/globalrand",
	"seededrng":  "remapd/internal/lintfixture/seededrng",
	"maporder":   "remapd/internal/lintfixture/maporder",
	"floateq":    "remapd/internal/lintfixture/floateq",
	"nakedprint": "remapd/internal/lintfixture/nakedprint",
	"goroutine":  "remapd/internal/experiments/lintfixture",
	"allowok":    "remapd/internal/lintfixture/allowok",
	"obsdomain":  "remapd/internal/obs/obsfixture",

	"hotpathalloc":   "remapd/internal/lintfixture/hotpathalloc",
	"hotpathuse":     "remapd/internal/lintfixture/hotpathuse",
	"workspaceowner": "remapd/internal/lintfixture/workspaceowner",
	"uncheckederr":   "remapd/internal/lintfixture/uncheckederr",
	"allowspan":      "remapd/internal/lintfixture/allowspan",
	"spanclock":      "remapd/internal/obs/spanfixture",
}

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader builds one loader for every test so the standard library
// and module dependencies type-check once per process.
func sharedLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = lint.NewLoader(".")
		if loaderErr != nil {
			return
		}
		loader.Overlay = map[string]string{}
		for fixture, asPath := range fixturePaths {
			abs, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
			if err != nil {
				loaderErr = err
				return
			}
			loader.Overlay[asPath] = abs
		}
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

func runFixture(t *testing.T, fixture string) []lint.Finding {
	t.Helper()
	pkg, err := sharedLoader(t).Load(fixturePaths[fixture])
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	return lint.RunPackage(pkg)
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// wantsOf parses the fixture's `// want "substr"` expectation comments,
// keyed by file:line.
func wantsOf(t *testing.T, fixture string) map[string][]string {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// checkFixture runs the suite over a fixture and requires an exact match
// between findings and want comments: every finding must match a want on
// its line, and every want must be hit by at least one finding.
func checkFixture(t *testing.T, fixture string) []lint.Finding {
	t.Helper()
	findings := runFixture(t, fixture)
	wants := wantsOf(t, fixture)
	matched := map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		text := "[" + f.Rule + "] " + f.Msg
		ok := false
		for _, w := range wants[key] {
			if strings.Contains(text, w) {
				ok = true
				matched[key+"\x00"+w] = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s: %s", key, text)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[key+"\x00"+w] {
				t.Errorf("missing finding at %s: want %q", key, w)
			}
		}
	}
	return findings
}

// TestRuleFixtures drives each analyzer against a fixture package of
// deliberate violations: each seeded violation must be detected by
// exactly the intended rule, and the non-violating declarations must stay
// silent.
func TestRuleFixtures(t *testing.T) {
	for _, fixture := range []string{
		"wallclock", "globalrand", "seededrng", "maporder", "floateq", "nakedprint", "goroutine",
		"obsdomain", "hotpathalloc", "workspaceowner", "uncheckederr", "spanclock",
	} {
		t.Run(fixture, func(t *testing.T) { checkFixture(t, fixture) })
	}
}

// TestAllowDirectives checks the suppression machinery: a valid allow
// suppresses exactly one finding, and stale or malformed allows are
// findings themselves.
func TestAllowDirectives(t *testing.T) {
	findings := checkFixture(t, "allowok")
	clock, stale := 0, 0
	for _, f := range findings {
		switch f.Rule {
		case "no-wall-clock":
			clock++
		case "stale-allow":
			stale++
		}
	}
	// Two time.Now calls, one allow: exactly one must survive.
	if clock != 1 {
		t.Errorf("no-wall-clock findings = %d, want exactly 1 (the allow must suppress exactly one)", clock)
	}
	if stale != 3 {
		t.Errorf("stale-allow findings = %d, want 3 (stale, unknown rule, missing reason)", stale)
	}
}

// TestAllowSpanMultiline pins the allow-directive span rules: one allow
// above a multi-line statement covers every line of the statement, and a
// fully-consumed allow is not reported stale. The fixture seeds four
// wall-clock violations across two multi-line statements, each preceded
// by a single allow — anything surfacing (violation or stale-allow) is a
// regression.
func TestAllowSpanMultiline(t *testing.T) {
	if findings := checkFixture(t, "allowspan"); len(findings) != 0 {
		t.Errorf("allowspan fixture produced %d finding(s), want 0", len(findings))
	}
}

// TestCrossPackageFactPropagation pins the fact-export mechanism: hotpath
// annotations recorded while type-checking the real internal/tensor and
// internal/nn packages must be visible when a package importing them is
// analyzed — annotated kernels callable, unannotated ones findings, and
// the nn.Layer interface contract enforced on out-of-package types.
func TestCrossPackageFactPropagation(t *testing.T) {
	findings := checkFixture(t, "hotpathuse")
	hitMatMul := false
	for _, f := range findings {
		if f.Rule == "hotpath-alloc" && strings.Contains(f.Msg, "tensor.MatMul ") {
			hitMatMul = true
		}
		if strings.Contains(f.Msg, "tensor.MatMulInto") {
			t.Errorf("annotated cross-package callee flagged: %s", f.Msg)
		}
	}
	if !hitMatMul {
		t.Error("unannotated cross-package callee tensor.MatMul not flagged")
	}
}

// TestWireDrift drives the wire-stability golden check through its three
// failure modes with a fixture package mounted at an import path ending
// in internal/dist: field-set drift at an unchanged version, a version
// bump with a stale golden, and a missing golden. The committed drift
// golden predates the fixture's Extra field on purpose.
func TestWireDrift(t *testing.T) {
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(filepath.Join("testdata", "src", "wiredrift"))
	if err != nil {
		t.Fatal(err)
	}
	l.Overlay = map[string]string{"remapd/wirefixture/internal/dist": abs}
	driftDir, err := filepath.Abs(filepath.Join("testdata", "wire-drift"))
	if err != nil {
		t.Fatal(err)
	}
	l.WireGoldenDir = driftDir
	pkg, err := l.Load("remapd/wirefixture/internal/dist")
	if err != nil {
		t.Fatal(err)
	}

	requireFinding := func(t *testing.T, findings []lint.Finding, substr string) {
		t.Helper()
		for _, f := range findings {
			if f.Rule == "wire-stability" && strings.Contains(f.Msg, substr) {
				return
			}
		}
		t.Errorf("no wire-stability finding containing %q in %v", substr, findings)
	}

	findings := lint.RunPackage(pkg)
	requireFinding(t, findings, "wire field set changed without a ProtoVersion bump")
	for _, substr := range []string{
		"not lowercase snake_case",
		"duplicate json tag",
		"has no json tag",
		"json tag on unexported field",
	} {
		requireFinding(t, findings, substr)
	}

	staleDir, err := filepath.Abs(filepath.Join("testdata", "wire-drift-stale"))
	if err != nil {
		t.Fatal(err)
	}
	pkg.GoldenDir = staleDir
	requireFinding(t, lint.RunPackage(pkg), "ProtoVersion changed (0 -> 1) but the golden is stale")

	pkg.GoldenDir = t.TempDir()
	requireFinding(t, lint.RunPackage(pkg), "no wire golden for this package")
}

// TestRepoClean runs the whole suite over the module, mirroring the CI
// gate: the repository itself must be finding-free.
func TestRepoClean(t *testing.T) {
	l := sharedLoader(t)
	paths, err := l.Discover()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		for _, f := range lint.RunPackage(pkg) {
			t.Errorf("%s", f)
		}
	}
}

// TestPatternMatch pins the driver's package-pattern semantics.
func TestPatternMatch(t *testing.T) {
	l := sharedLoader(t)
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"remapd/internal/remap", "./...", true},
		{"remapd", "./...", true},
		{"remapd/internal/remap", "./internal/...", true},
		{"remapd/internal/remap", "./internal/remap", true},
		{"remapd/internal/remap", "./internal/noc", false},
		{"remapd/internal/remap", "remapd/internal/remap", true},
		{"remapd/cmd/remapd-lint", "./internal/...", false},
	}
	for _, c := range cases {
		if got := l.Match(c.path, c.pattern); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}
