// Package lint is the repo's determinism & safety analyzer suite. Every
// result in this reproduction depends on bit-identical replay: a cell of
// the experiment grid must produce the same bytes whether it runs first or
// last, on one worker or sixteen. The analyzers in this package turn the
// conventions that guarantee that — no wall-clock reads in simulation
// code, one seeded RNG, no order-sensitive map iteration, no raw float
// equality, no unjoined goroutines — into machine-checked rules that gate
// CI.
//
// The framework is deliberately self-contained: it is built on stdlib
// go/parser, go/ast and go/types only (no golang.org/x/tools), with the
// standard library imported through go/importer's source mode so the tool
// works in the offline build environment.
//
// Findings print as "file:line:col: [rule] message" and any finding makes
// the driver exit non-zero. A finding can be suppressed with a
//
//	//lint:allow <rule> <reason>
//
// comment on the offending line or the line directly above it. Allows are
// verified: one that suppresses nothing is itself reported (rule
// "stale-allow"), so the allowlist can never rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the rule identifier used in findings and allow comments.
	Name string
	// Doc is a one-line description of what the rule protects.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All is the suite, in the order rules run and are documented.
var All = []*Analyzer{
	NoWallClock,
	NoGlobalRand,
	SeededRNG,
	MapOrder,
	FloatEq,
	NoNakedPrint,
	CtxGoroutine,
	HotpathAlloc,
	WorkspaceOwner,
	WireStability,
	UncheckedError,
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package's import path (e.g. "remapd/internal/remap");
	// rules scope themselves with it.
	Path string
	// Facts is the loader-wide cross-package annotation table.
	Facts *Facts
	// Orphans are unattached hotpath/coldpath directives in this package.
	Orphans []token.Pos
	// GoldenDir is the wire-stability golden field-set directory.
	GoldenDir string

	rule     string
	allows   []*allowDirective
	findings *[]Finding
}

// Reportf records a finding at pos unless an allow directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	for _, a := range p.allows {
		if a.rule == p.rule && a.file == position.Filename &&
			a.from <= position.Line && position.Line <= a.to {
			a.used = true
			return
		}
	}
	*p.findings = append(*p.findings, Finding{Pos: position, Rule: p.rule, Msg: fmt.Sprintf(format, args...)})
}

// TypeOf is a nil-safe shorthand for the pass's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// InDirs reports whether the package lives under any of the given
// module-relative prefixes ("internal", "cmd", "internal/experiments", ...).
func (p *Pass) InDirs(prefixes ...string) bool {
	rel := p.Path
	if i := strings.Index(rel, "/"); i >= 0 {
		rel = rel[i+1:] // strip the module path segment
	} else {
		rel = "" // the module root package
	}
	for _, pre := range prefixes {
		if rel == pre || strings.HasPrefix(rel, pre+"/") {
			return true
		}
	}
	return false
}

// allowDirective is one parsed //lint:allow comment. It suppresses
// findings of its rule reported anywhere in the line span [from, to] of
// its file — the span of the statement (or field/spec) the directive is
// attached to, so a suppressed statement that spans multiple lines is
// covered in full, not just on the directive's own line.
type allowDirective struct {
	file     string
	from, to int
	rule     string
	reason   string
	pos      token.Pos
	used     bool
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every allow directive from the package's comments.
// Malformed directives (no rule, unknown rule, or missing reason) are
// reported immediately under "stale-allow" — a suppression that cannot
// work is as dangerous as one that no longer does.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool, findings *[]Finding) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
				bad := func(msg string) {
					*findings = append(*findings, Finding{Pos: pos, Rule: "stale-allow", Msg: msg})
				}
				if len(fields) == 0 {
					bad("malformed allow: missing rule name")
					continue
				}
				if !known[fields[0]] {
					bad(fmt.Sprintf("malformed allow: unknown rule %q", fields[0]))
					continue
				}
				if len(fields) < 2 {
					bad(fmt.Sprintf("malformed allow: %s needs a reason", fields[0]))
					continue
				}
				from, to := allowSpan(fset, f, pos.Line)
				out = append(out, &allowDirective{
					file: pos.Filename, from: from, to: to, pos: c.Pos(),
					rule: fields[0], reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

// allowSpan computes the line range an allow directive at line covers.
// The directive attaches to the statement (or struct field / spec) it is
// written above — the smallest candidate node starting on the next line —
// or, failing that, the smallest candidate node whose span contains the
// directive's own line (the inline form). The result is the union of the
// node's line span with the historical [line, line+1] window, so every
// directive that worked under the old exact-line matching keeps working,
// and one written above a multi-line statement now covers all of it.
func allowSpan(fset *token.FileSet, f *ast.File, line int) (from, to int) {
	from, to = line, line+1
	var above, inline ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, *ast.Field, ast.Spec:
			if _, isBlock := n.(*ast.BlockStmt); isBlock {
				return true // blocks are containers, not attachment targets
			}
		default:
			return true
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if start == line+1 {
			if above == nil || n.End()-n.Pos() < above.End()-above.Pos() {
				above = n
			}
		}
		if start <= line && line <= end {
			if inline == nil || n.End()-n.Pos() < inline.End()-inline.Pos() {
				inline = n
			}
		}
		return true
	})
	target := above
	if target == nil {
		target = inline
	}
	if target == nil {
		return from, to
	}
	if s := fset.Position(target.Pos()).Line; s < from {
		from = s
	}
	if e := fset.Position(target.End()).Line; e > to {
		to = e
	}
	return from, to
}

// RunPackage runs the whole suite over one loaded package and returns its
// findings sorted by position. Stale allow directives — ones that matched
// no finding of their rule — are appended as findings themselves.
func RunPackage(pkg *Package) []Finding {
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	var findings []Finding
	allows := parseAllows(pkg.Fset, pkg.Files, known, &findings)
	pass := &Pass{
		Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info,
		Path: pkg.Path, Facts: pkg.Facts, Orphans: pkg.Orphans,
		GoldenDir: pkg.GoldenDir, allows: allows, findings: &findings,
	}
	for _, a := range All {
		pass.rule = a.Name
		a.Run(pass)
	}
	for _, a := range allows {
		if !a.used {
			findings = append(findings, Finding{
				Pos:  pkg.Fset.Position(a.pos),
				Rule: "stale-allow",
				Msg:  fmt.Sprintf("allow for %s suppresses nothing — remove it", a.rule),
			})
		}
	}
	SortFindings(findings)
	return findings
}

// SortFindings orders findings by file, then line, then column, then rule.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
