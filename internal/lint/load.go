package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path ("remapd/internal/remap")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info

	// Facts is the loader-wide cross-package annotation table (shared by
	// every package the loader touched; see facts.go).
	Facts *Facts
	// Orphans are //lint:hotpath / //lint:coldpath directives in this
	// package that attached to nothing (reported by hotpath-alloc).
	Orphans []token.Pos
	// GoldenDir is where wire-stability golden field-set files live.
	GoldenDir string
}

// Loader parses and type-checks module packages with stdlib machinery
// only: module packages are resolved against the module directory and the
// standard library through go/importer's source mode (works offline, no
// export data needed). Loaded packages are memoized so shared dependencies
// type-check once.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string
	// Overlay maps extra import paths onto directories; the fixture tests
	// use it to load testdata packages under "remapd/internal/..." paths so
	// path-scoped rules fire.
	Overlay map[string]string
	// WireGoldenDir holds the wire-stability golden field-set files
	// (defaults to <ModuleDir>/internal/lint/testdata/wire; the drift
	// fixture test points it elsewhere).
	WireGoldenDir string

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
	facts   *Facts
}

// NewLoader finds the module root at or above dir and returns a loader
// for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:          fset,
		ModuleDir:     root,
		ModulePath:    modPath,
		WireGoldenDir: filepath.Join(root, "internal", "lint", "testdata", "wire"),
		pkgs:          map[string]*Package{},
		loading:       map[string]bool{},
		std:           importer.ForCompiler(fset, "source", nil),
		facts:         newFacts(),
	}, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", file)
}

// Import implements types.Importer: module-local paths (and overlay
// entries) load through the loader itself; everything else is treated as
// standard library and resolved from source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.isLocal(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) isLocal(path string) bool {
	if _, ok := l.Overlay[path]; ok {
		return true
	}
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirOf maps an import path to its directory.
func (l *Loader) dirOf(path string) string {
	if dir, ok := l.Overlay[path]; ok {
		return dir
	}
	if path == l.ModulePath {
		return l.ModuleDir
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
}

// Load parses and type-checks one package (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOf(path)
	names, err := goFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no buildable Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info,
		Facts: l.facts, GoldenDir: l.WireGoldenDir,
	}
	// Extract annotation facts while loading is still serial; dependencies
	// load (and export their facts) before their importers, so by the time
	// a package is analyzed every fact it can observe is in the table.
	pkg.Orphans = l.facts.addPackage(pkg)
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFiles lists the buildable (non-test) .go files of dir, sorted.
// Build constraints — filename GOOS/GOARCH suffixes and //go:build lines —
// are honoured for the host platform, so arch-specific kernel files (e.g.
// an amd64 assembly shim and its pure-Go fallback) don't double-declare.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") ||
			strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Discover walks the module and returns the import paths of every package
// (directories holding at least one buildable .go file), skipping testdata,
// hidden directories, and underscore-prefixed directories.
func (l *Loader) Discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFiles(p)
		if err != nil || len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Match reports whether an import path matches a command-line pattern.
// Patterns follow the go tool's shape: "./..." (everything), "./dir/..."
// (subtree), "./dir" (exact), or a full import path with optional "/...".
func (l *Loader) Match(path, pattern string) bool {
	pattern = strings.TrimSuffix(pattern, "/")
	if pattern == "." || pattern == "./..." || pattern == "..." {
		return true
	}
	// Normalize "./x" to the import-path form.
	if rest, ok := strings.CutPrefix(pattern, "./"); ok {
		pattern = l.ModulePath + "/" + rest
	}
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == sub || strings.HasPrefix(path, sub+"/")
	}
	return path == pattern
}
