package remap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"remapd/internal/arch"
	"remapd/internal/det"
	"remapd/internal/reram"
)

// This file implements checkpoint/resume support for the policies with
// internal mutable state (Resumable) or installed chip hooks (Reattacher).
//
//   - RemapT: the protection set is rebuilt every epoch from that epoch's
//     accumulated |grad|, which a resumed process never observed — it must
//     be serialized. Reattach reinstalls the spare-cell corrector.
//   - RemapWS: the significance snapshot is taken once from the weights at
//     t = 0; re-deriving it at resume time would rank the *trained*
//     weights instead — it must be serialized. Reattach reinstalls the
//     corrector.
//   - ANCode: the correction table is a pure function of the crossbar
//     fault state, which the checkpoint restores exactly, so Reattach just
//     re-profiles and reinstalls; there is nothing to serialize.
//   - None, Static, RemapD keep no state outside the chip (RemapD's
//     densities are re-measured every epoch boundary), so they implement
//     neither interface.

// protectedSet is the shared map[layer]→set-of-weight-indices shape of the
// RemapT / RemapWS protection state.
type protectedSet = map[string]map[int]bool

// encodeProtected serializes a protection set deterministically: layers in
// sorted name order, indices ascending.
//
//	u32 layerCount | per layer: u32 nameLen | name | u32 n | n × u32 idx
func encodeProtected(prot protectedSet) ([]byte, error) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(prot))); err != nil {
		return nil, err
	}
	for _, layer := range det.SortedKeys(prot) {
		if err := binary.Write(&buf, binary.LittleEndian, uint32(len(layer))); err != nil {
			return nil, err
		}
		buf.WriteString(layer)
		idxs := det.SortedKeys(prot[layer])
		if err := binary.Write(&buf, binary.LittleEndian, uint32(len(idxs))); err != nil {
			return nil, err
		}
		for _, i := range idxs {
			if err := binary.Write(&buf, binary.LittleEndian, uint32(i)); err != nil {
				return nil, err
			}
		}
	}
	return buf.Bytes(), nil
}

// decodeProtected parses encodeProtected output, rejecting malformed input
// without returning partial state.
func decodeProtected(data []byte) (protectedSet, error) {
	r := bytes.NewReader(data)
	var layers uint32
	if err := binary.Read(r, binary.LittleEndian, &layers); err != nil {
		return nil, fmt.Errorf("remap: protected set header: %w", err)
	}
	prot := protectedSet{}
	for l := uint32(0); l < layers; l++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("remap: protected layer name length: %w", err)
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("remap: implausible layer name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("remap: protected layer name: %w", err)
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("remap: protected index count: %w", err)
		}
		if uint64(n)*4 > uint64(r.Len()) {
			return nil, fmt.Errorf("remap: protected set for %q claims %d indices beyond input", name, n)
		}
		m := make(map[int]bool, n)
		for i := uint32(0); i < n; i++ {
			var idx uint32
			if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
				return nil, fmt.Errorf("remap: protected index: %w", err)
			}
			m[int(idx)] = true
		}
		prot[string(name)] = m
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("remap: %d trailing bytes after protected set", r.Len())
	}
	return prot, nil
}

// PolicyState implements Resumable: the current protection set.
func (r *RemapT) PolicyState() ([]byte, error) { return encodeProtected(r.protected) }

// RestorePolicyState implements Resumable.
func (r *RemapT) RestorePolicyState(data []byte) error {
	prot, err := decodeProtected(data)
	if err != nil {
		return err
	}
	r.protected = prot
	return nil
}

// Reattach implements Reattacher: reinstall the spare-cell corrector over
// the restored protection set.
func (r *RemapT) Reattach(ctx *Context) { r.install(ctx) }

// PolicyState implements Resumable: the t=0 significance snapshot.
func (r *RemapWS) PolicyState() ([]byte, error) { return encodeProtected(r.protected) }

// RestorePolicyState implements Resumable.
func (r *RemapWS) RestorePolicyState(data []byte) error {
	prot, err := decodeProtected(data)
	if err != nil {
		return err
	}
	r.protected = prot
	return nil
}

// Reattach implements Reattacher.
func (r *RemapWS) Reattach(ctx *Context) {
	chip := ctx.Chip
	chip.SetCellCorrector(func(t *arch.Task, _ *reram.Crossbar, row, col int) bool {
		m := r.protected[t.Layer]
		if m == nil {
			return false
		}
		return m[chip.ElementOf(t, row, col)]
	}, true)
}

// Reattach implements Reattacher: the AN-code table is derived entirely
// from the restored crossbar fault state, so re-profiling reproduces it.
func (a *ANCode) Reattach(ctx *Context) {
	a.corrector.RefreshTable(ctx.Chip.Xbars)
	ctx.Chip.SetCellCorrector(a.corrector.CellCorrector(), false)
}
