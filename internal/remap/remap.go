// Package remap implements the paper's fault-tolerance policies: the
// proposed dynamic task remapping (Remap-D) and every baseline the
// evaluation compares against — no protection, fault-aware static mapping,
// weight-significance remapping (Remap-WS, [12]), gradient-ranked spare
// remapping (Remap-T-n%), and the AN-code ECC ([10], via internal/ancode).
//
// A policy interacts with the system at two points: Deploy (once, after the
// network is mapped and pre-deployment faults are present) and Maintain — a
// phase-agnostic maintenance step invoked whenever no compute is in flight
// and BIST results can be refreshed. The trainer invokes it at every epoch
// boundary (the paper's remap trigger point, via the EpochEnd adapter);
// internal/serve invokes it online, under live inference traffic, on a
// request-count / BIST-failure trigger.
package remap

import (
	"sort"

	"remapd/internal/ancode"
	"remapd/internal/arch"
	"remapd/internal/bist"
	"remapd/internal/det"
	"remapd/internal/noc"
	"remapd/internal/obs"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// Trigger identifies which execution phase invoked a maintenance step.
// It exists so a policy can know which task phase is latency/fault
// critical *right now*: during training the backward pass is the
// fault-critical computation (the paper's setting); during serving only
// forward tasks execute, so the criticality flips. Policies must not
// branch on Trigger in any other way — the epoch-boundary behaviour under
// TriggerEpoch is pinned byte-identical to the pre-redesign EpochEnd.
type Trigger int

const (
	// TriggerDeploy marks the t=0 maintenance pass run from Deploy.
	TriggerDeploy Trigger = iota
	// TriggerEpoch marks a training epoch boundary (the paper's setting).
	TriggerEpoch
	// TriggerServing marks an online maintenance round under inference
	// traffic (request-count or BIST-failure triggered, no backward pass).
	TriggerServing
)

// String returns the trace-stable name of the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerDeploy:
		return "deploy"
	case TriggerEpoch:
		return "epoch"
	case TriggerServing:
		return "serving"
	}
	return "unknown"
}

// Context carries everything a policy may inspect or mutate.
type Context struct {
	Chip *arch.Chip
	RNG  *tensor.RNG

	// Epoch is the maintenance round index: the training epoch when
	// Trigger is TriggerEpoch, the online maintenance round when
	// TriggerServing. It keys every emitted event's simulated coordinate.
	Epoch int

	// Trigger records which phase invoked this maintenance step. The zero
	// value is TriggerDeploy; callers set it per invocation (the EpochEnd
	// adapter sets TriggerEpoch).
	Trigger Trigger

	// GradAbs accumulates, per MVM layer, the sum of |∂L/∂w| over the
	// epoch's optimizer steps (filled by the trainer). Remap-T-n% ranks
	// weight importance with it.
	GradAbs map[string]*tensor.Tensor

	// NoC configuration for remap-traffic accounting; SimulateNoC enables
	// the flit-level handshake simulation (slower, used by the overhead
	// experiments).
	NoCCfg      noc.Config
	Protocol    noc.ProtocolParams
	SimulateNoC bool

	// Obs receives the policy's telemetry (swap pairs, density fidelity)
	// when non-nil. Recording is pure observation: no policy decision may
	// read it, so a nil Obs is bit-identical to a recording run.
	Obs obs.Recorder
}

// Report summarises what a policy did in one maintenance step.
type Report struct {
	Senders    int // crossbars that requested remapping
	Swaps      int // task exchanges performed (Remap-T: weights newly relocated)
	Unmatched  int // senders that found no receiver
	BISTCycles int // ReRAM cycles spent on fault-density testing
	NoCCycles  int // NoC cycles of the remap handshake (0 if not simulated)

	// Protected counts elements currently shielded from faults: protected
	// weights for Remap-T/Remap-WS, correctable faulty cells for AN-code,
	// 0 for policies that move tasks instead of shielding elements.
	Protected int
	// MeanDensity is the mean fault density the policy observed across the
	// crossbars it inspected this step (0 if it inspected none).
	MeanDensity float64
}

// EpochReport is the pre-redesign name of Report, kept as an alias so
// checkpoint/result plumbing and tests need no lockstep rename.
type EpochReport = Report

// Policy is a fault-tolerance scheme.
type Policy interface {
	Name() string
	Deploy(ctx *Context)
	// Maintain runs one maintenance step: refresh fault knowledge (BIST),
	// re-protect or re-place tasks, and report what was done. It must be
	// safe to call from any phase described by ctx.Trigger.
	Maintain(ctx *Context) Report
}

// EpochEnd adapts the pre-redesign epoch-boundary entry point onto
// Maintain: it stamps the context with TriggerEpoch and delegates. Trainer
// call sites use this adapter, so Fig. 5–8 outputs are byte-identical to
// the old Policy.EpochEnd surface.
func EpochEnd(p Policy, ctx *Context) EpochReport {
	ctx.Trigger = TriggerEpoch
	return p.Maintain(ctx)
}

// Resumable is implemented by policies carrying internal mutable state that
// cannot be reconstructed from the chip alone — e.g. Remap-T's
// gradient-ranked protection set, which derives from an epoch of gradients
// a resumed process never saw. PolicyState must be deterministic (a
// checkpoint of the same state is byte-identical) and RestorePolicyState
// must reject malformed input rather than install partial state.
type Resumable interface {
	PolicyState() ([]byte, error)
	RestorePolicyState(data []byte) error
}

// Reattacher is implemented by policies that must rebind to a restored
// chip when a checkpointed run resumes: reinstall cell correctors, rebuild
// tables derivable from the (already restored) crossbar fault state. The
// trainer calls Reattach instead of Deploy on the resume path — Deploy
// would redo the t=0 placement against the wrong densities.
type Reattacher interface {
	Reattach(ctx *Context)
}

// ---------------------------------------------------------------- None --

// None is the unprotected baseline.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Deploy implements Policy.
func (None) Deploy(*Context) {}

// Maintain implements Policy.
func (None) Maintain(*Context) Report { return Report{} }

// -------------------------------------------------------------- Static --

// Static performs one fault-aware mapping at t = 0: backward (least
// fault-tolerant) tasks are placed on the least-faulty crossbars, forward
// tasks on the rest. It never adapts afterwards, so post-deployment faults
// erode it — the paper's argument for *dynamic* remapping.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Deploy sorts the originally used crossbars by measured density and
// assigns the fault-critical phase's tasks to the cleanest ones: backward
// tasks for a training deployment, forward tasks when the chip is
// deployed to serve (ctx.Trigger == TriggerServing).
func (Static) Deploy(ctx *Context) {
	chip := ctx.Chip
	crit := arch.Backward
	if ctx.Trigger == TriggerServing {
		crit = arch.Forward
	}
	used := chip.MappedXbars()
	sort.Slice(used, func(a, b int) bool {
		return chip.TrueDensity(used[a]) < chip.TrueDensity(used[b])
	})
	// Order tasks critical-phase first.
	order := make([]int, 0, len(chip.Tasks))
	for _, t := range chip.Tasks {
		if t.Phase == crit {
			order = append(order, t.ID)
		}
	}
	for _, t := range chip.Tasks {
		if t.Phase != crit {
			order = append(order, t.ID)
		}
	}
	assign := make([]int, len(chip.Tasks))
	for i, tid := range order {
		assign[tid] = used[i]
	}
	if err := chip.SetMapping(assign); err != nil {
		panic("remap: static mapping failed: " + err.Error())
	}
}

// Maintain does nothing — the mapping is static.
func (Static) Maintain(*Context) Report { return Report{} }

// -------------------------------------------------------------- RemapD --

// RemapD is the paper's proposed policy. At every maintenance step it runs
// the BIST pass on each crossbar, then crossbars whose fault density
// exceeds Threshold and which host a fault-critical task become senders;
// crossbars hosting tasks of the other (idle or fault-tolerant) phase with
// strictly lower density are potential receivers; each sender swaps tasks
// with its nearest (tile hop count) responding receiver. No spare hardware
// is used. Which phase is critical depends on the trigger: at training
// epoch boundaries the backward pass is fault-critical (the paper's
// setting); under serving traffic only forward tasks execute, so forward
// becomes critical and the idle backward crossbars act as the clean pool —
// the X-CHANGR-style serving-time adaptation.
type RemapD struct {
	// Threshold is the sender trigger density (paper: user-chosen; default
	// 0.4%, the boundary of the "hot crossbar" manufacturing band).
	Threshold float64
	// UseBIST selects density estimation through the BIST FSM (true, the
	// deployed configuration) or ground truth (false, an ablation).
	UseBIST bool
	// RandomReceiver picks a uniformly random eligible receiver instead of
	// the nearest one — an ablation of the proximity heuristic. Accuracy is
	// unaffected (any eligible receiver is clean enough); only NoC traffic
	// distance grows.
	RandomReceiver bool
}

// NewRemapD returns the default configuration.
func NewRemapD() *RemapD { return &RemapD{Threshold: 0.004, UseBIST: true} }

// Name implements Policy.
func (r *RemapD) Name() string { return "remap-d" }

// Deploy performs the fault-aware initial mapping (the paper's "static"
// t = 0 placement: backward tasks onto the cleanest crossbars, guided by
// the first post-programming BIST pass). The dynamic behaviour — reacting
// to post-deployment faults — then runs at every maintenance step via
// Maintain. Remap-D is strictly the static placement plus dynamics.
func (r *RemapD) Deploy(ctx *Context) {
	Static{}.Deploy(ctx)
	r.Maintain(ctx)
}

// Maintain implements the three-step protocol of Fig. 3 at the system
// level and (optionally) on the flit-level NoC.
func (r *RemapD) Maintain(ctx *Context) Report {
	chip := ctx.Chip
	rep := Report{}

	// The fault-critical phase is backward during training (gradient
	// outer products cannot tolerate stuck cells) and forward under
	// serving traffic, where backward crossbars sit idle as a clean pool.
	crit, spare := arch.Backward, arch.Forward
	if ctx.Trigger == TriggerServing {
		crit, spare = arch.Forward, arch.Backward
	}

	// Step 0: BIST every mapped crossbar to obtain fault densities. The
	// densities are kept in a slice indexed by crossbar id (not a map):
	// every later step walks crossbars in slice order, so no code path can
	// depend on map iteration order.
	used := chip.MappedXbars()
	density := make([]float64, len(chip.Xbars))
	if r.UseBIST {
		ctrl := bist.NewController(chip.Params)
		ctrl.Obs, ctrl.SimEpoch = ctx.Obs, ctx.Epoch
		for _, xi := range used {
			res := ctrl.Run(chip.Xbars[xi])
			density[xi] = res.DensityEstimate
		}
		// Crossbars within an IMA share one BIST controller and are tested
		// sequentially; IMAs run in parallel.
		rep.BISTCycles = bist.CyclesPerPass(chip.Params) * chip.Geom.XbarsPerIMA
	} else {
		for _, xi := range used {
			density[xi] = chip.TrueDensity(xi)
		}
	}
	if len(used) > 0 {
		total := 0.0
		for _, xi := range used {
			total += density[xi]
		}
		rep.MeanDensity = total / float64(len(used))
	}
	if ctx.Obs != nil {
		for _, xi := range used {
			ctx.Obs.Emit(&obs.DensityEvent{Epoch: ctx.Epoch, Xbar: xi, Estimate: density[xi], True: chip.TrueDensity(xi)})
			ctx.Obs.Observe("bist.density", density[xi])
		}
	}

	// Step 1: senders = over-threshold crossbars hosting critical tasks.
	var senders []int
	var receivers []int
	for _, xi := range used {
		t := chip.TaskOf(xi)
		if t == nil {
			continue
		}
		if t.Phase == crit && density[xi] > r.Threshold {
			senders = append(senders, xi)
		} else if t.Phase == spare {
			receivers = append(receivers, xi)
		}
	}
	rep.Senders = len(senders)
	if len(senders) == 0 {
		return rep
	}
	// Worst senders pick first.
	sort.Slice(senders, func(a, b int) bool { return density[senders[a]] > density[senders[b]] })

	// Step 2+3: nearest eligible receiver per sender, then swap. A
	// receiver must (a) be strictly cleaner than the sender and (b) itself
	// be within the acceptable-density threshold — otherwise the swap just
	// moves the fault-critical task onto another bad crossbar.
	taken := make([]bool, len(chip.Xbars))
	type swapPair struct{ s, r, hops int }
	var pairs []swapPair
	for _, s := range senders {
		var eligible []int
		for _, rx := range receivers {
			if taken[rx] || density[rx] >= density[s] || density[rx] > r.Threshold {
				continue
			}
			eligible = append(eligible, rx)
		}
		if len(eligible) == 0 {
			rep.Unmatched++
			continue
		}
		best := -1
		if r.RandomReceiver && ctx.RNG != nil {
			best = eligible[ctx.RNG.Intn(len(eligible))]
		} else {
			bestHop := 1 << 30
			for _, rx := range eligible {
				h := chip.HopCount(s, rx)
				if h < bestHop || (h == bestHop && rx < best) {
					best, bestHop = rx, h
				}
			}
		}
		taken[best] = true
		pairs = append(pairs, swapPair{s: s, r: best, hops: chip.HopCount(s, best)})
	}
	for _, pr := range pairs {
		chip.SwapTasks(pr.s, pr.r)
		if ctx.Obs != nil {
			ctx.Obs.Emit(&obs.SwapEvent{
				Epoch:           ctx.Epoch,
				Sender:          pr.s,
				Receiver:        pr.r,
				Hops:            pr.hops,
				SenderDensity:   density[pr.s],
				ReceiverDensity: density[pr.r],
			})
			ctx.Obs.Observe("remap.hops", float64(pr.hops))
		}
	}
	rep.Swaps = len(pairs)

	// Optional: replay the handshake on the flit-level NoC for cycle
	// accounting (tile-level endpoints; duplicate tiles collapse).
	if ctx.SimulateNoC && len(pairs) > 0 {
		senderTiles := dedupTiles(chip, senders)
		recvTiles := dedupTiles(chip, receivers)
		res := noc.SimulateRemap(ctx.NoCCfg, ctx.Protocol, senderTiles, recvTiles)
		rep.NoCCycles = res.TotalCycles
		res.Record(ctx.Obs, ctx.Epoch)
	}
	return rep
}

func dedupTiles(chip *arch.Chip, xbars []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, xi := range xbars {
		t := chip.TileOf(xi)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// -------------------------------------------------------------- RemapT --

// RemapT models Remap-T-n%: every epoch the top n% of weights ranked by
// accumulated gradient magnitude are preemptively remapped to spare
// fault-free crossbars — i.e. those weights are immune to faults — at the
// cost of n% extra hardware. At deploy time (no gradients yet) the ranking
// falls back to weight magnitude.
type RemapT struct {
	// Fraction is n/100 (0.05 and 0.10 in the paper's Fig. 6).
	Fraction  float64
	protected map[string]map[int]bool
}

// NewRemapT returns a Remap-T policy protecting the given fraction.
func NewRemapT(fraction float64) *RemapT { return &RemapT{Fraction: fraction} }

// Name implements Policy.
func (r *RemapT) Name() string {
	// Switch on the rounded percentage, not the float itself: exact float
	// equality on a configured fraction is the kind of comparison the
	// float-eq lint rule exists to keep out of this codebase.
	switch int(r.Fraction*100 + 0.5) {
	case 5:
		return "remap-t-5%"
	case 10:
		return "remap-t-10%"
	}
	return "remap-t"
}

// Deploy protects the initially largest weights and installs the corrector.
func (r *RemapT) Deploy(ctx *Context) {
	imp := map[string]*tensor.Tensor{}
	for _, layer := range ctx.Chip.Layers() {
		w := ctx.Chip.Weight(layer)
		a := tensor.New(w.Shape...)
		for i, v := range w.Data {
			if v < 0 {
				a.Data[i] = -v
			} else {
				a.Data[i] = v
			}
		}
		imp[layer] = a
	}
	r.rebuild(ctx, imp)
	r.install(ctx)
}

// Maintain re-ranks by the epoch's accumulated |grad| and rebuilds the
// protection set. The report counts the re-rank's churn: Swaps is the
// number of weights newly relocated onto spares this step (the scheme's
// per-epoch remapping work), Protected the resulting set size. With no
// accumulated gradients (e.g. under serving traffic) the existing
// protection set is kept as-is.
func (r *RemapT) Maintain(ctx *Context) Report {
	rep := Report{MeanDensity: meanMappedDensity(ctx.Chip)}
	if len(ctx.GradAbs) > 0 {
		prev := r.protected
		r.rebuild(ctx, ctx.GradAbs)
		ctx.Chip.InvalidateAll()
		rep.Swaps = relocations(r.protected, prev)
	}
	rep.Protected = protectedCount(r.protected)
	return rep
}

// rebuild selects the global top-Fraction elements by importance.
func (r *RemapT) rebuild(ctx *Context, importance map[string]*tensor.Tensor) {
	type scored struct {
		layer string
		idx   int
		v     float32
	}
	var all []scored
	// Sorted layer order: the sort below breaks score ties by slice
	// position, so the visit order here must be deterministic for the
	// protection set to be replayable.
	for _, layer := range det.SortedKeys(importance) {
		for i, v := range importance[layer].Data {
			all = append(all, scored{layer, i, v})
		}
	}
	k := int(r.Fraction * float64(len(all)))
	if k <= 0 {
		r.protected = map[string]map[int]bool{}
		return
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
	prot := map[string]map[int]bool{}
	for _, s := range all[:k] {
		m := prot[s.layer]
		if m == nil {
			m = map[int]bool{}
			prot[s.layer] = m
		}
		m[s.idx] = true
	}
	r.protected = prot
}

func (r *RemapT) install(ctx *Context) {
	chip := ctx.Chip
	// Relocation protection covers every path (the weight physically lives
	// on a fault-free spare cell).
	chip.SetCellCorrector(func(t *arch.Task, _ *reram.Crossbar, row, col int) bool {
		m := r.protected[t.Layer]
		if m == nil {
			return false
		}
		return m[chip.ElementOf(t, row, col)]
	}, true)
}

// -------------------------------------------------------------- RemapWS --

// RemapWS models the weight-significance scheme of [12]: the top 5% of
// weights by magnitude — determined once from the weights available at
// deployment, since the scheme presumes a pre-trained model — are remapped
// to fault-free columns. During from-scratch training the initial ranking
// is meaningless and 95% of faults go unaddressed, which is exactly the
// failure mode Fig. 6 shows.
type RemapWS struct {
	Fraction  float64
	protected map[string]map[int]bool
}

// NewRemapWS returns the 5% configuration of [12].
func NewRemapWS() *RemapWS { return &RemapWS{Fraction: 0.05} }

// Name implements Policy.
func (r *RemapWS) Name() string { return "remap-ws" }

// Deploy ranks by |w| at t=0 and installs a permanent protection mask.
func (r *RemapWS) Deploy(ctx *Context) {
	rt := &RemapT{Fraction: r.Fraction}
	imp := map[string]*tensor.Tensor{}
	for _, layer := range ctx.Chip.Layers() {
		w := ctx.Chip.Weight(layer)
		a := tensor.New(w.Shape...)
		for i, v := range w.Data {
			if v < 0 {
				a.Data[i] = -v
			} else {
				a.Data[i] = v
			}
		}
		imp[layer] = a
	}
	rt.rebuild(ctx, imp)
	r.protected = rt.protected
	chip := ctx.Chip
	chip.SetCellCorrector(func(t *arch.Task, _ *reram.Crossbar, row, col int) bool {
		m := r.protected[t.Layer]
		if m == nil {
			return false
		}
		return m[chip.ElementOf(t, row, col)]
	}, true)
}

// Maintain changes nothing — the significance snapshot is never updated —
// but still reports the (static) protection footprint and the chip's
// current density so traces show what the scheme is failing to track.
func (r *RemapWS) Maintain(ctx *Context) Report {
	return Report{
		Protected:   protectedCount(r.protected),
		MeanDensity: meanMappedDensity(ctx.Chip),
	}
}

// -------------------------------------------------------------- ANCode --

// ANCode wraps the arithmetic-code ECC baseline: the correction table is
// profiled at deployment and re-profiled at each epoch boundary, so faults
// that appear during an epoch are uncorrected until the next refresh, and
// columns with more faults than the code can absorb stay faulty.
type ANCode struct {
	corrector *ancode.Corrector
}

// NewANCode returns the baseline with the standard single-error code.
func NewANCode() *ANCode { return &ANCode{corrector: ancode.NewCorrector(ancode.NewCode())} }

// Name implements Policy.
func (a *ANCode) Name() string { return "an-code" }

// Deploy profiles the chip and installs the correction hook. The AN code
// corrects stored-codeword reads (forward and transpose weight paths) but
// cannot cover the gradient outer-product path, whose operands are not
// encoded.
func (a *ANCode) Deploy(ctx *Context) {
	a.corrector.RefreshTable(ctx.Chip.Xbars)
	ctx.Chip.SetCellCorrector(a.corrector.CellCorrector(), false)
}

// Maintain re-profiles the correction table. Protected reports how many
// of the profiled faulty cells the refreshed code can actually correct.
func (a *ANCode) Maintain(ctx *Context) Report {
	a.corrector.RefreshTable(ctx.Chip.Xbars)
	ctx.Chip.InvalidateAll()
	return Report{
		Protected:   a.corrector.CorrectableCount(),
		MeanDensity: meanMappedDensity(ctx.Chip),
	}
}

// ------------------------------------------------------------- helpers --

// protectedCount sizes a layer→elements protection set.
func protectedCount(prot map[string]map[int]bool) int {
	n := 0
	for _, m := range prot {
		n += len(m)
	}
	return n
}

// relocations counts elements protected now but not previously — the
// weights a re-rank physically moves onto spares.
func relocations(now, prev map[string]map[int]bool) int {
	n := 0
	for layer, m := range now {
		pm := prev[layer]
		for idx := range m {
			if !pm[idx] {
				n++
			}
		}
	}
	return n
}

// meanMappedDensity is the mean true fault density over the crossbars
// currently hosting tasks (0 when nothing is mapped).
func meanMappedDensity(chip *arch.Chip) float64 {
	used := chip.MappedXbars()
	if len(used) == 0 {
		return 0
	}
	total := 0.0
	for _, xi := range used {
		total += chip.TrueDensity(xi)
	}
	return total / float64(len(used))
}
