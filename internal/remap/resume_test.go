package remap

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleProtected() protectedSet {
	return protectedSet{
		"conv1": {0: true, 7: true, 31: true},
		"conv2": {},
		"fc":    {1023: true, 4: true},
	}
}

func TestProtectedSetRoundTrip(t *testing.T) {
	want := sampleProtected()
	data, err := encodeProtected(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeProtected(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %v\ngot  %v", want, got)
	}
}

func TestProtectedSetEncodingIsDeterministic(t *testing.T) {
	a, err := encodeProtected(sampleProtected())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b, err := encodeProtected(sampleProtected())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("encoding depends on map iteration order")
		}
	}
}

func TestPolicyStateRoundTripViaInterfaces(t *testing.T) {
	src := NewRemapT(0.05)
	src.protected = sampleProtected()
	blob, err := src.PolicyState()
	if err != nil {
		t.Fatal(err)
	}
	dst := NewRemapT(0.05)
	if err := dst.RestorePolicyState(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src.protected, dst.protected) {
		t.Fatal("RemapT protected sets differ after restore")
	}

	ws := NewRemapWS()
	ws.protected = sampleProtected()
	wsBlob, err := ws.PolicyState()
	if err != nil {
		t.Fatal(err)
	}
	ws2 := NewRemapWS()
	if err := ws2.RestorePolicyState(wsBlob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws.protected, ws2.protected) {
		t.Fatal("RemapWS protected sets differ after restore")
	}
}

func TestRestorePolicyStateRejectsMalformedInput(t *testing.T) {
	valid, err := encodeProtected(sampleProtected())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty-vs-header": valid[:2],
		"truncated-layer": valid[:len(valid)-5],
		"trailing-bytes":  append(append([]byte(nil), valid...), 0xFF),
	}
	for name, data := range cases {
		r := NewRemapT(0.05)
		r.protected = protectedSet{"keep": {1: true}}
		if err := r.RestorePolicyState(data); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
		// A rejected restore must not clobber the existing state.
		if !reflect.DeepEqual(r.protected, protectedSet{"keep": {1: true}}) {
			t.Errorf("%s: failed restore mutated policy state", name)
		}
	}
}

func TestResumableImplementations(t *testing.T) {
	// The policies with irreproducible internal state must be Resumable;
	// the stateless ones must not carry a misleading implementation.
	var _ Resumable = (*RemapT)(nil)
	var _ Resumable = (*RemapWS)(nil)
	var _ Reattacher = (*RemapT)(nil)
	var _ Reattacher = (*RemapWS)(nil)
	var _ Reattacher = (*ANCode)(nil)
	for name, p := range map[string]Policy{"none": None{}, "static": Static{}, "remap-d": NewRemapD()} {
		if _, ok := p.(Resumable); ok {
			t.Errorf("%s must not be Resumable — it has no state to serialize", name)
		}
	}
}
