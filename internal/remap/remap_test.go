package remap

import (
	"math"
	"testing"

	"remapd/internal/arch"
	"remapd/internal/fault"
	"remapd/internal/nn"
	"remapd/internal/noc"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// testRig builds a small mapped chip with a 2-linear-layer network.
type testRig struct {
	chip *arch.Chip
	net  *nn.Network
	ctx  *Context
}

func newRig(t *testing.T, seed uint64) *testRig {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork(
		nn.NewLinear("fc1", 24, 16, rng),
		nn.NewReLU("r"),
		nn.NewLinear("fc2", 16, 8, rng),
	)
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 32
	chip := arch.NewChip(p, arch.Geometry{TilesX: 4, TilesY: 4, IMAsPerTile: 1, XbarsPerIMA: 1})
	if err := chip.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	net.SetFabric(chip)
	cfg, err := noc.CMeshForTiles(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{
		chip: chip,
		net:  net,
		ctx: &Context{
			Chip:     chip,
			RNG:      rng,
			GradAbs:  map[string]*tensor.Tensor{},
			NoCCfg:   cfg,
			Protocol: noc.DefaultProtocolParams(),
		},
	}
}

func (r *testRig) backwardXbars() []int {
	var out []int
	for _, xi := range r.chip.MappedXbars() {
		if r.chip.TaskOf(xi).Phase == arch.Backward {
			out = append(out, xi)
		}
	}
	return out
}

func injectN(chip *arch.Chip, xbar, n int, rng *tensor.RNG) {
	fault.InjectMixed(chip.Xbars[xbar], n, 0.1, 0.5, 3, rng)
	chip.InvalidateAll()
}

func TestNonePolicyIsInert(t *testing.T) {
	r := newRig(t, 1)
	before := make([]int, len(r.chip.Tasks))
	for i := range r.chip.Tasks {
		before[i] = r.chip.XbarOf(i)
	}
	p := None{}
	p.Deploy(r.ctx)
	rep := p.Maintain(r.ctx)
	if rep != (EpochReport{}) {
		t.Fatalf("None reported %+v", rep)
	}
	for i := range r.chip.Tasks {
		if r.chip.XbarOf(i) != before[i] {
			t.Fatal("None must not move tasks")
		}
	}
}

func TestStaticPlacesBackwardOnCleanest(t *testing.T) {
	r := newRig(t, 2)
	// Fault half the mapped crossbars heavily.
	used := r.chip.MappedXbars()
	for i, xi := range used {
		if i%2 == 0 {
			injectN(r.chip, xi, 50, r.ctx.RNG)
		}
	}
	Static{}.Deploy(r.ctx)
	// Every backward task's crossbar must be cleaner than every forward
	// task's crossbar (backward got the cleanest pool).
	maxBwd, minFwd := -1.0, 2.0
	for _, xi := range r.chip.MappedXbars() {
		d := r.chip.TrueDensity(xi)
		if r.chip.TaskOf(xi).Phase == arch.Backward {
			if d > maxBwd {
				maxBwd = d
			}
		} else if d < minFwd {
			minFwd = d
		}
	}
	if maxBwd > minFwd {
		t.Fatalf("static placement wrong: worst backward density %v > best forward %v", maxBwd, minFwd)
	}
}

func TestRemapDSwapsFaultyBackwardAway(t *testing.T) {
	r := newRig(t, 3)
	pol := NewRemapD()
	bwd := r.backwardXbars()
	victim := bwd[0]
	injectN(r.chip, victim, 40, r.ctx.RNG) // ≈3.9% density, over threshold

	victimTask := r.chip.TaskOf(victim).ID
	rep := pol.Maintain(r.ctx)
	if rep.Senders != 1 || rep.Swaps != 1 {
		t.Fatalf("report %+v, want 1 sender, 1 swap", rep)
	}
	if rep.BISTCycles <= 0 {
		t.Fatal("BIST cycles not accounted")
	}
	// The backward task must have moved to a cleaner crossbar...
	newHome := r.chip.XbarOf(victimTask)
	if newHome == victim {
		t.Fatal("task did not move")
	}
	if r.chip.TrueDensity(newHome) >= r.chip.TrueDensity(victim) {
		t.Fatal("task moved to a dirtier crossbar")
	}
	// ...and the displaced task must be a forward task now on the victim.
	if got := r.chip.TaskOf(victim); got == nil || got.Phase != arch.Forward {
		t.Fatalf("victim crossbar now hosts %+v, want a forward task", got)
	}
}

func TestRemapDRespectsThreshold(t *testing.T) {
	r := newRig(t, 4)
	pol := NewRemapD()
	pol.Threshold = 0.05 // 5%
	bwd := r.backwardXbars()
	injectN(r.chip, bwd[0], 30, r.ctx.RNG) // ≈2.9% < threshold
	rep := pol.Maintain(r.ctx)
	if rep.Senders != 0 || rep.Swaps != 0 {
		t.Fatalf("below-threshold crossbar must not remap: %+v", rep)
	}
}

func TestRemapDFaultyForwardIsNotASender(t *testing.T) {
	r := newRig(t, 5)
	pol := NewRemapD()
	var fwd int = -1
	for _, xi := range r.chip.MappedXbars() {
		if r.chip.TaskOf(xi).Phase == arch.Forward {
			fwd = xi
			break
		}
	}
	injectN(r.chip, fwd, 60, r.ctx.RNG)
	rep := pol.Maintain(r.ctx)
	if rep.Senders != 0 {
		t.Fatalf("forward tasks are fault-tolerant and must not request remap: %+v", rep)
	}
}

func TestRemapDPicksNearestReceiver(t *testing.T) {
	r := newRig(t, 6)
	pol := NewRemapD()
	pol.UseBIST = false
	bwd := r.backwardXbars()
	sender := bwd[0]
	injectN(r.chip, sender, 40, r.ctx.RNG)

	// Find the nearest forward-hosting crossbar by hop count (ties by id,
	// matching the policy).
	bestHop, best := 1<<30, -1
	for _, xi := range r.chip.MappedXbars() {
		if r.chip.TaskOf(xi).Phase != arch.Forward {
			continue
		}
		h := r.chip.HopCount(sender, xi)
		if h < bestHop || (h == bestHop && xi < best) {
			bestHop, best = h, xi
		}
	}
	senderTask := r.chip.TaskOf(sender).ID
	pol.Maintain(r.ctx)
	if got := r.chip.XbarOf(senderTask); got != best {
		t.Fatalf("task moved to crossbar %d (hop %d), nearest receiver was %d (hop %d)",
			got, r.chip.HopCount(sender, got), best, bestHop)
	}
}

func TestRemapDUnmatchedWhenNoCleanerReceiver(t *testing.T) {
	r := newRig(t, 7)
	pol := NewRemapD()
	pol.UseBIST = false
	// Fault ALL crossbars equally badly: no receiver is strictly cleaner.
	for _, xi := range r.chip.MappedXbars() {
		injectN(r.chip, xi, 40, r.ctx.RNG)
	}
	rep := pol.Maintain(r.ctx)
	if rep.Senders == 0 {
		t.Fatal("senders expected")
	}
	if rep.Swaps+rep.Unmatched != rep.Senders {
		t.Fatalf("accounting broken: %+v", rep)
	}
	if rep.Unmatched == 0 {
		t.Fatalf("at least the worst-off sender cluster should fail to match: %+v", rep)
	}
}

func TestRemapDDeployHandlesPreDeploymentFaults(t *testing.T) {
	r := newRig(t, 8)
	bwd := r.backwardXbars()
	injectN(r.chip, bwd[0], 40, r.ctx.RNG)
	task := r.chip.TaskOf(bwd[0]).ID
	NewRemapD().Deploy(r.ctx)
	if r.chip.XbarOf(task) == bwd[0] {
		t.Fatal("Deploy must perform the initial remap round")
	}
}

func TestRemapDWithNoCSimulation(t *testing.T) {
	r := newRig(t, 9)
	r.ctx.SimulateNoC = true
	r.ctx.Protocol.WeightFlits = 64
	pol := NewRemapD()
	bwd := r.backwardXbars()
	injectN(r.chip, bwd[0], 40, r.ctx.RNG)
	rep := pol.Maintain(r.ctx)
	if rep.Swaps == 0 {
		t.Fatal("expected a swap")
	}
	if rep.NoCCycles <= 0 {
		t.Fatal("NoC handshake cycles not measured")
	}
}

func TestRemapTProtectsTopGradients(t *testing.T) {
	r := newRig(t, 10)
	pol := NewRemapT(0.10)
	pol.Deploy(r.ctx)

	// Build a gradient-importance profile concentrated on fc2 element 0.
	ga := map[string]*tensor.Tensor{}
	for _, layer := range r.chip.Layers() {
		w := r.chip.Weight(layer)
		g := tensor.New(w.Shape...)
		g.Fill(1) // uniform background importance
		ga[layer] = g
	}
	ga["fc2"].Data[0] = 100    // clearly most important
	ga["fc2"].Data[2*16+3] = 0 // element (2,3): least important
	r.ctx.GradAbs = ga
	pol.Maintain(r.ctx)

	// Fault the cell holding fc2 element 0 on the forward copy.
	var fwdTask *arch.Task
	for _, task := range r.chip.Tasks {
		if task.Layer == "fc2" && task.Phase == arch.Forward {
			fwdTask = task
		}
	}
	xb := r.chip.Xbars[r.chip.XbarOf(fwdTask.ID)]
	xb.InjectFaultPolar(0, 0, reram.SA1, true, r.ctx.RNG)
	// A second faulted cell holding a zero-importance element.
	xb.InjectFaultPolar(2, 3, reram.SA1, true, r.ctx.RNG)
	r.chip.InvalidateAll()

	w := r.chip.Weight("fc2")
	eff := r.chip.EffectiveForward("fc2", w)
	clip := float64(w.AbsMax())
	if math.Abs(float64(eff.At(0, 0)-w.At(0, 0))) > 0.1*clip {
		t.Fatalf("protected weight corrupted: %v vs %v", eff.At(0, 0), w.At(0, 0))
	}
	if float64(eff.At(2, 3)) < 0.99*clip {
		t.Fatalf("unprotected weight should be clamped, got %v", eff.At(2, 3))
	}
}

func TestRemapWSMaskIsStatic(t *testing.T) {
	r := newRig(t, 11)
	// Make fc1 element 0 the largest weight at deploy time.
	w := r.chip.Weight("fc1")
	w.Data[0] = 10
	pol := NewRemapWS()
	pol.Deploy(r.ctx)

	if pol.protected["fc1"] == nil || !pol.protected["fc1"][0] {
		t.Fatal("largest initial weight must be protected")
	}
	snapshot := len(pol.protected["fc1"])
	// Gradients later shift importance elsewhere — Remap-WS must ignore it.
	ga := map[string]*tensor.Tensor{"fc2": tensor.New(r.chip.Weight("fc2").Shape...)}
	ga["fc2"].Data[5] = 1e6
	r.ctx.GradAbs = ga
	pol.Maintain(r.ctx)
	if len(pol.protected["fc1"]) != snapshot || pol.protected["fc2"] != nil && pol.protected["fc2"][5] {
		t.Fatal("Remap-WS mask must never update after deployment")
	}
}

func TestANCodePolicyCorrectsAndLags(t *testing.T) {
	r := newRig(t, 12)
	pol := NewANCode()

	// Pre-deployment fault: single fault in its column → correctable after
	// Deploy's profiling.
	var fwdTask *arch.Task
	for _, task := range r.chip.Tasks {
		if task.Layer == "fc2" && task.Phase == arch.Forward {
			fwdTask = task
		}
	}
	xb := r.chip.Xbars[r.chip.XbarOf(fwdTask.ID)]
	xb.InjectFaultPolar(1, 1, reram.SA1, true, r.ctx.RNG)
	r.chip.InvalidateAll()
	pol.Deploy(r.ctx)

	w := r.chip.Weight("fc2")
	clip := float64(w.AbsMax())
	eff := r.chip.EffectiveForward("fc2", w)
	if math.Abs(float64(eff.At(1, 1)-w.At(1, 1))) > 0.1*clip {
		t.Fatalf("known single-column fault must be corrected: %v vs %v", eff.At(1, 1), w.At(1, 1))
	}

	// New (post-deployment) fault: uncorrected until the next table refresh.
	xb.InjectFaultPolar(2, 2, reram.SA1, true, r.ctx.RNG)
	r.chip.InvalidateAll()
	eff = r.chip.EffectiveForward("fc2", w)
	if float64(eff.At(2, 2)) < 0.99*clip {
		t.Fatalf("new fault must be uncorrected before refresh, got %v", eff.At(2, 2))
	}
	pol.Maintain(r.ctx)
	eff = r.chip.EffectiveForward("fc2", w)
	if math.Abs(float64(eff.At(2, 2)-w.At(2, 2))) > 0.1*clip {
		t.Fatal("fault must be corrected after table refresh")
	}

	// Overload one column beyond capability: both faults stay.
	xb.InjectFaultPolar(3, 4, reram.SA1, true, r.ctx.RNG)
	xb.InjectFaultPolar(5, 4, reram.SA1, true, r.ctx.RNG)
	r.chip.InvalidateAll()
	pol.Maintain(r.ctx)
	eff = r.chip.EffectiveForward("fc2", w)
	if float64(eff.At(3, 4)) < 0.99*clip || float64(eff.At(5, 4)) < 0.99*clip {
		t.Fatal("two-fault column exceeds AN-code capability and must stay faulty")
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"none":        None{},
		"static":      Static{},
		"remap-d":     NewRemapD(),
		"remap-t-5%":  NewRemapT(0.05),
		"remap-t-10%": NewRemapT(0.10),
		"remap-ws":    NewRemapWS(),
		"an-code":     NewANCode(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Fatalf("Name() = %q, want %q", p.Name(), want)
		}
	}
}
