// Package noc is a cycle-driven, flit-level network-on-chip simulator for
// the concentrated-mesh (c-mesh) topology the paper's RCS uses. It is the
// repository's equivalent of the modified BookSim the authors used to
// measure the remapping protocol's performance overhead.
//
// Model:
//   - Routers form an X×Y mesh; each router concentrates `Concentration`
//     tiles on local ports (c-mesh, concentration 4 by default, as in
//     ISAAC-style RCS floorplans).
//   - Wormhole switching with single-VC input-buffered routers, credit-style
//     backpressure (a flit advances only if the downstream buffer has room),
//     and per-output round-robin arbitration. An output port stays locked to
//     its current packet until the tail flit passes.
//   - Dimension-ordered XY routing. Multicast/broadcast packets are
//     single-flit control messages replicated at routers along the XY tree
//     (each branch progresses independently), matching the paper's
//     "XY tree multicast with dimension-ordered routing".
//   - Data transfers (weight swaps) are long unicast wormhole packets.
package noc

import (
	"fmt"

	"remapd/internal/det"
)

// Config describes the network.
type Config struct {
	MeshX, MeshY  int // router grid dimensions
	Concentration int // tiles per router
	BufferFlits   int // input buffer depth per port, in flits
	RouterDelay   int // per-hop pipeline latency in cycles
}

// DefaultConfig returns the evaluation network: a 4×4 router c-mesh with
// concentration 4 (= 64 tiles, the 8×8 tile grid of arch.DefaultGeometry).
func DefaultConfig() Config {
	return Config{MeshX: 4, MeshY: 4, Concentration: 4, BufferFlits: 8, RouterDelay: 2}
}

// Tiles returns the number of tiles (network endpoints).
func (c Config) Tiles() int { return c.MeshX * c.MeshY * c.Concentration }

// Routers returns the number of routers.
func (c Config) Routers() int { return c.MeshX * c.MeshY }

// CMeshForTiles builds a Config for a tilesX×tilesY tile grid with
// concentration 4 (2×2 tile clusters per router). Both dimensions must be
// even.
func CMeshForTiles(tilesX, tilesY int) (Config, error) {
	if tilesX%2 != 0 || tilesY%2 != 0 {
		return Config{}, fmt.Errorf("noc: tile grid %d×%d not divisible into 2×2 clusters", tilesX, tilesY)
	}
	cfg := DefaultConfig()
	cfg.MeshX, cfg.MeshY = tilesX/2, tilesY/2
	return cfg, nil
}

// Port direction indices on a router.
const (
	portNorth = iota
	portEast
	portSouth
	portWest
	portLocal0 // local ports follow
)

// Packet is one network transaction: unicast (len(Dsts)==1, any size) or
// multicast (len(Dsts)>1, single flit).
type Packet struct {
	ID       int
	Src      int   // source tile
	Dsts     []int // destination tiles
	Flits    int
	InjectAt int // cycle at which the source starts injecting

	// DeliveredAt records, per destination tile, the cycle the packet's
	// tail flit was ejected there (-1 while pending).
	DeliveredAt map[int]int
	remaining   int // destinations not yet delivered
}

// Done reports whether every destination has received the packet.
func (p *Packet) Done() bool { return p.remaining == 0 }

// Latency returns the worst-case delivery latency over destinations; it
// panics if the packet is not done.
func (p *Packet) Latency() int {
	if !p.Done() {
		panic("noc: Latency on undelivered packet")
	}
	max := 0
	for _, c := range p.DeliveredAt {
		if c-p.InjectAt > max {
			max = c - p.InjectAt
		}
	}
	return max
}

// flit is the unit of flow control.
type flit struct {
	pkt     *Packet
	seq     int   // 0-based flit index within the packet
	dsts    []int // remaining destinations (multicast) or the single dst
	readyAt int   // earliest cycle this flit may leave its current buffer
}

func (f *flit) isHead() bool { return f.seq == 0 }
func (f *flit) isTail() bool { return f.seq == f.pkt.Flits-1 }

// router holds per-router state.
type router struct {
	inQ [][]*flit // per input port FIFO
	// outLock[o] is the input port currently holding output o through a
	// wormhole (locked from header grant to tail pass), or -1.
	outLock []int
	// rrPtr[o] is the round-robin arbitration pointer for output o.
	rrPtr []int
}

// Simulator is the network instance. It is single-threaded; Step advances
// one cycle.
type Simulator struct {
	Cfg     Config
	cycle   int
	routers []*router
	// injectQ[t] is tile t's source queue of flits awaiting injection.
	injectQ [][]*flit
	packets []*Packet
	pending int // packets not yet fully delivered

	// stats
	flitHops  int
	delivered int
}

// NewSimulator builds an idle network.
func NewSimulator(cfg Config) *Simulator {
	if cfg.BufferFlits < 1 {
		cfg.BufferFlits = 1
	}
	s := &Simulator{Cfg: cfg}
	nPorts := 4 + cfg.Concentration
	for i := 0; i < cfg.Routers(); i++ {
		r := &router{
			inQ:     make([][]*flit, nPorts),
			outLock: make([]int, nPorts),
			rrPtr:   make([]int, nPorts),
		}
		for o := range r.outLock {
			r.outLock[o] = -1
		}
		s.routers = append(s.routers, r)
	}
	s.injectQ = make([][]*flit, cfg.Tiles())
	return s
}

// Cycle returns the current simulation cycle.
func (s *Simulator) Cycle() int { return s.cycle }

// FlitHops returns the total number of link traversals so far (an energy
// proxy).
func (s *Simulator) FlitHops() int { return s.flitHops }

// routerOfTile returns the router index a tile attaches to and its local
// port.
func (s *Simulator) routerOfTile(tile int) (ri, port int) {
	return tile / s.Cfg.Concentration, portLocal0 + tile%s.Cfg.Concentration
}

// routerCoord returns a router's mesh coordinates.
func (s *Simulator) routerCoord(ri int) (x, y int) {
	return ri % s.Cfg.MeshX, ri / s.Cfg.MeshX
}

// routerAt returns the router index at mesh coordinates.
func (s *Simulator) routerAt(x, y int) int { return y*s.Cfg.MeshX + x }

// RouterHops returns the XY-route hop count between the routers of two
// tiles (0 if they share a router).
func (s *Simulator) RouterHops(tileA, tileB int) int {
	ra, _ := s.routerOfTile(tileA)
	rb, _ := s.routerOfTile(tileB)
	ax, ay := s.routerCoord(ra)
	bx, by := s.routerCoord(rb)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// SendUnicast schedules a packet of `flits` flits from tile src to dst,
// entering the source queue at cycle atCycle (clamped to now).
func (s *Simulator) SendUnicast(src, dst, flits, atCycle int) *Packet {
	if flits < 1 {
		panic("noc: packet needs at least one flit")
	}
	return s.enqueue(src, []int{dst}, flits, atCycle)
}

// SendMulticast schedules a single-flit control packet from src to every
// tile in dsts (duplicates and src itself are dropped).
func (s *Simulator) SendMulticast(src int, dsts []int, atCycle int) *Packet {
	uniq := make([]int, 0, len(dsts))
	seen := map[int]bool{src: true}
	for _, d := range dsts {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	if len(uniq) == 0 {
		panic("noc: multicast with no destinations")
	}
	return s.enqueue(src, uniq, 1, atCycle)
}

// Broadcast schedules a single-flit packet from src to every other tile.
func (s *Simulator) Broadcast(src, atCycle int) *Packet {
	dsts := make([]int, 0, s.Cfg.Tiles()-1)
	for t := 0; t < s.Cfg.Tiles(); t++ {
		if t != src {
			dsts = append(dsts, t)
		}
	}
	return s.SendMulticast(src, dsts, atCycle)
}

func (s *Simulator) enqueue(src int, dsts []int, flits, atCycle int) *Packet {
	if atCycle < s.cycle {
		atCycle = s.cycle
	}
	if len(dsts) > 1 && flits != 1 {
		panic("noc: multicast packets must be single-flit control messages")
	}
	p := &Packet{
		ID: len(s.packets), Src: src, Dsts: dsts, Flits: flits, InjectAt: atCycle,
		DeliveredAt: make(map[int]int, len(dsts)),
		remaining:   len(dsts),
	}
	for _, d := range dsts {
		p.DeliveredAt[d] = -1
	}
	s.packets = append(s.packets, p)
	s.pending++
	for i := 0; i < flits; i++ {
		s.injectQ[src] = append(s.injectQ[src], &flit{
			pkt: p, seq: i, dsts: append([]int(nil), dsts...), readyAt: atCycle,
		})
	}
	return p
}

// outputPortFor computes the XY-routed output port at router ri toward
// destination tile dst.
func (s *Simulator) outputPortFor(ri, dst int) int {
	dr, dport := s.routerOfTile(dst)
	if dr == ri {
		return dport
	}
	x, y := s.routerCoord(ri)
	dx, dy := s.routerCoord(dr)
	switch {
	case dx > x:
		return portEast
	case dx < x:
		return portWest
	case dy > y:
		return portSouth
	default:
		return portNorth
	}
}

// neighbor returns the router on the other side of output port o of router
// ri, along with the input port index the link feeds there.
func (s *Simulator) neighbor(ri, o int) (nr, inPort int) {
	x, y := s.routerCoord(ri)
	switch o {
	case portNorth:
		return s.routerAt(x, y-1), portSouth
	case portSouth:
		return s.routerAt(x, y+1), portNorth
	case portEast:
		return s.routerAt(x+1, y), portWest
	case portWest:
		return s.routerAt(x-1, y), portEast
	}
	panic("noc: neighbor of local port")
}

// move is one granted flit transfer for the current cycle.
type move struct {
	ri, in, out int
	f           *flit
	branchDsts  []int // destinations routed through this output
}

// Step advances the network by one cycle.
func (s *Simulator) Step() {
	var moves []move

	// Decision phase: every router arbitrates each output port using the
	// start-of-cycle buffer state.
	for ri, r := range s.routers {
		nPorts := len(r.inQ)
		// For each input, determine what its head flit wants.
		type request struct {
			out  int
			dsts []int
		}
		wants := make([][]request, nPorts)
		for in := 0; in < nPorts; in++ {
			q := r.inQ[in]
			if len(q) == 0 {
				continue
			}
			f := q[0]
			if f.readyAt > s.cycle {
				continue
			}
			// Partition remaining destinations by output port (XY tree).
			byOut := make(map[int][]int)
			for _, d := range f.dsts {
				o := s.outputPortFor(ri, d)
				byOut[o] = append(byOut[o], d)
			}
			// Sorted port order: request order feeds arbitration, so a raw
			// map walk here would make cycle counts vary run to run.
			for _, o := range det.SortedKeys(byOut) {
				wants[in] = append(wants[in], request{out: o, dsts: byOut[o]})
			}
		}

		granted := make([]bool, nPorts) // input ports that already moved
		for out := 0; out < nPorts; out++ {
			// Wormhole continuation has absolute priority.
			if lockIn := r.outLock[out]; lockIn >= 0 {
				q := r.inQ[lockIn]
				if len(q) == 0 || granted[lockIn] || q[0].readyAt > s.cycle {
					continue
				}
				f := q[0]
				if !s.canAccept(ri, out, f) {
					continue
				}
				moves = append(moves, move{ri: ri, in: lockIn, out: out, f: f, branchDsts: f.dsts})
				granted[lockIn] = true
				continue
			}
			// Round-robin among requesting inputs.
			for k := 0; k < nPorts; k++ {
				in := (r.rrPtr[out] + k) % nPorts
				if granted[in] {
					continue
				}
				var ds []int
				found := false
				for _, rq := range wants[in] {
					if rq.out == out {
						ds, found = rq.dsts, true
						break
					}
				}
				if !found {
					continue
				}
				f := r.inQ[in][0]
				if !f.isHead() {
					// A body flit with no lock means its header went
					// through another grant path; wormhole integrity is
					// kept by the lock, so this cannot happen — guard
					// anyway.
					continue
				}
				if !s.canAccept(ri, out, f) {
					continue
				}
				moves = append(moves, move{ri: ri, in: in, out: out, f: f, branchDsts: ds})
				granted[in] = true
				r.rrPtr[out] = (in + 1) % nPorts
				break
			}
		}
	}

	// Injection phase: tiles push the next flit into their router's local
	// input port when there is room.
	for t := 0; t < s.Cfg.Tiles(); t++ {
		q := s.injectQ[t]
		if len(q) == 0 || q[0].readyAt > s.cycle {
			continue
		}
		ri, port := s.routerOfTile(t)
		if len(s.routers[ri].inQ[port]) >= s.Cfg.BufferFlits {
			continue
		}
		f := q[0]
		s.injectQ[t] = q[1:]
		f.readyAt = s.cycle + 1
		s.routers[ri].inQ[port] = append(s.routers[ri].inQ[port], f)
	}

	// Commit phase: apply the granted moves.
	for _, m := range moves {
		r := s.routers[m.ri]
		f := r.inQ[m.in][0]

		if len(f.dsts) == len(m.branchDsts) {
			// All remaining destinations leave through this port: the flit
			// departs the input queue.
			r.inQ[m.in] = r.inQ[m.in][1:]
		} else {
			// Multicast split: subtract the branch destinations, keep the
			// flit for the remaining branches, and forward a copy.
			remain := f.dsts[:0]
			inBranch := make(map[int]bool, len(m.branchDsts))
			for _, d := range m.branchDsts {
				inBranch[d] = true
			}
			for _, d := range f.dsts {
				if !inBranch[d] {
					remain = append(remain, d)
				}
			}
			f.dsts = remain
			f = &flit{pkt: f.pkt, seq: f.seq, readyAt: f.readyAt}
		}
		f.dsts = m.branchDsts

		// Wormhole lock management for multi-flit packets.
		if f.pkt.Flits > 1 {
			if f.isHead() {
				r.outLock[m.out] = m.in
			}
			if f.isTail() {
				r.outLock[m.out] = -1
			}
		}

		s.flitHops++
		if m.out >= portLocal0 {
			// Ejection: the flit reaches its destination tile.
			tile := m.ri*s.Cfg.Concentration + (m.out - portLocal0)
			if f.isTail() {
				f.pkt.DeliveredAt[tile] = s.cycle + 1
				f.pkt.remaining--
				s.delivered++
				if f.pkt.remaining == 0 {
					s.pending--
				}
			}
			continue
		}
		nr, inPort := s.neighbor(m.ri, m.out)
		f.readyAt = s.cycle + 1 + s.Cfg.RouterDelay
		s.routers[nr].inQ[inPort] = append(s.routers[nr].inQ[inPort], f)
	}

	s.cycle++
}

// canAccept reports whether the downstream buffer of output port `out` at
// router ri can take one more flit this cycle (ejection ports always can).
func (s *Simulator) canAccept(ri, out int, _ *flit) bool {
	if out >= portLocal0 {
		return true
	}
	nr, inPort := s.neighbor(ri, out)
	return len(s.routers[nr].inQ[inPort]) < s.Cfg.BufferFlits
}

// Pending returns the number of packets not yet fully delivered.
func (s *Simulator) Pending() int { return s.pending }

// RunUntilIdle steps until every packet is delivered or maxCycles elapse.
// It returns the final cycle count and whether the network drained.
func (s *Simulator) RunUntilIdle(maxCycles int) (int, bool) {
	for s.pending > 0 && s.cycle < maxCycles {
		s.Step()
	}
	return s.cycle, s.pending == 0
}
