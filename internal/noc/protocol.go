package noc

import (
	"sort"

	"remapd/internal/obs"
	"remapd/internal/tensor"
)

// The remapping handshake of Fig. 3 has three traffic phases:
//
//	(a) every sender tile broadcasts a 1-flit remap request,
//	(b) every potential receiver tile unicasts a 1-flit response to each
//	    sender it heard from,
//	(c) each sender picks its nearest responding receiver (router hop
//	    count, ties by lower tile id) and the pair exchange their crossbar
//	    weights as two long wormhole transfers.
//
// ProtocolParams collects the knobs of that simulation.
type ProtocolParams struct {
	// WeightFlits is the size of one crossbar's weight payload in flits.
	// A 128×128 array at 8-bit cells is 16 KiB; with 128-bit flits that is
	// 1024 flits.
	WeightFlits int
	// ResponseDelay is the receiver-side decision latency (cycles between
	// request arrival and response injection).
	ResponseDelay int
}

// DefaultProtocolParams matches the paper's setup.
func DefaultProtocolParams() ProtocolParams {
	return ProtocolParams{WeightFlits: 1024, ResponseDelay: 4}
}

// RemapPair is one sender→receiver assignment made by the protocol.
type RemapPair struct {
	Sender, Receiver int // tile ids
	Hops             int
}

// ProtocolResult reports one simulated remap round.
type ProtocolResult struct {
	Pairs []RemapPair
	// RequestDone, ResponseDone, SwapDone are the cycles at which each
	// phase completed.
	RequestDone, ResponseDone, SwapDone int
	// TotalCycles is the full handshake duration (== SwapDone).
	TotalCycles int
	// FlitHops is the total link-traversal count (energy proxy).
	FlitHops int
	// UnmatchedSenders counts senders that found no receiver.
	UnmatchedSenders int
}

// Record emits the round's summary to a Recorder (nil-safe no-op): one
// NoCRemapEvent plus the cycle/hop counters and the per-pair hop
// histogram sample.
func (r ProtocolResult) Record(rec obs.Recorder, epoch int) {
	if rec == nil {
		return
	}
	rec.Emit(&obs.NoCRemapEvent{
		Epoch:       epoch,
		Pairs:       len(r.Pairs),
		TotalCycles: r.TotalCycles,
		FlitHops:    r.FlitHops,
		Unmatched:   r.UnmatchedSenders,
	})
	rec.Add("noc.remap_rounds", 1)
	rec.Add("noc.flit_hops", int64(r.FlitHops))
	for _, pr := range r.Pairs {
		rec.Observe("noc.pair_hops", float64(pr.Hops))
	}
}

// SimulateRemap runs the three-phase handshake on a fresh network.
// senders is the set of tiles requesting remap; receivers is the set of
// tiles willing to accept (senders are excluded automatically). Each
// receiver serves at most one sender.
func SimulateRemap(cfg Config, pp ProtocolParams, senders, receivers []int) ProtocolResult {
	s := NewSimulator(cfg)
	res := ProtocolResult{}

	isSender := make(map[int]bool, len(senders))
	for _, t := range senders {
		isSender[t] = true
	}
	recvSet := make([]int, 0, len(receivers))
	seen := map[int]bool{}
	for _, t := range receivers {
		if !isSender[t] && !seen[t] {
			seen[t] = true
			recvSet = append(recvSet, t)
		}
	}

	// Phase (a): broadcast requests.
	reqs := make([]*Packet, 0, len(senders))
	for _, t := range senders {
		reqs = append(reqs, s.Broadcast(t, 0))
	}
	cyc, ok := s.RunUntilIdle(1_000_000)
	if !ok {
		panic("noc: request phase did not drain")
	}
	res.RequestDone = cyc

	// Phase (b): each receiver responds to every sender, injecting after
	// its local decision delay from the request's arrival.
	resps := make([]*Packet, 0, len(recvSet)*len(senders))
	for si, snd := range senders {
		arrivals := reqs[si].DeliveredAt
		for _, rcv := range recvSet {
			at := arrivals[rcv] + pp.ResponseDelay
			resps = append(resps, s.SendUnicast(rcv, snd, 1, at))
		}
	}
	if len(resps) > 0 {
		cyc, ok = s.RunUntilIdle(2_000_000)
		if !ok {
			panic("noc: response phase did not drain")
		}
	}
	res.ResponseDone = cyc

	// Phase (c): greedy nearest-receiver matching. Senders are served in
	// order of their best available distance (closest pair first), which
	// keeps the matching deterministic and conflict-free.
	assigned := map[int]bool{}
	remaining := append([]int(nil), senders...)
	for len(remaining) > 0 {
		bestS, bestR, bestH := -1, -1, 1<<30
		for _, snd := range remaining {
			for _, rcv := range recvSet {
				if assigned[rcv] {
					continue
				}
				h := s.RouterHops(snd, rcv)
				if h < bestH || (h == bestH && (rcv < bestR || bestR == -1)) {
					bestS, bestR, bestH = snd, rcv, h
				}
			}
		}
		if bestS == -1 {
			res.UnmatchedSenders = len(remaining)
			break
		}
		assigned[bestR] = true
		res.Pairs = append(res.Pairs, RemapPair{Sender: bestS, Receiver: bestR, Hops: bestH})
		for i, t := range remaining {
			if t == bestS {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}

	// Weight exchange: both directions, all pairs in parallel.
	start := s.Cycle()
	for _, pr := range res.Pairs {
		s.SendUnicast(pr.Sender, pr.Receiver, pp.WeightFlits, start)
		s.SendUnicast(pr.Receiver, pr.Sender, pp.WeightFlits, start)
	}
	if len(res.Pairs) > 0 {
		cyc, ok = s.RunUntilIdle(10_000_000)
		if !ok {
			panic("noc: swap phase did not drain")
		}
	}
	res.SwapDone = cyc
	res.TotalCycles = cyc
	res.FlitHops = s.FlitHops()
	return res
}

// MonteCarloOverhead reproduces the paper's Section IV.C experiment: run
// `rounds` random fault scenarios, each with nSenders sender tiles and
// nReceivers receiver tiles placed uniformly at random, and report the
// remap handshake's cycle overhead relative to epochCycles of computation.
type OverheadStats struct {
	Rounds           int
	MeanCycles       float64
	WorstCycles      int
	MeanOverhead     float64 // fraction of epochCycles
	WorstOverhead    float64
	MeanPairs        float64
	UnmatchedSenders int
}

// MonteCarloOverhead runs the Monte Carlo overhead study.
func MonteCarloOverhead(cfg Config, pp ProtocolParams, rounds, nSenders, nReceivers int, epochCycles float64, rng *tensor.RNG) OverheadStats {
	st := OverheadStats{Rounds: rounds}
	var sumCycles, sumPairs float64
	for r := 0; r < rounds; r++ {
		perm := rng.Perm(cfg.Tiles())
		senders := append([]int(nil), perm[:nSenders]...)
		receivers := append([]int(nil), perm[nSenders:nSenders+nReceivers]...)
		res := SimulateRemap(cfg, pp, senders, receivers)
		sumCycles += float64(res.TotalCycles)
		sumPairs += float64(len(res.Pairs))
		st.UnmatchedSenders += res.UnmatchedSenders
		if res.TotalCycles > st.WorstCycles {
			st.WorstCycles = res.TotalCycles
		}
	}
	st.MeanCycles = sumCycles / float64(rounds)
	st.MeanPairs = sumPairs / float64(rounds)
	if epochCycles > 0 {
		st.MeanOverhead = st.MeanCycles / epochCycles
		st.WorstOverhead = float64(st.WorstCycles) / epochCycles
	}
	return st
}

// NearestReceivers returns, for diagnostic purposes, the receivers sorted
// by hop distance from a sender.
func NearestReceivers(cfg Config, sender int, receivers []int) []RemapPair {
	s := NewSimulator(cfg)
	out := make([]RemapPair, 0, len(receivers))
	for _, r := range receivers {
		out = append(out, RemapPair{Sender: sender, Receiver: r, Hops: s.RouterHops(sender, r)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hops != out[j].Hops {
			return out[i].Hops < out[j].Hops
		}
		return out[i].Receiver < out[j].Receiver
	})
	return out
}
