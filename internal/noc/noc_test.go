package noc

import (
	"testing"
	"testing/quick"

	"remapd/internal/tensor"
)

// cfg1 is a 4×4 mesh with one tile per router — simplest to reason about.
func cfg1() Config {
	return Config{MeshX: 4, MeshY: 4, Concentration: 1, BufferFlits: 4, RouterDelay: 2}
}

func TestConfigCounts(t *testing.T) {
	c := DefaultConfig()
	if c.Tiles() != 64 || c.Routers() != 16 {
		t.Fatalf("tiles=%d routers=%d", c.Tiles(), c.Routers())
	}
	cm, err := CMeshForTiles(8, 8)
	if err != nil || cm.MeshX != 4 || cm.MeshY != 4 {
		t.Fatalf("CMeshForTiles: %v %+v", err, cm)
	}
	if _, err := CMeshForTiles(3, 4); err == nil {
		t.Fatal("odd tile grid must be rejected")
	}
}

func TestRouterHopsManhattan(t *testing.T) {
	s := NewSimulator(cfg1())
	// Tile i == router i. Router 0 at (0,0); router 15 at (3,3).
	if h := s.RouterHops(0, 15); h != 6 {
		t.Fatalf("hops(0,15)=%d, want 6", h)
	}
	if h := s.RouterHops(5, 5); h != 0 {
		t.Fatalf("hops(5,5)=%d, want 0", h)
	}
	if h := s.RouterHops(3, 0); h != 3 {
		t.Fatalf("hops(3,0)=%d, want 3", h)
	}
}

func TestRouterHopsConcentration(t *testing.T) {
	s := NewSimulator(DefaultConfig()) // concentration 4
	// Tiles 0..3 share router 0.
	if h := s.RouterHops(0, 3); h != 0 {
		t.Fatalf("same-router tiles hops=%d, want 0", h)
	}
	if h := s.RouterHops(0, 4); h != 1 {
		t.Fatalf("adjacent-router tiles hops=%d, want 1", h)
	}
}

func TestUnicastZeroLoadLatency(t *testing.T) {
	cfg := cfg1()
	for _, tc := range []struct{ src, dst, hops int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 15, 6},
	} {
		s := NewSimulator(cfg)
		p := s.SendUnicast(tc.src, tc.dst, 1, 0)
		if _, ok := s.RunUntilIdle(1000); !ok {
			t.Fatalf("packet %d->%d not delivered", tc.src, tc.dst)
		}
		want := 2 + tc.hops*(1+cfg.RouterDelay)
		if got := p.Latency(); got != want {
			t.Fatalf("latency %d->%d = %d, want %d", tc.src, tc.dst, got, want)
		}
	}
}

func TestWormholeSerializationLatency(t *testing.T) {
	cfg := cfg1()
	s := NewSimulator(cfg)
	const flits = 16
	p := s.SendUnicast(0, 3, flits, 0)
	if _, ok := s.RunUntilIdle(1000); !ok {
		t.Fatal("not delivered")
	}
	want := 2 + 3*(1+cfg.RouterDelay) + (flits - 1)
	if got := p.Latency(); got != want {
		t.Fatalf("wormhole latency = %d, want %d (pipelined, not store-and-forward)", got, want)
	}
}

func TestBroadcastReachesAllTiles(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSimulator(cfg)
	p := s.Broadcast(17, 0)
	if len(p.Dsts) != cfg.Tiles()-1 {
		t.Fatalf("broadcast to %d tiles, want %d", len(p.Dsts), cfg.Tiles()-1)
	}
	if _, ok := s.RunUntilIdle(10000); !ok {
		t.Fatalf("broadcast did not drain; %d pending", s.Pending())
	}
	for tile, cyc := range p.DeliveredAt {
		if cyc < 0 {
			t.Fatalf("tile %d never received the broadcast", tile)
		}
	}
}

func TestMulticastSplitDeliversExactSet(t *testing.T) {
	s := NewSimulator(cfg1())
	dsts := []int{3, 12, 15, 5}
	p := s.SendMulticast(0, dsts, 0)
	if _, ok := s.RunUntilIdle(1000); !ok {
		t.Fatal("multicast did not drain")
	}
	if len(p.DeliveredAt) != 4 {
		t.Fatalf("delivered map has %d entries", len(p.DeliveredAt))
	}
	for _, d := range dsts {
		if p.DeliveredAt[d] < 0 {
			t.Fatalf("dest %d missed", d)
		}
	}
}

func TestMulticastDropsDuplicatesAndSelf(t *testing.T) {
	s := NewSimulator(cfg1())
	p := s.SendMulticast(2, []int{2, 7, 7, 9}, 0)
	if len(p.Dsts) != 2 {
		t.Fatalf("dsts = %v, want {7, 9}", p.Dsts)
	}
	if _, ok := s.RunUntilIdle(1000); !ok {
		t.Fatal("not drained")
	}
}

func TestMultiFlitMulticastRejected(t *testing.T) {
	s := NewSimulator(cfg1())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.enqueue(0, []int{1, 2}, 5, 0)
}

func TestContentionSerializesSharedLink(t *testing.T) {
	cfg := cfg1()
	const flits = 32

	// Baseline: one long packet 0→3 along row 0.
	s1 := NewSimulator(cfg)
	s1.SendUnicast(0, 3, flits, 0)
	base, ok := s1.RunUntilIdle(10000)
	if !ok {
		t.Fatal("baseline not drained")
	}

	// Contended: 0→3 and 1→3 share the (1→2→3) links.
	s2 := NewSimulator(cfg)
	s2.SendUnicast(0, 3, flits, 0)
	s2.SendUnicast(1, 3, flits, 0)
	contended, ok := s2.RunUntilIdle(10000)
	if !ok {
		t.Fatal("contended not drained")
	}
	if contended < base+flits/2 {
		t.Fatalf("shared link should serialize: baseline %d, contended %d", base, contended)
	}

	// Disjoint rows: 0→3 (row 0) and 12→15 (row 3) overlap in time.
	s3 := NewSimulator(cfg)
	s3.SendUnicast(0, 3, flits, 0)
	s3.SendUnicast(12, 15, flits, 0)
	parallel, ok := s3.RunUntilIdle(10000)
	if !ok {
		t.Fatal("parallel not drained")
	}
	if parallel > base+2 {
		t.Fatalf("disjoint paths must run in parallel: baseline %d, parallel %d", base, parallel)
	}
}

func TestWormholeIntegrityUnderCrossTraffic(t *testing.T) {
	// Two long packets crossing at a middle router from different inputs
	// must both arrive complete (lock prevents interleaving corruption).
	cfg := cfg1()
	s := NewSimulator(cfg)
	pa := s.SendUnicast(0, 3, 20, 0)  // west→east through row 0
	pb := s.SendUnicast(13, 1, 20, 0) // (1,3) north then to (1,0) — crosses router 1
	if _, ok := s.RunUntilIdle(10000); !ok {
		t.Fatal("not drained")
	}
	if !pa.Done() || !pb.Done() {
		t.Fatal("packets incomplete")
	}
}

func TestBackpressureSmallBuffers(t *testing.T) {
	cfg := cfg1()
	cfg.BufferFlits = 1
	s := NewSimulator(cfg)
	for i := 0; i < 4; i++ {
		s.SendUnicast(0, 15, 8, 0)
	}
	if _, ok := s.RunUntilIdle(100000); !ok {
		t.Fatal("1-flit buffers deadlocked or lost flits")
	}
}

// Property: any random batch of unicasts and broadcasts drains completely
// (no deadlock, no loss) and every delivery cycle is sane.
func TestRandomTrafficDrainsProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint32, nRaw uint8) bool {
		rng := tensor.NewRNG(uint64(seed))
		s := NewSimulator(cfg)
		n := int(nRaw)%20 + 1
		var pkts []*Packet
		for i := 0; i < n; i++ {
			src := rng.Intn(cfg.Tiles())
			if rng.Float64() < 0.2 {
				pkts = append(pkts, s.Broadcast(src, rng.Intn(50)))
			} else {
				dst := rng.Intn(cfg.Tiles())
				if dst == src {
					dst = (dst + 1) % cfg.Tiles()
				}
				pkts = append(pkts, s.SendUnicast(src, dst, 1+rng.Intn(64), rng.Intn(50)))
			}
		}
		if _, ok := s.RunUntilIdle(1_000_000); !ok {
			return false
		}
		for _, p := range pkts {
			if !p.Done() {
				return false
			}
			for _, c := range p.DeliveredAt {
				if c < p.InjectAt {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRemapPicksNearestReceiver(t *testing.T) {
	cfg := cfg1()
	pp := DefaultProtocolParams()
	pp.WeightFlits = 16
	// Sender at tile 0; receivers at 1 (hop 1) and 15 (hop 6).
	res := SimulateRemap(cfg, pp, []int{0}, []int{15, 1})
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	if res.Pairs[0].Receiver != 1 || res.Pairs[0].Hops != 1 {
		t.Fatalf("chose %+v, want receiver 1 at hop 1", res.Pairs[0])
	}
	if res.UnmatchedSenders != 0 {
		t.Fatal("sender should be matched")
	}
}

func TestSimulateRemapPhasesOrdered(t *testing.T) {
	cfg := cfg1()
	pp := DefaultProtocolParams()
	pp.WeightFlits = 64
	res := SimulateRemap(cfg, pp, []int{0, 15}, []int{5, 6, 9})
	if !(res.RequestDone > 0 && res.ResponseDone >= res.RequestDone && res.SwapDone > res.ResponseDone) {
		t.Fatalf("phase cycles out of order: %+v", res)
	}
	if res.TotalCycles != res.SwapDone {
		t.Fatal("TotalCycles must equal SwapDone")
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("expected 2 pairs, got %v", res.Pairs)
	}
	if res.Pairs[0].Receiver == res.Pairs[1].Receiver {
		t.Fatal("a receiver may serve only one sender")
	}
}

func TestSimulateRemapReceiverConflictResolution(t *testing.T) {
	cfg := cfg1()
	pp := DefaultProtocolParams()
	pp.WeightFlits = 8
	// Both senders closest to receiver 5; one must take it, the other the
	// next-nearest (6).
	res := SimulateRemap(cfg, pp, []int{4, 9}, []int{5, 6})
	if len(res.Pairs) != 2 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	got := map[int]bool{}
	for _, p := range res.Pairs {
		got[p.Receiver] = true
	}
	if !got[5] || !got[6] {
		t.Fatalf("receivers not disjointly assigned: %v", res.Pairs)
	}
}

func TestSimulateRemapUnmatchedSenders(t *testing.T) {
	cfg := cfg1()
	pp := DefaultProtocolParams()
	pp.WeightFlits = 8
	res := SimulateRemap(cfg, pp, []int{0, 1, 2}, []int{7})
	if len(res.Pairs) != 1 || res.UnmatchedSenders != 2 {
		t.Fatalf("pairs=%v unmatched=%d", res.Pairs, res.UnmatchedSenders)
	}
}

func TestSimulateRemapParallelSwapsOverlap(t *testing.T) {
	cfg := cfg1()
	pp := DefaultProtocolParams()
	pp.WeightFlits = 256

	// One swap pair in isolation.
	solo := SimulateRemap(cfg, pp, []int{0}, []int{1})
	// Two pairs with disjoint paths (opposite mesh corners).
	dual := SimulateRemap(cfg, pp, []int{0, 15}, []int{1, 14})
	if len(dual.Pairs) != 2 {
		t.Fatalf("dual pairs = %v", dual.Pairs)
	}
	// The paper's key performance claim: parallel non-overlapping remaps
	// cost barely more than one.
	if float64(dual.TotalCycles) > 1.3*float64(solo.TotalCycles) {
		t.Fatalf("parallel remaps should overlap: solo %d vs dual %d", solo.TotalCycles, dual.TotalCycles)
	}
}

func TestMonteCarloOverheadMagnitude(t *testing.T) {
	cfg := DefaultConfig()
	pp := DefaultProtocolParams()
	rng := tensor.NewRNG(42)
	// Epoch compute at 1.2 GHz for ~1 s ⇒ overhead should be far below 1%.
	st := MonteCarloOverhead(cfg, pp, 10, 2, 10, 3e6, rng)
	if st.MeanCycles <= 0 || st.WorstCycles < int(st.MeanCycles) {
		t.Fatalf("stats insane: %+v", st)
	}
	if st.MeanOverhead <= 0 || st.MeanOverhead > 0.02 {
		t.Fatalf("mean overhead %v outside plausible range", st.MeanOverhead)
	}
	if st.WorstOverhead < st.MeanOverhead {
		t.Fatal("worst < mean")
	}
}

func TestNearestReceiversSorted(t *testing.T) {
	out := NearestReceivers(cfg1(), 0, []int{15, 1, 5})
	if out[0].Receiver != 1 || out[2].Receiver != 15 {
		t.Fatalf("sorted order wrong: %v", out)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Hops < out[i-1].Hops {
			t.Fatal("not sorted by hops")
		}
	}
}
