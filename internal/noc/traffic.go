package noc

import (
	"fmt"

	"remapd/internal/tensor"
)

// Synthetic-traffic evaluation, the standard BookSim methodology: inject
// packets under a parameterised spatial pattern at a given rate and measure
// delivered-packet latency. The paper's architecture section argues for a
// concentrated mesh over a plain mesh on hop count and energy; these
// harnesses quantify that.

// Pattern names a spatial traffic pattern.
type Pattern int

// Supported patterns.
const (
	// UniformRandom sends each packet to a uniformly random other tile.
	UniformRandom Pattern = iota
	// Transpose sends tile (x, y) → (y, x) in tile-grid coordinates.
	Transpose
	// Hotspot sends a share of traffic to a single hot tile and the rest
	// uniformly (models the eDRAM/IO tile of an RCS).
	Hotspot
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Transpose:
		return "transpose"
	case Hotspot:
		return "hotspot"
	}
	return "unknown"
}

// LoadStats reports one load point of a latency-throughput sweep.
type LoadStats struct {
	Pattern        Pattern
	InjectionRate  float64 // packets per tile per cycle
	PacketsSent    int
	PacketsArrived int
	AvgLatency     float64
	MaxLatency     int
	Throughput     float64 // delivered packets per tile per cycle
	Saturated      bool    // network failed to drain within the deadline
}

// destFor picks a destination for the pattern.
func destFor(cfg Config, p Pattern, src int, rng *tensor.RNG) int {
	n := cfg.Tiles()
	switch p {
	case Transpose:
		// Tile grid is (MeshX·k)×(MeshY·k) conceptually; use a simple
		// index transpose that is a fixed permutation.
		d := (src*7 + 3) % n // decorrelated fixed permutation fallback
		// For square tile counts use the true transpose.
		side := 1
		for side*side < n {
			side++
		}
		if side*side == n {
			x, y := src%side, src/side
			d = x*side + y
		}
		if d == src {
			d = (d + 1) % n
		}
		return d
	case Hotspot:
		if rng.Float64() < 0.2 {
			hot := n / 2
			if hot == src {
				hot = (hot + 1) % n
			}
			return hot
		}
		fallthrough
	default:
		d := rng.Intn(n)
		if d == src {
			d = (d + 1) % n
		}
		return d
	}
}

// RunLoad injects single-flit packets for `injectCycles` cycles at the
// given per-tile rate, then drains (up to a deadline) and reports latency
// statistics. Single-flit packets keep the measurement about routing and
// contention rather than serialization.
func RunLoad(cfg Config, p Pattern, rate float64, injectCycles int, rng *tensor.RNG) LoadStats {
	s := NewSimulator(cfg)
	var pkts []*Packet
	for cyc := 0; cyc < injectCycles; cyc++ {
		for t := 0; t < cfg.Tiles(); t++ {
			if rng.Float64() < rate {
				pkts = append(pkts, s.SendUnicast(t, destFor(cfg, p, t, rng), 1, cyc))
			}
		}
		s.Step()
	}
	deadline := injectCycles*10 + 10000
	_, drained := s.RunUntilIdle(deadline)

	st := LoadStats{Pattern: p, InjectionRate: rate, PacketsSent: len(pkts), Saturated: !drained}
	var sum float64
	for _, pk := range pkts {
		if !pk.Done() {
			continue
		}
		st.PacketsArrived++
		l := pk.Latency()
		sum += float64(l)
		if l > st.MaxLatency {
			st.MaxLatency = l
		}
	}
	if st.PacketsArrived > 0 {
		st.AvgLatency = sum / float64(st.PacketsArrived)
	}
	if s.Cycle() > 0 {
		st.Throughput = float64(st.PacketsArrived) / float64(s.Cycle()) / float64(cfg.Tiles())
	}
	return st
}

// LoadSweep runs RunLoad over a range of injection rates, producing the
// classic latency-throughput curve.
func LoadSweep(cfg Config, p Pattern, rates []float64, injectCycles int, seed uint64) []LoadStats {
	out := make([]LoadStats, 0, len(rates))
	for _, r := range rates {
		rng := tensor.NewRNG(seed)
		out = append(out, RunLoad(cfg, p, r, injectCycles, rng))
	}
	return out
}

// TopologyComparison contrasts a plain mesh against the c-mesh for the same
// tile count — the paper's §III.B.1 design argument.
type TopologyComparison struct {
	Name            string
	Routers         int
	AvgRemapHops    float64 // mean sender→receiver hops over random pairs
	BroadcastCycles int     // one-tile broadcast completion time
	RemapCycles     int     // full 3-phase handshake, 2 senders/10 receivers
	FlitHops        int     // traffic volume of that handshake (energy proxy)
}

// CompareTopologies evaluates the plain 8×8 mesh against the 4×4
// concentration-4 c-mesh for 64 tiles.
func CompareTopologies(seed uint64) []TopologyComparison {
	mesh := Config{MeshX: 8, MeshY: 8, Concentration: 1, BufferFlits: 8, RouterDelay: 2}
	cmesh := DefaultConfig()
	pp := DefaultProtocolParams()

	rng := tensor.NewRNG(seed)
	build := func(name string, cfg Config) TopologyComparison {
		tc := TopologyComparison{Name: name, Routers: cfg.Routers()}
		s := NewSimulator(cfg)
		var hops, n float64
		for i := 0; i < 200; i++ {
			a, b := rng.Intn(cfg.Tiles()), rng.Intn(cfg.Tiles())
			if a == b {
				continue
			}
			hops += float64(s.RouterHops(a, b))
			n++
		}
		tc.AvgRemapHops = hops / n

		sb := NewSimulator(cfg)
		p := sb.Broadcast(0, 0)
		if _, ok := sb.RunUntilIdle(100000); !ok {
			panic("noc: broadcast did not drain")
		}
		tc.BroadcastCycles = p.Latency()

		res := SimulateRemap(cfg, pp, []int{5, 40}, []int{1, 20, 33, 50, 62})
		tc.RemapCycles = res.TotalCycles
		tc.FlitHops = res.FlitHops
		return tc
	}
	return []TopologyComparison{build("mesh-8x8", mesh), build("c-mesh-4x4x4", cmesh)}
}

// FormatLoadStats renders a sweep.
func FormatLoadStats(rows []LoadStats) string {
	out := fmt.Sprintf("%-10s %8s %8s %8s %10s %9s %9s\n",
		"pattern", "rate", "sent", "arrived", "avg-lat", "max-lat", "saturated")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %8.3f %8d %8d %10.1f %9d %9v\n",
			r.Pattern, r.InjectionRate, r.PacketsSent, r.PacketsArrived, r.AvgLatency, r.MaxLatency, r.Saturated)
	}
	return out
}

// FormatTopologyComparison renders the mesh/c-mesh table.
func FormatTopologyComparison(rows []TopologyComparison) string {
	out := fmt.Sprintf("%-14s %8s %9s %11s %11s %10s\n",
		"topology", "routers", "avg-hops", "bcast-cyc", "remap-cyc", "flit-hops")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %8d %9.2f %11d %11d %10d\n",
			r.Name, r.Routers, r.AvgRemapHops, r.BroadcastCycles, r.RemapCycles, r.FlitHops)
	}
	return out
}
