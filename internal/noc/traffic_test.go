package noc

import (
	"strings"
	"testing"

	"remapd/internal/tensor"
)

func TestRunLoadLowRateDeliversEverything(t *testing.T) {
	cfg := DefaultConfig()
	rng := tensor.NewRNG(1)
	st := RunLoad(cfg, UniformRandom, 0.02, 300, rng)
	if st.Saturated {
		t.Fatal("2% load must not saturate a c-mesh")
	}
	if st.PacketsArrived != st.PacketsSent {
		t.Fatalf("lost packets: %d/%d", st.PacketsArrived, st.PacketsSent)
	}
	if st.AvgLatency < 2 {
		t.Fatalf("implausible latency %v", st.AvgLatency)
	}
}

func TestLoadLatencyMonotoneInRate(t *testing.T) {
	cfg := DefaultConfig()
	sweep := LoadSweep(cfg, UniformRandom, []float64{0.02, 0.30}, 300, 7)
	if sweep[1].AvgLatency <= sweep[0].AvgLatency {
		t.Fatalf("latency must grow with load: %.1f vs %.1f",
			sweep[0].AvgLatency, sweep[1].AvgLatency)
	}
}

func TestHotspotWorseThanUniform(t *testing.T) {
	cfg := DefaultConfig()
	u := RunLoad(cfg, UniformRandom, 0.15, 400, tensor.NewRNG(3))
	h := RunLoad(cfg, Hotspot, 0.15, 400, tensor.NewRNG(3))
	if h.AvgLatency <= u.AvgLatency {
		t.Fatalf("hotspot should congest: uniform %.1f vs hotspot %.1f",
			u.AvgLatency, h.AvgLatency)
	}
}

func TestTransposePatternIsPermutation(t *testing.T) {
	cfg := DefaultConfig() // 64 tiles = 8×8 square
	rng := tensor.NewRNG(4)
	seen := map[int]bool{}
	for src := 0; src < cfg.Tiles(); src++ {
		d := destFor(cfg, Transpose, src, rng)
		if d == src {
			t.Fatalf("self destination for %d", src)
		}
		seen[d] = true
	}
	// A transpose permutation touches most tiles (diagonal self-sends are
	// redirected).
	if len(seen) < cfg.Tiles()*3/4 {
		t.Fatalf("transpose destinations cover only %d tiles", len(seen))
	}
}

func TestCompareTopologiesFavorsCMesh(t *testing.T) {
	rows := CompareTopologies(42)
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	mesh, cmesh := rows[0], rows[1]
	if mesh.Name != "mesh-8x8" || cmesh.Name != "c-mesh-4x4x4" {
		t.Fatalf("row order %v", rows)
	}
	// The paper's §III.B.1 argument: the c-mesh reduces router count and
	// hop count for the same tile count.
	if cmesh.Routers >= mesh.Routers {
		t.Fatal("c-mesh must use fewer routers")
	}
	if cmesh.AvgRemapHops >= mesh.AvgRemapHops {
		t.Fatalf("c-mesh must reduce average hops: %.2f vs %.2f",
			cmesh.AvgRemapHops, mesh.AvgRemapHops)
	}
	if cmesh.FlitHops >= mesh.FlitHops {
		t.Fatalf("c-mesh must reduce handshake traffic volume: %d vs %d",
			cmesh.FlitHops, mesh.FlitHops)
	}
	if !strings.Contains(FormatTopologyComparison(rows), "c-mesh") {
		t.Fatal("formatter broken")
	}
}

func TestFormatLoadStats(t *testing.T) {
	cfg := DefaultConfig()
	sweep := LoadSweep(cfg, UniformRandom, []float64{0.05}, 100, 9)
	if !strings.Contains(FormatLoadStats(sweep), "uniform") {
		t.Fatal("formatter broken")
	}
}
