package tensor

// ConvGeom describes a 2-D convolution geometry. All convolutions in the
// framework are square-kernel with symmetric padding and stride.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	OutC          int // output channels
	K             int // kernel size (K×K)
	Stride        int
	Pad           int
}

// OutH returns the output height for the geometry.
//
//lint:hotpath
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width for the geometry.
//
//lint:hotpath
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// ColRows returns the number of rows of the im2col matrix for one image:
// OutH*OutW.
//
//lint:hotpath
func (g ConvGeom) ColRows() int { return g.OutH() * g.OutW() }

// ColCols returns the number of columns of the im2col matrix: InC*K*K.
//
//lint:hotpath
func (g ConvGeom) ColCols() int { return g.InC * g.K * g.K }

// Im2Col lowers one image (C×H×W, flattened in src) into the patch matrix
// dst of shape (OutH*OutW) × (InC*K*K). Out-of-bounds (padding) taps are
// zero. dst must be pre-allocated with ColRows()*ColCols() elements.
//
// Patches whose K-wide tap span lies fully inside the input row copy it
// contiguously; only edge patches take the per-tap bounds-checked path.
//
//lint:hotpath
func (g ConvGeom) Im2Col(dst, src []float32) {
	oh, ow := g.OutH(), g.OutW()
	cols := g.ColCols()
	if len(dst) != oh*ow*cols {
		panic("tensor: Im2Col dst size mismatch")
	}
	if len(src) != g.InC*g.InH*g.InW {
		panic("tensor: Im2Col src size mismatch")
	}
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := dst[(oy*ow+ox)*cols : (oy*ow+ox+1)*cols]
			x0 := ox*g.Stride - g.Pad
			inX := x0 >= 0 && x0+g.K <= g.InW
			di := 0
			for c := 0; c < g.InC; c++ {
				chn := src[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
				for ky := 0; ky < g.K; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						seg := row[di : di+g.K]
						for kx := range seg {
							seg[kx] = 0
						}
						di += g.K
						continue
					}
					base := iy * g.InW
					if inX {
						copy(row[di:di+g.K], chn[base+x0:base+x0+g.K])
						di += g.K
						continue
					}
					for kx := 0; kx < g.K; kx++ {
						ix := x0 + kx
						if ix < 0 || ix >= g.InW {
							row[di] = 0
						} else {
							row[di] = chn[base+ix]
						}
						di++
					}
				}
			}
		}
	}
}

// Col2Im scatters the patch-matrix gradient (same layout as Im2Col's dst)
// back into an image gradient of size InC×InH×InW, accumulating overlapping
// taps. dstImage is accumulated into (callers should zero it first if
// starting fresh).
//
//lint:hotpath
func (g ConvGeom) Col2Im(dstImage, srcCols []float32) {
	oh, ow := g.OutH(), g.OutW()
	cols := g.ColCols()
	if len(srcCols) != oh*ow*cols {
		panic("tensor: Col2Im src size mismatch")
	}
	if len(dstImage) != g.InC*g.InH*g.InW {
		panic("tensor: Col2Im dst size mismatch")
	}
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := srcCols[(oy*ow+ox)*cols : (oy*ow+ox+1)*cols]
			x0 := ox*g.Stride - g.Pad
			inX := x0 >= 0 && x0+g.K <= g.InW
			si := 0
			for c := 0; c < g.InC; c++ {
				chn := dstImage[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
				for ky := 0; ky < g.K; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						si += g.K
						continue
					}
					base := iy * g.InW
					if inX {
						seg := chn[base+x0 : base+x0+g.K]
						taps := row[si : si+g.K]
						for kx, v := range taps {
							seg[kx] += v
						}
						si += g.K
						continue
					}
					for kx := 0; kx < g.K; kx++ {
						ix := x0 + kx
						if ix >= 0 && ix < g.InW {
							chn[base+ix] += row[si]
						}
						si++
					}
				}
			}
		}
	}
}
