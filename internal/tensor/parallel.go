package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the matrix volume (rows*cols*inner) above which the
// kernels shard work across goroutines. Below it the scheduling cost
// outweighs the parallel speedup.
const parallelThreshold = 64 * 64 * 64

// serialRows reports whether an m-row kernel call of the given volume (its
// total flop count) should run inline on the calling goroutine. Kernels
// check this before building their parallelFor closure: a closure passed to
// parallelFor escapes to the heap, and the serial hot path (every GEMM in a
// bench-scale training step) must stay allocation-free.
//
//lint:hotpath
func serialRows(m, volume int) bool {
	return volume < parallelThreshold || m <= 1 || runtime.GOMAXPROCS(0) <= 1
}

// parallelFor runs work over the row range [0, m), sharding it across
// GOMAXPROCS-bounded goroutines when volume (the total flop count of the
// call) justifies the scheduling cost, and inline otherwise. work must be
// safe to call concurrently on disjoint row ranges.
//
// Sharding never affects results: every kernel routed through this helper
// computes each output row independently, so the worker count (and hence
// GOMAXPROCS) cannot change any summation order.
func parallelFor(m, volume int, work func(r0, r1 int)) {
	if volume < parallelThreshold || m <= 1 {
		work(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		work(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := min(r0+chunk, m)
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			work(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
