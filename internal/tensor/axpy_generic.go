//go:build !amd64

package tensor

// axpy computes dst[j] += v·src[j] over len(src) elements; len(dst) must be
// at least len(src). The 8-way unrolling exposes independent per-element
// chains to the pipeline (each dst[j] is its own accumulation chain, so the
// unroll cannot reorder any addition) and the full-width reslices eliminate
// per-element bounds checks.
//
//lint:hotpath
func axpy(dst, src []float32, v float32) {
	dst = dst[:len(src)]
	n := len(src) &^ 7
	for j := 0; j < n; j += 8 {
		d := dst[j : j+8 : j+8]
		s := src[j : j+8 : j+8]
		d[0] += v * s[0]
		d[1] += v * s[1]
		d[2] += v * s[2]
		d[3] += v * s[3]
		d[4] += v * s[4]
		d[5] += v * s[5]
		d[6] += v * s[6]
		d[7] += v * s[7]
	}
	for j := n; j < len(src); j++ {
		dst[j] += v * src[j]
	}
}
