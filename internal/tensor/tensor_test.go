package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndVolume(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	x.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Fatalf("Set did not store")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("Reshape must share underlying data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{10, 20, 30}, 3)
	x.Add(y)
	if x.Data[2] != 33 {
		t.Fatalf("Add: got %v", x.Data)
	}
	x.Sub(y)
	if x.Data[2] != 3 {
		t.Fatalf("Sub: got %v", x.Data)
	}
	x.Scale(2)
	if x.Data[0] != 2 {
		t.Fatalf("Scale: got %v", x.Data)
	}
	x.AXPY(0.5, y)
	if x.Data[1] != 4+10 {
		t.Fatalf("AXPY: got %v", x.Data)
	}
}

func TestSumDotNorms(t *testing.T) {
	x := FromSlice([]float32{3, -4}, 2)
	if !almostEq(x.Sum(), -1, 1e-9) {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if !almostEq(x.L2Norm(), 5, 1e-9) {
		t.Fatalf("L2Norm = %v", x.L2Norm())
	}
	if x.AbsMax() != 4 {
		t.Fatalf("AbsMax = %v", x.AbsMax())
	}
	y := FromSlice([]float32{2, 1}, 2)
	if !almostEq(Dot(x, y), 2, 1e-9) {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float32{0, 5, 2, 9, 1, 3}, 2, 3)
	if x.ArgMaxRow(0) != 1 {
		t.Fatalf("ArgMaxRow(0) = %d", x.ArgMaxRow(0))
	}
	if x.ArgMaxRow(1) != 0 {
		t.Fatalf("ArgMaxRow(1) = %d", x.ArgMaxRow(1))
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose2D()
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", y.Shape)
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", y.Data)
	}
}

// Property: transposing twice is the identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func(rs, cs uint8) bool {
		r := int(rs%17) + 1
		c := int(cs%23) + 1
		x := New(r, c)
		rng.FillNormal(x, 1)
		y := x.Transpose2D().Transpose2D()
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

// Property: the blocked/parallel MatMul matches a naive triple loop.
func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func(ms, ks, ns uint8) bool {
		m := int(ms%13) + 1
		k := int(ks%11) + 1
		n := int(ns%15) + 1
		a, b := New(m, k), New(k, n)
		rng.FillNormal(a, 1)
		rng.FillNormal(b, 1)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range got.Data {
			if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulLargeParallelPath(t *testing.T) {
	rng := NewRNG(3)
	a, b := New(70, 70), New(70, 70)
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	for i := range got.Data {
		if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-3) {
			t.Fatalf("parallel matmul mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := NewRNG(5)
	a, b := New(9, 6), New(7, 6) // out = a(9×6) · bᵀ(6×7) = 9×7
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)
	out := New(9, 7)
	MatMulTransBInto(out, a, b)
	want := naiveMatMul(a, b.Transpose2D())
	for i := range out.Data {
		if !almostEq(float64(out.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := NewRNG(6)
	a, b := New(8, 5), New(8, 4) // out = aᵀ(5×8) · b(8×4) = 5×4
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)
	out := New(5, 4)
	MatMulTransAInto(out, a, b)
	want := naiveMatMul(a.Transpose2D(), b)
	for i := range out.Data {
		if !almostEq(float64(out.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("MatMulTransA mismatch at %d", i)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestConvGeomDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same-pad conv dims: %d×%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 7, InW: 7, K: 3, Stride: 2, Pad: 0}
	if g2.OutH() != 3 {
		t.Fatalf("strided dims: %d", g2.OutH())
	}
}

// Im2Col correctness: convolution via im2col+matmul must equal a direct
// sliding-window convolution.
func TestIm2ColConvMatchesDirect(t *testing.T) {
	rng := NewRNG(13)
	g := ConvGeom{InC: 2, InH: 6, InW: 5, OutC: 3, K: 3, Stride: 1, Pad: 1}
	img := New(g.InC, g.InH, g.InW)
	w := New(g.OutC, g.InC, g.K, g.K)
	rng.FillNormal(img, 1)
	rng.FillNormal(w, 1)

	cols := New(g.ColRows(), g.ColCols())
	g.Im2Col(cols.Data, img.Data)
	wm := w.Reshape(g.OutC, g.ColCols())
	out := New(g.ColRows(), g.OutC)
	MatMulTransBInto(out, cols, wm)

	oh, ow := g.OutH(), g.OutW()
	for oc := 0; oc < g.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var want float32
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.K; ky++ {
						for kx := 0; kx < g.K; kx++ {
							iy, ix := oy*g.Stride+ky-g.Pad, ox*g.Stride+kx-g.Pad
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							want += img.At(c, iy, ix) * w.At(oc, c, ky, kx)
						}
					}
				}
				got := out.At(oy*ow+ox, oc)
				if !almostEq(float64(got), float64(want), 1e-4) {
					t.Fatalf("conv mismatch at oc=%d oy=%d ox=%d: %v vs %v", oc, oy, ox, got, want)
				}
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col — for any image x and patch
// matrix y: <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjointProperty(t *testing.T) {
	rng := NewRNG(17)
	f := func(hs, ws, ks uint8) bool {
		h := int(hs%6) + 3
		w := int(ws%6) + 3
		k := int(ks%2)*2 + 1 // 1 or 3
		g := ConvGeom{InC: 2, InH: h, InW: w, K: k, Stride: 1, Pad: k / 2}
		x := New(g.InC, h, w)
		rng.FillNormal(x, 1)
		ax := New(g.ColRows(), g.ColCols())
		g.Im2Col(ax.Data, x.Data)
		y := New(g.ColRows(), g.ColCols())
		rng.FillNormal(y, 1)
		aty := New(g.InC, h, w)
		g.Col2Im(aty.Data, y.Data)
		return almostEq(Dot(ax, y), Dot(x, aty), 1e-2*(1+math.Abs(Dot(ax, y))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(100)
	same := true
	a2 := NewRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(2)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(257)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", v)
		}
		seen[v] = true
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(8)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn badly skewed at %d: %d", i, c)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := NewRNG(1)
	x, y := New(128, 128), New(128, 128)
	rng.FillNormal(x, 1)
	rng.FillNormal(y, 1)
	out := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

func BenchmarkIm2Col32(b *testing.B) {
	g := ConvGeom{InC: 16, InH: 32, InW: 32, K: 3, Stride: 1, Pad: 1}
	src := make([]float32, g.InC*g.InH*g.InW)
	dst := make([]float32, g.ColRows()*g.ColCols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Im2Col(dst, src)
	}
}
