// Package tensor implements the dense float32 tensor math that underpins
// the CNN training framework. It is the lowest substrate layer of the
// repository: everything above it (layers, models, the crossbar MVM engine)
// is expressed in terms of these tensors.
//
// Tensors are row-major and of arbitrary rank. The package favours explicit,
// allocation-conscious APIs (e.g. MatMulInto) because the training loop calls
// these routines millions of times.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// The zero value is an empty tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape.
//
// The panic path formats a copy of shape, not shape itself: passing the
// parameter to fmt would make it escape, forcing every caller to heap-
// allocate its variadic argument list even on the non-panicking hot path
// (Workspace.Take forwards here on every buffer miss).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, append([]int(nil), shape...)))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
//
//lint:hotpath trivial accessor on the kernel path
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
//
//lint:hotpath trivial accessor on the kernel path
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
//
//lint:hotpath trivial accessor on the kernel path
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal volume.
// The underlying data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0.
//
//lint:hotpath
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
//
//lint:hotpath
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index (rank must match).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
//
//lint:hotpath
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Add accumulates o into t element-wise. Shapes must have equal volume.
//
//lint:hotpath
func (t *Tensor) Add(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Add volume mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Sub subtracts o from t element-wise.
//
//lint:hotpath
func (t *Tensor) Sub(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Sub volume mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element by s.
//
//lint:hotpath
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY computes t += a*o element-wise.
//
//lint:hotpath
func (t *Tensor) AXPY(a float32, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AXPY volume mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Dot returns the inner product of the flattened tensors.
//
//lint:hotpath
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot volume mismatch")
	}
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// Sum returns the sum of all elements as float64 for stability.
//
//lint:hotpath
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AbsMax returns the maximum absolute element value (0 for empty tensors).
//
//lint:hotpath
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
//
//lint:hotpath
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMaxRow returns, for a 2-D tensor, the index of the maximum element in
// row r. Useful for classification outputs.
//
//lint:hotpath
func (t *Tensor) ArgMaxRow(r int) int {
	if t.Rank() != 2 {
		panic("tensor: ArgMaxRow requires rank 2")
	}
	cols := t.Shape[1]
	row := t.Data[r*cols : (r+1)*cols]
	best, bi := row[0], 0
	for i, v := range row {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Transpose2D returns a new tensor that is the transpose of a 2-D tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose2D requires rank 2")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	// Blocked transpose for cache friendliness.
	const bs = 32
	for i0 := 0; i0 < r; i0 += bs {
		i1 := min(i0+bs, r)
		for j0 := 0; j0 < c; j0 += bs {
			j1 := min(j0+bs, c)
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					out.Data[j*r+i] = t.Data[i*c+j]
				}
			}
		}
	}
	return out
}

// String renders a short description (shape plus a handful of values),
// intended for debugging rather than serialization.
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		return fmt.Sprintf("Tensor%v[%v %v %v ... %v]", t.Shape, t.Data[0], t.Data[1], t.Data[2], t.Data[n-1])
	}
	return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
}

//lint:hotpath
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
