package tensor

// axpy computes dst[j] += v·src[j] over len(src) elements; len(dst) must be
// at least len(src). Implemented in axpy_amd64.s with baseline SSE2 packed
// multiply/add — element-wise IEEE operations identical to the Go loop, so
// results are bit-identical to the generic version (see the determinism
// argument in axpy_amd64.s and the golden tests in kernels_test.go).
//
//lint:hotpath vector kernel, asm body
//go:noescape
func axpy(dst, src []float32, v float32)
