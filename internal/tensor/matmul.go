package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the matrix volume (rows*cols*inner) above which
// MatMulInto shards work across goroutines. Below it the scheduling cost
// outweighs the parallel speedup.
const parallelThreshold = 64 * 64 * 64

// MatMul returns a × b for 2-D tensors (m×k)·(k×n) → (m×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, reusing out's storage. out must be m×n.
// The kernel is an i-k-j loop with the b row held in a slice, which lets the
// compiler vectorise the inner accumulation; large products are sharded
// across GOMAXPROCS goroutines by row blocks.
func MatMulInto(out, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMulInto requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulInto inner dimension mismatch")
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulInto output shape mismatch")
	}
	out.Zero()

	work := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 { //lint:allow float-eq zero-skip fast path: skipping an exact-zero operand cannot change the sum
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}

	if m*n*k < parallelThreshold {
		work(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := min(r0+chunk, m)
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			work(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMulTransBInto computes out = a × bᵀ where b is n×k (so bᵀ is k×n).
// This avoids materialising the transpose for backward passes.
func MatMulTransBInto(out, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMulTransBInto requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransBInto inner dimension mismatch")
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulTransBInto output shape mismatch")
	}

	work := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	}

	if m*n*k < parallelThreshold {
		work(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := min(r0+chunk, m)
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			work(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMulTransAInto computes out = aᵀ × b where a is k×m (so aᵀ is m×k).
// Used for weight-gradient accumulation (dW = xᵀ·dy patterns).
func MatMulTransAInto(out, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMulTransAInto requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransAInto inner dimension mismatch")
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulTransAInto output shape mismatch")
	}
	out.Zero()

	// out[i][j] = Σ_p a[p][i] * b[p][j]. Parallelise over output rows i to
	// keep writes disjoint; each worker streams over p.
	work := func(r0, r1 int) {
		for p := 0; p < k; p++ {
			arow := a.Data[p*m : (p+1)*m]
			brow := b.Data[p*n : (p+1)*n]
			for i := r0; i < r1; i++ {
				av := arow[i]
				if av == 0 { //lint:allow float-eq zero-skip fast path: skipping an exact-zero operand cannot change the sum
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}

	if m*n*k < parallelThreshold {
		work(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := min(r0+chunk, m)
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			work(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
