package tensor

import "sync"

// The three GEMM kernels below are register-tiled: each pass over the
// streamed operand computes a small compile-time-constant tile of output
// rows (mrTile) instead of one, which divides the memory traffic on the
// streamed matrix by the tile height — the dominant cost once the operand
// no longer fits in cache. All three funnel their inner loops through the
// vector axpy kernel (SSE2 on amd64, unrolled Go elsewhere), which operates
// on distinct output elements only. The tiling is chosen so that it can
// never change results: it only reorders *which rows* are in flight, while
// the additions into any single output element stay in ascending inner-index
// order with a single accumulation chain, exactly like the naive reference
// loops (kernels_test.go proves bit-identity over a shape sweep). Tile sizes
// are compile-time constants — never derived from GOMAXPROCS — so the
// summation order per shape is fixed on every machine.
//
// The row loops live in named functions (not closures) so the serial path —
// every GEMM below parallelThreshold — allocates nothing; only the parallel
// branch builds a closure for the goroutine fan-out.
const (
	// mrTile is the output-row tile of MatMulInto/MatMulTransBInto: four
	// rows of a share each streamed row of b (or bᵀ).
	mrTile = 4
	// transABlock is the output-row block of MatMulTransAInto: the block
	// stays cache-resident across the full k-sweep instead of re-streaming
	// the whole output matrix once per inner index.
	transABlock = 8
)

// nonzero reports whether a kernel operand is exactly zero. Skipping an
// exact-zero multiplier cannot change any sum, but it must be applied
// consistently in blocked and reference kernels for bit-identity.
//
//lint:hotpath
func nonzero(v float32) bool {
	return v != 0 //lint:allow float-eq zero-skip fast path: skipping an exact-zero operand cannot change the sum
}

// MatMul returns a × b for 2-D tensors (m×k)·(k×n) → (m×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// matmulRows accumulates out rows [r0, r1) of the (m×k)·(k×n) product: an
// i-k-j loop register-tiled over mrTile rows of a, so each streamed row of b
// is applied to four output rows per load. Rows of od must be pre-zeroed.
//
//lint:hotpath
func matmulRows(od, ad, bd []float32, k, n, r0, r1 int) {
	i := r0
	for ; i+mrTile <= r1; i += mrTile {
		a0 := ad[i*k : i*k+k]
		a1 := ad[(i+1)*k : (i+1)*k+k]
		a2 := ad[(i+2)*k : (i+2)*k+k]
		a3 := ad[(i+3)*k : (i+3)*k+k]
		o0 := od[i*n : i*n+n]
		o1 := od[(i+1)*n : (i+1)*n+n]
		o2 := od[(i+2)*n : (i+2)*n+n]
		o3 := od[(i+3)*n : (i+3)*n+n]
		for p := 0; p < k; p++ {
			brow := bd[p*n : p*n+n]
			if v := a0[p]; nonzero(v) {
				axpy(o0, brow, v)
			}
			if v := a1[p]; nonzero(v) {
				axpy(o1, brow, v)
			}
			if v := a2[p]; nonzero(v) {
				axpy(o2, brow, v)
			}
			if v := a3[p]; nonzero(v) {
				axpy(o3, brow, v)
			}
		}
	}
	for ; i < r1; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*n : i*n+n]
		for p := 0; p < k; p++ {
			if v := arow[p]; nonzero(v) {
				axpy(orow, bd[p*n:p*n+n], v)
			}
		}
	}
}

// MatMulInto computes out = a × b, reusing out's storage. out must be m×n.
// Large products are sharded across GOMAXPROCS goroutines by row blocks
// (row results are independent, so sharding cannot change results).
//
//lint:hotpath
func MatMulInto(out, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMulInto requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulInto inner dimension mismatch")
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulInto output shape mismatch")
	}
	out.Zero()
	ad, bd, od := a.Data, b.Data, out.Data
	if serialRows(m, m*n*k) {
		matmulRows(od, ad, bd, k, n, 0, m)
		return
	}
	//lint:allow hotpath-alloc parallel branch only: the closure fan-out runs above parallelThreshold, the serial hot path allocates nothing
	parallelFor(m, m*n*k, func(r0, r1 int) {
		matmulRows(od, ad, bd, k, n, r0, r1)
	})
}

// transScratch pools the transposed-operand buffers of MatMulTransBInto.
// Pooled buffers are fully overwritten before use, so reuse cannot affect
// results; the pool only keeps the steady state allocation-free under
// concurrent callers (distributed workers run independent cells in-process).
var transScratch = sync.Pool{New: func() any { return new([]float32) }}

// transBRows accumulates out rows [r0, r1) of a × bᵀ, where bt holds the
// already-transposed operand (k×n row-major). Same row tiling as
// matmulRows, but with unguarded axpy calls: the dot-product reference has
// no zero-skip, so neither may this path. Rows of od must be pre-zeroed.
//
//lint:hotpath
func transBRows(od, ad, bt []float32, k, n, r0, r1 int) {
	i := r0
	for ; i+mrTile <= r1; i += mrTile {
		a0 := ad[i*k : i*k+k]
		a1 := ad[(i+1)*k : (i+1)*k+k]
		a2 := ad[(i+2)*k : (i+2)*k+k]
		a3 := ad[(i+3)*k : (i+3)*k+k]
		o0 := od[i*n : i*n+n]
		o1 := od[(i+1)*n : (i+1)*n+n]
		o2 := od[(i+2)*n : (i+2)*n+n]
		o3 := od[(i+3)*n : (i+3)*n+n]
		for p := 0; p < k; p++ {
			brow := bt[p*n : p*n+n]
			axpy(o0, brow, a0[p])
			axpy(o1, brow, a1[p])
			axpy(o2, brow, a2[p])
			axpy(o3, brow, a3[p])
		}
	}
	for ; i < r1; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*n : i*n+n]
		for p := 0; p < k; p++ {
			axpy(orow, bt[p*n:p*n+n], arow[p])
		}
	}
}

// MatMulTransBInto computes out = a × bᵀ where b is n×k (so bᵀ is k×n).
// The kernel first transposes b into pooled scratch, then accumulates
// out rows with the vector axpy kernel over contiguous bᵀ rows. Per output
// element the additions happen in ascending-p order with a single chain
// starting from exact zero — the same sequence the dot-product reference
// produces (`s := 0; s += a[i][p]·b[j][p]`) — so results are bit-identical,
// including k = 0 (every output exactly +0) and the NaN/signed-zero cases
// (no zero-skip here, matching the reference, which also has none).
//
//lint:hotpath
func MatMulTransBInto(out, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMulTransBInto requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransBInto inner dimension mismatch")
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulTransBInto output shape mismatch")
	}
	ad, od := a.Data, out.Data

	btp := transScratch.Get().(*[]float32)
	if cap(*btp) < k*n {
		*btp = make([]float32, k*n)
	}
	bt := (*btp)[:k*n]
	for j := 0; j < n; j++ {
		row := b.Data[j*k : j*k+k]
		for p, v := range row {
			bt[p*n+j] = v
		}
	}

	out.Zero()
	if serialRows(m, m*n*k) {
		transBRows(od, ad, bt, k, n, 0, m)
	} else {
		//lint:allow hotpath-alloc parallel branch only: the closure fan-out runs above parallelThreshold, the serial hot path allocates nothing
		parallelFor(m, m*n*k, func(r0, r1 int) {
			transBRows(od, ad, bt, k, n, r0, r1)
		})
	}
	transScratch.Put(btp)
}

// transARows accumulates out rows [r0, r1) of aᵀ × b (a stored k×m). Output
// rows are processed transABlock at a time: the block's rows stay
// cache-resident across the full ascending-p sweep, instead of the naive
// loop's re-streaming of the whole output matrix on every p. Rows of od
// must be pre-zeroed.
//
//lint:hotpath
func transARows(od, ad, bd []float32, k, m, n, r0, r1 int) {
	for i0 := r0; i0 < r1; i0 += transABlock {
		i1 := min(i0+transABlock, r1)
		for p := 0; p < k; p++ {
			arow := ad[p*m : p*m+m]
			brow := bd[p*n : p*n+n]
			for i := i0; i < i1; i++ {
				if v := arow[i]; nonzero(v) {
					axpy(od[i*n:i*n+n], brow, v)
				}
			}
		}
	}
}

// MatMulTransAInto computes out = aᵀ × b where a is k×m (so aᵀ is m×k).
// Used for weight-gradient accumulation (dW = xᵀ·dy patterns). Parallelism
// shards over output rows, keeping writes disjoint.
//
//lint:hotpath
func MatMulTransAInto(out, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMulTransAInto requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransAInto inner dimension mismatch")
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulTransAInto output shape mismatch")
	}
	out.Zero()
	ad, bd, od := a.Data, b.Data, out.Data
	if serialRows(m, m*n*k) {
		transARows(od, ad, bd, k, m, n, 0, m)
		return
	}
	//lint:allow hotpath-alloc parallel branch only: the closure fan-out runs above parallelThreshold, the serial hot path allocates nothing
	parallelFor(m, m*n*k, func(r0, r1 int) {
		transARows(od, ad, bd, k, m, n, r0, r1)
	})
}
