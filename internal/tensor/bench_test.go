package tensor

import "testing"

// Kernel microbenchmarks. The serial set (shapes below parallelThreshold)
// runs single-goroutine regardless of GOMAXPROCS, so with a fixed iteration
// count (-benchtime=Nx) its allocs/op and B/op are deterministic on any
// runner — those are the benchmarks the CI bench-budget hard-gates. The
// large variants exercise the parallelFor sharding path and are tracked for
// ns/op drift only.

func benchOperands(m, k, n int) (a, b, bt, at, out *Tensor) {
	rng := NewRNG(3)
	a, b = New(m, k), New(k, n)
	bt, at = New(n, k), New(k, m)
	out = New(m, n)
	for _, t := range []*Tensor{a, b, bt, at} {
		fillKernelOperand(t, rng)
	}
	return
}

func BenchmarkMatMulSerial(b *testing.B) {
	A, B, _, _, out := benchOperands(48, 48, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, A, B)
	}
}

func BenchmarkMatMulTransBSerial(b *testing.B) {
	A, _, Bt, _, out := benchOperands(48, 48, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(out, A, Bt)
	}
}

func BenchmarkMatMulTransASerial(b *testing.B) {
	_, B, _, At, out := benchOperands(48, 48, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAInto(out, At, B)
	}
}

func BenchmarkMatMulParallel(b *testing.B) {
	A, B, _, _, out := benchOperands(128, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, A, B)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := ConvGeom{InC: 16, InH: 16, InW: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	src := make([]float32, g.InC*g.InH*g.InW)
	dst := make([]float32, g.ColRows()*g.ColCols())
	rng := NewRNG(5)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Im2Col(dst, src)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	g := ConvGeom{InC: 16, InH: 16, InW: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	img := make([]float32, g.InC*g.InH*g.InW)
	cols := make([]float32, g.ColRows()*g.ColCols())
	rng := NewRNG(5)
	for i := range cols {
		cols[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Col2Im(img, cols)
	}
}
