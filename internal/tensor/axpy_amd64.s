// SSE2 axpy kernel: dst[j] += v*src[j] for j < len(src).
//
// Each element is one scalar multiply and one scalar add in IEEE float32,
// exactly like the Go loop — MULPS/ADDPS round every lane independently and
// nothing is fused — so vectorising across j (distinct output elements)
// cannot change any result bit. SSE2 is the amd64 baseline: no feature
// detection needed. The caller guarantees len(dst) >= len(src).

#include "textflag.h"

// func axpy(dst, src []float32, v float32)
TEXT ·axpy(SB), NOSPLIT, $0-52
	MOVQ  dst_base+0(FP), DI
	MOVQ  src_base+24(FP), SI
	MOVQ  src_len+32(FP), CX
	MOVSS v+48(FP), X0
	SHUFPS $0x00, X0, X0       // broadcast v to all four lanes
	XORQ  AX, AX
	MOVQ  CX, BX
	ANDQ  $-8, BX              // main loop handles 8 elements per iteration
	CMPQ  AX, BX
	JGE   tail

loop8:
	MOVUPS (SI)(AX*4), X1
	MOVUPS 16(SI)(AX*4), X2
	MULPS  X0, X1
	MULPS  X0, X2
	MOVUPS (DI)(AX*4), X3
	MOVUPS 16(DI)(AX*4), X4
	ADDPS  X3, X1
	ADDPS  X4, X2
	MOVUPS X1, (DI)(AX*4)
	MOVUPS X2, 16(DI)(AX*4)
	ADDQ   $8, AX
	CMPQ   AX, BX
	JLT    loop8

tail:
	CMPQ AX, CX
	JGE  done

tailloop:
	MOVSS (SI)(AX*4), X1
	MULSS X0, X1
	ADDSS (DI)(AX*4), X1
	MOVSS X1, (DI)(AX*4)
	INCQ  AX
	CMPQ  AX, CX
	JLT   tailloop

done:
	RET
