package tensor

import (
	"math"
	"testing"
)

// The blocked kernels must be bit-identical to the naive reference loops
// below for every shape: the repository's determinism invariants promise a
// fixed summation order per shape, and the references implement that order
// (ascending inner index, single accumulation chain per output element,
// exact-zero operands skipped where the shipped kernels skip them).

// naiveMatMulInto is the pre-tiling MatMulInto reference loop.
func naiveMatMulInto(out, a, b *Tensor) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 { //lint:allow float-eq reference mirrors the kernel's zero-skip
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// naiveMatMulTransBInto is the pre-tiling MatMulTransBInto reference loop.
func naiveMatMulTransBInto(out, a, b *Tensor) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}

// naiveMatMulTransAInto is the pre-blocking MatMulTransAInto reference loop.
func naiveMatMulTransAInto(out, a, b *Tensor) {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out.Zero()
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 { //lint:allow float-eq reference mirrors the kernel's zero-skip
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// naiveCol2Im is the pre-fast-path Col2Im loop.
func naiveCol2Im(g ConvGeom, dstImage, srcCols []float32) {
	oh, ow := g.OutH(), g.OutW()
	cols := g.ColCols()
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := srcCols[(oy*ow+ox)*cols : (oy*ow+ox+1)*cols]
			si := 0
			for c := 0; c < g.InC; c++ {
				chn := dstImage[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
				for ky := 0; ky < g.K; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						si += g.K
						continue
					}
					base := iy * g.InW
					for kx := 0; kx < g.K; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix >= 0 && ix < g.InW {
							chn[base+ix] += row[si]
						}
						si++
					}
				}
			}
		}
	}
}

// naiveIm2Col is the pre-fast-path Im2Col loop.
func naiveIm2Col(g ConvGeom, dst, src []float32) {
	oh, ow := g.OutH(), g.OutW()
	cols := g.ColCols()
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := dst[(oy*ow+ox)*cols : (oy*ow+ox+1)*cols]
			di := 0
			for c := 0; c < g.InC; c++ {
				chn := src[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
				for ky := 0; ky < g.K; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						for kx := 0; kx < g.K; kx++ {
							row[di] = 0
							di++
						}
						continue
					}
					base := iy * g.InW
					for kx := 0; kx < g.K; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							row[di] = 0
						} else {
							row[di] = chn[base+ix]
						}
						di++
					}
				}
			}
		}
	}
}

// fillKernelOperand populates t with a value mix that exercises the kernels'
// edge behaviour: positives, negatives, exact zeros (the zero-skip paths),
// and denormal-scale magnitudes whose rounding would expose any change in
// summation order.
func fillKernelOperand(t *Tensor, rng *RNG) {
	for i := range t.Data {
		switch rng.Intn(8) {
		case 0:
			t.Data[i] = 0
		case 1:
			t.Data[i] = float32(math.Copysign(0, -1)) // negative zero
		case 2:
			t.Data[i] = float32(rng.NormFloat64()) * 1e-20
		default:
			t.Data[i] = float32(rng.NormFloat64())
		}
	}
}

// matmulShapes is the property sweep: degenerate (k=0, 1×N, N×1), prime,
// tile-remainder (mrTile±1, transABlock±1), and above-parallel-threshold
// shapes.
var matmulShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 0, 5},   // k = 0: output must be exactly zero
	{3, 0, 0},   // empty output columns
	{1, 13, 17}, // 1×N
	{17, 13, 1}, // N×1
	{2, 3, 5},
	{4, 4, 4},
	{5, 5, 5},   // mrTile remainder 1
	{7, 11, 13}, // primes, remainder 3
	{8, 9, 10},  // transABlock boundary
	{9, 64, 31}, // transABlock remainder
	{23, 29, 31},
	{64, 64, 65}, // just above parallelThreshold: exercises sharding
	{65, 64, 64},
	{130, 70, 66}, // parallel path with row remainder on every shard
}

func bitEqual(t *testing.T, name string, shape []int, got, want []float32) {
	t.Helper()
	for i := range want {
		gb, wb := math.Float32bits(got[i]), math.Float32bits(want[i])
		if gb != wb {
			t.Fatalf("%s shape %v: element %d differs: got %x (%g) want %x (%g)",
				name, shape, i, gb, got[i], wb, want[i])
		}
	}
}

// TestMatMulKernelsBitIdentical sweeps the shape grid comparing every
// blocked kernel against its naive reference bit-for-bit.
func TestMatMulKernelsBitIdentical(t *testing.T) {
	rng := NewRNG(7)
	for _, s := range matmulShapes {
		a := New(s.m, s.k)
		b := New(s.k, s.n)
		fillKernelOperand(a, rng)
		fillKernelOperand(b, rng)

		got, want := New(s.m, s.n), New(s.m, s.n)
		fillKernelOperand(got, rng) // dirty output: kernels must not read it
		MatMulInto(got, a, b)
		naiveMatMulInto(want, a, b)
		bitEqual(t, "MatMulInto", []int{s.m, s.k, s.n}, got.Data, want.Data)

		bt := New(s.n, s.k) // b for the a×bᵀ form
		fillKernelOperand(bt, rng)
		fillKernelOperand(got, rng)
		MatMulTransBInto(got, a, bt)
		naiveMatMulTransBInto(want, a, bt)
		bitEqual(t, "MatMulTransBInto", []int{s.m, s.k, s.n}, got.Data, want.Data)

		at := New(s.k, s.m) // a for the aᵀ×b form
		fillKernelOperand(at, rng)
		fillKernelOperand(got, rng)
		MatMulTransAInto(got, at, b)
		naiveMatMulTransAInto(want, at, b)
		bitEqual(t, "MatMulTransAInto", []int{s.m, s.k, s.n}, got.Data, want.Data)
	}
}

// convGeoms sweeps convolution geometries including pad-dominated edges,
// stride>1, 1×1 kernels, and single-pixel planes.
var convGeoms = []ConvGeom{
	{InC: 1, InH: 1, InW: 1, OutC: 1, K: 1, Stride: 1, Pad: 0},
	{InC: 1, InH: 5, InW: 5, OutC: 2, K: 3, Stride: 1, Pad: 1},
	{InC: 3, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1},
	{InC: 2, InH: 7, InW: 11, OutC: 3, K: 3, Stride: 2, Pad: 1},
	{InC: 2, InH: 6, InW: 6, OutC: 2, K: 5, Stride: 1, Pad: 2},
	{InC: 4, InH: 4, InW: 4, OutC: 8, K: 1, Stride: 1, Pad: 0},
	{InC: 1, InH: 3, InW: 9, OutC: 1, K: 3, Stride: 3, Pad: 0},
	{InC: 2, InH: 5, InW: 5, OutC: 2, K: 3, Stride: 1, Pad: 2}, // pad wider than typical
}

// TestIm2ColCol2ImBitIdentical compares the fast-path lowering/scatter
// against the naive per-tap loops bit-for-bit, including the accumulation
// order of overlapping Col2Im taps.
func TestIm2ColCol2ImBitIdentical(t *testing.T) {
	rng := NewRNG(11)
	for _, g := range convGeoms {
		src := make([]float32, g.InC*g.InH*g.InW)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		got := make([]float32, g.ColRows()*g.ColCols())
		want := make([]float32, len(got))
		for i := range got {
			got[i] = float32(rng.NormFloat64()) // dirty: Im2Col must overwrite fully
		}
		g.Im2Col(got, src)
		naiveIm2Col(g, want, src)
		bitEqual(t, "Im2Col", []int{g.InC, g.InH, g.InW, g.K, g.Stride, g.Pad},
			got, want)

		cols := make([]float32, len(got))
		for i := range cols {
			cols[i] = float32(rng.NormFloat64())
		}
		gotImg := make([]float32, len(src))
		wantImg := make([]float32, len(src))
		g.Col2Im(gotImg, cols)
		naiveCol2Im(g, wantImg, cols)
		bitEqual(t, "Col2Im", []int{g.InC, g.InH, g.InW, g.K, g.Stride, g.Pad},
			gotImg, wantImg)
	}
}

// TestMatMulParallelRace drives all three kernels well above the parallel
// threshold so `go test -race ./internal/tensor` exercises the goroutine
// fan-out, and re-checks determinism against the references at size.
func TestMatMulParallelRace(t *testing.T) {
	rng := NewRNG(13)
	m, k, n := 97, 83, 101 // primes, comfortably above parallelThreshold
	a, b := New(m, k), New(k, n)
	bt, at := New(n, k), New(k, m)
	fillKernelOperand(a, rng)
	fillKernelOperand(b, rng)
	fillKernelOperand(bt, rng)
	fillKernelOperand(at, rng)

	got, want := New(m, n), New(m, n)
	MatMulInto(got, a, b)
	naiveMatMulInto(want, a, b)
	bitEqual(t, "MatMulInto(parallel)", []int{m, k, n}, got.Data, want.Data)

	MatMulTransBInto(got, a, bt)
	naiveMatMulTransBInto(want, a, bt)
	bitEqual(t, "MatMulTransBInto(parallel)", []int{m, k, n}, got.Data, want.Data)

	MatMulTransAInto(got, at, b)
	naiveMatMulTransAInto(want, at, b)
	bitEqual(t, "MatMulTransAInto(parallel)", []int{m, k, n}, got.Data, want.Data)
}
