package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** derived, splitmix64 seeded). The whole repository uses this
// generator so experiments are reproducible across platforms and Go versions
// (math/rand's stream is not guaranteed stable across releases).
type RNG struct {
	s [4]uint64
	// cached second normal variate from the Box–Muller pair
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state (cannot happen with splitmix64 in practice,
	// but cheap to guard).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

//lint:hotpath
func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
//
//lint:hotpath
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
//
//lint:hotpath
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
//
//lint:hotpath
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child generator; handy for giving each
// subsystem (fault injector, dataset, init) its own stream from one seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// RNGState is the complete serializable state of an RNG: the xoshiro256**
// word vector plus the cached Box–Muller variate. Restoring it resumes the
// stream bit-identically, including a pending second normal draw.
type RNGState struct {
	S         [4]uint64
	HaveGauss bool
	Gauss     float64
}

// State captures the generator's current state for checkpointing.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, HaveGauss: r.haveGauss, Gauss: r.gauss}
}

// Restore overwrites the generator with a previously captured state. An
// all-zero word vector (never produced by State on a seeded generator, but
// possible from corrupt input) is nudged to a valid state, matching the
// NewRNG guard.
func (r *RNG) Restore(st RNGState) {
	r.s = st.S
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	r.haveGauss = st.HaveGauss
	r.gauss = st.Gauss
}

// FillNormal fills t with N(0, std²) variates.
func (r *RNG) FillNormal(t *Tensor, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64() * std)
	}
}

// FillUniform fills t with U[lo, hi) variates.
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Range(lo, hi))
	}
}
