package models

import (
	"math"
	"strings"
	"testing"

	"remapd/internal/arch"
	"remapd/internal/nn"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

func tinyCfg() Config {
	return Config{InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: 0.0625, BatchNorm: true, Seed: 1}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"cnn-s", "resnet12", "resnet18", "squeezenet", "vgg11", "vgg16", "vgg19"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := Build("nope", tinyCfg()); err == nil {
		t.Fatal("unknown model must error")
	}
}

// Every registered model must produce correct logits shape on forward and
// accept a full backward pass.
func TestAllModelsForwardBackward(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			net, err := Build(name, tinyCfg())
			if err != nil {
				t.Fatal(err)
			}
			rng := tensor.NewRNG(2)
			x := tensor.New(2, 3, 16, 16)
			rng.FillNormal(x, 1)
			logits := net.Forward(x, true)
			if logits.Rank() != 2 || logits.Dim(0) != 2 || logits.Dim(1) != 10 {
				t.Fatalf("%s logits shape %v", name, logits.Shape)
			}
			for _, v := range logits.Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s produced non-finite logits", name)
				}
			}
			_, grad := nn.SoftmaxCrossEntropy(logits, []int{1, 2})
			dx := net.Backward(grad)
			if !dx.SameShape(x) {
				t.Fatalf("%s input grad shape %v", name, dx.Shape)
			}
			// Some gradient must reach the first conv layer.
			first := net.Params()[0]
			if first.Grad.AbsMax() == 0 {
				t.Fatalf("%s: no gradient at %s", name, first.Name)
			}
		})
	}
}

func TestVGGConvCounts(t *testing.T) {
	counts := map[string]int{"vgg11": 8, "vgg16": 13, "vgg19": 16}
	for name, wantConv := range counts {
		net, _ := Build(name, tinyCfg())
		conv := 0
		for _, l := range net.MVMLayers() {
			if strings.Contains(l, ".conv") {
				conv++
			}
		}
		if conv != wantConv {
			t.Fatalf("%s has %d conv layers, want %d", name, conv, wantConv)
		}
	}
}

func TestResNetConvCounts(t *testing.T) {
	// ResNet-18: stem + 8 blocks × 2 convs = 17 (+2 projection convs for
	// CIFAR geometry) + fc. ResNet-12 removes 3 blocks ⇒ 6 fewer convs.
	count := func(name string) int {
		net, _ := Build(name, tinyCfg())
		n := 0
		for _, l := range net.MVMLayers() {
			if strings.Contains(l, "conv") || strings.Contains(l, "stem") || strings.Contains(l, "proj") {
				n++
			}
		}
		return n
	}
	c18, c12 := count("resnet18"), count("resnet12")
	if c18-c12 != 6 {
		t.Fatalf("ResNet-12 must have exactly 6 fewer convolutions than ResNet-18: %d vs %d", c12, c18)
	}
}

func TestFireModuleShapes(t *testing.T) {
	rng := tensor.NewRNG(3)
	f := NewFire("f", 8, 6, 6, 4, 6, 6, rng)
	if f.OutC() != 12 {
		t.Fatalf("OutC = %d", f.OutC())
	}
	x := tensor.New(2, 8, 6, 6)
	rng.FillNormal(x, 1)
	y := f.Forward(x, true)
	if y.Dim(1) != 12 || y.Dim(2) != 6 {
		t.Fatalf("fire output %v", y.Shape)
	}
	dx := f.Backward(y.Clone())
	if !dx.SameShape(x) {
		t.Fatalf("fire dx %v", dx.Shape)
	}
	if got := f.InnerMVMLayers(); len(got) != 3 {
		t.Fatalf("fire inner layers %v", got)
	}
	if f.InnerWeight("f.expand3") == nil || f.InnerWeight("ghost") != nil {
		t.Fatal("InnerWeight lookup broken")
	}
}

// Fire gradient check (the concat/split path is hand-written).
func TestFireGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	f := NewFire("f", 3, 4, 4, 2, 3, 3, rng)
	x := tensor.New(1, 3, 4, 4)
	rng.FillNormal(x, 1)

	lossFn := func() float64 {
		y := f.Forward(x, true)
		var s float64
		for _, v := range y.Data {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}
	y := f.Forward(x, true)
	for _, p := range f.Params() {
		p.Grad.Zero()
	}
	dx := f.Backward(y.Clone())
	const eps = 1e-3
	for i := 0; i < x.Len(); i += 5 {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossFn()
		x.Data[i] = orig - eps
		lm := lossFn()
		x.Data[i] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(dx.Data[i])
		if math.Abs(want-got) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("fire dx[%d]: %v vs %v", i, got, want)
		}
	}
}

// Every model must be mappable onto a chip, with distinct layer names.
func TestAllModelsMapOntoChip(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			net, err := Build(name, tinyCfg())
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for _, l := range net.MVMLayers() {
				if seen[l] {
					t.Fatalf("duplicate MVM layer name %q", l)
				}
				seen[l] = true
			}
			p := reram.DefaultDeviceParams()
			chip := arch.NewChip(p, arch.DefaultGeometry())
			if err := chip.MapNetwork(net); err != nil {
				t.Fatalf("%s does not fit the default chip: %v", name, err)
			}
			net.SetFabric(chip)
			rng := tensor.NewRNG(5)
			x := tensor.New(1, 3, 16, 16)
			rng.FillNormal(x, 1)
			logits := net.Forward(x, true)
			for _, v := range logits.Data {
				if math.IsNaN(float64(v)) {
					t.Fatalf("%s: NaN through chip fabric", name)
				}
			}
		})
	}
}

func TestWidthScaleChangesCapacity(t *testing.T) {
	small, _ := Build("vgg11", Config{InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: 0.0625, Seed: 1})
	big, _ := Build("vgg11", Config{InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: 0.25, Seed: 1})
	if big.ParamCount() <= small.ParamCount() {
		t.Fatalf("width scale inert: %d vs %d", small.ParamCount(), big.ParamCount())
	}
}
