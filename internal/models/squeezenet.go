package models

import (
	"remapd/internal/nn"
	"remapd/internal/tensor"
)

// Fire is the SqueezeNet fire module: a 1×1 squeeze convolution followed by
// parallel 1×1 and 3×3 expand convolutions whose outputs are concatenated
// along the channel axis. It is a composite nn.Layer that forwards fabric
// binding and crossbar mapping to its three inner convolutions.
type Fire struct {
	name              string
	ws                nn.Workspace
	squeeze           *nn.Conv2D
	sqRelu            *nn.ReLU
	expand1, expand3  *nn.Conv2D
	ex1Relu, ex3Relu  *nn.ReLU
	e1C, e3C, outH, w int
}

// NewFire builds a fire module for inC×h×w inputs with sC squeeze channels
// and e1C/e3C expand channels.
func NewFire(name string, inC, h, w, sC, e1C, e3C int, rng *tensor.RNG) *Fire {
	gs := tensor.ConvGeom{InC: inC, InH: h, InW: w, OutC: sC, K: 1, Stride: 1, Pad: 0}
	g1 := tensor.ConvGeom{InC: sC, InH: h, InW: w, OutC: e1C, K: 1, Stride: 1, Pad: 0}
	g3 := tensor.ConvGeom{InC: sC, InH: h, InW: w, OutC: e3C, K: 3, Stride: 1, Pad: 1}
	return &Fire{
		name:    name,
		squeeze: nn.NewConv2D(name+".squeeze", gs, rng),
		sqRelu:  nn.NewReLU(name + ".srelu"),
		expand1: nn.NewConv2D(name+".expand1", g1, rng),
		expand3: nn.NewConv2D(name+".expand3", g3, rng),
		ex1Relu: nn.NewReLU(name + ".e1relu"),
		ex3Relu: nn.NewReLU(name + ".e3relu"),
		e1C:     e1C, e3C: e3C, outH: h, w: w,
	}
}

// Name returns the module's identifier.
func (f *Fire) Name() string { return f.name }

// OutC returns the concatenated channel count.
func (f *Fire) OutC() int { return f.e1C + f.e3C }

// Params aggregates the three convolutions' parameters.
func (f *Fire) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, f.squeeze.Params()...)
	ps = append(ps, f.expand1.Params()...)
	ps = append(ps, f.expand3.Params()...)
	return ps
}

// SetFabric implements nn.FabricUser.
func (f *Fire) SetFabric(fb nn.Fabric) {
	f.squeeze.SetFabric(fb)
	f.expand1.SetFabric(fb)
	f.expand3.SetFabric(fb)
}

// InnerMVMLayers implements nn.MVMContainer.
func (f *Fire) InnerMVMLayers() []string {
	return []string{f.squeeze.Name(), f.expand1.Name(), f.expand3.Name()}
}

// InnerWeight implements nn.MVMContainer.
func (f *Fire) InnerWeight(name string) *tensor.Tensor {
	for _, c := range []*nn.Conv2D{f.squeeze, f.expand1, f.expand3} {
		if c.Name() == name {
			return c.W
		}
	}
	return nil
}

// Forward computes concat(relu(e1(s)), relu(e3(s))) with s = relu(sq(x)).
//
//lint:hotpath
func (f *Fire) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := f.sqRelu.Forward(f.squeeze.Forward(x, train), train)
	a := f.ex1Relu.Forward(f.expand1.Forward(s, train), train)
	b := f.ex3Relu.Forward(f.expand3.Forward(s, train), train)
	n, h, w := a.Dim(0), a.Dim(2), a.Dim(3)
	out := f.ws.Take("cat", n, f.e1C+f.e3C, h, w)
	plane := h * w
	for i := 0; i < n; i++ {
		copy(out.Data[i*(f.e1C+f.e3C)*plane:], a.Data[i*f.e1C*plane:(i+1)*f.e1C*plane])
		copy(out.Data[(i*(f.e1C+f.e3C)+f.e1C)*plane:], b.Data[i*f.e3C*plane:(i+1)*f.e3C*plane])
	}
	return out
}

// Backward splits the gradient by channel and sums the two expand paths'
// contributions at the squeeze output.
//
//lint:hotpath
func (f *Fire) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, h, w := dy.Dim(0), dy.Dim(2), dy.Dim(3)
	plane := h * w
	da := f.ws.Take("da", n, f.e1C, h, w)
	db := f.ws.Take("db", n, f.e3C, h, w)
	for i := 0; i < n; i++ {
		copy(da.Data[i*f.e1C*plane:(i+1)*f.e1C*plane], dy.Data[i*(f.e1C+f.e3C)*plane:])
		copy(db.Data[i*f.e3C*plane:(i+1)*f.e3C*plane], dy.Data[(i*(f.e1C+f.e3C)+f.e1C)*plane:])
	}
	ds := f.expand1.Backward(f.ex1Relu.Backward(da))
	ds2 := f.expand3.Backward(f.ex3Relu.Backward(db))
	ds.Add(ds2)
	return f.squeeze.Backward(f.sqRelu.Backward(ds))
}

var (
	_ nn.FabricUser   = (*Fire)(nil)
	_ nn.MVMContainer = (*Fire)(nil)
	_ nn.Layer        = (*Fire)(nil)
)

// SqueezeNet builds the fire-module network of Iandola et al. in its
// CIFAR-scale form: stem convolution, eight fire modules with three
// max-pool stages, dropout, and a 1×1 classifier convolution reduced by
// global average pooling.
func SqueezeNet(cfg Config) *nn.Network {
	rng := tensor.NewRNG(cfg.Seed)
	name := "squeezenet"
	var layers []nn.Layer
	h, w := cfg.InH, cfg.InW

	stemC := cfg.scaled(96)
	stem := tensor.ConvGeom{InC: cfg.InC, InH: h, InW: w, OutC: stemC, K: 3, Stride: 1, Pad: 1}
	layers = append(layers, nn.NewConv2D(name+".conv1", stem, rng), nn.NewReLU(name+".relu1"))
	c := stemC

	pool := func(idx int) {
		if h >= 2 && w >= 2 {
			layers = append(layers, nn.NewMaxPool2D(name+".pool"+string(rune('0'+idx)), 2, 2))
			h, w = h/2, w/2
		}
	}
	fire := func(idx, sC, eC int) {
		f := NewFire(name+".fire"+string(rune('0'+idx)), c, h, w, cfg.scaled(sC), cfg.scaled(eC), cfg.scaled(eC), rng)
		layers = append(layers, f)
		c = f.OutC()
	}

	pool(1)
	fire(2, 16, 64)
	fire(3, 16, 64)
	fire(4, 32, 128)
	pool(2)
	fire(5, 32, 128)
	fire(6, 48, 192)
	fire(7, 48, 192)
	fire(8, 64, 256)
	pool(3)
	fire(9, 64, 256)

	layers = append(layers, nn.NewDropout(name+".drop", 0.3, rng))
	cls := tensor.ConvGeom{InC: c, InH: h, InW: w, OutC: cfg.Classes, K: 1, Stride: 1, Pad: 0}
	layers = append(layers,
		nn.NewConv2D(name+".conv10", cls, rng),
		nn.NewReLU(name+".relu10"),
		nn.NewGlobalAvgPool(name+".gap"),
	)
	return nn.NewNetwork(layers...)
}
