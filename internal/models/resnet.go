package models

import (
	"fmt"

	"remapd/internal/nn"
	"remapd/internal/tensor"
)

// basicBlock builds one ResNet basic block (two 3×3 convolutions with a
// skip connection; a 1×1 strided projection shortcut when the geometry
// changes).
func basicBlock(name string, inC, h, w, outC, stride int, bn bool, rng *tensor.RNG) (nn.Layer, int, int) {
	oh := (h-1)/stride + 1
	ow := (w-1)/stride + 1
	g1 := tensor.ConvGeom{InC: inC, InH: h, InW: w, OutC: outC, K: 3, Stride: stride, Pad: 1}
	g2 := tensor.ConvGeom{InC: outC, InH: oh, InW: ow, OutC: outC, K: 3, Stride: 1, Pad: 1}
	body := []nn.Layer{nn.NewConv2D(name+".conv1", g1, rng)}
	if bn {
		body = append(body, nn.NewBatchNorm2D(name+".bn1", outC))
	}
	body = append(body, nn.NewReLU(name+".relu1"), nn.NewConv2D(name+".conv2", g2, rng))
	if bn {
		body = append(body, nn.NewBatchNorm2D(name+".bn2", outC))
	}
	var short []nn.Layer
	if stride != 1 || inC != outC {
		gs := tensor.ConvGeom{InC: inC, InH: h, InW: w, OutC: outC, K: 1, Stride: stride, Pad: 0}
		short = append(short, nn.NewConv2D(name+".proj", gs, rng))
		if bn {
			short = append(short, nn.NewBatchNorm2D(name+".bnp", outC))
		}
	}
	return nn.NewResidual(name, body, short), oh, ow
}

// buildResNet assembles a CIFAR-style ResNet with the given blocks per
// stage (ResNet-18: [2,2,2,2]; the paper's ResNet-12 removes six
// convolutions, i.e. three basic blocks: [1,1,1,2]).
func buildResNet(name string, blocks [4]int, cfg Config) *nn.Network {
	rng := tensor.NewRNG(cfg.Seed)
	stageCh := [4]int{cfg.scaled(64), cfg.scaled(128), cfg.scaled(256), cfg.scaled(512)}

	var layers []nn.Layer
	c, h, w := cfg.InC, cfg.InH, cfg.InW
	stem := tensor.ConvGeom{InC: c, InH: h, InW: w, OutC: stageCh[0], K: 3, Stride: 1, Pad: 1}
	layers = append(layers, nn.NewConv2D(name+".stem", stem, rng))
	if cfg.BatchNorm {
		layers = append(layers, nn.NewBatchNorm2D(name+".bn0", stageCh[0]))
	}
	layers = append(layers, nn.NewReLU(name+".relu0"))
	c = stageCh[0]

	for s := 0; s < 4; s++ {
		stride := 2
		if s == 0 {
			stride = 1
		}
		// Never stride below 2×2 feature maps.
		if h/stride < 2 || w/stride < 2 {
			stride = 1
		}
		for b := 0; b < blocks[s]; b++ {
			st := 1
			if b == 0 {
				st = stride
			}
			var blk nn.Layer
			blk, h, w = basicBlock(fmt.Sprintf("%s.s%db%d", name, s+1, b+1), c, h, w, stageCh[s], st, cfg.BatchNorm, rng)
			layers = append(layers, blk)
			c = stageCh[s]
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool(name+".gap"),
		nn.NewLinear(name+".fc", c, cfg.Classes, rng),
	)
	return nn.NewNetwork(layers...)
}

// ResNet18 builds the 18-layer residual network ([2,2,2,2] basic blocks).
func ResNet18(cfg Config) *nn.Network { return buildResNet("resnet18", [4]int{2, 2, 2, 2}, cfg) }

// ResNet12 builds the paper's ResNet-12: ResNet-18 with six convolution
// layers (three basic blocks) removed — [1,1,1,2].
func ResNet12(cfg Config) *nn.Network { return buildResNet("resnet12", [4]int{1, 1, 1, 2}, cfg) }
