// Package models provides the six CNN architectures of the paper's
// evaluation — VGG-11/16/19, ResNet-18, ResNet-12 (ResNet-18 minus six
// convolution layers, as the paper constructs it), and SqueezeNet — built
// on the internal/nn framework. Every constructor takes a width scale so
// the same topologies can run at laptop scale for the reproduction
// experiments (see DESIGN.md).
package models

import (
	"fmt"

	"remapd/internal/det"
	"remapd/internal/nn"
	"remapd/internal/tensor"
)

// Config parameterises a model build.
type Config struct {
	// Input geometry (channels, height, width), e.g. 3×32×32.
	InC, InH, InW int
	// Classes is the classifier output width.
	Classes int
	// WidthScale multiplies every channel count (1.0 = paper-size nets;
	// the reproduction experiments use 0.125–0.25).
	WidthScale float64
	// BatchNorm enables BN after every convolution (the usual CIFAR
	// training recipe; disable for the smallest test models).
	BatchNorm bool
	// Seed drives weight initialisation.
	Seed uint64
}

// DefaultConfig returns a scaled-for-CPU configuration.
func DefaultConfig() Config {
	return Config{InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: 0.125, BatchNorm: true, Seed: 1}
}

// scaled converts a nominal channel count through the width scale,
// keeping at least 4 channels.
func (c Config) scaled(ch int) int {
	s := int(float64(ch)*c.WidthScale + 0.5)
	if s < 4 {
		s = 4
	}
	return s
}

// Builder constructs a model from a config.
type Builder func(Config) *nn.Network

// registry of all model constructors.
var registry = map[string]Builder{
	"vgg11":      VGG11,
	"vgg16":      VGG16,
	"vgg19":      VGG19,
	"resnet18":   ResNet18,
	"resnet12":   ResNet12,
	"squeezenet": SqueezeNet,
	"cnn-s":      CNNSmall,
}

// Build constructs a registered model by name.
func Build(name string, cfg Config) (*nn.Network, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b(cfg), nil
}

// Names lists the registered models in sorted order.
func Names() []string {
	return det.SortedKeys(registry)
}

// vggPlan is a VGG configuration string: channel counts with -1 as maxpool.
const poolMarker = -1

var vggPlans = map[string][]int{
	"vgg11": {64, poolMarker, 128, poolMarker, 256, 256, poolMarker, 512, 512, poolMarker, 512, 512, poolMarker},
	"vgg16": {64, 64, poolMarker, 128, 128, poolMarker, 256, 256, 256, poolMarker, 512, 512, 512, poolMarker, 512, 512, 512, poolMarker},
	"vgg19": {64, 64, poolMarker, 128, 128, poolMarker, 256, 256, 256, 256, poolMarker, 512, 512, 512, 512, poolMarker, 512, 512, 512, 512, poolMarker},
}

// buildVGG assembles a VGG-style stack. Pools that would shrink a spatial
// dimension below 2 are skipped, so the topology also fits 16×16 inputs.
func buildVGG(name string, cfg Config) *nn.Network {
	rng := tensor.NewRNG(cfg.Seed)
	var layers []nn.Layer
	c, h, w := cfg.InC, cfg.InH, cfg.InW
	convIdx := 0
	for _, item := range vggPlans[name] {
		if item == poolMarker {
			if h >= 2 && w >= 2 {
				layers = append(layers, nn.NewMaxPool2D(fmt.Sprintf("%s.pool%d", name, convIdx), 2, 2))
				h, w = h/2, w/2
			}
			continue
		}
		out := cfg.scaled(item)
		convIdx++
		g := tensor.ConvGeom{InC: c, InH: h, InW: w, OutC: out, K: 3, Stride: 1, Pad: 1}
		layers = append(layers, nn.NewConv2D(fmt.Sprintf("%s.conv%d", name, convIdx), g, rng))
		if cfg.BatchNorm {
			layers = append(layers, nn.NewBatchNorm2D(fmt.Sprintf("%s.bn%d", name, convIdx), out))
		}
		layers = append(layers, nn.NewReLU(fmt.Sprintf("%s.relu%d", name, convIdx)))
		c = out
	}
	layers = append(layers,
		nn.NewGlobalAvgPool(name+".gap"),
		nn.NewLinear(name+".fc", c, cfg.Classes, rng),
	)
	return nn.NewNetwork(layers...)
}

// VGG11 builds the 11-layer VGG (8 conv + classifier).
func VGG11(cfg Config) *nn.Network { return buildVGG("vgg11", cfg) }

// VGG16 builds the 16-layer VGG (13 conv + classifier).
func VGG16(cfg Config) *nn.Network { return buildVGG("vgg16", cfg) }

// VGG19 builds the 19-layer VGG (16 conv + classifier).
func VGG19(cfg Config) *nn.Network { return buildVGG("vgg19", cfg) }

// CNNSmall is a compact conv-pool-conv-pool-fc network used by fast tests
// and as the quickstart example model. It is not from the paper; it exists
// so the full pipeline can be exercised in milliseconds.
func CNNSmall(cfg Config) *nn.Network {
	rng := tensor.NewRNG(cfg.Seed)
	c1 := cfg.scaled(32)
	c2 := cfg.scaled(64)
	g1 := tensor.ConvGeom{InC: cfg.InC, InH: cfg.InH, InW: cfg.InW, OutC: c1, K: 3, Stride: 1, Pad: 1}
	h2, w2 := cfg.InH/2, cfg.InW/2
	g2 := tensor.ConvGeom{InC: c1, InH: h2, InW: w2, OutC: c2, K: 3, Stride: 1, Pad: 1}
	return nn.NewNetwork(
		nn.NewConv2D("cnns.conv1", g1, rng),
		nn.NewReLU("cnns.relu1"),
		nn.NewMaxPool2D("cnns.pool1", 2, 2),
		nn.NewConv2D("cnns.conv2", g2, rng),
		nn.NewReLU("cnns.relu2"),
		nn.NewMaxPool2D("cnns.pool2", 2, 2),
		nn.NewFlatten("cnns.flatten"),
		nn.NewLinear("cnns.fc", c2*(h2/2)*(w2/2), cfg.Classes, rng),
	)
}
