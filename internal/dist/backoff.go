package dist

import (
	"context"
	"time"
)

// Backoff schedules: all retry waits in this package — cell requeues on
// both executors and worker redials — follow the same jitterless
// doubling series base, 2·base, 4·base, … capped at max. Deterministic
// by design: the schedule depends only on the attempt number, never on
// the wall clock or a random source, so two runs of the same failing
// grid back off identically and test transcripts are reproducible.
const (
	// requeueBase/requeueMax pace cell requeue attempts. Without a wait,
	// a crash-looping worker binary is relaunched (or a flapping fleet
	// worker re-offered the cell) as fast as it can die.
	requeueBase = 250 * time.Millisecond
	requeueMax  = 2 * time.Second

	// redialBase/redialMax pace a fleet worker's reconnection attempts
	// to an unreachable coordinator.
	redialBase = 500 * time.Millisecond
	redialMax  = 30 * time.Second
)

// Backoff returns the wait before retry attempt+1 after `attempt` failed
// tries: base doubled per failure, capped at max. attempt <= 1 returns
// base.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// sleepCtx waits d, returning early with the context's error if it is
// cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
