package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"remapd/internal/checkpoint"
	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// WorkerOptions carries the worker process's local runtime facilities.
// Pointing Checkpoints at the coordinator's -checkpoint-dir is what makes
// retries cheap: a cell re-assigned after a crash resumes from the epochs
// its previous worker already persisted.
type WorkerOptions struct {
	Checkpoints *checkpoint.Store
	Metrics     *obs.Sink
}

// Serve runs the worker loop: announce hello, then execute one request
// at a time from in, replying on out, until shutdown, EOF, or a protocol
// error. Cancelling ctx stops the in-flight cell at its next batch
// boundary and drains gracefully — the cell's (failed) result reply is
// still written before Serve returns, so the coordinator never blocks on
// a vanished worker during its own SIGINT handling.
//
// Serve is synchronous and single-cell: the coordinator achieves
// parallelism by running one worker process per runner slot.
func Serve(ctx context.Context, in io.Reader, out io.Writer, opts WorkerOptions) error {
	if ctx == nil {
		ctx = context.Background()
	}
	enc := json.NewEncoder(out)
	if err := enc.Encode(Reply{Type: "hello", Proto: ProtoVersion, PID: os.Getpid(), Slots: 1}); err != nil {
		return fmt.Errorf("dist: worker hello: %w", err)
	}
	rt := experiments.Runtime{Checkpoints: opts.Checkpoints, Metrics: opts.Metrics}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			return fmt.Errorf("dist: worker: malformed request: %w", err)
		}
		switch req.Type {
		case "shutdown":
			return nil
		case "heartbeat":
			// A pipe coordinator never probes (a dead child's pipe EOFs),
			// but answering keeps Serve a full protocol peer.
			if err := enc.Encode(Reply{Type: "heartbeat", ID: req.ID}); err != nil {
				return fmt.Errorf("dist: worker: write heartbeat: %w", err)
			}
		case "run":
			rep := runRequest(ctx, req, rt, ProtoVersion, func(log Reply) { _ = enc.Encode(log) })
			if err := enc.Encode(rep); err != nil {
				return fmt.Errorf("dist: worker: write result: %w", err)
			}
			if ctx.Err() != nil {
				return ctx.Err() // drained: the cancelled cell's reply is out
			}
		default:
			return fmt.Errorf("dist: worker: unknown request type %q", req.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dist: worker: read request: %w", err)
	}
	return nil // EOF: the coordinator closed our stdin — clean shutdown
}

// runRequest executes one run request and builds its result reply. Every
// failure mode that is a property of the spec (unknown kind, bad
// coordinates, a deterministic training error, a panic) becomes an error
// reply — the coordinator must not retry those, because every worker
// would fail identically. send carries the in-flight cell's log replies
// back (Serve writes straight to its encoder; the fleet transport routes
// through a mutex so concurrent cells do not interleave frames).
//
// proto is the version this worker advertised in its hello. When both
// sides speak proto >= 3 (the request carries the coordinator's version)
// the cell's run segment goes back as a telemetry reply immediately
// before the result — harness-domain timing only, never part of the
// result itself, so negotiating it away changes nothing the simulation
// produces.
func runRequest(ctx context.Context, req Request, rt experiments.Runtime, proto int, send func(Reply)) Reply {
	telemetry := proto >= 3 && req.Proto >= 3
	sp, err := experiments.DecodeSpec(req.Spec)
	if err != nil {
		return Reply{Type: "result", ID: req.ID, Error: err.Error()}
	}
	logf := func(format string, args ...interface{}) {
		// Progress lines stream back live so the coordinator's runner can
		// multiplex them under the cell's key prefix exactly as it does
		// for in-process cells. A lost log line is cosmetic, never load
		// bearing, so the write error is ignored — a truly dead pipe
		// surfaces at the result write.
		send(Reply{Type: "log", ID: req.ID, Line: fmt.Sprintf(format, args...)})
	}
	//lint:allow no-wall-clock harness-domain run-segment timing measures the machine, never the simulation
	start := time.Now()
	value, err := executeSpec(ctx, sp, rt, logf)
	if telemetry {
		//lint:allow no-wall-clock harness-domain run-segment timing measures the machine, never the simulation
		span := &RunSpan{Seconds: time.Since(start).Seconds(), Failed: err != nil}
		send(Reply{Type: "telemetry", ID: req.ID, Span: span})
	}
	if err != nil {
		return Reply{Type: "result", ID: req.ID, Error: err.Error()}
	}
	data, err := json.Marshal(value)
	if err != nil {
		return Reply{Type: "result", ID: req.ID, Error: fmt.Sprintf("dist: encode result for %s: %v", sp.Key, err)}
	}
	return Reply{Type: "result", ID: req.ID, Kind: sp.Kind, Value: data}
}

// executeSpec runs the spec with panic recovery, mirroring the in-process
// runner's guarantee that a panicking cell kills the cell, not the fleet.
func executeSpec(ctx context.Context, sp *experiments.CellSpec, rt experiments.Runtime, logf experiments.Logf) (value interface{}, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("cell %s panicked: %v\n%s", sp.Key, p, debug.Stack())
		}
	}()
	return sp.Execute(ctx, rt, logf)
}
