package dist_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"remapd/internal/checkpoint"
	"remapd/internal/dist"
	"remapd/internal/experiments"
)

// The tests exec this test binary itself as the worker process (the same
// pattern the real tools use: one binary, a -worker switch). TestMain
// dispatches on an environment variable: unset runs the tests, "worker"
// runs the real dist.Serve loop, "worker-kill" runs it with a saboteur
// that SIGKILL-equivalents the process as soon as the cell persists its
// first checkpoint, and "garbage" speaks a valid hello and then breaks
// the protocol on every request.
const (
	modeEnv   = "REMAPD_DIST_TEST_MODE"
	ckptEnv   = "REMAPD_DIST_TEST_CKPT"
	markerEnv = "REMAPD_DIST_TEST_MARKER"
)

func TestMain(m *testing.M) {
	switch os.Getenv(modeEnv) {
	case "":
		os.Exit(m.Run())
	case "worker", "worker-kill":
		runTestWorker()
	case "garbage":
		runGarbageWorker()
	case "mute":
		runMuteWorker()
	case "slow-hello":
		time.Sleep(time.Minute) // never says hello; only a signal ends it
	default:
		fmt.Fprintf(os.Stderr, "unknown %s=%q\n", modeEnv, os.Getenv(modeEnv))
		os.Exit(2)
	}
}

func runTestWorker() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var opts dist.WorkerOptions
	if dir := os.Getenv(ckptEnv); dir != "" {
		store, err := checkpoint.NewStore(dir, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Checkpoints = store
		if os.Getenv(modeEnv) == "worker-kill" {
			marker := os.Getenv(markerEnv)
			if _, err := os.Stat(marker); err != nil {
				// First incarnation: die abruptly (no reply, no cleanup —
				// indistinguishable from SIGKILL to the coordinator) as soon
				// as the in-flight cell has persisted at least one epoch.
				// The marker makes the relaunched worker behave, so the
				// retry exercises resume, not an immortal crash loop.
				go func() {
					for {
						if m, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(m) > 0 {
							_ = os.WriteFile(marker, []byte("died once\n"), 0o644)
							os.Exit(137)
						}
						time.Sleep(time.Millisecond)
					}
				}()
			}
		}
	}
	if err := dist.Serve(ctx, os.Stdin, os.Stdout, opts); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

func runGarbageWorker() {
	enc := json.NewEncoder(os.Stdout)
	_ = enc.Encode(dist.Reply{Type: "hello", Proto: dist.ProtoVersion, PID: os.Getpid()})
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		fmt.Println("xyzzy: this is not a protocol reply")
	}
	os.Exit(0)
}

// runMuteWorker speaks a perfect hello and then goes silent: it reads
// every request and answers none, the shape of a wedged-but-alive
// process that only a reply timeout can unmask on the pipe transport.
func runMuteWorker() {
	enc := json.NewEncoder(os.Stdout)
	_ = enc.Encode(dist.Reply{Type: "hello", Proto: dist.ProtoVersion, PID: os.Getpid(), Slots: 1})
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		// Swallow the request; the coordinator hears nothing.
	}
	os.Exit(0)
}

// workerExecutor builds an Executor whose workers are re-execs of this
// test binary in the given mode.
func workerExecutor(t *testing.T, mode string, env ...string) *dist.Executor {
	t.Helper()
	return &dist.Executor{
		Command: []string{os.Args[0]},
		Env:     append([]string{modeEnv + "=" + mode}, env...),
		Logf:    t.Logf,
	}
}

// microScale is a grid small enough for unit-test budget but wide enough
// (2 seeds × 3 policies) that reassembly order and cross-process float
// round-trips both matter.
func microScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Name = "dist-micro"
	s.TrainN, s.TestN = 128, 64
	s.Epochs = 2
	s.Models = []string{"cnn-s"}
	s.Seeds = []uint64{1, 2}
	s.Workers = 2
	return s
}

var microPolicies = []string{"ideal", "none", "remap-d"}

// TestDistByteIdenticalToInProcess is the acceptance criterion: the same
// Fig. 6 grid through two exec'd worker processes must render the exact
// table the in-process runner renders.
func TestDistByteIdenticalToInProcess(t *testing.T) {
	reg := experiments.DefaultRegime()

	local := microScale()
	baseline, err := experiments.Fig6(context.Background(), local, reg, microPolicies)
	if err != nil {
		t.Fatal(err)
	}

	exec := workerExecutor(t, "worker")
	defer exec.Close()
	remote := microScale()
	remote.Exec = exec
	rows, err := experiments.Fig6(context.Background(), remote, reg, microPolicies)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := experiments.FormatFig6(rows), experiments.FormatFig6(baseline); got != want {
		t.Fatalf("distributed Fig. 6 differs from in-process:\n--- in-process\n%s\n--- dist\n%s", want, got)
	}
}

// TestWorkerKilledMidCellRetriesAndResumes: a worker that dies abruptly
// mid-cell (after persisting an epoch) must cost one retry, not the grid —
// and the retry must resume from the shared checkpoint instead of
// recomputing, still producing the byte-identical table.
func TestWorkerKilledMidCellRetriesAndResumes(t *testing.T) {
	reg := experiments.DefaultRegime()
	scale := func() experiments.Scale {
		s := microScale()
		s.Seeds = []uint64{1}
		s.Epochs = 4 // several epochs after the first checkpoint, so the kill lands mid-cell
		s.Workers = 1
		return s
	}
	policies := []string{"remap-d"}

	local := scale()
	baseline, err := experiments.Fig6(context.Background(), local, reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	marker := filepath.Join(t.TempDir(), "died-once")
	exec := workerExecutor(t, "worker-kill", ckptEnv+"="+ckptDir, markerEnv+"="+marker)
	defer exec.Close()

	var mu sync.Mutex
	var lines []string
	capture := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	exec.Logf = capture

	remote := scale()
	remote.Exec = exec
	remote.Progress = capture
	rows, err := experiments.Fig6(context.Background(), remote, reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(marker); err != nil {
		t.Fatal("the saboteur worker never died; the test exercised nothing")
	}
	if got, want := experiments.FormatFig6(rows), experiments.FormatFig6(baseline); got != want {
		t.Fatalf("post-crash Fig. 6 differs from in-process:\n--- in-process\n%s\n--- dist\n%s", want, got)
	}
	mu.Lock()
	transcript := strings.Join(lines, "\n")
	mu.Unlock()
	if !strings.Contains(transcript, "requeueing") {
		t.Fatalf("transcript records no requeue:\n%s", transcript)
	}
	if !strings.Contains(transcript, "attempt 2") {
		t.Fatalf("status line does not record the second attempt:\n%s", transcript)
	}
	if !strings.Contains(transcript, "resumed from checkpoint") {
		t.Fatalf("retried cell recomputed instead of resuming:\n%s", transcript)
	}
}

// specCell builds a minimal but valid spec-carrying cell for executor
// unit tests (the grid tests above get theirs from the figure builders).
func specCell(policy string) experiments.Cell {
	s := microScale()
	sp := &experiments.CellSpec{
		Kind:   "policy",
		Key:    experiments.CellKey{Model: "cnn-s", Policy: policy, Seed: 1},
		Scale:  s.Spec(),
		Regime: experiments.DefaultRegime(),
		Dataset: experiments.DatasetSpec{
			Name: "cifar10-like", Train: s.TrainN, Test: s.TestN, Img: s.ImgSize, Seed: 77,
		},
		Classes: 10,
	}
	return sp.Cell(s)
}

// TestGarbageWorkerExhaustsRetries: a worker that answers with
// non-protocol output must be discarded and the cell retried on fresh
// processes; when every attempt hits the same breakage, the error names
// the cell and the attempt count.
func TestGarbageWorkerExhaustsRetries(t *testing.T) {
	exec := workerExecutor(t, "garbage")
	exec.Retries = 2
	defer exec.Close()
	cell := specCell("ideal")
	res, err := exec.Execute(context.Background(), 0, cell, nil)
	if err == nil {
		t.Fatal("garbage replies must fail the cell")
	}
	if !strings.Contains(err.Error(), cell.Key.String()) {
		t.Fatalf("error %q does not name the cell", err)
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("error %q does not record exhausted retries", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
}

// TestDeterministicCellErrorNotRetried: a worker-reported cell error
// (here: an unknown policy, which every worker would reject identically)
// must fail immediately — retrying determinism is pure waste.
func TestDeterministicCellErrorNotRetried(t *testing.T) {
	exec := workerExecutor(t, "worker")
	defer exec.Close()
	cell := specCell("no-such-policy")
	res, err := exec.Execute(context.Background(), 0, cell, nil)
	if err == nil {
		t.Fatal("unknown policy must fail the cell")
	}
	if !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("error %q does not surface the worker's message", err)
	}
	if res.Attempts != 1 {
		t.Fatalf("deterministic failure took %d attempts, want 1 (no retry)", res.Attempts)
	}
}

// TestCellWithoutSpecFailsImmediately: closures cannot travel; the
// executor must say so instead of hanging or crashing.
func TestCellWithoutSpecFailsImmediately(t *testing.T) {
	exec := workerExecutor(t, "worker")
	defer exec.Close()
	cell := experiments.Cell{Key: experiments.CellKey{Model: "closure-only", Seed: 1}}
	_, err := exec.Execute(context.Background(), 0, cell, nil)
	if err == nil || !strings.Contains(err.Error(), "no serializable spec") {
		t.Fatalf("err = %v, want a no-spec refusal", err)
	}
}

// TestMuteWorkerHitsReplyTimeout: a worker that accepts cells but never
// answers must trip Executor.Timeout, be discarded, and cost the cell
// its retries — the error names the silence, not a crash.
func TestMuteWorkerHitsReplyTimeout(t *testing.T) {
	exec := workerExecutor(t, "mute")
	exec.Retries = 2
	exec.Timeout = 200 * time.Millisecond
	defer exec.Close()
	res, err := exec.Execute(context.Background(), 0, specCell("ideal"), nil)
	if err == nil {
		t.Fatal("a mute worker must fail the cell")
	}
	if !strings.Contains(err.Error(), "no result within") {
		t.Fatalf("error %q does not attribute the failure to the reply timeout", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (each mute incarnation must burn one)", res.Attempts)
	}
}

// TestCloseRacesInFlightExecute: Close while a cell is mid-flight must
// leave Execute with an error or a completed result — never a hang, and
// never a freshly launched orphan process (go test -race keeps the
// accounting honest).
func TestCloseRacesInFlightExecute(t *testing.T) {
	exec := workerExecutor(t, "worker")
	done := make(chan error, 1)
	go func() {
		_, err := exec.Execute(context.Background(), 0, specCell("ideal"), nil)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	exec.Close()
	select {
	case err := <-done:
		// Both outcomes are legal — the cell may have finished just
		// before Close — but a post-Close failure must say "closed",
		// not dress up as a worker crash with retries.
		if err != nil && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("post-Close error %q does not name the closed executor", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Execute hung after Close")
	}
}

// TestHelloWaitRespectsContext: cancelling the grid during worker
// startup must abandon the hello wait immediately instead of sitting
// out the full hello timeout.
func TestHelloWaitRespectsContext(t *testing.T) {
	exec := workerExecutor(t, "slow-hello")
	defer exec.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := exec.Execute(ctx, 0, specCell("ideal"), nil)
	if err == nil {
		t.Fatal("a never-hello worker under a dead context must fail")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Execute took %s; the hello wait ignored the context", elapsed)
	}
}

// TestWorkerServeShutdown pins the protocol basics without processes:
// hello first, shutdown honoured, EOF clean.
func TestWorkerServeShutdown(t *testing.T) {
	var out strings.Builder
	in := strings.NewReader(`{"type":"shutdown"}` + "\n")
	if err := dist.Serve(context.Background(), in, &out, dist.WorkerOptions{}); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	var hello dist.Reply
	if err := json.Unmarshal([]byte(first), &hello); err != nil {
		t.Fatalf("first line %q is not a reply: %v", first, err)
	}
	if hello.Type != "hello" || hello.Proto != dist.ProtoVersion {
		t.Fatalf("hello = %+v", hello)
	}

	out.Reset()
	if err := dist.Serve(context.Background(), strings.NewReader(""), &out, dist.WorkerOptions{}); err != nil {
		t.Fatal("EOF must be a clean shutdown, got:", err)
	}
	if err := dist.Serve(context.Background(), strings.NewReader("not json\n"), &out, dist.WorkerOptions{}); err == nil {
		t.Fatal("malformed request must error")
	}
}
