package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"remapd/internal/experiments"
	"remapd/internal/obs"
	"remapd/internal/tensor"
)

// Chaos is a deterministic network-fault injector for the TCP transport.
// A worker wraps its dialed connection (DialOptions.Chaos) and every
// outbound frame — hello, log, result, heartbeat — passes through the
// injector, which may delay it, drop it, garble it, truncate it, or
// sever the connection mid-stream. All decisions come from the frame
// counter and a seeded tensor.RNG, never the wall clock, so a chaos run
// is reproducible: same seed, same faults, same transcript.
//
// The point of the harness is the byte-identity pin: because severed and
// garbled cells requeue onto (re)connected workers and resume from
// shared checkpoints, a grid run under chaos must produce output
// byte-identical to a fault-free run. The fleet tests and the
// chaos-smoke CI job assert exactly that.
type ChaosConfig struct {
	// Seed feeds the injector's private RNG stream (garble positions).
	Seed uint64

	// SeverAfter, when > 0, arms a one-shot connection cut once that
	// many frames have been written. The cut lands on the next log frame
	// whose request already produced an earlier log frame — i.e. strictly
	// mid-cell, at least one epoch in. The trainer emits an epoch's log
	// line before saving its checkpoint, so by the second log frame a
	// persisted checkpoint is guaranteed and the requeued cell resumes
	// instead of restarting. One cut per Chaos value: the redialed
	// connection runs clean, which is what lets the grid finish.
	SeverAfter int

	// DropEvery, when > 0, swallows every Nth log frame (reported as
	// written, never sent). Only log frames are droppable — they are
	// cosmetic by contract; dropping a result would stall the cell until
	// the coordinator's timeout instead of exercising the lossy path.
	DropEvery int

	// GarbleEvery, when > 0, corrupts one byte of every Nth frame. The
	// coordinator treats an unparseable line as a protocol failure and
	// drops the worker, so garbling exercises the full
	// drop-requeue-redial cycle.
	GarbleEvery int

	// GarbleAfter, when > 0, arms a one-shot garble: the first frame at
	// or past this count is corrupted, and every frame after it passes
	// clean. One shot, like SeverAfter — the redialed connection's retry
	// is guaranteed to run unfaulted, independent of how many frames an
	// attempt writes.
	GarbleAfter int

	// TruncateEvery, when > 0, writes only the first half of every Nth
	// frame and then severs the connection — a mid-frame crash. One shot,
	// like SeverAfter.
	TruncateEvery int

	// Delay, when > 0, stalls every DelayEvery'th frame by this long
	// before writing it (slow-network simulation; exercises the liveness
	// reset on late frames without tripping the deadline).
	Delay      time.Duration
	DelayEvery int
}

// Chaos carries the injector's mutable state across every connection it
// wraps — the frame counter and one-shot flags survive a redial, so a
// severed worker's second connection is not severed again.
type Chaos struct {
	cfg   ChaosConfig
	rng   *tensor.RNG
	logf  experiments.Logf
	trace *obs.FleetTrace

	mu      sync.Mutex
	frames  int
	severed bool
	garbled bool          // one-shot GarbleAfter has fired
	logSeen map[int64]int // log frames observed per request ID
}

// SetTrace routes each injected sever into the worker's structured event
// trace alongside the free-form "chaos:" log lines. Nil-safe target.
func (c *Chaos) SetTrace(t *obs.FleetTrace) { c.trace = t }

// NewChaos builds an injector. logf (optional) narrates every injected
// fault with a "chaos:" prefix so tests and CI can grep the schedule.
func NewChaos(cfg ChaosConfig, logf experiments.Logf) *Chaos {
	return &Chaos{
		cfg:     cfg,
		rng:     tensor.NewRNG(cfg.Seed),
		logf:    logf,
		logSeen: map[int64]int{},
	}
}

func (c *Chaos) say(format string, args ...interface{}) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

// Wrap interposes the injector on a connection's write path. Reads pass
// through untouched: faults are injected on the worker's outbound frames,
// where every failure mode the coordinator must tolerate can be produced.
func (c *Chaos) Wrap(conn net.Conn) net.Conn {
	return &chaosConn{Conn: conn, chaos: c}
}

type chaosConn struct {
	net.Conn
	chaos *Chaos
}

func (cc *chaosConn) Write(p []byte) (int, error) {
	return cc.chaos.write(cc.Conn, p)
}

// write applies the fault schedule to one frame. The connWriter already
// serialises callers per connection, but the semaphore also protects the
// injector's own state when a redialed connection overlaps teardown of
// the old one.
func (c *Chaos) write(conn net.Conn, p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.frames++
	frame := c.frames
	var rep Reply
	isLog := false
	if err := json.Unmarshal(p, &rep); err == nil && rep.Type == "log" {
		isLog = true
		c.logSeen[rep.ID]++
	}

	if c.cfg.SeverAfter > 0 && !c.severed && frame >= c.cfg.SeverAfter && isLog && c.logSeen[rep.ID] >= 2 {
		c.severed = true
		c.say("chaos: severing connection at frame %d (request %d, mid-cell)", frame, rep.ID)
		c.trace.Emit(obs.FleetEvent{Kind: obs.FleetSever, Cause: fmt.Sprintf("chaos sever at frame %d", frame)})
		_ = conn.Close()
		return 0, errors.New("chaos: connection severed")
	}
	if c.cfg.TruncateEvery > 0 && !c.severed && frame%c.cfg.TruncateEvery == 0 {
		c.severed = true
		c.say("chaos: truncating frame %d and severing", frame)
		c.trace.Emit(obs.FleetEvent{Kind: obs.FleetSever, Cause: fmt.Sprintf("chaos truncate at frame %d", frame)})
		_, _ = conn.Write(p[:len(p)/2])
		_ = conn.Close()
		return 0, errors.New("chaos: connection severed mid-frame")
	}
	if isLog && c.cfg.DropEvery > 0 && frame%c.cfg.DropEvery == 0 {
		c.say("chaos: dropped log frame %d (request %d)", frame, rep.ID)
		return len(p), nil
	}
	if c.cfg.Delay > 0 && c.cfg.DelayEvery > 0 && frame%c.cfg.DelayEvery == 0 {
		time.Sleep(c.cfg.Delay)
	}
	garble := c.cfg.GarbleEvery > 0 && frame%c.cfg.GarbleEvery == 0
	if c.cfg.GarbleAfter > 0 && !c.garbled && frame >= c.cfg.GarbleAfter {
		c.garbled = true
		garble = true
	}
	if garble && len(p) > 1 {
		q := append([]byte(nil), p...)
		// Corrupt one byte of the JSON body (never the trailing
		// newline — framing stays line-delimited, the line just stops
		// parsing). Flip the colon after the type key: a structural
		// byte, so the line is guaranteed unparseable rather than a
		// string value that happens to survive corruption.
		if i := bytes.IndexByte(q, ':'); i >= 0 {
			q[i] ^= 0xFF
		} else {
			q[c.rng.Intn(len(q)-1)] ^= 0xFF
		}
		c.say("chaos: garbled frame %d", frame)
		return conn.Write(q)
	}
	return conn.Write(p)
}

// String summarises the armed fault schedule for startup logs.
func (c *Chaos) String() string {
	return fmt.Sprintf("chaos(seed=%d sever-after=%d drop=1/%d garble=1/%d garble-after=%d truncate=1/%d delay=%s/%d)",
		c.cfg.Seed, c.cfg.SeverAfter, c.cfg.DropEvery, c.cfg.GarbleEvery, c.cfg.GarbleAfter, c.cfg.TruncateEvery, c.cfg.Delay, c.cfg.DelayEvery)
}
