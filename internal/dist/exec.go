package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"remapd/internal/det"
	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// DefaultRetries bounds how many workers a cell is offered before its
// failure is final. Three attempts tolerates two crashes/timeouts per
// cell without letting a poisoned cell spin forever.
const DefaultRetries = 3

// helloTimeout bounds how long a freshly exec'd worker may take to
// announce itself; a worker that says nothing (or something else) within
// it is not speaking the protocol.
const helloTimeout = 30 * time.Second

// killDelay is the grace period between asking a worker to exit
// (SIGINT + stdin close) and killing it.
const killDelay = 10 * time.Second

// Executor fans cells out to exec'd worker processes, one per runner
// slot. It implements experiments.CellExecutor: the runner calls Execute
// from its worker goroutines and the executor lazily launches (and on
// failure relaunches) the slot's process.
//
// Failure split: a reply carrying an Error is a deterministic property
// of the cell — every worker would fail identically — and is returned
// as the cell's error immediately. Everything else (worker crash, EOF,
// garbage output, reply timeout, launch failure) is a property of the
// worker; the cell is requeued on a fresh process up to Retries times,
// resuming from shared checkpoints rather than recomputing finished
// epochs.
type Executor struct {
	// Command is the worker argv, e.g. [self, "-worker", "-checkpoint-dir", dir].
	Command []string
	// Env is appended to the inherited environment of each worker.
	Env []string
	// Retries is the per-cell attempt bound (<=0 means DefaultRetries).
	Retries int
	// Timeout, when >0, bounds the silence between a cell assignment and
	// its result reply; log replies reset nothing — the bound is on the
	// whole cell. 0 disables the timeout (crash detection still works:
	// a dead worker's pipe EOFs).
	Timeout time.Duration
	// Logf, when non-nil, receives requeue/retry notices (harness
	// domain; results never depend on it).
	Logf experiments.Logf

	mu     sync.Mutex
	slots  map[int]*workerProc
	closed bool
	nextID atomic.Int64
}

// workerProc is one live worker process plus its reply stream.
type workerProc struct {
	name    string
	cmd     *exec.Cmd
	stdin   io.WriteCloser
	sendMu  sync.Mutex
	enc     *json.Encoder
	replies chan Reply
	done    chan struct{}
	stopped sync.Once
}

// send writes one request line. The mutex serialises Execute's run
// requests against Close's shutdown request — a json.Encoder is not safe
// for concurrent use.
func (w *workerProc) send(req Request) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	return w.enc.Encode(req)
}

// cellError marks a worker-reported deterministic cell failure (retrying
// cannot help).
type cellError struct{ msg string }

func (e *cellError) Error() string { return e.msg }

func (e *Executor) logf(format string, args ...interface{}) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// Execute implements experiments.CellExecutor.
func (e *Executor) Execute(ctx context.Context, slot int, cell experiments.Cell, logf experiments.Logf) (experiments.CellResult, error) {
	res := experiments.CellResult{Key: cell.Key}
	if cell.Spec == nil {
		return res, fmt.Errorf("cell %s: no serializable spec; cannot execute remotely", cell.Key)
	}
	spec, err := experiments.EncodeSpec(cell.Spec)
	if err != nil {
		return res, err
	}
	retries := e.Retries
	if retries <= 0 {
		retries = DefaultRetries
	}
	var lastErr error
	for attempt := 1; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Attempts = attempt
		value, worker, err := e.tryOnce(ctx, slot, spec, cell.Span, logf)
		if worker != "" {
			res.Worker = worker
		}
		cell.Span.EndAttempt(err != nil)
		if err == nil {
			res.Value = value
			return res, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return res, cerr
		}
		var fatal *cellError
		if errors.As(err, &fatal) {
			// Deterministic cell failure: wrap with the key exactly as the
			// in-process runner does, and do not retry.
			return res, fmt.Errorf("cell %s: %s", cell.Key, fatal.msg)
		}
		lastErr = err
		e.logf("dist: cell %s attempt %d/%d failed: %v; requeueing on a fresh worker", cell.Key, attempt, retries, err)
		if attempt < retries {
			// Deterministic exponential backoff before the relaunch: an
			// immediate retry hammers a crash-looping worker binary.
			if err := sleepCtx(ctx, Backoff(attempt, requeueBase, requeueMax)); err != nil {
				return res, err
			}
		}
	}
	return res, fmt.Errorf("dist: cell %s failed after %d attempts: %w", cell.Key, retries, lastErr)
}

// tryOnce offers the cell to the slot's worker (launching one if needed)
// and waits for its result, folding telemetry frames into span. Any
// protocol failure discards the worker so the next attempt gets a fresh
// process.
func (e *Executor) tryOnce(ctx context.Context, slot int, spec []byte, span *obs.CellSpan, logf experiments.Logf) (interface{}, string, error) {
	w, err := e.worker(ctx, slot)
	if err != nil {
		return nil, "", err
	}
	span.Dispatch(w.name)
	id := e.nextID.Add(1)
	if err := w.send(Request{Type: "run", ID: id, Proto: ProtoVersion, Spec: spec}); err != nil {
		e.discard(slot, w)
		return nil, w.name, fmt.Errorf("dist: send cell to %s: %w", w.name, err)
	}
	var timeout <-chan time.Time
	if e.Timeout > 0 {
		timer := time.NewTimer(e.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		select {
		case <-ctx.Done():
			// Grid cancelled (first error elsewhere, or SIGINT): stop the
			// worker's in-flight training and reap it.
			e.discard(slot, w)
			return nil, w.name, ctx.Err()
		case <-timeout:
			e.discard(slot, w)
			return nil, w.name, fmt.Errorf("dist: %s: no result within %s", w.name, e.Timeout)
		case rep, ok := <-w.replies:
			if !ok {
				e.discard(slot, w)
				return nil, w.name, fmt.Errorf("dist: %s exited or broke protocol mid-cell", w.name)
			}
			switch rep.Type {
			case "log":
				if rep.ID == id && logf != nil {
					logf("%s", rep.Line)
				}
			case "telemetry":
				if rep.ID == id && rep.Span != nil {
					span.RunSegment(rep.Span.Seconds, rep.Span.Failed)
				}
			case "result":
				if rep.ID != id {
					e.discard(slot, w)
					return nil, w.name, fmt.Errorf("dist: %s answered request %d, want %d", w.name, rep.ID, id)
				}
				if rep.Error != "" {
					if rep.Error == context.Canceled.Error() {
						// The worker was cancelled out from under its cell
						// (e.g. a stray SIGINT to just that process) while
						// this grid is still live: a worker property, so
						// requeue rather than fail the cell.
						e.discard(slot, w)
						return nil, w.name, fmt.Errorf("dist: %s: cell cancelled worker-side", w.name)
					}
					return nil, w.name, &cellError{msg: rep.Error}
				}
				value, err := decodeResult(rep)
				if err != nil {
					e.discard(slot, w)
					return nil, w.name, err
				}
				return value, w.name, nil
			default:
				e.discard(slot, w)
				return nil, w.name, fmt.Errorf("dist: %s: unexpected reply type %q", w.name, rep.Type)
			}
		}
	}
}

// decodeResult rebuilds the typed result value from a result reply.
func decodeResult(rep Reply) (interface{}, error) {
	value, err := experiments.NewResultFor(rep.Kind)
	if err != nil {
		return nil, fmt.Errorf("dist: result reply: %w", err)
	}
	if err := json.Unmarshal(rep.Value, value); err != nil {
		return nil, fmt.Errorf("dist: decode %s result: %w", rep.Kind, err)
	}
	return value, nil
}

// worker returns the slot's live process, launching one if the slot is
// empty. Slots are exclusive to one runner goroutine, so only the map
// needs locking.
func (e *Executor) worker(ctx context.Context, slot int) (*workerProc, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("dist: executor closed")
	}
	if e.slots == nil {
		e.slots = map[int]*workerProc{}
	}
	w := e.slots[slot]
	e.mu.Unlock()
	if w != nil {
		return w, nil
	}
	w, err := e.launch(ctx, slot)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		w.stop()
		return nil, errors.New("dist: executor closed")
	}
	e.slots[slot] = w
	e.mu.Unlock()
	return w, nil
}

// launch execs one worker for the slot and waits for its hello.
// Cancelling ctx interrupts the hello wait — a SIGINT during worker
// startup must not sit out the full hello timeout.
func (e *Executor) launch(ctx context.Context, slot int) (*workerProc, error) {
	if len(e.Command) == 0 {
		return nil, errors.New("dist: executor has no worker command")
	}
	cmd := exec.Command(e.Command[0], e.Command[1:]...)
	cmd.Env = append(os.Environ(), e.Env...)
	cmd.Stderr = os.Stderr // worker warnings surface on the coordinator's stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: start worker: %w", err)
	}
	w := &workerProc{
		name:    fmt.Sprintf("w%d/pid%d", slot, cmd.Process.Pid),
		cmd:     cmd,
		stdin:   stdin,
		enc:     json.NewEncoder(stdin),
		replies: make(chan Reply, 256),
		done:    make(chan struct{}),
	}
	go w.read(stdout)
	if err := w.awaitHello(ctx); err != nil {
		w.stop()
		return nil, err
	}
	e.logf("dist: launched %s", w.name)
	return w, nil
}

// read pumps the worker's reply stream. A line that is not a Reply ends
// the stream early — the consumer sees a closed channel, which is the
// protocol-failure signal.
func (w *workerProc) read(stdout io.Reader) {
	defer close(w.done)
	defer close(w.replies)
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rep Reply
		if err := json.Unmarshal(line, &rep); err != nil {
			return
		}
		w.replies <- rep
	}
}

// awaitHello validates the worker's first line. Cancelling ctx abandons
// the wait immediately (the caller tears the process down).
func (w *workerProc) awaitHello(ctx context.Context) error {
	timer := time.NewTimer(helloTimeout)
	defer timer.Stop()
	select {
	case rep, ok := <-w.replies:
		if !ok {
			return fmt.Errorf("dist: %s exited before hello", w.name)
		}
		if rep.Type != "hello" {
			return fmt.Errorf("dist: %s: first reply %q, want hello", w.name, rep.Type)
		}
		if rep.Proto < MinProtoVersion || rep.Proto > ProtoVersion {
			return fmt.Errorf("dist: %s speaks protocol %d, want %d..%d", w.name, rep.Proto, MinProtoVersion, ProtoVersion)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return fmt.Errorf("dist: %s: no hello within %s", w.name, helloTimeout)
	}
}

// stop tears one worker down: ask politely (SIGINT + stdin EOF), drain
// its reply stream until the process exits (a kill watchdog bounds the
// wait), then reap it. Idempotent — Close and a discarding Execute may
// race onto the same proc.
func (w *workerProc) stop() {
	w.stopped.Do(func() {
		_ = w.cmd.Process.Signal(os.Interrupt)
		_ = w.stdin.Close()
		kill := time.AfterFunc(killDelay, func() { _ = w.cmd.Process.Kill() })
		for range w.replies {
			// Drain so the reader goroutine can reach EOF.
		}
		<-w.done
		_ = w.cmd.Wait()
		kill.Stop()
	})
}

// discard removes a misbehaving worker from its slot and tears it down;
// the slot's next attempt launches a fresh process.
func (e *Executor) discard(slot int, w *workerProc) {
	e.mu.Lock()
	if e.slots[slot] == w {
		delete(e.slots, slot)
	}
	e.mu.Unlock()
	w.stop()
}

// Close shuts every worker down gracefully (shutdown request, SIGINT,
// bounded kill). Call after the grid finishes — including on SIGINT, so
// no orphan processes outlive the coordinator. An Execute racing Close
// loses its worker (its reply channel closes, its requeue finds the
// executor refusing to launch) and returns an error instead of leaking
// a fresh process.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	slots := e.slots
	e.slots = map[int]*workerProc{}
	e.mu.Unlock()
	for _, slot := range det.SortedKeys(slots) {
		w := slots[slot]
		_ = w.send(Request{Type: "shutdown"})
		w.stop()
	}
}

var _ experiments.CellExecutor = (*Executor)(nil)
