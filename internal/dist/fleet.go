package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"remapd/internal/det"
	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// This file is the coordinator side of the TCP transport. A Fleet owns a
// net.Listener; workers dial in, announce a slot count, and the fleet
// schedules cells onto whichever connected worker has free capacity —
// an elastic pool rather than the Executor's fixed one-process-per-slot
// layout. Workers may join and leave mid-grid: a joiner starts receiving
// cells immediately, a leaver (crash, partition, drain) has its in-flight
// cells requeued onto survivors, and when the pool is empty the grid
// stalls with a progress log instead of failing.

const (
	// DefaultHeartbeatEvery is the probe interval for connected workers
	// (proto >= 2); DefaultHeartbeatMisses consecutive unanswered probes
	// declare the worker dead. Any frame from the worker — log, result,
	// heartbeat — proves liveness, so a busy worker streaming epoch logs
	// never needs its probes to land on time.
	DefaultHeartbeatEvery  = 5 * time.Second
	DefaultHeartbeatMisses = 3

	// fleetStallEvery paces the "grid is stalled" progress log while the
	// fleet waits for a worker to (re)join.
	fleetStallEvery = 10 * time.Second

	// closeGrace bounds how long Close leaves connections open for
	// workers to act on the shutdown frame before reaping them.
	closeGrace = 2 * time.Second
)

// FleetOptions configures a listening coordinator.
type FleetOptions struct {
	// Retries is the per-cell attempt bound (<= 0 means DefaultRetries).
	Retries int
	// Timeout, when > 0, bounds the silence between a cell assignment
	// and its result reply, exactly as Executor.Timeout does. Heartbeats
	// make it mostly redundant for crash detection; it remains the
	// backstop against a live worker that simply never finishes.
	Timeout time.Duration
	// HeartbeatEvery / HeartbeatMisses tune the liveness deadline
	// (defaults above). A worker is declared dead after Misses+1
	// intervals with no frame of any kind.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// Logf receives join/leave/requeue/stall notices (harness domain;
	// results never depend on it).
	Logf experiments.Logf
	// Trace receives the structured fleet event record. When nil the
	// fleet creates a memory-only trace, so membership churn is always
	// recorded — a nil-Logf embedder still gets a record of every
	// dropped worker via Events().
	Trace *obs.FleetTrace
}

// Fleet is an experiments.CellExecutor backed by a dynamic pool of
// dialed-in workers. The runner keeps its own scheduling discipline
// (bounded in-flight set, deterministic reassembly by submission index);
// the fleet only decides which connected worker runs each cell, so
// results are byte-identical to the in-process and exec'd paths no
// matter how the pool churns.
type Fleet struct {
	opts FleetOptions
	ln   net.Listener

	mu      sync.Mutex
	workers map[string]*fleetWorker
	notify  chan struct{} // closed+replaced whenever capacity may have grown
	closed  bool

	nextID     atomic.Int64 // request IDs, shared across all connections
	nextWorker atomic.Int64 // join counter, names workers deterministically

	trace *obs.FleetTrace // never nil after NewFleet

	// Run totals, surviving worker churn (per-worker counters die with
	// their connection).
	done     atomic.Int64
	failed   atomic.Int64
	requeued atomic.Int64
	stalls   atomic.Int64
}

// fleetWorker is one connected worker: its connection, advertised
// capacity, and the demux table routing reply frames to in-flight cells.
type fleetWorker struct {
	name  string
	addr  string
	conn  net.Conn
	proto int
	slots int

	// Harness-domain accounting (see stats.go). counts meters the raw
	// connection; the rest are stamped by the read loop and Execute.
	counts        *countingConn
	done          atomic.Int64
	failed        atomic.Int64
	requeued      atomic.Int64
	lastSeenNano  atomic.Int64
	rttNano       atomic.Int64
	probeID       atomic.Int64
	probeSentNano atomic.Int64

	// inflight and draining are guarded by Fleet.mu (they are part of
	// the fleet's scheduling state, not the connection's).
	inflight int
	draining bool

	sendMu sync.Mutex
	enc    *json.Encoder

	// pending routes reply frames by request ID to the runOn call
	// waiting on them. Channels are buffered and never closed — a
	// dropped worker signals death through gone instead, so the read
	// loop can never send on a closed channel.
	pendMu  sync.Mutex
	pending map[int64]chan Reply

	gone     chan struct{} // closed exactly once when the worker is dropped
	goneOnce sync.Once
	missed   atomic.Int32 // consecutive heartbeat intervals with no frame
}

// send writes one request line; the mutex serialises cell assignments,
// heartbeat probes, and the shutdown frame onto the shared encoder.
func (w *fleetWorker) send(req Request) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	return w.enc.Encode(req)
}

// register opens the reply route for a request. The buffer absorbs log
// frames while the consumer is between selects; route never blocks on it.
func (w *fleetWorker) register(id int64) chan Reply {
	ch := make(chan Reply, 1024)
	w.pendMu.Lock()
	w.pending[id] = ch
	w.pendMu.Unlock()
	return ch
}

func (w *fleetWorker) deregister(id int64) {
	w.pendMu.Lock()
	delete(w.pending, id)
	w.pendMu.Unlock()
}

// route delivers one log/result frame to the cell waiting on it. Frames
// for unknown IDs (a requeued cell's late replies from a half-dead
// worker) are discarded; a full buffer means the consumer is gone, and
// the read loop must not block on its behalf.
func (w *fleetWorker) route(rep Reply) {
	w.pendMu.Lock()
	ch := w.pending[rep.ID]
	w.pendMu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- rep:
	default:
	}
}

// NewFleet wraps an already-listening socket and starts accepting
// workers. The caller owns nothing afterwards: Close tears down the
// listener and every connection.
func NewFleet(ln net.Listener, opts FleetOptions) *Fleet {
	trace := opts.Trace
	if trace == nil {
		// Always record: a nil-Logf, nil-Trace embedder can still ask
		// Events() why a worker vanished.
		trace = obs.NewFleetTrace()
	}
	f := &Fleet{
		ln:      ln,
		opts:    opts,
		workers: map[string]*fleetWorker{},
		notify:  make(chan struct{}),
		trace:   trace,
	}
	go f.accept()
	return f
}

// Events snapshots the fleet's in-memory event trace (see
// obs.FleetTrace); always populated, whether or not FleetOptions
// supplied a trace or a Logf.
func (f *Fleet) Events() []obs.FleetEvent { return f.trace.Events() }

// Addr reports the listener's address (useful with ":0" listeners).
func (f *Fleet) Addr() net.Addr { return f.ln.Addr() }

func (f *Fleet) logf(format string, args ...interface{}) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

func (f *Fleet) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func (f *Fleet) workerCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.workers)
}

// notifyLocked wakes every acquire waiting for capacity. Callers hold
// f.mu.
func (f *Fleet) notifyLocked() {
	close(f.notify)
	f.notify = make(chan struct{})
}

// accept admits dialing workers until the listener closes.
func (f *Fleet) accept() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			if f.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (fd pressure, aborted handshake):
			// log, breathe, keep listening.
			f.logf("dist: fleet: accept: %v", err)
			_ = sleepCtx(context.Background(), 100*time.Millisecond)
			continue
		}
		go f.serve(conn)
	}
}

// serve owns one connection: validate the hello, register the worker,
// start its liveness monitor, then pump its reply stream until it dies.
func (f *Fleet) serve(raw net.Conn) {
	// Meter the connection from the first byte; the hello itself counts.
	cc := &countingConn{Conn: raw}
	conn := net.Conn(cc)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	// The hello must arrive promptly; a timer closing the conn is the
	// deadline (no SetReadDeadline, which would drag wall-clock
	// arithmetic into the package).
	guard := time.AfterFunc(helloTimeout, func() { _ = conn.Close() })
	hello, err := readHello(sc)
	guard.Stop()
	if err != nil {
		f.logf("dist: fleet: rejected connection from %v: %v", conn.RemoteAddr(), err)
		_ = conn.Close()
		return
	}
	slots := hello.Slots
	if slots <= 0 {
		slots = 1 // proto 1 workers predate the slot advertisement
	}
	w := &fleetWorker{
		name:    fmt.Sprintf("fw%d/pid%d", f.nextWorker.Add(1), hello.PID),
		addr:    fmt.Sprint(conn.RemoteAddr()),
		conn:    conn,
		proto:   hello.Proto,
		slots:   slots,
		counts:  cc,
		enc:     json.NewEncoder(conn),
		pending: map[int64]chan Reply{},
		gone:    make(chan struct{}),
	}
	w.markSeen()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		_ = w.send(Request{Type: "shutdown"})
		_ = conn.Close()
		return
	}
	f.workers[w.name] = w
	f.notifyLocked()
	n := len(f.workers)
	f.mu.Unlock()
	f.logf("dist: fleet: %s joined from %v (proto %d, %d slot(s)); %d worker(s) connected", w.name, conn.RemoteAddr(), w.proto, w.slots, n)
	f.trace.Emit(obs.FleetEvent{Kind: obs.FleetJoin, Worker: w.name, Addr: w.addr, Proto: w.proto, Slots: w.slots, Workers: n})
	if w.proto >= 2 {
		// A version-1 worker would reject the unknown heartbeat request
		// type; it keeps the pipe era's liveness model instead (its
		// death surfaces as a closed connection or a cell timeout).
		go f.monitor(w)
	}
	f.read(w, sc)
}

// readHello consumes the connection's first line and validates it.
func readHello(sc *bufio.Scanner) (Reply, error) {
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rep Reply
		if err := json.Unmarshal(line, &rep); err != nil {
			return Reply{}, fmt.Errorf("malformed hello: %v", err)
		}
		if rep.Type != "hello" {
			return Reply{}, fmt.Errorf("first reply %q, want hello", rep.Type)
		}
		if rep.Proto < MinProtoVersion || rep.Proto > ProtoVersion {
			return Reply{}, fmt.Errorf("speaks protocol %d, want %d..%d", rep.Proto, MinProtoVersion, ProtoVersion)
		}
		return rep, nil
	}
	if err := sc.Err(); err != nil {
		return Reply{}, err
	}
	return Reply{}, errors.New("connection closed before hello")
}

// read pumps one worker's reply stream. Every frame resets the liveness
// counter; garbled input or an unknown type is a protocol failure that
// drops the worker (its in-flight cells requeue elsewhere).
func (f *Fleet) read(w *fleetWorker, sc *bufio.Scanner) {
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rep Reply
		if err := json.Unmarshal(line, &rep); err != nil {
			f.drop(w, fmt.Errorf("garbled reply: %v", err))
			return
		}
		w.missed.Store(0)
		w.markSeen()
		switch rep.Type {
		case "heartbeat":
			// Liveness already noted above. If this echoes the monitor's
			// outstanding probe, the elapsed time is the round trip.
			if rep.ID != 0 && rep.ID == w.probeID.Load() {
				//lint:allow no-wall-clock harness-domain heartbeat RTT measures the machine, never the simulation
				w.rttNano.Store(time.Now().UnixNano() - w.probeSentNano.Load())
			}
		case "goodbye":
			f.mu.Lock()
			w.draining = true
			f.mu.Unlock()
			f.logf("dist: fleet: %s is draining; assigning it nothing new", w.name)
			f.trace.Emit(obs.FleetEvent{Kind: obs.FleetDrain, Worker: w.name})
		case "log", "result", "telemetry":
			w.route(rep)
		default:
			f.drop(w, fmt.Errorf("unexpected reply type %q", rep.Type))
			return
		}
	}
	err := sc.Err()
	if err == nil {
		err = errors.New("connection closed")
	}
	f.drop(w, err)
}

// drop removes a worker from the pool, exactly once. Cells waiting on it
// observe the closed gone channel and requeue; pending reply channels
// are deliberately left open (late routes hit an empty pending map).
func (f *Fleet) drop(w *fleetWorker, cause error) {
	w.goneOnce.Do(func() {
		close(w.gone)
		_ = w.conn.Close()
		f.mu.Lock()
		delete(f.workers, w.name)
		n := len(f.workers)
		draining := w.draining
		f.notifyLocked()
		f.mu.Unlock()
		f.logf("dist: fleet: %s gone (%v); %d worker(s) remain; its in-flight cells will be requeued", w.name, cause, n)
		kind := obs.FleetDrop
		if draining {
			// A drained worker's disconnect is the graceful exit it
			// announced, not a failure.
			kind = obs.FleetLeave
		}
		f.trace.Emit(obs.FleetEvent{Kind: kind, Worker: w.name, Workers: n, Cause: fmt.Sprint(cause)})
	})
}

// acquire reserves one slot on the least-loaded live worker, blocking —
// with a periodic stall log — until capacity exists or ctx ends. Ties
// break on worker name so scheduling is reproducible given the same
// join order.
func (f *Fleet) acquire(ctx context.Context) (*fleetWorker, error) {
	var (
		stallC <-chan time.Time
		logged bool
	)
	for {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return nil, errors.New("dist: fleet closed")
		}
		var best *fleetWorker
		for _, name := range det.SortedKeys(f.workers) {
			w := f.workers[name]
			if w.draining || w.inflight >= w.slots {
				continue
			}
			if best == nil || w.inflight < best.inflight {
				best = w
			}
		}
		if best != nil {
			// This counter is what guarantees the worker-side slot
			// semaphore never blocks its read loop: assignments per
			// worker never exceed its advertised capacity.
			best.inflight++
			f.mu.Unlock()
			return best, nil
		}
		wake := f.notify
		n := len(f.workers)
		f.mu.Unlock()
		if !logged {
			logged = true
			if n == 0 {
				f.logf("dist: fleet: no workers connected; grid is stalled until one joins")
				f.stalls.Add(1)
				f.trace.Emit(obs.FleetEvent{Kind: obs.FleetStall, Workers: n})
			}
			stall := time.NewTicker(fleetStallEvery)
			defer stall.Stop()
			stallC = stall.C
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-wake:
		case <-stallC:
			f.logf("dist: fleet: still waiting for a worker slot (%d worker(s) connected)", f.workerCount())
		}
	}
}

// release returns a slot and wakes waiters. Safe on dropped workers.
func (f *Fleet) release(w *fleetWorker) {
	f.mu.Lock()
	if w.inflight > 0 {
		w.inflight--
	}
	f.notifyLocked()
	f.mu.Unlock()
}

// Execute implements experiments.CellExecutor: acquire a worker, run the
// cell on it, and on any worker-attributable failure requeue onto a
// survivor after a deterministic backoff, up to Retries attempts. Shared
// checkpoints make requeues resume rather than recompute.
func (f *Fleet) Execute(ctx context.Context, slot int, cell experiments.Cell, logf experiments.Logf) (experiments.CellResult, error) {
	_ = slot // the fleet schedules by worker capacity, not runner slot
	res := experiments.CellResult{Key: cell.Key}
	if cell.Spec == nil {
		return res, fmt.Errorf("cell %s: no serializable spec; cannot execute remotely", cell.Key)
	}
	spec, err := experiments.EncodeSpec(cell.Spec)
	if err != nil {
		return res, err
	}
	retries := f.opts.Retries
	if retries <= 0 {
		retries = DefaultRetries
	}
	var lastErr error
	for attempt := 1; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Attempts = attempt
		w, err := f.acquire(ctx)
		if err != nil {
			return res, err
		}
		res.Worker = w.name
		cell.Span.Dispatch(w.name)
		//lint:allow no-wall-clock harness-domain cell timing measures the machine, never the simulation
		start := time.Now()
		value, err := f.runOn(ctx, w, spec, cell.Span, logf)
		//lint:allow no-wall-clock harness-domain cell timing measures the machine, never the simulation
		seconds := time.Since(start).Seconds()
		f.release(w)
		cell.Span.EndAttempt(err != nil)
		if err == nil {
			w.done.Add(1)
			f.done.Add(1)
			f.trace.Emit(obs.FleetEvent{Kind: obs.FleetDone, Worker: w.name, Cell: cell.Key.String(), Attempt: attempt, Seconds: seconds})
			res.Value = value
			return res, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return res, cerr
		}
		var fatal *cellError
		if errors.As(err, &fatal) {
			// Deterministic cell failure: every worker would fail the
			// same way. Wrap with the key like the in-process runner.
			w.failed.Add(1)
			f.failed.Add(1)
			return res, fmt.Errorf("cell %s: %s", cell.Key, fatal.msg)
		}
		lastErr = err
		w.requeued.Add(1)
		f.requeued.Add(1)
		f.logf("dist: fleet: cell %s attempt %d/%d failed: %v; requeueing on a surviving worker", cell.Key, attempt, retries, err)
		f.trace.Emit(obs.FleetEvent{Kind: obs.FleetRequeue, Worker: w.name, Cell: cell.Key.String(), Attempt: attempt, Cause: fmt.Sprint(err)})
		if attempt < retries {
			if err := sleepCtx(ctx, Backoff(attempt, requeueBase, requeueMax)); err != nil {
				return res, err
			}
		}
	}
	return res, fmt.Errorf("dist: fleet: cell %s failed after %d attempts: %w", cell.Key, retries, lastErr)
}

// runOn assigns one cell to one worker and waits for its result,
// streaming log frames through logf and telemetry frames into span.
// Worker death (gone), silence past Timeout, or a protocol surprise
// returns a retryable error; an Error reply is the cell's own fault and
// comes back as *cellError.
func (f *Fleet) runOn(ctx context.Context, w *fleetWorker, spec []byte, span *obs.CellSpan, logf experiments.Logf) (interface{}, error) {
	id := f.nextID.Add(1)
	ch := w.register(id)
	defer w.deregister(id)
	if err := w.send(Request{Type: "run", ID: id, Proto: ProtoVersion, Spec: spec}); err != nil {
		f.drop(w, fmt.Errorf("send cell: %w", err))
		return nil, fmt.Errorf("dist: fleet: send cell to %s: %w", w.name, err)
	}
	var timeout <-chan time.Time
	if f.opts.Timeout > 0 {
		timer := time.NewTimer(f.opts.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-w.gone:
			return nil, fmt.Errorf("dist: fleet: %s died mid-cell", w.name)
		case <-timeout:
			f.drop(w, fmt.Errorf("no result for request %d within %s", id, f.opts.Timeout))
			return nil, fmt.Errorf("dist: fleet: %s: no result within %s", w.name, f.opts.Timeout)
		case rep := <-ch:
			switch rep.Type {
			case "log":
				if logf != nil {
					logf("%s", rep.Line)
				}
			case "telemetry":
				// Worker-reported run segment (proto >= 3): harness-domain
				// timing only, folded into the cell's span.
				if rep.Span != nil {
					span.RunSegment(rep.Span.Seconds, rep.Span.Failed)
				}
			case "result":
				if rep.Error != "" {
					if rep.Error == context.Canceled.Error() {
						// The worker's cells were cancelled out from
						// under it (its shutdown raced this assignment):
						// a worker property, requeue.
						return nil, fmt.Errorf("dist: fleet: %s: cell cancelled worker-side", w.name)
					}
					return nil, &cellError{msg: rep.Error}
				}
				return decodeResult(rep)
			default:
				f.drop(w, fmt.Errorf("unexpected routed reply type %q", rep.Type))
				return nil, fmt.Errorf("dist: fleet: %s: unexpected reply type %q", w.name, rep.Type)
			}
		}
	}
}

// Close stops accepting, asks every worker to shut down, and reaps
// stragglers after a grace period. The shutdown frame is sent but the
// connection left open so the worker can close its own side — closing
// first could reset the socket and discard the frame unread. Workers
// that never act on it (partitioned) are cut off by the grace timer.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	workers := f.workers
	f.workers = map[string]*fleetWorker{}
	f.notifyLocked()
	f.mu.Unlock()
	_ = f.ln.Close()
	for _, name := range det.SortedKeys(workers) {
		_ = workers[name].send(Request{Type: "shutdown"})
	}
	time.AfterFunc(closeGrace, func() {
		for _, name := range det.SortedKeys(workers) {
			_ = workers[name].conn.Close()
		}
	})
}

var _ experiments.CellExecutor = (*Fleet)(nil)
