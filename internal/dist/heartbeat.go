package dist

import (
	"fmt"
	"time"
)

// monitor is one worker's liveness clock, running for the life of its
// connection. Each tick charges one missed interval and sends a
// heartbeat probe; any frame the read loop receives — heartbeat echo,
// log line, result — clears the charge. A worker silent for more than
// HeartbeatMisses consecutive intervals is declared dead and dropped,
// which requeues its in-flight cells onto survivors.
//
// The probe is answered from the worker's read loop, never from a cell
// goroutine, so a worker saturating all its slots with training still
// echoes on time; conversely a partitioned or wedged worker accumulates
// misses even though its TCP connection looks healthy, which is exactly
// the failure the exec'd pipe transport could never see.
func (f *Fleet) monitor(w *fleetWorker) {
	every := f.opts.HeartbeatEvery
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	misses := f.opts.HeartbeatMisses
	if misses <= 0 {
		misses = DefaultHeartbeatMisses
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.gone:
			return
		case <-t.C:
			if int(w.missed.Add(1)) > misses {
				f.drop(w, fmt.Errorf("no frame for %d heartbeat intervals (deadline %s)", misses, time.Duration(misses+1)*every))
				return
			}
			id := f.nextID.Add(1)
			// Stamp the probe before sending so the echo's round trip is
			// never negative; only the newest probe's echo is timed.
			w.probeID.Store(id)
			//lint:allow no-wall-clock harness-domain heartbeat RTT measures the machine, never the simulation
			w.probeSentNano.Store(time.Now().UnixNano())
			if err := w.send(Request{Type: "heartbeat", ID: id}); err != nil {
				f.drop(w, fmt.Errorf("heartbeat write: %w", err))
				return
			}
		}
	}
}
