package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// This file is the worker side of the TCP transport: a worker process
// dials the coordinator (DialAndServe), announces its slot count, and
// serves the protocol over the connection — up to Slots cells
// concurrently, heartbeat probes answered immediately from the read loop
// so liveness never depends on cell progress. A lost connection is
// redialed on the deterministic backoff schedule; a SIGINT drains
// gracefully (finish the in-flight cells, send goodbye, disconnect).

// errShutdown marks a coordinator-requested shutdown — the one
// connection loss DialAndServe must not redial after.
var errShutdown = errors.New("dist: coordinator requested shutdown")

// DialOptions configures a dialing fleet worker.
type DialOptions struct {
	// Slots is the concurrent-cell capacity advertised in the hello
	// (<= 0 means 1). Each in-flight cell parallelises internally via
	// GOMAXPROCS, so slots > 1 only pays off on many-core workers.
	Slots int
	// Worker carries the process-local runtime facilities (checkpoint
	// store, metrics sink). Pointing Checkpoints at storage shared with
	// the coordinator is what makes requeues resume instead of recompute.
	Worker WorkerOptions
	// Chaos, when non-nil, wraps every dialed connection in the fault
	// injector (tests and the chaos-smoke CI job).
	Chaos *Chaos
	// RedialBase/RedialMax override the redial backoff schedule
	// (defaults redialBase/redialMax). MaxRedials bounds consecutive
	// failed dials before giving up; 0 retries forever — a standing
	// worker outwaits a coordinator restart.
	RedialBase time.Duration
	RedialMax  time.Duration
	MaxRedials int
	// Logf receives connection lifecycle notices (harness domain).
	Logf experiments.Logf
	// Trace, when non-nil, receives the worker-side structured event
	// trace (connect/disconnect/drain; the chaos injector adds sever).
	Trace *obs.FleetTrace

	// helloProto overrides the advertised protocol version (tests pin
	// the v1/v2 negotiation paths with it). 0 means ProtoVersion.
	helloProto int
}

func (o DialOptions) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// DialAndServe connects to a coordinator at addr and serves cells until
// the coordinator sends shutdown or ctx is cancelled. A severed or
// refused connection is retried with exponential backoff; the failure
// counter resets on every successful session, so a long-lived worker
// that loses one connection redials promptly. Cancelling ctx drains
// gracefully: in-flight cells run to completion, their results are sent,
// a goodbye deregisters the worker, and DialAndServe returns nil.
func DialAndServe(ctx context.Context, addr string, opts DialOptions) error {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.RedialBase <= 0 {
		opts.RedialBase = redialBase
	}
	if opts.RedialMax <= 0 {
		opts.RedialMax = redialMax
	}
	fails := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			fails++
			if opts.MaxRedials > 0 && fails > opts.MaxRedials {
				return fmt.Errorf("dist: dial %s: %w (gave up after %d attempts)", addr, err, fails)
			}
			wait := Backoff(fails, opts.RedialBase, opts.RedialMax)
			opts.logf("dist: dial %s failed (attempt %d): %v; redialing in %s", addr, fails, err, wait)
			if err := sleepCtx(ctx, wait); err != nil {
				return nil
			}
			continue
		}
		fails = 0
		c := net.Conn(conn)
		if opts.Chaos != nil {
			c = opts.Chaos.Wrap(c)
		}
		opts.logf("dist: connected to coordinator %s", addr)
		opts.Trace.Emit(obs.FleetEvent{Kind: obs.FleetConnect, Addr: addr, Slots: opts.Slots})
		err = serveConn(ctx, c, opts)
		_ = c.Close()
		switch {
		case errors.Is(err, errShutdown):
			opts.logf("dist: coordinator requested shutdown; exiting")
			opts.Trace.Emit(obs.FleetEvent{Kind: obs.FleetDisconnect, Addr: addr, Cause: "shutdown"})
			return nil
		case ctx.Err() != nil:
			return nil // drained after SIGINT
		}
		opts.Trace.Emit(obs.FleetEvent{Kind: obs.FleetDisconnect, Addr: addr, Cause: fmt.Sprint(err)})
		opts.logf("dist: connection to %s lost: %v; redialing in %s", addr, err, opts.RedialBase)
		if err := sleepCtx(ctx, opts.RedialBase); err != nil {
			return nil
		}
	}
}

// connWriter serialises reply frames from concurrent cell goroutines,
// the heartbeat echo, and the drain goodbye onto one connection.
type connWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (w *connWriter) send(rep Reply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(rep)
}

// serveConn runs one connection's worth of the worker protocol:
// hello, then a read loop dispatching heartbeats (answered inline),
// run requests (each on its own goroutine, bounded by Slots), and
// shutdown. Returns errShutdown on a coordinator-requested exit, nil
// after a ctx-cancelled graceful drain, and a connection error
// otherwise (the caller redials).
func serveConn(ctx context.Context, conn net.Conn, opts DialOptions) error {
	cw := &connWriter{enc: json.NewEncoder(conn)}
	proto := opts.helloProto
	if proto == 0 {
		proto = ProtoVersion
	}
	if err := cw.send(Reply{Type: "hello", Proto: proto, PID: os.Getpid(), Slots: opts.Slots}); err != nil {
		return fmt.Errorf("dist: worker hello: %w", err)
	}

	// Cells run under their own context: a SIGINT drain must let them
	// finish (cellCtx stays live), while a dead connection must stop
	// them at the next batch boundary (their results have nowhere to go;
	// the coordinator has already requeued them).
	cellCtx, cancelCells := context.WithCancel(context.Background())
	defer cancelCells()

	var (
		wg       sync.WaitGroup
		drainMu  sync.Mutex
		draining bool
	)
	// Graceful drain on ctx cancellation (worker SIGINT): tell the
	// coordinator to assign nothing new, let the in-flight cells finish
	// and their results flush, then close the connection to unblock the
	// read loop below.
	served := make(chan struct{})
	go func() {
		select {
		case <-served:
		case <-ctx.Done():
			drainMu.Lock()
			draining = true
			drainMu.Unlock()
			opts.logf("dist: draining: finishing in-flight cells before exit")
			opts.Trace.Emit(obs.FleetEvent{Kind: obs.FleetDrain})
			_ = cw.send(Reply{Type: "goodbye", PID: os.Getpid()})
			wg.Wait()
			_ = conn.Close()
		}
	}()
	defer close(served)

	rt := experiments.Runtime{Checkpoints: opts.Worker.Checkpoints, Metrics: opts.Worker.Metrics}
	sem := make(chan struct{}, opts.Slots)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			return fmt.Errorf("dist: worker: malformed request: %w", err)
		}
		switch req.Type {
		case "heartbeat":
			// Answered from the read loop, never a cell goroutine: a
			// busy worker is alive, and must look alive.
			if err := cw.send(Reply{Type: "heartbeat", ID: req.ID}); err != nil {
				return fmt.Errorf("dist: worker: write heartbeat: %w", err)
			}
		case "shutdown":
			cancelCells()
			wg.Wait()
			return errShutdown
		case "run":
			drainMu.Lock()
			d := draining
			drainMu.Unlock()
			if d {
				// Raced the goodbye: skip it silently — the coordinator
				// requeues every assigned-but-unanswered cell when the
				// connection closes.
				continue
			}
			// The coordinator never assigns beyond the advertised slot
			// count, so this acquire cannot block in practice; it is a
			// backstop against a misbehaving peer.
			sem <- struct{}{}
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				defer func() { <-sem }()
				rep := runRequest(cellCtx, req, rt, proto, func(log Reply) { _ = cw.send(log) })
				if err := cw.send(rep); err != nil {
					opts.logf("dist: result for request %d lost (%v); the coordinator will requeue the cell", req.ID, err)
				}
			}(req)
		default:
			return fmt.Errorf("dist: worker: unknown request type %q", req.Type)
		}
	}
	// Read loop ended: the connection is gone (coordinator exit, network
	// fault, or our own drain close). Stop in-flight cells — their
	// results have no route — and join them before returning.
	cancelCells()
	wg.Wait()
	if ctx.Err() != nil {
		return nil
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dist: worker: read request: %w", err)
	}
	return errors.New("dist: connection closed by coordinator")
}
