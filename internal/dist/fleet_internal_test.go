package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// These tests live inside the package to reach negotiation and liveness
// internals the public surface hides on purpose: the v1 hello override,
// the worker table, and the backoff schedule.

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// discardLogf swallows fleet chatter: fleet goroutines can log a drop a
// beat after the test body returns, which t.Logf forbids.
func discardLogf(string, ...interface{}) {}

func internalFleet(t *testing.T, opts FleetOptions) *Fleet {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(ln, opts)
	t.Cleanup(f.Close)
	return f
}

func internalSpecCell(policy string) experiments.Cell {
	s := experiments.QuickScale()
	s.Name = "dist-internal"
	s.TrainN, s.TestN = 64, 32
	s.Epochs = 1
	s.Models = []string{"cnn-s"}
	s.Seeds = []uint64{1}
	sp := &experiments.CellSpec{
		Kind:   "policy",
		Key:    experiments.CellKey{Model: "cnn-s", Policy: policy, Seed: 1},
		Scale:  s.Spec(),
		Regime: experiments.DefaultRegime(),
		Dataset: experiments.DatasetSpec{
			Name: "cifar10-like", Train: s.TrainN, Test: s.TestN, Img: s.ImgSize, Seed: 77,
		},
		Classes: 10,
	}
	return sp.Cell(s)
}

// TestV1WorkerNegotiation: a version-1 hello (no slot advertisement)
// must be admitted with one assumed slot and must never receive a
// heartbeat probe — the v1 protocol has no such request type.
func TestV1WorkerNegotiation(t *testing.T) {
	f := internalFleet(t, FleetOptions{
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 2,
		Logf:            discardLogf,
	})
	conn, err := net.Dial("tcp", f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := json.NewEncoder(conn).Encode(Reply{Type: "hello", Proto: 1, PID: 42}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v1 worker admission", func() bool { return f.workerCount() == 1 })

	f.mu.Lock()
	var admitted *fleetWorker
	for _, w := range f.workers {
		admitted = w
	}
	f.mu.Unlock()
	if admitted.proto != 1 || admitted.slots != 1 {
		t.Fatalf("admitted as proto %d with %d slots, want proto 1 with 1 slot", admitted.proto, admitted.slots)
	}

	// Sit through many heartbeat intervals: no probe may arrive, and the
	// silent-but-v1 worker must not be declared dead by a clock it never
	// agreed to.
	if err := conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			break // read deadline: the quiet we wanted
		}
		if req.Type == "heartbeat" {
			t.Fatal("v1 worker received a heartbeat probe")
		}
	}
	if n := f.workerCount(); n != 1 {
		t.Fatalf("v1 worker was dropped (%d workers); heartbeat deadline must not apply to proto 1", n)
	}
}

// TestV2WorkerNegotiation: a version-2 worker speaks slots, heartbeats,
// and goodbye but not the telemetry frame. The fleet must admit it at
// proto 2, run cells on it normally, and the attached lifecycle span
// must show an attempt with no run segment — the telemetry frame was
// negotiated away cleanly, not half-sent or mistaken for a protocol
// error.
func TestV2WorkerNegotiation(t *testing.T) {
	f := internalFleet(t, FleetOptions{Logf: discardLogf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- DialAndServe(ctx, f.Addr().String(), DialOptions{
			Logf:       discardLogf,
			RedialBase: 20 * time.Millisecond,
			helloProto: 2,
		})
	}()
	waitFor(t, "v2 worker admission", func() bool { return f.workerCount() == 1 })
	f.mu.Lock()
	for _, w := range f.workers {
		if w.proto != 2 {
			t.Errorf("admitted as proto %d, want 2", w.proto)
		}
	}
	f.mu.Unlock()

	rec := obs.NewSpanRecorder()
	cell := internalSpecCell("ideal")
	cell.Span = rec.Begin(cell.Key.String())
	res, err := f.Execute(context.Background(), 0, cell, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (a missing telemetry frame must not look like a failure)", res.Attempts)
	}
	cell.Span.Finish("ok")
	spans := rec.Spans()
	if len(spans) != 1 || len(spans[0].Attempts) != 1 {
		t.Fatalf("span shape wrong: %+v", spans)
	}
	a := spans[0].Attempts[0]
	if a.RunSeconds != 0 || a.Failed {
		t.Errorf("v2 attempt should have no run segment and no failure: %+v", a)
	}
	if a.WireSeconds <= 0 {
		t.Errorf("dispatch→result time should land in wire seconds when no run segment exists: %+v", a)
	}

	f.Close()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("v2 worker did not exit after fleet close")
	}
}

// TestTelemetryRequiresBothSides pins the worker half of the
// negotiation directly: a proto-3 worker answering a run request that
// carries no coordinator version (an older coordinator) must not send a
// telemetry frame, and one answering a proto-3 request must send
// exactly one, immediately before the result.
func TestTelemetryRequiresBothSides(t *testing.T) {
	spec, err := experiments.EncodeSpec(internalSpecCell("ideal").Spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(reqProto, workerProto int) []Reply {
		var frames []Reply
		rep := runRequest(context.Background(),
			Request{Type: "run", ID: 1, Proto: reqProto, Spec: spec},
			experiments.Runtime{}, workerProto,
			func(r Reply) { frames = append(frames, r) })
		if rep.Error != "" {
			t.Fatalf("cell failed: %s", rep.Error)
		}
		return frames
	}
	countTelemetry := func(frames []Reply) int {
		n := 0
		for _, fr := range frames {
			if fr.Type == "telemetry" {
				if fr.Span == nil || fr.Span.Seconds <= 0 {
					t.Errorf("telemetry frame without a run segment: %+v", fr)
				}
				n++
			}
		}
		return n
	}
	if n := countTelemetry(run(0, ProtoVersion)); n != 0 {
		t.Errorf("old coordinator received %d telemetry frame(s), want 0", n)
	}
	if n := countTelemetry(run(ProtoVersion, 2)); n != 0 {
		t.Errorf("v2 worker sent %d telemetry frame(s), want 0", n)
	}
	if n := countTelemetry(run(ProtoVersion, ProtoVersion)); n != 1 {
		t.Errorf("v3<->v3 produced %d telemetry frame(s), want exactly 1", n)
	}
}

// TestTooNewProtoRejected: a hello from the future must be refused and
// the connection closed, never half-admitted.
func TestTooNewProtoRejected(t *testing.T) {
	f := internalFleet(t, FleetOptions{Logf: discardLogf})
	conn, err := net.Dial("tcp", f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := json.NewEncoder(conn).Encode(Reply{Type: "hello", Proto: ProtoVersion + 97, PID: 42, Slots: 4}); err != nil {
		t.Fatal(err)
	}
	// The fleet closes the connection on rejection; the read unblocks
	// with EOF rather than a deadline.
	buf := make([]byte, 1)
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("rejected connection still delivered data")
	}
	if n := f.workerCount(); n != 0 {
		t.Fatalf("future-proto worker was admitted (%d workers)", n)
	}
}

// TestHeartbeatDeclaresDeadWorker: a worker whose TCP connection stays
// open but which stops answering — a partition or a wedged process —
// must be dropped at the liveness deadline and its in-flight cell
// requeued onto a later-joining live worker.
func TestHeartbeatDeclaresDeadWorker(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	capture := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	// The deadline must be short enough to evict the zombie quickly but
	// generous enough that a live worker saturating every core with
	// training still gets its echo scheduled in time (the race detector
	// slows everything several-fold).
	f := internalFleet(t, FleetOptions{
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 5,
		Logf:            capture,
	})

	// The zombie: a valid hello, then total silence. It never reads
	// either, but the assigned frames fit the kernel buffers, so only
	// the heartbeat deadline can unmask it.
	zombie, err := net.Dial("tcp", f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = zombie.Close() }()
	if err := json.NewEncoder(zombie).Encode(Reply{Type: "hello", Proto: ProtoVersion, PID: 666, Slots: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "zombie admission", func() bool { return f.workerCount() == 1 })

	type out struct {
		res experiments.CellResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := f.Execute(context.Background(), 0, internalSpecCell("ideal"), nil)
		done <- out{res, err}
	}()

	// The cell lands on the zombie, the deadline fires, the zombie is
	// dropped, and the requeued attempt stalls on an empty pool.
	waitFor(t, "zombie eviction", func() bool { return f.workerCount() == 0 })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wdone := make(chan error, 1)
	go func() {
		wdone <- DialAndServe(ctx, f.Addr().String(), DialOptions{Logf: capture, RedialBase: 20 * time.Millisecond})
	}()

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Attempts < 2 {
			t.Fatalf("attempts = %d, want >= 2 (the zombie must cost a requeue)", o.res.Attempts)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("cell never completed after the live worker joined")
	}
	mu.Lock()
	transcript := strings.Join(lines, "\n")
	mu.Unlock()
	if !strings.Contains(transcript, "no frame for") {
		t.Fatalf("transcript does not attribute the drop to the heartbeat deadline:\n%s", transcript)
	}

	f.Close()
	select {
	case <-wdone:
	case <-time.After(60 * time.Second):
		t.Fatal("live worker did not exit after fleet close")
	}
}

// TestBackoffSchedule pins the deterministic doubling series and its cap.
func TestBackoffSchedule(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	want := map[int]time.Duration{
		0: 100 * time.Millisecond,
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 800 * time.Millisecond,
		5: time.Second,
		6: time.Second,
		// Far past the cap: the loop must saturate, not overflow.
		500: time.Second,
	}
	for attempt, d := range want {
		if got := Backoff(attempt, base, max); got != d {
			t.Errorf("Backoff(%d) = %s, want %s", attempt, got, d)
		}
	}
}

// TestDialGivesUpAfterMaxRedials: a bounded worker must stop dialing a
// dead coordinator and say how hard it tried.
func TestDialGivesUpAfterMaxRedials(t *testing.T) {
	// Reserve a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	err = DialAndServe(context.Background(), addr, DialOptions{
		MaxRedials: 2,
		RedialBase: time.Millisecond,
		RedialMax:  2 * time.Millisecond,
		Logf:       discardLogf,
	})
	if err == nil || !strings.Contains(err.Error(), "gave up after") {
		t.Fatalf("err = %v, want a gave-up error", err)
	}
}
