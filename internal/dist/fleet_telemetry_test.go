package dist_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"remapd/internal/checkpoint"
	"remapd/internal/dist"
	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// TestFleetTelemetryChaosSever is the span-accounting acceptance test:
// a chaos-severed cell must leave (1) a Fig. 6 table byte-identical to
// a telemetry-free in-process run, (2) a two-attempt lifecycle span
// whose severed attempt is failed with no run segment and whose retry
// carries the worker-reported one, and (3) a structured fleet trace —
// in memory and in the JSONL file — that narrates join → requeue →
// cell-done with attempt numbers, attributing the requeue to the
// severed worker.
func TestFleetTelemetryChaosSever(t *testing.T) {
	reg := experiments.DefaultRegime()
	scale := func() experiments.Scale {
		s := microScale()
		s.Seeds = []uint64{1}
		s.Epochs = 4 // several log frames per cell, so the cut lands mid-cell
		s.Workers = 1
		return s
	}
	policies := []string{"remap-d"}

	// Baseline: in-process, no telemetry of any kind.
	baseline, err := experiments.Fig6(context.Background(), scale(), reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	var capture logCapture
	store, err := checkpoint.NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "fleet.jsonl")
	trace, err := obs.NewFleetTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	chaos := dist.NewChaos(dist.ChaosConfig{Seed: 7, SeverAfter: 3}, capture.logf)
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf, Trace: trace})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := startWorker(ctx, fleet.Addr().String(), dist.DialOptions{
		Worker: dist.WorkerOptions{Checkpoints: store},
		Chaos:  chaos,
		Logf:   capture.logf,
	})

	remote := scale()
	remote.Exec = fleet
	remote.Spans = obs.NewSpanRecorder()
	remote.Progress = capture.logf
	rows, err := experiments.Fig6(context.Background(), remote, reg, policies)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := experiments.FormatFig6(rows), experiments.FormatFig6(baseline); got != want {
		t.Fatalf("telemetry-on Fig. 6 differs from telemetry-free in-process:\n--- in-process\n%s\n--- fleet\n%s", want, got)
	}

	// Span accounting: one cell, two attempts. The severed attempt's
	// telemetry frame never arrived, so it is failed with no run
	// segment; the retry carries the worker-reported one.
	spans := remote.Spans.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1 (grid is a single cell):\n%+v", len(spans), spans)
	}
	sp := spans[0]
	if sp.Outcome != "ok" {
		t.Fatalf("span outcome = %q, want ok: %+v", sp.Outcome, sp)
	}
	if len(sp.Attempts) < 2 {
		t.Fatalf("span has %d attempts, want >= 2 (the sever must cost a requeue): %+v", len(sp.Attempts), sp)
	}
	first, last := sp.Attempts[0], sp.Attempts[len(sp.Attempts)-1]
	if !first.Failed || first.RunSeconds != 0 {
		t.Errorf("severed attempt should be failed with no run segment: %+v", first)
	}
	if last.Failed || last.RunSeconds <= 0 {
		t.Errorf("winning attempt should carry the worker-reported run segment: %+v", last)
	}
	if first.Worker == "" || last.Worker == "" {
		t.Errorf("attempts missing worker attribution: %+v", sp.Attempts)
	}

	// The in-memory trace must narrate the lifecycle with attempts.
	var sawJoin, sawRequeue, sawDone bool
	var severedWorker string
	for _, ev := range fleet.Events() {
		switch ev.Kind {
		case obs.FleetJoin:
			sawJoin = true
			if ev.Worker == "" || ev.Proto == 0 || ev.Slots == 0 {
				t.Errorf("join event missing identity: %+v", ev)
			}
		case obs.FleetRequeue:
			sawRequeue = true
			severedWorker = ev.Worker
			if ev.Attempt != 1 || ev.Cell == "" || ev.Cause == "" {
				t.Errorf("requeue event missing attribution: %+v", ev)
			}
		case obs.FleetDone:
			sawDone = true
			if ev.Attempt < 2 || ev.Cell == "" {
				t.Errorf("cell-done should record the winning attempt (>= 2): %+v", ev)
			}
		}
	}
	if !sawJoin || !sawRequeue || !sawDone {
		t.Fatalf("trace missing lifecycle events (join=%v requeue=%v done=%v):\n%+v",
			sawJoin, sawRequeue, sawDone, fleet.Events())
	}

	fleet.Close()
	waitWorker(t, w)

	// The JSONL file must round-trip through the strict decoder and
	// summarize with the requeue attributed to the severed worker —
	// exactly what `remapd-metrics -fleet` consumes.
	if err := trace.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := obs.DecodeFleetEvents(f)
	if err != nil {
		t.Fatalf("trace file failed strict decode: %v", err)
	}
	sum := obs.SummarizeFleet(events)
	if sum.Requeues < 1 || sum.CellsDone < 1 {
		t.Fatalf("summary lost the run (%d requeues, %d cells done):\n%+v", sum.Requeues, sum.CellsDone, sum)
	}
	found := false
	for _, ws := range sum.Workers {
		if ws.Worker == severedWorker && ws.Requeues >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary does not attribute a requeue to severed worker %q:\n%+v", severedWorker, sum.Workers)
	}
}

// TestFleetStatusSection: the fleet's /status section must reflect
// membership and completed work while the fleet is live.
func TestFleetStatusSection(t *testing.T) {
	var capture logCapture
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := startWorker(ctx, fleet.Addr().String(), dist.DialOptions{Logf: capture.logf})

	if _, err := fleet.Execute(context.Background(), 0, specCell("ideal"), nil); err != nil {
		t.Fatal(err)
	}

	stats, ok := fleet.StatusSection().(dist.FleetStats)
	if !ok {
		t.Fatalf("StatusSection returned %T, want dist.FleetStats", fleet.StatusSection())
	}
	if len(stats.Workers) != 1 || stats.Done != 1 {
		t.Fatalf("fleet stats = %+v, want 1 worker with 1 cell done", stats)
	}
	ws := stats.Workers[0]
	if ws.Worker == "" || ws.Proto != dist.ProtoVersion || ws.Done != 1 {
		t.Errorf("worker row incomplete: %+v", ws)
	}
	if ws.BytesIn == 0 || ws.BytesOut == 0 {
		t.Errorf("byte meters never moved: %+v", ws)
	}

	fleet.Close()
	waitWorker(t, w)
}
