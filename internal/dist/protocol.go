// Package dist fans experiment cells out to worker processes. The
// coordinator side plugs into the experiment runner as its CellExecutor:
// the runner keeps its scheduling discipline — bounded in-flight set,
// first-error cancellation, deterministic result reassembly by submission
// index — and dist only changes where each cell's work happens. Two
// executors exist:
//
//   - Executor execs one worker process per runner slot and speaks the
//     protocol over the child's stdin/stdout pipes (the -dist N path).
//   - Fleet listens on a net.Listener; worker processes on any machine
//     dial in (-worker -connect host:port), advertise a slot count in
//     their hello, and the fleet work-steals cells across whatever
//     workers are currently connected (the -listen path). Workers may
//     join and leave mid-grid; heartbeats detect dead or partitioned
//     workers and their in-flight cells are requeued onto survivors.
//
// The worker side is the same binary run with a -worker flag: it reads
// serialized cell specs, executes them through the same registered run
// functions the in-process path uses, and writes results back.
//
// The protocol is line-delimited JSON over any byte stream. One request
// or reply per line; requests flow coordinator→worker, replies
// worker→coordinator. A pipe worker (Serve) handles one cell at a time; a
// fleet worker (DialAndServe) handles up to its advertised slot count
// concurrently, demultiplexed by request ID.
//
// Determinism: a spec is pure coordinates, the registered run functions
// are deterministic in those coordinates, and results are scalar structs
// that survive a JSON round-trip exactly (encoding/json renders float64
// shortest-round-trip), so a cell computes identical bytes no matter
// which process or machine runs it — the dist and fleet Fig. 6
// byte-identity tests pin this, including under injected network faults
// (see chaos.go).
//
// Fault tolerance: a worker crash, severed connection, malformed reply,
// missed heartbeat deadline, or reply timeout requeues the cell on
// another worker (bounded retries with a deterministic exponential
// backoff schedule, per-cell attempt logging). Cells checkpoint into a
// shared -checkpoint-dir, so a retried cell resumes from its last
// completed epoch instead of restarting — checkpoints, not protocol
// replies, are the durable record.
package dist

import "encoding/json"

// ProtoVersion is the wire protocol version this binary speaks. The
// worker's hello carries it; the coordinator accepts any version in
// [MinProtoVersion, ProtoVersion] rather than guessing at anything else.
//
// Version 2 added the fleet transport: the hello's slot advertisement
// (Reply.Slots), heartbeat request/reply liveness probes, and the
// goodbye drain notice.
//
// Version 3 added operational telemetry: the coordinator advertises its
// own version on run requests (Request.Proto), and a worker that sees
// proto >= 3 there sends a telemetry reply (Reply.Span) immediately
// before each result, carrying the cell's execution wall time. The
// frame is negotiated down in both directions — an old coordinator
// omits Request.Proto so a v3 worker stays silent, and an old worker
// ignores the unknown field and simply never sends telemetry.
const ProtoVersion = 3

// MinProtoVersion is the oldest worker protocol a coordinator still
// accepts. A version-1 worker (exec'd pipe era) never receives heartbeat
// requests — it would reject the unknown type — and is assumed to have
// one slot; everything else is unchanged, so mixed-version fan-out keeps
// working.
const MinProtoVersion = 1

// Request is one coordinator→worker line.
type Request struct {
	// Type is "run" (execute Spec, reply with a result), "heartbeat"
	// (reply with a heartbeat echoing ID — liveness probe, proto >= 2
	// only), or "shutdown" (finish nothing — the worker exits; a pipe
	// worker drains naturally because it only reads the next request
	// after replying, a fleet worker cancels its in-flight cells first).
	Type string `json:"type"`
	// ID correlates the request's replies; the worker echoes it on every
	// log, result and heartbeat line. Monotonic per coordinator, never
	// reused.
	ID int64 `json:"id,omitempty"`
	// Proto is the coordinator's protocol version, advertised on run
	// requests (proto >= 3). A worker only volunteers proto-gated frames
	// (telemetry) when both sides speak them: min(hello proto, request
	// proto) >= 3. Older coordinators omit the field; older workers
	// ignore it.
	Proto int `json:"proto,omitempty"`
	// Spec is the serialized experiments.CellSpec for a run request.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Reply is one worker→coordinator line.
type Reply struct {
	// Type is "hello" (first line after connecting), "log" (one progress
	// line from an in-flight cell), "telemetry" (the cell's run-segment
	// timing, sent immediately before its result when both sides speak
	// proto >= 3), "result" (a cell finished), "heartbeat" (liveness
	// echo, proto >= 2), or "goodbye" (the worker is draining: it will
	// finish its in-flight cells, send their results, and disconnect —
	// assign it nothing new).
	Type string `json:"type"`
	// Proto and PID describe the worker on hello.
	Proto int `json:"proto,omitempty"`
	PID   int `json:"pid,omitempty"`
	// Slots is the worker's concurrent-cell capacity, advertised on
	// hello (proto >= 2; a missing or zero value means one slot).
	Slots int `json:"slots,omitempty"`
	// ID echoes the request being answered (log, result, heartbeat).
	ID int64 `json:"id,omitempty"`
	// Line is one progress line (log).
	Line string `json:"line,omitempty"`
	// Kind and Value carry a successful result: Kind names the cell kind
	// (so the coordinator decodes Value into the right type) and Value is
	// the run function's return, JSON-encoded.
	Kind  string          `json:"kind,omitempty"`
	Value json.RawMessage `json:"value,omitempty"`
	// Error carries a failed result: the cell ran to a deterministic
	// error. Protocol failures have no reply at all — they surface as a
	// dead or silent worker.
	Error string `json:"error,omitempty"`
	// Span carries a telemetry reply's run segment (proto >= 3). Purely
	// harness-domain: the coordinator folds it into the cell's lifecycle
	// span and it never influences results.
	Span *RunSpan `json:"span,omitempty"`
}

// RunSpan is the worker-side run segment a telemetry reply carries: the
// wall time one attempt of a cell spent executing on the worker, and
// whether it ended in a (deterministic) cell error. Harness-domain
// measurement only — never an input to anything the simulation computes.
type RunSpan struct {
	Seconds float64 `json:"seconds"`
	Failed  bool    `json:"failed,omitempty"`
}
