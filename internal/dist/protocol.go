// Package dist fans experiment cells out to worker processes. The
// coordinator side (Executor) plugs into the experiment runner as its
// CellExecutor: the runner keeps its scheduling discipline — bounded
// in-flight set, first-error cancellation, deterministic result
// reassembly by submission index — and dist only changes where each
// cell's work happens. The worker side (Serve) is the same binary run
// with a -worker flag: it reads serialized cell specs from stdin,
// executes them through the same registered run functions the in-process
// path uses, and writes results to stdout.
//
// The protocol is line-delimited JSON over any byte stream (locally, an
// exec'd worker's stdin/stdout pipes). One request or reply per line;
// requests flow coordinator→worker, replies worker→coordinator. A worker
// handles one cell at a time — parallelism comes from the runner driving
// one worker process per scheduling slot.
//
// Determinism: a spec is pure coordinates, the registered run functions
// are deterministic in those coordinates, and results are scalar structs
// that survive a JSON round-trip exactly (encoding/json renders float64
// shortest-round-trip), so a cell computes identical bytes no matter
// which process runs it — the dist Fig. 6 byte-identity test pins this.
//
// Fault tolerance: a worker crash, malformed reply, or reply timeout
// requeues the cell on a fresh worker (bounded retries, per-cell attempt
// logging). Cells checkpoint into a shared -checkpoint-dir, so a retried
// cell resumes from its last completed epoch instead of restarting —
// checkpoints, not protocol replies, are the durable record.
package dist

import "encoding/json"

// ProtoVersion is the wire protocol version. The worker's hello carries
// it; the coordinator refuses a mismatched worker rather than guessing.
const ProtoVersion = 1

// Request is one coordinator→worker line.
type Request struct {
	// Type is "run" (execute Spec, reply with a result) or "shutdown"
	// (finish nothing — the worker exits; draining happens naturally
	// because a worker only reads the next request after replying).
	Type string `json:"type"`
	// ID correlates the run's replies; the worker echoes it on every log
	// and result line. Monotonic per coordinator, never reused.
	ID int64 `json:"id,omitempty"`
	// Spec is the serialized experiments.CellSpec for a run request.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Reply is one worker→coordinator line.
type Reply struct {
	// Type is "hello" (first line after startup), "log" (one progress
	// line from the in-flight cell), or "result" (the cell finished).
	Type string `json:"type"`
	// Proto and PID describe the worker on hello.
	Proto int `json:"proto,omitempty"`
	PID   int `json:"pid,omitempty"`
	// ID echoes the request being answered (log and result).
	ID int64 `json:"id,omitempty"`
	// Line is one progress line (log).
	Line string `json:"line,omitempty"`
	// Kind and Value carry a successful result: Kind names the cell kind
	// (so the coordinator decodes Value into the right type) and Value is
	// the run function's return, JSON-encoded.
	Kind  string          `json:"kind,omitempty"`
	Value json.RawMessage `json:"value,omitempty"`
	// Error carries a failed result: the cell ran to a deterministic
	// error. Protocol failures have no reply at all — they surface as a
	// dead or silent worker.
	Error string `json:"error,omitempty"`
}
