package dist

import (
	"net"
	"sync/atomic"
	"time"

	"remapd/internal/det"
)

// This file is the fleet's per-worker accounting: live counters each
// connection carries (bytes, cells, heartbeat round-trip, last-seen) and
// the Stats snapshot the /status endpoint serves. All of it is
// harness-domain measurement — the scheduler never reads any of these
// numbers, so keeping them cannot change which worker runs which cell.

// countingConn wraps a worker connection to meter the bytes crossing it
// in both directions. The counters are read lock-free by Stats while the
// read and write paths are live.
type countingConn struct {
	net.Conn
	in  atomic.Int64
	out atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// WorkerStats is one connected worker's row in the fleet status table.
type WorkerStats struct {
	Worker          string  `json:"worker"`
	Addr            string  `json:"addr,omitempty"`
	Proto           int     `json:"proto"`
	Slots           int     `json:"slots"`
	Inflight        int     `json:"inflight"`
	Draining        bool    `json:"draining,omitempty"`
	Done            int64   `json:"done"`
	Failed          int64   `json:"failed"`
	Requeued        int64   `json:"requeued"`
	BytesIn         int64   `json:"bytes_in"`
	BytesOut        int64   `json:"bytes_out"`
	RTTMillis       float64 `json:"rtt_millis,omitempty"`
	LastSeenSeconds float64 `json:"last_seen_seconds"`
}

// FleetStats is the fleet section of the status document: the worker
// table plus pool-wide totals (which include workers that have since
// left).
type FleetStats struct {
	Workers  []WorkerStats `json:"workers"`
	Slots    int           `json:"slots"`
	Inflight int           `json:"inflight"`
	Done     int64         `json:"done"`
	Failed   int64         `json:"failed"`
	Requeued int64         `json:"requeued"`
	Stalls   int64         `json:"stalls"`
}

// markSeen stamps the worker's last-received-frame clock.
func (w *fleetWorker) markSeen() {
	//lint:allow no-wall-clock harness-domain liveness bookkeeping measures the machine, never the simulation
	w.lastSeenNano.Store(time.Now().UnixNano())
}

// Stats snapshots the fleet: one row per connected worker (sorted by
// name via the deterministic worker iteration order) plus run totals.
func (f *Fleet) Stats() FleetStats {
	//lint:allow no-wall-clock harness-domain status snapshot measures the machine, never the simulation
	now := time.Now().UnixNano()
	st := FleetStats{
		Workers:  []WorkerStats{},
		Done:     f.done.Load(),
		Failed:   f.failed.Load(),
		Requeued: f.requeued.Load(),
		Stalls:   f.stalls.Load(),
	}
	f.mu.Lock()
	workers := make([]*fleetWorker, 0, len(f.workers))
	rows := make([]WorkerStats, 0, len(f.workers))
	for _, name := range det.SortedKeys(f.workers) {
		w := f.workers[name]
		workers = append(workers, w)
		rows = append(rows, WorkerStats{
			Worker:   w.name,
			Addr:     w.addr,
			Proto:    w.proto,
			Slots:    w.slots,
			Inflight: w.inflight,
			Draining: w.draining,
		})
		st.Slots += w.slots
		st.Inflight += w.inflight
	}
	f.mu.Unlock()
	// Atomic counters are read outside f.mu: they belong to the
	// connection, not the scheduler, and a torn row is impossible.
	for i, w := range workers {
		rows[i].Done = w.done.Load()
		rows[i].Failed = w.failed.Load()
		rows[i].Requeued = w.requeued.Load()
		rows[i].BytesIn = w.counts.in.Load()
		rows[i].BytesOut = w.counts.out.Load()
		if rtt := w.rttNano.Load(); rtt > 0 {
			rows[i].RTTMillis = float64(rtt) / 1e6
		}
		if seen := w.lastSeenNano.Load(); seen > 0 {
			rows[i].LastSeenSeconds = float64(now-seen) / 1e9
		}
	}
	st.Workers = rows
	return st
}

// StatusSection adapts Stats to the obs status registry's snapshot
// signature.
func (f *Fleet) StatusSection() interface{} { return f.Stats() }
