package dist_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"remapd/internal/checkpoint"
	"remapd/internal/dist"
	"remapd/internal/experiments"
)

// The fleet tests run workers in-process: DialAndServe on a goroutine
// against a loopback listener exercises the full TCP protocol — hello
// negotiation, slot accounting, heartbeats, requeue, drain — without
// exec'ing anything, which keeps the failure schedules deterministic
// and the transcripts capturable.

// logCapture collects coordinator/worker/progress lines for asserting
// on the run's transcript.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (c *logCapture) logf(format string, args ...interface{}) {
	c.mu.Lock()
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

func (c *logCapture) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return strings.Join(c.lines, "\n")
}

func (c *logCapture) contains(sub string) bool {
	return strings.Contains(c.String(), sub)
}

// newTestFleet listens on loopback and wraps the listener in a Fleet.
func newTestFleet(t *testing.T, opts dist.FleetOptions) *dist.Fleet {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFleet(ln, opts)
	t.Cleanup(f.Close)
	return f
}

// startWorker runs DialAndServe on a goroutine and returns its exit
// channel. Redial pacing is shortened so severed-connection tests spend
// milliseconds, not the production half-second, between attempts.
func startWorker(ctx context.Context, addr string, opts dist.DialOptions) chan error {
	if opts.RedialBase == 0 {
		opts.RedialBase = 20 * time.Millisecond
	}
	done := make(chan error, 1)
	go func() { done <- dist.DialAndServe(ctx, addr, opts) }()
	return done
}

func waitWorker(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("worker exited with error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("worker did not exit")
	}
}

// TestFleetByteIdenticalToInProcess is the fleet's acceptance criterion:
// the Fig. 6 grid scheduled across two dialed-in TCP workers must render
// the exact table the in-process runner renders.
func TestFleetByteIdenticalToInProcess(t *testing.T) {
	reg := experiments.DefaultRegime()
	local := microScale()
	baseline, err := experiments.Fig6(context.Background(), local, reg, microPolicies)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet goroutines outlive the test body by a beat (drop logs after
	// Close), so they must never write through t.Logf.
	var capture logCapture
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := fleet.Addr().String()
	w1 := startWorker(ctx, addr, dist.DialOptions{Logf: capture.logf})
	w2 := startWorker(ctx, addr, dist.DialOptions{Logf: capture.logf})

	remote := microScale()
	remote.Exec = fleet
	rows, err := experiments.Fig6(context.Background(), remote, reg, microPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := experiments.FormatFig6(rows), experiments.FormatFig6(baseline); got != want {
		t.Fatalf("fleet Fig. 6 differs from in-process:\n--- in-process\n%s\n--- fleet\n%s\n%s", want, got, capture.String())
	}

	fleet.Close() // sends shutdown; both workers exit cleanly
	waitWorker(t, w1)
	waitWorker(t, w2)
}

// TestFleetChaosSeverRequeuesAndResumes: a connection severed mid-cell
// by the chaos injector must cost one requeue, with the retried cell
// resuming from the shared checkpoint on the worker's redialed
// connection — and the output must still be byte-identical to a
// fault-free in-process run.
func TestFleetChaosSeverRequeuesAndResumes(t *testing.T) {
	reg := experiments.DefaultRegime()
	scale := func() experiments.Scale {
		s := microScale()
		s.Seeds = []uint64{1}
		s.Epochs = 4 // several log frames per cell, so the cut lands mid-cell
		s.Workers = 1
		return s
	}
	policies := []string{"remap-d"}

	baseline, err := experiments.Fig6(context.Background(), scale(), reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	var capture logCapture
	store, err := checkpoint.NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	chaos := dist.NewChaos(dist.ChaosConfig{Seed: 7, SeverAfter: 3}, capture.logf)
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := startWorker(ctx, fleet.Addr().String(), dist.DialOptions{
		Worker: dist.WorkerOptions{Checkpoints: store},
		Chaos:  chaos,
		Logf:   capture.logf,
	})

	remote := scale()
	remote.Exec = fleet
	remote.Progress = capture.logf
	rows, err := experiments.Fig6(context.Background(), remote, reg, policies)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := experiments.FormatFig6(rows), experiments.FormatFig6(baseline); got != want {
		t.Fatalf("post-sever Fig. 6 differs from in-process:\n--- in-process\n%s\n--- fleet\n%s", want, got)
	}
	for _, must := range []string{"chaos: severing connection", "requeueing", "attempt 2", "resumed from checkpoint"} {
		if !capture.contains(must) {
			t.Fatalf("transcript missing %q:\n%s", must, capture.String())
		}
	}

	fleet.Close()
	waitWorker(t, w)
}

// TestFleetStallsUntilWorkerJoins: with zero workers connected the grid
// must block (logging the stall), then complete normally once a worker
// dials in mid-run.
func TestFleetStallsUntilWorkerJoins(t *testing.T) {
	var capture logCapture
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type out struct {
		res experiments.CellResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := fleet.Execute(context.Background(), 0, specCell("ideal"), nil)
		done <- out{res, err}
	}()

	// Let the Execute hit the empty pool before anyone joins.
	time.Sleep(100 * time.Millisecond)
	w := startWorker(ctx, fleet.Addr().String(), dist.DialOptions{Logf: capture.logf})

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Worker == "" {
			t.Fatal("result does not record the late-joining worker")
		}
	case <-time.After(120 * time.Second):
		t.Fatal("cell never completed after the worker joined")
	}
	if !capture.contains("no workers connected; grid is stalled") {
		t.Fatalf("stall was not logged:\n%s", capture.String())
	}

	fleet.Close()
	waitWorker(t, w)
}

// TestFleetGracefulDrain: SIGINT-equivalent (context cancellation) on one
// worker mid-grid must drain it — goodbye sent, in-flight cell finished,
// nothing new assigned — while the rest of the grid completes on the
// surviving worker, byte-identically.
func TestFleetGracefulDrain(t *testing.T) {
	reg := experiments.DefaultRegime()
	baseline, err := experiments.Fig6(context.Background(), microScale(), reg, microPolicies)
	if err != nil {
		t.Fatal(err)
	}

	var capture logCapture
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf})
	addr := fleet.Addr().String()
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	w1 := startWorker(ctx1, addr, dist.DialOptions{Logf: capture.logf})
	w2 := startWorker(ctx2, addr, dist.DialOptions{Logf: capture.logf})

	// Drain worker 1 shortly into the grid; 6 cells remain to be run, so
	// the survivor picks up the slack.
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel1()
	}()

	remote := microScale()
	remote.Exec = fleet
	rows, err := experiments.Fig6(context.Background(), remote, reg, microPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := experiments.FormatFig6(rows), experiments.FormatFig6(baseline); got != want {
		t.Fatalf("post-drain Fig. 6 differs from in-process:\n--- in-process\n%s\n--- fleet\n%s", want, got)
	}
	waitWorker(t, w1) // drained worker must have exited cleanly on its own
	if !capture.contains("is draining") {
		t.Fatalf("fleet never observed the goodbye:\n%s", capture.String())
	}

	fleet.Close()
	waitWorker(t, w2)
}

// TestFleetChaosGarbledReplyRequeues: a garbled frame is a protocol
// failure — the coordinator must drop that worker and requeue the cell,
// and the worker's redialed connection must finish it.
func TestFleetChaosGarbledReplyRequeues(t *testing.T) {
	var capture logCapture
	// One-shot garble of the 2nd frame (the first cell's first log
	// line); everything after passes clean, so attempt 2 on the redialed
	// connection wins regardless of how many frames an attempt writes.
	chaos := dist.NewChaos(dist.ChaosConfig{Seed: 11, GarbleAfter: 2}, capture.logf)
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := startWorker(ctx, fleet.Addr().String(), dist.DialOptions{Chaos: chaos, Logf: capture.logf})

	res, err := fleet.Execute(context.Background(), 0, specCell("ideal"), nil)
	if err != nil {
		t.Fatalf("grid did not survive the garbled frame: %v\n%s", err, capture.String())
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (the garbled frame must cost a requeue)", res.Attempts)
	}
	for _, must := range []string{"chaos: garbled frame", "garbled reply", "requeueing"} {
		if !capture.contains(must) {
			t.Fatalf("transcript missing %q:\n%s", must, capture.String())
		}
	}

	fleet.Close()
	waitWorker(t, w)
}

// TestFleetCellWithoutSpecFails mirrors the Executor refusal: closures
// cannot travel over TCP either.
func TestFleetCellWithoutSpecFails(t *testing.T) {
	fleet := newTestFleet(t, dist.FleetOptions{})
	cell := experiments.Cell{Key: experiments.CellKey{Model: "closure-only", Seed: 1}}
	_, err := fleet.Execute(context.Background(), 0, cell, nil)
	if err == nil || !strings.Contains(err.Error(), "no serializable spec") {
		t.Fatalf("err = %v, want a no-spec refusal", err)
	}
}

// TestFleetDeterministicCellErrorNotRetried: a cell that fails as a
// property of its own spec must not burn fleet retries.
func TestFleetDeterministicCellErrorNotRetried(t *testing.T) {
	var capture logCapture
	fleet := newTestFleet(t, dist.FleetOptions{Logf: capture.logf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := startWorker(ctx, fleet.Addr().String(), dist.DialOptions{Logf: capture.logf})

	res, err := fleet.Execute(context.Background(), 0, specCell("no-such-policy"), nil)
	if err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("err = %v, want the worker's deterministic error", err)
	}
	if res.Attempts != 1 {
		t.Fatalf("deterministic failure took %d attempts, want 1", res.Attempts)
	}

	fleet.Close()
	waitWorker(t, w)
}
