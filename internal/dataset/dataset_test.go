package dataset

import (
	"testing"

	"remapd/internal/nn"
	"remapd/internal/tensor"
)

func TestCIFAR10LikeShapeAndLabels(t *testing.T) {
	d := CIFAR10Like(100, 40, 16, 1)
	if d.Classes != 10 || d.C != 3 || d.H != 16 || d.W != 16 {
		t.Fatalf("bad geometry: %+v", d)
	}
	if d.TrainLen() != 100 || d.TestLen() != 40 {
		t.Fatalf("sizes %d/%d", d.TrainLen(), d.TestLen())
	}
	counts := make([]int, 10)
	for _, y := range d.TrainY {
		if y < 0 || y >= 10 {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for cl, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want balanced 10", cl, n)
		}
	}
}

func TestCIFAR100LikeHasAllClasses(t *testing.T) {
	d := CIFAR100Like(200, 100, 16, 2)
	seen := map[int]bool{}
	for _, y := range d.TrainY {
		seen[y] = true
	}
	if len(seen) != 100 {
		t.Fatalf("train set covers %d classes, want 100", len(seen))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := CIFAR10Like(20, 10, 16, 7)
	b := CIFAR10Like(20, 10, 16, 7)
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != b.TrainX.Data[i] {
			t.Fatal("same seed must give identical data")
		}
	}
	c := CIFAR10Like(20, 10, 16, 8)
	same := true
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != c.TrainX.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Mean intra-class distance must be well below inter-class distance,
	// otherwise the task is unlearnable.
	d := CIFAR10Like(200, 10, 16, 3)
	imgLen := d.C * d.H * d.W
	dist := func(i, j int) float64 {
		var s float64
		for k := 0; k < imgLen; k++ {
			diff := float64(d.TrainX.Data[i*imgLen+k] - d.TrainX.Data[j*imgLen+k])
			s += diff * diff
		}
		return s
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if d.TrainY[i] == d.TrainY[j] {
				intra += dist(i, j)
				nIntra++
			} else {
				inter += dist(i, j)
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	// The generator is deliberately noisy (so fault effects are visible
	// against a non-saturated task); 1.2× still leaves a learnable margin,
	// as the training integration tests confirm.
	if inter < 1.2*intra {
		t.Fatalf("classes not separable: intra %v vs inter %v", intra, inter)
	}
}

func TestTrainBatchesShuffleAndShape(t *testing.T) {
	d := CIFAR10Like(64, 16, 16, 4)
	rng := tensor.NewRNG(1)
	batches := d.TrainBatches(16, rng)
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4", len(batches))
	}
	for _, b := range batches {
		if b.X.Dim(0) != 16 || b.X.Dim(1) != 3 || len(b.Y) != 16 {
			t.Fatalf("batch shape %v / %d labels", b.X.Shape, len(b.Y))
		}
	}
	// Two different RNGs give different orders.
	b1 := d.TrainBatches(16, tensor.NewRNG(1))
	b2 := d.TrainBatches(16, tensor.NewRNG(2))
	diff := false
	for i := range b1[0].Y {
		if b1[0].Y[i] != b2[0].Y[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("shuffling appears inert")
	}
}

func TestTestBatchesDeterministicOrder(t *testing.T) {
	d := CIFAR10Like(32, 32, 16, 5)
	a := d.TestBatches(8)
	b := d.TestBatches(8)
	for i := range a {
		for j := range a[i].Y {
			if a[i].Y[j] != b[i].Y[j] {
				t.Fatal("test batches must be deterministic")
			}
		}
	}
}

func TestSVHNLikeGeometryAndInk(t *testing.T) {
	d := SVHNLike(50, 20, 32, 6)
	if d.Classes != 10 || d.H != 32 {
		t.Fatalf("bad geometry %+v", d)
	}
	// The centre digit uses high-contrast ink: every image must contain
	// pixels with |v| > 1 (backgrounds are sub-unit smooth fields).
	imgLen := d.C * d.H * d.W
	for i := 0; i < d.TrainLen(); i++ {
		found := false
		for _, v := range d.TrainX.Data[i*imgLen : (i+1)*imgLen] {
			if v > 1.0 || v < -1.0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("image %d has no glyph ink", i)
		}
	}
}

func TestDatasetString(t *testing.T) {
	d := CIFAR10Like(10, 10, 16, 1)
	if d.String() == "" {
		t.Fatal("empty description")
	}
}

// Integration: a small CNN must learn CIFAR10Like far above chance.
func TestCIFAR10LikeIsLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	d := CIFAR10Like(600, 200, 16, 11)
	rng := tensor.NewRNG(1)
	g1 := tensor.ConvGeom{InC: 3, InH: 16, InW: 16, OutC: 8, K: 3, Stride: 1, Pad: 1}
	net := nn.NewNetwork(
		nn.NewConv2D("c1", g1, rng),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", 8*8*8, 10, rng),
	)
	opt := nn.NewSGD(net, 0.03, 0.9, 1e-4)
	for epoch := 0; epoch < 6; epoch++ {
		for _, b := range d.TrainBatches(32, rng) {
			logits := net.Forward(b.X, true)
			_, grad := nn.SoftmaxCrossEntropy(logits, b.Y)
			net.Backward(grad)
			opt.Step()
		}
	}
	correct, total := 0, 0
	for _, b := range d.TestBatches(50) {
		logits := net.Forward(b.X, false)
		for i := range b.Y {
			if logits.ArgMaxRow(i) == b.Y[i] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.6 {
		t.Fatalf("CIFAR10Like accuracy %.3f, want ≥0.6 (chance = 0.1)", acc)
	}
}

// Integration: SVHNLike must also be learnable.
func TestSVHNLikeIsLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	d := SVHNLike(600, 200, 16, 12)
	rng := tensor.NewRNG(2)
	g1 := tensor.ConvGeom{InC: 3, InH: 16, InW: 16, OutC: 12, K: 3, Stride: 1, Pad: 1}
	net := nn.NewNetwork(
		nn.NewConv2D("c1", g1, rng),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", 12*8*8, 10, rng),
	)
	opt := nn.NewSGD(net, 0.03, 0.9, 1e-4)
	for epoch := 0; epoch < 8; epoch++ {
		for _, b := range d.TrainBatches(32, rng) {
			logits := net.Forward(b.X, true)
			_, grad := nn.SoftmaxCrossEntropy(logits, b.Y)
			net.Backward(grad)
			opt.Step()
		}
	}
	correct, total := 0, 0
	for _, b := range d.TestBatches(50) {
		logits := net.Forward(b.X, false)
		for i := range b.Y {
			if logits.ArgMaxRow(i) == b.Y[i] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.5 {
		t.Fatalf("SVHNLike accuracy %.3f, want ≥0.5 (chance = 0.1)", acc)
	}
}
