// Package dataset provides deterministic synthetic image-classification
// datasets standing in for CIFAR-10, CIFAR-100, and SVHN (the module is
// offline; see DESIGN.md for the substitution rationale). Each generator
// produces learnable multi-class image tasks whose accuracy degrades when
// training gradients are corrupted — the property the paper's experiments
// actually exercise.
//
//   - CIFAR10Like / CIFAR100Like: each class is a smooth random template
//     field; samples are amplitude-jittered, spatially shifted, noisy draws
//     of their class template (10 or 100 classes).
//   - SVHNLike: procedurally rasterised digit glyphs on cluttered
//     backgrounds with distractor digits, mimicking SVHN's
//     "digit in a natural scene" character (10 classes).
package dataset

import (
	"fmt"

	"remapd/internal/tensor"
)

// Dataset is an in-memory image-classification dataset in NCHW layout.
type Dataset struct {
	Name    string
	Classes int
	C, H, W int
	TrainX  *tensor.Tensor
	TrainY  []int
	TestX   *tensor.Tensor
	TestY   []int
}

// TrainLen returns the number of training samples.
func (d *Dataset) TrainLen() int { return len(d.TrainY) }

// TestLen returns the number of test samples.
func (d *Dataset) TestLen() int { return len(d.TestY) }

// Batch is one mini-batch.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// TrainBatches returns the training set split into shuffled mini-batches
// (the last partial batch is dropped, as is conventional).
func (d *Dataset) TrainBatches(batchSize int, rng *tensor.RNG) []Batch {
	return makeBatches(d.TrainX, d.TrainY, d.C, d.H, d.W, batchSize, rng)
}

// TestBatches returns the test set in deterministic order.
func (d *Dataset) TestBatches(batchSize int) []Batch {
	return makeBatches(d.TestX, d.TestY, d.C, d.H, d.W, batchSize, nil)
}

func makeBatches(x *tensor.Tensor, y []int, c, h, w, batchSize int, rng *tensor.RNG) []Batch {
	n := len(y)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		order = rng.Perm(n)
	}
	imgLen := c * h * w
	var out []Batch
	for off := 0; off+batchSize <= n; off += batchSize {
		bx := tensor.New(batchSize, c, h, w)
		by := make([]int, batchSize)
		for i := 0; i < batchSize; i++ {
			src := order[off+i]
			copy(bx.Data[i*imgLen:(i+1)*imgLen], x.Data[src*imgLen:(src+1)*imgLen])
			by[i] = y[src]
		}
		out = append(out, Batch{X: bx, Y: by})
	}
	return out
}

// upsampleBilinear expands a coarse g×g field to h×w.
func upsampleBilinear(coarse []float64, g, h, w int, dst []float32) {
	for y := 0; y < h; y++ {
		fy := float64(y) / float64(h-1) * float64(g-1)
		y0 := int(fy)
		y1 := y0 + 1
		if y1 >= g {
			y1 = g - 1
		}
		ty := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := float64(x) / float64(w-1) * float64(g-1)
			x0 := int(fx)
			x1 := x0 + 1
			if x1 >= g {
				x1 = g - 1
			}
			tx := fx - float64(x0)
			v := (1-ty)*((1-tx)*coarse[y0*g+x0]+tx*coarse[y0*g+x1]) +
				ty*((1-tx)*coarse[y1*g+x0]+tx*coarse[y1*g+x1])
			dst[y*w+x] = float32(v)
		}
	}
}

// templateConfig controls the template-field generators.
type templateConfig struct {
	name       string
	classes    int
	c, h, w    int
	coarseGrid int
	noise      float64
	maxShift   int
	ampJitter  float64
}

// generateTemplates builds one smooth random field per (class, channel).
func generateTemplates(cfg templateConfig, rng *tensor.RNG) [][]float32 {
	tmpl := make([][]float32, cfg.classes)
	g := cfg.coarseGrid
	for cl := 0; cl < cfg.classes; cl++ {
		field := make([]float32, cfg.c*cfg.h*cfg.w)
		for ch := 0; ch < cfg.c; ch++ {
			coarse := make([]float64, g*g)
			for i := range coarse {
				coarse[i] = rng.NormFloat64()
			}
			upsampleBilinear(coarse, g, cfg.h, cfg.w, field[ch*cfg.h*cfg.w:(ch+1)*cfg.h*cfg.w])
		}
		tmpl[cl] = field
	}
	return tmpl
}

// renderTemplateSample draws one sample of class cl into dst.
func renderTemplateSample(cfg templateConfig, tmpl [][]float32, cl int, rng *tensor.RNG, dst []float32) {
	dx := rng.Intn(2*cfg.maxShift+1) - cfg.maxShift
	dy := rng.Intn(2*cfg.maxShift+1) - cfg.maxShift
	amp := float32(1 + cfg.ampJitter*(2*rng.Float64()-1))
	src := tmpl[cl]
	for ch := 0; ch < cfg.c; ch++ {
		for y := 0; y < cfg.h; y++ {
			sy := clampInt(y+dy, 0, cfg.h-1)
			for x := 0; x < cfg.w; x++ {
				sx := clampInt(x+dx, 0, cfg.w-1)
				v := amp*src[ch*cfg.h*cfg.w+sy*cfg.w+sx] + float32(cfg.noise*rng.NormFloat64())
				dst[ch*cfg.h*cfg.w+y*cfg.w+x] = v
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// buildTemplateDataset generates a full train/test split.
func buildTemplateDataset(cfg templateConfig, nTrain, nTest int, seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	tmpl := generateTemplates(cfg, rng)
	d := &Dataset{
		Name: cfg.name, Classes: cfg.classes, C: cfg.c, H: cfg.h, W: cfg.w,
		TrainX: tensor.New(nTrain, cfg.c, cfg.h, cfg.w),
		TrainY: make([]int, nTrain),
		TestX:  tensor.New(nTest, cfg.c, cfg.h, cfg.w),
		TestY:  make([]int, nTest),
	}
	imgLen := cfg.c * cfg.h * cfg.w
	for i := 0; i < nTrain; i++ {
		cl := i % cfg.classes
		d.TrainY[i] = cl
		renderTemplateSample(cfg, tmpl, cl, rng, d.TrainX.Data[i*imgLen:(i+1)*imgLen])
	}
	for i := 0; i < nTest; i++ {
		cl := i % cfg.classes
		d.TestY[i] = cl
		renderTemplateSample(cfg, tmpl, cl, rng, d.TestX.Data[i*imgLen:(i+1)*imgLen])
	}
	return d
}

// CIFAR10Like returns a 10-class, 3-channel size×size dataset.
func CIFAR10Like(nTrain, nTest, size int, seed uint64) *Dataset {
	return buildTemplateDataset(templateConfig{
		name: "cifar10-like", classes: 10, c: 3, h: size, w: size,
		coarseGrid: 4, noise: 0.9, maxShift: 3, ampJitter: 0.5,
	}, nTrain, nTest, seed)
}

// CIFAR100Like returns a 100-class, 3-channel size×size dataset (harder:
// more classes sharing the same template statistics).
func CIFAR100Like(nTrain, nTest, size int, seed uint64) *Dataset {
	return buildTemplateDataset(templateConfig{
		name: "cifar100-like", classes: 100, c: 3, h: size, w: size,
		coarseGrid: 5, noise: 0.8, maxShift: 2, ampJitter: 0.4,
	}, nTrain, nTest, seed)
}

// String describes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d classes, %d train / %d test, %dx%dx%d",
		d.Name, d.Classes, d.TrainLen(), d.TestLen(), d.C, d.H, d.W)
}
