package dataset

import "remapd/internal/tensor"

// digitFont is a 5×7 bitmap font for the digits 0–9 (row-major, one string
// per row, '#' = ink). SVHNLike rasterises these glyphs into natural-scene-
// style images.
var digitFont = [10][7]string{
	{" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}, // 0
	{"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}, // 1
	{" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"}, // 2
	{" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "}, // 3
	{"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}, // 4
	{"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}, // 5
	{" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "}, // 6
	{"#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   "}, // 7
	{" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}, // 8
	{" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "}, // 9
}

// drawDigit stamps digit d into a c×h×w image at (ox, oy) with the given
// integer scale and per-channel ink color.
func drawDigit(img []float32, c, h, w, d, ox, oy, scale int, ink [3]float32) {
	for gy := 0; gy < 7; gy++ {
		row := digitFont[d][gy]
		for gx := 0; gx < 5; gx++ {
			if row[gx] != '#' {
				continue
			}
			for sy := 0; sy < scale; sy++ {
				for sx := 0; sx < scale; sx++ {
					y := oy + gy*scale + sy
					x := ox + gx*scale + sx
					if y < 0 || y >= h || x < 0 || x >= w {
						continue
					}
					for ch := 0; ch < c && ch < 3; ch++ {
						img[ch*h*w+y*w+x] = ink[ch]
					}
				}
			}
		}
	}
}

// SVHNLike returns a 10-class street-view-house-number-style dataset:
// the label is the digit rendered near the image centre; images carry a
// smooth colored background, pixel noise, and up to two clipped distractor
// digits near the borders (the hallmark difficulty of SVHN).
func SVHNLike(nTrain, nTest, size int, seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	const c = 3
	d := &Dataset{
		Name: "svhn-like", Classes: 10, C: c, H: size, W: size,
		TrainX: tensor.New(nTrain, c, size, size),
		TrainY: make([]int, nTrain),
		TestX:  tensor.New(nTest, c, size, size),
		TestY:  make([]int, nTest),
	}
	imgLen := c * size * size

	render := func(dst []float32, label int) {
		// Smooth background: one random coarse field per channel.
		for ch := 0; ch < c; ch++ {
			coarse := make([]float64, 9)
			for i := range coarse {
				coarse[i] = 0.5 * rng.NormFloat64()
			}
			upsampleBilinear(coarse, 3, size, size, dst[ch*size*size:(ch+1)*size*size])
		}
		// Distractor digits clipped at the borders.
		nDistract := rng.Intn(3)
		for k := 0; k < nDistract; k++ {
			dd := rng.Intn(10)
			scale := 1 + rng.Intn(2)
			// Position partly outside the frame.
			side := rng.Intn(4)
			var ox, oy int
			switch side {
			case 0:
				ox, oy = -3*scale+rng.Intn(3), rng.Intn(size)
			case 1:
				ox, oy = size-2*scale, rng.Intn(size)
			case 2:
				ox, oy = rng.Intn(size), -4*scale+rng.Intn(3)
			default:
				ox, oy = rng.Intn(size), size-3*scale
			}
			ink := [3]float32{float32(rng.Range(-1, 1)), float32(rng.Range(-1, 1)), float32(rng.Range(-1, 1))}
			drawDigit(dst, c, size, size, dd, ox, oy, scale, ink)
		}
		// The labelled digit near the centre, always fully visible. The
		// glyph scale adapts to the frame so a 7·scale-tall digit fits.
		scale := size/16 + rng.Intn(2)
		if scale < 1 {
			scale = 1
		}
		for 7*scale > size {
			scale--
		}
		gw, gh := 5*scale, 7*scale
		maxOx, maxOy := size-gw, size-gh
		ox := maxOx/2 + rng.Intn(5) - 2
		oy := maxOy/2 + rng.Intn(5) - 2
		ox = clampInt(ox, 0, maxOx)
		oy = clampInt(oy, 0, maxOy)
		// High-contrast ink so the digit is recoverable from clutter.
		sign := float32(1)
		if rng.Float64() < 0.5 {
			sign = -1
		}
		ink := [3]float32{
			sign * float32(rng.Range(1.2, 1.8)),
			sign * float32(rng.Range(1.2, 1.8)),
			sign * float32(rng.Range(1.2, 1.8)),
		}
		drawDigit(dst, c, size, size, label, ox, oy, scale, ink)
		// Sensor noise.
		for i := range dst {
			dst[i] += float32(0.15 * rng.NormFloat64())
		}
	}

	for i := 0; i < nTrain; i++ {
		label := i % 10
		d.TrainY[i] = label
		render(d.TrainX.Data[i*imgLen:(i+1)*imgLen], label)
	}
	for i := 0; i < nTest; i++ {
		label := i % 10
		d.TestY[i] = label
		render(d.TestX.Data[i*imgLen:(i+1)*imgLen], label)
	}
	return d
}
