package arch

import (
	"math"
	"testing"

	"remapd/internal/nn"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

func smallChip(size int, g Geometry) *Chip {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = size
	return NewChip(p, g)
}

func TestGeometryCounts(t *testing.T) {
	g := DefaultGeometry()
	if g.Crossbars() != 8*8*4*8 {
		t.Fatalf("Crossbars = %d", g.Crossbars())
	}
	if g.Tiles() != 64 {
		t.Fatalf("Tiles = %d", g.Tiles())
	}
}

func TestTileTopology(t *testing.T) {
	c := smallChip(16, Geometry{TilesX: 4, TilesY: 4, IMAsPerTile: 2, XbarsPerIMA: 2})
	// 4 crossbars per tile.
	if c.TileOf(0) != 0 || c.TileOf(3) != 0 || c.TileOf(4) != 1 {
		t.Fatal("TileOf wrong")
	}
	if c.IMAOf(0) != 0 || c.IMAOf(2) != 1 {
		t.Fatal("IMAOf wrong")
	}
	x, y := c.TileCoord(5)
	if x != 1 || y != 1 {
		t.Fatalf("TileCoord(5) = (%d,%d)", x, y)
	}
	// Crossbar 0 is in tile 0 (0,0); crossbar 4*15 is in tile 15 (3,3).
	if got := c.HopCount(0, 60); got != 6 {
		t.Fatalf("HopCount = %d, want 6", got)
	}
	if c.HopCount(0, 1) != 0 {
		t.Fatal("same-tile hop count must be 0")
	}
}

func buildNet(rng *tensor.RNG) *nn.Network {
	// fc1: 20→12 (W 12×20), fc2: 12→4 (W 4×12).
	return nn.NewNetwork(
		nn.NewLinear("fc1", 20, 12, rng),
		nn.NewReLU("r"),
		nn.NewLinear("fc2", 12, 4, rng),
	)
}

func TestMapNetworkTaskInventory(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := buildNet(rng)
	c := smallChip(16, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	// fc1 W is 12×20 on 16-sized arrays: forward 1×2=2 blocks, backward
	// (20×12) 2×1=2 blocks. fc2 W is 4×12: 1 fwd + 1 bwd. Total 6 tasks.
	if len(c.Tasks) != 6 {
		t.Fatalf("task count %d, want 6", len(c.Tasks))
	}
	fwd, bwd := 0, 0
	for _, task := range c.Tasks {
		if task.Phase == Forward {
			fwd++
		} else {
			bwd++
		}
		if task.Rows*task.Cols > 16*16 {
			t.Fatalf("task %d exceeds crossbar capacity", task.ID)
		}
	}
	if fwd != 3 || bwd != 3 {
		t.Fatalf("fwd=%d bwd=%d, want 3/3", fwd, bwd)
	}
	if got := len(c.MappedXbars()); got != 6 {
		t.Fatalf("mapped crossbars %d, want 6", got)
	}
	// Initial programming charges one write per hosting crossbar.
	for _, xi := range c.MappedXbars() {
		if c.Xbars[xi].Writes() != 1 {
			t.Fatalf("crossbar %d writes=%d, want 1", xi, c.Xbars[xi].Writes())
		}
	}
}

func TestMapNetworkInsufficientCapacity(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := buildNet(rng)
	c := smallChip(16, Geometry{TilesX: 1, TilesY: 1, IMAsPerTile: 1, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestEffectiveWeightsCleanChipQuantisesOnly(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := buildNet(rng)
	c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	w := net.LayerWeight("fc1")
	eff := c.EffectiveForward("fc1", w)
	if !eff.SameShape(w) {
		t.Fatalf("effective shape %v", eff.Shape)
	}
	clip := float64(w.AbsMax()) * 2 // chip coding range = ClipFactor × max|W|
	step := 2 * clip / float64(c.Params.Levels-1)
	for i := range w.Data {
		if math.Abs(float64(eff.Data[i]-w.Data[i])) > step/2+1e-6 {
			t.Fatalf("clean-chip deviation beyond quantisation at %d: %v vs %v", i, eff.Data[i], w.Data[i])
		}
	}
}

func TestForwardFaultAffectsOnlyForwardCopy(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := buildNet(rng)
	c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	// Find the forward task of fc2 and stick cell (1, 2) of its crossbar.
	var fwdXbar, bwdXbar int = -1, -1
	for _, task := range c.Tasks {
		if task.Layer == "fc2" {
			if task.Phase == Forward {
				fwdXbar = c.XbarOf(task.ID)
			} else {
				bwdXbar = c.XbarOf(task.ID)
			}
		}
	}
	if fwdXbar < 0 || bwdXbar < 0 {
		t.Fatal("fc2 tasks not found")
	}
	c.Xbars[fwdXbar].InjectFaultPolar(1, 2, reram.SA1, true, rng)
	c.InvalidateAll()

	w := net.LayerWeight("fc2") // 4×12
	fwd := c.EffectiveForward("fc2", w)
	bwd := c.EffectiveBackward("fc2", w)
	clip := float64(w.AbsMax())

	// Forward copy: W[1][2] must be clamped high (SA1 in G⁺ → ≈ +2·clip).
	if float64(fwd.At(1, 2)) < 0.99*clip {
		t.Fatalf("forward W[1][2] = %v, want ≈ +clip %v", fwd.At(1, 2), clip)
	}
	// Backward copy must be unaffected at that element.
	if math.Abs(float64(bwd.At(1, 2)-w.At(1, 2))) > 0.1*clip {
		t.Fatalf("backward copy perturbed by forward fault: %v vs %v", bwd.At(1, 2), w.At(1, 2))
	}
}

func TestBackwardFaultTransposedIndexing(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := buildNet(rng)
	c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	var bwdXbar int = -1
	for _, task := range c.Tasks {
		if task.Layer == "fc2" && task.Phase == Backward {
			bwdXbar = c.XbarOf(task.ID)
		}
	}
	// Backward task tiles Wᵀ (12×4). Cell (r=3, c=1) of the block holds
	// Wᵀ[3][1] = W[1][3]. Under offset coding SA0 reads back near −clip.
	c.Xbars[bwdXbar].InjectFault(3, 1, reram.SA0, rng)
	c.InvalidateAll()
	w := net.LayerWeight("fc2")
	bwd := c.EffectiveBackward("fc2", w)
	clip := float64(w.AbsMax())
	if float64(bwd.At(1, 3)) > -0.99*clip {
		t.Fatalf("backward W[1][3] = %v, want ≈ −clip", bwd.At(1, 3))
	}
	fwd := c.EffectiveForward("fc2", w)
	if math.Abs(float64(fwd.At(1, 3)-w.At(1, 3))) > 0.1*clip {
		t.Fatal("forward copy perturbed by backward fault")
	}
}

func TestWeightsWrittenAccountsAndInvalidates(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := buildNet(rng)
	c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	w := net.LayerWeight("fc1")
	_ = c.EffectiveForward("fc1", w) // populate cache
	before := c.Xbars[c.XbarOf(0)].Writes()

	clip := float64(w.AbsMax()) * 2 // fixed coding range from mapping time
	w.Data[0] = 999                 // mutate then notify
	c.WeightsWritten("fc1")
	after := c.Xbars[c.XbarOf(0)].Writes()
	if after != before+1 {
		t.Fatalf("write not accounted: %d -> %d", before, after)
	}
	eff := c.EffectiveForward("fc1", w)
	// The cache must refresh, and the out-of-range weight must saturate at
	// the fixed conductance coding range rather than track 999.
	if float64(eff.Data[0]) < 0.9*clip {
		t.Fatalf("cache not refreshed after write: %v", eff.Data[0])
	}
	if float64(eff.Data[0]) > 1.3*clip {
		t.Fatalf("stored weight must saturate at the coding range: %v vs clip %v", eff.Data[0], clip)
	}
}

func TestSwapTasksExchangesMapping(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := buildNet(rng)
	c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	xa, xb := c.XbarOf(0), c.XbarOf(1)
	ta, tb := c.TaskOf(xa), c.TaskOf(xb)
	c.SwapTasks(xa, xb)
	if c.TaskOf(xa) != tb || c.TaskOf(xb) != ta {
		t.Fatal("tasks not exchanged")
	}
	if c.XbarOf(ta.ID) != xb || c.XbarOf(tb.ID) != xa {
		t.Fatal("reverse mapping not updated")
	}
}

func TestSwapMovesFaultExposure(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := buildNet(rng)
	c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	// Stick the whole crossbar hosting fc2's forward task, then swap that
	// task away to a clean crossbar: the forward copy must become clean.
	var fwdTask *Task
	for _, task := range c.Tasks {
		if task.Layer == "fc2" && task.Phase == Forward {
			fwdTask = task
		}
	}
	faulty := c.XbarOf(fwdTask.ID)
	for r := 0; r < 4; r++ {
		for col := 0; col < 12; col++ {
			c.Xbars[faulty].InjectFaultPolar(r, col, reram.SA1, true, rng)
		}
	}
	c.InvalidateAll()
	w := net.LayerWeight("fc2")
	eff := c.EffectiveForward("fc2", w)
	clip := float64(w.AbsMax())
	if float64(eff.At(0, 0)) < 0.99*clip {
		t.Fatal("precondition: forward copy should be clamped")
	}

	// Swap with another mapped crossbar that is clean (fc1's first task).
	clean := c.XbarOf(0)
	c.SwapTasks(faulty, clean)
	eff = c.EffectiveForward("fc2", w)
	if math.Abs(float64(eff.At(0, 0)-w.At(0, 0))) > 0.1*clip {
		t.Fatalf("after remap the forward copy must be clean: %v vs %v", eff.At(0, 0), w.At(0, 0))
	}
}

func TestSwapTasksRequiresMappedCrossbars(t *testing.T) {
	c := smallChip(32, Geometry{TilesX: 1, TilesY: 1, IMAsPerTile: 1, XbarsPerIMA: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.SwapTasks(0, 1)
}

func TestUnmappedLayerPassesThrough(t *testing.T) {
	c := smallChip(32, Geometry{TilesX: 1, TilesY: 1, IMAsPerTile: 1, XbarsPerIMA: 4})
	w := tensor.New(3, 3)
	if c.EffectiveForward("ghost", w) != w || c.EffectiveBackward("ghost", w) != w {
		t.Fatal("unmapped layers must pass through unchanged")
	}
	c.WeightsWritten("ghost") // must not panic
}

// Integration: training through a clean chip must reach near-ideal
// accuracy (quantisation alone is benign), and faults on the backward-copy
// crossbars must corrupt upstream gradients while leaving the ideal-fabric
// gradient definition intact.
func TestChipFabricEndToEndTraining(t *testing.T) {
	rng := tensor.NewRNG(9)
	build := func() *nn.Network {
		r := tensor.NewRNG(42)
		return nn.NewNetwork(
			nn.NewLinear("fc1", 2, 16, r),
			nn.NewReLU("r1"),
			nn.NewLinear("fc2", 16, 2, r),
		)
	}

	// Clean chip: near-ideal accuracy.
	netClean := build()
	chip := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 4})
	if err := chip.MapNetwork(netClean); err != nil {
		t.Fatal(err)
	}
	netClean.SetFabric(chip)
	dataRNG := tensor.NewRNG(7)
	sample := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 2)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			a, b := dataRNG.NormFloat64(), dataRNG.NormFloat64()
			x.Data[i*2], x.Data[i*2+1] = float32(a), float32(b)
			if a+b > 0 {
				labels[i] = 1
			}
		}
		return x, labels
	}
	opt := nn.NewSGD(netClean, 0.1, 0.9, 0)
	for it := 0; it < 150; it++ {
		x, l := sample(32)
		logits := netClean.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, l)
		netClean.Backward(grad)
		opt.Step()
	}
	x, l := sample(512)
	if acc := nn.Accuracy(netClean.Forward(x, false), l); acc < 0.93 {
		t.Fatalf("clean-chip accuracy %.3f, want ≥0.93", acc)
	}

	// Gradient corruption: compute fc1's gradient on one fixed batch with a
	// clean chip and with a chip whose fc2 backward crossbar is faulty.
	gradFC1 := func(faulty bool) *tensor.Tensor {
		net := build()
		c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 4})
		if err := c.MapNetwork(net); err != nil {
			t.Fatal(err)
		}
		if faulty {
			for _, task := range c.Tasks {
				if task.Layer == "fc2" && task.Phase == Backward {
					xb := c.Xbars[c.XbarOf(task.ID)]
					for k := 0; k < 12; k++ { // partial, non-uniform corruption
						xb.InjectFault(rng.Intn(16), rng.Intn(2), reram.SA1, rng)
					}
				}
			}
			c.InvalidateAll()
		}
		net.SetFabric(c)
		bRNG := tensor.NewRNG(77)
		xb := tensor.New(16, 2)
		bRNG.FillNormal(xb, 1)
		labels := make([]int, 16)
		for i := range labels {
			labels[i] = i % 2
		}
		logits := net.Forward(xb, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		for _, p := range net.Params() {
			if p.Name == "fc1.w" {
				return p.Grad.Clone()
			}
		}
		t.Fatal("fc1.w not found")
		return nil
	}
	gClean := gradFC1(false)
	gFaulty := gradFC1(true)
	gDiff := gClean.Clone()
	gDiff.Sub(gFaulty)
	rel := gDiff.L2Norm() / (gClean.L2Norm() + 1e-12)
	if rel < 0.2 {
		t.Fatalf("backward faults barely changed fc1 gradient (rel=%v); fault path broken", rel)
	}
}

// TestWeightsWrittenNilRecorderZeroAlloc pins the telemetry cost contract
// on the training hot path: with no Recorder attached, the per-step
// WeightsWritten notification must not allocate at all — the disabled
// telemetry path is a single nil check.
func TestWeightsWrittenNilRecorderZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := buildNet(rng)
	c := smallChip(32, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := c.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	c.WeightsWritten("fc1") // warm the dirty-map entry
	allocs := testing.AllocsPerRun(100, func() {
		c.WeightsWritten("fc1")
	})
	if allocs != 0 {
		t.Fatalf("WeightsWritten with nil Recorder allocates %.1f times per call, want 0", allocs)
	}
}
