package arch

import (
	"math"
	"testing"

	"remapd/internal/nn"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

func TestEstimateEpochMatchesPaperBallpark(t *testing.T) {
	// CIFAR-scale epoch on a 19-MVM-layer network ≈ 1.9 M ReRAM cycles
	// (the denominator behind the paper's 0.13% BIST claim).
	rng := tensor.NewRNG(1)
	var layers []nn.Layer
	for i := 0; i < 19; i++ {
		layers = append(layers, nn.NewLinear(layerName(i), 8, 8, rng))
	}
	net := nn.NewNetwork(layers...)
	p := reram.DefaultDeviceParams()
	chip := NewChip(p, DefaultGeometry())
	rep := chip.EstimateEpoch(net, 50000, 64, DefaultTimingModel())
	if rep.Stages != 38 {
		t.Fatalf("stages %d, want 38", rep.Stages)
	}
	if rep.ComputeCycles != 1.9e6 {
		t.Fatalf("compute cycles %v, want 1.9e6", rep.ComputeCycles)
	}
	if rep.TotalCycles <= rep.ComputeCycles {
		t.Fatal("total must include fill and writes")
	}
	// 1.9M ReRAM cycles at 100 ns ≈ 0.19 s.
	if math.Abs(rep.WallTimeSeconds-0.19) > 0.02 {
		t.Fatalf("wall time %v s, want ≈0.19", rep.WallTimeSeconds)
	}
}

func layerName(i int) string { return "l" + string(rune('a'+i)) }

func TestUtilizationCounts(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := nn.NewNetwork(
		nn.NewLinear("fc1", 20, 12, rng),
		nn.NewReLU("r"),
		nn.NewLinear("fc2", 12, 4, rng),
	)
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 16
	chip := NewChip(p, Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 2, XbarsPerIMA: 2})
	if err := chip.MapNetwork(net); err != nil {
		t.Fatal(err)
	}
	u := chip.Utilization()
	if u.Crossbars != 16 || u.MappedXbars != 6 {
		t.Fatalf("%+v", u)
	}
	// Used cells = 2×(12·20 + 4·12) (forward + transpose copies).
	want := 2 * (12*20 + 4*12)
	if u.UsedCells != want {
		t.Fatalf("used cells %d, want %d", u.UsedCells, want)
	}
	if u.ForwardTasks != 3 || u.BackwardTasks != 3 {
		t.Fatalf("task split %d/%d", u.ForwardTasks, u.BackwardTasks)
	}
	if u.XbarFraction <= 0 || u.XbarFraction > 1 || u.CellFraction <= 0 || u.CellFraction > 1 {
		t.Fatalf("fractions out of range: %+v", u)
	}
}
