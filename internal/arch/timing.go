package arch

import "remapd/internal/nn"

// PipeLayer-style timing model: training streams samples through a pipeline
// whose stages are the network's crossbar-mapped layers, forward then
// backward. All crossbars of one stage fire in parallel (a stage's blocks
// are spread over crossbars), so the stage latency is one array read plus
// its peripheral processing, one ReRAM cycle at the array clock. Weight
// updates overlap the pipeline except for the write itself.

// TimingModel captures the pipeline parameters.
type TimingModel struct {
	// StageCyclesMVM is the ReRAM cycles one pipeline stage (MVM + ADC +
	// shift-add) occupies.
	StageCyclesMVM int
	// WriteCyclesPerUpdate is the ReRAM cycles one weight-update write
	// burst costs per optimizer step (row-by-row reprogram of the dirty
	// rows; PipeLayer hides most of it, so this counts the exposed part).
	WriteCyclesPerUpdate int
}

// DefaultTimingModel returns the calibrated pipeline constants.
func DefaultTimingModel() TimingModel {
	return TimingModel{StageCyclesMVM: 1, WriteCyclesPerUpdate: 8}
}

// EpochReport is the cycle budget of one training epoch.
type TimingReport struct {
	Stages          int // pipeline depth: 2 × MVM layers (forward + backward)
	Samples         int
	OptimizerSteps  int
	PipelineFill    int     // cycles to fill the pipeline once
	ComputeCycles   float64 // steady-state MVM cycles
	WriteCycles     float64 // exposed weight-write cycles
	TotalCycles     float64
	WallTimeSeconds float64 // at the array clock
}

// EstimateEpoch computes the epoch cycle budget for a network trained with
// the given sample count and batch size on this chip.
func (c *Chip) EstimateEpoch(net *nn.Network, samples, batchSize int, tm TimingModel) TimingReport {
	layers := len(net.MVMLayers())
	r := TimingReport{
		Stages:         2 * layers,
		Samples:        samples,
		OptimizerSteps: samples / batchSize,
	}
	r.PipelineFill = r.Stages * tm.StageCyclesMVM
	r.ComputeCycles = float64(samples) * float64(r.Stages) * float64(tm.StageCyclesMVM)
	r.WriteCycles = float64(r.OptimizerSteps) * float64(tm.WriteCyclesPerUpdate)
	r.TotalCycles = float64(r.PipelineFill) + r.ComputeCycles + r.WriteCycles
	r.WallTimeSeconds = r.TotalCycles * c.Params.ReRAMCycleNS * 1e-9
	return r
}

// Utilization reports how much of the chip the mapped network occupies.
type Utilization struct {
	Crossbars     int
	MappedXbars   int
	XbarFraction  float64
	Cells         int
	UsedCells     int // cells covered by task blocks
	CellFraction  float64
	ForwardTasks  int
	BackwardTasks int
}

// Utilization computes the current occupancy figures.
func (c *Chip) Utilization() Utilization {
	u := Utilization{Crossbars: len(c.Xbars)}
	cellsPer := c.Params.CrossbarSize * c.Params.CrossbarSize
	u.Cells = u.Crossbars * cellsPer
	for _, t := range c.Tasks {
		u.UsedCells += t.Rows * t.Cols
		if t.Phase == Forward {
			u.ForwardTasks++
		} else {
			u.BackwardTasks++
		}
	}
	u.MappedXbars = len(c.MappedXbars())
	if u.Crossbars > 0 {
		u.XbarFraction = float64(u.MappedXbars) / float64(u.Crossbars)
	}
	if u.Cells > 0 {
		u.CellFraction = float64(u.UsedCells) / float64(u.Cells)
	}
	return u
}
