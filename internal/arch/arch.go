// Package arch models the target RCS (ReRAM crossbar-based computing
// system) architecture of the paper's Fig. 1: 128×128 crossbars grouped
// into IMAs (in-situ multiply-accumulate units, each with a BIST module and
// ADC/DAC/S&H/S&A peripherals), IMAs grouped into tiles (with eDRAM and
// pooling/activation units), and tiles arranged on a grid connected by a
// concentrated-mesh NoC.
//
// The package also defines the *task* abstraction of the paper: a task is
// the computation of one ≤128×128 block of a CNN layer's weight matrix in
// one training phase (forward or backward). Tasks are mapped onto physical
// crossbars; remapping policies permute that mapping. The Chip implements
// nn.Fabric, so a network bound to it executes its MVMs through the
// fault-clamped stored weights.
package arch

import (
	"fmt"

	"remapd/internal/det"
	"remapd/internal/nn"
	"remapd/internal/obs"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// Phase distinguishes the two training phases whose tasks have different
// inherent fault tolerance (Section III.B.2: backward ≪ forward).
type Phase int

// Task phases.
const (
	Forward Phase = iota
	Backward
)

// String names the phase.
func (p Phase) String() string {
	if p == Forward {
		return "forward"
	}
	return "backward"
}

// Task is the unit of remapping: one weight block of one layer in one
// phase. Forward tasks tile the layer's Out×In weight matrix; backward
// tasks tile its transpose (the physically separate Wᵀ copy used for error
// propagation).
type Task struct {
	ID     int
	Layer  string
	Phase  Phase
	RowOff int // block offset in the (possibly transposed) weight matrix
	ColOff int
	Rows   int // block extent; Rows·Cols ≤ crossbar cells
	Cols   int
}

// Geometry describes the chip's structural parameters.
type Geometry struct {
	TilesX, TilesY int // tile grid (c-mesh endpoints)
	IMAsPerTile    int
	XbarsPerIMA    int
}

// DefaultGeometry returns the evaluation configuration: an 8×8 tile grid
// with 4 IMAs of 8 crossbars each (2048 crossbars).
func DefaultGeometry() Geometry {
	return Geometry{TilesX: 8, TilesY: 8, IMAsPerTile: 4, XbarsPerIMA: 8}
}

// Crossbars returns the total crossbar count.
func (g Geometry) Crossbars() int { return g.TilesX * g.TilesY * g.IMAsPerTile * g.XbarsPerIMA }

// Tiles returns the number of tiles.
func (g Geometry) Tiles() int { return g.TilesX * g.TilesY }

// Chip is the full RCS: the physical crossbar farm, the task table, and the
// task↔crossbar mapping. It implements nn.Fabric.
type Chip struct {
	Params reram.DeviceParams
	Geom   Geometry
	Xbars  []*reram.Crossbar
	Tasks  []*Task

	taskOfXbar []int // crossbar index → task ID, or -1
	xbarOfTask []int // task ID → crossbar index

	weights map[string]*tensor.Tensor // layer → weight tensor (shared with nn)
	// clip is the fixed per-layer conductance coding range, set once at
	// mapping time as ClipFactor × max|W_init|. A fixed range is what real
	// hardware has (the conductance window is a device property): weights
	// that try to grow past it saturate, which bounds the damage a hijacked
	// gradient can do.
	clip map[string]float64
	// ClipFactor is the headroom multiplier applied to the initial weight
	// range (default 2).
	ClipFactor float64
	fwdEff     map[string]*tensor.Tensor // cached forward-effective weights
	bwdEff     map[string]*tensor.Tensor // cached backward-effective weights
	dirty      map[string]bool
	// quant caches the per-layer quantisation lookup table (keyed by the
	// layer's fixed clip); refresh rebuilds an entry if the clip changes.
	quant map[string]*reram.Quantizer

	// writesPerStep counts optimizer steps for endurance accounting.
	steps uint64

	// CellCorrector, when non-nil, is consulted for every faulty cell while
	// materialising effective weights: returning true means a peripheral
	// mechanism (ECC, spare-column protection) restores the cell's ideal
	// contribution. Baseline fault-tolerance schemes (AN code, Remap-WS,
	// Remap-T-n%) install their models here.
	CellCorrector func(t *Task, x *reram.Crossbar, r, c int) bool
	// CorrectorProtectsGradients controls whether CellCorrector coverage
	// extends to the on-crossbar gradient outer-product path. Relocation
	// schemes (Remap-WS, Remap-T) physically move protected weights to
	// fault-free cells, so the fault never applies anywhere (true, the
	// default set by SetCellCorrector). Arithmetic ECC (AN code) corrects
	// codeword reads only: dW = δᵀ·a involves no encoded operand, so its
	// faults are uncorrectable (false).
	CorrectorProtectsGradients bool

	// Obs, when non-nil, counts physical events (task swaps, weight-write
	// steps). The nil check is the only cost on the per-step write path, so
	// a chip without a recorder runs allocation-free and bit-identical.
	Obs obs.Recorder
}

// SetCellCorrector installs a correction hook. protectsGradients selects
// whether the mechanism also covers the gradient-computation path (see
// CorrectorProtectsGradients).
func (c *Chip) SetCellCorrector(hook func(t *Task, x *reram.Crossbar, r, col int) bool, protectsGradients bool) {
	c.CellCorrector = hook
	c.CorrectorProtectsGradients = protectsGradients
	c.InvalidateAll()
}

// NewChip builds a fault-free chip.
func NewChip(p reram.DeviceParams, g Geometry) *Chip {
	n := g.Crossbars()
	c := &Chip{
		Params:     p,
		Geom:       g,
		Xbars:      make([]*reram.Crossbar, n),
		taskOfXbar: make([]int, n),
		weights:    make(map[string]*tensor.Tensor),
		clip:       make(map[string]float64),
		fwdEff:     make(map[string]*tensor.Tensor),
		bwdEff:     make(map[string]*tensor.Tensor),
		dirty:      make(map[string]bool),
		quant:      make(map[string]*reram.Quantizer),
		ClipFactor: 2,
	}
	for i := range c.Xbars {
		c.Xbars[i] = reram.NewCrossbar(i, p)
		c.taskOfXbar[i] = -1
	}
	return c
}

// TileOf returns the tile index of crossbar i.
func (c *Chip) TileOf(xbar int) int {
	perTile := c.Geom.IMAsPerTile * c.Geom.XbarsPerIMA
	return xbar / perTile
}

// IMAOf returns the global IMA index of crossbar i.
func (c *Chip) IMAOf(xbar int) int { return xbar / c.Geom.XbarsPerIMA }

// TileCoord returns the (x, y) grid coordinate of a tile.
func (c *Chip) TileCoord(tile int) (x, y int) {
	return tile % c.Geom.TilesX, tile / c.Geom.TilesX
}

// HopCount returns the Manhattan distance between the tiles of two
// crossbars — the proximity metric Remap-D uses for receiver selection.
func (c *Chip) HopCount(xbarA, xbarB int) int {
	ax, ay := c.TileCoord(c.TileOf(xbarA))
	bx, by := c.TileCoord(c.TileOf(xbarB))
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// TaskOf returns the task mapped on crossbar i, or nil.
func (c *Chip) TaskOf(xbar int) *Task {
	id := c.taskOfXbar[xbar]
	if id < 0 {
		return nil
	}
	return c.Tasks[id]
}

// XbarOf returns the crossbar hosting task id.
func (c *Chip) XbarOf(taskID int) int { return c.xbarOfTask[taskID] }

// MappedXbars returns the indices of crossbars currently hosting a task.
func (c *Chip) MappedXbars() []int {
	var out []int
	for i, t := range c.taskOfXbar {
		if t >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// blockGrid returns how many blocks an r×c matrix needs on s-sized arrays.
func blockGrid(r, c, s int) (br, bc int) {
	return (r + s - 1) / s, (c + s - 1) / s
}

// MapNetwork creates forward and backward tasks for every MVM layer of net
// and assigns them to crossbars scattered round-robin across tiles (the
// PipeLayer-style placement: consecutive pipeline stages live on different
// tiles, which both balances NoC load and avoids clustering one layer's
// tasks in one corner of the chip). It returns an error if the chip has too
// few crossbars. Mapping also materialises the initial stored weights
// (one array write per crossbar).
func (c *Chip) MapNetwork(net *nn.Network) error {
	s := c.Params.CrossbarSize
	perTile := c.Geom.IMAsPerTile * c.Geom.XbarsPerIMA
	nTiles := c.Geom.Tiles()
	// nextInTile[t] is the next unallocated crossbar slot within tile t.
	nextInTile := make([]int, nTiles)
	tileCursor := 0
	alloc := func(t *Task) error {
		for probe := 0; probe < nTiles; probe++ {
			tile := (tileCursor + probe) % nTiles
			if nextInTile[tile] < perTile {
				xi := tile*perTile + nextInTile[tile]
				nextInTile[tile]++
				tileCursor = (tile + 1) % nTiles
				c.taskOfXbar[xi] = t.ID
				c.xbarOfTask = append(c.xbarOfTask, xi)
				c.Xbars[xi].RecordWrite() // initial weight programming
				return nil
			}
		}
		return fmt.Errorf("arch: chip with %d crossbars cannot host task %d (%s/%s)",
			len(c.Xbars), t.ID, t.Layer, t.Phase)
	}

	for _, layer := range net.MVMLayers() {
		w := net.LayerWeight(layer)
		if w == nil {
			return fmt.Errorf("arch: layer %q has no weight tensor", layer)
		}
		c.weights[layer] = w
		clip := float64(w.AbsMax()) * c.ClipFactor
		if clip <= 0 {
			clip = 1
		}
		c.clip[layer] = clip
		rows, cols := flatDims(w)
		// Forward copy tiles W (rows×cols).
		br, bc := blockGrid(rows, cols, s)
		for bi := 0; bi < br; bi++ {
			for bj := 0; bj < bc; bj++ {
				t := &Task{
					ID: len(c.Tasks), Layer: layer, Phase: Forward,
					RowOff: bi * s, ColOff: bj * s,
					Rows: minInt(s, rows-bi*s), Cols: minInt(s, cols-bj*s),
				}
				c.Tasks = append(c.Tasks, t)
				if err := alloc(t); err != nil {
					return err
				}
			}
		}
		// Backward copy tiles Wᵀ (cols×rows).
		br, bc = blockGrid(cols, rows, s)
		for bi := 0; bi < br; bi++ {
			for bj := 0; bj < bc; bj++ {
				t := &Task{
					ID: len(c.Tasks), Layer: layer, Phase: Backward,
					RowOff: bi * s, ColOff: bj * s,
					Rows: minInt(s, cols-bi*s), Cols: minInt(s, rows-bj*s),
				}
				c.Tasks = append(c.Tasks, t)
				if err := alloc(t); err != nil {
					return err
				}
			}
		}
		c.dirty[layer] = true
	}
	return nil
}

// flatDims views a weight tensor as a 2-D matrix: first axis Out, the rest
// flattened (Out×In for linear, OutC×(InC·K·K) for conv).
//
//lint:hotpath
func flatDims(w *tensor.Tensor) (rows, cols int) {
	rows = w.Dim(0)
	cols = w.Len() / rows
	return rows, cols
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SetMapping installs a complete task→crossbar assignment (xbarOfTask[i] is
// the crossbar hosting task i). The assignment must be injective and cover
// every task. All moved weights are accounted as one rewrite per crossbar.
// Used by fault-aware static mapping, which reshuffles the whole placement
// once at t = 0.
func (c *Chip) SetMapping(xbarOfTask []int) error {
	if len(xbarOfTask) != len(c.Tasks) {
		return fmt.Errorf("arch: mapping covers %d of %d tasks", len(xbarOfTask), len(c.Tasks))
	}
	seen := make(map[int]bool, len(xbarOfTask))
	for tid, xi := range xbarOfTask {
		if xi < 0 || xi >= len(c.Xbars) {
			return fmt.Errorf("arch: task %d mapped to invalid crossbar %d", tid, xi)
		}
		if seen[xi] {
			return fmt.Errorf("arch: crossbar %d hosts two tasks", xi)
		}
		seen[xi] = true
	}
	for i := range c.taskOfXbar {
		c.taskOfXbar[i] = -1
	}
	for tid, xi := range xbarOfTask {
		moved := c.xbarOfTask[tid] != xi
		c.xbarOfTask[tid] = xi
		c.taskOfXbar[xi] = tid
		if moved {
			c.Xbars[xi].RecordWrite()
		}
	}
	c.InvalidateAll()
	return nil
}

// Mapping returns a copy of the current task→crossbar assignment
// (index = task ID), the shape SetMapping accepts. Checkpoints persist it.
func (c *Chip) Mapping() []int {
	out := make([]int, len(c.xbarOfTask))
	copy(out, c.xbarOfTask)
	return out
}

// RestoreMapping installs an assignment without any write accounting:
// checkpoint resume restores the write counters separately, so recording
// the moves again would double-count wear. The assignment is validated
// like SetMapping.
func (c *Chip) RestoreMapping(xbarOfTask []int) error {
	if len(xbarOfTask) != len(c.Tasks) {
		return fmt.Errorf("arch: mapping covers %d of %d tasks", len(xbarOfTask), len(c.Tasks))
	}
	seen := make(map[int]bool, len(xbarOfTask))
	for tid, xi := range xbarOfTask {
		if xi < 0 || xi >= len(c.Xbars) {
			return fmt.Errorf("arch: task %d mapped to invalid crossbar %d", tid, xi)
		}
		if seen[xi] {
			return fmt.Errorf("arch: crossbar %d hosts two tasks", xi)
		}
		seen[xi] = true
	}
	for i := range c.taskOfXbar {
		c.taskOfXbar[i] = -1
	}
	for tid, xi := range xbarOfTask {
		c.xbarOfTask[tid] = xi
		c.taskOfXbar[xi] = tid
	}
	c.InvalidateAll()
	return nil
}

// RestoreSteps overwrites the optimizer-step counter (checkpoint resume).
func (c *Chip) RestoreSteps(n uint64) { c.steps = n }

// SwapTasks exchanges the tasks of two crossbars (both must host tasks) and
// accounts a weight rewrite on both arrays. This is the physical weight
// exchange of the remapping step (Fig. 3(c)).
func (c *Chip) SwapTasks(xbarA, xbarB int) {
	ta, tb := c.taskOfXbar[xbarA], c.taskOfXbar[xbarB]
	if ta < 0 || tb < 0 {
		panic("arch: SwapTasks requires both crossbars to host tasks")
	}
	c.taskOfXbar[xbarA], c.taskOfXbar[xbarB] = tb, ta
	c.xbarOfTask[ta], c.xbarOfTask[tb] = xbarB, xbarA
	c.Xbars[xbarA].RecordWrite()
	c.Xbars[xbarB].RecordWrite()
	c.dirty[c.Tasks[ta].Layer] = true
	c.dirty[c.Tasks[tb].Layer] = true
	if c.Obs != nil {
		c.Obs.Add("arch.task_swaps", 1)
	}
}

// InvalidateAll drops all cached effective weights; fault injection calls
// this after mutating crossbar state.
func (c *Chip) InvalidateAll() {
	for l := range c.dirty {
		c.dirty[l] = true
	}
}

// Layers returns the names of the layers mapped on the chip, in sorted
// order so policy code that iterates them is schedule-independent.
func (c *Chip) Layers() []string {
	return det.SortedKeys(c.weights)
}

// ---- nn.Fabric implementation ----

// EffectiveForward returns the fault-clamped forward weights of the layer.
//
//lint:hotpath
func (c *Chip) EffectiveForward(layer string, w *tensor.Tensor) *tensor.Tensor {
	if _, mapped := c.weights[layer]; !mapped {
		return w // unmapped layers execute on the (ideal) digital fallback
	}
	c.refresh(layer)
	return c.fwdEff[layer]
}

// EffectiveBackward returns the fault-clamped backward weights (the
// transpose-copy clamps, transposed back into W's shape for the caller).
//
//lint:hotpath
func (c *Chip) EffectiveBackward(layer string, w *tensor.Tensor) *tensor.Tensor {
	if _, mapped := c.weights[layer]; !mapped {
		return w
	}
	c.refresh(layer)
	return c.bwdEff[layer]
}

// TransformGradient models the backward phase's on-crossbar dW computation:
// every stuck cell of the layer's backward-task crossbars hijacks its
// gradient entry, reading as the stuck conductance's decode scaled to the
// gradient's dynamic range (SA1 → +max|g|, SA0 → −max|g|). Cells covered by
// the installed CellCorrector keep their true gradient. This is the
// systematic, repeated-every-step error whose accumulation makes the
// backward phase fault-critical (paper Section III.B.2 / Fig. 5).
//
//lint:hotpath
func (c *Chip) TransformGradient(layer string, grad *tensor.Tensor) {
	if _, mapped := c.weights[layer]; !mapped {
		return
	}
	scale := float64(grad.AbsMax())
	if scale == 0 { //lint:allow float-eq exact zero guard: AbsMax is exactly 0 only for an all-zero gradient
		return
	}
	for _, t := range c.Tasks {
		if t.Layer != layer || t.Phase != Backward {
			continue
		}
		x := c.Xbars[c.xbarOfTask[t.ID]]
		for r := 0; r < t.Rows; r++ {
			for col := 0; col < t.Cols; col++ {
				st := x.State(r, col)
				if st == reram.Healthy {
					continue
				}
				//lint:allow hotpath-alloc corrector hook is a user-installed func value; implementations are tiny coverage predicates
				if c.CellCorrector != nil && c.CorrectorProtectsGradients && c.CellCorrector(t, x, r, col) {
					continue
				}
				elem := c.ElementOf(t, r, col)
				cell := r*x.Size + col
				grad.Data[elem] = float32(c.Params.StuckWeightAs(
					st, x.FaultG(cell), x.FaultInPositive(cell), float64(grad.Data[elem]), scale))
			}
		}
	}
}

// WeightsWritten is called by the optimizer after each step: the stored
// conductances of every crossbar holding the layer are reprogrammed.
//
//lint:hotpath
func (c *Chip) WeightsWritten(layer string) {
	if _, mapped := c.weights[layer]; !mapped {
		return
	}
	for _, t := range c.Tasks {
		if t.Layer == layer {
			c.Xbars[c.xbarOfTask[t.ID]].RecordWrite()
		}
	}
	//lint:allow hotpath-alloc dirty-set write: the key exists after mapping, steady state rewrites in place
	c.dirty[layer] = true
	c.steps++
	if c.Obs != nil {
		c.Obs.Add("arch.weight_writes", 1)
	}
}

// refresh recomputes the effective weight caches for a dirty layer.
//
//lint:hotpath steady state on a clean layer is one map read; the rebuild below only runs when weights changed
func (c *Chip) refresh(layer string) {
	if !c.dirty[layer] {
		return
	}
	w := c.weights[layer]
	_, cols := flatDims(w)
	clip := c.clip[layer]

	fwd := c.fwdEff[layer]
	//lint:allow hotpath-alloc forward-cache build: allocated once per layer shape, steady state reuses it
	if fwd == nil || !fwd.SameShape(w) {
		fwd = tensor.New(w.Shape...)
		c.fwdEff[layer] = fwd
	}
	bwd := c.bwdEff[layer]
	//lint:allow hotpath-alloc backward-cache build: allocated once per layer shape, steady state reuses it
	if bwd == nil || !bwd.SameShape(w) {
		bwd = tensor.New(w.Shape...)
		c.bwdEff[layer] = bwd
	}

	q := c.quant[layer]
	//lint:allow hotpath-alloc quantizer table build: once per (layer, clip), steady state reuses it
	if q == nil || q.Clip() != clip { //lint:allow float-eq clip is copied verbatim from c.clip, not recomputed
		q = c.Params.NewQuantizer(clip)
		c.quant[layer] = q
	}

	for _, t := range c.Tasks {
		if t.Layer != layer {
			continue
		}
		x := c.Xbars[c.xbarOfTask[t.ID]]
		// Fused deploy: clamp each crossbar row straight from the weight
		// tensor into the effective tensor — no gather/scatter scratch pass.
		// Forward blocks are contiguous W rows; backward blocks tile Wᵀ, so
		// crossbar row i is W column (RowOff+i) walked with stride cols.
		if t.Phase == Forward {
			for i := 0; i < t.Rows; i++ {
				off := (t.RowOff+i)*cols + t.ColOff
				x.ClampRowInto(q, fwd.Data[off:off+t.Cols], w.Data[off:off+t.Cols], 1, 1, i, t.Cols)
			}
		} else {
			for i := 0; i < t.Rows; i++ {
				off := t.ColOff*cols + t.RowOff + i
				end := (t.ColOff+t.Cols-1)*cols + t.RowOff + i + 1
				x.ClampRowInto(q, bwd.Data[off:end], w.Data[off:end], cols, cols, i, t.Cols)
			}
		}
		// Peripheral correction: repair the cells the installed mechanism
		// can cover (they read back as the ideal quantised weight).
		if c.CellCorrector != nil {
			eff := fwd
			if t.Phase == Backward {
				eff = bwd
			}
			for i := 0; i < t.Rows; i++ {
				for j := 0; j < t.Cols; j++ {
					if x.State(i, j) == reram.Healthy {
						continue
					}
					//lint:allow hotpath-alloc corrector hook is a user-installed func value; implementations are tiny coverage predicates
					if c.CellCorrector(t, x, i, j) {
						elem := c.ElementOf(t, i, j)
						eff.Data[elem] = float32(q.Quantize(float64(w.Data[elem])))
					}
				}
			}
		}
	}
	//lint:allow hotpath-alloc dirty-set write: the key exists after mapping, steady state rewrites in place
	c.dirty[layer] = false
}

// ElementOf maps block position (r, c) of a task to the flat index of the
// corresponding element in the layer's weight tensor. Protection policies
// (Remap-WS, Remap-T-n%) use it to translate per-weight importance into
// per-cell coverage.
//
//lint:hotpath
func (c *Chip) ElementOf(t *Task, r, col int) int {
	w := c.weights[t.Layer]
	_, cols := flatDims(w)
	if t.Phase == Forward {
		return (t.RowOff+r)*cols + (t.ColOff + col)
	}
	// Backward blocks tile Wᵀ: block (r, col) holds W[ColOff+col][RowOff+r].
	return (t.ColOff+col)*cols + (t.RowOff + r)
}

// Weight returns the weight tensor registered for a layer (nil if the layer
// is not mapped).
func (c *Chip) Weight(layer string) *tensor.Tensor { return c.weights[layer] }

// TrueDensity returns the ground-truth fault density of crossbar i
// (experiments use it to validate BIST estimates).
func (c *Chip) TrueDensity(xbar int) float64 { return c.Xbars[xbar].FaultDensity() }

// Steps returns the number of optimizer steps the chip has observed.
func (c *Chip) Steps() uint64 { return c.steps }

var _ nn.Fabric = (*Chip)(nil)
