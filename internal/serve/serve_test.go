package serve

import (
	"bytes"
	"testing"

	"remapd/internal/arch"
	"remapd/internal/dataset"
	"remapd/internal/fault"
	"remapd/internal/nn"
	"remapd/internal/obs"
	"remapd/internal/remap"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// testNet builds a small serving stack over 3×16×16 inputs: enough MVM
// layers to occupy a spread of crossbar tasks, small enough to keep the
// tests fast.
func testNet(seed uint64) *nn.Network {
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 3, InH: 16, InW: 16, OutC: 8, K: 3, Stride: 1, Pad: 1}
	return nn.NewNetwork(
		nn.NewConv2D("c1", g, rng),
		nn.NewBatchNorm2D("bn1", 8),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", 8*8*8, 10, rng),
	)
}

func testChip() *arch.Chip {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = 32
	return arch.NewChip(p, arch.Geometry{TilesX: 4, TilesY: 4, IMAsPerTile: 2, XbarsPerIMA: 4})
}

// runServe executes one complete wear-under-traffic serving run with a
// fresh world and returns its trace and final stats. Everything is built
// from constants, so two calls must replay identically.
func runServe(t *testing.T) (*obs.Trace, Stats) {
	t.Helper()
	trace := obs.NewTrace("test/remap-d/seed1/serve")
	cfg := Config{
		BatchMax:       8,
		BatchWait:      16,
		BISTEvery:      64,
		Threshold:      0.02,
		WritesPerBatch: 8,
		InC:            3, InH: 16, InW: 16,
		Obs: trace,
	}
	net := testNet(5)
	chip := testChip()
	pre := fault.DefaultPreProfile()
	pre.Inject(chip.Xbars, tensor.NewRNG(11))
	pol := remap.NewRemapD()
	pol.Threshold = cfg.Threshold
	em := fault.NewEnduranceModel()
	em.CharacteristicLife = 600
	rep, err := NewReplica(ReplicaConfig{
		Net: net, Chip: chip, Policy: pol, Endurance: em, FaultSeed: 21,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg, []*Replica{rep})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.CIFAR10Like(1, 128, 16, 77)
	Drive(srv, NewTraffic(ds, 9, 3), 512)
	return trace, srv.Stats()
}

// TestServeDeterministicReplay pins the tentpole guarantee: same
// checkpoint (here: same weights), same traffic seed, same wear model ⇒
// byte-identical metrics JSON and an identical maintenance event
// sequence across two independent runs.
func TestServeDeterministicReplay(t *testing.T) {
	t1, s1 := runServe(t)
	t2, s2 := runServe(t)

	// The run being replayed must actually exercise the online machinery,
	// or the byte-identity below proves nothing interesting.
	if s1.BISTScans == 0 || s1.MaintainRounds == 0 || s1.OnlineSwaps == 0 {
		t.Fatalf("run too quiet to pin determinism: %+v", s1)
	}
	if s1 != s2 {
		t.Fatalf("stats diverge between identical runs:\n%+v\n%+v", s1, s2)
	}

	m1, err := t1.Registry().Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := t2.Registry().Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metrics JSON diverges between identical runs:\n%s\nvs\n%s", m1, m2)
	}

	var e1, e2 bytes.Buffer
	if err := obs.EncodeEvents(&e1, t1.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.EncodeEvents(&e2, t2.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("event trace diverges between identical runs")
	}
	if s1.OnlineSwaps > 0 && !bytes.Contains(e1.Bytes(), []byte(`"swap"`)) {
		t.Fatal("online swaps counted but no swap events in the trace")
	}
}

// probe pushes the same b images through the server as one full batch and
// returns the predicted classes. arrival is advanced monotonically by the
// caller.
func probe(srv *Server, ds *dataset.Dataset, arrival *uint64, n int) []int {
	imgLen := ds.C * ds.H * ds.W
	reqs := make([]*Request, n)
	for i := range reqs {
		*arrival++
		reqs[i] = &Request{
			Image:   ds.TestX.Data[i*imgLen : (i+1)*imgLen],
			Label:   ds.TestY[i],
			Arrival: *arrival,
		}
		srv.Submit(reqs[i])
	}
	classes := make([]int, n)
	for i, r := range reqs {
		classes[i] = r.Class
	}
	return classes
}

// TestBISTFailureTriggersMaintainAndRecovers injects a heavy fault burst
// into the serving (forward-task) crossbars mid-traffic and checks the
// whole online loop: the next scheduled BIST scan fails, Maintain runs
// under TriggerServing, the forward tasks land on clean crossbars, and
// the service's predictions return to their pre-fault baseline.
func TestBISTFailureTriggersMaintainAndRecovers(t *testing.T) {
	cfg := Config{
		BatchMax:  8,
		BatchWait: 1000, // only full batches flush: exact scan scheduling
		BISTEvery: 16,
		Threshold: 0.02,
		InC:       3, InH: 16, InW: 16,
	}
	net := testNet(5)
	chip := testChip()
	pol := remap.NewRemapD()
	pol.Threshold = cfg.Threshold
	rep, err := NewReplica(ReplicaConfig{Net: net, Chip: chip, Policy: pol, FaultSeed: 21}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg, []*Replica{rep})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.CIFAR10Like(1, 64, 16, 77)
	var arrival uint64

	// Baseline on the pristine chip.
	baseline := probe(srv, ds, &arrival, cfg.BatchMax)

	// Fault burst: 30% of every serving crossbar's cells go stuck-at.
	frng := tensor.NewRNG(33)
	hit := 0
	for _, xi := range chip.MappedXbars() {
		if tk := chip.TaskOf(xi); tk != nil && tk.Phase == arch.Forward {
			x := chip.Xbars[xi]
			fault.InjectMixed(x, x.Cells()*3/10, 0.5, 0, 0, frng)
			hit++
		}
	}
	if hit == 0 {
		t.Fatal("no forward-task crossbars to fault")
	}
	chip.InvalidateAll()

	// One more batch brings sinceScan to BISTEvery: the scan runs after
	// it executes, sees the burst, and must trigger online maintenance.
	probe(srv, ds, &arrival, cfg.BatchMax)
	st := srv.Stats()
	if st.BISTScans != 1 {
		t.Fatalf("expected exactly 1 BIST scan, got %d", st.BISTScans)
	}
	if st.MaintainRounds != 1 {
		t.Fatalf("BIST failure did not trigger Maintain: %+v", st)
	}
	if st.OnlineSwaps == 0 {
		t.Fatalf("Maintain ran but swapped nothing: %+v", st)
	}

	// Under TriggerServing the forward tasks are the protected phase:
	// every one must now sit on a crossbar below the failure threshold.
	for _, xi := range chip.MappedXbars() {
		if tk := chip.TaskOf(xi); tk != nil && tk.Phase == arch.Forward {
			if d := chip.TrueDensity(xi); d > cfg.Threshold {
				t.Fatalf("forward task still on faulty crossbar %d (density %.3f)", xi, d)
			}
		}
	}

	// Clean arrays again: the service must answer exactly as before the
	// burst.
	recovered := probe(srv, ds, &arrival, cfg.BatchMax)
	for i := range baseline {
		if recovered[i] != baseline[i] {
			t.Fatalf("prediction %d did not recover: baseline class %d, post-maintenance %d",
				i, baseline[i], recovered[i])
		}
	}
	if rep.Rounds() != 1 {
		t.Fatalf("replica rounds = %d, want 1", rep.Rounds())
	}
}

// TestBatchDeadlineFlush pins the scheduler's two close rules: a full
// batch closes at the arrival that fills it, a partial batch closes once
// its oldest request has waited BatchWait ticks.
func TestBatchDeadlineFlush(t *testing.T) {
	cfg := Config{
		BatchMax:  4,
		BatchWait: 10,
		InC:       3, InH: 16, InW: 16,
	}
	net := testNet(5)
	rep, err := NewReplica(ReplicaConfig{Net: net, Chip: testChip(), Policy: remap.NewRemapD(), FaultSeed: 21}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg, []*Replica{rep})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.CIFAR10Like(1, 16, 16, 77)
	imgLen := ds.C * ds.H * ds.W
	mk := func(arrival uint64) *Request {
		return &Request{Image: ds.TestX.Data[:imgLen], Label: -1, Arrival: arrival}
	}

	// Two requests, then a third arriving past the deadline: the first
	// two must flush as a deadline batch, not wait for a full one.
	a, b := mk(1), mk(2)
	srv.Submit(a)
	srv.Submit(b)
	late := mk(30)
	srv.Submit(late)
	if a.Completion == 0 || b.Completion == 0 {
		t.Fatal("deadline-expired batch was not flushed by the late arrival")
	}
	if late.Completion != 0 {
		t.Fatal("fresh request executed before its batch closed")
	}
	st := srv.Stats()
	if st.DeadlineFlushes != 1 || st.Batches != 1 {
		t.Fatalf("want 1 deadline flush / 1 batch, got %+v", st)
	}

	// Filling to BatchMax flushes immediately.
	for i := 0; i < cfg.BatchMax-1; i++ {
		srv.Submit(mk(30 + uint64(i)))
	}
	if late.Completion == 0 {
		t.Fatal("full batch did not flush at BatchMax")
	}
	if got := srv.Stats().Batches; got != 2 {
		t.Fatalf("want 2 batches, got %d", got)
	}
}
