// Package serve is the fault-aware online inference service: it loads a
// trained checkpoint onto a pool of simulated (faulty, wearing) ReRAM
// chips and serves classification traffic through a request-batching
// scheduler feeding the forward-only nn.Infer path.
//
// The paper's Remap-D runs at training epoch boundaries; production chips
// spend their lives serving, and wear faults keep accruing under live
// traffic. This package turns the epoch-boundary remap into a
// serving-time reliability mechanism: every -bist-every served requests a
// chip runs an online BIST scan, and when the scan finds a forward-task
// crossbar over the density threshold it invokes the policy's
// phase-agnostic Maintain step with remap.TriggerServing — under which
// Remap-D treats forward tasks as fault-critical and the idle
// backward-task crossbars as the clean receiver pool.
//
// Everything is deterministic by construction: time is a simulated tick
// clock advanced by request arrivals (never the host clock), wear is
// clocked by served batches, and all randomness flows from seeded
// tensor.RNG streams. Two runs with the same checkpoint, traffic seed and
// wear configuration produce byte-identical metrics and event traces.
package serve

import (
	"fmt"
	"sync"

	"remapd/internal/arch"
	"remapd/internal/bist"
	"remapd/internal/fault"
	"remapd/internal/nn"
	"remapd/internal/obs"
	"remapd/internal/remap"
	"remapd/internal/tensor"
)

// Canonical bucket layouts for the serving SLO histograms.
var (
	// LatencyBuckets covers request latencies in simulated ticks, from a
	// lone request on an idle pipeline through maintenance-delayed tails.
	LatencyBuckets = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 4096}
	// BatchSizeBuckets covers scheduler batch sizes.
	BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
)

// Request is one classification request flowing through the scheduler.
type Request struct {
	// Image is the C·H·W input in dataset layout. The scheduler copies it
	// into the batch tensor at execution, so the slice may be a view.
	Image []float32
	// Label is the ground-truth class for accuracy tracking, or -1 when
	// unknown (external HTTP traffic).
	Label int
	// Arrival is the request's arrival tick on the simulated clock.
	// Arrivals must be non-decreasing across Submit calls.
	Arrival uint64

	// Class and Completion are filled by the scheduler when the batch
	// containing the request executes.
	Class      int
	Completion uint64
}

// Config fixes the scheduler and maintenance parameters of a Server.
type Config struct {
	// BatchMax closes a batch when this many requests are queued.
	BatchMax int
	// BatchWait closes a batch once the oldest queued request has waited
	// this many ticks — the max-wait deadline bounding tail latency under
	// thin traffic.
	BatchWait uint64
	// BISTEvery runs the online BIST scan after every BISTEvery requests
	// served on a chip (0 disables online maintenance).
	BISTEvery int
	// Threshold is the fault density above which a scanned forward-task
	// crossbar counts as a BIST failure and triggers Maintain.
	Threshold float64
	// WritesPerBatch is the refresh writes each forward-task crossbar
	// absorbs per executed batch — the wear clock under read traffic
	// (drift-compensation reprogramming on the arrays being read).
	WritesPerBatch int
	// Timing converts batch execution into simulated ReRAM cycles.
	Timing arch.TimingModel
	// InC/InH/InW is the input image geometry.
	InC, InH, InW int
	// Obs receives the serving telemetry (counters, SLO histograms, swap
	// and wear events) when non-nil. Pure observation: no scheduling or
	// maintenance decision reads it.
	Obs obs.Recorder
}

// ReplicaConfig bundles one chip's serving state. The caller builds the
// network (with trained weights loaded), the chip, and the policy;
// NewReplica maps, binds and deploys them.
type ReplicaConfig struct {
	Net    *nn.Network
	Chip   *arch.Chip
	Policy remap.Policy
	// Endurance, when non-nil, materialises wear faults from the chip's
	// write counters at every scan.
	Endurance *fault.EnduranceModel
	// FaultSeed seeds the replica's fault-materialisation RNG stream.
	FaultSeed uint64
}

// Replica is one serving chip: a network bound to a fabric, its policy,
// and its wear/maintenance bookkeeping.
type Replica struct {
	net       *nn.Network
	chip      *arch.Chip
	policy    remap.Policy
	endurance *fault.EnduranceModel
	faultRNG  *tensor.RNG
	mctx      *remap.Context

	served    int    // requests served on this replica
	sinceScan int    // requests since the last BIST scan
	round     int    // maintenance round counter (event Epoch coordinate)
	busyUntil uint64 // simulated tick the chip frees up

	// rolling accuracy window, reset at each scan
	winTotal, winCorrect int
}

// NewReplica maps the network onto the chip, binds the fabric, and runs
// the policy's deploy step (round 0 of the event trace).
func NewReplica(rc ReplicaConfig, cfg Config) (*Replica, error) {
	if rc.Net == nil || rc.Chip == nil || rc.Policy == nil {
		return nil, fmt.Errorf("serve: replica needs net, chip and policy")
	}
	if err := rc.Chip.MapNetwork(rc.Net); err != nil {
		return nil, fmt.Errorf("serve: map network: %w", err)
	}
	rc.Net.SetFabric(rc.Chip)
	rep := &Replica{
		net:       rc.Net,
		chip:      rc.Chip,
		policy:    rc.Policy,
		endurance: rc.Endurance,
		faultRNG:  tensor.NewRNG(rc.FaultSeed),
	}
	if rep.endurance != nil {
		rep.endurance.Obs = cfg.Obs
	}
	// Deploy under the serving trigger: this chip's whole life is
	// forward-only traffic, so the policy's initial placement must already
	// protect the forward phase (Static/Remap-D put forward tasks on the
	// cleanest crossbars instead of training's backward-first order).
	rep.mctx = &remap.Context{
		Chip:    rc.Chip,
		RNG:     rep.faultRNG,
		Epoch:   0,
		Trigger: remap.TriggerServing,
		Obs:     cfg.Obs,
	}
	rc.Policy.Deploy(rep.mctx)
	return rep, nil
}

// Chip exposes the replica's chip (tests inject targeted faults on it).
func (rep *Replica) Chip() *arch.Chip { return rep.chip }

// Rounds returns how many maintenance rounds (BIST scans) have run.
func (rep *Replica) Rounds() int { return rep.round }

// forwardXbars appends the crossbars currently hosting forward-phase
// tasks to dst — the arrays traffic actually reads, hence both the wear
// targets and the scan set.
func (rep *Replica) forwardXbars(dst []int) []int {
	dst = dst[:0]
	for _, xi := range rep.chip.MappedXbars() {
		if t := rep.chip.TaskOf(xi); t != nil && t.Phase == arch.Forward {
			dst = append(dst, xi)
		}
	}
	return dst
}

// Stats is the Server's cumulative serving state, snapshotted by the
// /status section.
type Stats struct {
	Requests        int64   `json:"requests"`
	Batches         int64   `json:"batches"`
	DeadlineFlushes int64   `json:"deadline_flushes"`
	BISTScans       int64   `json:"bist_scans"`
	MaintainRounds  int64   `json:"maintain_rounds"`
	OnlineSwaps     int64   `json:"online_swaps"`
	OnlineSenders   int64   `json:"online_senders"`
	WearFaults      int64   `json:"wear_faults"`
	AccuracyWindow  float64 `json:"accuracy_window"`
	AccuracyTotal   float64 `json:"accuracy_total"`
	MeanDensity     float64 `json:"mean_density"`
	P99LatencyTicks float64 `json:"p99_latency_ticks"`
	Tick            uint64  `json:"tick"`
	Chips           int     `json:"chips"`
}

// Server is the request-batching scheduler over a pool of replicas.
// Batches are dispatched round-robin across the pool. All methods are
// mutex-guarded so the HTTP front end and a traffic driver can share one
// instance; determinism holds for any single-submitter schedule.
type Server struct {
	cfg  Config
	reps []*Replica

	mu       sync.Mutex
	queue    []*Request
	next     int // round-robin replica cursor
	ws       nn.Workspace
	scratch  []int
	latency  *obs.Histogram // internal mirror for p99 (always on)
	correct  int64
	pipeFill int
	stats    Stats
}

// New builds a server over the replica pool.
func New(cfg Config, reps []*Replica) (*Server, error) {
	if cfg.BatchMax < 1 {
		return nil, fmt.Errorf("serve: BatchMax must be >= 1, got %d", cfg.BatchMax)
	}
	if cfg.WritesPerBatch < 0 {
		return nil, fmt.Errorf("serve: WritesPerBatch must be >= 0, got %d", cfg.WritesPerBatch)
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("serve: need at least one replica")
	}
	if cfg.InC <= 0 || cfg.InH <= 0 || cfg.InW <= 0 {
		return nil, fmt.Errorf("serve: input geometry %dx%dx%d invalid", cfg.InC, cfg.InH, cfg.InW)
	}
	if cfg.Timing.StageCyclesMVM == 0 {
		cfg.Timing = arch.DefaultTimingModel()
	}
	s := &Server{
		cfg:     cfg,
		reps:    reps,
		latency: obs.NewHistogram(LatencyBuckets),
	}
	s.stats.Chips = len(reps)
	// Forward-only pipeline depth: one stage per MVM layer.
	s.pipeFill = len(reps[0].net.MVMLayers()) * cfg.Timing.StageCyclesMVM
	if reg, ok := cfg.Obs.(interface{ Registry() *obs.Registry }); ok {
		reg.Registry().DeclareHistogram("serve.latency.ticks", LatencyBuckets)
		reg.Registry().DeclareHistogram("serve.batch.size", BatchSizeBuckets)
	}
	return s, nil
}

// Submit enqueues one request, flushing first if the newcomer's arrival
// proves the current batch's max-wait deadline expired, and after
// enqueueing if the batch is full. Arrival ticks must be non-decreasing.
func (s *Server) Submit(r *Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) > 0 && s.cfg.BatchWait > 0 && r.Arrival >= s.queue[0].Arrival+s.cfg.BatchWait {
		s.stats.DeadlineFlushes++
		s.flushLocked(s.queue[0].Arrival + s.cfg.BatchWait)
	}
	s.queue = append(s.queue, r)
	if r.Arrival > s.stats.Tick {
		s.stats.Tick = r.Arrival
	}
	if len(s.queue) >= s.cfg.BatchMax {
		s.flushLocked(r.Arrival)
	}
}

// Flush executes any partially filled batch at its max-wait deadline —
// the end-of-stream drain.
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return
	}
	close := s.queue[0].Arrival + s.cfg.BatchWait
	if last := s.queue[len(s.queue)-1].Arrival; close < last {
		close = last
	}
	s.flushLocked(close)
}

// flushLocked executes the queued batch on the next replica. closeTick is
// the simulated tick the scheduler sealed the batch.
func (s *Server) flushLocked(closeTick uint64) {
	reqs := s.queue
	s.queue = s.queue[len(s.queue):]
	if len(reqs) == 0 {
		return
	}
	rep := s.reps[s.next]
	s.next = (s.next + 1) % len(s.reps)

	n := len(reqs)
	imgLen := s.cfg.InC * s.cfg.InH * s.cfg.InW
	x := s.ws.Take("x", n, s.cfg.InC, s.cfg.InH, s.cfg.InW)
	for i, r := range reqs {
		if len(r.Image) != imgLen {
			panic(fmt.Sprintf("serve: request image has %d values, want %d", len(r.Image), imgLen))
		}
		copy(x.Data[i*imgLen:(i+1)*imgLen], r.Image)
	}
	logits := rep.net.Infer(x)

	// Pipeline timing: the batch starts when both the scheduler seals it
	// and the chip is free (maintenance may have pushed busyUntil past the
	// close tick), fills the forward pipeline once, then streams one
	// sample per stage cycle.
	start := closeTick
	if rep.busyUntil > start {
		start = rep.busyUntil
	}
	completion := start + uint64(s.pipeFill) + uint64(n*s.cfg.Timing.StageCyclesMVM)
	rep.busyUntil = completion
	if completion > s.stats.Tick {
		s.stats.Tick = completion
	}

	for i, r := range reqs {
		r.Class = logits.ArgMaxRow(i)
		r.Completion = completion
		lat := float64(completion - r.Arrival)
		s.latency.Observe(lat)
		if s.cfg.Obs != nil {
			s.cfg.Obs.Observe("serve.latency.ticks", lat)
		}
		if r.Label >= 0 {
			rep.winTotal++
			if r.Class == r.Label {
				rep.winCorrect++
				s.correct++
			}
		}
	}
	s.stats.Requests += int64(n)
	s.stats.Batches++
	rep.served += n
	rep.sinceScan += n
	if s.cfg.Obs != nil {
		s.cfg.Obs.Add("serve.requests", int64(n))
		s.cfg.Obs.Add("serve.batches", 1)
		s.cfg.Obs.Observe("serve.batch.size", float64(n))
	}

	// Wear: the arrays read by this batch absorb refresh writes.
	if s.cfg.WritesPerBatch > 0 {
		s.scratch = rep.forwardXbars(s.scratch)
		for _, xi := range s.scratch {
			for w := 0; w < s.cfg.WritesPerBatch; w++ {
				rep.chip.Xbars[xi].RecordWrite()
			}
		}
	}

	if s.cfg.BISTEvery > 0 && rep.sinceScan >= s.cfg.BISTEvery {
		rep.sinceScan = 0
		s.scanLocked(rep)
	}
	s.refreshGaugesLocked()
}

// scanLocked runs one online maintenance round on rep: materialise the
// wear implied by the traffic so far, BIST the forward-task crossbars,
// and — on a BIST failure — invoke the policy's phase-agnostic Maintain
// with the serving trigger.
func (s *Server) scanLocked(rep *Replica) {
	rep.round++
	s.stats.BISTScans++

	// Publish the rolling accuracy window against the current wear level
	// before this round's faults land: the drift-vs-wear signal.
	if rep.winTotal > 0 {
		s.stats.AccuracyWindow = float64(rep.winCorrect) / float64(rep.winTotal)
		if s.cfg.Obs != nil {
			s.cfg.Obs.Set("serve.accuracy.window", s.stats.AccuracyWindow)
		}
	}
	rep.winTotal, rep.winCorrect = 0, 0

	if rep.endurance != nil {
		rep.endurance.SimEpoch = rep.round
		injected := rep.endurance.Apply(rep.chip.Xbars, rep.faultRNG)
		if injected > 0 {
			rep.chip.InvalidateAll()
			s.stats.WearFaults += int64(injected)
			if s.cfg.Obs != nil {
				s.cfg.Obs.Add("serve.wear.faults", int64(injected))
			}
		}
	}

	// Online BIST over the forward-task (serving-critical) crossbars. A
	// density estimate above the threshold is a BIST failure.
	ctrl := bist.NewController(rep.chip.Params)
	ctrl.Obs, ctrl.SimEpoch = s.cfg.Obs, rep.round
	failed := false
	s.scratch = rep.forwardXbars(s.scratch)
	for _, xi := range s.scratch {
		res := ctrl.Run(rep.chip.Xbars[xi])
		if res.DensityEstimate > s.cfg.Threshold {
			failed = true
		}
	}
	scanCycles := bist.CyclesPerPass(rep.chip.Params) * rep.chip.Geom.XbarsPerIMA
	rep.busyUntil += uint64(scanCycles)
	if s.cfg.Obs != nil {
		s.cfg.Obs.Add("serve.bist.scans", 1)
		s.cfg.Obs.Add("serve.bist.cycles", int64(scanCycles))
	}
	if !failed {
		return
	}

	// BIST failure: run the policy's maintenance step under the serving
	// trigger. For Remap-D this re-tests, then swaps hot forward tasks
	// onto the cleanest idle backward-task crossbars.
	rep.mctx.Epoch = rep.round
	rep.mctx.Trigger = remap.TriggerServing
	repOut := rep.policy.Maintain(rep.mctx)
	rep.busyUntil += uint64(repOut.BISTCycles) + uint64(repOut.NoCCycles)
	s.stats.MaintainRounds++
	s.stats.OnlineSwaps += int64(repOut.Swaps)
	s.stats.OnlineSenders += int64(repOut.Senders)
	if s.cfg.Obs != nil {
		s.cfg.Obs.Add("serve.maintain.rounds", 1)
		s.cfg.Obs.Add("serve.remap.swaps", int64(repOut.Swaps))
		s.cfg.Obs.Add("serve.remap.senders", int64(repOut.Senders))
		s.cfg.Obs.Add("serve.remap.unmatched", int64(repOut.Unmatched))
		s.cfg.Obs.Emit(&obs.ReportEvent{
			Epoch:       rep.round,
			Policy:      rep.policy.Name(),
			Senders:     repOut.Senders,
			Swaps:       repOut.Swaps,
			Unmatched:   repOut.Unmatched,
			BISTCycles:  repOut.BISTCycles,
			NoCCycles:   repOut.NoCCycles,
			Protected:   repOut.Protected,
			MeanDensity: repOut.MeanDensity,
		})
	}
}

// refreshGaugesLocked recomputes the derived SLO gauges.
func (s *Server) refreshGaugesLocked() {
	if s.stats.Requests > 0 {
		s.stats.AccuracyTotal = float64(s.correct) / float64(s.stats.Requests)
	}
	total, used := 0.0, 0
	for _, rep := range s.reps {
		for _, xi := range rep.chip.MappedXbars() {
			total += rep.chip.TrueDensity(xi)
			used++
		}
	}
	if used > 0 {
		s.stats.MeanDensity = total / float64(used)
	}
	s.stats.P99LatencyTicks = s.latency.Quantile(0.99)
	if s.cfg.Obs != nil {
		s.cfg.Obs.Set("serve.accuracy.total", s.stats.AccuracyTotal)
		s.cfg.Obs.Set("serve.wear.mean_density", s.stats.MeanDensity)
		s.cfg.Obs.Set("serve.latency.p99_ticks", s.stats.P99LatencyTicks)
		s.cfg.Obs.Set("serve.ticks", float64(s.stats.Tick))
	}
}

// InputLen returns the per-request image volume (C·H·W).
func (s *Server) InputLen() int { return s.cfg.InC * s.cfg.InH * s.cfg.InW }

// Stats returns a snapshot of the cumulative serving state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// StatusSection is the /status registry hook ("serve" section).
func (s *Server) StatusSection() interface{} { return s.Stats() }
