package serve

import (
	"remapd/internal/dataset"
	"remapd/internal/tensor"
)

// Traffic is the deterministic request generator: it draws samples from a
// dataset's test split and spaces arrivals on the simulated tick clock
// with seeded jitter. Every request carries its ground-truth label so the
// server can track accuracy drift under wear. Two Traffic instances with
// the same dataset, seed and jitter produce identical request streams.
type Traffic struct {
	ds     *dataset.Dataset
	rng    *tensor.RNG
	jitter int
	tick   uint64
	imgLen int
}

// NewTraffic returns a generator over ds's test split. jitter is the
// maximum extra gap between consecutive arrivals: each request lands
// 1..(1+jitter) ticks after the previous one.
func NewTraffic(ds *dataset.Dataset, seed uint64, jitter int) *Traffic {
	if jitter < 0 {
		jitter = 0
	}
	return &Traffic{
		ds:     ds,
		rng:    tensor.NewRNG(seed),
		jitter: jitter,
		imgLen: ds.C * ds.H * ds.W,
	}
}

// Next draws one request. The Image slice views the dataset tensor (the
// scheduler copies it at execution), so Next itself stays allocation-light.
func (t *Traffic) Next() *Request {
	idx := t.rng.Intn(t.ds.TestLen())
	t.tick += 1 + uint64(t.rng.Intn(t.jitter+1))
	return &Request{
		Image:   t.ds.TestX.Data[idx*t.imgLen : (idx+1)*t.imgLen],
		Label:   t.ds.TestY[idx],
		Arrival: t.tick,
	}
}

// Drive pushes n generated requests through the server and drains the
// final partial batch — the deterministic replay loop behind the -requests
// driver mode and the serve-smoke CI job.
func Drive(s *Server, tr *Traffic, n int) {
	for i := 0; i < n; i++ {
		s.Submit(tr.Next())
	}
	s.Flush()
}
