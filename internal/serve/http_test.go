package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"remapd/internal/dataset"
	"remapd/internal/remap"
)

// TestHTTPClassify drives the HTTP shell end to end: a POSTed image comes
// back classified with its simulated latency, and malformed requests are
// rejected before touching the scheduler.
func TestHTTPClassify(t *testing.T) {
	cfg := Config{
		BatchMax:  1, // every request is its own batch: no cross-request waits
		BatchWait: 4,
		InC:       3, InH: 16, InW: 16,
	}
	rep, err := NewReplica(ReplicaConfig{Net: testNet(5), Chip: testChip(), Policy: remap.NewRemapD(), FaultSeed: 21}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg, []*Replica{rep})
	if err != nil {
		t.Fatal(err)
	}
	front := NewFront(srv, time.Millisecond)
	front.Start()
	defer front.Close()
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	ds := dataset.CIFAR10Like(1, 4, 16, 77)
	body, err := json.Marshal(ClassifyRequest{Image: ds.TestX.Data[:srv.InputLen()]})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /classify: %s", resp.Status)
	}
	var cr ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Class < 0 || cr.Class >= 10 {
		t.Fatalf("class %d out of range", cr.Class)
	}
	if cr.CompletionTick <= cr.ArrivalTick {
		t.Fatalf("completion %d not after arrival %d", cr.CompletionTick, cr.ArrivalTick)
	}

	// Wrong image volume: rejected with 400 before reaching the scheduler.
	bad, err := json.Marshal(ClassifyRequest{Image: []float32{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/classify", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp2.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("short image: got %s, want 400", resp2.Status)
	}
	if got := srv.Stats().Requests; got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}
