package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// This file is the HTTP shell around the deterministic Server core. The
// core is clocked by request-arrival ticks; the shell maps live traffic
// onto that clock with a monotonic arrival counter and uses a wall-clock
// ticker only to fire the max-wait flush when traffic goes thin. The
// deterministic-replay guarantee is claimed for the driver path
// (Traffic/Drive), not for concurrent HTTP load — but every individual
// HTTP request still flows through the same scheduler, wear and
// maintenance machinery.

// ClassifyRequest is the POST /classify body.
type ClassifyRequest struct {
	// Image is the C·H·W input in dataset layout.
	Image []float32 `json:"image"`
	// Label optionally carries ground truth so live traffic feeds the
	// accuracy-drift gauges. Omitted means unknown.
	Label *int `json:"label,omitempty"`
}

// ClassifyResponse is the POST /classify reply.
type ClassifyResponse struct {
	Class          int    `json:"class"`
	ArrivalTick    uint64 `json:"arrival_tick"`
	CompletionTick uint64 `json:"completion_tick"`
	LatencyTicks   uint64 `json:"latency_ticks"`
}

type httpReq struct {
	req  *Request
	done chan struct{}
}

// Front serialises HTTP requests onto the Server's simulated arrival
// clock through a single consumer goroutine.
type Front struct {
	srv     *Server
	ch      chan *httpReq
	wait    time.Duration
	stop    chan struct{}
	stopped chan struct{}
}

// NewFront wraps srv. wait is the wall-clock interval at which a partial
// batch is force-flushed when no new traffic arrives to advance the
// simulated clock past the max-wait deadline.
func NewFront(srv *Server, wait time.Duration) *Front {
	if wait <= 0 {
		wait = 10 * time.Millisecond
	}
	return &Front{
		srv:     srv,
		ch:      make(chan *httpReq, 64),
		wait:    wait,
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
}

// Start launches the consumer loop.
func (f *Front) Start() { go f.loop() }

// Close stops the consumer loop, draining and completing any queued
// requests first.
func (f *Front) Close() {
	close(f.stop)
	<-f.stopped
}

func (f *Front) loop() {
	defer close(f.stopped)
	var arrival uint64
	var pending []*httpReq
	tick := time.NewTicker(f.wait)
	defer tick.Stop()
	complete := func() {
		kept := pending[:0]
		for _, hr := range pending {
			if hr.req.Completion > 0 {
				close(hr.done)
			} else {
				kept = append(kept, hr)
			}
		}
		pending = kept
	}
	for {
		select {
		case hr := <-f.ch:
			arrival++
			hr.req.Arrival = arrival
			f.srv.Submit(hr.req)
			pending = append(pending, hr)
		case <-tick.C:
			f.srv.Flush()
		case <-f.stop:
			for {
				select {
				case hr := <-f.ch:
					arrival++
					hr.req.Arrival = arrival
					f.srv.Submit(hr.req)
					pending = append(pending, hr)
					continue
				default:
				}
				break
			}
			f.srv.Flush()
			complete()
			return
		}
		complete()
	}
}

// Handler returns the service mux: POST /classify plus a liveness probe.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", f.handleClassify)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, err := fmt.Fprintln(w, "ok")
		_ = err // best-effort liveness reply
	})
	return mux
}

func (f *Front) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var cr ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(cr.Image) != f.srv.InputLen() {
		http.Error(w, fmt.Sprintf("image must have %d values, got %d", f.srv.InputLen(), len(cr.Image)), http.StatusBadRequest)
		return
	}
	req := &Request{Image: cr.Image, Label: -1}
	if cr.Label != nil {
		req.Label = *cr.Label
	}
	hr := &httpReq{req: req, done: make(chan struct{})}
	select {
	case f.ch <- hr:
	case <-f.stop:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	select {
	case <-hr.done:
	case <-f.stopped:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	resp := ClassifyResponse{
		Class:          req.Class,
		ArrivalTick:    req.Arrival,
		CompletionTick: req.Completion,
		LatencyTicks:   req.Completion - req.Arrival,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
