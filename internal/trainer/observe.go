package trainer

import (
	"math"

	"remapd/internal/arch"
	"remapd/internal/fault"
	"remapd/internal/nn"
	"remapd/internal/obs"
	"remapd/internal/remap"
)

// epochObserver computes the per-epoch training-dynamics telemetry
// (gradient / weight-update / weight norms) and emits the EpochEvent.
// It is nil when no Recorder is configured; every method no-ops on a nil
// receiver, so the training loop carries exactly one pointer check per
// call site and an unobserved run does zero extra work.
//
// All quantities are pure functions of values the loop already computed
// — the observer reads weights and gradients but never writes, draws no
// random numbers, and therefore cannot perturb the run.
type epochObserver struct {
	rec obs.Recorder
	net *nn.Network

	// prev holds each parameter's values at epoch start (net.Params()
	// order, which is deterministic), for the weight-update norm.
	prev [][]float32
	// gradSq accumulates Σ‖∇‖² over the epoch's optimizer steps.
	gradSq float64
	steps  int
}

// newEpochObserver returns nil (a valid no-op observer) when rec is nil.
func newEpochObserver(rec obs.Recorder, net *nn.Network) *epochObserver {
	if rec == nil {
		return nil
	}
	return &epochObserver{rec: rec, net: net}
}

// beginEpoch snapshots the weights and resets the gradient accumulator.
func (o *epochObserver) beginEpoch() {
	if o == nil {
		return
	}
	o.gradSq, o.steps = 0, 0
	params := o.net.Params()
	if len(o.prev) != len(params) {
		o.prev = make([][]float32, len(params))
	}
	for i, p := range params {
		if len(o.prev[i]) != len(p.W.Data) {
			o.prev[i] = make([]float32, len(p.W.Data))
		}
		copy(o.prev[i], p.W.Data)
	}
}

// afterBatch folds one optimizer step's gradients into the epoch norm.
func (o *epochObserver) afterBatch() {
	if o == nil {
		return
	}
	o.steps++
	for _, p := range o.net.Params() {
		for _, v := range p.Grad.Data {
			o.gradSq += float64(v) * float64(v)
		}
	}
}

// endEpoch emits the epoch's EpochEvent and updates the training gauges.
// faultsInjected is this epoch's injection count (not the running total).
func (o *epochObserver) endEpoch(epoch int, loss, acc float64, chip *arch.Chip, faultsInjected int) {
	if o == nil {
		return
	}
	var weightSq, updateSq float64
	for i, p := range o.net.Params() {
		for j, v := range p.W.Data {
			weightSq += float64(v) * float64(v)
			d := float64(v) - float64(o.prev[i][j])
			updateSq += d * d
		}
	}
	ev := &obs.EpochEvent{
		Epoch:          epoch,
		Steps:          o.steps,
		Loss:           loss,
		TestAcc:        acc,
		GradNorm:       math.Sqrt(o.gradSq),
		UpdateNorm:     math.Sqrt(updateSq),
		WeightNorm:     math.Sqrt(weightSq),
		FaultsInjected: faultsInjected,
	}
	if chip != nil {
		ev.MeanDensity = fault.Collect(chip.Xbars).MeanDensity
		var maxWrites, totalWrites uint64
		for _, x := range chip.Xbars {
			w := x.Writes()
			totalWrites += w
			if w > maxWrites {
				maxWrites = w
			}
		}
		o.rec.Set("fault.mean_density", ev.MeanDensity)
		o.rec.Set("endurance.max_writes", float64(maxWrites))
		o.rec.Set("endurance.total_writes", float64(totalWrites))
	}
	o.rec.Emit(ev)
	o.rec.Add("train.steps", int64(o.steps))
	o.rec.Set("train.loss", loss)
	o.rec.Set("train.test_acc", acc)
}

// recordReport emits the policy's EpochReport as a ReportEvent and rolls
// its counts into the remap counters. Summing the emitted Swaps over a
// trace reproduces Result.Swaps — the property the telemetry tests pin.
func (o *epochObserver) recordReport(epoch int, policy string, rep remap.EpochReport) {
	if o == nil {
		return
	}
	o.rec.Emit(&obs.ReportEvent{
		Epoch:       epoch,
		Policy:      policy,
		Senders:     rep.Senders,
		Swaps:       rep.Swaps,
		Unmatched:   rep.Unmatched,
		BISTCycles:  rep.BISTCycles,
		NoCCycles:   rep.NoCCycles,
		Protected:   rep.Protected,
		MeanDensity: rep.MeanDensity,
	})
	o.rec.Add("remap.senders", int64(rep.Senders))
	o.rec.Add("remap.swaps", int64(rep.Swaps))
	o.rec.Add("remap.unmatched", int64(rep.Unmatched))
	o.rec.Add("remap.bist_cycles", int64(rep.BISTCycles))
	o.rec.Add("remap.noc_cycles", int64(rep.NoCCycles))
	o.rec.Set("remap.protected", float64(rep.Protected))
}
