package trainer

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"remapd/internal/arch"
	"remapd/internal/dataset"
	"remapd/internal/fault"
	"remapd/internal/models"
	"remapd/internal/nn"
	"remapd/internal/remap"
	"remapd/internal/reram"
)

// smallDataset is shared across the integration tests.
func smallDataset() *dataset.Dataset { return dataset.CIFAR10Like(400, 200, 16, 77) }

func smallModel(seed uint64) *nn.Network {
	net, err := models.Build("cnn-s", models.Config{
		InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: 0.25, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return net
}

func smallChip() *arch.Chip {
	p := reram.DefaultDeviceParams()
	return arch.NewChip(p, arch.Geometry{TilesX: 4, TilesY: 4, IMAsPerTile: 2, XbarsPerIMA: 4})
}

func baseCfg() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.BatchSize = 32
	cfg.LR = 0.05
	return cfg
}

func TestTrainCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseCfg()
	cfg.Ctx = ctx
	if _, err := Train(smallModel(1), smallDataset(), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTrainCancelledMidRun(t *testing.T) {
	// A deadline far shorter than the full run must stop training at a
	// batch boundary instead of letting it finish.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	cfg := baseCfg()
	cfg.Epochs = 50
	cfg.Ctx = ctx
	start := time.Now()
	_, err := Train(smallModel(1), smallDataset(), cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %s to stop training", elapsed)
	}
}

func TestTrainIdealConverges(t *testing.T) {
	ds := smallDataset()
	res, err := Train(smallModel(1), ds, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.55 {
		t.Fatalf("ideal training accuracy %.3f, want ≥0.55", res.FinalTestAcc)
	}
	if len(res.EpochTestAcc) != 4 || len(res.TrainLoss) != 4 {
		t.Fatalf("history lengths %d/%d", len(res.EpochTestAcc), len(res.TrainLoss))
	}
	if res.TrainLoss[3] >= res.TrainLoss[0] {
		t.Fatalf("loss did not decrease: %v", res.TrainLoss)
	}
	if res.Policy != "none" {
		t.Fatalf("default policy name %q", res.Policy)
	}
}

func TestTrainOnCleanChipNearIdeal(t *testing.T) {
	ds := smallDataset()
	ideal, err := Train(smallModel(1), ds, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg()
	cfg.Chip = smallChip()
	chipRes, err := Train(smallModel(1), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if chipRes.FinalTestAcc < ideal.FinalTestAcc-0.08 {
		t.Fatalf("clean chip should be near-ideal: %.3f vs %.3f", chipRes.FinalTestAcc, ideal.FinalTestAcc)
	}
}

func TestBackwardPhaseLessTolerantThanForward(t *testing.T) {
	ds := smallDataset()
	run := func(phase arch.Phase) float64 {
		cfg := baseCfg()
		cfg.Chip = smallChip()
		cfg.PhaseInject = &PhaseInjection{Phase: phase, Density: 0.02}
		res, err := Train(smallModel(1), ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalTestAcc
	}
	fwd := run(arch.Forward)
	bwd := run(arch.Backward)
	if bwd >= fwd {
		t.Fatalf("paper's key observation violated: backward-fault acc %.3f ≥ forward-fault acc %.3f", bwd, fwd)
	}
}

func TestRemapDProtectsBackwardTasks(t *testing.T) {
	ds := smallDataset()
	// The calibrated reproduction regime (see DESIGN.md): hot crossbars at
	// 4–10%, clean low band, concentrated endurance wear.
	pre := fault.DefaultPreProfile()
	pre.HighDensity = [2]float64{0.04, 0.10}
	pre.LowDensity = [2]float64{0, 0.004}
	post := fault.DefaultPostModel()
	post.CrossbarFraction = 0.02
	post.CellFraction = 0.06

	rd := remap.NewRemapD()
	rd.Threshold = 0.02
	cfg := baseCfg()
	cfg.Chip = smallChip()
	cfg.Pre = &pre
	cfg.Post = &post
	cfg.Policy = rd
	res, err := Train(smallModel(1), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("Remap-D performed no swaps under the hot profile")
	}
	if res.BISTCyclesTotal <= 0 {
		t.Fatal("BIST cycles unaccounted")
	}
	// Mechanism invariant: after the final epoch-boundary remap, no
	// backward (fault-critical) task may sit on an over-threshold crossbar
	// while an eligible cleaner forward host exists.
	chip := cfg.Chip
	for _, xi := range chip.MappedXbars() {
		task := chip.TaskOf(xi)
		if task.Phase != arch.Backward {
			continue
		}
		d := chip.TrueDensity(xi)
		if d <= rd.Threshold {
			continue
		}
		for _, rx := range chip.MappedXbars() {
			rt := chip.TaskOf(rx)
			if rt.Phase == arch.Forward && chip.TrueDensity(rx) <= rd.Threshold {
				t.Fatalf("backward task %s on %.2f%%-faulty crossbar %d while clean forward host %d exists",
					task.Layer, 100*d, xi, rx)
			}
		}
	}
}

func TestPostDeploymentFaultsAccumulate(t *testing.T) {
	ds := smallDataset()
	cfg := baseCfg()
	cfg.Epochs = 3
	cfg.Chip = smallChip()
	post := fault.DefaultPostModel()
	post.CrossbarFraction = 0.05
	post.CellFraction = 0.005
	cfg.Post = &post
	res, err := Train(smallModel(2), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected <= 0 {
		t.Fatal("post-deployment model injected nothing")
	}
	if res.FinalMeanDensity <= 0 {
		t.Fatal("final mean density not reported")
	}
}

func TestTrackGradAbsFeedsRemapT(t *testing.T) {
	ds := smallDataset()
	cfg := baseCfg()
	cfg.Epochs = 2
	cfg.Chip = smallChip()
	cfg.Policy = remap.NewRemapT(0.05)
	cfg.TrackGradAbs = true
	pre := fault.DefaultPreProfile()
	cfg.Pre = &pre
	res, err := Train(smallModel(3), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.3 {
		t.Fatalf("Remap-T run collapsed: %.3f", res.FinalTestAcc)
	}
}

func TestEnduranceModelDrivesWearOut(t *testing.T) {
	ds := smallDataset()
	cfg := baseCfg()
	cfg.Epochs = 3
	cfg.Chip = smallChip()
	em := fault.NewEnduranceModel()
	em.CharacteristicLife = 50 // compressed so 3 epochs of writes matter
	cfg.Endurance = em
	res, err := Train(smallModel(6), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("endurance model produced no wear-out failures")
	}
	// Only written (mapped) crossbars may fail.
	for _, x := range cfg.Chip.Xbars {
		if x.Writes() == 0 && x.FaultCount() > 0 {
			t.Fatal("unwritten crossbar failed — endurance must follow writes")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	ds := smallDataset()
	cfg := baseCfg()
	cfg.Epochs = 0
	if _, err := Train(smallModel(1), ds, cfg); err == nil {
		t.Fatal("zero epochs must error")
	}
}

func TestTrainWithNoCSimulation(t *testing.T) {
	ds := smallDataset()
	cfg := baseCfg()
	cfg.Epochs = 2
	cfg.Chip = smallChip()
	cfg.Policy = remap.NewRemapD()
	cfg.SimulateNoC = true
	pre := fault.DefaultPreProfile()
	pre.HighFraction = 0.5
	pre.HighDensity = [2]float64{0.02, 0.04}
	cfg.Pre = &pre
	res, err := Train(smallModel(4), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps > 0 && res.NoCCyclesTotal <= 0 {
		t.Fatal("NoC cycles must be recorded when swaps happen")
	}
}

func TestLogfReceivesProgress(t *testing.T) {
	ds := smallDataset()
	cfg := baseCfg()
	cfg.Epochs = 1
	var lines []string
	cfg.Logf = func(f string, a ...interface{}) { lines = append(lines, f) }
	if _, err := Train(smallModel(5), ds, cfg); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "epoch") {
		t.Fatalf("log lines: %v", lines)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	d := dataset.CIFAR10Like(10, 0, 16, 1)
	if acc := Evaluate(smallModel(1), d, 8); acc != 0 {
		t.Fatalf("empty test set accuracy %v", acc)
	}
}
