package trainer

// probe_test.go contains a manually-invoked calibration probe used while
// tuning the synthetic workloads (run with: go test -run Probe -v -tags).
// It is skipped in normal runs.

import (
	"os"
	"testing"

	"remapd/internal/arch"
	"remapd/internal/dataset"
	"remapd/internal/fault"
	"remapd/internal/models"
	"remapd/internal/nn"
	"remapd/internal/remap"
	"remapd/internal/reram"
)

type nnNet = nn.Network

func datasetBig() *dataset.Dataset { return dataset.CIFAR10Like(512, 512, 16, 77) }

func buildProbeModel(name string, seed uint64) *nn.Network {
	net, err := models.Build(name, models.Config{
		InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: 0.125, BatchNorm: true, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return net
}

func TestProbeFaultSensitivity(t *testing.T) {
	if os.Getenv("REMAPD_PROBE") == "" {
		t.Skip("calibration probe; set REMAPD_PROBE=1 to run")
	}
	// Width/crossbar co-scaling probe: does 1/4 width restore the paper's
	// forward≫backward tolerance gap?
	if os.Getenv("REMAPD_WIDTH_PROBE") != "" {
		dsw := datasetBig()
		for _, epochs := range []int{6} {
			w := 0.125
			xsize := 32
			_ = epochs
			mk := func(seed uint64) *nn.Network {
				net, err := models.Build("vgg11", models.Config{
					InC: 3, InH: 16, InW: 16, Classes: 10, WidthScale: w, BatchNorm: true, Seed: seed,
				})
				if err != nil {
					panic(err)
				}
				return net
			}
			chip := func() *arch.Chip {
				p := reram.DefaultDeviceParams()
				p.CrossbarSize = xsize
				return arch.NewChip(p, arch.Geometry{TilesX: 8, TilesY: 8, IMAsPerTile: 2, XbarsPerIMA: 4})
			}
			for _, seed := range []uint64{1, 2} {
				cfg := baseCfg()
				cfg.Epochs = epochs
				cfg.Seed = seed
				ideal, _ := Train(mk(seed), dsw, cfg)
				cfg = baseCfg()
				cfg.Epochs = epochs
				cfg.Seed = seed
				cfg.Chip = chip()
				cfg.PhaseInject = &PhaseInjection{Phase: arch.Forward, Density: 0.02}
				rf, _ := Train(mk(seed), dsw, cfg)
				cfg = baseCfg()
				cfg.Epochs = epochs
				cfg.Seed = seed
				cfg.Chip = chip()
				cfg.PhaseInject = &PhaseInjection{Phase: arch.Backward, Density: 0.02}
				rb, _ := Train(mk(seed), dsw, cfg)
				t.Logf("epochs %d seed %d: ideal=%.3f fwd=%.3f bwd=%.3f", epochs, seed, ideal.FinalTestAcc, rf.FinalTestAcc, rb.FinalTestAcc)
			}
			// Policy comparison at this schedule.
			pre := fault.DefaultPreProfile()
			pre.HighDensity = [2]float64{0.04, 0.10}
			pre.LowDensity = [2]float64{0, 0.004}
			post := fault.DefaultPostModel()
			post.CrossbarFraction = 0.01
			post.CellFraction = 0.03
			for _, pname := range []string{"none", "static", "an-code", "remap-ws", "remap-d"} {
				var accs []float64
				sw := 0
				for _, seed := range []uint64{1, 2, 3} {
					var pol remap.Policy
					switch pname {
					case "none":
						pol = remap.None{}
					case "static":
						pol = remap.Static{}
					case "an-code":
						pol = remap.NewANCode()
					case "remap-ws":
						pol = remap.NewRemapWS()
					default:
						rd := remap.NewRemapD()
						rd.Threshold = 0.02
						pol = rd
					}
					cfg := baseCfg()
					cfg.Epochs = epochs
					cfg.Seed = seed
					cfg.Chip = chip()
					cfg.Pre = &pre
					cfg.Post = &post
					cfg.Policy = pol
					r, _ := Train(mk(seed), dsw, cfg)
					accs = append(accs, r.FinalTestAcc)
					sw += r.Swaps
				}
				t.Logf("epochs %d policy %-8s: mean=%.3f runs=%v swaps=%d", epochs, pname, (accs[0]+accs[1]+accs[2])/3, accs, sw)
			}
		}
		return
	}

	ds := smallDataset()
	base := func() Config { c := baseCfg(); c.Epochs = 5; return c }

	ideal, _ := Train(smallModel(1), ds, base())
	t.Logf("ideal: %.3f  history=%v", ideal.FinalTestAcc, ideal.EpochTestAcc)

	for _, model := range []string{"cnn-s", "vgg11"} {
		mk := func(seed uint64) func() *nnNet {
			return func() *nnNet { return buildProbeModel(model, seed) }
		}
		idealM, _ := Train(mk(1)(), ds, base())
		t.Logf("%s ideal: %.3f", model, idealM.FinalTestAcc)
		for _, d := range []float64{0.02, 0.05} {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := base()
				cfg.Chip = smallChip()
				cfg.PhaseInject = &PhaseInjection{Phase: arch.Forward, Density: d}
				rf, _ := Train(mk(seed)(), ds, cfg)
				cfg = base()
				cfg.Chip = smallChip()
				cfg.PhaseInject = &PhaseInjection{Phase: arch.Backward, Density: d}
				rb, _ := Train(mk(seed)(), ds, cfg)
				t.Logf("%s density %.2f seed %d: fwd=%.3f bwd=%.3f", model, d, seed, rf.FinalTestAcc, rb.FinalTestAcc)
			}
		}
	}

	// Damage curve: where does unprotected training break?
	for _, mult := range []float64{1, 3, 6, 12} {
		pre := fault.DefaultPreProfile()
		pre.HighDensity = [2]float64{0.004 * mult, 0.01 * mult}
		pre.LowDensity = [2]float64{0, 0.004 * mult}
		post := fault.DefaultPostModel()
		post.CrossbarFraction = 0.08
		post.CellFraction = 0.005 * mult
		cfg := base()
		cfg.Epochs = 6
		p2 := reram.DefaultDeviceParams()
		p2.CrossbarSize = 32
		cfg.Chip = arch.NewChip(p2, arch.Geometry{TilesX: 8, TilesY: 8, IMAsPerTile: 2, XbarsPerIMA: 4})
		cfg.Pre = &pre
		cfg.Post = &post
		r, err := Train(buildProbeModel("vgg11", 1), ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("damage x%.0f: none=%.3f", mult, r.FinalTestAcc)
	}

	probeChip := func() *arch.Chip {
		p := reram.DefaultDeviceParams()
		p.CrossbarSize = 32 // utilization-matched to the 1/8-width models
		return arch.NewChip(p, arch.Geometry{TilesX: 8, TilesY: 8, IMAsPerTile: 2, XbarsPerIMA: 4})
	}
	pre := fault.DefaultPreProfile()
	pre.HighDensity = [2]float64{0.04, 0.10}
	pre.LowDensity = [2]float64{0, 0.004}
	post := fault.DefaultPostModel()
	post.CrossbarFraction = 0.02
	post.CellFraction = 0.06
	dsBig := datasetBig()
	mkPolicy := map[string]func() remap.Policy{
		"none":    func() remap.Policy { return remap.None{} },
		"static":  func() remap.Policy { return remap.Static{} },
		"an-code": func() remap.Policy { return remap.NewANCode() },
		"remap-d": func() remap.Policy {
			rd := remap.NewRemapD()
			rd.Threshold = 0.02
			return rd
		},
	}
	for _, name := range []string{"none", "static", "an-code", "remap-d"} {
		var accs []float64
		swaps := 0
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := base()
			cfg.Epochs = 6
			cfg.Seed = seed
			cfg.Chip = probeChip()
			cfg.Pre = &pre
			cfg.Post = &post
			cfg.Policy = mkPolicy[name]()
			r, err := Train(buildProbeModel("vgg11", seed), dsBig, cfg)
			if err != nil {
				t.Fatal(err)
			}
			accs = append(accs, r.FinalTestAcc)
			swaps += r.Swaps
		}
		mean := (accs[0] + accs[1] + accs[2]) / 3
		t.Logf("policy %-11s: mean=%.3f runs=%v swaps=%d", name, mean, accs, swaps)
	}
}
