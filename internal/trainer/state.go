package trainer

import (
	"remapd/internal/arch"
	"remapd/internal/fault"
	"remapd/internal/nn"
	"remapd/internal/remap"
	"remapd/internal/tensor"
)

// TrainState exposes the live objects whose joint state determines the
// remainder of a training run. A CheckpointHook serializes them at epoch
// boundaries and restores them on resume; together with the deterministic
// RNG streams this is sufficient for a resumed run to be bit-identical to
// an uninterrupted one.
//
// The trainer owns the lifecycle: pointers are valid for the duration of
// the Resume/Save call only.
type TrainState struct {
	// Net is the network (weights + BN running stats).
	Net *nn.Network
	// Opt is the SGD optimizer (LR after decay, momentum velocities).
	Opt *nn.SGD
	// TrainRNG drives batch shuffling; FaultRNG drives fault injection.
	TrainRNG *tensor.RNG
	FaultRNG *tensor.RNG
	// Chip is nil when training on the ideal digital fabric.
	Chip *arch.Chip
	// Endurance is nil unless physical wear-out is configured.
	Endurance *fault.EnduranceModel
	// Policy is the active fault-tolerance policy (never nil; remap.None
	// when unset). Policies implementing remap.Resumable contribute an
	// opaque state blob.
	Policy remap.Policy
	// Result accumulates the partial run summary; restored on resume so
	// per-epoch curves span the whole run.
	Result *Result
}

// CheckpointHook persists and restores TrainState at epoch boundaries.
// Implementations live outside this package (internal/checkpoint); the
// trainer only defines the contract so the dependency points outward.
type CheckpointHook interface {
	// Resume is called once, after deterministic construction (network
	// mapped, optimizer built, RNGs seeded) but before any fault
	// injection or policy deployment. If a usable snapshot exists it
	// applies the snapshot to st and returns the number of completed
	// epochs with resumed = true. A missing, stale, or corrupt snapshot
	// returns (0, false, nil) — the run starts fresh. Errors are
	// reserved for states that decode cleanly but cannot be applied.
	Resume(st *TrainState) (startEpoch int, resumed bool, err error)
	// Save is called after each completed epoch (epochsDone in
	// [1, Epochs]) with st reflecting the epoch boundary. A Save error
	// aborts the run: continuing would leave a stale snapshot that no
	// longer matches the advertised epoch.
	Save(st *TrainState, epochsDone int) error
}
