// Package trainer orchestrates fault-aware CNN training on the RCS: the
// per-epoch loop of (train batches → endurance wear-out → BIST + policy
// action → evaluation) that the paper's experiments are built from.
package trainer

import (
	"context"
	"fmt"
	"math"
	"strings"

	"remapd/internal/arch"
	"remapd/internal/dataset"
	"remapd/internal/fault"
	"remapd/internal/nn"
	"remapd/internal/noc"
	"remapd/internal/obs"
	"remapd/internal/remap"
	"remapd/internal/tensor"
)

// PhaseInjection describes the targeted fault injection of the Fig. 5
// experiment: a fixed fault density applied only to the crossbars hosting
// tasks of one phase.
type PhaseInjection struct {
	Phase   arch.Phase
	Density float64
}

// Config drives one training run.
type Config struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	Seed        uint64

	// Chip, when non-nil, executes the network's MVMs; nil trains on the
	// ideal digital fabric (the paper's "ideal" rows).
	Chip *arch.Chip
	// Policy is the fault-tolerance scheme (nil = remap.None).
	Policy remap.Policy
	// Pre/Post enable pre-deployment and per-epoch post-deployment fault
	// injection on the chip.
	Pre  *fault.PreProfile
	Post *fault.PostModel
	// Endurance, when non-nil, derives wear-out failures physically from
	// each crossbar's accumulated write count (Weibull lifetimes) instead
	// of (or in addition to) the phenomenological Post model.
	Endurance *fault.EnduranceModel
	// PhaseInject applies the Fig. 5 targeted injection at deployment.
	PhaseInject *PhaseInjection

	// TrackGradAbs accumulates per-weight |gradient| each epoch (required
	// by Remap-T-n%; costs one pass over the parameters per step).
	TrackGradAbs bool
	// SimulateNoC runs the flit-level handshake for every remap round.
	SimulateNoC bool
	// Obs, when non-nil, records the run's simulation telemetry: epoch
	// norms, policy reports, swap/density/wear events. Recording is pure
	// observation keyed by simulated coordinates; a nil Obs produces
	// bit-identical results with zero overhead beyond nil checks.
	Obs obs.Recorder
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
	// Checkpoint, when non-nil, persists the run state after every epoch
	// and resumes from the latest usable snapshot, making the run
	// crash-safe: an interrupted cell continues bit-identically.
	Checkpoint CheckpointHook
	// Ctx, when non-nil, cancels the run: Train returns Ctx.Err() at the
	// next batch boundary once the context is done. The experiment runner
	// uses this to stop in-flight cells on the first error or SIGINT.
	Ctx context.Context
}

// DefaultConfig returns the reproduction-scale training hyperparameters.
func DefaultConfig() Config {
	return Config{
		Epochs:    10,
		BatchSize: 32,
		LR:        0.05,
		Momentum:  0.9,
		Seed:      1,
	}
}

// Result summarises a run.
type Result struct {
	Policy string
	Epochs int

	EpochTestAcc []float64
	TrainLoss    []float64
	FinalTestAcc float64
	BestTestAcc  float64

	Senders, Swaps, Unmatched int
	BISTCyclesTotal           int64
	NoCCyclesTotal            int64
	FaultsInjected            int
	FinalMeanDensity          float64
}

// Train runs the full loop and returns the result. The network must be
// freshly constructed (weights at initialisation).
func Train(net *nn.Network, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("trainer: bad config: %d epochs, batch %d", cfg.Epochs, cfg.BatchSize)
	}
	if ds.TrainLen()/cfg.BatchSize == 0 {
		// TrainBatches drops partial batches, so fewer samples than one
		// batch means zero training steps per epoch — reject up front
		// instead of panicking on an empty loss curve later.
		return nil, fmt.Errorf("trainer: dataset has %d training samples, fewer than one batch of %d",
			ds.TrainLen(), cfg.BatchSize)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = remap.None{}
	}
	res := &Result{Policy: pol.Name(), Epochs: cfg.Epochs}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	trainRNG := tensor.NewRNG(cfg.Seed)
	faultRNG := tensor.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)

	var ctx *remap.Context
	if cfg.Chip != nil {
		if err := cfg.Chip.MapNetwork(net); err != nil {
			return nil, err
		}
		net.SetFabric(cfg.Chip)
		nocCfg, err := noc.CMeshForTiles(cfg.Chip.Geom.TilesX, cfg.Chip.Geom.TilesY)
		if err != nil {
			return nil, err
		}
		ctx = &remap.Context{
			Chip:        cfg.Chip,
			RNG:         faultRNG,
			GradAbs:     map[string]*tensor.Tensor{},
			NoCCfg:      nocCfg,
			Protocol:    noc.DefaultProtocolParams(),
			SimulateNoC: cfg.SimulateNoC,
			Obs:         cfg.Obs,
		}
		cfg.Chip.Obs = cfg.Obs
		if cfg.Endurance != nil {
			cfg.Endurance.Obs = cfg.Obs
		}
	}
	observer := newEpochObserver(cfg.Obs, net)

	opt := nn.NewSGD(net, cfg.LR, cfg.Momentum, cfg.WeightDecay)

	// Everything above is a pure function of the configuration — mapping,
	// seeding, and optimizer construction consume no random draws. A
	// checkpoint therefore only has to restore the *mutable* state on top:
	// weights, optimizer, RNG streams, chip faults/wear, policy state.
	startEpoch, resumed := 0, false
	var ckptState *TrainState
	if cfg.Checkpoint != nil {
		ckptState = &TrainState{
			Net:       net,
			Opt:       opt,
			TrainRNG:  trainRNG,
			FaultRNG:  faultRNG,
			Chip:      cfg.Chip,
			Endurance: cfg.Endurance,
			Policy:    pol,
			Result:    res,
		}
		ep, ok, err := cfg.Checkpoint.Resume(ckptState)
		if err != nil {
			return nil, fmt.Errorf("trainer: checkpoint resume: %w", err)
		}
		if ok && ep > cfg.Epochs {
			return nil, fmt.Errorf("trainer: checkpoint claims %d completed epochs but config trains %d", ep, cfg.Epochs)
		}
		startEpoch, resumed = ep, ok
	}
	if resumed {
		if cfg.Chip != nil {
			// Faults, mapping, and write counters were restored directly;
			// the policy only needs to reinstall its runtime hooks.
			if ra, okRA := pol.(remap.Reattacher); okRA {
				ra.Reattach(ctx)
			}
			cfg.Chip.InvalidateAll()
		}
		logf("resumed from checkpoint: %d/%d epochs done", startEpoch, cfg.Epochs)
	} else if cfg.Chip != nil {
		// Fresh deployment. The order (pre-profile, targeted phase
		// injection, policy deploy) fixes the faultRNG draw sequence, so
		// every fresh run of a configuration is bit-identical.
		if cfg.Pre != nil {
			res.FaultsInjected += cfg.Pre.Inject(cfg.Chip.Xbars, faultRNG)
			cfg.Chip.InvalidateAll()
		}
		if cfg.PhaseInject != nil {
			res.FaultsInjected += injectPhase(cfg.Chip, cfg.PhaseInject, faultRNG)
		}
		// Deploy-time telemetry is stamped epoch −1, separating the t=0
		// placement's events from those of the first epoch boundary.
		ctx.Epoch = -1
		pol.Deploy(ctx)
	}
	// Step decay: halve the learning rate at 60% and 85% of the schedule
	// (the usual CIFAR recipe, and what lets training compensate static
	// forward-path faults).
	decayAt := map[int]bool{cfg.Epochs * 6 / 10: true, cfg.Epochs * 85 / 100: true}

	mvmSet := map[string]bool{}
	for _, l := range net.MVMLayers() {
		mvmSet[l] = true
	}

	// Loss-gradient scratch, reused across batches (the last partial batch
	// reshapes it smaller; Take handles the size change in place).
	var lossWS nn.Workspace

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		if epoch > 0 && decayAt[epoch] {
			opt.LR /= 2
		}
		if ctx != nil {
			ctx.Epoch = epoch
			if cfg.TrackGradAbs {
				resetGradAbs(ctx, net, mvmSet)
			}
		}
		if cfg.Endurance != nil {
			cfg.Endurance.SimEpoch = epoch
		}
		observer.beginEpoch()
		faultsBefore := res.FaultsInjected
		var lossSum float64
		batches := ds.TrainBatches(cfg.BatchSize, trainRNG)
		for _, b := range batches {
			if err := ctxErr(cfg.Ctx); err != nil {
				return nil, err
			}
			loss := trainStep(net, &lossWS, b)
			if !math.IsNaN(loss) && !math.IsInf(loss, 0) {
				lossSum += loss
			}
			if ctx != nil && cfg.TrackGradAbs {
				accumulateGradAbs(ctx, net, mvmSet)
			}
			opt.Step()
			observer.afterBatch()
		}
		// The up-front dataset check guarantees at least one batch.
		avgLoss := lossSum / float64(len(batches))
		res.TrainLoss = append(res.TrainLoss, avgLoss)

		// Endurance wear-out from this epoch's writes.
		if cfg.Chip != nil && cfg.Post != nil {
			res.FaultsInjected += cfg.Post.InjectEpoch(cfg.Chip.Xbars, faultRNG)
			cfg.Chip.InvalidateAll()
		}
		if cfg.Chip != nil && cfg.Endurance != nil {
			res.FaultsInjected += cfg.Endurance.Apply(cfg.Chip.Xbars, faultRNG)
			cfg.Chip.InvalidateAll()
		}
		acc := Evaluate(net, ds, cfg.BatchSize)
		// Epoch-boundary BIST + policy action, after evaluation and before
		// the next epoch's weight updates (the paper's trigger point): a
		// task moved now gets a full epoch of training before it is next
		// measured.
		if ctx != nil {
			rep := remap.EpochEnd(pol, ctx)
			res.Senders += rep.Senders
			res.Swaps += rep.Swaps
			res.Unmatched += rep.Unmatched
			res.BISTCyclesTotal += int64(rep.BISTCycles)
			res.NoCCyclesTotal += int64(rep.NoCCycles)
			observer.recordReport(epoch, pol.Name(), rep)
		}
		observer.endEpoch(epoch, avgLoss, acc, cfg.Chip, res.FaultsInjected-faultsBefore)
		res.EpochTestAcc = append(res.EpochTestAcc, acc)
		if acc > res.BestTestAcc {
			res.BestTestAcc = acc
		}
		logf("epoch %2d: loss=%.4f acc=%.4f", epoch+1, avgLoss, acc)
		if cfg.Checkpoint != nil {
			// Persist the epoch boundary before starting the next epoch;
			// a crash from here on resumes at epoch+1 bit-identically.
			if err := cfg.Checkpoint.Save(ckptState, epoch+1); err != nil {
				return nil, fmt.Errorf("trainer: checkpoint save after epoch %d: %w", epoch+1, err)
			}
		}
		if f, ok := cfg.Obs.(obs.Flusher); ok {
			// Stream the epoch's telemetry out with the checkpoint: a crash
			// from here on loses at most the next epoch's events, and the
			// recorder's buffer stays bounded at one epoch.
			if err := f.Flush(); err != nil {
				return nil, fmt.Errorf("trainer: flush telemetry after epoch %d: %w", epoch+1, err)
			}
		}
	}
	res.FinalTestAcc = res.EpochTestAcc[len(res.EpochTestAcc)-1]
	if cfg.Chip != nil {
		res.FinalMeanDensity = fault.Collect(cfg.Chip.Xbars).MeanDensity
	}
	return res, nil
}

// ctxErr reports a done context (nil ctx never cancels).
// trainStep runs one batch through the network: forward pass, loss and
// gradient into the reused workspace buffer, backward pass. This is the
// per-batch hot path the zero-allocation contract protects; everything
// it reaches (layers, tensor kernels, the ReRAM clamp path) is annotated
// //lint:hotpath and machine-checked.
//
//lint:hotpath
func trainStep(net *nn.Network, lossWS *nn.Workspace, b dataset.Batch) float64 {
	logits := net.Forward(b.X, true)
	grad := lossWS.Take("grad", logits.Dim(0), logits.Dim(1))
	loss := nn.SoftmaxCrossEntropyInto(grad, logits, b.Y)
	net.Backward(grad)
	return loss
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Evaluate returns the test-set accuracy of the network in eval mode.
func Evaluate(net *nn.Network, ds *dataset.Dataset, batchSize int) float64 {
	correct, total := 0, 0
	for _, b := range ds.TestBatches(batchSize) {
		logits := net.Forward(b.X, false)
		for i := range b.Y {
			if logits.ArgMaxRow(i) == b.Y[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// injectPhase applies a fixed fault density to every crossbar hosting a
// task of the given phase. The density is relative to the cells the task
// actually occupies (in the paper's setup crossbars are fully utilised, so
// crossbar density and weight-level fault rate coincide; here blocks can
// under-fill an array and the weight-level rate is what the experiment
// controls).
func injectPhase(chip *arch.Chip, pi *PhaseInjection, rng *tensor.RNG) int {
	total := 0
	for _, xi := range chip.MappedXbars() {
		t := chip.TaskOf(xi)
		if t == nil || t.Phase != pi.Phase {
			continue
		}
		x := chip.Xbars[xi]
		n := int(pi.Density*float64(t.Rows*t.Cols) + 0.5)
		if n < 1 {
			n = 1
		}
		total += fault.InjectMixedRegion(x, n, 0.1, 0.5, 3, t.Rows, t.Cols, rng)
	}
	chip.InvalidateAll()
	return total
}

func resetGradAbs(ctx *remap.Context, net *nn.Network, mvm map[string]bool) {
	for _, p := range net.Params() {
		layer := strings.TrimSuffix(p.Name, ".w")
		if layer == p.Name || !mvm[layer] {
			continue
		}
		g := ctx.GradAbs[layer]
		if g == nil || !g.SameShape(p.W) {
			ctx.GradAbs[layer] = tensor.New(p.W.Shape...)
		} else {
			g.Zero()
		}
	}
}

func accumulateGradAbs(ctx *remap.Context, net *nn.Network, mvm map[string]bool) {
	for _, p := range net.Params() {
		layer := strings.TrimSuffix(p.Name, ".w")
		if layer == p.Name || !mvm[layer] {
			continue
		}
		acc := ctx.GradAbs[layer]
		for i, v := range p.Grad.Data {
			if v < 0 {
				acc.Data[i] -= v
			} else {
				acc.Data[i] += v
			}
		}
	}
}
