package fault

import (
	"math"
	"testing"

	"remapd/internal/tensor"
)

func TestEnduranceCDFProperties(t *testing.T) {
	m := NewEnduranceModel()
	if m.cdf(0) != 0 {
		t.Fatal("zero writes must give zero failure probability")
	}
	prev := 0.0
	for w := 100.0; w <= 10000; w += 100 {
		p := m.cdf(w)
		if p < prev {
			t.Fatalf("CDF must be monotone at %v", w)
		}
		if p < 0 || p > 1 {
			t.Fatalf("CDF out of range: %v", p)
		}
		prev = p
	}
	// At the characteristic life, 1−1/e of cells have failed.
	if got := m.cdf(m.CharacteristicLife); math.Abs(got-(1-1/math.E)) > 1e-12 {
		t.Fatalf("CDF(λ) = %v, want 1−1/e", got)
	}
}

func TestExpectedFailures(t *testing.T) {
	m := NewEnduranceModel()
	if m.ExpectedFailures(1000, 0) != 0 {
		t.Fatal("no writes, no failures")
	}
	e := m.ExpectedFailures(1000, uint64(m.CharacteristicLife))
	if e < 600 || e > 650 {
		t.Fatalf("expected failures at λ: %v, want ≈632", e)
	}
}

func TestEnduranceApplyFollowsWriteAsymmetry(t *testing.T) {
	rng := tensor.NewRNG(1)
	xbars := newFarm(10, 64)
	// Crossbar 3 is written heavily, the rest lightly.
	for i := 0; i < 3000; i++ {
		xbars[3].RecordWrite()
	}
	for _, x := range xbars {
		if x.ID != 3 {
			for i := 0; i < 10; i++ {
				x.RecordWrite()
			}
		}
	}
	m := NewEnduranceModel()
	n := m.Apply(xbars, rng)
	if n == 0 {
		t.Fatal("wear-out must produce failures")
	}
	heavy := xbars[3].FaultCount()
	light := 0
	for _, x := range xbars {
		if x.ID != 3 {
			light += x.FaultCount()
		}
	}
	if heavy <= light {
		t.Fatalf("heavily written crossbar must dominate: heavy=%d vs all-light=%d", heavy, light)
	}
}

func TestEnduranceApplyIsIncremental(t *testing.T) {
	rng := tensor.NewRNG(2)
	xbars := newFarm(1, 64)
	for i := 0; i < 1500; i++ {
		xbars[0].RecordWrite()
	}
	m := NewEnduranceModel()
	first := m.Apply(xbars, rng)
	// No new writes → no new failures.
	if again := m.Apply(xbars, rng); again != 0 {
		t.Fatalf("idempotent call injected %d", again)
	}
	// More writes → more failures.
	for i := 0; i < 1500; i++ {
		xbars[0].RecordWrite()
	}
	second := m.Apply(xbars, rng)
	if second == 0 {
		t.Fatalf("additional wear must fail more cells (first=%d)", first)
	}
	if xbars[0].FaultCount() != first+second {
		t.Fatal("fault count must equal total injected")
	}
}

func TestEnduranceReset(t *testing.T) {
	rng := tensor.NewRNG(3)
	xbars := newFarm(1, 32)
	for i := 0; i < 2000; i++ {
		xbars[0].RecordWrite()
	}
	m := NewEnduranceModel()
	m.Apply(xbars, rng)
	m.Reset()
	// After reset the same write count is re-applied from scratch.
	if n := m.Apply(xbars, rng); n == 0 {
		t.Fatal("reset must forget the applied watermark")
	}
}

func TestEnduranceSA1Fraction(t *testing.T) {
	rng := tensor.NewRNG(4)
	xbars := newFarm(20, 64)
	for _, x := range xbars {
		for i := 0; i < 4000; i++ {
			x.RecordWrite()
		}
	}
	m := NewEnduranceModel()
	m.Apply(xbars, rng)
	s := Collect(xbars)
	if s.TotalFaults < 1000 {
		t.Fatalf("expected heavy wear, got %d faults", s.TotalFaults)
	}
	ratio := float64(s.SA1) / float64(s.TotalFaults)
	if math.Abs(ratio-0.10) > 0.03 {
		t.Fatalf("SA1 fraction %v, want ≈0.10", ratio)
	}
}
