package fault

import (
	"math"

	"remapd/internal/obs"
	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// EnduranceModel is the physical alternative to PostModel's phenomenological
// wear-out: each cell has a write-cycle lifetime drawn from a Weibull
// distribution (the standard ReRAM endurance model, Grossi et al. [4]), and
// a cell fails — becomes a stuck-at fault — once the crossbar's accumulated
// writes exceed its lifetime. Because only mapped crossbars are written
// (weight updates + BIST background writes), the non-uniform wear the paper
// describes emerges from the simulation itself rather than from a sampling
// heuristic.
//
// Lifetimes are compressed for reproduction scale: real devices endure
// 10⁶–10¹² writes over months of training; the CharacteristicLife default
// puts the onset of wear-out within a few simulated epochs.
type EnduranceModel struct {
	// CharacteristicLife is the Weibull scale λ in array writes: at
	// w = λ, 63% of cells whose lifetime ended have failed.
	CharacteristicLife float64
	// Shape is the Weibull k (k > 1: wear-out dominated failures).
	Shape float64
	// SA1Fraction of new failures are SA1 (rest SA0), matching the 9:1
	// composition of endurance failures.
	SA1Fraction float64

	// applied tracks, per crossbar ID, the write count up to which
	// failures have already been materialised.
	applied map[int]uint64

	// Obs, when non-nil, receives a WearEvent per crossbar that actually
	// materialised new faults, stamped with SimEpoch (set by the trainer
	// before each Apply). The write watermark in the event is the
	// crossbar's cumulative write count — the endurance exposure metric.
	Obs      obs.Recorder
	SimEpoch int
}

// NewEnduranceModel returns the compressed-lifetime default.
func NewEnduranceModel() *EnduranceModel {
	return &EnduranceModel{
		CharacteristicLife: 2000,
		Shape:              2.0,
		SA1Fraction:        0.10,
		applied:            make(map[int]uint64),
	}
}

// cdf is the Weibull failure probability after w writes.
func (m *EnduranceModel) cdf(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(w/m.CharacteristicLife, m.Shape))
}

// ExpectedFailures returns the expected number of failed cells for a
// crossbar after w writes.
func (m *EnduranceModel) ExpectedFailures(cells int, w uint64) float64 {
	return float64(cells) * m.cdf(float64(w))
}

// Apply materialises the failures implied by each crossbar's write counter
// since the last call and returns the number of new faults injected. New
// failures are placed uniformly (endurance wear is not spatially
// clustered, unlike manufacturing defects).
func (m *EnduranceModel) Apply(xbars []*reram.Crossbar, rng *tensor.RNG) int {
	total := 0
	for _, x := range xbars {
		prev := m.applied[x.ID]
		now := x.Writes()
		if now <= prev {
			continue
		}
		m.applied[x.ID] = now
		// Incremental expected failures over the healthy population.
		pPrev, pNow := m.cdf(float64(prev)), m.cdf(float64(now))
		if pNow <= pPrev {
			continue
		}
		// Hazard over survivors: among cells alive at prev, the fraction
		// failing by now.
		hazard := (pNow - pPrev) / (1 - pPrev)
		healthy := x.Cells() - x.FaultCount()
		expect := hazard * float64(healthy)
		// Sample the integer count: floor + Bernoulli remainder.
		n := int(expect)
		if rng.Float64() < expect-float64(n) {
			n++
		}
		injected := InjectMixed(x, n, m.SA1Fraction, 0, 0, rng)
		total += injected
		if m.Obs != nil && injected > 0 {
			m.Obs.Emit(&obs.WearEvent{Epoch: m.SimEpoch, Xbar: x.ID, Writes: now, NewFaults: injected})
		}
	}
	return total
}

// Reset forgets the applied-write bookkeeping (fresh deployment).
func (m *EnduranceModel) Reset() { m.applied = make(map[int]uint64) }

// AppliedWrites returns a copy of the per-crossbar write counts up to which
// failures have already been materialised (checkpoint snapshot).
func (m *EnduranceModel) AppliedWrites() map[int]uint64 {
	out := make(map[int]uint64, len(m.applied))
	for id, w := range m.applied {
		out[id] = w
	}
	return out
}

// RestoreAppliedWrites replaces the bookkeeping with a checkpointed copy,
// so a resumed run materialises only the wear accrued after the snapshot.
func (m *EnduranceModel) RestoreAppliedWrites(applied map[int]uint64) {
	m.applied = make(map[int]uint64, len(applied))
	for id, w := range applied {
		m.applied[id] = w
	}
}
