// Package fault implements the stuck-at-fault injection profiles of the
// paper's evaluation: a clustered, non-uniform pre-deployment profile
// (manufacturing defects) and an epoch-by-epoch post-deployment model
// (endurance wear-out), with the paper's SA0:SA1 = 9:1 composition.
package fault

import (
	"math"
	"sort"

	"remapd/internal/reram"
	"remapd/internal/tensor"
)

// PreProfile describes the pre-deployment (manufacturing) fault
// distribution. Per the paper's setup: 20% of crossbars are "hot" with a
// fault density drawn from 0.4–1%, the remaining 80% draw from 0–0.4%, and
// roughly two-thirds of faulty cells cluster spatially (Chen et al. [16]).
type PreProfile struct {
	// HighFraction is the fraction of crossbars with high fault density.
	HighFraction float64
	// HighDensity is the [lo, hi) density range of hot crossbars.
	HighDensity [2]float64
	// LowDensity is the [lo, hi) density range of the remaining crossbars.
	LowDensity [2]float64
	// SA1Fraction is the fraction of faults that are SA1 (paper: 1/10).
	SA1Fraction float64
	// ClusterFraction is the fraction of faults placed in spatial clusters.
	ClusterFraction float64
	// ClusterSigma is the cluster spread in cells.
	ClusterSigma float64
}

// DefaultPreProfile returns the paper's pre-deployment configuration.
func DefaultPreProfile() PreProfile {
	return PreProfile{
		HighFraction:    0.20,
		HighDensity:     [2]float64{0.004, 0.010},
		LowDensity:      [2]float64{0.000, 0.004},
		SA1Fraction:     0.10,
		ClusterFraction: 2.0 / 3.0,
		ClusterSigma:    3,
	}
}

// Inject applies the profile to every crossbar. Hot crossbars are chosen
// uniformly at random; each crossbar then receives round(density·cells) new
// faults. The number of injected faults is returned.
func (p PreProfile) Inject(xbars []*reram.Crossbar, rng *tensor.RNG) int {
	nHot := int(p.HighFraction*float64(len(xbars)) + 0.5)
	perm := rng.Perm(len(xbars))
	hot := make(map[int]bool, nHot)
	for i := 0; i < nHot; i++ {
		hot[perm[i]] = true
	}
	total := 0
	for i, x := range xbars {
		r := p.LowDensity
		if hot[i] {
			r = p.HighDensity
		}
		density := rng.Range(r[0], r[1])
		count := int(density*float64(x.Cells()) + 0.5)
		total += InjectMixed(x, count, p.SA1Fraction, p.ClusterFraction, p.ClusterSigma, rng)
	}
	return total
}

// PostModel describes the post-deployment (endurance) fault process: after
// each training epoch, CellFraction (the paper's m%) new faults appear on
// CrossbarFraction (n%) of the crossbars. WriteWeighted selects victim
// crossbars preferentially by accumulated write count, modelling the
// paper's observation that frequently-written crossbars wear out faster;
// with it disabled victims are uniform.
type PostModel struct {
	CrossbarFraction float64 // n ∈ [0,1]
	CellFraction     float64 // m ∈ [0,1]
	SA1Fraction      float64
	ClusterFraction  float64
	ClusterSigma     float64
	WriteWeighted    bool
}

// DefaultPostModel returns the paper's headline post-deployment scenario:
// 0.5% new faults on 1% of the crossbars per epoch.
func DefaultPostModel() PostModel {
	return PostModel{
		CrossbarFraction: 0.01,
		CellFraction:     0.005,
		SA1Fraction:      0.10,
		ClusterFraction:  0.5,
		ClusterSigma:     3,
		WriteWeighted:    true,
	}
}

// InjectEpoch applies one epoch of wear-out and returns the number of new
// faults. At least one crossbar is always affected when CrossbarFraction>0
// and there is at least one crossbar, matching the paper's "new faults
// every epoch" worst-case framing.
func (p PostModel) InjectEpoch(xbars []*reram.Crossbar, rng *tensor.RNG) int {
	if len(xbars) == 0 || p.CrossbarFraction <= 0 || p.CellFraction <= 0 {
		return 0
	}
	nVictims := int(p.CrossbarFraction*float64(len(xbars)) + 0.5)
	if nVictims < 1 {
		nVictims = 1
	}
	if nVictims > len(xbars) {
		nVictims = len(xbars)
	}
	victims := p.pickVictims(xbars, nVictims, rng)
	total := 0
	for _, vi := range victims {
		x := xbars[vi]
		count := int(p.CellFraction*float64(x.Cells()) + 0.5)
		if count < 1 {
			count = 1
		}
		total += InjectMixed(x, count, p.SA1Fraction, p.ClusterFraction, p.ClusterSigma, rng)
	}
	return total
}

// pickVictims selects distinct crossbar indices, either uniformly or
// proportionally to (1 + writes).
func (p PostModel) pickVictims(xbars []*reram.Crossbar, n int, rng *tensor.RNG) []int {
	if !p.WriteWeighted {
		return rng.Perm(len(xbars))[:n]
	}
	type wt struct {
		idx int
		key float64
	}
	// Weighted sampling without replacement via exponential-keys
	// ("A-Res" reservoir weights): key = −ln(U)/w, take the n smallest.
	keys := make([]wt, len(xbars))
	for i, x := range xbars {
		w := 1 + float64(x.Writes())
		u := rng.Float64()
		if u <= 0 {
			u = 1e-12
		}
		keys[i] = wt{idx: i, key: -math.Log(u) / w}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = keys[i].idx
	}
	return out
}

// InjectMixed places count new faults on x, a ClusterFraction of them in a
// Gaussian cluster around a random centre and the rest uniformly. Cells
// that are already faulty are skipped (attempts are bounded, so the
// realised count can fall slightly short on nearly-saturated arrays).
// SA1Fraction of the injected faults are SA1; the rest SA0. Returns the
// number actually injected.
func InjectMixed(x *reram.Crossbar, count int, sa1Fraction, clusterFraction, clusterSigma float64, rng *tensor.RNG) int {
	return InjectMixedRegion(x, count, sa1Fraction, clusterFraction, clusterSigma, x.Size, x.Size, rng)
}

// InjectMixedRegion is InjectMixed restricted to the top-left rows×cols
// region of the array — the cells a partially-filled crossbar actually
// uses. Targeted experiments (e.g. the paper's Fig. 5 phase study, which
// assumes fully-utilised crossbars) inject relative to the mapped block so
// the weight-level fault rate matches the nominal density.
func InjectMixedRegion(x *reram.Crossbar, count int, sa1Fraction, clusterFraction, clusterSigma float64, rows, cols int, rng *tensor.RNG) int {
	if count <= 0 {
		return 0
	}
	if rows > x.Size {
		rows = x.Size
	}
	if cols > x.Size {
		cols = x.Size
	}
	nCluster := int(clusterFraction*float64(count) + 0.5)
	injected := 0

	place := func(r, c int) bool {
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return false
		}
		if x.State(r, c) != reram.Healthy {
			return false
		}
		s := reram.SA0
		if rng.Float64() < sa1Fraction {
			s = reram.SA1
		}
		x.InjectFault(r, c, s, rng)
		injected++
		return true
	}

	// Clustered portion: Gaussian around a random centre.
	if nCluster > 0 {
		cr, cc := rng.Intn(rows), rng.Intn(cols)
		placed, attempts := 0, 0
		for placed < nCluster && attempts < 50*nCluster+100 {
			attempts++
			r := cr + int(rng.NormFloat64()*clusterSigma+0.5)
			c := cc + int(rng.NormFloat64()*clusterSigma+0.5)
			if place(r, c) {
				placed++
			}
		}
	}

	// Uniform remainder.
	remaining := count - injected
	attempts := 0
	for remaining > 0 && attempts < 50*count+100 {
		attempts++
		if place(rng.Intn(rows), rng.Intn(cols)) {
			remaining--
		}
	}
	return injected
}

// Stats summarises the fault state of a set of crossbars.
type Stats struct {
	Crossbars    int
	TotalCells   int
	TotalFaults  int
	SA0, SA1     int
	MeanDensity  float64
	MaxDensity   float64
	FaultyXbars  int // crossbars with ≥1 fault
	HottestXbarI int // index of the highest-density crossbar (-1 if none)
}

// Collect computes Stats over xbars.
func Collect(xbars []*reram.Crossbar) Stats {
	s := Stats{Crossbars: len(xbars), HottestXbarI: -1}
	for i, x := range xbars {
		s.TotalCells += x.Cells()
		f := x.FaultCount()
		s.TotalFaults += f
		s.SA0 += x.CountState(reram.SA0)
		s.SA1 += x.CountState(reram.SA1)
		if f > 0 {
			s.FaultyXbars++
		}
		d := x.FaultDensity()
		if d > s.MaxDensity {
			s.MaxDensity = d
			s.HottestXbarI = i
		}
	}
	if s.TotalCells > 0 {
		s.MeanDensity = float64(s.TotalFaults) / float64(s.TotalCells)
	}
	return s
}
