package fault

import (
	"math"
	"testing"
	"testing/quick"

	"remapd/internal/reram"
	"remapd/internal/tensor"
)

func newFarm(n, size int) []*reram.Crossbar {
	p := reram.DefaultDeviceParams()
	p.CrossbarSize = size
	xbars := make([]*reram.Crossbar, n)
	for i := range xbars {
		xbars[i] = reram.NewCrossbar(i, p)
	}
	return xbars
}

func TestPreProfileDensityRanges(t *testing.T) {
	rng := tensor.NewRNG(1)
	xbars := newFarm(100, 128)
	prof := DefaultPreProfile()
	prof.Inject(xbars, rng)

	hot, cold := 0, 0
	for _, x := range xbars {
		d := x.FaultDensity()
		switch {
		case d > 0.010+1e-4:
			t.Fatalf("density %v above the 1%% manufacturing cap", d)
		case d >= 0.004:
			hot++
		default:
			cold++
		}
	}
	// ~20 of 100 crossbars should be hot (allow sampling slack; some hot
	// draws near the 0.4% boundary are indistinguishable from cold).
	if hot < 8 || hot > 32 {
		t.Fatalf("hot crossbars = %d, want ≈20", hot)
	}
}

func TestPreProfileSA0SA1Ratio(t *testing.T) {
	rng := tensor.NewRNG(2)
	xbars := newFarm(200, 128)
	DefaultPreProfile().Inject(xbars, rng)
	s := Collect(xbars)
	if s.TotalFaults == 0 {
		t.Fatal("profile injected nothing")
	}
	ratio := float64(s.SA1) / float64(s.TotalFaults)
	if math.Abs(ratio-0.10) > 0.03 {
		t.Fatalf("SA1 fraction %v, want ≈0.10 (9:1 SA0:SA1)", ratio)
	}
}

func TestPostModelInjectsEveryEpoch(t *testing.T) {
	rng := tensor.NewRNG(3)
	xbars := newFarm(100, 128)
	pm := DefaultPostModel()
	before := Collect(xbars).TotalFaults
	for e := 0; e < 10; e++ {
		n := pm.InjectEpoch(xbars, rng)
		if n <= 0 {
			t.Fatalf("epoch %d injected %d faults, want > 0", e, n)
		}
	}
	after := Collect(xbars).TotalFaults
	if after <= before {
		t.Fatal("post-deployment faults must accumulate")
	}
}

func TestPostModelVictimCount(t *testing.T) {
	rng := tensor.NewRNG(4)
	xbars := newFarm(100, 128)
	pm := PostModel{CrossbarFraction: 0.02, CellFraction: 0.01, SA1Fraction: 0.1}
	pm.InjectEpoch(xbars, rng)
	s := Collect(xbars)
	if s.FaultyXbars != 2 {
		t.Fatalf("faulty crossbars = %d, want 2 (n=2%% of 100)", s.FaultyXbars)
	}
	// Each victim gets 1% of 128² = 164 faults.
	cells := 128 * 128
	want := int(0.01*float64(cells) + 0.5)
	perXbar := s.TotalFaults / s.FaultyXbars
	if perXbar < want-5 || perXbar > want+5 {
		t.Fatalf("faults per victim = %d, want ≈%d", perXbar, want)
	}
}

func TestPostModelWriteWeightedPrefersWornCrossbars(t *testing.T) {
	rng := tensor.NewRNG(5)
	xbars := newFarm(50, 64)
	// Crossbar 7 has been written 10000× more than the others.
	for i := 0; i < 10000; i++ {
		xbars[7].RecordWrite()
	}
	pm := PostModel{CrossbarFraction: 0.02, CellFraction: 0.01, SA1Fraction: 0.1, WriteWeighted: true}
	hits := 0
	const rounds = 50
	for r := 0; r < rounds; r++ {
		for _, x := range xbars {
			x.HealAll()
		}
		pm.InjectEpoch(xbars, rng)
		if xbars[7].FaultCount() > 0 {
			hits++
		}
	}
	if hits < rounds*8/10 {
		t.Fatalf("worn crossbar chosen in %d/%d rounds; write weighting ineffective", hits, rounds)
	}
}

func TestPostModelZeroConfigIsNoop(t *testing.T) {
	rng := tensor.NewRNG(6)
	xbars := newFarm(10, 32)
	pm := PostModel{}
	if n := pm.InjectEpoch(xbars, rng); n != 0 {
		t.Fatalf("zero model injected %d", n)
	}
}

func TestInjectMixedCount(t *testing.T) {
	rng := tensor.NewRNG(7)
	xbars := newFarm(1, 64)
	n := InjectMixed(xbars[0], 100, 0.1, 0.5, 3, rng)
	if n != 100 {
		t.Fatalf("injected %d, want 100", n)
	}
	if xbars[0].FaultCount() != 100 {
		t.Fatalf("crossbar reports %d faults", xbars[0].FaultCount())
	}
}

func TestInjectMixedClusteringIsSpatial(t *testing.T) {
	rng := tensor.NewRNG(8)
	xbars := newFarm(1, 128)
	InjectMixed(xbars[0], 120, 0.1, 1.0, 2.5, rng) // fully clustered
	x := xbars[0]
	// Compute the spatial spread of faults: for a pure cluster with σ=2.5
	// it must be far below the uniform expectation (~52 for 128 cells).
	var rs, cs []float64
	for r := 0; r < x.Size; r++ {
		for c := 0; c < x.Size; c++ {
			if x.State(r, c) != reram.Healthy {
				rs = append(rs, float64(r))
				cs = append(cs, float64(c))
			}
		}
	}
	sd := func(v []float64) float64 {
		var m float64
		for _, x := range v {
			m += x
		}
		m /= float64(len(v))
		var s float64
		for _, x := range v {
			s += (x - m) * (x - m)
		}
		return math.Sqrt(s / float64(len(v)))
	}
	if sd(rs) > 10 || sd(cs) > 10 {
		t.Fatalf("clustered faults too spread: σr=%.1f σc=%.1f", sd(rs), sd(cs))
	}
}

// Property: InjectMixed never exceeds the requested count and never places
// a fault on an already-faulty cell (fault count equals injected total).
func TestInjectMixedNoDoubleCountProperty(t *testing.T) {
	f := func(seed uint32, c1, c2 uint8) bool {
		rng := tensor.NewRNG(uint64(seed))
		xbars := newFarm(1, 32)
		n1 := InjectMixed(xbars[0], int(c1)%200, 0.1, 0.6, 3, rng)
		n2 := InjectMixed(xbars[0], int(c2)%200, 0.1, 0.6, 3, rng)
		return xbars[0].FaultCount() == n1+n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectStats(t *testing.T) {
	rng := tensor.NewRNG(9)
	xbars := newFarm(3, 32)
	InjectMixed(xbars[1], 10, 0.5, 0, 0, rng)
	InjectMixed(xbars[2], 40, 0.0, 0, 0, rng)
	s := Collect(xbars)
	if s.Crossbars != 3 || s.TotalCells != 3*1024 {
		t.Fatalf("collect counts wrong: %+v", s)
	}
	if s.TotalFaults != 50 || s.FaultyXbars != 2 {
		t.Fatalf("fault totals wrong: %+v", s)
	}
	if s.HottestXbarI != 2 {
		t.Fatalf("hottest = %d, want 2", s.HottestXbarI)
	}
	if math.Abs(s.MeanDensity-50.0/3072) > 1e-12 {
		t.Fatalf("mean density %v", s.MeanDensity)
	}
	if s.SA0+s.SA1 != 50 {
		t.Fatalf("state split %d+%d", s.SA0, s.SA1)
	}
}
