// Package cli factors out the flag surface the remapd command-line tools
// share. Before it existed, remapd-train, remapd-report and remapd-sweep
// each declared their own copies of the scheduling/observation flags
// (workers, checkpoint-dir, metrics-dir, debug-addr, …) with drifting
// help strings; the dist worker mode would have been a fourth copy. The
// Options struct binds each flag group once and knows how to apply
// itself to an experiments.Scale, start the debug server, build a dist
// executor, and serve the worker loop.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"remapd/internal/checkpoint"
	"remapd/internal/dist"
	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// Options is the shared command-line surface. Zero value = all features
// off; each Bind* method registers one coherent flag group, so a tool
// picks exactly the groups it supports.
type Options struct {
	// Workers caps parallelism: runner cells for grid tools, GOMAXPROCS
	// for single-run tools and workers (-j).
	Workers int
	// CheckpointDir enables crash-safe per-epoch checkpoints (-checkpoint-dir).
	CheckpointDir string
	// MetricsDir enables per-cell simulation telemetry (-metrics-dir).
	MetricsDir string
	// DebugAddr serves pprof/expvar when non-empty (-debug-addr).
	DebugAddr string
	// Seed is the single-run training seed (-seed).
	Seed uint64
	// Quiet suppresses per-epoch progress lines (-quiet).
	Quiet bool
	// Progress logs one line per completed grid cell (-progress).
	Progress bool
	// Dist fans cells out to this many worker processes (-dist).
	Dist int
	// Worker switches the tool into dist worker mode (-worker).
	Worker bool
}

// Bind registers the base observation/scheduling group every tool
// shares: -j, -checkpoint-dir, -metrics-dir, -debug-addr.
func (o *Options) Bind(fs *flag.FlagSet) {
	fs.IntVar(&o.Workers, "j", 0, "parallelism cap: experiment cells for grid tools, GOMAXPROCS for single runs and workers (0 = all cores)")
	fs.StringVar(&o.CheckpointDir, "checkpoint-dir", "", "persist per-epoch checkpoints here; an interrupted run resumes bit-identically")
	fs.StringVar(&o.MetricsDir, "metrics-dir", "", "record simulation telemetry (metrics.json + events.jsonl) into this directory")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve pprof and expvar on this address (e.g. localhost:6060)")
}

// BindRun registers the single-run group: -seed, -quiet.
func (o *Options) BindRun(fs *flag.FlagSet) {
	fs.Uint64Var(&o.Seed, "seed", 1, "seed")
	fs.BoolVar(&o.Quiet, "quiet", false, "suppress per-epoch progress lines (the final summary still prints)")
}

// BindGrid registers the grid group: -progress.
func (o *Options) BindGrid(fs *flag.FlagSet) {
	fs.BoolVar(&o.Progress, "progress", false, "log one line per completed experiment cell")
}

// BindDist registers the coordinator side of distribution: -dist.
func (o *Options) BindDist(fs *flag.FlagSet) {
	fs.IntVar(&o.Dist, "dist", 0, "fan experiment cells out to this many worker processes (0 = run in-process); results are byte-identical either way")
}

// BindWorker registers the worker side of distribution: -worker.
func (o *Options) BindWorker(fs *flag.FlagSet) {
	fs.BoolVar(&o.Worker, "worker", false, "run as a dist worker: read cell specs from stdin, write results to stdout (used by -dist coordinators)")
}

// Validate rejects incoherent combinations.
func (o *Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("cli: -j must be >= 0, got %d", o.Workers)
	}
	if o.Dist < 0 {
		return fmt.Errorf("cli: -dist must be >= 0, got %d", o.Dist)
	}
	if o.Dist > 0 && o.Worker {
		return errors.New("cli: -dist and -worker are mutually exclusive (a worker never coordinates)")
	}
	return nil
}

// StartDebug starts the pprof/expvar server when -debug-addr is set,
// returning the bound address ("" when disabled) for the tool to print.
func (o *Options) StartDebug() (string, error) {
	if o.DebugAddr == "" {
		return "", nil
	}
	return obs.StartDebugServer(o.DebugAddr)
}

// Apply wires the options into a grid Scale: worker bound, progress
// sink, checkpoint store, metrics sink + harness profile, and (with
// -dist) the process fan-out executor. It returns the profile (nil
// without -metrics-dir) and a cleanup that must run before exit — it
// shuts worker processes down gracefully. logf receives store warnings
// and progress lines.
func (o *Options) Apply(s *experiments.Scale, logf experiments.Logf) (*obs.Profile, func(), error) {
	cleanup := func() {}
	s.Workers = o.Workers
	if o.Progress {
		s.Progress = logf
	}
	if o.CheckpointDir != "" {
		store, err := checkpoint.NewStore(o.CheckpointDir, logf)
		if err != nil {
			return nil, cleanup, err
		}
		s.Checkpoints = store
	}
	var prof *obs.Profile
	if o.MetricsDir != "" {
		sink, err := obs.NewSink(o.MetricsDir)
		if err != nil {
			return nil, cleanup, err
		}
		s.Metrics = sink
		prof = obs.NewProfile()
		s.Prof = prof
	}
	if o.Dist > 0 {
		exec, err := o.NewExecutor(logf)
		if err != nil {
			return nil, cleanup, err
		}
		// Runner slots = worker processes; each process parallelises
		// internally via its -j share of the cores.
		s.Workers = o.Dist
		s.Exec = exec
		cleanup = exec.Close
	}
	return prof, cleanup, nil
}

// NewExecutor builds the dist executor for -dist N: N re-invocations of
// this binary in -worker mode, sharing the coordinator's checkpoint and
// metrics directories, each capped to a fair share of the cores.
func (o *Options) NewExecutor(logf experiments.Logf) (*dist.Executor, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cli: locate own binary for -dist workers: %w", err)
	}
	cmd := []string{exe, "-worker", "-j", strconv.Itoa(workerProcs(o.Dist))}
	if o.CheckpointDir != "" {
		cmd = append(cmd, "-checkpoint-dir", o.CheckpointDir)
	}
	if o.MetricsDir != "" {
		cmd = append(cmd, "-metrics-dir", o.MetricsDir)
	}
	return &dist.Executor{Command: cmd, Logf: logf}, nil
}

// SetGOMAXPROCS applies a -j cap to the Go scheduler for single-run
// tools (grid tools cap runner slots instead). n <= 0 leaves the
// default (all cores) alone.
func SetGOMAXPROCS(n int) {
	if n > 0 {
		runtime.GOMAXPROCS(n)
	}
}

// workerProcs splits the machine's cores evenly across n workers.
func workerProcs(n int) int {
	if n <= 0 {
		return 0
	}
	per := runtime.NumCPU() / n
	if per < 1 {
		per = 1
	}
	return per
}

// ServeWorker runs the dist worker loop on stdin/stdout with the
// options' checkpoint/metrics directories and -j GOMAXPROCS cap. logf
// receives checkpoint-store warnings (they go to the coordinator's
// stderr, since the worker inherits it).
func (o *Options) ServeWorker(ctx context.Context, logf experiments.Logf) error {
	if o.Workers > 0 {
		runtime.GOMAXPROCS(o.Workers)
	}
	var opts dist.WorkerOptions
	if o.CheckpointDir != "" {
		store, err := checkpoint.NewStore(o.CheckpointDir, logf)
		if err != nil {
			return err
		}
		opts.Checkpoints = store
	}
	if o.MetricsDir != "" {
		sink, err := obs.NewSink(o.MetricsDir)
		if err != nil {
			return err
		}
		opts.Metrics = sink
	}
	return dist.Serve(ctx, os.Stdin, os.Stdout, opts)
}
