// Package cli factors out the flag surface the remapd command-line tools
// share. Before it existed, remapd-train, remapd-report and remapd-sweep
// each declared their own copies of the scheduling/observation flags
// (workers, checkpoint-dir, metrics-dir, debug-addr, …) with drifting
// help strings; the dist worker mode would have been a fourth copy. The
// Options struct binds each flag group once and knows how to apply
// itself to an experiments.Scale, start the debug server, build a dist
// executor, and serve the worker loop.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"

	"remapd/internal/checkpoint"
	"remapd/internal/dist"
	"remapd/internal/experiments"
	"remapd/internal/obs"
)

// Options is the shared command-line surface. Zero value = all features
// off; each Bind* method registers one coherent flag group, so a tool
// picks exactly the groups it supports.
type Options struct {
	// Workers caps parallelism: runner cells for grid tools, GOMAXPROCS
	// for single-run tools and workers (-j).
	Workers int
	// CheckpointDir enables crash-safe per-epoch checkpoints (-checkpoint-dir).
	CheckpointDir string
	// MetricsDir enables per-cell simulation telemetry (-metrics-dir).
	MetricsDir string
	// DebugAddr serves pprof/expvar when non-empty (-debug-addr).
	DebugAddr string
	// Seed is the single-run training seed (-seed).
	Seed uint64
	// Quiet suppresses per-epoch progress lines (-quiet).
	Quiet bool
	// Progress logs one line per completed grid cell (-progress).
	Progress bool
	// Dist fans cells out to this many worker processes (-dist).
	Dist int
	// Listen serves a TCP fleet coordinator on this address (-listen);
	// cells run on whatever workers dial in.
	Listen string
	// FleetMax caps concurrently in-flight cells across the fleet
	// (-fleet, 0 = NumCPU).
	FleetMax int
	// Worker switches the tool into dist worker mode (-worker).
	Worker bool
	// Connect points a -worker at a fleet coordinator instead of
	// stdin/stdout pipes (-connect host:port).
	Connect string
	// Slots is the concurrent-cell capacity a fleet worker advertises
	// (-slots).
	Slots int
	// ChaosSever arms the fault injector on a fleet worker's connection:
	// sever it mid-cell once this many frames have passed (-chaos-sever-after).
	// ChaosSeed seeds the injector's deterministic schedule (-chaos-seed).
	ChaosSever int
	ChaosSeed  uint64
	// StatusAddr serves the live /status JSON endpoint (plus the debug
	// surface) when non-empty (-status-addr).
	StatusAddr string
	// FleetTrace appends the structured fleet event trace (JSONL) to
	// this file (-fleet-trace): coordinator membership/scheduling events
	// with -listen, connection lifecycle events with -worker -connect.
	FleetTrace string
	// ServeAddr serves the HTTP classification endpoint when non-empty
	// (-serve-addr).
	ServeAddr string
	// BatchMax closes a serving batch at this many requests (-batch-max).
	BatchMax int
	// BatchWait is the serving batch max-wait deadline in simulated ticks
	// (-batch-wait).
	BatchWait int
	// BISTEvery runs the online BIST scan every this many served requests
	// per chip (-bist-every, 0 = off).
	BISTEvery int
	// TrafficSeed seeds the deterministic traffic generator (-traffic-seed).
	TrafficSeed uint64

	// status is the registry Apply builds for -status-addr; sections are
	// registered by the runner and the fleet as they come up.
	status *obs.Status
}

// Bind registers the base observation/scheduling group every tool
// shares: -j, -checkpoint-dir, -metrics-dir, -debug-addr.
func (o *Options) Bind(fs *flag.FlagSet) {
	fs.IntVar(&o.Workers, "j", 0, "parallelism cap: experiment cells for grid tools, GOMAXPROCS for single runs and workers (0 = all cores)")
	fs.StringVar(&o.CheckpointDir, "checkpoint-dir", "", "persist per-epoch checkpoints here; an interrupted run resumes bit-identically")
	fs.StringVar(&o.MetricsDir, "metrics-dir", "", "record simulation telemetry (metrics.json + events.jsonl) into this directory")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve pprof and expvar on this address (e.g. localhost:6060)")
}

// BindRun registers the single-run group: -seed, -quiet.
func (o *Options) BindRun(fs *flag.FlagSet) {
	fs.Uint64Var(&o.Seed, "seed", 1, "seed")
	fs.BoolVar(&o.Quiet, "quiet", false, "suppress per-epoch progress lines (the final summary still prints)")
}

// BindGrid registers the grid group: -progress, -status-addr.
func (o *Options) BindGrid(fs *flag.FlagSet) {
	fs.BoolVar(&o.Progress, "progress", false, "log one line per completed experiment cell")
	o.bindStatusAddr(fs)
}

// BindServe registers the inference-serving group: -serve-addr,
// -batch-max, -batch-wait, -bist-every, -traffic-seed, -status-addr.
func (o *Options) BindServe(fs *flag.FlagSet) {
	fs.StringVar(&o.ServeAddr, "serve-addr", "", "serve the HTTP classification endpoint (POST /classify) on this address; empty = driver mode only")
	fs.IntVar(&o.BatchMax, "batch-max", 8, "close a serving batch when this many requests are queued")
	fs.IntVar(&o.BatchWait, "batch-wait", 16, "close a partial serving batch once its oldest request has waited this many simulated ticks")
	fs.IntVar(&o.BISTEvery, "bist-every", 256, "run the online BIST scan (and, on failure, the policy's maintenance step) every this many served requests per chip (0 = off)")
	fs.Uint64Var(&o.TrafficSeed, "traffic-seed", 1, "seed for the deterministic traffic generator driving -requests")
	o.bindStatusAddr(fs)
}

// bindStatusAddr registers -status-addr exactly once; the grid and serve
// groups both want it and a tool may bind both on one FlagSet.
func (o *Options) bindStatusAddr(fs *flag.FlagSet) {
	if fs.Lookup("status-addr") != nil {
		return
	}
	fs.StringVar(&o.StatusAddr, "status-addr", "", "serve live run status as JSON on this address (GET /status: grid progress, per-worker fleet table, span aggregates; also pprof+expvar)")
}

// BindDist registers the coordinator side of distribution: -dist for
// the exec'd pipe fan-out, -listen/-fleet for the elastic TCP fleet.
func (o *Options) BindDist(fs *flag.FlagSet) {
	fs.IntVar(&o.Dist, "dist", 0, "fan experiment cells out to this many worker processes (0 = run in-process); results are byte-identical either way")
	fs.StringVar(&o.Listen, "listen", "", "serve a fleet coordinator on this TCP address (e.g. :7433); cells run on workers that dial in with -worker -connect, which may join and leave mid-run")
	fs.IntVar(&o.FleetMax, "fleet", 0, "with -listen: max experiment cells in flight across the fleet (0 = all cores' worth)")
	o.bindFleetTrace(fs)
}

// BindWorker registers the worker side of distribution: -worker for the
// mode switch, -connect/-slots for dialing a fleet, -chaos-* for the
// deterministic fault injector.
func (o *Options) BindWorker(fs *flag.FlagSet) {
	fs.BoolVar(&o.Worker, "worker", false, "run as a dist worker: read cell specs from stdin, write results to stdout (used by -dist coordinators)")
	fs.StringVar(&o.Connect, "connect", "", "with -worker: dial this fleet coordinator (host:port) instead of serving stdin/stdout; redials with backoff if the connection drops")
	fs.IntVar(&o.Slots, "slots", 1, "with -connect: concurrent experiment cells this worker advertises")
	fs.IntVar(&o.ChaosSever, "chaos-sever-after", 0, "with -connect: sever the connection mid-cell once this many protocol frames have passed (fault-injection testing; 0 = off)")
	fs.Uint64Var(&o.ChaosSeed, "chaos-seed", 0, "with -chaos-sever-after: seed for the injector's deterministic fault schedule")
	o.bindFleetTrace(fs)
}

// bindFleetTrace registers -fleet-trace exactly once. Both the dist and
// worker groups want it (a coordinator traces membership, a worker its
// connection lifecycle) and tools like remapd-coordinator bind both
// groups on one FlagSet, so the second registration must be a no-op
// rather than a flag redefinition panic.
func (o *Options) bindFleetTrace(fs *flag.FlagSet) {
	if fs.Lookup("fleet-trace") != nil {
		return
	}
	fs.StringVar(&o.FleetTrace, "fleet-trace", "", "append the structured fleet event trace (JSONL) to this file: join/leave/drop/requeue/stall events on a -listen coordinator, connect/disconnect/sever on a -worker -connect worker")
}

// Validate rejects incoherent combinations.
func (o *Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("cli: -j must be >= 0, got %d", o.Workers)
	}
	if o.Dist < 0 {
		return fmt.Errorf("cli: -dist must be >= 0, got %d", o.Dist)
	}
	if o.FleetMax < 0 {
		return fmt.Errorf("cli: -fleet must be >= 0, got %d", o.FleetMax)
	}
	if o.Dist > 0 && o.Worker {
		return errors.New("cli: -dist and -worker are mutually exclusive (a worker never coordinates)")
	}
	if o.Listen != "" && o.Worker {
		return errors.New("cli: -listen and -worker are mutually exclusive (a worker never coordinates)")
	}
	if o.Listen != "" && o.Dist > 0 {
		return errors.New("cli: -listen and -dist are mutually exclusive (pick the fleet or the pipe fan-out)")
	}
	if o.Connect != "" && !o.Worker {
		return errors.New("cli: -connect requires -worker")
	}
	if o.Connect != "" && o.Slots < 1 {
		return fmt.Errorf("cli: -slots must be >= 1, got %d", o.Slots)
	}
	if o.ChaosSever < 0 {
		return fmt.Errorf("cli: -chaos-sever-after must be >= 0, got %d", o.ChaosSever)
	}
	if o.ChaosSever > 0 && o.Connect == "" {
		return errors.New("cli: -chaos-sever-after only applies to a -connect fleet worker")
	}
	if o.BatchMax < 0 {
		return fmt.Errorf("cli: -batch-max must be >= 0, got %d", o.BatchMax)
	}
	if o.BatchWait < 0 {
		return fmt.Errorf("cli: -batch-wait must be >= 0, got %d", o.BatchWait)
	}
	if o.BISTEvery < 0 {
		return fmt.Errorf("cli: -bist-every must be >= 0, got %d", o.BISTEvery)
	}
	return nil
}

// StartDebug starts the pprof/expvar server when -debug-addr is set,
// returning the bound address ("" when disabled) for the tool to print.
func (o *Options) StartDebug() (string, error) {
	if o.DebugAddr == "" {
		return "", nil
	}
	return obs.StartDebugServer(o.DebugAddr)
}

// Apply wires the options into a grid Scale: worker bound, progress
// sink, checkpoint store, metrics sink + harness profile, telemetry
// (spans, /status, fleet trace), and (with -dist/-listen) the remote
// executor. It returns the profile (nil without -metrics-dir) and a
// cleanup that must run before exit — it shuts worker processes down
// gracefully and flushes the telemetry files. logf receives store
// warnings and progress lines.
func (o *Options) Apply(s *experiments.Scale, logf experiments.Logf) (*obs.Profile, func(), error) {
	var cleanups []func()
	cleanup := func() {
		// Reverse order: the executor shuts down before the trace that
		// records its teardown events is closed.
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	s.Workers = o.Workers
	if o.Progress {
		s.Progress = logf
	}
	if o.CheckpointDir != "" {
		store, err := checkpoint.NewStore(o.CheckpointDir, logf)
		if err != nil {
			return nil, cleanup, err
		}
		s.Checkpoints = store
	}
	var prof *obs.Profile
	if o.MetricsDir != "" {
		sink, err := obs.NewSink(o.MetricsDir)
		if err != nil {
			return nil, cleanup, err
		}
		s.Metrics = sink
		prof = obs.NewProfile()
		s.Prof = prof
	}
	// Spans are recorded whenever anyone can see them: the /status
	// endpoint serves live aggregates, the metrics dir persists
	// spans.json. Observation-only either way.
	if o.StatusAddr != "" || o.MetricsDir != "" {
		spans := obs.NewSpanRecorder()
		s.Spans = spans
		if o.MetricsDir != "" {
			dir := o.MetricsDir
			cleanups = append(cleanups, func() {
				if err := spans.WriteJSON(dir); err != nil && logf != nil {
					logf("cli: write spans: %v", err)
				}
			})
		}
	}
	if o.StatusAddr != "" {
		o.status = obs.NewStatus()
		s.Status = o.status
		addr, err := obs.StartStatusServer(o.StatusAddr, o.status)
		if err != nil {
			return nil, cleanup, err
		}
		if logf != nil {
			logf("status server on http://%s/status", addr)
		}
	}
	var trace *obs.FleetTrace
	if o.FleetTrace != "" {
		var err error
		trace, err = obs.NewFleetTraceFile(o.FleetTrace)
		if err != nil {
			return nil, cleanup, err
		}
		cleanups = append(cleanups, func() {
			if err := trace.Close(); err != nil && logf != nil {
				logf("cli: %v", err)
			}
		})
	}
	if o.Dist > 0 {
		exec, err := o.NewExecutor(logf)
		if err != nil {
			return nil, cleanup, err
		}
		// Runner slots = worker processes; each process parallelises
		// internally via its -j share of the cores.
		s.Workers = o.Dist
		s.Exec = exec
		cleanups = append(cleanups, exec.Close)
	}
	if o.Listen != "" {
		fleet, err := o.NewFleet(logf, trace)
		if err != nil {
			return nil, cleanup, err
		}
		// Runner slots bound the fleet-wide in-flight set; the fleet maps
		// each onto whichever connected worker has a free slot, so a
		// worker joining mid-run immediately starts pulling cells.
		inflight := o.FleetMax
		if inflight <= 0 {
			inflight = runtime.NumCPU()
		}
		s.Workers = inflight
		s.Exec = fleet
		o.status.Register("fleet", fleet.StatusSection)
		cleanups = append(cleanups, fleet.Close)
	}
	return prof, cleanup, nil
}

// NewFleet opens the -listen socket and wraps it in the elastic fleet
// executor. The returned Fleet's Close (installed as Apply's cleanup)
// asks every connected worker to shut down. trace (may be nil) receives
// the structured fleet event record; the fleet always keeps an
// in-memory trace regardless.
func (o *Options) NewFleet(logf experiments.Logf, trace *obs.FleetTrace) (*dist.Fleet, error) {
	ln, err := net.Listen("tcp", o.Listen)
	if err != nil {
		return nil, fmt.Errorf("cli: -listen %s: %w", o.Listen, err)
	}
	fleet := dist.NewFleet(ln, dist.FleetOptions{Logf: logf, Trace: trace})
	if logf != nil {
		logf("fleet coordinator listening on %s; join workers with: -worker -connect <host>%s", ln.Addr(), portSuffix(ln.Addr()))
	}
	return fleet, nil
}

// portSuffix renders ":port" for the join hint (the listen address's
// host part is usually a wildcard the worker cannot dial).
func portSuffix(addr net.Addr) string {
	if tcp, ok := addr.(*net.TCPAddr); ok {
		return fmt.Sprintf(":%d", tcp.Port)
	}
	return ""
}

// NewExecutor builds the dist executor for -dist N: N re-invocations of
// this binary in -worker mode, sharing the coordinator's checkpoint and
// metrics directories, each capped to a fair share of the cores.
func (o *Options) NewExecutor(logf experiments.Logf) (*dist.Executor, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cli: locate own binary for -dist workers: %w", err)
	}
	cmd := []string{exe, "-worker", "-j", strconv.Itoa(workerProcs(o.Dist))}
	if o.CheckpointDir != "" {
		cmd = append(cmd, "-checkpoint-dir", o.CheckpointDir)
	}
	if o.MetricsDir != "" {
		cmd = append(cmd, "-metrics-dir", o.MetricsDir)
	}
	return &dist.Executor{Command: cmd, Logf: logf}, nil
}

// SetGOMAXPROCS applies a -j cap to the Go scheduler for single-run
// tools (grid tools cap runner slots instead). n <= 0 leaves the
// default (all cores) alone.
func SetGOMAXPROCS(n int) {
	if n > 0 {
		runtime.GOMAXPROCS(n)
	}
}

// workerProcs splits the machine's cores evenly across n workers.
func workerProcs(n int) int {
	if n <= 0 {
		return 0
	}
	per := runtime.NumCPU() / n
	if per < 1 {
		per = 1
	}
	return per
}

// ServeWorker runs the dist worker loop — over stdin/stdout pipes by
// default, or dialing a fleet coordinator when -connect is set — with
// the options' checkpoint/metrics directories and -j GOMAXPROCS cap.
// logf receives checkpoint-store warnings and (for fleet workers)
// connection lifecycle notices on stderr.
func (o *Options) ServeWorker(ctx context.Context, logf experiments.Logf) error {
	if o.Workers > 0 {
		runtime.GOMAXPROCS(o.Workers)
	}
	var opts dist.WorkerOptions
	if o.CheckpointDir != "" {
		store, err := checkpoint.NewStore(o.CheckpointDir, logf)
		if err != nil {
			return err
		}
		opts.Checkpoints = store
	}
	if o.MetricsDir != "" {
		sink, err := obs.NewSink(o.MetricsDir)
		if err != nil {
			return err
		}
		opts.Metrics = sink
	}
	if o.Connect != "" {
		dial := dist.DialOptions{Slots: o.Slots, Worker: opts, Logf: logf}
		if o.FleetTrace != "" {
			trace, err := obs.NewFleetTraceFile(o.FleetTrace)
			if err != nil {
				return err
			}
			defer func() {
				if cerr := trace.Close(); cerr != nil && logf != nil {
					logf("cli: %v", cerr)
				}
			}()
			dial.Trace = trace
		}
		if o.ChaosSever > 0 {
			chaos := dist.NewChaos(dist.ChaosConfig{Seed: o.ChaosSeed, SeverAfter: o.ChaosSever}, logf)
			chaos.SetTrace(dial.Trace)
			if logf != nil {
				logf("fault injection armed: %s", chaos)
			}
			dial.Chaos = chaos
		}
		return dist.DialAndServe(ctx, o.Connect, dial)
	}
	return dist.Serve(ctx, os.Stdin, os.Stdout, opts)
}
