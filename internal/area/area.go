// Package area provides an analytical chip-area model for the RCS in the
// style of NeuroSim: the chip area is the sum of per-component areas
// (crossbar arrays, DAC/ADC/S&H/S&A peripherals, registers, eDRAM buffers,
// NoC routers, tile-level function units), and each fault-tolerance scheme
// adds its own hardware on top. Component constants are calibrated to the
// published ISAAC/NeuroSim breakdowns at a 32 nm-class node; only the
// *ratios* matter for the paper's claims (BIST +0.61%, AN-code +6.3%,
// Remap-T-n% ≈ +n%).
package area

import "remapd/internal/arch"

// Component areas in mm².
type Components struct {
	// Per crossbar array (128×128 cells at 4F²) and its private periphery.
	CrossbarArray float64
	DACPerArray   float64
	SHPerArray    float64 // sample & hold bank
	ADCPerArray   float64 // the dominant analog block (ISAAC: ~0.0096 mm²)
	SAPerArray    float64 // shift & add
	// Per IMA (shared input/output registers and control).
	RegistersPerIMA float64
	ControlPerIMA   float64
	// Per tile.
	EDRAMPerTile    float64
	RouterPerTile   float64 // c-mesh share: Concentration tiles share one router
	FunctionPerTile float64 // pooling / activation units

	// Fault-tolerance additions.
	BISTPerIMA float64 // FSM + counter + comparator; reuses the IMA's ADC/S&A
	// ANCodePerIMA is the encoder + residue checker + syndrome table.
	ANCodePerIMA float64
}

// DefaultComponents returns the calibrated technology point.
func DefaultComponents() Components {
	return Components{
		CrossbarArray: 0.000067, // 16384 cells · 4F², F = 32 nm
		DACPerArray:   0.00170,  // 128 1-bit DACs
		SHPerArray:    0.00004,
		ADCPerArray:   0.0096,
		SAPerArray:    0.00024,

		RegistersPerIMA: 0.00269,
		ControlPerIMA:   0.00120,

		EDRAMPerTile:    0.0830,
		RouterPerTile:   0.0151 / 4, // one router per 4 tiles (c-mesh)
		FunctionPerTile: 0.0200,

		BISTPerIMA:   0.00076,
		ANCodePerIMA: 0.00832,
	}
}

// Breakdown is a chip-level area report.
type Breakdown struct {
	Arrays      float64
	Peripherals float64 // DAC+S&H+ADC+S&A
	IMAShared   float64
	TileShared  float64 // eDRAM + router share + function units
	Baseline    float64 // total without any fault-tolerance hardware

	BIST   float64
	ANCode float64
}

// Compute sums the model over a chip geometry.
func Compute(c Components, g arch.Geometry) Breakdown {
	nXbar := float64(g.Crossbars())
	nIMA := float64(g.Tiles() * g.IMAsPerTile)
	nTile := float64(g.Tiles())

	b := Breakdown{
		Arrays:      nXbar * c.CrossbarArray,
		Peripherals: nXbar * (c.DACPerArray + c.SHPerArray + c.ADCPerArray + c.SAPerArray),
		IMAShared:   nIMA * (c.RegistersPerIMA + c.ControlPerIMA),
		TileShared:  nTile * (c.EDRAMPerTile + c.RouterPerTile + c.FunctionPerTile),
		BIST:        nIMA * c.BISTPerIMA,
		ANCode:      nIMA * c.ANCodePerIMA,
	}
	b.Baseline = b.Arrays + b.Peripherals + b.IMAShared + b.TileShared
	return b
}

// BISTOverhead returns the fractional area cost of adding the BIST module
// to every IMA (the paper reports 0.61%).
func BISTOverhead(c Components, g arch.Geometry) float64 {
	b := Compute(c, g)
	return b.BIST / (b.Baseline + b.BIST)
}

// ANCodeOverhead returns the fractional area cost of the AN-code datapath
// (the paper cites 6.3% from [10]).
func ANCodeOverhead(c Components, g arch.Geometry) float64 {
	b := Compute(c, g)
	return b.ANCode / (b.Baseline + b.ANCode)
}

// RemapTOverhead returns the fractional area cost of Remap-T-n%: the
// scheme needs at least an n fraction of spare fault-free hardware
// (crossbars plus their peripheral and buffering share), i.e. ≈ n of the
// chip (the paper: Remap-T-10% ⇒ 10%).
func RemapTOverhead(fraction float64) float64 { return fraction }

// RemapDOverhead returns Remap-D's area cost: only the BIST modules — the
// policy itself reuses existing crossbars and the NoC.
func RemapDOverhead(c Components, g arch.Geometry) float64 {
	return BISTOverhead(c, g)
}
