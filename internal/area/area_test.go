package area

import (
	"math"
	"testing"

	"remapd/internal/arch"
)

func TestBreakdownPositiveAndConsistent(t *testing.T) {
	b := Compute(DefaultComponents(), arch.DefaultGeometry())
	if b.Arrays <= 0 || b.Peripherals <= 0 || b.IMAShared <= 0 || b.TileShared <= 0 {
		t.Fatalf("non-positive component: %+v", b)
	}
	sum := b.Arrays + b.Peripherals + b.IMAShared + b.TileShared
	if math.Abs(sum-b.Baseline) > 1e-12 {
		t.Fatalf("baseline %v != component sum %v", b.Baseline, sum)
	}
	// ADCs dominate the analog periphery in ISAAC-class designs; the
	// peripheral block must dwarf the raw arrays.
	if b.Peripherals < 10*b.Arrays {
		t.Fatalf("peripheral/array ratio implausible: %v vs %v", b.Peripherals, b.Arrays)
	}
}

func TestBISTOverheadMatchesPaper(t *testing.T) {
	oh := BISTOverhead(DefaultComponents(), arch.DefaultGeometry())
	if oh < 0.005 || oh > 0.007 {
		t.Fatalf("BIST overhead %.4f, paper reports 0.61%%", oh)
	}
}

func TestANCodeOverheadMatchesPaper(t *testing.T) {
	oh := ANCodeOverhead(DefaultComponents(), arch.DefaultGeometry())
	if oh < 0.055 || oh > 0.070 {
		t.Fatalf("AN-code overhead %.4f, paper cites 6.3%%", oh)
	}
}

func TestRemapTOverheadIsFraction(t *testing.T) {
	if RemapTOverhead(0.10) != 0.10 || RemapTOverhead(0.05) != 0.05 {
		t.Fatal("Remap-T-n%% must cost n%% spare hardware")
	}
}

func TestOverheadOrdering(t *testing.T) {
	c, g := DefaultComponents(), arch.DefaultGeometry()
	d := RemapDOverhead(c, g)
	an := ANCodeOverhead(c, g)
	rt := RemapTOverhead(0.10)
	if !(d < an && an < rt) {
		t.Fatalf("paper's ordering Remap-D < AN-code < Remap-T-10%% violated: %v %v %v", d, an, rt)
	}
}

func TestOverheadScaleInvariance(t *testing.T) {
	// Per-IMA overheads are ratios of per-IMA hardware, so they must be
	// (nearly) independent of chip size.
	c := DefaultComponents()
	small := BISTOverhead(c, arch.Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 4, XbarsPerIMA: 8})
	large := BISTOverhead(c, arch.Geometry{TilesX: 16, TilesY: 16, IMAsPerTile: 4, XbarsPerIMA: 8})
	if math.Abs(small-large) > 1e-9 {
		t.Fatalf("overhead not scale invariant: %v vs %v", small, large)
	}
}
