// Package remapd is a from-scratch Go reproduction of "Dynamic Task
// Remapping for Reliable CNN Training on ReRAM Crossbars" (Tung et al.,
// DATE 2023): a complete simulated ReRAM crossbar-based computing system
// (RCS) — CNN training framework, crossbar device/fault models, BIST,
// c-mesh NoC — together with the paper's Remap-D dynamic task-remapping
// policy and every baseline it is evaluated against.
//
// This package is the public façade: it re-exports the stable API of the
// internal packages so applications outside this module can build faulty
// chips, train CNNs on them, and run the paper's experiments.
//
// A minimal end-to-end session:
//
//	scale := remapd.QuickScale()
//	regime := remapd.DefaultRegime()
//	net, _ := remapd.BuildModel("vgg11", scale, 1, 10)
//	chip := remapd.NewChip(scale)
//	policy := remapd.NewRemapD()
//	policy.Threshold = regime.RemapThreshold
//
//	cfg := remapd.DefaultTrainConfig()
//	cfg.Chip, cfg.Policy = chip, policy
//	cfg.Pre, cfg.Post = &regime.Pre, &regime.Post
//
//	ds := remapd.CIFAR10Like(512, 512, scale.ImgSize, 7)
//	res, _ := remapd.Train(net, ds, cfg)
//	fmt.Println(res.FinalTestAcc)
package remapd

import (
	"remapd/internal/arch"
	"remapd/internal/bist"
	"remapd/internal/dataset"
	"remapd/internal/experiments"
	"remapd/internal/fault"
	"remapd/internal/models"
	"remapd/internal/nn"
	"remapd/internal/noc"
	"remapd/internal/remap"
	"remapd/internal/reram"
	"remapd/internal/tensor"
	"remapd/internal/trainer"
)

// Core tensor / network types.
type (
	// Tensor is a dense row-major float32 array.
	Tensor = tensor.Tensor
	// RNG is the repository-wide deterministic random generator.
	RNG = tensor.RNG
	// Network is an ordered stack of layers bound to a compute fabric.
	Network = nn.Network
	// ModelConfig parameterises the model zoo constructors.
	ModelConfig = models.Config
)

// Device, architecture, and fault-model types.
type (
	// DeviceParams is the ReRAM technology point.
	DeviceParams = reram.DeviceParams
	// Crossbar is one physical ReRAM array with per-cell fault state.
	Crossbar = reram.Crossbar
	// Chip is the full RCS (crossbars, tasks, mapping); it implements the
	// training framework's Fabric interface.
	Chip = arch.Chip
	// Geometry describes the chip's tile/IMA/crossbar structure.
	Geometry = arch.Geometry
	// Task is the unit of remapping (one weight block in one phase).
	Task = arch.Task
	// PreProfile is the clustered pre-deployment fault distribution.
	PreProfile = fault.PreProfile
	// PostModel is the per-epoch endurance wear-out process.
	PostModel = fault.PostModel
	// BISTController is the fault-density self-test FSM.
	BISTController = bist.Controller
	// BISTResult is one completed BIST pass.
	BISTResult = bist.Result
)

// Policy and training types.
type (
	// Policy is a fault-tolerance scheme (Remap-D or a baseline).
	Policy = remap.Policy
	// RemapD is the paper's dynamic task-remapping policy.
	RemapD = remap.RemapD
	// TrainConfig drives one training run on the (possibly faulty) RCS.
	TrainConfig = trainer.Config
	// TrainResult summarises a run.
	TrainResult = trainer.Result
	// Dataset is an in-memory image-classification dataset.
	Dataset = dataset.Dataset
	// Scale bundles the reproduction-size knobs used by the experiments.
	Scale = experiments.Scale
	// FaultRegime is a pre/post fault configuration plus policy threshold.
	FaultRegime = experiments.FaultRegime
	// NoCConfig describes the c-mesh network.
	NoCConfig = noc.Config
)

// Phases of a training task (backward is the fault-critical one).
const (
	Forward  = arch.Forward
	Backward = arch.Backward
)

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// DefaultDeviceParams returns the paper's technology point (128×128 arrays
// at 10 MHz, 1.2 GHz CMOS peripherals).
func DefaultDeviceParams() DeviceParams { return reram.DefaultDeviceParams() }

// NewChipWith builds an RCS chip from explicit device parameters and
// geometry.
func NewChipWith(p DeviceParams, g Geometry) *Chip { return arch.NewChip(p, g) }

// NewChip builds a chip at a reproduction scale's technology point.
func NewChip(s Scale) *Chip { return experiments.NewChip(s) }

// BuildModel constructs one of the paper's CNNs ("vgg11", "vgg16",
// "vgg19", "resnet12", "resnet18", "squeezenet", or the auxiliary "cnn-s")
// at the scale's geometry.
func BuildModel(name string, s Scale, seed uint64, classes int) (*Network, error) {
	return experiments.BuildModel(name, s, seed, classes)
}

// ModelNames lists the registered model constructors.
func ModelNames() []string { return models.Names() }

// Dataset constructors (synthetic stand-ins for CIFAR-10/100 and SVHN —
// see DESIGN.md for the substitution rationale).
var (
	CIFAR10Like  = dataset.CIFAR10Like
	CIFAR100Like = dataset.CIFAR100Like
	SVHNLike     = dataset.SVHNLike
)

// Policies.
func NewRemapD() *RemapD { return remap.NewRemapD() }

// NewPolicy constructs any policy by its experiment name ("none",
// "static", "an-code", "remap-ws", "remap-t-5", "remap-t-10", "remap-d");
// "ideal" returns nil (train without a chip). The boolean reports whether
// the policy needs TrainConfig.TrackGradAbs.
func NewPolicy(name string, reg FaultRegime) (Policy, bool, error) {
	return experiments.PolicyByName(name, reg)
}

// PolicyNames lists the Fig. 6 policy columns in presentation order.
func PolicyNames() []string { return experiments.PolicyNames() }

// Fault profiles.
var (
	DefaultPreProfile = fault.DefaultPreProfile
	DefaultPostModel  = fault.DefaultPostModel
)

// Training.
func DefaultTrainConfig() TrainConfig { return trainer.DefaultConfig() }

// Train runs the fault-aware training loop.
func Train(net *Network, ds *Dataset, cfg TrainConfig) (*TrainResult, error) {
	return trainer.Train(net, ds, cfg)
}

// Evaluate returns test accuracy of net on ds.
func Evaluate(net *Network, ds *Dataset, batch int) float64 {
	return trainer.Evaluate(net, ds, batch)
}

// Experiment scales and regimes.
var (
	QuickScale    = experiments.QuickScale
	StandardScale = experiments.StandardScale
	DefaultRegime = experiments.DefaultRegime
	PaperRegime   = experiments.PaperRegime
)

// NewBIST returns a BIST controller for the technology point.
func NewBIST(p DeviceParams) *BISTController { return bist.NewController(p) }
