package remapd_test

import (
	"testing"

	"remapd"
)

// The façade test exercises the public API end-to-end at the smallest
// possible scale: build a chip, inject the default fault regime, train a
// tiny model under Remap-D, and check the result is coherent.
func TestPublicAPIEndToEnd(t *testing.T) {
	scale := remapd.QuickScale()
	scale.TrainN, scale.TestN, scale.Epochs = 160, 100, 2
	regime := remapd.DefaultRegime()

	net, err := remapd.BuildModel("cnn-s", scale, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	policy, trackGrads, err := remapd.NewPolicy("remap-d", regime)
	if err != nil {
		t.Fatal(err)
	}
	if trackGrads {
		t.Fatal("remap-d must not need gradient tracking")
	}

	cfg := remapd.DefaultTrainConfig()
	cfg.Epochs, cfg.BatchSize, cfg.LR = scale.Epochs, scale.BatchSize, scale.LR
	cfg.Chip = remapd.NewChip(scale)
	cfg.Policy = policy
	cfg.Pre, cfg.Post = &regime.Pre, &regime.Post

	ds := remapd.CIFAR10Like(scale.TrainN, scale.TestN, scale.ImgSize, 7)
	res, err := remapd.Train(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "remap-d" {
		t.Fatalf("policy name %q", res.Policy)
	}
	if res.FinalTestAcc <= 0.05 || res.FinalTestAcc > 1 {
		t.Fatalf("accuracy %v out of range", res.FinalTestAcc)
	}
	// Evaluate runs after the final epoch-boundary remap (which Train
	// performs after its last evaluation), so it need not be identical —
	// but it must be a sane accuracy on the same chip.
	if acc := remapd.Evaluate(net, ds, 32); acc < 0.05 || acc > 1 {
		t.Fatalf("Evaluate returned %v", acc)
	}
}

func TestPublicAPISurface(t *testing.T) {
	if got := len(remapd.ModelNames()); got != 7 {
		t.Fatalf("model zoo size %d, want 7", got)
	}
	if got := len(remapd.PolicyNames()); got != 8 {
		t.Fatalf("policy list size %d, want 8", got)
	}
	p := remapd.DefaultDeviceParams()
	if p.CrossbarSize != 128 {
		t.Fatalf("device params wrong: %+v", p)
	}
	b := remapd.NewBIST(p)
	x := remapd.NewChipWith(p, remapd.Geometry{TilesX: 2, TilesY: 2, IMAsPerTile: 1, XbarsPerIMA: 1})
	res := b.Run(x.Xbars[0])
	if res.Cycles != 260 {
		t.Fatalf("BIST cycles %d", res.Cycles)
	}
	rng := remapd.NewRNG(1)
	if rng.Float64() < 0 {
		t.Fatal("rng broken")
	}
	if remapd.Forward == remapd.Backward {
		t.Fatal("phase constants must differ")
	}
}
