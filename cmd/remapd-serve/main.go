// Command remapd-serve is the fault-aware online inference service: it
// loads a trained checkpoint onto a pool of simulated faulty, wearing
// ReRAM chips and serves classification traffic through a batching
// scheduler. Under traffic the serving crossbars wear (refresh writes),
// an online BIST scan runs every -bist-every requests, and a scan failure
// triggers the policy's phase-agnostic maintenance step — Remap-D swaps
// hot forward tasks onto the idle backward-phase crossbars, keeping
// accuracy up without taking the service down.
//
// Examples:
//
//	remapd-train -model vgg11 -policy remap-d -checkpoint-dir ckpt
//	remapd-serve -model vgg11 -policy remap-d -checkpoint-dir ckpt -requests 2048
//	remapd-serve ... -requests 2048 -metrics-dir out -status-addr :8080
//	remapd-serve ... -serve-addr :8473             # live HTTP endpoint
//
// With -requests N the tool drives N deterministically generated requests
// (seeded by -traffic-seed) through the scheduler and exits: two runs
// with the same checkpoint and flags produce byte-identical metrics and
// event traces. With -serve-addr it serves POST /classify until
// interrupted; both modes compose (drive first, then serve).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"remapd/internal/checkpoint"
	"remapd/internal/cli"
	"remapd/internal/dataset"
	"remapd/internal/experiments"
	"remapd/internal/fault"
	"remapd/internal/models"
	"remapd/internal/obs"
	"remapd/internal/serve"
	"remapd/internal/tensor"
)

func main() {
	log.SetFlags(0)
	var opts cli.Options
	var (
		model     = flag.String("model", "vgg11", "model: "+strings.Join(models.Names(), ", "))
		policy    = flag.String("policy", "remap-d", "maintenance policy: "+strings.Join(experiments.PolicyNames(), ", "))
		trainPol  = flag.String("train-policy", "", "policy the checkpoint was trained under, for -checkpoint-dir path derivation (default: -policy)")
		dsName    = flag.String("dataset", "cifar10", "dataset the checkpoint was trained on: cifar10, cifar100, svhn")
		ckptFile  = flag.String("checkpoint", "", "checkpoint file to serve (default: derived from -checkpoint-dir and the run flags, matching remapd-train's layout)")
		width     = flag.Float64("width", 0.125, "model width scale (must match the checkpoint)")
		testN     = flag.Int("test", 512, "traffic sample pool size (test-split samples)")
		chips     = flag.Int("chips", 1, "replica chips in the serving pool")
		requests  = flag.Int("requests", 0, "driver mode: serve this many seeded requests, print the SLO summary, exit")
		jitter    = flag.Int("jitter", 3, "max extra ticks between generated arrivals")
		wearLife  = flag.Float64("wear-life", 4000, "Weibull characteristic life in array writes for traffic-driven wear (0 = no wear)")
		writesPer = flag.Int("writes-per-batch", 4, "refresh writes each serving crossbar absorbs per executed batch (the wear clock)")
		threshold = flag.Float64("threshold", 0, "BIST-failure density threshold (0 = the default regime's remap threshold)")
		preFaults = flag.Bool("pre-faults", true, "inject the manufacturing fault profile into each chip before deployment")
	)
	opts.Bind(flag.CommandLine)
	opts.BindRun(flag.CommandLine)
	opts.BindServe(flag.CommandLine)
	flag.Parse()
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}
	if *requests <= 0 && opts.ServeAddr == "" {
		log.Fatal("nothing to do: set -requests N (deterministic driver) and/or -serve-addr (HTTP endpoint)")
	}
	if *chips < 1 {
		log.Fatalf("-chips must be >= 1, got %d", *chips)
	}
	if opts.BatchMax < 1 {
		log.Fatalf("-batch-max must be >= 1, got %d", opts.BatchMax)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cli.SetGOMAXPROCS(opts.Workers)
	if addr, err := opts.StartDebug(); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	s := experiments.StandardScale()
	s.WidthScale = *width
	s.TestN = *testN

	var ds *dataset.Dataset
	classes := 10
	switch *dsName {
	case "cifar10":
		ds = dataset.CIFAR10Like(1, s.TestN, s.ImgSize, 77)
	case "cifar100":
		classes = 100
		ds = dataset.CIFAR100Like(1, s.TestN, s.ImgSize, 88)
	case "svhn":
		ds = dataset.SVHNLike(1, s.TestN, s.ImgSize, 99)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}

	// Locate and decode the checkpoint: an explicit file wins, otherwise
	// derive the path remapd-train would have written for these flags.
	// The trained-under policy keys the file; the serving policy may
	// differ (policy comparisons serve the same trained weights).
	if *trainPol == "" {
		*trainPol = *policy
	}
	key := fmt.Sprintf("%s/%s/seed%d/%s", *model, *trainPol, opts.Seed, *dsName)
	path := *ckptFile
	if path == "" {
		if opts.CheckpointDir == "" {
			log.Fatal("need -checkpoint <file> or -checkpoint-dir <dir>")
		}
		path = filepath.Join(opts.CheckpointDir, checkpoint.CellFileBase(key)+".ckpt")
	}
	snap, err := checkpoint.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint %s: %d epochs trained under %s\n", path, snap.Epoch, snap.PolicyName)

	reg := experiments.DefaultRegime()
	if *threshold <= 0 {
		*threshold = reg.RemapThreshold
	}

	cfg := serve.Config{
		BatchMax:       opts.BatchMax,
		BatchWait:      uint64(opts.BatchWait),
		BISTEvery:      opts.BISTEvery,
		Threshold:      *threshold,
		WritesPerBatch: *writesPer,
		InC:            ds.C,
		InH:            ds.H,
		InW:            ds.W,
	}

	// Telemetry: one streaming trace for the whole pool, keyed like a
	// training cell with a /serve suffix so remapd-metrics can tell the
	// domains apart.
	var sink *obs.Sink
	var stream *obs.StreamTrace
	if opts.MetricsDir != "" {
		sink, err = obs.NewSink(opts.MetricsDir)
		if err != nil {
			log.Fatal(err)
		}
		// Keyed by the SERVING policy (the checkpoint key uses the
		// trained-under policy, which may differ).
		cell := fmt.Sprintf("%s/%s/seed%d/%s/serve", *model, *policy, opts.Seed, *dsName)
		stream, err = sink.Stream(checkpoint.CellFileBase(cell), cell)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Obs = stream
	}

	reps := make([]*serve.Replica, *chips)
	for i := range reps {
		net, err := experiments.BuildModel(*model, s, opts.Seed, classes)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.RestoreNetwork(net); err != nil {
			log.Fatal(err)
		}
		chip := experiments.NewChip(s)
		// Each replica chip is a distinct physical die: its own
		// manufacturing fault profile and its own wear RNG stream.
		faultSeed := opts.Seed<<16 + uint64(i) + 1
		if *preFaults {
			pre := tensor.NewRNG(faultSeed)
			reg.Pre.Inject(chip.Xbars, pre)
		}
		pol, _, err := experiments.PolicyByName(*policy, reg)
		if err != nil {
			log.Fatal(err)
		}
		rc := serve.ReplicaConfig{Net: net, Chip: chip, Policy: pol, FaultSeed: faultSeed}
		if *wearLife > 0 {
			em := fault.NewEnduranceModel()
			em.CharacteristicLife = *wearLife
			rc.Endurance = em
		}
		reps[i], err = serve.NewReplica(rc, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("pool: %d × %s on %d-crossbar chips, policy %s, batch ≤%d wait %d ticks, BIST every %d requests\n",
		*chips, *model, reps[0].Chip().Geom.Crossbars(), *policy, opts.BatchMax, opts.BatchWait, opts.BISTEvery)

	srv, err := serve.New(cfg, reps)
	if err != nil {
		log.Fatal(err)
	}

	if opts.StatusAddr != "" {
		status := obs.NewStatus()
		status.Register("serve", srv.StatusSection)
		addr, err := obs.StartStatusServer(opts.StatusAddr, status)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("status server on http://%s/status\n", addr)
	}

	if *requests > 0 {
		tr := serve.NewTraffic(ds, opts.TrafficSeed, *jitter)
		serve.Drive(srv, tr, *requests)
		printSummary(srv.Stats())
	}

	if opts.ServeAddr != "" {
		front := serve.NewFront(srv, 10*time.Millisecond)
		front.Start()
		ln, err := net.Listen("tcp", opts.ServeAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serving POST /classify on http://%s/classify\n", ln.Addr())
		hs := &http.Server{Handler: front.Handler()}
		go func() {
			if serr := hs.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				log.Print(serr)
			}
		}()
		<-ctx.Done()
		if err := hs.Close(); err != nil {
			log.Print(err)
		}
		front.Close()
		fmt.Println()
		printSummary(srv.Stats())
	}

	if stream != nil {
		if err := stream.Close(); err != nil {
			log.Print(err)
		} else {
			fmt.Printf("telemetry written to %s\n", sink.Dir())
		}
	}
}

func printSummary(st serve.Stats) {
	fmt.Printf("served %d requests in %d batches (%d deadline flushes) over %d ticks\n",
		st.Requests, st.Batches, st.DeadlineFlushes, st.Tick)
	fmt.Printf("accuracy %.4f overall (%.4f last window), mean fault density %.4f%%\n",
		st.AccuracyTotal, st.AccuracyWindow, 100*st.MeanDensity)
	fmt.Printf("p99 latency %.0f ticks\n", st.P99LatencyTicks)
	fmt.Printf("maintenance: %d BIST scans, %d rounds triggered, %d online swaps (%d senders), %d wear faults\n",
		st.BISTScans, st.MaintainRounds, st.OnlineSwaps, st.OnlineSenders, st.WearFaults)
}
