package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"remapd/internal/dist"
	"remapd/internal/obs"
)

// defaultWatchEvery paces the -watch poll loop.
const defaultWatchEvery = 2 * time.Second

// statusDoc is the typed shape of a coordinator's GET /status document.
// Sections are optional: a run without -listen has no fleet table, one
// without spans has no aggregates.
type statusDoc struct {
	Grid  *obs.GridStatus    `json:"grid"`
	Fleet *dist.FleetStats   `json:"fleet"`
	Spans *obs.SpanAggregate `json:"spans"`
}

// watchMain is the -watch mode: poll a coordinator's -status-addr and
// redraw a single-screen live view until interrupted. Wall-clock use
// here is pure operator UX (a poll ticker and an HTTP timeout); the
// watcher only ever reads the run, never influences it.
func watchMain(addr string, every time.Duration) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimSuffix(addr, "/") + "/status"
	client := &http.Client{Timeout: 10 * time.Second}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if every <= 0 {
		every = defaultWatchEvery
	}
	tick := time.NewTicker(every)
	defer tick.Stop()

	for {
		doc, err := fetchStatus(client, url)
		// Clear the screen and home the cursor between frames; errors
		// render in-frame so a coordinator restart shows as a blip, not
		// an exit.
		fmt.Print("\033[H\033[2J")
		fmt.Printf("watching %s (every %s, ctrl-c to stop)\n\n", url, every)
		if err != nil {
			fmt.Printf("status unavailable: %v\n", err)
		} else {
			renderStatus(doc)
		}
		select {
		case <-stop:
			fmt.Println()
			return nil
		case <-tick.C:
		}
	}
}

// fetchStatus GETs and decodes one status document.
func fetchStatus(client *http.Client, url string) (*statusDoc, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var doc statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode status: %w", err)
	}
	return &doc, nil
}

// renderStatus draws one frame of the live view.
func renderStatus(doc *statusDoc) {
	if doc.Grid != nil {
		g := doc.Grid
		pct := 0.0
		if g.Total > 0 {
			pct = 100 * float64(g.Done) / float64(g.Total)
		}
		fmt.Printf("grid: %d/%d cells (%.0f%%), %d failed, elapsed %s\n",
			g.Done, g.Total, pct, g.Failed, time.Duration(g.ElapsedSeconds*float64(time.Second)).Round(time.Second))
	}
	if doc.Fleet != nil {
		f := doc.Fleet
		fmt.Printf("fleet: %d worker(s), %d/%d slots busy; totals: %d done, %d requeued, %d failed, %d stall(s)\n",
			len(f.Workers), f.Inflight, f.Slots, f.Done, f.Requeued, f.Failed, f.Stalls)
		if len(f.Workers) > 0 {
			fmt.Printf("\n%-20s %6s %5s %6s %9s %9s %10s %9s %9s\n",
				"worker", "proto", "busy", "done", "requeued", "rtt-ms", "in-mb", "out-mb", "seen-ago")
			for _, w := range f.Workers {
				name := w.Worker
				if w.Draining {
					name += " (draining)"
				}
				fmt.Printf("%-20s %6d %2d/%-2d %6d %9d %10.1f %9.2f %9.2f %8.1fs\n",
					name, w.Proto, w.Inflight, w.Slots, w.Done, w.Requeued,
					w.RTTMillis, float64(w.BytesIn)/(1<<20), float64(w.BytesOut)/(1<<20), w.LastSeenSeconds)
			}
		}
	}
	if doc.Spans != nil && doc.Spans.Cells > 0 {
		s := doc.Spans
		fmt.Printf("\nspans: %d cells, %d attempts (%d requeued); queue %.1fs, wire %.1fs, run %.1fs\n",
			s.Cells, s.Attempts, s.Requeues, s.QueueSeconds, s.WireSeconds, s.RunSeconds)
		if len(s.Slowest) > 0 {
			fmt.Printf("\nslowest cells:\n")
			for _, sp := range s.Slowest {
				fmt.Printf("  %-45s %6.1fs (%d attempt(s))\n", sp.Cell, sp.TotalSeconds, len(sp.Attempts))
			}
		}
	}
}
