// Command remapd-metrics summarises a telemetry directory written by
// remapd-train or remapd-report (-metrics-dir): per-policy remap activity,
// the remap hop-distance histogram, the BIST density-drift curve, and —
// when the directory also holds a harness.json profile — the slowest
// experiment cells and costliest report phases.
//
// Two operational modes look at a live or finished fleet run instead:
// -fleet summarises a structured fleet event trace (-fleet-trace JSONL)
// and -watch polls a coordinator's -status-addr for a live view.
//
// Examples:
//
//	remapd-metrics -dir metrics
//	remapd-metrics -dir metrics -top 5
//	remapd-metrics -fleet fleet-trace.jsonl
//	remapd-metrics -watch localhost:7434
package main

import (
	"flag"
	"fmt"
	"log"

	"remapd/internal/obs"
)

func main() {
	log.SetFlags(0)
	var (
		dir   = flag.String("dir", "metrics", "telemetry directory (the -metrics-dir of a previous run)")
		top   = flag.Int("top", 10, "how many slowest cells / costliest phases to show")
		fleet = flag.String("fleet", "", "summarise this structured fleet event trace (a -fleet-trace JSONL file) instead of a metrics directory")
		watch = flag.String("watch", "", "poll a coordinator's -status-addr (host:port) and render a live single-screen view")
		every = flag.Duration("every", defaultWatchEvery, "with -watch: poll interval")
	)
	flag.Parse()

	if *fleet != "" {
		if err := fleetMain(*fleet, *top); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *watch != "" {
		if err := watchMain(*watch, *every); err != nil {
			log.Fatal(err)
		}
		return
	}

	cells, err := obs.ReadDir(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(cells) == 0 {
		log.Fatalf("no cell telemetry (*.metrics.json) found in %s", *dir)
	}
	sum := obs.Summarize(cells)

	fmt.Printf("%d cells loaded from %s\n", len(cells), *dir)

	fmt.Printf("\n==== per-policy remap activity ====\n\n")
	fmt.Printf("%-10s %5s %6s %7s %6s %9s %9s %10s %9s\n",
		"policy", "cells", "epochs", "senders", "swaps", "unmatched", "protected", "swaps/ep", "mean-acc")
	for _, ps := range sum.Policies {
		fmt.Printf("%-10s %5d %6d %7d %6d %9d %9d %10.2f %9.3f\n",
			ps.Policy, ps.Cells, ps.Epochs, ps.Senders, ps.Swaps,
			ps.Unmatched, ps.Protected, ps.SwapsPerEpoch, ps.MeanFinalAcc)
	}

	fmt.Printf("\n==== remap hop distance (all policies) ====\n\n")
	printHops(sum)

	printServe(cells)

	if len(sum.Drift) > 0 {
		fmt.Printf("\n==== BIST density drift (estimate vs truth) ====\n\n")
		fmt.Printf("%5s %8s %10s %10s %10s\n", "epoch", "samples", "mean-est", "mean-true", "mean|err|")
		for _, d := range sum.Drift {
			fmt.Printf("%5d %8d %9.4f%% %9.4f%% %9.4f%%\n",
				d.Epoch, d.Samples, 100*d.MeanEstimate, 100*d.MeanTrue, 100*d.MeanAbsErr)
		}
	}

	prof, err := obs.ReadProfile(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if prof != nil {
		printProfile(prof, *top)
	}
}

// printHops merges every policy's hop histogram and renders the combined
// distribution; policies without swaps contribute nothing.
func printHops(sum *obs.Summary) {
	var merged *obs.Histogram
	for _, ps := range sum.Policies {
		if ps.Hops == nil || ps.Hops.Count == 0 {
			continue
		}
		if merged == nil {
			merged = obs.NewHistogram(ps.Hops.Buckets)
		}
		if err := merged.Merge(ps.Hops); err != nil {
			log.Fatal(err)
		}
	}
	if merged == nil {
		fmt.Println("no swaps recorded")
		return
	}
	fmt.Printf("%9s %6s\n", "hops", "swaps")
	prev := ""
	for i, b := range merged.Buckets {
		if merged.Counts[i] > 0 {
			fmt.Printf("%4s<=%3g %6d\n", prev, b, merged.Counts[i])
		}
		prev = fmt.Sprintf("%g", b)
	}
	if over := merged.Counts[len(merged.Buckets)]; over > 0 {
		fmt.Printf("%5s>%3s %6d\n", "", prev, over)
	}
	fmt.Printf("total %d swaps, mean %.2f hops\n", merged.Count, merged.Sum/float64(merged.Count))
}

// printServe renders the serving-domain SLO section for cells written by
// remapd-serve (identified by their serve.* counters): throughput, tail
// latency in simulated ticks, accuracy against wear, and the online
// maintenance activity.
func printServe(cells []*obs.CellMetrics) {
	var serving []*obs.CellMetrics
	for _, c := range cells {
		if c.Snapshot != nil && c.Snapshot.Counters["serve.requests"] > 0 {
			serving = append(serving, c)
		}
	}
	if len(serving) == 0 {
		return
	}
	fmt.Printf("\n==== serving SLO (remapd-serve cells) ====\n\n")
	fmt.Printf("%-40s %8s %7s %9s %8s %9s %6s %7s %6s %7s\n",
		"cell", "requests", "batches", "p99-ticks", "accuracy", "density-%", "scans", "rounds", "swaps", "wfaults")
	for _, c := range serving {
		cnt, g := c.Snapshot.Counters, c.Snapshot.Gauges
		p99 := g["serve.latency.p99_ticks"]
		if h := c.Snapshot.Histograms["serve.latency.ticks"]; h != nil && h.Count > 0 {
			p99 = h.Quantile(0.99)
		}
		fmt.Printf("%-40s %8d %7d %9.0f %8.4f %9.4f %6d %7d %6d %7d\n",
			c.Cell, cnt["serve.requests"], cnt["serve.batches"], p99,
			g["serve.accuracy.total"], 100*g["serve.wear.mean_density"],
			cnt["serve.bist.scans"], cnt["serve.maintain.rounds"],
			cnt["serve.remap.swaps"], cnt["serve.wear.faults"])
	}
}

// printProfile renders the harness profile: costliest phases in recorded
// order, then the slowest cells (Data() pre-sorts them slowest-first).
func printProfile(prof *obs.ProfileData, top int) {
	if len(prof.Phases) > 0 {
		fmt.Printf("\n==== harness phases (wall time, allocations) ====\n\n")
		fmt.Printf("%-55s %9s %10s\n", "phase", "seconds", "alloc-mb")
		n := len(prof.Phases)
		if n > top {
			n = top
		}
		for _, ph := range prof.Phases[:n] {
			fmt.Printf("%-55s %9.2f %10.1f\n", ph.Name, ph.Seconds, float64(ph.AllocBytes)/(1<<20))
		}
	}
	if len(prof.Cells) > 0 {
		fmt.Printf("\n==== slowest cells ====\n\n")
		fmt.Printf("%-55s %9s\n", "cell", "seconds")
		n := len(prof.Cells)
		if n > top {
			n = top
		}
		for _, c := range prof.Cells[:n] {
			fmt.Printf("%-55s %9.2f\n", c.Cell, c.Seconds)
		}
	}
}
