package main

import (
	"fmt"
	"os"

	"remapd/internal/det"
	"remapd/internal/obs"
)

// fleetMain is the -fleet mode: decode a structured fleet event trace
// (the JSONL a -fleet-trace coordinator or worker appends) and print
// where the run's churn came from — membership, requeue causes,
// per-worker utilization, slowest cells.
func fleetMain(path string, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	events, err := obs.DecodeFleetEvents(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("no events in %s", path)
	}
	sum := obs.SummarizeFleet(events)

	fmt.Printf("%d events loaded from %s\n", sum.Events, path)
	fmt.Printf("\n==== fleet membership ====\n\n")
	fmt.Printf("joins %d, graceful leaves %d, drops %d, stalls %d\n",
		sum.Joins, sum.Leaves, sum.Drops, sum.Stalls)

	fmt.Printf("\n==== cells ====\n\n")
	fmt.Printf("completed %d, requeued %d\n", sum.CellsDone, sum.Requeues)
	if len(sum.RequeueCauses) > 0 {
		fmt.Printf("\nrequeue causes:\n")
		// Map iteration order is random; render deterministically.
		for _, cause := range sortedCauses(sum.RequeueCauses) {
			fmt.Printf("  %4d  %s\n", sum.RequeueCauses[cause], cause)
		}
	}

	if len(sum.Workers) > 0 {
		fmt.Printf("\n==== per-worker utilization ====\n\n")
		fmt.Printf("%-20s %6s %9s %12s\n", "worker", "done", "requeues", "busy-sec")
		for _, w := range sum.Workers {
			fmt.Printf("%-20s %6d %9d %12.2f\n", w.Worker, w.Done, w.Requeues, w.BusySeconds)
		}
	}

	if len(sum.SlowestCells) > 0 {
		fmt.Printf("\n==== slowest cells ====\n\n")
		fmt.Printf("%-45s %-20s %8s %9s\n", "cell", "worker", "attempt", "seconds")
		n := len(sum.SlowestCells)
		if n > top {
			n = top
		}
		for _, ev := range sum.SlowestCells[:n] {
			fmt.Printf("%-45s %-20s %8d %9.2f\n", ev.Cell, ev.Worker, ev.Attempt, ev.Seconds)
		}
	}
	return nil
}

// sortedCauses orders requeue causes by count (descending), then text.
func sortedCauses(causes map[string]int) []string {
	out := det.SortedKeys(causes)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if causes[a] > causes[b] || (causes[a] == causes[b] && a < b) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}
