// Command remapd-lint runs the repo's determinism & safety analyzer suite
// (internal/lint) over the module and exits non-zero on any finding. It is
// the CI gate that keeps the invariants behind bit-identical experiment
// replay — and, since the invariant-analysis rules, the hot-path
// zero-allocation and wire-format contracts — machine-checked instead of
// conventional.
//
// Usage:
//
//	remapd-lint [-list] [-format text|github|json] [-json] [-parallel N]
//	            [-write-wire-golden] [packages]
//
// Package patterns follow the go tool's shape: ./... (default) lints the
// whole module, ./internal/remap lints one package, ./internal/... a
// subtree.
//
// Output formats: text (the default "file:line:col: [rule] message"),
// github (::error workflow annotations, inline on the PR diff), and json
// (one object with findings + per-rule counts, greppable from CI logs);
// -json is shorthand for -format json. On any finding the exit status is
// 1 and a summary line naming each firing rule and its count goes to
// stderr. -parallel bounds the analysis worker pool (default GOMAXPROCS).
//
// -write-wire-golden regenerates the wire-stability golden field-set
// snapshots for every matched package that declares a wire version const
// (see `make wire-golden`).
//
// A finding is suppressed by a "//lint:allow <rule> <reason>" comment on
// the offending statement or the line above it (multi-line statements are
// covered in full); an allow that suppresses nothing is reported as stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"remapd/internal/det"
	"remapd/internal/lint"
)

func main() {
	listRules := flag.Bool("list", false, "list the rule suite and exit")
	format := flag.String("format", "text", "output format: text, github (workflow annotations), or json")
	jsonOut := flag.Bool("json", false, "shorthand for -format json")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "analysis worker pool size")
	writeGolden := flag.Bool("write-wire-golden", false, "regenerate wire-stability golden snapshots and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: remapd-lint [-list] [-format text|github|json] [-json] [-parallel N] [-write-wire-golden] [packages]\n\npackages default to ./... (the whole module)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "github", "json":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, github, or json)", *format))
	}

	if *listRules {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s\n", "stale-allow", "a //lint:allow comment that suppresses nothing (checked implicitly)")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	all, err := loader.Discover()
	if err != nil {
		fatal(err)
	}
	var paths []string
	for _, p := range all {
		for _, pat := range patterns {
			if loader.Match(p, pat) {
				paths = append(paths, p)
				break
			}
		}
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	if *writeGolden {
		writeWireGoldens(loader, paths)
		return
	}

	runner := &lint.Runner{Loader: loader, Jobs: *parallel}
	findings, err := runner.Run(paths)
	if err != nil {
		fatal(err)
	}
	// Report module-relative paths so output is stable across checkouts.
	for i := range findings {
		if rel, err := filepath.Rel(loader.ModuleDir, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}

	switch *format {
	case "text":
		for _, f := range findings {
			fmt.Println(f)
		}
	case "github":
		for _, f := range findings {
			// One workflow annotation per finding: shows inline on the PR.
			fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
		}
	case "json":
		printJSON(findings, len(paths))
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "remapd-lint: %d finding(s) in %d package(s): %s\n",
			len(findings), len(paths), ruleSummary(findings))
		os.Exit(1)
	}
}

// ruleSummary renders "rule1 xN, rule2 xM" sorted by rule name, so CI
// logs are greppable for which gate fired.
func ruleSummary(findings []lint.Finding) string {
	counts := ruleCounts(findings)
	parts := make([]string, 0, len(counts))
	for _, name := range det.SortedKeys(counts) {
		parts = append(parts, fmt.Sprintf("%s x%d", name, counts[name]))
	}
	return strings.Join(parts, ", ")
}

func ruleCounts(findings []lint.Finding) map[string]int {
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Rule]++
	}
	return counts
}

// jsonFinding is the machine-readable finding shape.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

type jsonReport struct {
	Findings []jsonFinding  `json:"findings"`
	Packages int            `json:"packages"`
	ByRule   map[string]int `json:"by_rule"`
}

func printJSON(findings []lint.Finding, packages int) {
	report := jsonReport{
		Findings: make([]jsonFinding, 0, len(findings)),
		Packages: packages,
		ByRule:   ruleCounts(findings),
	}
	for _, f := range findings {
		report.Findings = append(report.Findings, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Msg: f.Msg,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
}

// writeWireGoldens regenerates the golden field-set snapshot for every
// matched package that declares a wire version const.
func writeWireGoldens(loader *lint.Loader, paths []string) {
	wrote := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		snap, ok := lint.WireSnapshot(pkg)
		if !ok {
			continue
		}
		file := lint.WireGoldenPath(loader.WireGoldenDir, path)
		if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(file, []byte(snap), 0o644); err != nil {
			fatal(err)
		}
		rel, err := filepath.Rel(loader.ModuleDir, file)
		if err != nil {
			rel = file
		}
		fmt.Printf("wrote %s\n", rel)
		wrote++
	}
	if wrote == 0 {
		fatal(fmt.Errorf("no matched package declares a wire version const (ProtoVersion/SchemaVersion)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "remapd-lint:", err)
	os.Exit(2)
}
