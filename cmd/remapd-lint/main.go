// Command remapd-lint runs the repo's determinism & safety analyzer suite
// (internal/lint) over the module and exits non-zero on any finding. It is
// the CI gate that keeps the invariants behind bit-identical experiment
// replay machine-checked instead of conventional.
//
// Usage:
//
//	remapd-lint [-list] [packages]
//
// Package patterns follow the go tool's shape: ./... (default) lints the
// whole module, ./internal/remap lints one package, ./internal/... a
// subtree. Findings print as "file:line:col: [rule] message".
//
// A finding is suppressed by a "//lint:allow <rule> <reason>" comment on
// the offending line or the line above; an allow that suppresses nothing
// is reported as stale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"remapd/internal/lint"
)

func main() {
	listRules := flag.Bool("list", false, "list the rule suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: remapd-lint [-list] [packages]\n\npackages default to ./... (the whole module)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s\n", "stale-allow", "a //lint:allow comment that suppresses nothing (checked implicitly)")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	all, err := loader.Discover()
	if err != nil {
		fatal(err)
	}
	var paths []string
	for _, p := range all {
		for _, pat := range patterns {
			if loader.Match(p, pat) {
				paths = append(paths, p)
				break
			}
		}
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	var findings []lint.Finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, lint.RunPackage(pkg)...)
	}
	lint.SortFindings(findings)
	for _, f := range findings {
		// Report module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(loader.ModuleDir, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "remapd-lint: %d finding(s) in %d package(s)\n", len(findings), len(paths))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "remapd-lint:", err)
	os.Exit(2)
}
