// Command remapd-benchdiff renders `go test -bench` output into the
// BENCH_<sha>.json format CI archives per commit, and diffs such a file
// against the committed BENCH_BASELINE.json to enforce the benchmark
// budget: allocs/op and B/op on the gated (serial, fixed-iteration)
// benchmarks are deterministic on any runner, so any change hard-fails;
// ns/op is machine-dependent and only warns beyond a ±25% band.
//
// Examples:
//
//	go test -bench ... -benchmem | remapd-benchdiff -render > BENCH_BASELINE.json
//	remapd-benchdiff -baseline BENCH_BASELINE.json -current BENCH_abc123.json
//
// In diff mode the exit status is the gate: 0 clean (warnings allowed),
// 1 on any hard violation. With -github, findings are also emitted as
// ::error::/::warning:: workflow annotations.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"remapd/internal/benchdiff"
)

func main() {
	log.SetFlags(0)
	var (
		render   = flag.Bool("render", false, "parse bench output (stdin or -in) and write BENCH json to stdout")
		in       = flag.String("in", "", "bench output file for -render (default stdin)")
		baseline = flag.String("baseline", "", "committed baseline json (diff mode)")
		current  = flag.String("current", "", "current-run json (diff mode)")
		github   = flag.Bool("github", false, "emit GitHub workflow ::error::/::warning:: annotations")
	)
	flag.Parse()

	switch {
	case *render:
		src := os.Stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			src = f
		}
		results, err := benchdiff.ParseBenchOutput(src)
		if err != nil {
			log.Fatal(err)
		}
		out, err := benchdiff.RenderJSON(results)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := os.Stdout.Write(out); err != nil {
			log.Fatal(err)
		}

	case *baseline != "" && *current != "":
		base := loadResults(*baseline)
		cur := loadResults(*current)
		findings := benchdiff.Diff(base, cur)
		for _, f := range findings {
			severity := "warning"
			if f.Fail {
				severity = "error"
			}
			fmt.Printf("%s: %s: %s\n", severity, f.Name, f.Msg)
			if *github {
				fmt.Printf("::%s title=bench-budget %s::%s\n", severity, f.Name, f.Msg)
			}
		}
		if benchdiff.HasFailure(findings) {
			log.Fatalf("bench budget violated against %s (intended changes: `make bench-baseline` and commit the result)", *baseline)
		}
		fmt.Printf("bench budget ok: %d benchmarks within budget of %s (%d warnings)\n",
			len(cur), *baseline, len(findings))

	default:
		log.Fatal("usage: remapd-benchdiff -render [-in bench.out] | remapd-benchdiff -baseline BENCH_BASELINE.json -current BENCH_<sha>.json [-github]")
	}
}

func loadResults(path string) []benchdiff.Result {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	results, err := benchdiff.LoadJSON(data)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return results
}
