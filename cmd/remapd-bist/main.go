// Command remapd-bist regenerates Fig. 4: the BIST column output current as
// a function of the number of SA0/SA1 faults, with device-resistance
// variation bands, plus the FSM timing summary of Section III.B.3.
package main

import (
	"flag"
	"fmt"
	"log"

	"remapd/internal/bist"
	"remapd/internal/experiments"
	"remapd/internal/reram"
)

func main() {
	log.SetFlags(0)
	var (
		size   = flag.Int("size", 4, "crossbar size for the curve (paper illustrates 4×4)")
		max    = flag.Int("maxfaults", 4, "maximum faults per column")
		trials = flag.Int("trials", 50, "resistance-variation samples per point")
		seed   = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	fmt.Printf("Fig. 4 — BIST column current vs fault count (%d×%d array, %d trials)\n\n", *size, *size, *trials)
	rows := experiments.Fig4(*size, *max, *trials, *seed)
	fmt.Print(experiments.FormatFig4(rows))

	p := reram.DefaultDeviceParams()
	fmt.Printf("\nBIST FSM timing (%d×%d production arrays):\n", p.CrossbarSize, p.CrossbarSize)
	fmt.Printf("  SA1 test: %d write + 1 read + 1 process = %d ReRAM cycles\n",
		p.CrossbarSize, p.CrossbarSize+2)
	fmt.Printf("  SA0 test: %d ReRAM cycles\n", p.CrossbarSize+2)
	fmt.Printf("  total:    %d ReRAM cycles = %.1f µs at %.0f MHz\n",
		bist.CyclesPerPass(p), bist.PassTimeNS(p)/1e3, 1e3/p.ReRAMCycleNS)
	fmt.Printf("\nversus the conventional March C- test: %d cycles and 5 array writes\n",
		bist.MarchCycles(p.CrossbarSize))
	fmt.Printf("⇒ the density-only BIST is %.1f× cheaper per pass (and wears cells 2.5× less)\n",
		bist.MarchVsBISTSpeedup(p))
	fmt.Print("\n" + experiments.FormatBISTOverhead(experiments.BISTTimingOverhead(50000, 19, 8)))
}
