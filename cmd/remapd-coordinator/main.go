// Command remapd-coordinator drives the Fig. 6 policy grid — the
// canonical distributed workload — over any of the three execution
// paths, producing byte-identical tables from all of them:
//
//	remapd-coordinator -scale quick                 # in-process
//	remapd-coordinator -scale quick -dist 4         # four exec'd workers
//	remapd-coordinator -scale quick -listen :7433   # elastic TCP fleet
//
// With -listen the coordinator serves a fleet: workers on any machine
// join with
//
//	remapd-coordinator -worker -connect host:7433 -slots 2 \
//	    -checkpoint-dir /shared/ckpt
//
// and may come and go mid-run — a dead or partitioned worker's cells
// are requeued onto survivors (resuming from the shared checkpoint
// directory), a SIGINT'd worker drains gracefully, and the run stalls
// rather than fails if the fleet empties. The chaos-smoke CI job runs
// this binary against fault-injected workers (-chaos-sever-after) and
// diffs the table against the in-process run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"remapd/internal/cli"
	"remapd/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var opts cli.Options
	var (
		scale    = flag.String("scale", "quick", "quick or standard")
		policies = flag.String("policies", "", "comma-separated policy subset (empty = all)")
	)
	opts.Bind(flag.CommandLine)
	opts.BindGrid(flag.CommandLine)
	opts.BindDist(flag.CommandLine)
	opts.BindWorker(flag.CommandLine)
	flag.Parse()
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	// Ctrl-C on the coordinator cancels in-flight cells and (via Apply's
	// cleanup) asks every worker to shut down; Ctrl-C on a fleet worker
	// drains it without disturbing the run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if opts.Worker {
		if err := opts.ServeWorker(ctx, log.Printf); err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
		return
	}

	if addr, err := opts.StartDebug(); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "standard":
		s = experiments.StandardScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	prof, cleanup, err := opts.Apply(&s, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	reg := experiments.DefaultRegime()

	var policySubset []string
	for _, p := range strings.Split(*policies, ",") {
		if p = strings.TrimSpace(p); p != "" {
			policySubset = append(policySubset, p)
		}
	}

	//lint:allow no-wall-clock operator-facing run timing; results are computed from seeds only
	start := time.Now()
	fmt.Printf("\n==== Fig. 6 — policy comparison under pre+post faults ====\n\n")
	rows, err := experiments.Fig6(ctx, s, reg, policySubset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig6(rows))

	if prof != nil {
		if err := prof.WriteJSON(opts.MetricsDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntelemetry and harness profile written to %s\n", opts.MetricsDir)
	}
	//lint:allow no-wall-clock operator-facing run timing; results are computed from seeds only
	fmt.Printf("\nfleet run complete in %s (scale=%s)\n", time.Since(start).Round(time.Second), s.Name)
}
