// Command remapd-sweep regenerates Fig. 7: Remap-D accuracy across the
// post-deployment fault sweep (m = new-fault cell fraction per victim,
// n = victim crossbar fraction per epoch) for VGG-19 and ResNet-12.
//
// The sweep grid distributes like the other tools: -dist N fans cells
// out to exec'd worker processes, -listen serves an elastic TCP fleet,
// and -worker (-connect for a fleet) turns this binary into a worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"remapd/internal/cli"
	"remapd/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var opts cli.Options
	var (
		modelsFlag = flag.String("models", "vgg19,resnet12", "comma-separated sweep models")
		epochs     = flag.Int("epochs", 6, "training epochs")
		trainN     = flag.Int("train", 512, "training samples")
		seeds      = flag.Int("seeds", 1, "seeds to average")
		msFlag     = flag.String("m", "0.005,0.03,0.06", "cell fractions (compressed-schedule equivalents of the paper's 0.1–1%)")
		nsFlag     = flag.String("n", "0.01,0.02,0.04", "crossbar fractions (equivalents of the paper's 0.1–2%)")
	)
	opts.Bind(flag.CommandLine)
	opts.BindGrid(flag.CommandLine)
	opts.BindDist(flag.CommandLine)
	opts.BindWorker(flag.CommandLine)
	flag.Parse()
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if opts.Worker {
		// Worker mode: same binary, protocol loop instead of a sweep.
		if err := opts.ServeWorker(ctx, log.Printf); err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
		return
	}

	if addr, err := opts.StartDebug(); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	s := experiments.StandardScale()
	s.Epochs = *epochs
	s.TrainN = *trainN
	s.Seeds = nil
	for i := 0; i < *seeds; i++ {
		s.Seeds = append(s.Seeds, uint64(i+1))
	}
	prof, cleanup, err := opts.Apply(&s, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	reg := experiments.DefaultRegime()

	parse := func(csv string) []float64 {
		var out []float64
		for _, f := range strings.Split(csv, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil {
				log.Fatalf("bad float %q", f)
			}
			out = append(out, v)
		}
		return out
	}

	sweepModels := strings.Split(*modelsFlag, ",")
	fmt.Printf("Fig. 7 — Remap-D under post-deployment sweeps (%s)\n\n", *modelsFlag)
	rows, err := experiments.Fig7(ctx, s, reg, sweepModels, parse(*msFlag), parse(*nsFlag))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig7(rows))
	if prof != nil {
		if err := prof.WriteJSON(opts.MetricsDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntelemetry and harness profile written to %s\n", opts.MetricsDir)
	}
}
