// Command remapd-train trains one CNN on the simulated faulty RCS with a
// chosen fault-tolerance policy (or the ideal fabric) and prints per-epoch
// progress plus the final summary. It is the workhorse behind the Fig. 5,
// Fig. 6 and Fig. 8 experiments.
//
// Examples:
//
//	remapd-train -model vgg11 -policy remap-d
//	remapd-train -model resnet12 -policy none -dataset cifar100
//	remapd-train -model vgg19 -phase backward        # Fig. 5-style injection
//	remapd-train -model vgg11 -policy remap-d -noc   # with flit-level NoC
//	remapd-train -worker -checkpoint-dir ckpt        # dist worker loop
//	remapd-train -worker -connect host:7433 -slots 2 # join a TCP fleet
//
// With -worker the tool runs the dist protocol instead: it reads
// serialized experiment-cell specs from stdin (sent by a -dist
// coordinator such as remapd-report) and writes results to stdout.
// Adding -connect dials a fleet coordinator (remapd-coordinator
// -listen, or any grid tool with -listen) over TCP instead; the worker
// advertises -slots concurrent cells, answers heartbeats, redials with
// backoff if the connection drops, and drains gracefully on Ctrl-C.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"remapd/internal/arch"
	"remapd/internal/checkpoint"
	"remapd/internal/cli"
	"remapd/internal/dataset"
	"remapd/internal/experiments"
	"remapd/internal/fault"
	"remapd/internal/models"
	"remapd/internal/obs"
	"remapd/internal/trainer"
)

func main() {
	log.SetFlags(0)
	var opts cli.Options
	var (
		model     = flag.String("model", "vgg11", "model: "+strings.Join(models.Names(), ", "))
		policy    = flag.String("policy", "remap-d", "policy: "+strings.Join(experiments.PolicyNames(), ", "))
		dsName    = flag.String("dataset", "cifar10", "dataset: cifar10, cifar100, svhn")
		phase     = flag.String("phase", "", "Fig. 5 targeted injection: forward or backward (overrides -policy)")
		epochs    = flag.Int("epochs", 6, "training epochs")
		trainN    = flag.Int("train", 512, "training samples")
		testN     = flag.Int("test", 512, "test samples")
		width     = flag.Float64("width", 0.125, "model width scale")
		simNoC    = flag.Bool("noc", false, "simulate the remap handshake on the flit-level NoC")
		usePaper  = flag.Bool("paper-regime", false, "use the paper's literal fault densities instead of the compressed schedule")
		endurance = flag.Bool("endurance", false, "derive wear-out physically from write counts (Weibull) instead of the phenomenological post model")
	)
	opts.Bind(flag.CommandLine)
	opts.BindRun(flag.CommandLine)
	opts.BindWorker(flag.CommandLine)
	flag.Parse()
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	// Ctrl-C stops training at the next batch boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if opts.Worker {
		if err := opts.ServeWorker(ctx, log.Printf); err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
		return
	}

	cli.SetGOMAXPROCS(opts.Workers)
	if addr, err := opts.StartDebug(); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	s := experiments.StandardScale()
	s.Epochs = *epochs
	s.TrainN, s.TestN = *trainN, *testN
	s.WidthScale = *width
	s.Seeds = []uint64{opts.Seed}

	reg := experiments.DefaultRegime()
	if *usePaper {
		reg = experiments.PaperRegime()
	}

	var ds *dataset.Dataset
	classes := 10
	switch *dsName {
	case "cifar10":
		ds = dataset.CIFAR10Like(s.TrainN, s.TestN, s.ImgSize, 77)
	case "cifar100":
		classes = 100
		ds = dataset.CIFAR100Like(s.TrainN*2, s.TestN, s.ImgSize, 88)
	case "svhn":
		ds = dataset.SVHNLike(s.TrainN, s.TestN, s.ImgSize, 99)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}
	fmt.Println(ds)

	net, err := models.Build(*model, models.Config{
		InC: 3, InH: s.ImgSize, InW: s.ImgSize, Classes: classes,
		WidthScale: s.WidthScale, BatchNorm: true, Seed: opts.Seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d parameters, %d crossbar-mapped layers\n",
		*model, net.ParamCount(), len(net.MVMLayers()))

	cfg := trainer.DefaultConfig()
	cfg.Epochs = s.Epochs
	cfg.BatchSize = s.BatchSize
	cfg.LR = s.LR
	cfg.Seed = opts.Seed
	cfg.Ctx = ctx
	cfg.SimulateNoC = *simNoC
	// The final summary below prints regardless of Logf, so -quiet can
	// null the progress sink without losing the run's result lines.
	if !opts.Quiet {
		cfg.Logf = func(f string, a ...interface{}) { fmt.Printf(f+"\n", a...) }
	}

	switch {
	case *phase != "":
		ph := arch.Forward
		if *phase == "backward" {
			ph = arch.Backward
		} else if *phase != "forward" {
			log.Fatalf("-phase must be forward or backward, got %q", *phase)
		}
		cfg.Chip = experiments.NewChip(s)
		cfg.PhaseInject = &trainer.PhaseInjection{Phase: ph, Density: reg.PhaseDensity}
		fmt.Printf("targeted %s-phase injection at %.1f%% density\n", *phase, 100*reg.PhaseDensity)
	case *policy == "ideal":
		// no chip: ideal digital fabric
	default:
		pol, trackGrads, err := experiments.PolicyByName(*policy, reg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Chip = experiments.NewChip(s)
		cfg.Policy = pol
		cfg.Pre = &reg.Pre
		if *endurance {
			em := fault.NewEnduranceModel()
			em.CharacteristicLife = 100 // compressed for few-epoch runs
			cfg.Endurance = em
		} else {
			cfg.Post = &reg.Post
		}
		cfg.TrackGradAbs = trackGrads
	}

	// The key names the run for both the checkpoint store and the
	// telemetry sink, so a cell's metrics files sit next to its snapshot.
	key := fmt.Sprintf("%s/%s/seed%d/%s", *model, *policy, opts.Seed, *dsName)
	if opts.CheckpointDir != "" {
		store, err := checkpoint.NewStore(opts.CheckpointDir, cfg.Logf)
		if err != nil {
			log.Fatal(err)
		}
		// The fingerprint binds the snapshot to every flag that shapes its
		// results, so changing a flag quietly invalidates the old snapshot
		// instead of misapplying it.
		fingerprint := fmt.Sprintf("train1|m=%s p=%s ph=%s ds=%s e=%d tr=%d te=%d w=%g s=%d noc=%v paper=%v end=%v",
			*model, *policy, *phase, *dsName, *epochs, *trainN, *testN, *width, opts.Seed, *simNoC, *usePaper, *endurance)
		cfg.Checkpoint = store.Cell(key, fingerprint)
	}

	var sink *obs.Sink
	var stream *obs.StreamTrace
	if opts.MetricsDir != "" {
		var err error
		sink, err = obs.NewSink(opts.MetricsDir)
		if err != nil {
			log.Fatal(err)
		}
		// Streaming trace: events flush to disk at every epoch boundary,
		// so even a killed run leaves a truncated (not empty) event log.
		stream, err = sink.Stream(checkpoint.CellFileBase(key), key)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Obs = stream
	}

	res, err := trainer.Train(net, ds, cfg)
	if stream != nil {
		// Flush before handling the training error: a failed run's
		// partial trace is evidence, not garbage.
		if werr := stream.Close(); werr != nil {
			log.Print(werr)
		} else {
			fmt.Printf("telemetry written to %s\n", sink.Dir())
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal accuracy %.4f (best %.4f), policy=%s\n", res.FinalTestAcc, res.BestTestAcc, res.Policy)
	if cfg.Chip != nil {
		fmt.Printf("faults injected: %d (final mean density %.4f%%)\n", res.FaultsInjected, 100*res.FinalMeanDensity)
		fmt.Printf("remap: %d senders, %d swaps, %d unmatched; BIST %d cycles; NoC %d cycles\n",
			res.Senders, res.Swaps, res.Unmatched, res.BISTCyclesTotal, res.NoCCyclesTotal)
	}
	os.Exit(0)
}
