// Command remapd-report regenerates every table and figure of the paper's
// evaluation at the chosen scale and prints them in EXPERIMENTS.md order.
// This is the one-command reproduction entry point:
//
//	remapd-report -scale quick      # minutes
//	remapd-report -scale standard   # the full six-model matrix (slow)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"remapd/internal/checkpoint"
	"remapd/internal/experiments"
	"remapd/internal/obs"
)

func main() {
	log.SetFlags(0)
	var (
		scale      = flag.String("scale", "quick", "quick or standard")
		ablations  = flag.Bool("ablations", true, "include the design-choice ablations")
		csvDir     = flag.String("csv", "", "also write each figure's rows as CSV into this directory")
		workers    = flag.Int("j", 0, "experiment cells to run in parallel (0 = all cores)")
		progress   = flag.Bool("progress", false, "log one line per completed experiment cell")
		ckptDir    = flag.String("checkpoint-dir", "", "persist per-epoch cell checkpoints here; an interrupted report resumes bit-identically")
		metricsDir = flag.String("metrics-dir", "", "record per-cell simulation telemetry and a harness profile into this directory")
		debugAddr  = flag.String("debug-addr", "", "serve pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	// Ctrl-C cancels in-flight training cells at their next batch boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	writeCSV := func(name string, rows interface{}) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, rows); err != nil {
			log.Fatal(err)
		}
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "standard":
		s = experiments.StandardScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	s.Workers = *workers
	if *progress {
		s.Progress = log.Printf
	}
	if *ckptDir != "" {
		store, err := checkpoint.NewStore(*ckptDir, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		s.Checkpoints = store
	}
	var prof *obs.Profile
	if *metricsDir != "" {
		sink, err := obs.NewSink(*metricsDir)
		if err != nil {
			log.Fatal(err)
		}
		s.Metrics = sink
		prof = obs.NewProfile()
		s.Prof = prof
	}
	reg := experiments.DefaultRegime()
	//lint:allow no-wall-clock operator-facing report timing; results are computed from seeds only
	start := time.Now()
	// section prints a header and, when profiling, closes the previous
	// section's harness phase and opens the new one — every section body
	// between two headers is one profiled phase.
	var stopPhase func()
	section := func(title string) {
		if stopPhase != nil {
			stopPhase()
			stopPhase = nil
		}
		if prof != nil {
			stopPhase = prof.StartPhase(title)
		}
		fmt.Printf("\n==== %s ====\n\n", title)
	}

	section("Fig. 4 — BIST current vs fault count")
	rows4 := experiments.Fig4(4, 4, 50, 1)
	fmt.Print(experiments.FormatFig4(rows4))
	writeCSV("fig4", rows4)

	section("Fig. 5 — forward vs backward phase fault tolerance")
	f5 := s
	if *scale == "quick" {
		f5.Models = []string{"vgg11"}
	}
	rows5, err := experiments.Fig5(ctx, f5, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig5(rows5))
	writeCSV("fig5", rows5)

	section("Fig. 6 — policy comparison under pre+post faults")
	rows6, err := experiments.Fig6(ctx, s, reg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig6(rows6))
	writeCSV("fig6", rows6)

	section("Fig. 7 — Remap-D post-deployment sweep")
	sweepModels := []string{"vgg19", "resnet12"}
	if *scale == "quick" {
		sweepModels = []string{"vgg11"}
	}
	rows7, err := experiments.Fig7(ctx, s, reg, sweepModels,
		[]float64{0.005, 0.03, 0.06}, []float64{0.01, 0.02, 0.04})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig7(rows7))
	writeCSV("fig7", rows7)

	section("Fig. 8 — scalability (CIFAR-100-like, SVHN-like)")
	rows8, err := experiments.Fig8(ctx, s, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig8(rows8))
	writeCSV("fig8", rows8)

	section("BIST timing overhead (paper: 0.13%)")
	fmt.Print(experiments.FormatBISTOverhead(experiments.BISTTimingOverhead(50000, 19, 8)))

	section("NoC remap overhead, 50-round Monte Carlo (paper: 0.22% / 0.36%)")
	fmt.Print(experiments.FormatNoCOverhead(experiments.NoCRemapOverhead(50, 2, 10, 42)))

	section("Area overheads (paper: BIST 0.61%, AN 6.3%, Remap-T-10% 10%)")
	rowsArea := experiments.AreaOverheads()
	fmt.Print(experiments.FormatArea(rowsArea))
	writeCSV("area", rowsArea)

	if *ablations {
		model := s.Models[len(s.Models)-1]
		section("Ablation — Remap-D trigger threshold (" + model + ")")
		rt, err := experiments.AblationThreshold(ctx, s, reg, model, []float64{0.004, 0.01, 0.02, 0.05})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatThreshold(rt))

		section("Ablation — receiver selection (nearest vs random)")
		rr, err := experiments.AblationReceiverSelection(ctx, s, reg, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatReceiver(rr))

		section("Ablation — conductance coding scheme")
		rc, err := experiments.AblationCoding(ctx, s, reg, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatCoding(rc))

		section("Ablation — BIST estimate vs ground-truth density")
		rb, err := experiments.AblationBISTvsTruth(ctx, s, reg, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatBISTvsTruth(rb))
	}

	if stopPhase != nil {
		stopPhase()
	}
	if prof != nil {
		if err := prof.WriteJSON(*metricsDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntelemetry and harness profile written to %s\n", *metricsDir)
	}
	//lint:allow no-wall-clock operator-facing report timing; results are computed from seeds only
	fmt.Printf("\nreport complete in %s (scale=%s)\n", time.Since(start).Round(time.Second), s.Name)
}
